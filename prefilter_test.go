package robustsync

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/workload"
)

func TestPrefilterHamming(t *testing.T) {
	space := HammingSpace(256)
	src := rng.New(3)
	set := workload.RandomSet(space, 30, src)
	f, err := NewPrefilter(space, set, 8, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range set {
		if !f.Contains(pt) {
			t.Error("stored point rejected")
		}
	}
	misses := 0
	for i := 0; i < 50; i++ {
		q, err := workload.FarPoint(space, set, 100, src, 2000)
		if err != nil {
			t.Fatal(err)
		}
		if f.Contains(q) {
			misses++
		}
	}
	if misses > 3 {
		t.Errorf("%d/50 far points accepted", misses)
	}
}

func TestPrefilterL1(t *testing.T) {
	space := GridSpace(1<<16, 3, L1)
	src := rng.New(7)
	set := workload.RandomSet(space, 20, src)
	f, err := NewPrefilter(space, set, 50, 5000, 9)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i := 0; i < 60; i++ {
		q := workload.PerturbWithin(space, set[src.Intn(len(set))], 50, src)
		if f.Contains(q) {
			hits++
		}
	}
	if hits < 55 {
		t.Errorf("close acceptance %d/60", hits)
	}
}

package robustsync

import (
	"testing"

	"repro/internal/matching"
	"repro/internal/workload"
)

func TestFacadeEMD(t *testing.T) {
	space := HammingSpace(128)
	const n, k = 32, 3
	inst := workload.NewEMDInstance(space, n, k, 2, 7)
	emdK := matching.EMDk(space, inst.SA, inst.SB, k)
	p := DefaultEMDParams(space, n, k, 11)
	p.D1 = maxf(1, emdK/4)
	p.D2 = maxf(emdK*4, p.D1*2)
	res, err := ReconcileEMD(p, inst.SA, inst.SB)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed && len(res.SPrime) != n {
		t.Errorf("|S'B| = %d", len(res.SPrime))
	}
}

func TestFacadeEMDScaled(t *testing.T) {
	space := GridSpace(4095, 2, L2)
	const n, k = 24, 2
	inst := workload.NewEMDInstance(space, n, k, 6, 13)
	p := DefaultEMDParams(space, n, k, 17)
	res, err := ReconcileEMDScaled(p, inst.SA, inst.SB)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatal("scaled run failed")
	}
	if len(res.SPrime) != n {
		t.Errorf("|S'B| = %d", len(res.SPrime))
	}
}

func TestFacadeGap(t *testing.T) {
	space := HammingSpace(512)
	inst, err := workload.NewGapInstance(space, 40, 3, 1, 8, 128, 19)
	if err != nil {
		t.Fatal(err)
	}
	p := GapParams{Space: space, N: 43, R1: 8, R2: 128, Seed: 23}
	res, err := ReconcileGap(p, inst.SA, inst.SB)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range inst.SA {
		if d, _ := res.SPrime.MinDistanceTo(space, a); d > 128 {
			t.Errorf("uncovered point at distance %v", d)
		}
	}
}

func TestFacadeGapOneSided(t *testing.T) {
	space := GridSpace(1<<20, 2, L2)
	inst, err := workload.NewGapInstance(space, 30, 2, 0, 50, 30000, 29)
	if err != nil {
		t.Fatal(err)
	}
	p := GapParams{Space: space, N: 32, R1: 50, R2: 30000, Seed: 31}
	res, err := ReconcileGapOneSided(p, 2, inst.SA, inst.SB)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range inst.SA {
		if d, _ := res.SPrime.MinDistanceTo(space, a); d > 30000 {
			t.Errorf("uncovered point at distance %v", d)
		}
	}
}

func TestFacadeQuadtree(t *testing.T) {
	space := GridSpace(1023, 2, L1)
	inst := workload.NewEMDInstance(space, 24, 2, 10, 37)
	res, err := ReconcileQuadtree(QuadtreeParams{Space: space, N: 24, K: 2, Seed: 41}, inst.SA, inst.SB)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed && len(res.SPrime) != 24 {
		t.Errorf("|S'B| = %d", len(res.SPrime))
	}
}

func TestFacadeSyncIDs(t *testing.T) {
	bob := []uint64{1, 2, 3, 4, 5, 100}
	alice := []uint64{1, 2, 3, 4, 5, 200, 300}
	ob, oa, err := SyncIDs(bob, alice, 8, 43)
	if err != nil {
		t.Fatal(err)
	}
	if len(ob) != 1 || ob[0] != 100 {
		t.Errorf("onlyBob = %v", ob)
	}
	if len(oa) != 2 {
		t.Errorf("onlyAlice = %v", oa)
	}
}

func TestFacadeEstimateDiff(t *testing.T) {
	var bob, alice []uint64
	for i := uint64(0); i < 5000; i++ {
		bob = append(bob, i*7919)
		alice = append(alice, i*7919)
	}
	for i := uint64(0); i < 200; i++ {
		bob = append(bob, (1<<50)+i)
	}
	est, err := EstimateDiff(bob, alice, 47)
	if err != nil {
		t.Fatal(err)
	}
	if est < 60 || est > 600 {
		t.Errorf("estimate = %d for true diff 200", est)
	}
}

// Quickstart: reconcile two noisy point sets with the EMD protocol.
//
// Alice and Bob each hold 32 points in {0,1}^64. Most of Alice's points
// are 1–2 bit-flips away from Bob's (sensor noise); three are entirely
// new. One message from Alice lets Bob update his set so it is close to
// hers in earth mover's distance.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	robustsync "repro"
	"repro/internal/matching"
	"repro/internal/workload"
)

func main() {
	space := robustsync.HammingSpace(64)
	const n, k = 32, 3

	// Plant a workload: Bob's set, plus Alice's noisy view of it with k
	// outliers. In a real deployment each party brings its own data.
	inst := workload.NewEMDInstance(space, n, k, 2, 42)
	alice, bob := inst.SA, inst.SB

	// Both parties construct identical Params (the shared seed is the
	// paper's public coins). ReconcileEMDScaled needs no prior knowledge
	// of how different the sets are.
	params := robustsync.DefaultEMDParams(space, n, k, 7)
	res, err := robustsync.ReconcileEMDScaled(params, alice, bob)
	if err != nil {
		log.Fatal(err)
	}
	if res.Failed {
		log.Fatal("protocol failed (allowed with small probability; retry with a new seed)")
	}

	before := matching.EMD(space, alice, bob)
	after := matching.EMD(space, alice, res.SPrime)
	fmt.Printf("EMD(Alice, Bob) before reconciliation: %.0f\n", before)
	fmt.Printf("EMD(Alice, Bob') after reconciliation: %.0f\n", after)
	fmt.Printf("optimal with %d exclusions (EMD_k):     %.0f\n", k,
		matching.EMDk(space, alice, bob, k))
	fmt.Printf("communication: %s\n", res.Stats)
}

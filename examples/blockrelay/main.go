// Blockrelay: classic exact set reconciliation, the substrate both robust
// protocols build on and the paper's §1.1 application ([5]: scalable
// transaction synchronization for Bitcoin). Two nodes hold mempools of
// ~20k transaction IDs that differ in a few hundred entries; instead of
// exchanging full ID lists, one node sends a strata estimator plus an
// IBLT sized to the estimated difference.
//
// Run: go run ./examples/blockrelay
package main

import (
	"fmt"
	"log"

	robustsync "repro"
	"repro/internal/rng"
)

func main() {
	const (
		mempool = 20000
		onlyB   = 180 // transactions node B has that A lacks
		onlyA   = 60  // and vice versa
	)
	src := rng.New(8891)

	shared := make([]uint64, mempool)
	for i := range shared {
		shared[i] = src.Uint64()
	}
	nodeA := append([]uint64{}, shared...)
	nodeB := append([]uint64{}, shared...)
	for i := 0; i < onlyB; i++ {
		nodeB = append(nodeB, src.Uint64()|1<<63)
	}
	for i := 0; i < onlyA; i++ {
		nodeA = append(nodeA, src.Uint64()&^(1<<63))
	}

	// Phase 1: estimate the difference size without prior context.
	est, err := robustsync.EstimateDiff(nodeB, nodeA, 501)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("true difference: %d, strata estimate: %d\n", onlyA+onlyB, est)

	// Phase 2: reconcile with an IBLT sized to the estimate (with a
	// safety factor; SyncIDs retries with doubling if it undershoots).
	missingAtA, missingAtB, err := robustsync.SyncIDs(nodeB, nodeA, est*2, 502)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node A learns %d missing transactions\n", len(missingAtA))
	fmt.Printf("node B learns %d missing transactions\n", len(missingAtB))
	if len(missingAtA) != onlyB || len(missingAtB) != onlyA {
		log.Fatalf("reconciliation incomplete: %d/%d", len(missingAtA), len(missingAtB))
	}

	// Cost comparison: the IBLT carries O(diff) cells of ~17 bytes vs
	// shipping the full 8-byte-per-ID mempool.
	fmt.Printf("full mempool dump would be %d bytes; IBLT cost scales with the %d-entry difference\n",
		8*len(nodeB), onlyA+onlyB)
}

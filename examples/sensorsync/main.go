// Sensorsync: the paper's motivating scenario (§1). Two sensors observe
// the same field of objects and record 3-D positions on a 4096³ grid.
// Readings of the same object differ by measurement noise; each sensor
// has also seen a few objects the other missed. The sensors synchronize
// with the Gap Guarantee protocol so that afterwards sensor B knows
// (within r2) about every object either sensor has seen — while
// communicating far less than a full dump when positions are
// high-precision.
//
// Run: go run ./examples/sensorsync
package main

import (
	"fmt"
	"log"

	robustsync "repro"
	"repro/internal/workload"
)

func main() {
	// 3-D positions with 20-bit coordinates under ℓ1.
	space := robustsync.GridSpace(1<<20-1, 3, robustsync.L1)
	const (
		nObjects = 80
		kNew     = 5 // objects only sensor A has seen
		r1       = 300.0
		r2       = 60000.0
	)

	inst, err := workload.NewGapInstance(space, nObjects, kNew, 2, r1, r2, 2024)
	if err != nil {
		log.Fatal(err)
	}
	sensorA, sensorB := inst.SA, inst.SB

	params := robustsync.GapParams{
		Space: space,
		N:     nObjects + kNew,
		R1:    r1,
		R2:    r2,
		Seed:  99,
	}
	res, err := robustsync.ReconcileGap(params, sensorA, sensorB)
	if err != nil {
		log.Fatal(err)
	}

	// Verify the guarantee: every object A knows about is now within r2
	// of something B knows about.
	uncovered := 0
	for _, obj := range sensorA {
		if d, _ := res.SPrime.MinDistanceTo(space, obj); d > r2 {
			uncovered++
		}
	}

	fmt.Printf("sensor A objects: %d (of which %d unknown to B)\n", len(sensorA), len(inst.Far))
	fmt.Printf("sensor B objects: %d -> %d after sync\n", len(sensorB), len(res.SPrime))
	fmt.Printf("positions transferred: %d\n", len(res.TA))
	fmt.Printf("objects of A left uncovered (must be 0): %d\n", uncovered)
	fmt.Printf("communication: %s\n", res.Stats)
	// At 3 dimensions a full dump is actually cheaper — the protocol's
	// advantage appears when points are high-dimensional (log|U| large);
	// see examples/imagedupes. What a dump cannot give is the paper's
	// guarantee under *noise*: here positions differ between sensors, so
	// a dump would duplicate every object; the gap protocol transfers
	// only the genuinely new ones.
	fmt.Printf("(full dump: %d bits, but it would duplicate all %d shared objects)\n",
		space.BitsPerPoint()*len(sensorA), len(sensorA)-len(inst.Far))
	if uncovered > 0 {
		log.Fatal("gap guarantee violated")
	}
}

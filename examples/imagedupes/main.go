// Imagedupes: near-duplicate detection across two image stores. Each
// store holds perceptual-hash fingerprints (1024-bit vectors) of its
// images. Re-encoded or resized copies of the same image differ in a few
// bits; genuinely new images differ in hundreds. Store B wants every
// image A has that B lacks — the Gap Guarantee model with Hamming radii
// (r1 = small re-encoding noise, r2 = different-image distance).
//
// The interesting regime is exactly where the paper's bounds bite:
// fingerprints are long (log|U| = 1024 bits) but only k images differ,
// so the protocol's (k + ρn)·polylog + k·log|U| beats shipping all
// n·1024 bits.
//
// Run: go run ./examples/imagedupes
package main

import (
	"fmt"
	"log"

	robustsync "repro"
	"repro/internal/workload"
)

func main() {
	const (
		dBits = 4096 // fingerprint length
		n     = 96   // images per store
		kNew  = 3    // images only store A has
		r1    = 12   // max re-encoding perturbation
		r2    = 512  // distinct images are at least this far
	)
	space := robustsync.HammingSpace(dBits)

	inst, err := workload.NewGapInstance(space, n, kNew, 0, r1, r2, 777)
	if err != nil {
		log.Fatal(err)
	}
	storeA, storeB := inst.SA, inst.SB

	params := robustsync.GapParams{
		Space: space, N: n + kNew, R1: r1, R2: r2, Seed: 31337,
		// Keys are Θ(log n)-bit-entry vectors; HFactor trades recall
		// margin against key size. 5 is comfortable at this gap.
		HFactor: 5,
	}
	res, err := robustsync.ReconcileGap(params, storeA, storeB)
	if err != nil {
		log.Fatal(err)
	}

	// Which of the transferred fingerprints are the genuinely new images?
	recovered := 0
	for _, novel := range inst.Far {
		for _, got := range res.TA {
			if got.Equal(novel) {
				recovered++
				break
			}
		}
	}

	naive := int64(n * dBits)
	fmt.Printf("store A: %d fingerprints, %d unknown to B\n", len(storeA), len(inst.Far))
	fmt.Printf("transferred fingerprints: %d (includes the %d/%d novel images)\n",
		len(res.TA), recovered, len(inst.Far))
	fmt.Printf("communication: %s\n", res.Stats)
	fmt.Printf("naive transfer: %d bits (%.1fx more)\n", naive,
		float64(naive)/float64(res.Stats.TotalBits()))
	if recovered != len(inst.Far) {
		log.Fatal("missed a novel image — gap guarantee violated")
	}
}

// Netsync: the Gap Guarantee protocol between two processes over real
// TCP. This example runs both endpoints (a listener playing Bob, a
// dialer playing Alice) over localhost to show the wire API; in a real
// deployment each side runs in its own process and only the Params —
// including the shared seed, the paper's public coins — are agreed out
// of band.
//
// Run: go run ./examples/netsync
package main

import (
	"fmt"
	"log"
	"net"

	robustsync "repro"
	"repro/internal/workload"
)

func main() {
	space := robustsync.HammingSpace(1024)
	const (
		n  = 48
		k  = 3
		r1 = 8
		r2 = 256
	)
	inst, err := workload.NewGapInstance(space, n, k, 1, r1, r2, 4821)
	if err != nil {
		log.Fatal(err)
	}

	// Both endpoints agree on Params out of band.
	params := robustsync.GapParams{
		Space: space, N: n + k, R1: r1, R2: r2, Seed: 90210,
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()

	// Bob: accept one connection and run the receiving side.
	type bobOut struct {
		res robustsync.GapResult
		err error
	}
	bobDone := make(chan bobOut, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			bobDone <- bobOut{err: err}
			return
		}
		defer conn.Close()
		res, err := robustsync.GapReceive(conn, params, inst.SB)
		bobDone <- bobOut{res: res, err: err}
	}()

	// Alice: dial and run the sending side.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	rep, err := robustsync.GapSend(conn, params, inst.SA)
	conn.Close()
	if err != nil {
		log.Fatal(err)
	}
	bob := <-bobDone
	if bob.err != nil {
		log.Fatal(bob.err)
	}

	uncovered := 0
	for _, a := range inst.SA {
		if d, _ := bob.res.SPrime.MinDistanceTo(space, a); d > r2 {
			uncovered++
		}
	}
	fmt.Printf("TCP gap reconciliation over %s\n", ln.Addr())
	fmt.Printf("Alice sent %d far elements; Bob's set grew %d -> %d\n",
		len(rep.TA), len(inst.SB), len(bob.res.SPrime))
	fmt.Printf("uncovered points of SA (must be 0): %d\n", uncovered)
	fmt.Printf("Bob's endpoint traffic: %s\n", bob.res.Stats)
	if uncovered > 0 {
		log.Fatal("gap guarantee violated over the wire")
	}
}

// Benchmarks regenerating the evaluation artifacts: one testing.B target
// per experiment in EXPERIMENTS.md. Each iteration executes the
// experiment's Quick configuration (the full tables are produced by
// cmd/experiments); ns/op therefore measures the cost of regenerating
// that artifact end to end, including workload generation, both parties'
// computation, serialization and ground-truth matching.
package robustsync

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/matching"
	"repro/internal/netproto"
	"repro/internal/session"
	"repro/internal/simnet/scenario"
	"repro/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl, err := e.Run(experiments.Config{Seed: uint64(i) + 1, Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if tbl.Rows() == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkE1IBLTDecode regenerates the Theorem 2.6 decode-threshold table.
func BenchmarkE1IBLTDecode(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkE2MLSHCollision regenerates the Definition 2.2 sandwich table.
func BenchmarkE2MLSHCollision(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkE3ErrorPropagation regenerates the Figure 1 / Lemma 3.10 table.
func BenchmarkE3ErrorPropagation(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkE4Branching regenerates the Appendix D λ_t table.
func BenchmarkE4Branching(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkE5EMDHamming regenerates the Corollary 3.5 table.
func BenchmarkE5EMDHamming(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkE6EMDL2 regenerates the Corollary 3.6 table.
func BenchmarkE6EMDL2(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE7VsQuadtree regenerates the ours-vs-[7] dimension sweep.
func BenchmarkE7VsQuadtree(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkE8GapHamming regenerates the Corollary 4.3 table.
func BenchmarkE8GapHamming(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkE9GapL1 regenerates the Corollary 4.4 table.
func BenchmarkE9GapL1(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkE10GapOneSided regenerates the Theorem 4.5 comparison.
func BenchmarkE10GapOneSided(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkE11OneRoundLB regenerates the Theorem 4.6 contrast table.
func BenchmarkE11OneRoundLB(b *testing.B) { benchExperiment(b, "E11") }

// BenchmarkE12SetsOfSets regenerates the Theorem E.1 scaling table.
func BenchmarkE12SetsOfSets(b *testing.B) { benchExperiment(b, "E12") }

// BenchmarkE13GapRho regenerates the ρ-dependence sweep.
func BenchmarkE13GapRho(b *testing.B) { benchExperiment(b, "E13") }

// BenchmarkE14DSBF regenerates the distance-sensitive filter curve.
func BenchmarkE14DSBF(b *testing.B) { benchExperiment(b, "E14") }

// BenchmarkA1RIBLTDensity regenerates the cell-density ablation.
func BenchmarkA1RIBLTDensity(b *testing.B) { benchExperiment(b, "A1") }

// BenchmarkA2QSweep regenerates the hash-count ablation.
func BenchmarkA2QSweep(b *testing.B) { benchExperiment(b, "A2") }

// BenchmarkProtocolEMDHamming measures one end-to-end Algorithm 1 run
// (n=64, k=4, d=128, informed bounds) without ground-truth scoring —
// the deployment-relevant cost.
func BenchmarkProtocolEMDHamming(b *testing.B) {
	space := HammingSpace(128)
	const n, k = 64, 4
	inst := workload.NewEMDInstance(space, n, k, 2, 9)
	emdK := matching.EMDk(space, inst.SA, inst.SB, k)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := DefaultEMDParams(space, n, k, uint64(i)+1)
		p.D1 = maxf(1, emdK/4)
		p.D2 = maxf(emdK*4, p.D1*2)
		if _, err := ReconcileEMD(p, inst.SA, inst.SB); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProtocolGapHamming measures one end-to-end Theorem 4.2 run
// (n=64, k=4, d=1024).
func BenchmarkProtocolGapHamming(b *testing.B) {
	space := HammingSpace(1024)
	inst, err := workload.NewGapInstance(space, 64, 4, 1, 8, 256, 9)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := GapParams{Space: space, N: 70, R1: 8, R2: 256, Seed: uint64(i) + 1}
		if _, err := ReconcileGap(p, inst.SA, inst.SB); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSyncIDs measures classic IBLT reconciliation of 10k-element
// sets differing in 100 IDs.
func BenchmarkSyncIDs(b *testing.B) {
	var bob, alice []uint64
	for i := uint64(0); i < 10000; i++ {
		bob = append(bob, i*2654435761)
		alice = append(alice, i*2654435761)
	}
	for i := uint64(0); i < 100; i++ {
		bob = append(bob, (1<<40)+i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ob, _, err := SyncIDs(bob, alice, 128, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		if len(ob) != 100 {
			b.Fatalf("recovered %d", len(ob))
		}
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// BenchmarkLiveSetMutate measures one live point replacement (remove +
// add): two MLSH key-vector evaluations plus O(q·levels) RIBLT cell
// updates — the incremental cost that replaces a full O(n·s) sketch
// rebuild per change.
func BenchmarkLiveSetMutate(b *testing.B) {
	space := HammingSpace(128)
	const n, k = 64, 4
	inst := workload.NewEMDInstance(space, n, k, 2, 9)
	params := DefaultEMDParams(space, n, k, 77)
	params.D1, params.D2 = 4, 256
	ls, err := NewLiveSet(LiveConfig{EMD: &params}, inst.SA)
	if err != nil {
		b.Fatal(err)
	}
	pts := inst.SA.Clone()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(pts)
		old := pts[j]
		fresh := old.Clone()
		fresh[i%len(fresh)] ^= 1
		if err := ls.ApplyBatch([]LiveOp{{Remove: true, Point: old}, {Point: fresh}}); err != nil {
			b.Fatal(err)
		}
		pts[j] = fresh
	}
}

// BenchmarkLiveDeltaSession measures a returning peer's live-emd
// session over loopback TCP — announce epoch, receive churned cells,
// patch, reconcile — against churn of one point replacement per
// session. Compare with BenchmarkServerThroughput's full transfers.
func BenchmarkLiveDeltaSession(b *testing.B) {
	space := HammingSpace(128)
	const n, k = 64, 4
	inst := workload.NewEMDInstance(space, n, k, 2, 9)
	params := DefaultEMDParams(space, n, k, 77)
	params.D1, params.D2 = 4, 256
	ls, err := NewLiveSet(LiveConfig{EMD: &params}, inst.SA)
	if err != nil {
		b.Fatal(err)
	}
	factory, err := NewLiveEMDSenderFactory(ls)
	if err != nil {
		b.Fatal(err)
	}
	srv := session.NewServer(session.Config{MaxSessions: 4})
	srv.Handle(factory)
	l, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	d := session.Dialer{Addr: l.Addr().String()}
	cache := &EMDSketchCache{}
	// Warm the cache with the initial full transfer.
	if _, err := d.Do(NewLiveEMDReceiver(params, inst.SB, cache)); err != nil {
		b.Fatal(err)
	}
	pts := inst.SA.Clone()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(pts)
		fresh := pts[j].Clone()
		fresh[i%len(fresh)] ^= 1
		if err := ls.ApplyBatch([]LiveOp{{Remove: true, Point: pts[j]}, {Point: fresh}}); err != nil {
			b.Fatal(err)
		}
		pts[j] = fresh
		h := NewLiveEMDReceiver(params, inst.SB, cache)
		if _, err := d.Do(h); err != nil {
			b.Fatal(err)
		}
		if !h.UsedDelta {
			b.Fatal("expected delta path after warm-up")
		}
	}
}

// BenchmarkServerThroughput measures the session engine end to end:
// sessions/sec and MB/s of a reconciled-style server completing full
// EMD reconciliations over loopback TCP at 1, 4 and 16 concurrent
// peers. Each op is one complete session (dial, header negotiation,
// protocol, teardown); later PRs should beat these numbers.
func BenchmarkServerThroughput(b *testing.B) {
	space := HammingSpace(128)
	const n, k = 64, 4
	inst := workload.NewEMDInstance(space, n, k, 2, 9)
	emdK := matching.EMDk(space, inst.SA, inst.SB, k)
	params := DefaultEMDParams(space, n, k, 77)
	params.D1 = maxf(1, emdK/4)
	params.D2 = maxf(emdK*4, params.D1*2)

	for _, peers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("peers=%d", peers), func(b *testing.B) {
			srv := session.NewServer(session.Config{MaxSessions: 2 * peers})
			emdFactory, err := netproto.NewEMDSenderFactory(params, inst.SA)
			if err != nil {
				b.Fatal(err)
			}
			srv.Handle(emdFactory)
			l, err := srv.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			d := session.Dialer{Addr: l.Addr().String()}

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for p := 0; p < peers; p++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						h := netproto.NewEMDReceiver(params, inst.SB)
						if _, err := d.Do(h); err != nil {
							b.Error(err)
						}
					}()
				}
				wg.Wait()
			}
			b.StopTimer()
			// Server-side accounting can trail the clients' last read;
			// Close waits for every session before Stats is read.
			srv.Close()
			elapsed := b.Elapsed().Seconds()
			sessions := float64(b.N * peers)
			if elapsed > 0 {
				b.ReportMetric(sessions/elapsed, "sessions/sec")
				total, _ := srv.Stats()
				b.ReportMetric(float64(total.TotalBytes())/1e6/elapsed, "MB/s")
			}
		})
	}
}

// benchClusterRound drives a tiny two-node latency-bound mesh through
// anti-entropy to convergence and reports the wall-clock and dial cost
// per round. Every link write pays a fixed simulated latency, so the
// measurement is dominated by deterministic protocol round trips, not
// CPU: the metric compares how many serialized latency waits each
// transport generation needs per round.
func benchClusterRound(b *testing.B, disableMux bool, pipeline int) {
	sc := scenario.Scenario{
		Name:  "bench-rtt",
		Nodes: 2,
		Sets: []scenario.SetSpec{
			{Name: "", Base: 48, PerNode: 6},
			{Name: "beta", Base: 48, PerNode: 6},
		},
		Rounds:      10,
		ChurnRounds: 2,
		Streak:      1,
		DisableMux:  disableMux,
		Pipeline:    pipeline,
		LatencyMin:  50 * time.Millisecond,
		LatencyMax:  50 * time.Millisecond,
	}
	b.ResetTimer()
	var rounds, dials uint64
	for i := 0; i < b.N; i++ {
		res, err := scenario.Run(sc, 42)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Ok() {
			b.Fatalf("bench mesh failed invariants: %v", res.Failures)
		}
		rounds += uint64(res.RoundsRun)
		dials += res.Dials
	}
	b.StopTimer()
	if rounds > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(rounds), "ns/round")
		b.ReportMetric(float64(dials)/float64(rounds), "dials/round")
		b.ReportMetric(float64(rounds)/float64(b.N), "rounds-to-converge")
	}
}

// BenchmarkClusterRoundRTT is the latency-bound before/after for RSYN
// v3: the v2 shape dials one connection per session and reconciles
// strictly sequentially; the v3 shape rides pooled carriers and
// pipelines both sets' sessions per round. CI gates ns/round and
// dials/round against BENCH_PR6.json.
func BenchmarkClusterRoundRTT(b *testing.B) {
	b.Run("v2-plain", func(b *testing.B) { benchClusterRound(b, true, 1) })
	b.Run("v3-mux", func(b *testing.B) { benchClusterRound(b, false, 2) })
}

package robustsync_test

import (
	"fmt"

	robustsync "repro"
	"repro/internal/workload"
)

// ExampleReconcileGap synchronizes two noisy fingerprint stores so the
// receiver ends up covering every point the sender holds.
func ExampleReconcileGap() {
	space := robustsync.HammingSpace(512)
	// Planted scenario: 30 shared (noisy) points, 2 points only Alice
	// has, radii r1 = 8 (noise) and r2 = 128 (genuinely different).
	inst, err := workload.NewGapInstance(space, 30, 2, 0, 8, 128, 1234)
	if err != nil {
		fmt.Println(err)
		return
	}
	p := robustsync.GapParams{Space: space, N: 32, R1: 8, R2: 128, Seed: 42}
	res, err := robustsync.ReconcileGap(p, inst.SA, inst.SB)
	if err != nil {
		fmt.Println(err)
		return
	}
	uncovered := 0
	for _, a := range inst.SA {
		if d, _ := res.SPrime.MinDistanceTo(space, a); d > 128 {
			uncovered++
		}
	}
	fmt.Printf("transferred %d points, uncovered %d\n", len(res.TA), uncovered)
	// Output: transferred 2 points, uncovered 0
}

// ExampleSyncIDs reconciles two almost-identical ID sets exactly.
func ExampleSyncIDs() {
	bob := []uint64{1, 2, 3, 4, 5, 1000}
	alice := []uint64{1, 2, 3, 4, 5, 2000}
	onlyBob, onlyAlice, err := robustsync.SyncIDs(bob, alice, 4, 7)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("bob-only: %v, alice-only: %v\n", onlyBob, onlyAlice)
	// Output: bob-only: [1000], alice-only: [2000]
}

package robustsync

import (
	"io"

	"repro/internal/emd"
	"repro/internal/gap"
	"repro/internal/netproto"
)

// Networked entry points: the same protocol state machines the
// in-process helpers drive, carried over any byte stream (net.Conn,
// pipes, tunnels) as length-prefixed frames. Both endpoints must
// construct identical Params — a digest handshake verifies this before
// any protocol traffic flows.

// EMDSend runs Alice's side of the EMD protocol over rw: handshake plus
// the single Algorithm 1 message.
func EMDSend(rw io.ReadWriter, p EMDParams, sa PointSet) error {
	return netproto.EMDAlice(rw, p, sa)
}

// EMDReceive runs Bob's side over rw and returns his reconciled set.
func EMDReceive(rw io.ReadWriter, p EMDParams, sb PointSet) (EMDResult, error) {
	return netproto.EMDBob(rw, p, sb)
}

// GapAliceReport is what the sending side of a networked gap run learns.
type GapAliceReport = gap.AliceReport

// GapSend runs Alice's side of the 4-round Gap Guarantee protocol over
// rw.
func GapSend(rw io.ReadWriter, p GapParams, sa PointSet) (GapAliceReport, error) {
	return netproto.GapAlice(rw, p, sa)
}

// GapReceive runs Bob's side over rw; the result carries this endpoint's
// traffic statistics.
func GapReceive(rw io.ReadWriter, p GapParams, sb PointSet) (GapResult, error) {
	return netproto.GapBob(rw, p, sb)
}

// SyncWireParams tunes networked exact-ID synchronization.
type SyncWireParams = netproto.SyncParams

// SyncIDsInitiator reconciles an ID set against a remote responder; both
// ends finish knowing the full symmetric difference.
func SyncIDsInitiator(rw io.ReadWriter, p SyncWireParams, ids []uint64) (theirsOnly, minesOnly []uint64, err error) {
	return netproto.SyncInitiator(rw, p, ids)
}

// SyncIDsResponder is the peer of SyncIDsInitiator.
func SyncIDsResponder(rw io.ReadWriter, p SyncWireParams, ids []uint64) (theirsOnly []uint64, err error) {
	return netproto.SyncResponder(rw, p, ids)
}

// Compile-time checks that the split-party APIs stay usable directly.
var (
	_ = emd.BuildMessage
	_ = emd.ApplyMessage
	_ = gap.RunAlice
	_ = gap.RunBob
)

package robustsync

import (
	"io"

	"repro/internal/emd"
	"repro/internal/gap"
	"repro/internal/netproto"
	"repro/internal/session"
)

// Networked entry points: the same protocol state machines the
// in-process helpers drive, carried over any byte stream (net.Conn,
// pipes, tunnels) as length-prefixed frames. Every session opens with a
// negotiated header (protocol ID, role, parameter digest), so both
// endpoints must construct identical Params — mismatches fail fast
// before any protocol traffic flows.
//
// Two deployment shapes are exposed:
//
//   - Two-party: the Send/Receive function pairs below run one protocol
//     over one byte stream, for symmetric peers.
//   - Client/server: a Server accepts TCP or unix connections and runs
//     many concurrent sessions against registered handlers; a Dialer is
//     the matching client. Handlers bind a protocol side to parameters
//     and local data, and carry the typed result after the session.

// EMDSend runs Alice's side of the EMD protocol over rw: the session
// header plus the single Algorithm 1 message.
func EMDSend(rw io.ReadWriter, p EMDParams, sa PointSet) error {
	return netproto.EMDAlice(rw, p, sa)
}

// EMDReceive runs Bob's side over rw and returns his reconciled set.
func EMDReceive(rw io.ReadWriter, p EMDParams, sb PointSet) (EMDResult, error) {
	return netproto.EMDBob(rw, p, sb)
}

// GapAliceReport is what the sending side of a networked gap run learns.
type GapAliceReport = gap.AliceReport

// GapSend runs Alice's side of the 4-round Gap Guarantee protocol over
// rw.
func GapSend(rw io.ReadWriter, p GapParams, sa PointSet) (GapAliceReport, error) {
	return netproto.GapAlice(rw, p, sa)
}

// GapReceive runs Bob's side over rw; the result carries this endpoint's
// traffic statistics.
func GapReceive(rw io.ReadWriter, p GapParams, sb PointSet) (GapResult, error) {
	return netproto.GapBob(rw, p, sb)
}

// SyncWireParams tunes networked exact-ID synchronization.
type SyncWireParams = netproto.SyncParams

// SyncIDsInitiator reconciles an ID set against a remote responder; both
// ends finish knowing the full symmetric difference.
func SyncIDsInitiator(rw io.ReadWriter, p SyncWireParams, ids []uint64) (theirsOnly, minesOnly []uint64, err error) {
	return netproto.SyncInitiatorFunc(rw, p, ids)
}

// SyncIDsResponder is the peer of SyncIDsInitiator.
func SyncIDsResponder(rw io.ReadWriter, p SyncWireParams, ids []uint64) (theirsOnly []uint64, err error) {
	return netproto.SyncResponderFunc(rw, p, ids)
}

// ---------------------------------------------------------------------------
// Session engine: the multi-peer server and client (internal/session),
// re-exported for deployments that serve many concurrent peers.

// Proto identifies a reconciliation protocol in the session header.
type Proto = netproto.Proto

// The negotiable protocols.
const (
	ProtoEMD     = netproto.ProtoEMD
	ProtoGap     = netproto.ProtoGap
	ProtoSync    = netproto.ProtoSync
	ProtoSetSets = netproto.ProtoSetSets
)

// Role is the side of a protocol an endpoint plays.
type Role = netproto.Role

// SessionHandler is one party's protocol state machine bound to its
// parameters and local data; construct with the New*Sender/Receiver and
// New*Initiator/Responder helpers.
type SessionHandler = netproto.Handler

// Server accepts TCP or unix connections and runs many concurrent
// reconciliation sessions against registered handler factories.
type Server = session.Server

// ServerConfig tunes a Server (session caps, deadlines, callbacks).
type ServerConfig = session.Config

// Session owns one served peer's negotiated protocol state machine.
type Session = session.Session

// Dialer opens client sessions against a Server.
type Dialer = session.Dialer

// NewServer builds a reconciliation server; register handler factories
// with its Handle method, then Listen or Serve.
func NewServer(cfg ServerConfig) *Server { return session.NewServer(cfg) }

// NewEMDSender binds Alice's side of the EMD protocol to her point set.
func NewEMDSender(p EMDParams, sa PointSet) SessionHandler { return netproto.NewEMDSender(p, sa) }

// NewEMDReceiver binds Bob's side of the EMD protocol to his point set;
// after the session, Result holds his reconciled set.
func NewEMDReceiver(p EMDParams, sb PointSet) *netproto.EMDReceiver {
	return netproto.NewEMDReceiver(p, sb)
}

// NewGapSender binds Alice's side of the Gap protocol; after the
// session, Report holds what she transmitted.
func NewGapSender(p GapParams, sa PointSet) *netproto.GapSender {
	return netproto.NewGapSender(p, sa)
}

// NewGapReceiver binds Bob's side of the Gap protocol; after the
// session, Result holds his covered set.
func NewGapReceiver(p GapParams, sb PointSet) *netproto.GapReceiver {
	return netproto.NewGapReceiver(p, sb)
}

// NewSyncInitiator binds the initiating side of exact ID
// reconciliation; after the session, TheirsOnly and MinesOnly hold the
// symmetric difference.
func NewSyncInitiator(p SyncWireParams, ids []uint64) *netproto.SyncInitiator {
	return netproto.NewSyncInitiator(p, ids)
}

// NewSyncResponder binds the answering side of exact ID reconciliation.
func NewSyncResponder(p SyncWireParams, ids []uint64) *netproto.SyncResponder {
	return netproto.NewSyncResponder(p, ids)
}

// Compile-time checks that the split-party APIs stay usable directly.
var (
	_ = emd.BuildMessage
	_ = emd.ApplyMessage
	_ = gap.RunAlice
	_ = gap.RunBob
)

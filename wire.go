package robustsync

import (
	"io"

	"repro/internal/cluster"
	"repro/internal/emd"
	"repro/internal/gap"
	"repro/internal/live"
	"repro/internal/netproto"
	"repro/internal/session"
	"repro/internal/store"
)

// Networked entry points: the same protocol state machines the
// in-process helpers drive, carried over any byte stream (net.Conn,
// pipes, tunnels) as length-prefixed frames. Every session opens with a
// negotiated header (protocol ID, role, parameter digest), so both
// endpoints must construct identical Params — mismatches fail fast
// before any protocol traffic flows.
//
// Two deployment shapes are exposed:
//
//   - Two-party: the Send/Receive function pairs below run one protocol
//     over one byte stream, for symmetric peers.
//   - Client/server: a Server accepts TCP or unix connections and runs
//     many concurrent sessions against registered handlers; a Dialer is
//     the matching client. Handlers bind a protocol side to parameters
//     and local data, and carry the typed result after the session.

// EMDSend runs Alice's side of the EMD protocol over rw: the session
// header plus the single Algorithm 1 message.
func EMDSend(rw io.ReadWriter, p EMDParams, sa PointSet) error {
	return netproto.EMDAlice(rw, p, sa)
}

// EMDReceive runs Bob's side over rw and returns his reconciled set.
func EMDReceive(rw io.ReadWriter, p EMDParams, sb PointSet) (EMDResult, error) {
	return netproto.EMDBob(rw, p, sb)
}

// GapAliceReport is what the sending side of a networked gap run learns.
type GapAliceReport = gap.AliceReport

// GapSend runs Alice's side of the 4-round Gap Guarantee protocol over
// rw.
func GapSend(rw io.ReadWriter, p GapParams, sa PointSet) (GapAliceReport, error) {
	return netproto.GapAlice(rw, p, sa)
}

// GapReceive runs Bob's side over rw; the result carries this endpoint's
// traffic statistics.
func GapReceive(rw io.ReadWriter, p GapParams, sb PointSet) (GapResult, error) {
	return netproto.GapBob(rw, p, sb)
}

// SyncWireParams tunes networked exact-ID synchronization.
type SyncWireParams = netproto.SyncParams

// SyncIDsInitiator reconciles an ID set against a remote responder; both
// ends finish knowing the full symmetric difference.
func SyncIDsInitiator(rw io.ReadWriter, p SyncWireParams, ids []uint64) (theirsOnly, minesOnly []uint64, err error) {
	return netproto.SyncInitiatorFunc(rw, p, ids)
}

// SyncIDsResponder is the peer of SyncIDsInitiator.
func SyncIDsResponder(rw io.ReadWriter, p SyncWireParams, ids []uint64) (theirsOnly []uint64, err error) {
	return netproto.SyncResponderFunc(rw, p, ids)
}

// ---------------------------------------------------------------------------
// Session engine: the multi-peer server and client (internal/session),
// re-exported for deployments that serve many concurrent peers.

// Proto identifies a reconciliation protocol in the session header.
type Proto = netproto.Proto

// The negotiable protocols.
const (
	ProtoEMD     = netproto.ProtoEMD
	ProtoGap     = netproto.ProtoGap
	ProtoSync    = netproto.ProtoSync
	ProtoSetSets = netproto.ProtoSetSets
)

// Role is the side of a protocol an endpoint plays.
type Role = netproto.Role

// SessionHandler is one party's protocol state machine bound to its
// parameters and local data; construct with the New*Sender/Receiver and
// New*Initiator/Responder helpers.
type SessionHandler = netproto.Handler

// Server accepts TCP or unix connections and runs many concurrent
// reconciliation sessions against registered handler factories.
type Server = session.Server

// ServerConfig tunes a Server (session caps, deadlines, callbacks).
type ServerConfig = session.Config

// Session owns one served peer's negotiated protocol state machine.
type Session = session.Session

// Dialer opens client sessions against a Server.
type Dialer = session.Dialer

// NewServer builds a reconciliation server; register handler factories
// with its Handle method, then Listen or Serve.
func NewServer(cfg ServerConfig) *Server { return session.NewServer(cfg) }

// NewEMDSender binds Alice's side of the EMD protocol to her point set.
func NewEMDSender(p EMDParams, sa PointSet) SessionHandler { return netproto.NewEMDSender(p, sa) }

// NewEMDReceiver binds Bob's side of the EMD protocol to his point set;
// after the session, Result holds his reconciled set.
func NewEMDReceiver(p EMDParams, sb PointSet) *netproto.EMDReceiver {
	return netproto.NewEMDReceiver(p, sb)
}

// NewGapSender binds Alice's side of the Gap protocol; after the
// session, Report holds what she transmitted.
func NewGapSender(p GapParams, sa PointSet) *netproto.GapSender {
	return netproto.NewGapSender(p, sa)
}

// NewGapReceiver binds Bob's side of the Gap protocol; after the
// session, Result holds his covered set.
func NewGapReceiver(p GapParams, sb PointSet) *netproto.GapReceiver {
	return netproto.NewGapReceiver(p, sb)
}

// NewSyncInitiator binds the initiating side of exact ID
// reconciliation; after the session, TheirsOnly and MinesOnly hold the
// symmetric difference.
func NewSyncInitiator(p SyncWireParams, ids []uint64) *netproto.SyncInitiator {
	return netproto.NewSyncInitiator(p, ids)
}

// NewSyncResponder binds the answering side of exact ID reconciliation.
func NewSyncResponder(p SyncWireParams, ids []uint64) *netproto.SyncResponder {
	return netproto.NewSyncResponder(p, ids)
}

// ---------------------------------------------------------------------------
// Live sets: mutable reconciliation state with epoch-tagged snapshots
// and delta synchronization (internal/live), for deployments whose sets
// churn while they serve.

// LiveSet wraps a point multiset with Add/Remove/ApplyBatch and
// incrementally maintains the enabled protocol structures: the EMD
// sketch (O(hashes) cell updates per mutation, wire-bit-identical to a
// from-scratch build), cached Gap key payloads, and exact-ID
// fingerprint state. Every mutation bumps an epoch; sessions serve
// consistent snapshots.
type LiveSet = live.Set

// LiveConfig selects which protocol structures a LiveSet maintains.
type LiveConfig = live.Config

// LiveSyncConfig enables exact-ID state over point fingerprints.
type LiveSyncConfig = live.SyncConfig

// LiveOp is one LiveSet batch mutation.
type LiveOp = live.Op

// LiveSnapshot is one epoch's immutable serving state.
type LiveSnapshot = live.Snapshot

// NewLiveSet builds a live set over the initial points using the
// sharded from-scratch constructions.
func NewLiveSet(cfg LiveConfig, initial PointSet) (*LiveSet, error) {
	return live.NewSet(cfg, initial)
}

// LivePointIDs fingerprints every distinct point the way a LiveSet with
// LiveSyncConfig.Seed == seed does; sync clients derive their ID lists
// with it.
func LivePointIDs(seed uint64, pts PointSet) []uint64 { return live.IDsOf(seed, pts) }

// ProtoLiveEMD is the epoch-tagged EMD protocol with a delta-sync fast
// path for returning peers.
const ProtoLiveEMD = netproto.ProtoLiveEMD

// EMDSketchCache is a client's sketch cache across live EMD sessions;
// share one per (server, params) pair so returning sessions take the
// delta path.
type EMDSketchCache = netproto.EMDCache

// NewLiveEMDSenderFactory registers the live EMD protocol: each session
// serves the set's current epoch, shipping only churned cells to peers
// that announce a journal-covered epoch.
func NewLiveEMDSenderFactory(ls *LiveSet) (func() SessionHandler, error) {
	return netproto.NewLiveEMDSenderFactory(ls)
}

// NewLiveEMDReceiver binds Bob's side of the live EMD protocol; after
// the session, Result holds his reconciled set and the cache is
// advanced to the served epoch.
func NewLiveEMDReceiver(p EMDParams, sb PointSet, cache *EMDSketchCache) *netproto.LiveEMDReceiver {
	return netproto.NewLiveEMDReceiver(p, sb, cache)
}

// NewLiveGapSenderFactory serves ordinary Gap sessions from the set's
// cached key payloads (any GapReceiver can be the peer).
func NewLiveGapSenderFactory(ls *LiveSet) (func() SessionHandler, error) {
	return netproto.NewLiveGapSenderFactory(ls)
}

// NewLiveSyncResponderFactory serves ordinary exact-ID sync sessions
// from the set's fingerprint state; p must agree with the set's
// LiveSyncConfig.
func NewLiveSyncResponderFactory(p SyncWireParams, ls *LiveSet) (func() SessionHandler, error) {
	return netproto.NewLiveSyncResponderFactory(p, ls)
}

// ---------------------------------------------------------------------------
// Multi-tenant set store and the anti-entropy cluster (internal/store,
// internal/cluster): one server hosting many named live sets under RSYN
// v2 namespaces, and mesh nodes converging those sets with their peers
// continuously.

// SetStore is a concurrent registry of named LiveSets, each with its
// own protocol parameters. The empty name is the default set, which v1
// peers (whose hellos carry no namespace) are served from.
type SetStore = store.Store

// NewSetStore builds an empty store; serve it by setting
// ServerConfig.Resolver = NewStoreResolver(st).
func NewSetStore() *SetStore { return store.New() }

// StoreStats aggregates a store's per-set gauges.
type StoreStats = store.Stats

// NewStoreResolver makes a session server serve every store set under
// its namespace: live-emd/gap/sync per the set's LiveConfig, plus the
// cluster probe and repair protocols.
func NewStoreResolver(st *SetStore) netproto.Resolver { return netproto.StoreResolver(st) }

// ProtoProbe is the cluster divergence-estimate exchange; ProtoRepair
// converges two live sets exactly (ID sync + point payloads).
const (
	ProtoProbe  = netproto.ProtoProbe
	ProtoRepair = netproto.ProtoRepair
)

// ClusterNode is one anti-entropy mesh member: a store, a session
// server, and a reconciler loop with power-of-two-choices peer
// selection.
type ClusterNode = cluster.Node

// ClusterConfig tunes a ClusterNode.
type ClusterConfig = cluster.Config

// ClusterSetMetrics is one hosted set's anti-entropy counters.
type ClusterSetMetrics = cluster.SetMetrics

// NewClusterNode builds a mesh member over the store; Start it with an
// address, install peers, and the reconciler keeps every hosted set
// converging.
func NewClusterNode(cfg ClusterConfig) (*ClusterNode, error) { return cluster.New(cfg) }

// Compile-time checks that the split-party APIs stay usable directly.
var (
	_ = emd.BuildMessage
	_ = emd.ApplyMessage
	_ = gap.RunAlice
	_ = gap.RunBob
)

package robustsync

import (
	"testing"

	"repro/internal/workload"
)

func TestTwoWayGapCoversBothDirections(t *testing.T) {
	space := HammingSpace(512)
	// Far points on both sides: Alice has 3 Bob lacks, Bob has 2 Alice
	// lacks.
	inst, err := workload.NewGapInstance(space, 40, 3, 2, 8, 128, 91)
	if err != nil {
		t.Fatal(err)
	}
	p := GapParams{Space: space, N: 45, R1: 8, R2: 128, Seed: 71}
	res, err := ReconcileGapTwoWay(p, inst.SA, inst.SB)
	if err != nil {
		t.Fatal(err)
	}
	// Every point of SA covered by Bob's final set, and every point of
	// SB covered by Alice's.
	for _, a := range inst.SA {
		if d, _ := res.BPrime.MinDistanceTo(space, a); d > 128 {
			t.Errorf("B' misses Alice point at distance %v", d)
		}
	}
	for _, b := range inst.SB {
		if d, _ := res.APrime.MinDistanceTo(space, b); d > 128 {
			t.Errorf("A' misses Bob point at distance %v", d)
		}
	}
	// Bob planted 2 far points; Alice must have received them.
	if len(res.BtoA.TA) < 2 {
		t.Errorf("b→a transferred %d points, want >= 2", len(res.BtoA.TA))
	}
	if len(res.AtoB.TA) < 3 {
		t.Errorf("a→b transferred %d points, want >= 3", len(res.AtoB.TA))
	}
}

func TestTwoWayEMD(t *testing.T) {
	space := GridSpace(4095, 2, L2)
	const n, k = 24, 2
	inst := workload.NewEMDInstance(space, n, k, 6, 93)
	p := DefaultEMDParams(space, n, k, 95)
	res, err := ReconcileEMDTwoWay(p, inst.SA, inst.SB)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AtoB.Failed && len(res.BPrime) != n {
		t.Errorf("|B'| = %d", len(res.BPrime))
	}
	if !res.BtoA.Failed && len(res.APrime) != n {
		t.Errorf("|A'| = %d", len(res.APrime))
	}
	if res.AtoB.Failed && res.BtoA.Failed {
		t.Error("both directions failed (prob <= 1/64)")
	}
}

package cluster

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Peer health ledger: a per-peer EWMA failure score driving a
// three-state circuit breaker, plus a per-peer EWMA RTT that replaces
// the single global session deadline.
//
// Every outbound session outcome is reported here. Successes decay the
// score; timeouts and cut errors add healthFailureWeight; a corruption
// verdict (a repair payload that failed verify-before-merge) adds
// healthCorruptWeight. Crossing healthProbationScore marks the peer
// probation (observed, still probed); crossing healthQuarantineScore
// quarantines it for a span of rounds, during which pickFromLocked's
// power-of-d draw and the placement owner-pool probing skip it — the
// peer stays in the gossip member table, it just stops receiving this
// node's anti-entropy budget. When the span expires the breaker goes
// half-open: the peer is eligible again, one probe decides. A clean
// session demotes it to probation (and onward to healthy as successes
// accumulate); another failure or corruption re-quarantines it with the
// span doubled, capped at quarantineSpanCap× the base.
//
// The weights are chosen so that two corruption verdicts convict even
// with an interleaved success (1.0, ×0.5 decay +1.0 = 1.5 ≥ 1.25; with
// a success between: 1.0 → 0.5 → 1.25), while transient failures need
// four in a row (0.7 → 1.05 → 1.225 → 1.3125) — a crashed peer is
// quarantined eventually, a corrupting peer almost immediately.
const (
	// healthDecay multiplies the score on every report (EWMA memory).
	healthDecay = 0.5
	// healthFailureWeight is added per timeout / transport failure.
	healthFailureWeight = 0.7
	// healthCorruptWeight is added per corruption verdict.
	healthCorruptWeight = 1.0
	// healthProbationScore enters probation at or above.
	healthProbationScore = 0.75
	// healthQuarantineScore enters quarantine at or above.
	healthQuarantineScore = 1.25
	// defaultQuarantineRounds is the base quarantine span, in
	// reconciliation rounds (Config.QuarantineRounds overrides).
	defaultQuarantineRounds = 16
	// quarantineSpanCap bounds repeat-offender span doubling, as a
	// multiple of the base span.
	quarantineSpanCap = 8
	// healthRTTAlpha is the EWMA weight of the newest RTT sample.
	healthRTTAlpha = 0.2
	// rttDeadlineMult × EWMA RTT is the adaptive session deadline.
	rttDeadlineMult = 8
	// rttDeadlineFloor keeps the adaptive deadline sane on fast links:
	// a 200µs loopback RTT must not produce a 1.6ms deadline that a GC
	// pause would trip.
	rttDeadlineFloor = 5 * time.Second
)

// PeerState is the circuit-breaker state of one peer in the ledger.
type PeerState int

const (
	// PeerHealthy: full participant in peer selection.
	PeerHealthy PeerState = iota
	// PeerProbation: elevated failure score, still probed.
	PeerProbation
	// PeerQuarantined: skipped by peer selection until the span
	// expires (then half-open: one session decides).
	PeerQuarantined
)

// String implements fmt.Stringer.
func (s PeerState) String() string {
	switch s {
	case PeerHealthy:
		return "healthy"
	case PeerProbation:
		return "probation"
	case PeerQuarantined:
		return "quarantined"
	default:
		return fmt.Sprintf("PeerState(%d)", int(s))
	}
}

// PeerHealth is a snapshot of one peer's ledger entry.
type PeerHealth struct {
	State PeerState
	// Score is the EWMA failure score (see the weight constants).
	Score float64
	// RTT is the EWMA session round-trip time (0 before any sample).
	RTT time.Duration
	// QuarantineLeft is rounds remaining in the current span (0 when
	// not quarantined, or when quarantined and half-open).
	QuarantineLeft int
	// Successes / Failures / Corruptions / Quarantines are lifetime
	// outcome counters.
	Successes   uint64
	Failures    uint64
	Corruptions uint64
	Quarantines uint64
}

// peerEntry is the mutable ledger line for one peer address.
type peerEntry struct {
	state       PeerState
	score       float64
	rttNS       float64 // EWMA, 0 = no sample yet
	left        int     // quarantine rounds remaining
	span        int     // last applied span, for doubling
	successes   uint64
	failures    uint64
	corruptions uint64
	quarantines uint64
}

// ledger is the node's peer health table. Its mutex is a leaf lock:
// methods never call back into the node, so it is safe to use both
// under n.mu (peer selection) and outside it (session outcomes).
type ledger struct {
	mu sync.Mutex
	// base is the quarantine span in rounds.
	base int
	// skipDisabled disables eligibility filtering (scores and RTT are
	// still tracked, so operators can observe without enforcement).
	skipDisabled bool
	peers        map[string]*peerEntry
}

func newLedger(baseRounds int, disabled bool) *ledger {
	if baseRounds <= 0 {
		baseRounds = defaultQuarantineRounds
	}
	return &ledger{
		base:         baseRounds,
		skipDisabled: disabled,
		peers:        make(map[string]*peerEntry),
	}
}

func (l *ledger) entry(addr string) *peerEntry {
	e := l.peers[addr]
	if e == nil {
		e = &peerEntry{}
		l.peers[addr] = e
	}
	return e
}

// reportSuccess records a clean session: the score decays, the RTT
// EWMA absorbs the sample, and a half-open quarantined peer is demoted
// to probation (one clean session is evidence, not absolution — only
// further successes walk it back to healthy).
func (l *ledger) reportSuccess(addr string, rtt time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := l.entry(addr)
	e.successes++
	e.score *= healthDecay
	if rtt > 0 {
		if e.rttNS == 0 {
			e.rttNS = float64(rtt.Nanoseconds())
		} else {
			e.rttNS = (1-healthRTTAlpha)*e.rttNS + healthRTTAlpha*float64(rtt.Nanoseconds())
		}
	}
	switch e.state {
	case PeerQuarantined:
		e.state = PeerProbation
		e.left = 0
		if e.score < healthProbationScore {
			e.score = healthProbationScore
		}
	case PeerProbation:
		if e.score < healthProbationScore {
			e.state = PeerHealthy
			e.span = 0
		}
	}
}

// reportFailure records a timeout / transport failure.
func (l *ledger) reportFailure(addr string) { l.bump(addr, healthFailureWeight, false) }

// reportCorruption records a verify-before-merge rejection — the
// strongest possible evidence against a peer.
func (l *ledger) reportCorruption(addr string) { l.bump(addr, healthCorruptWeight, true) }

func (l *ledger) bump(addr string, weight float64, corrupt bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := l.entry(addr)
	if corrupt {
		e.corruptions++
	} else {
		e.failures++
	}
	e.score = e.score*healthDecay + weight
	switch e.state {
	case PeerQuarantined:
		if e.left == 0 {
			// Half-open probe failed: re-quarantine, span doubled.
			l.quarantineLocked(e)
		}
		// Still serving a span: accumulate only.
	default:
		switch {
		case e.score >= healthQuarantineScore:
			l.quarantineLocked(e)
		case e.score >= healthProbationScore:
			e.state = PeerProbation
		}
	}
}

// quarantineLocked arms (or re-arms, doubled) the quarantine span.
// Caller holds l.mu.
func (l *ledger) quarantineLocked(e *peerEntry) {
	if e.span == 0 {
		e.span = l.base
	} else {
		e.span = min(e.span*2, l.base*quarantineSpanCap)
	}
	e.left = e.span
	e.state = PeerQuarantined
	e.quarantines++
}

// tick advances quarantine spans by one round; a span reaching zero
// leaves the peer quarantined but half-open (eligible again — the next
// session outcome decides).
func (l *ledger) tick() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, e := range l.peers {
		if e.state == PeerQuarantined && e.left > 0 {
			e.left--
		}
	}
}

// eligible filters quarantined peers out of a candidate pool. The
// original slice is returned untouched when nothing is filtered — the
// healthy path must be allocation- and behavior-identical to a node
// without the ledger. If every candidate is quarantined the full pool
// is returned: total exclusion would isolate this node on exactly the
// rounds where it most needs a peer.
func (l *ledger) eligible(pool []string) []string {
	if l.skipDisabled || len(pool) == 0 {
		return pool
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	skip := 0
	for _, addr := range pool {
		if e := l.peers[addr]; e != nil && e.state == PeerQuarantined && e.left > 0 {
			skip++
		}
	}
	if skip == 0 || skip == len(pool) {
		return pool
	}
	out := make([]string, 0, len(pool)-skip)
	for _, addr := range pool {
		if e := l.peers[addr]; e != nil && e.state == PeerQuarantined && e.left > 0 {
			continue
		}
		out = append(out, addr)
	}
	return out
}

// deadline derives the peer's adaptive session deadline from its EWMA
// RTT: rttDeadlineMult× the EWMA, floored (a fast link must not get a
// hair-trigger deadline) and capped at the configured fallback (the
// adaptive value only ever tightens the global bound).
func (l *ledger) deadline(addr string, fallback time.Duration) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := l.peers[addr]
	if e == nil || e.rttNS == 0 {
		return fallback
	}
	d := time.Duration(e.rttNS * rttDeadlineMult)
	if d < rttDeadlineFloor {
		d = rttDeadlineFloor
	}
	if fallback > 0 && d > fallback {
		d = fallback
	}
	return d
}

// snapshot returns a copy of every peer's health line.
func (l *ledger) snapshot() map[string]PeerHealth {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]PeerHealth, len(l.peers))
	for addr, e := range l.peers {
		out[addr] = PeerHealth{
			State:          e.state,
			Score:          e.score,
			RTT:            time.Duration(e.rttNS),
			QuarantineLeft: e.left,
			Successes:      e.successes,
			Failures:       e.failures,
			Corruptions:    e.corruptions,
			Quarantines:    e.quarantines,
		}
	}
	return out
}

// summary formats a one-line fleet health digest for logs and traces.
func (l *ledger) summary() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	var healthy, probation, quarantined int
	var corrupt uint64
	quarantinedAddrs := make([]string, 0, 2)
	for addr, e := range l.peers {
		corrupt += e.corruptions
		switch e.state {
		case PeerQuarantined:
			quarantined++
			quarantinedAddrs = append(quarantinedAddrs, addr)
		case PeerProbation:
			probation++
		default:
			healthy++
		}
	}
	s := fmt.Sprintf("peers=%d healthy=%d probation=%d quarantined=%d corrupt-verdicts=%d",
		len(l.peers), healthy, probation, quarantined, corrupt)
	if quarantined > 0 {
		sort.Strings(quarantinedAddrs)
		s += " [" + strings.Join(quarantinedAddrs, " ") + "]"
	}
	return s
}

// PeerHealths returns a snapshot of the node's peer health ledger,
// keyed by peer address.
func (n *Node) PeerHealths() map[string]PeerHealth { return n.health.snapshot() }

// HealthSummary returns a one-line digest of the ledger (peer counts
// per state, total corruption verdicts, quarantined addresses).
func (n *Node) HealthSummary() string { return n.health.summary() }

package cluster

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/emd"
	"repro/internal/live"
	"repro/internal/metric"
	"repro/internal/rng"
	"repro/internal/simnet"
	"repro/internal/store"
)

const (
	testSyncSeed = 42
	testDim      = 64
	testCapacity = 256
)

func testPoints(n int, seed uint64) metric.PointSet {
	space := metric.HammingCube(testDim)
	src := rng.New(seed)
	out := make(metric.PointSet, n)
	for i := range out {
		pt := make(metric.Point, space.Dim)
		for j := range pt {
			pt[j] = int32(src.Uint64() % uint64(space.Delta+1))
		}
		out[i] = pt
	}
	return out
}

// testStore hosts three sets with identical cross-node configs but
// node-specific extra points: "alpha" maintains EMD+Sync (exercising
// the live-emd tier), "beta" and the default set Sync only.
func testStore(t *testing.T, node int) *store.Store {
	t.Helper()
	st := store.New()
	space := metric.HammingCube(testDim)
	for i, name := range []string{"", "alpha", "beta"} {
		base := testPoints(20, uint64(i+1))
		extras := testPoints(5, uint64(100+10*node+i))
		cfg := live.Config{Sync: &live.SyncConfig{Seed: testSyncSeed}}
		if name == "alpha" {
			p := emd.DefaultParams(space, testCapacity, 4, 7)
			cfg.EMD = &p
		}
		if _, err := st.Create(name, cfg, append(base.Clone(), extras...)); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// startMesh builds and starts n manual-round nodes over a deterministic
// simnet (hermetic: no real ports or timers) and installs the full peer
// mesh. The returned network is the fault-injection handle.
func startMesh(t *testing.T, count int) ([]*Node, *simnet.Network) {
	t.Helper()
	net := simnet.New(uint64(7 + count))
	nodes := make([]*Node, count)
	addrs := make([]string, count)
	for i := range nodes {
		host := fmt.Sprintf("node%d", i)
		n, err := New(Config{
			Store:     testStore(t, i),
			Network:   "sim",
			Interval:  -1, // manual rounds
			Seed:      uint64(1000 + i),
			Logf:      t.Logf,
			Transport: net.Host(host),
		})
		if err != nil {
			t.Fatal(err)
		}
		l, err := n.Start(host + ":1")
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		addrs[i] = l.Addr().String()
	}
	for i, n := range nodes {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		n.SetPeers(peers)
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Close(time.Second) //nolint:errcheck
		}
	})
	return nodes, net
}

// settle quiesces every node, so server-side merges from the last round
// are fully applied before state is read or the next round starts —
// the same barrier the scenario harness uses for determinism.
func settle(nodes []*Node) {
	for _, n := range nodes {
		n.Quiesce()
	}
}

// meshConverged reports whether every set is fingerprint-identical
// across all nodes.
func meshConverged(t *testing.T, nodes []*Node) bool {
	t.Helper()
	for _, name := range []string{"", "alpha", "beta"} {
		var fp uint64
		for i, n := range nodes {
			ls, ok := n.store.Get(name)
			if !ok {
				t.Fatalf("node %d lost set %q", i, name)
			}
			f := ls.IDFingerprint()
			if i == 0 {
				fp = f
			} else if f != fp {
				return false
			}
		}
	}
	return true
}

// churn applies one batch per set on the node: two fresh points in, one
// of them straight back out — exercising batched add+remove under
// concurrent anti-entropy without ever removing a point a peer may
// already have replicated (anti-entropy is add-wins; such a removal
// would legitimately resurrect).
func churn(t *testing.T, n *Node, seed uint64) {
	t.Helper()
	for i, name := range []string{"", "alpha", "beta"} {
		ls, _ := n.store.Get(name)
		fresh := testPoints(2, seed+uint64(i)*1000)
		err := ls.ApplyBatch([]live.Op{
			{Point: fresh[0]},
			{Point: fresh[1]},
			{Remove: true, Point: fresh[0]},
		})
		if err != nil {
			t.Fatalf("churn on set %q: %v", name, err)
		}
	}
}

// TestClusterConvergenceUnderChurn is the acceptance test: 3 nodes with
// divergent stores, concurrent ApplyBatch churn during the first
// rounds, then convergence to fingerprint-identical state for every
// named set within a bounded number of anti-entropy rounds.
func TestClusterConvergenceUnderChurn(t *testing.T) {
	nodes, _ := startMesh(t, 3)

	// Phase 1: anti-entropy racing churn.
	for round := 0; round < 3; round++ {
		for i, n := range nodes {
			churn(t, n, uint64(500+round*100+i*10))
			if _, err := n.ReconcileOnce(); err != nil {
				t.Fatalf("round %d node %d: %v", round, i, err)
			}
		}
	}
	settle(nodes)

	// Phase 2: churn stops; the mesh must converge within a bounded
	// number of rounds. 2 choices of 2 peers probe everyone, so each
	// round strictly propagates the union; 10 rounds is generous.
	const maxRounds = 10
	converged := -1
	for round := 0; round < maxRounds; round++ {
		for i, n := range nodes {
			if _, err := n.ReconcileOnce(); err != nil {
				t.Fatalf("settle round %d node %d: %v", round, i, err)
			}
		}
		settle(nodes)
		if meshConverged(t, nodes) {
			converged = round
			break
		}
	}
	if converged < 0 {
		for i, n := range nodes {
			for name, m := range n.Metrics() {
				t.Logf("node %d set %q: %v", i, name, m)
			}
		}
		t.Fatalf("mesh not converged after %d settle rounds", maxRounds)
	}
	t.Logf("converged after %d settle rounds", converged+1)

	// One more round: every node must now see all-matched probes, and
	// the live-emd tier must have been exercised on the EMD set.
	var deltas, fulls, repairs uint64
	for i, n := range nodes {
		if _, err := n.ReconcileOnce(); err != nil {
			t.Fatalf("final round node %d: %v", i, err)
		}
		settle(nodes)
		if !n.Converged(1) {
			t.Fatalf("node %d does not report convergence: %v", i, n.Metrics())
		}
		for _, m := range n.Metrics() {
			repairs += m.Repairs
		}
		alpha := n.Metrics()["alpha"]
		deltas += alpha.Deltas
		fulls += alpha.Fulls
	}
	if repairs == 0 {
		t.Fatal("mesh converged without a single repair session")
	}
	if deltas+fulls == 0 {
		t.Fatal("EMD set converged without a single live-emd pull")
	}
}

// TestClusterPartitionRejoin: one node leaves, the survivors keep
// churning and converge among themselves; the node rejoins (fresh
// address, same store) and catches up.
func TestClusterPartitionRejoin(t *testing.T) {
	nodes, net := startMesh(t, 3)
	a, b, c := nodes[0], nodes[1], nodes[2]

	// C leaves the mesh.
	if err := c.Close(time.Second); err != nil {
		t.Fatalf("close c: %v", err)
	}
	// Survivors churn and converge; probes of the dead member fail, so
	// rounds report errors and back off — but a and b still reconcile
	// with each other.
	for round := 0; round < 12; round++ {
		churn(t, a, uint64(900+round))
		a.ReconcileOnce() //nolint:errcheck // c is down; errors expected
		b.ReconcileOnce() //nolint:errcheck
		settle([]*Node{a, b})
		if pairConverged(a, b) {
			break
		}
	}
	if !pairConverged(a, b) {
		t.Fatal("survivors did not converge during the partition")
	}

	// C rejoins: same store, fresh node and address; the member lists
	// update (a membership change, as a real rejoin would deliver).
	c2, err := New(Config{
		Store:     c.store,
		Network:   "sim",
		Interval:  -1,
		Seed:      77,
		Logf:      t.Logf,
		Transport: net.Host("node2"),
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := c2.Start("node2:2")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c2.Close(time.Second) }) //nolint:errcheck
	cAddr := l.Addr().String()
	aL, bL := a.Peers(), b.Peers()
	a.SetPeers([]string{aL[0], cAddr})
	b.SetPeers([]string{bL[0], cAddr})
	c2.SetPeers([]string{aL[0], bL[0]})

	all := []*Node{a, b, c2}
	for round := 0; round < 12; round++ {
		for i, n := range all {
			if _, err := n.ReconcileOnce(); err != nil {
				// Backoff from the partition may still be draining;
				// tolerate errors for a few rounds.
				t.Logf("rejoin round %d node %d: %v", round, i, err)
			}
		}
		settle(all)
		if meshConverged(t, all) {
			t.Logf("rejoined after %d rounds", round+1)
			return
		}
	}
	t.Fatal("rejoined node did not catch up within 12 rounds")
}

// TestClusterNetworkPartitionHeals drives a true network partition (the
// nodes stay up; the simnet refuses cross-group dials) rather than a
// member death: the majority side keeps churning, the minority backs
// off, and after the heal the whole mesh converges again.
func TestClusterNetworkPartitionHeals(t *testing.T) {
	nodes, net := startMesh(t, 3)

	// Everyone level first.
	for round := 0; round < 6; round++ {
		for _, n := range nodes {
			n.ReconcileOnce() //nolint:errcheck
		}
		settle(nodes)
		if meshConverged(t, nodes) {
			break
		}
	}
	if !meshConverged(t, nodes) {
		t.Fatal("mesh did not level before the partition")
	}

	net.Partition([]string{"node0", "node1"}, []string{"node2"})
	sawPartitionErr := false
	for round := 0; round < 4; round++ {
		churn(t, nodes[0], uint64(7000+round))
		for _, n := range nodes {
			if _, err := n.ReconcileOnce(); err != nil {
				sawPartitionErr = true
			}
		}
		settle(nodes)
	}
	if !sawPartitionErr {
		t.Fatal("no reconcile error during the partition; the fault never bit")
	}
	if pairConverged(nodes[0], nodes[2]) {
		t.Fatal("minority node converged across the partition")
	}
	if !pairConverged(nodes[0], nodes[1]) {
		t.Fatal("majority side did not converge during the partition")
	}

	net.Heal()
	// Backoff from the partition drains within MaxBackoff (8) rounds.
	for round := 0; round < 20; round++ {
		for _, n := range nodes {
			n.ReconcileOnce() //nolint:errcheck
		}
		settle(nodes)
		if meshConverged(t, nodes) {
			t.Logf("healed after %d rounds", round+1)
			return
		}
	}
	t.Fatal("mesh did not converge after the heal")
}

func pairConverged(a, b *Node) bool {
	for _, name := range []string{"", "alpha", "beta"} {
		la, _ := a.store.Get(name)
		lb, _ := b.store.Get(name)
		if la.IDFingerprint() != lb.IDFingerprint() {
			return false
		}
	}
	return true
}

// TestBackoffAfterDeadPeer: with every peer unreachable, the set backs
// off exponentially instead of hammering the dead address each round.
func TestBackoffAfterDeadPeer(t *testing.T) {
	st := testStore(t, 0)
	net := simnet.New(3)
	n, err := New(Config{
		Store:     st,
		Network:   "sim",
		Interval:  -1,
		Peers:     []string{"ghost:1"}, // no such listener
		Transport: net.Host("node0"),
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := n.Start("node0:1")
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close(time.Second) //nolint:errcheck
	_ = l
	for i := 0; i < 8; i++ {
		n.ReconcileOnce() //nolint:errcheck
	}
	m := n.Metrics()["alpha"]
	if m.ProbeFailures == 0 {
		t.Fatal("no probe failures against a dead peer")
	}
	if m.Skipped == 0 {
		t.Fatalf("no backoff skips after repeated failures: %+v", m)
	}
	if m.Probes >= 8 {
		t.Fatalf("backoff did not reduce probing: %d probes in 8 rounds", m.Probes)
	}
	if n.Converged(1) {
		t.Fatal("node reports convergence with all peers dead")
	}
}

// TestReconcileRespectsDroppedSets: dropping a set mid-life stops its
// reconciliation without disturbing the others.
func TestReconcileRespectsDroppedSets(t *testing.T) {
	nodes, _ := startMesh(t, 2)
	a, b := nodes[0], nodes[1]
	if !a.store.Drop("beta") {
		t.Fatal("drop failed")
	}
	var lastErr error
	for i := 0; i < 10; i++ {
		_, errA := a.ReconcileOnce()
		_, errB := b.ReconcileOnce()
		if errA != nil {
			lastErr = errA
		}
		if errB != nil {
			lastErr = errB
		}
	}
	settle(nodes)
	// b still hosts beta and probes a for it; a rejects with unknown
	// set — that error must not prevent alpha/default convergence.
	for _, name := range []string{"", "alpha"} {
		la, _ := a.store.Get(name)
		lb, _ := b.store.Get(name)
		if la.IDFingerprint() != lb.IDFingerprint() {
			t.Fatalf("set %q did not converge (last err: %v)", name, lastErr)
		}
	}
	if lastErr == nil {
		t.Fatal("expected unknown-set probe errors for the dropped set")
	}
	if fmt.Sprint(lastErr) == "" {
		t.Fatal("empty error")
	}
}

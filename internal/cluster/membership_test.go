package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/gossip"
	"repro/internal/live"
	"repro/internal/placement"
	"repro/internal/rng"
	"repro/internal/simnet"
	"repro/internal/store"
)

// gossipCatalog builds a uniform Sync-only catalog of nSets shards.
func gossipCatalog(nSets int) []CatalogSet {
	out := make([]CatalogSet, nSets)
	for i := range out {
		out[i] = CatalogSet{
			Name:   fmt.Sprintf("shard-%02d", i),
			Config: live.Config{Sync: &live.SyncConfig{Seed: testSyncSeed}},
		}
	}
	return out
}

// startGossipMesh builds count empty-store nodes in gossip-fed
// placement mode over a simnet, every node seeded with the full address
// list, and applies the initial placement so each node hosts exactly
// its owned shards.
func startGossipMesh(t *testing.T, count, nSets, rf int) ([]*Node, []string, *simnet.Network) {
	t.Helper()
	net := simnet.New(uint64(31 + count))
	cat := gossipCatalog(nSets)
	addrs := make([]string, count)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("node%d:1", i)
	}
	nodes := make([]*Node, count)
	for i := range nodes {
		host := fmt.Sprintf("node%d", i)
		g, err := gossip.New(gossip.Config{
			Self:          addrs[i],
			Seeds:         addrs,
			SuspectRounds: 2,
			Seed:          uint64(500 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		n, err := New(Config{
			Store:         store.New(),
			Network:       "sim",
			Interval:      -1,
			Seed:          uint64(1000 + i),
			Logf:          t.Logf,
			Transport:     net.Host(host),
			Membership:    g,
			Catalog:       cat,
			Replication:   rf,
			PlacementSeed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		l, err := n.Start(host + ":1")
		if err != nil {
			t.Fatal(err)
		}
		if got := l.Addr().String(); got != addrs[i] {
			t.Fatalf("node %d bound %q, want %q", i, got, addrs[i])
		}
		nodes[i] = n
	}
	for _, n := range nodes {
		n.ApplyPlacement()
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Close(time.Second) //nolint:errcheck
		}
	})
	return nodes, addrs, net
}

// driveGossipRounds runs full rounds (gossip, then reconcile, with
// quiesce barriers) over the live nodes until done() or maxRounds.
func driveGossipRounds(t *testing.T, nodes []*Node, maxRounds int, done func() bool) int {
	t.Helper()
	for r := 1; r <= maxRounds; r++ {
		for _, n := range nodes {
			n.GossipOnce()
		}
		settle(nodes)
		for _, n := range nodes {
			n.ReconcileOnce() //nolint:errcheck
		}
		settle(nodes)
		if done() {
			return r
		}
	}
	t.Fatalf("not done after %d rounds", maxRounds)
	return maxRounds
}

// placementSettled reports whether every catalog shard is hosted by
// exactly wantHosts of the live nodes, fingerprint-identical across
// them, with no handoffs pending anywhere.
func placementSettled(nodes []*Node, nSets, wantHosts int) bool {
	for _, n := range nodes {
		if n.Placement().Relinquishing > 0 {
			return false
		}
	}
	for i := 0; i < nSets; i++ {
		name := fmt.Sprintf("shard-%02d", i)
		hosts := 0
		var fp uint64
		fpSet := false
		for _, n := range nodes {
			ls, ok := n.store.Get(name)
			if !ok {
				continue
			}
			hosts++
			f := ls.IDFingerprint()
			if !fpSet {
				fp, fpSet = f, true
			} else if f != fp {
				return false
			}
		}
		if hosts != wantHosts {
			return false
		}
	}
	return true
}

// TestGossipPlacementLifecycle is the subsystem's acceptance test in
// miniature: 6 nodes, 8 shards, R=2. Placement creates each shard on
// exactly its owners; owner-planted points converge within the replica
// group; a graceful leave and then an unannounced crash each move
// ownership and re-replicate without losing a point; per-node load
// stays within the bounded-loads budget throughout.
func TestGossipPlacementLifecycle(t *testing.T) {
	const (
		nNodes = 6
		nSets  = 8
		rf     = 2
	)
	nodes, addrs, _ := startGossipMesh(t, nNodes, nSets, rf)

	// Initial placement: every shard on exactly rf nodes, none pending.
	hostCount := map[string]int{}
	perNode := make([]int, nNodes)
	for i, n := range nodes {
		for _, name := range n.store.Names() {
			hostCount[name]++
			perNode[i]++
		}
	}
	if len(hostCount) != nSets {
		t.Fatalf("placement created %d distinct shards, want %d", len(hostCount), nSets)
	}
	budget := placement.New(addrs, 0, 7).Capacity(nSets, rf, 0)
	for name, c := range hostCount {
		if c != rf {
			t.Fatalf("shard %q on %d nodes, want %d", name, c, rf)
		}
	}
	for i, c := range perNode {
		if c > budget {
			t.Fatalf("node %d hosts %d shards, budget %d", i, c, budget)
		}
	}

	// Plant divergent owner-local points: 5 per hosting node per shard.
	// The converged size per shard is therefore 5·rf distinct points,
	// and it must stay 5·rf through every ownership move below.
	for i, n := range nodes {
		for _, name := range n.store.Names() {
			ls, _ := n.store.Get(name)
			for _, pt := range testPoints(5, uint64(7000+i*100)+uint64(name[len(name)-1])) {
				if err := ls.Add(pt); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	wantSize := 5 * rf

	checkSizes := func(live []*Node) {
		t.Helper()
		for i := 0; i < nSets; i++ {
			name := fmt.Sprintf("shard-%02d", i)
			for _, n := range live {
				if ls, ok := n.store.Get(name); ok {
					if got := ls.Size(); got != wantSize {
						t.Fatalf("shard %q has %d points on some host, want %d", name, got, wantSize)
					}
				}
			}
		}
	}

	r := driveGossipRounds(t, nodes, 30, func() bool {
		return placementSettled(nodes, nSets, rf)
	})
	t.Logf("initial convergence after %d rounds", r)
	checkSizes(nodes)

	// Graceful leave: node 5 announces, pushes state, and departs.
	// Ownership of its shards moves; the new owners pull the content.
	if err := nodes[5].Leave(time.Second); err != nil {
		t.Fatalf("leave: %v", err)
	}
	alive := nodes[:5]
	r = driveGossipRounds(t, alive, 40, func() bool {
		return placementSettled(alive, nSets, rf)
	})
	t.Logf("re-settled after leave in %d rounds", r)
	checkSizes(alive)

	// Unannounced crash: node 4 vanishes. Suspicion ages it to dead,
	// placement reassigns, and the surviving replica re-replicates.
	// (A zero drain force-closes whatever is in flight — that is the
	// crash; the shutdown error is the point, not a failure.)
	nodes[4].Close(0) //nolint:errcheck
	alive = nodes[:4]
	r = driveGossipRounds(t, alive, 60, func() bool {
		return placementSettled(alive, nSets, rf)
	})
	t.Logf("re-settled after crash in %d rounds", r)
	checkSizes(alive)

	// Load bound still holds on the shrunk mesh.
	survivors := addrs[:4]
	budget = placement.New(survivors, 0, 7).Capacity(nSets, rf, 0)
	for i, n := range alive {
		if c := len(n.store.Names()); c > budget {
			t.Fatalf("node %d hosts %d shards after churn, budget %d", i, c, budget)
		}
	}
}

// TestSetPeersRacesReconciler hammers the membership seam gossip drives
// constantly: SetPeers flipping between full, shrunk, grown (with an
// unreachable ghost), and empty lists while reconciliation rounds run
// concurrently — plus a health reader snapshotting the peer ledger the
// same rounds are writing (probe outcomes, quarantine transitions). It
// must not panic or deadlock, and once the list settles to the live
// members, later rounds must stop touching the departed address
// entirely.
func TestSetPeersRacesReconciler(t *testing.T) {
	nodes, _ := startMesh(t, 3)
	n := nodes[0]
	full := n.Peers()
	ghost := append(append([]string(nil), full...), "ghost:1")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		src := rng.New(77)
		for {
			select {
			case <-stop:
				return
			default:
			}
			switch src.Intn(4) {
			case 0:
				n.SetPeers(nil)
			case 1:
				n.SetPeers(full[:1])
			case 2:
				n.SetPeers(ghost)
			default:
				n.SetPeers(full)
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, h := range n.PeerHealths() {
				if h.Failures+h.Successes+h.Corruptions == 0 && h.State != PeerHealthy {
					t.Errorf("peer with no outcomes in state %v", h.State)
					return
				}
			}
			_ = n.HealthSummary()
		}
	}()
	var raceErr error
	for i := 0; i < 40; i++ {
		if _, err := n.ReconcileOnce(); err != nil && raceErr == nil {
			raceErr = err // ghost probes fail by design; just note one
		}
	}
	close(stop)
	wg.Wait()
	t.Logf("first mid-race error (expected, ghost peer): %v", raceErr)

	// Membership settles: the ghost is gone. Drain pending backoff,
	// then verify rounds are clean — no probe failures means no session
	// ever touched the departed peer again.
	n.SetPeers(full)
	settle(nodes)
	for i := 0; i < 10; i++ {
		n.ReconcileOnce() //nolint:errcheck
	}
	settle(nodes)
	failuresAt := func() uint64 {
		var sum uint64
		for _, m := range n.Metrics() {
			sum += m.ProbeFailures + m.RepairFailures
		}
		return sum
	}
	before := failuresAt()
	for i := 0; i < 10; i++ {
		if _, err := n.ReconcileOnce(); err != nil {
			t.Fatalf("round after settling: %v", err)
		}
	}
	if after := failuresAt(); after != before {
		t.Fatalf("departed peer still probed: failures %d -> %d", before, after)
	}
}

package cluster

import (
	"time"

	"repro/internal/gossip"
	"repro/internal/placement"
)

// Gossip-fed membership and ring placement. With Config.Membership set,
// the node stops treating its peer list and hosted-set roster as static
// facts: the member table is maintained by SWIM-style exchanges
// (GossipOnce), and which sets this node hosts follows the consistent-
// hash ring over the live members (ApplyPlacement). The reconciler
// itself is unchanged — it still probes d choices and repairs the most
// divergent — but its peer pool per set becomes that set's co-owner
// replica group instead of the whole mesh.
//
// Handoff discipline: gaining a set means creating it empty and letting
// the ordinary repair path pull the content from the surviving owners.
// Losing a set never drops it immediately — the set enters a
// relinquishing state in which each round probes ALL current owners,
// and only a round where every owner answered and every fingerprint
// matched drops the local copy (repair is a union exchange, so
// fingerprint equality proves the owners hold everything this node
// holds). An empty relinquished set drops at once; there is nothing to
// hand off.

// GossipStats reports one GossipOnce round.
type GossipStats struct {
	// Exchanged / Failed count the round's push-pull attempts.
	Exchanged int
	Failed    int
	// Changed reports whether the member table changed this round
	// (including suspicion aging, not just exchange merges).
	Changed bool
	// Active / Total are the member counts after the round.
	Active int
	Total  int
}

// GossipOnce runs one membership round: push-pull with Fanout random
// partners, mark the unreachable ones suspect, age suspicion one tick,
// and re-apply placement if the table changed. Drive it once per
// reconciliation round (the background loop does; so does the
// deterministic harness). No-op without Config.Membership.
func (n *Node) GossipOnce() GossipStats {
	g := n.cfg.Membership
	if g == nil {
		return GossipStats{}
	}
	before := g.Version()
	var st GossipStats
	for _, addr := range g.Targets(0) {
		ex := g.Initiator()
		if err := n.do(addr, "", ex); err != nil {
			g.MarkFailed(addr)
			st.Failed++
			n.cfg.Logf("cluster: gossip %s: %v", addr, err)
			continue
		}
		st.Exchanged++
	}
	g.Tick()
	st.Changed = g.Version() != before
	st.Active, st.Total = g.AliveCount()
	n.ApplyPlacement()
	return st
}

// ApplyPlacement recomputes the ring over the current member table and
// reconciles the local set roster against it: owned-but-missing sets
// are created empty (repair pulls their content), hosted-but-not-owned
// sets enter the relinquishing handoff, and every managed set's
// co-owner pool is refreshed for peer selection. The peer list
// (SetPeers's state) becomes the active member list. Idempotent and
// cheap when the table has not changed since the last application.
// No-op without Config.Membership or an empty Catalog.
func (n *Node) ApplyPlacement() {
	g := n.cfg.Membership
	if g == nil || len(n.catalogNames) == 0 {
		return
	}
	v := g.Version()
	n.mu.Lock()
	if n.placementApplied && v == n.appliedVersion {
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()

	active := g.Active()
	self := g.Self()
	ring := placement.New(active, n.cfg.VNodes, n.cfg.PlacementSeed)
	asn := ring.Assign(n.catalogNames, n.cfg.Replication, n.cfg.PlacementSlack)

	selfActive := false
	peers := make([]string, 0, len(active))
	for _, a := range active {
		if a == self {
			selfActive = true
			continue
		}
		peers = append(peers, a)
	}

	owners := make(map[string][]string, len(asn))
	var toCreate []string
	for _, name := range n.catalogNames {
		selfOwns := false
		coOwners := make([]string, 0, len(asn[name]))
		for _, o := range asn[name] {
			if o == self {
				selfOwns = true
				continue
			}
			coOwners = append(coOwners, o)
		}
		owners[name] = coOwners
		_, hosted := n.store.Get(name)
		if selfOwns && selfActive && !hosted {
			toCreate = append(toCreate, name)
		}
	}
	for _, name := range toCreate {
		if _, err := n.store.Create(name, n.catalog[name], nil); err != nil {
			n.cfg.Logf("cluster: placement create %q: %v", name, err)
			continue
		}
		n.cfg.Logf("cluster: placement acquired %q (owners %v)", name, asn[name])
	}

	n.mu.Lock()
	n.owners = owners
	n.peers = peers
	n.appliedVersion = v
	n.placementApplied = true
	acquired := 0
	for _, name := range toCreate {
		if _, hosted := n.store.Get(name); hosted {
			acquired++
		}
	}
	n.placeStats.Acquired += uint64(acquired)
	// Relinquish flags follow ownership; sets the ring handed back to
	// this node simply leave the relinquishing state with their content
	// intact (the drop never ran, so nothing was lost to the flap).
	for _, name := range n.catalogNames {
		selfOwns := false
		for _, o := range asn[name] {
			if o == self {
				selfOwns = true
				break
			}
		}
		_, hosted := n.store.Get(name)
		if !selfOwns && hosted {
			n.relinquish[name] = true
		} else {
			delete(n.relinquish, name)
		}
	}
	n.mu.Unlock()
}

// dropHandedOff completes a relinquishing set's handoff: drop the local
// copy and forget its reconciliation state, so a future re-acquisition
// starts from a clean slate.
func (n *Node) dropHandedOff(name string) {
	if !n.store.Drop(name) {
		return
	}
	n.mu.Lock()
	delete(n.metrics, name)
	delete(n.caches, name)
	delete(n.relinquish, name)
	n.placeStats.Dropped++
	n.mu.Unlock()
	n.cfg.Logf("cluster: placement handed off %q", name)
}

// Members returns a snapshot of the gossiped member table, or nil when
// the node is not in gossip mode — the admin API's membership view.
func (n *Node) Members() []gossip.Member {
	if n.cfg.Membership == nil {
		return nil
	}
	return n.cfg.Membership.Snapshot()
}

// SetPlacement is one catalog set's placement state on this node: its
// current co-owner group (self excluded) and whether the local copy is
// awaiting handoff confirmation before dropping.
type SetPlacement struct {
	Owners        []string
	Relinquishing bool
}

// PlacementView returns the ring-managed sets' placement state, keyed
// by set name. Empty (not nil-vs-empty significant) outside placement
// mode or before the first placement application.
func (n *Node) PlacementView() map[string]SetPlacement {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[string]SetPlacement, len(n.owners))
	for name, owners := range n.owners {
		out[name] = SetPlacement{
			Owners:        append([]string(nil), owners...),
			Relinquishing: n.relinquish[name],
		}
	}
	for name := range n.relinquish {
		if _, ok := out[name]; !ok {
			out[name] = SetPlacement{Relinquishing: true}
		}
	}
	return out
}

// PlacementStats counts ring-driven roster changes on this node.
type PlacementStats struct {
	// Acquired counts sets created because the ring assigned them here.
	Acquired uint64
	// Dropped counts sets dropped after a confirmed handoff.
	Dropped uint64
	// Relinquishing is the current count of sets awaiting handoff
	// confirmation.
	Relinquishing int
}

// Placement returns the node's placement counters.
func (n *Node) Placement() PlacementStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := n.placeStats
	st.Relinquishing = len(n.relinquish)
	return st
}

// Leave departs the mesh gracefully: push local state to each set's
// co-owners one final time, announce the departure to every active
// member (so ownership moves on the next placement application, not
// after a suspicion timeout), and shut down. Without Membership it is
// just Close.
func (n *Node) Leave(drain time.Duration) error {
	g := n.cfg.Membership
	if g != nil {
		// Final reconciliation: fingerprint-converged co-owners already
		// hold everything; diverged ones receive our exclusive points via
		// the union repair.
		if _, err := n.ReconcileOnce(); err != nil {
			n.cfg.Logf("cluster: leave reconcile: %v", err)
		}
		g.SetLeft()
		for _, addr := range g.Active() {
			if addr == g.Self() {
				continue
			}
			if err := n.do(addr, "", g.Initiator()); err != nil {
				n.cfg.Logf("cluster: leave announce %s: %v", addr, err)
			}
		}
	}
	return n.Close(drain)
}

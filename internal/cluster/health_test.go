package cluster

import (
	"strings"
	"testing"
	"time"
)

// Two corruption verdicts must convict even with an interleaved clean
// session — a corrupting peer cannot stay eligible by also serving
// honest traffic.
func TestLedgerCorruptionConvictsFast(t *testing.T) {
	l := newLedger(4, false)
	l.reportCorruption("p")
	if st := l.snapshot()["p"]; st.State != PeerProbation {
		t.Fatalf("after 1 corruption state = %v, want probation", st.State)
	}
	l.reportSuccess("p", time.Millisecond)
	l.reportCorruption("p")
	st := l.snapshot()["p"]
	if st.State != PeerQuarantined {
		t.Fatalf("after corrupt,success,corrupt state = %v score %.3f, want quarantined", st.State, st.Score)
	}
	if st.Corruptions != 2 || st.Quarantines != 1 {
		t.Fatalf("counters = %+v", st)
	}
}

// Transient failures need four in a row: a flaky link reaches probation
// quickly but quarantine only if it keeps failing.
func TestLedgerFailuresConvictSlower(t *testing.T) {
	l := newLedger(4, false)
	for i := 0; i < 3; i++ {
		l.reportFailure("p")
	}
	if st := l.snapshot()["p"]; st.State != PeerProbation {
		t.Fatalf("after 3 failures state = %v score %.3f, want probation", st.State, st.Score)
	}
	l.reportFailure("p")
	if st := l.snapshot()["p"]; st.State != PeerQuarantined {
		t.Fatalf("after 4 failures state = %v score %.3f, want quarantined", st.State, st.Score)
	}
}

// The breaker goes half-open when the span expires: a clean probe walks
// the peer back through probation to healthy, a failed probe
// re-quarantines with the span doubled (capped).
func TestLedgerHalfOpenProbe(t *testing.T) {
	l := newLedger(4, false)
	l.reportCorruption("p")
	l.reportCorruption("p")
	for i := 0; i < 4; i++ {
		l.tick()
	}
	if st := l.snapshot()["p"]; st.State != PeerQuarantined || st.QuarantineLeft != 0 {
		t.Fatalf("post-span state = %v left %d, want quarantined half-open", st.State, st.QuarantineLeft)
	}
	// Half-open probe fails: span doubles.
	l.reportFailure("p")
	if st := l.snapshot()["p"]; st.State != PeerQuarantined || st.QuarantineLeft != 8 || st.Quarantines != 2 {
		t.Fatalf("after failed probe: %+v, want re-quarantined span 8", st)
	}
	for i := 0; i < 8; i++ {
		l.tick()
	}
	// Half-open probe succeeds: probation, then clean sessions decay the
	// score back to healthy.
	l.reportSuccess("p", time.Millisecond)
	if st := l.snapshot()["p"]; st.State != PeerProbation {
		t.Fatalf("after clean probe state = %v, want probation", st.State)
	}
	for i := 0; i < 4; i++ {
		l.reportSuccess("p", time.Millisecond)
	}
	if st := l.snapshot()["p"]; st.State != PeerHealthy {
		t.Fatalf("after clean streak state = %v score %.3f, want healthy", st.State, st.Score)
	}
	// Span doubling is capped at quarantineSpanCap x base.
	e := l.entry("p")
	e.span = 4 * quarantineSpanCap
	l.mu.Lock()
	l.quarantineLocked(e)
	l.mu.Unlock()
	if e.span != 4*quarantineSpanCap {
		t.Fatalf("span grew past the cap: %d", e.span)
	}
}

// eligible must return the original slice untouched when nothing is
// quarantined (the healthy path stays allocation-identical), filter
// quarantined peers otherwise, and fall back to the full pool rather
// than isolate the node when everything is quarantined.
func TestLedgerEligible(t *testing.T) {
	l := newLedger(4, false)
	pool := []string{"a", "b", "c"}
	if got := l.eligible(pool); len(got) != 3 || &got[0] != &pool[0] {
		t.Fatalf("clean pool was copied or filtered: %v", got)
	}
	l.reportCorruption("b")
	l.reportCorruption("b")
	got := l.eligible(pool)
	if len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Fatalf("eligible = %v, want [a c]", got)
	}
	// Half-open (span expired) makes the peer eligible again.
	for i := 0; i < 4; i++ {
		l.tick()
	}
	if got := l.eligible(pool); len(got) != 3 {
		t.Fatalf("half-open peer still filtered: %v", got)
	}
	// All quarantined: the full pool comes back.
	for _, p := range pool {
		l.reportCorruption(p)
		l.reportCorruption(p)
	}
	if got := l.eligible(pool); len(got) != 3 {
		t.Fatalf("fully-quarantined pool collapsed to %v", got)
	}
	// Disabled ledger never filters.
	ld := newLedger(4, true)
	ld.reportCorruption("a")
	ld.reportCorruption("a")
	if got := ld.eligible(pool); len(got) != 3 || &got[0] != &pool[0] {
		t.Fatalf("disabled ledger filtered: %v", got)
	}
}

// deadline: fallback before any sample, then mult x EWMA RTT, floored
// for fast links and capped at the configured fallback.
func TestLedgerDeadline(t *testing.T) {
	l := newLedger(4, false)
	if d := l.deadline("p", time.Minute); d != time.Minute {
		t.Fatalf("no-sample deadline = %v, want fallback", d)
	}
	l.reportSuccess("p", 100*time.Microsecond)
	if d := l.deadline("p", time.Minute); d != rttDeadlineFloor {
		t.Fatalf("fast-link deadline = %v, want floor %v", d, rttDeadlineFloor)
	}
	l2 := newLedger(4, false)
	l2.reportSuccess("q", 2*time.Second)
	if d := l2.deadline("q", time.Minute); d != 16*time.Second {
		t.Fatalf("deadline = %v, want 8x 2s", d)
	}
	if d := l2.deadline("q", 10*time.Second); d != 10*time.Second {
		t.Fatalf("deadline exceeded its cap: %v", d)
	}
}

func TestLedgerSummary(t *testing.T) {
	l := newLedger(4, false)
	l.reportSuccess("a", time.Millisecond)
	l.reportCorruption("b")
	l.reportCorruption("b")
	s := l.summary()
	for _, want := range []string{"peers=2", "healthy=1", "quarantined=1", "corrupt-verdicts=2", "[b]"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary %q missing %q", s, want)
		}
	}
}

// Package cluster is the anti-entropy mesh: a Node wraps a multi-tenant
// store and a session server, and a reconciler loop keeps every hosted
// set converging with the other members of a static cluster — not per
// client request, but continuously.
//
// Peer selection uses the power-of-choices trick (cf. Walzer, "What if
// we tried Less Power?", arXiv:2307.00644): each round, for each set,
// the node probes d (default 2) random peers with the cheap divergence
// exchange (ProtoProbe: epoch, distinct count, ID fingerprint, EMD
// fingerprint, strata estimator) and reconciles with the MORE divergent
// one. Probing two and repairing the worse concentrates repair where
// drift is largest for almost no extra probing cost; repairing a random
// single peer instead wastes whole sessions on already-converged pairs.
//
// Each reconciliation runs the cheapest sufficient protocol:
//
//	fingerprints match          → no-op (the common steady-state round)
//	diverged, EMD maintained    → live-emd pull first: a returning node
//	                              announces the epoch it last saw, so an
//	                              unchanged peer ships only churned
//	                              cells (delta) rather than the full
//	                              sketch — divergence telemetry and a
//	                              warm sketch cache for nearly free
//	diverged                    → exact repair (ProtoRepair): strata-
//	                              hinted IBLT ID sync plus point payload
//	                              exchange; both sides converge to the
//	                              union of their distinct points
//
// The probe's strata estimate is passed to repair as a sizing hint, so
// the repair session skips its own strata round. Failures back off
// per (set, peer-independent) with exponential round-skipping, capped,
// so one dead member cannot absorb a node's whole anti-entropy budget.
//
// Convergence is add-wins: points flow toward the union; removals are
// local until every member has removed (no tombstones — the semantics a
// grow-set anti-entropy mesh provides). The metrics expose per-set
// round counters, protocol-tier counts, payload totals, and the
// consecutive-converged streak operators alert on.
package cluster

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gossip"
	"repro/internal/live"
	"repro/internal/netproto"
	"repro/internal/rng"
	"repro/internal/session"
	"repro/internal/store"
)

// Config tunes a Node. Store is required; everything else defaults.
type Config struct {
	// Store holds the sets this node serves and reconciles.
	Store *store.Store
	// Peers are the other members' addresses. May be empty at New and
	// installed later with SetPeers (the listen-then-exchange-addresses
	// bootstrap).
	Peers []string
	// Network is "tcp" or "unix" (default "tcp").
	Network string
	// Interval is the anti-entropy round period (zero defaults to 1s).
	// Negative disables the background loop — rounds then run only via
	// ReconcileOnce, which tests and single-shot tools drive directly.
	Interval time.Duration
	// Choices is the d of power-of-d-choices probing (default 2,
	// clamped to the peer count).
	Choices int
	// MaxBackoff caps the exponential per-set failure backoff, in
	// skipped rounds (default 8).
	MaxBackoff int
	// Seed feeds the peer-selection RNG (default 1).
	Seed uint64
	// Session configures the embedded server (MaxSessions, timeouts,
	// Logf). Its Resolver is overwritten with this node's store
	// resolver.
	Session session.Config
	// DialTimeout / SessionTimeout bound outbound reconciliation
	// sessions (defaults as in session.Dialer).
	DialTimeout    time.Duration
	SessionTimeout time.Duration
	// DisableMux reverts the node to RSYN v2 networking: one dedicated
	// connection per outbound session, and the embedded server refuses
	// v3 carrier hellos. By default outbound sessions share one pooled
	// multiplexed connection per peer, so a round over S sets costs
	// O(peers) dials instead of O(S×choices).
	DisableMux bool
	// Pipeline is how many sets reconcile concurrently within one
	// ReconcileOnce round (default 1 = strictly sequential, the
	// deterministic-trace mode). With the mux pool, pipelined sets ride
	// the same carrier: stream k+1's hello is in flight while stream
	// k's repair drains, so a latency-bound round costs RTTs of the
	// deepest set, not the sum over sets. Peer selection still happens
	// sequentially in set order before any session starts, so the
	// probe schedule for a given seed is Pipeline-independent.
	Pipeline int
	// QuarantineRounds is the peer health ledger's base quarantine
	// span, in reconciliation rounds (default 16; see health.go). A
	// quarantined peer is skipped by peer selection until the span
	// expires, then probed half-open.
	QuarantineRounds int
	// DisableQuarantine keeps the health ledger observing (scores,
	// RTTs, counters) but never filters quarantined peers out of peer
	// selection.
	DisableQuarantine bool
	// WrapResolver, when set, wraps the node's store resolver before it
	// is installed on the embedded server. Fault-injection harnesses
	// use it to substitute byzantine responder factories; production
	// nodes leave it nil.
	WrapResolver func(netproto.Resolver) netproto.Resolver
	// Transport supplies the node's listeners and outbound connections
	// (nil = the real network). A simnet host here moves the whole node
	// — serving and anti-entropy dialing — onto the virtual network.
	Transport session.Transport
	// Logf, when set, receives reconciler progress lines.
	Logf func(format string, args ...any)

	// Membership, when set, switches the node to gossip-fed placement
	// mode (see membership.go): the peer list follows the member table,
	// and — with a Catalog — the hosted-set roster follows the
	// consistent-hash ring. The node registers the gossip responder on
	// its server and drives exchanges from its reconciler loop; the
	// instance's Self address is this node's identity.
	Membership *gossip.Gossip
	// Catalog is the full set universe every member agrees on: names
	// and the exact live configuration each set uses (two owners with
	// different configs would never fingerprint-match). Ignored without
	// Membership.
	Catalog []CatalogSet
	// Replication is the ring's owner count R per set (default 3,
	// clamped to the member count).
	Replication int
	// VNodes is the ring's virtual-node count per member (default
	// placement.DefaultVNodes).
	VNodes int
	// PlacementSlack is the bounded-loads headroom ε (default
	// placement.DefaultSlack).
	PlacementSlack float64
	// PlacementSeed selects the ring's hash family. Every member must
	// use the same value, or two nodes would compute different owner
	// sets from one member list.
	PlacementSeed uint64
}

// CatalogSet names one set of the cluster-wide catalog and the live
// configuration every owner must build it with.
type CatalogSet struct {
	Name   string
	Config live.Config
}

// Tier labels which protocol a reconciliation round ran.
type Tier int

const (
	// TierNoop: fingerprints matched, nothing exchanged.
	TierNoop Tier = iota
	// TierDelta: live-emd pull took the churned-cells fast path.
	TierDelta
	// TierFull: live-emd pull shipped the full sketch.
	TierFull
	// TierRepair: exact repair ran (always follows TierDelta/TierFull
	// when EMD is maintained; alone otherwise).
	TierRepair
)

// SetMetrics counts one hosted set's anti-entropy activity on one node.
type SetMetrics struct {
	// Rounds is how many reconciliation rounds considered the set
	// (including rounds skipped by backoff).
	Rounds uint64
	// Skipped counts rounds the failure backoff suppressed.
	Skipped uint64
	// Probes / ProbeFailures count outbound probe sessions.
	Probes        uint64
	ProbeFailures uint64
	// Noops counts rounds where every probed peer matched.
	Noops uint64
	// Deltas / Fulls count live-emd pulls by transfer mode.
	Deltas uint64
	Fulls  uint64
	// Repairs / RepairFailures count exact repair sessions.
	Repairs        uint64
	RepairFailures uint64
	// PointsSent / PointsReceived total the repair payload traffic.
	PointsSent     uint64
	PointsReceived uint64
	// CorruptRejected counts repair batches refused by
	// verify-before-merge (each also records a corruption verdict
	// against the source peer in the health ledger).
	CorruptRejected uint64
	// LastEstimate is the most recent probe divergence estimate against
	// the reconciled peer (-1 before any).
	LastEstimate int
	// Streak is the consecutive all-matched rounds ending now; it
	// resets on any divergence, probe failure, or backoff skip.
	Streak uint64
	// Backoff is the rounds still to skip after a failure.
	Backoff int
	backoff int // last applied backoff, for doubling
}

// Node is one cluster member. Construct with New, bind with Start, and
// stop with Close; ReconcileOnce drives rounds manually when the
// background loop is disabled.
type Node struct {
	cfg   Config
	store *store.Store
	srv   *session.Server
	// pool is the outbound RSYN v3 carrier pool (nil with DisableMux).
	pool *session.MuxPool
	// dialBase is the outbound dialer template with every config
	// default resolved once at construction; per-session dialers are
	// copies with only Addr and Set filled in.
	dialBase session.Dialer
	// plainDials counts dedicated-connection sessions when the pool is
	// disabled, so NetStats stays meaningful in both modes.
	plainDials atomic.Uint64

	// catalog / catalogNames mirror Config.Catalog for placement mode.
	catalog      map[string]live.Config
	catalogNames []string

	// health is the peer ledger behind quarantine-aware peer selection
	// and per-peer adaptive deadlines (health.go). Always non-nil; its
	// mutex is a leaf lock, safe under n.mu.
	health *ledger

	mu      sync.Mutex
	peers   []string
	src     *rng.Source
	metrics map[string]*SetMetrics
	caches  map[string]map[string]*netproto.EMDCache // set → peer addr → sketch cache
	// owners maps each catalog set to its current co-owners (self
	// excluded); relinquish flags sets awaiting handoff confirmation.
	// Both are maintained by ApplyPlacement (membership.go).
	owners           map[string][]string
	relinquish       map[string]bool
	appliedVersion   uint64
	placementApplied bool
	placeStats       PlacementStats

	loopCancel chan struct{}
	loopDone   chan struct{}
	started    bool
}

// New builds a node over the store. The embedded server serves every
// store set under its namespace (probe, repair, and the set's live
// protocols), with the default set answering v1 peers.
func New(cfg Config) (*Node, error) {
	if cfg.Store == nil {
		return nil, errors.New("cluster: Config.Store is required")
	}
	if cfg.Network == "" {
		cfg.Network = "tcp"
	}
	if cfg.Interval == 0 {
		cfg.Interval = time.Second
	}
	if cfg.Choices <= 0 {
		cfg.Choices = 2
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 8
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Pipeline <= 0 {
		cfg.Pipeline = 1
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.SessionTimeout == 0 {
		cfg.SessionTimeout = 2 * time.Minute
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 3
	}
	res := netproto.StoreResolver(cfg.Store)
	if cfg.WrapResolver != nil {
		res = cfg.WrapResolver(res)
	}
	cfg.Session.Resolver = res
	// One mux knob for the whole node: disabling it reverts both
	// directions (outbound pool and inbound carrier acceptance) to v2.
	cfg.Session.DisableMux = cfg.Session.DisableMux || cfg.DisableMux
	// The node and its embedded server must agree on one network, or
	// anti-entropy would dial a different fabric than it serves. Either
	// field may name the transport; Config.Transport wins when both set.
	if cfg.Transport == nil {
		cfg.Transport = cfg.Session.Transport
	}
	cfg.Session.Transport = cfg.Transport
	n := &Node{
		cfg:   cfg,
		store: cfg.Store,
		srv:   session.NewServer(cfg.Session),
		dialBase: session.Dialer{
			Network:        cfg.Network,
			DialTimeout:    cfg.DialTimeout,
			SessionTimeout: cfg.SessionTimeout,
			Transport:      cfg.Transport,
		},
		health:     newLedger(cfg.QuarantineRounds, cfg.DisableQuarantine),
		peers:      append([]string(nil), cfg.Peers...),
		src:        rng.New(cfg.Seed),
		metrics:    make(map[string]*SetMetrics),
		caches:     make(map[string]map[string]*netproto.EMDCache),
		owners:     make(map[string][]string),
		relinquish: make(map[string]bool),
	}
	if cfg.Membership != nil {
		n.srv.Handle(cfg.Membership.ResponderFactory())
		n.catalog = make(map[string]live.Config, len(cfg.Catalog))
		for _, cs := range cfg.Catalog {
			if _, dup := n.catalog[cs.Name]; dup {
				return nil, fmt.Errorf("cluster: catalog set %q listed twice", cs.Name)
			}
			n.catalog[cs.Name] = cs.Config
			n.catalogNames = append(n.catalogNames, cs.Name)
		}
		sort.Strings(n.catalogNames)
	}
	if !cfg.DisableMux {
		n.pool = &session.MuxPool{
			Network:        cfg.Network,
			DialTimeout:    cfg.DialTimeout,
			SessionTimeout: cfg.SessionTimeout,
			Transport:      cfg.Transport,
		}
	}
	return n, nil
}

// Server exposes the embedded session server (stats, extra Handle
// registrations).
func (n *Node) Server() *session.Server { return n.srv }

// Store exposes the node's set store (the simulation harness reads
// fingerprints and plants churn through it).
func (n *Node) Store() *store.Store { return n.store }

// Quiesce blocks until every inbound session this node accepted has
// fully completed — including server-side state application, which
// outlives the initiator's session (a repair responder merges points
// after sending its final frame). The deterministic harness quiesces
// the whole mesh between rounds so each round starts from settled
// state.
func (n *Node) Quiesce() { n.srv.Quiesce() }

// SetPeers replaces the member list (bootstrap: listen on every node
// first, then install the exchanged addresses).
func (n *Node) SetPeers(peers []string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers = append([]string(nil), peers...)
}

// Peers returns a copy of the member list.
func (n *Node) Peers() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]string(nil), n.peers...)
}

// Start binds the server to addr and, when Interval > 0, starts the
// background reconciler loop. The returned listener reports the bound
// address (useful with ":0").
func (n *Node) Start(addr string) (net.Listener, error) {
	l, err := n.srv.Listen(n.cfg.Network, addr)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started {
		l.Close()
		return nil, errors.New("cluster: node already started")
	}
	n.started = true
	if n.cfg.Interval > 0 {
		n.loopCancel = make(chan struct{})
		n.loopDone = make(chan struct{})
		go n.loop()
	}
	return l, nil
}

func (n *Node) loop() {
	defer close(n.loopDone)
	tick := time.NewTicker(n.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-n.loopCancel:
			return
		case <-tick.C:
			n.GossipOnce()
			n.ReconcileOnce()
		}
	}
}

// Close stops the reconciler loop and shuts the server down, draining
// in-flight sessions for up to drain before force-closing them.
func (n *Node) Close(drain time.Duration) error {
	n.mu.Lock()
	cancel, done := n.loopCancel, n.loopDone
	n.loopCancel, n.loopDone = nil, nil
	n.mu.Unlock()
	if cancel != nil {
		close(cancel)
		<-done
	}
	if n.pool != nil {
		n.pool.Close()
	}
	return n.srv.Shutdown(drain)
}

// Metrics returns a copy of the per-set metrics, keyed by set name.
func (n *Node) Metrics() map[string]SetMetrics {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[string]SetMetrics, len(n.metrics))
	for name, m := range n.metrics {
		out[name] = *m
	}
	return out
}

// Converged reports whether every hosted set's last round found all
// probed peers fingerprint-identical, sustained for at least streak
// consecutive rounds. Sets that have not completed a round yet report
// false.
func (n *Node) Converged(streak uint64) bool {
	names := n.store.Names()
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, name := range names {
		m := n.metrics[name]
		if m == nil || m.Streak < streak {
			return false
		}
	}
	return len(names) > 0
}

// ReconcileOnce runs one full anti-entropy round: every hosted set
// probes Choices random peers and reconciles with the most divergent
// non-matching one. It returns the number of sets that exchanged state
// (0 when the whole mesh round was no-ops) and the first error
// encountered (the round still visits every set).
func (n *Node) ReconcileOnce() (repaired int, err error) {
	// Quarantine spans are measured in rounds; advance them first so a
	// span armed R rounds ago goes half-open exactly at round R.
	n.health.tick()
	// Selection phase, strictly sequential in set order: round
	// accounting, backoff, and — crucially — every peer-selection RNG
	// draw happen here, before any network traffic, so the probe
	// schedule for a given seed is identical whether the execution
	// phase below runs sequentially or pipelined.
	type setJob struct {
		name    string
		ls      *live.Set
		m       *SetMetrics
		peers   []string
		handoff bool
	}
	var jobs []setJob
	for _, name := range n.store.Names() {
		ls, ok := n.store.Get(name)
		if !ok {
			continue // dropped mid-round
		}
		m := n.metricsFor(name)
		n.mu.Lock()
		m.Rounds++
		skip := m.Backoff > 0
		if skip {
			m.Backoff--
			m.Skipped++
			m.Streak = 0
		}
		// Peer pool: the set's co-owner replica group when placement
		// manages it, the whole mesh otherwise. A relinquishing set
		// probes ALL owners — the handoff confirmation needs every one
		// of them, not a d-sample.
		coOwners, managed := n.owners[name]
		handoff := n.relinquish[name]
		var peers []string
		switch {
		case handoff:
			peers = append([]string(nil), coOwners...)
		case managed:
			peers = n.pickFromLocked(coOwners, n.cfg.Choices)
		default:
			peers = n.pickFromLocked(n.peers, n.cfg.Choices)
		}
		n.mu.Unlock()
		if handoff && ls.Size() == 0 {
			// Nothing to hand off: an empty set the ring moved away
			// drops without ceremony.
			n.dropHandedOff(name)
			continue
		}
		if skip || len(peers) == 0 {
			if managed && !handoff && !skip && len(peers) == 0 {
				// Sole owner (R clamped to 1 live member): trivially
				// converged with its whole replica group.
				n.mu.Lock()
				m.Noops++
				m.Streak++
				n.mu.Unlock()
			}
			continue
		}
		jobs = append(jobs, setJob{name, ls, m, peers, handoff})
	}

	// Execution phase: probe + escalate per set. Pipeline > 1 overlaps
	// sets' sessions — over the mux pool they share per-peer carriers,
	// so stream k+1's hello is in flight while stream k drains and the
	// round's wall clock is the deepest set's RTTs, not the sum.
	type setResult struct {
		exchanged bool
		err       error
	}
	results := make([]setResult, len(jobs))
	if width := min(n.cfg.Pipeline, len(jobs)); width <= 1 {
		for i, j := range jobs {
			results[i].exchanged, results[i].err = n.reconcileSet(j.name, j.ls, j.m, j.peers, j.handoff)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < width; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(jobs) {
						return
					}
					j := jobs[i]
					results[i].exchanged, results[i].err = n.reconcileSet(j.name, j.ls, j.m, j.peers, j.handoff)
				}
			}()
		}
		wg.Wait()
	}
	// Aggregate in job (set) order, so the reported first error does
	// not depend on scheduling.
	for _, r := range results {
		if r.exchanged {
			repaired++
		}
		if r.err != nil && err == nil {
			err = r.err
		}
	}
	return repaired, err
}

// reconcileSet runs one set's round against its selected candidate
// peers: probe all, then escalate against the most divergent. It
// reports whether state was exchanged and the first error encountered.
// With handoff set the peers are the set's full owner group and a
// round where every owner answered with a matching fingerprint
// completes the handoff by dropping the local copy.
func (n *Node) reconcileSet(name string, ls *live.Set, m *SetMetrics, peers []string, handoff bool) (exchanged bool, err error) {
	// Probe phase: cheap divergence estimate per candidate peer.
	type candidate struct {
		addr  string
		probe *netproto.ProbeInitiator
	}
	var (
		worst      *candidate
		worstScore = -1
		failures   int
	)
	for _, addr := range peers {
		probe := netproto.NewProbeInitiator(ls)
		start := time.Now()
		perr := n.do(addr, name, probe)
		n.mu.Lock()
		m.Probes++
		if perr != nil {
			m.ProbeFailures++
			failures++
			n.mu.Unlock()
			n.health.reportFailure(addr)
			n.cfg.Logf("cluster: set %q probe %s: %v", name, addr, perr)
			if err == nil {
				err = perr
			}
			continue
		}
		n.mu.Unlock()
		n.health.reportSuccess(addr, time.Since(start))
		if probe.Matched {
			continue
		}
		score := probe.Estimate
		if score < 1 {
			// Fingerprints differ but the estimator sees nothing (or
			// is absent): still divergent, minimally scored.
			score = 1
		}
		if score > worstScore {
			worstScore = score
			worst = &candidate{addr: addr, probe: probe}
		}
	}

	n.mu.Lock()
	if failures == len(peers) {
		// Every candidate unreachable: back off this set.
		m.applyBackoff(n.cfg.MaxBackoff)
		n.mu.Unlock()
		return false, err
	}
	if worst == nil {
		// All reachable peers matched. The streak only advances when
		// every probed peer answered — an unreachable member is not
		// evidence of convergence, and Converged() must not report a
		// clean mesh while one (see SetMetrics.Streak).
		m.Noops++
		if failures == 0 {
			m.Streak++
		} else {
			m.Streak = 0
		}
		m.backoff = 0
		n.mu.Unlock()
		if handoff && failures == 0 {
			// Every owner answered and matched: they provably hold
			// everything this copy holds (repair is a union exchange, so
			// fingerprint equality is content equality). Handoff done.
			n.dropHandedOff(name)
		}
		return false, err
	}
	m.Streak = 0
	m.LastEstimate = worst.probe.Estimate
	n.mu.Unlock()

	if rerr := n.reconcile(name, ls, m, worst.addr, worst.probe); rerr != nil {
		n.mu.Lock()
		m.RepairFailures++
		m.applyBackoff(n.cfg.MaxBackoff)
		n.mu.Unlock()
		n.cfg.Logf("cluster: set %q repair %s: %v", name, worst.addr, rerr)
		if err == nil {
			err = rerr
		}
		return false, err
	}
	n.mu.Lock()
	m.backoff = 0
	n.mu.Unlock()
	return true, err
}

// applyBackoff doubles (capped) and arms the skip counter. Caller holds
// n.mu.
func (m *SetMetrics) applyBackoff(maxRounds int) {
	next := m.backoff * 2
	if next == 0 {
		next = 1
	}
	if next > maxRounds {
		next = maxRounds
	}
	m.backoff = next
	m.Backoff = next
	m.Streak = 0
}

// reconcile runs the escalation against one diverged peer: live-emd
// pull when the set maintains an EMD sketch (delta for returning nodes,
// full otherwise — refreshing telemetry and the sketch cache), then the
// exact repair that actually converges state, hinted with the probe's
// estimate.
func (n *Node) reconcile(name string, ls *live.Set, m *SetMetrics, addr string, probe *netproto.ProbeInitiator) error {
	if p, ok := ls.EMDParams(); ok {
		cache := n.cacheFor(name, addr)
		recv := netproto.NewLiveEMDReceiver(p, ls.Snapshot().Points, cache)
		if err := n.do(addr, name, recv); err != nil {
			// The pull is telemetry + cache warming; repair below is what
			// converges. Log and continue.
			n.cfg.Logf("cluster: set %q live-emd %s: %v", name, addr, err)
		} else {
			n.mu.Lock()
			if recv.UsedDelta {
				m.Deltas++
			} else {
				m.Fulls++
			}
			n.mu.Unlock()
		}
	}
	hint := probe.Estimate
	if hint < 0 {
		hint = 0
	}
	init, err := netproto.NewRepairInitiator(ls, hint)
	if err != nil {
		return err
	}
	start := time.Now()
	if err := n.do(addr, name, init); err != nil {
		// A verify-before-merge rejection is not a transport failure:
		// the peer answered promptly with points that do not hash to
		// the requested IDs. Nothing was merged; the ledger records a
		// corruption verdict (the strongest strike) against the peer.
		var cerr *netproto.CorruptPayloadError
		if errors.As(err, &cerr) {
			n.health.reportCorruption(addr)
			n.mu.Lock()
			m.CorruptRejected++
			n.mu.Unlock()
		} else {
			n.health.reportFailure(addr)
		}
		return err
	}
	n.health.reportSuccess(addr, time.Since(start))
	n.mu.Lock()
	m.Repairs++
	m.PointsSent += uint64(init.Sent)
	m.PointsReceived += uint64(init.Received)
	n.mu.Unlock()
	return nil
}

// do runs one outbound session for h against addr's set namespace:
// over the pooled v3 carrier by default, or a dedicated per-session
// connection when mux is disabled (the pool itself also falls back per
// peer when the remote end predates v3).
func (n *Node) do(addr, set string, h netproto.Handler) error {
	// The deadline is per-peer: 8× the peer's EWMA session RTT
	// (floored, and never looser than the configured SessionTimeout),
	// so one slow peer times out on its own history instead of holding
	// the global two-minute budget (health.go).
	to := n.health.deadline(addr, n.cfg.SessionTimeout)
	if n.pool != nil {
		_, err := n.pool.DoTimeout(addr, set, h, to)
		return err
	}
	n.plainDials.Add(1)
	d := n.dialerFor(addr, set)
	d.SessionTimeout = to
	_, err := d.Do(h)
	return err
}

// dialerFor stamps the target onto the node's pre-resolved dialer
// template (the template is built once in New; the old per-call
// construction re-derived every default for every probe).
func (n *Node) dialerFor(addr, set string) session.Dialer {
	d := n.dialBase
	d.Addr = addr
	d.Set = set
	return d
}

// NetStats reports the node's outbound connection economy: sessions
// attempted, connections actually dialed, carrier reuses, and plain
// fallbacks against pre-v3 peers. With mux disabled every session is
// its own dial.
func (n *Node) NetStats() session.PoolStats {
	if n.pool != nil {
		return n.pool.Stats()
	}
	d := n.plainDials.Load()
	return session.PoolStats{Dials: d, Sessions: d}
}

// Prewarm establishes the pooled carrier to every current peer,
// sequentially and in peer order, so a following burst of pipelined
// sessions shares settled connections instead of racing the dials —
// the deterministic harness prewarms before pipelined rounds to keep
// dial traces stable. No-op when mux is disabled; unreachable or
// pre-v3 peers are not an error here (sessions surface that later).
func (n *Node) Prewarm() {
	if n.pool == nil {
		return
	}
	for _, addr := range n.Peers() {
		if err := n.pool.Warm(addr); err != nil {
			n.cfg.Logf("cluster: prewarm %s: %v", addr, err)
		}
	}
}

// ResetPool drops every pooled outbound carrier so the next session per
// peer dials fresh (session.MuxPool.Reset). Deterministic harnesses call
// it right after changing connectivity — a severed carrier is otherwise
// detected asynchronously, and detection racing the next use makes the
// dial trace nondeterministic. No-op when mux is disabled.
func (n *Node) ResetPool() {
	if n.pool != nil {
		n.pool.Reset()
	}
}

// metricsFor returns (creating if needed) the set's metrics struct.
func (n *Node) metricsFor(name string) *SetMetrics {
	n.mu.Lock()
	defer n.mu.Unlock()
	m := n.metrics[name]
	if m == nil {
		m = &SetMetrics{LastEstimate: -1}
		n.metrics[name] = m
	}
	return m
}

// cacheFor returns (creating if needed) the per-(set, peer) EMD sketch
// cache.
func (n *Node) cacheFor(set, addr string) *netproto.EMDCache {
	n.mu.Lock()
	defer n.mu.Unlock()
	byPeer := n.caches[set]
	if byPeer == nil {
		byPeer = make(map[string]*netproto.EMDCache)
		n.caches[set] = byPeer
	}
	c := byPeer[addr]
	if c == nil {
		c = &netproto.EMDCache{}
		byPeer[addr] = c
	}
	return c
}

// pickFromLocked draws up to d distinct random peers from the pool
// (the whole mesh, or one set's co-owner group in placement mode). No
// RNG is consumed when the pool already fits within d, so the draw
// schedule for a given seed is stable across pool shapes. Caller holds
// n.mu.
func (n *Node) pickFromLocked(pool []string, d int) []string {
	// Quarantined peers are filtered out first (health.go); eligible
	// returns the pool untouched when nothing is quarantined, so the
	// healthy-path draw schedule is byte-identical to a ledger-free
	// node.
	pool = n.health.eligible(pool)
	if len(pool) == 0 {
		return nil
	}
	if d >= len(pool) {
		out := append([]string(nil), pool...)
		sort.Strings(out)
		return out
	}
	idx := make(map[int]bool, d)
	out := make([]string, 0, d)
	for len(out) < d {
		i := n.src.Intn(len(pool))
		if idx[i] {
			continue
		}
		idx[i] = true
		out = append(out, pool[i])
	}
	return out
}

// String formats a metrics snapshot for log lines. The corrupt counter
// only appears when nonzero, so healthy-mesh log and trace lines are
// unchanged from ledger-free builds.
func (m SetMetrics) String() string {
	s := fmt.Sprintf("rounds=%d noops=%d repairs=%d (fail=%d) delta/full=%d/%d pts=%d↑/%d↓ streak=%d",
		m.Rounds, m.Noops, m.Repairs, m.RepairFailures, m.Deltas, m.Fulls,
		m.PointsSent, m.PointsReceived, m.Streak)
	if m.CorruptRejected > 0 {
		s += fmt.Sprintf(" corrupt=%d", m.CorruptRejected)
	}
	return s
}

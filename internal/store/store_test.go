package store

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/emd"
	"repro/internal/live"
	"repro/internal/metric"
	"repro/internal/rng"
)

func points(space metric.Space, n int, seed uint64) metric.PointSet {
	src := rng.New(seed)
	out := make(metric.PointSet, n)
	for i := range out {
		pt := make(metric.Point, space.Dim)
		for j := range pt {
			pt[j] = int32(src.Uint64() % uint64(space.Delta+1))
		}
		out[i] = pt
	}
	return out
}

func syncCfg(seed uint64) live.Config {
	return live.Config{Sync: &live.SyncConfig{Seed: seed}}
}

func TestCreateGetDropNames(t *testing.T) {
	s := New()
	space := metric.HammingCube(32)
	for _, name := range []string{"", "alpha", "beta"} {
		if _, err := s.Create(name, syncCfg(7), points(space, 10, 1)); err != nil {
			t.Fatalf("Create(%q): %v", name, err)
		}
	}
	if got := s.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	want := []string{"", "alpha", "beta"}
	got := s.Names()
	if len(got) != len(want) {
		t.Fatalf("Names = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names = %v, want %v", got, want)
		}
	}
	if _, ok := s.Get("alpha"); !ok {
		t.Fatal("Get(alpha) missed")
	}
	if _, ok := s.Get("gamma"); ok {
		t.Fatal("Get(gamma) hit")
	}
	if !s.Drop("alpha") {
		t.Fatal("Drop(alpha) reported absent")
	}
	if s.Drop("alpha") {
		t.Fatal("second Drop(alpha) reported present")
	}
	if _, ok := s.Get("alpha"); ok {
		t.Fatal("Get(alpha) survived Drop")
	}
}

func TestCreateRejectsDuplicatesAndBadNames(t *testing.T) {
	s := New()
	space := metric.HammingCube(16)
	if _, err := s.Create("dup", syncCfg(1), points(space, 4, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("dup", syncCfg(1), points(space, 4, 2)); err == nil {
		t.Fatal("duplicate Create succeeded")
	}
	for _, bad := range []string{"has\nnewline", "nul\x00byte", strings.Repeat("x", MaxNameLen+1)} {
		if _, err := s.Create(bad, syncCfg(1), nil); err == nil {
			t.Fatalf("Create(%q) succeeded", bad)
		}
	}
	if !ValidName(strings.Repeat("y", MaxNameLen)) {
		t.Fatal("max-length name rejected")
	}
}

func TestPerSetParams(t *testing.T) {
	s := New()
	spaceA, spaceB := metric.HammingCube(16), metric.HammingCube(64)
	pa := emd.DefaultParams(spaceA, 32, 2, 11)
	pb := emd.DefaultParams(spaceB, 64, 4, 22)
	if _, err := s.Create("a", live.Config{EMD: &pa}, points(spaceA, 8, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("b", live.Config{EMD: &pb}, points(spaceB, 16, 2)); err != nil {
		t.Fatal(err)
	}
	a, _ := s.Get("a")
	b, _ := s.Get("b")
	ap, _ := a.EMDParams()
	bp, _ := b.EMDParams()
	if ap.Space.Dim != 16 || bp.Space.Dim != 64 {
		t.Fatalf("per-set params not preserved: %d, %d", ap.Space.Dim, bp.Space.Dim)
	}
	st := s.Stats()
	if st.Sets != 2 || st.Points != 24 {
		t.Fatalf("Stats = %+v, want 2 sets / 24 points", st)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	space := metric.HammingCube(16)
	base, _ := s.Create("hot", syncCfg(3), points(space, 8, 3))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				name := fmt.Sprintf("g%d-%d", g, i)
				if _, err := s.Create(name, syncCfg(uint64(g)), points(space, 2, uint64(i))); err != nil {
					t.Errorf("Create(%q): %v", name, err)
					return
				}
				if _, ok := s.Get("hot"); !ok {
					t.Error("hot set vanished")
					return
				}
				if err := base.Add(points(space, 1, uint64(g*1000+i))[0]); err != nil {
					t.Errorf("Add: %v", err)
					return
				}
				s.Stats()
				if i%2 == 1 {
					s.Drop(name)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := s.Len(); got != 1+8*25 {
		t.Fatalf("Len = %d, want %d", got, 1+8*25)
	}
}

// Package store is the multi-tenant set registry: one server process
// hosting many named live.Sets, each with its own protocol parameters,
// lifecycle, and epoch'd snapshot caching. It replaces the session
// server's single-set assumption — the RSYN v2 session header names a
// set, and the store is what that name resolves against.
//
// The registry itself is a read-mostly map under an RWMutex: session
// dispatch and cluster anti-entropy do lock-free-ish Get lookups while
// Create/Drop (rare, administrative) take the write lock. Per-set
// concurrency — mutation serialization, snapshot caching per epoch — is
// owned by live.Set, which carries its own RWMutex; the store never
// holds its lock across set operations, so a slow sketch rebuild on one
// tenant cannot stall lookups of another.
//
// The empty name "" is the default set: the namespace v1 peers (whose
// hellos cannot carry a set) are served from.
package store

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/live"
	"repro/internal/metric"
)

// MaxNameLen bounds set names; the RSYN v2 session header enforces the
// same bound on the wire (netproto.ValidSetName delegates to ValidName).
const MaxNameLen = 255

// ValidName reports whether a set name is admissible: at most
// MaxNameLen bytes with no control characters. The empty name is valid —
// it is the default set.
func ValidName(name string) bool {
	if len(name) > MaxNameLen {
		return false
	}
	for i := 0; i < len(name); i++ {
		if name[i] < 0x20 || name[i] == 0x7f {
			return false
		}
	}
	return true
}

// Stats aggregates the store for operators: set count and the sums of
// the per-set gauges. Epochs sums generation counters, so its growth
// rate is the store-wide mutation rate.
type Stats struct {
	Sets     int
	Points   int    // multiset cardinalities summed
	Distinct int    // distinct points summed
	Epochs   uint64 // epoch counters summed
}

// String formats the aggregate for log lines.
func (s Stats) String() string {
	return fmt.Sprintf("%d sets, %d points (%d distinct), %d epochs",
		s.Sets, s.Points, s.Distinct, s.Epochs)
}

// Persister receives set-lifecycle hooks so a durability layer can
// shadow the registry on disk (see internal/store/durable). OnCreate
// runs before the live set is built: it persists the configuration and
// initial points and returns the write-ahead Logger the new set commits
// every mutation through (nil for none). OnDrop runs after a set leaves
// the registry and removes its persisted state.
type Persister interface {
	OnCreate(name string, cfg live.Config, initial metric.PointSet) (live.Logger, error)
	OnDrop(name string)
}

// Store is a concurrent registry of named live sets. The zero value is
// not usable; construct with New.
type Store struct {
	mu   sync.RWMutex
	sets map[string]*live.Set
	// createMu serializes Create/Drop when a persister is attached: the
	// on-disk lifecycle (mkdir, snapshot, remove) must not interleave
	// between two racing administrative calls on one name. Lookups are
	// unaffected.
	createMu  sync.Mutex
	persister Persister
}

// New builds an empty store.
func New() *Store {
	return &Store{sets: make(map[string]*live.Set)}
}

// SetPersister attaches the durability hooks. Install it before any
// Create; sets created earlier are not retroactively persisted.
func (s *Store) SetPersister(p Persister) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.persister = p
}

// Create builds a live set over the initial points and registers it
// under name. It fails on an invalid name, a duplicate, or a set
// configuration the live layer rejects. The build runs outside the
// registry lock (it may shard a full sketch construction), so concurrent
// lookups of other sets never stall; two racing Creates of one name
// resolve to one winner and one duplicate error. With a persister
// attached, the set's config and initial points are persisted first and
// the returned journal logger is wired into the set before it commits
// any mutation.
func (s *Store) Create(name string, cfg live.Config, initial metric.PointSet) (*live.Set, error) {
	if !ValidName(name) {
		return nil, fmt.Errorf("store: invalid set name %q", name)
	}
	s.mu.RLock()
	_, dup := s.sets[name]
	p := s.persister
	s.mu.RUnlock()
	if dup {
		return nil, fmt.Errorf("store: set %q already exists", name)
	}
	if p != nil {
		// Serialize persisted creations: the disk state for name must be
		// created exactly once, and a loser of the registration race must
		// be able to roll its directory back without touching the
		// winner's.
		s.createMu.Lock()
		defer s.createMu.Unlock()
		s.mu.RLock()
		_, dup = s.sets[name]
		s.mu.RUnlock()
		if dup {
			return nil, fmt.Errorf("store: set %q already exists", name)
		}
		logger, err := p.OnCreate(name, cfg, initial)
		if err != nil {
			return nil, fmt.Errorf("store: set %q: persist: %w", name, err)
		}
		cfg.Logger = logger
	}
	ls, err := live.NewSet(cfg, initial)
	if err != nil {
		if p != nil {
			p.OnDrop(name)
		}
		return nil, fmt.Errorf("store: set %q: %w", name, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.sets[name]; dup {
		// Unreachable with a persister (createMu held); without one the
		// loser simply discards its build.
		return nil, fmt.Errorf("store: set %q already exists", name)
	}
	s.sets[name] = ls
	return ls, nil
}

// Attach registers an existing live set without invoking the persister
// — the recovery path: a set rebuilt from its own persisted state must
// not re-create that state.
func (s *Store) Attach(name string, ls *live.Set) error {
	if !ValidName(name) {
		return fmt.Errorf("store: invalid set name %q", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.sets[name]; dup {
		return fmt.Errorf("store: set %q already exists", name)
	}
	s.sets[name] = ls
	return nil
}

// Get resolves a name to its live set.
func (s *Store) Get(name string) (*live.Set, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ls, ok := s.sets[name]
	return ls, ok
}

// Drop removes a named set from the registry, reporting whether it was
// present. Sessions already serving a snapshot of the set finish
// undisturbed (snapshots are immutable); new sessions naming it are
// rejected with an unknown-set status.
func (s *Store) Drop(name string) bool {
	s.mu.Lock()
	_, ok := s.sets[name]
	delete(s.sets, name)
	p := s.persister
	s.mu.Unlock()
	if ok && p != nil {
		s.createMu.Lock()
		p.OnDrop(name)
		s.createMu.Unlock()
	}
	return ok
}

// Names lists the registered set names in sorted order (the default
// set's empty name sorts first when present).
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.sets))
	for name := range s.sets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of registered sets.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.sets)
}

// Stats aggregates the per-set gauges. It snapshots the registry under
// the read lock, then queries each set without any store lock held.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	sets := make([]*live.Set, 0, len(s.sets))
	for _, ls := range s.sets {
		sets = append(sets, ls)
	}
	s.mu.RUnlock()
	st := Stats{Sets: len(sets)}
	for _, ls := range sets {
		st.Points += ls.Size()
		st.Distinct += ls.Distinct()
		st.Epochs += ls.Epoch()
	}
	return st
}

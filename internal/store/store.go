// Package store is the multi-tenant set registry: one server process
// hosting many named live.Sets, each with its own protocol parameters,
// lifecycle, and epoch'd snapshot caching. It replaces the session
// server's single-set assumption — the RSYN v2 session header names a
// set, and the store is what that name resolves against.
//
// The registry itself is a read-mostly map under an RWMutex: session
// dispatch and cluster anti-entropy do lock-free-ish Get lookups while
// Create/Drop (rare, administrative) take the write lock. Per-set
// concurrency — mutation serialization, snapshot caching per epoch — is
// owned by live.Set, which carries its own RWMutex; the store never
// holds its lock across set operations, so a slow sketch rebuild on one
// tenant cannot stall lookups of another.
//
// The empty name "" is the default set: the namespace v1 peers (whose
// hellos cannot carry a set) are served from.
package store

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/live"
	"repro/internal/metric"
)

// MaxNameLen bounds set names; the RSYN v2 session header enforces the
// same bound on the wire (netproto.ValidSetName delegates to ValidName).
const MaxNameLen = 255

// ValidName reports whether a set name is admissible: at most
// MaxNameLen bytes with no control characters. The empty name is valid —
// it is the default set.
func ValidName(name string) bool {
	if len(name) > MaxNameLen {
		return false
	}
	for i := 0; i < len(name); i++ {
		if name[i] < 0x20 || name[i] == 0x7f {
			return false
		}
	}
	return true
}

// Stats aggregates the store for operators: set count and the sums of
// the per-set gauges. Epochs sums generation counters, so its growth
// rate is the store-wide mutation rate.
type Stats struct {
	Sets     int
	Points   int    // multiset cardinalities summed
	Distinct int    // distinct points summed
	Epochs   uint64 // epoch counters summed
}

// String formats the aggregate for log lines.
func (s Stats) String() string {
	return fmt.Sprintf("%d sets, %d points (%d distinct), %d epochs",
		s.Sets, s.Points, s.Distinct, s.Epochs)
}

// Store is a concurrent registry of named live sets. The zero value is
// not usable; construct with New.
type Store struct {
	mu   sync.RWMutex
	sets map[string]*live.Set
}

// New builds an empty store.
func New() *Store {
	return &Store{sets: make(map[string]*live.Set)}
}

// Create builds a live set over the initial points and registers it
// under name. It fails on an invalid name, a duplicate, or a set
// configuration the live layer rejects. The build runs outside the
// registry lock (it may shard a full sketch construction), so concurrent
// lookups of other sets never stall; two racing Creates of one name
// resolve to one winner and one duplicate error.
func (s *Store) Create(name string, cfg live.Config, initial metric.PointSet) (*live.Set, error) {
	if !ValidName(name) {
		return nil, fmt.Errorf("store: invalid set name %q", name)
	}
	s.mu.RLock()
	_, dup := s.sets[name]
	s.mu.RUnlock()
	if dup {
		return nil, fmt.Errorf("store: set %q already exists", name)
	}
	ls, err := live.NewSet(cfg, initial)
	if err != nil {
		return nil, fmt.Errorf("store: set %q: %w", name, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.sets[name]; dup {
		return nil, fmt.Errorf("store: set %q already exists", name)
	}
	s.sets[name] = ls
	return ls, nil
}

// Get resolves a name to its live set.
func (s *Store) Get(name string) (*live.Set, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ls, ok := s.sets[name]
	return ls, ok
}

// Drop removes a named set from the registry, reporting whether it was
// present. Sessions already serving a snapshot of the set finish
// undisturbed (snapshots are immutable); new sessions naming it are
// rejected with an unknown-set status.
func (s *Store) Drop(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.sets[name]
	delete(s.sets, name)
	return ok
}

// Names lists the registered set names in sorted order (the default
// set's empty name sorts first when present).
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.sets))
	for name := range s.sets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of registered sets.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.sets)
}

// Stats aggregates the per-set gauges. It snapshots the registry under
// the read lock, then queries each set without any store lock held.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	sets := make([]*live.Set, 0, len(s.sets))
	for _, ls := range s.sets {
		sets = append(sets, ls)
	}
	s.mu.RUnlock()
	st := Stats{Sets: len(sets)}
	for _, ls := range sets {
		st.Points += ls.Size()
		st.Distinct += ls.Distinct()
		st.Epochs += ls.Epoch()
	}
	return st
}

package durable

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/live"
	"repro/internal/rng"
	"repro/internal/store"
	"repro/internal/workload"
)

// setDirs lists the entries under the durable sets directory, so tests
// can assert exactly which on-disk state a lifecycle left behind.
func setDirs(t *testing.T, d *Store) []string {
	t.Helper()
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		t.Fatalf("read sets dir: %v", err)
	}
	var names []string
	for _, ent := range ents {
		names = append(names, ent.Name())
	}
	return names
}

// TestCreateRollbackLeavesNoState drives a mid-create failure through
// the full store.Create path: the persister seals config, snapshot and
// journal first, then live.NewSet rejects the configuration — the
// rollback must close the journal and leave the data directory exactly
// as it was, with the name immediately reusable.
func TestCreateRollbackLeavesNoState(t *testing.T) {
	d := openTestStore(t, t.TempDir(), 4)
	st := store.New()
	st.SetPersister(d)

	// live.Config{} enables no protocol structure: OnCreate persists it
	// happily (the codec round-trips any config), then live.NewSet
	// fails and store.Create rolls back through OnDrop.
	if _, err := st.Create("victim", live.Config{}, nil); err == nil {
		t.Fatal("Create with an empty live.Config should fail")
	}
	if got := setDirs(t, d); len(got) != 0 {
		t.Fatalf("failed create left state behind: %v", got)
	}

	// The name is reusable, and the recreated set persists normally.
	pts := workload.RandomSet(testSpace(), 16, rng.New(3))
	ls, err := st.Create("victim", testConfig(256), pts)
	if err != nil {
		t.Fatalf("recreate after rollback: %v", err)
	}
	if n := churn(t, ls, 11, 20); n == 0 {
		t.Fatal("churn applied nothing")
	}
	want := ls.IDFingerprint()

	d.Crash()
	re := openTestStore(t, filepath.Dir(d.dir), 4)
	rst := store.New()
	if _, err := re.Recover(rst); err != nil {
		t.Fatalf("recover: %v", err)
	}
	got, ok := rst.Get("victim")
	if !ok || got.IDFingerprint() != want {
		t.Fatalf("recovered fingerprint mismatch (present=%v)", ok)
	}
}

// TestOpenSweepsInterruptedLifecycles plants the debris a process kill
// can leave mid-create (.creating staging dir) and mid-drop (.dropping
// tombstone); Open must sweep both, and recovery must see neither.
func TestOpenSweepsInterruptedLifecycles(t *testing.T) {
	root := t.TempDir()
	sets := filepath.Join(root, "sets")
	for _, debris := range []string{
		setDirName("half") + stagingSuffix,
		setDirName("gone") + tombstoneSuffix,
	} {
		dir := filepath.Join(sets, debris)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "wal-00000000000000000001.log"), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	d := openTestStore(t, root, 4)
	if got := setDirs(t, d); len(got) != 0 {
		t.Fatalf("Open did not sweep interrupted lifecycles: %v", got)
	}
	st := store.New()
	stats, err := d.Recover(st)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if stats.Sets != 0 || st.Len() != 0 {
		t.Fatalf("recovery resurrected swept debris: %+v, %d sets", stats, st.Len())
	}
	// The swept names are fully reusable.
	if _, err := st.Create("half", testConfig(256), nil); err != nil {
		t.Fatalf("create over swept staging: %v", err)
	}
}

// TestDropRecreateSurvivesKillRestart is the admin-mutation durability
// contract: drop a set, recreate it under the same name with different
// content, kill the process, and the restart must recover exactly the
// recreated generation — no orphaned WAL or snapshot files from the
// dropped life.
func TestDropRecreateSurvivesKillRestart(t *testing.T) {
	root := t.TempDir()
	d := openTestStore(t, root, 4)
	st := store.New()
	st.SetPersister(d)

	first := workload.RandomSet(testSpace(), 24, rng.New(1))
	if _, err := st.Create("shard", testConfig(256), first); err != nil {
		t.Fatalf("create: %v", err)
	}
	if !st.Drop("shard") {
		t.Fatal("drop reported absent set")
	}
	second := workload.RandomSet(testSpace(), 8, rng.New(2))
	ls, err := st.Create("shard", testConfig(256), second)
	if err != nil {
		t.Fatalf("recreate: %v", err)
	}
	churn(t, ls, 7, 25)
	want := ls.IDFingerprint()
	wantEpoch := ls.Epoch()

	d.Crash()
	re := openTestStore(t, root, 4)
	for _, name := range setDirs(t, re) {
		if strings.HasSuffix(name, stagingSuffix) || strings.HasSuffix(name, tombstoneSuffix) {
			t.Fatalf("orphaned lifecycle dir after kill: %s", name)
		}
	}
	rst := store.New()
	stats, err := re.Recover(rst)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if stats.Sets != 1 {
		t.Fatalf("recovered %d sets, want exactly the recreated one", stats.Sets)
	}
	got, ok := rst.Get("shard")
	if !ok {
		t.Fatal("recreated set missing after restart")
	}
	if got.IDFingerprint() != want || got.Epoch() != wantEpoch {
		t.Fatalf("recovered generation mismatch: fp %x/%x epoch %d/%d",
			got.IDFingerprint(), want, got.Epoch(), wantEpoch)
	}
}

// TestMetricsCounters sanity-checks the operator counters: appends and
// snapshots count up, and recovery stats are retained.
func TestMetricsCounters(t *testing.T) {
	root := t.TempDir()
	d := openTestStore(t, root, 4)
	st := store.New()
	st.SetPersister(d)
	ls, err := st.Create("m", testConfig(256), workload.RandomSet(testSpace(), 8, rng.New(9)))
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	churn(t, ls, 5, 10)
	m := d.Metrics()
	if m.Records == 0 || m.RecordBytes == 0 {
		t.Fatalf("no WAL appends counted: %+v", m)
	}
	if m.Snapshots < 2 { // creation seal + at least one cadence compaction
		t.Fatalf("snapshots = %d, want >= 2", m.Snapshots)
	}
	d.Crash()

	re := openTestStore(t, root, 4)
	if _, err := re.Recover(store.New()); err != nil {
		t.Fatalf("recover: %v", err)
	}
	rm := re.Metrics()
	if rm.Recovery.Sets != 1 {
		t.Fatalf("recovery stats not retained: %+v", rm.Recovery)
	}
	if rm.Snapshots == 0 {
		t.Fatal("recovery re-seal did not count a snapshot")
	}
}

// Package durable shadows a store.Store on disk: every named set gets
// a write-ahead journal of its mutations plus epoch-tagged snapshots,
// and a crashed process rebuilds bit-identical reconciliation state by
// replaying the journal tail over the newest snapshot.
//
// Layout under the data directory:
//
//	<dir>/sets/set-<hex(name)>/
//	    config.bin            persisted live.Config (framed)
//	    snap-<E>.snap         full multiset at epoch E (framed)
//	    wal-<E>.log           framed journal records for epochs > E
//
// The write path is the classic WAL ordering, enforced by live.Set's
// Logger contract: a mutation is validated, journaled (fsync per
// policy), and only then applied in memory — a journal write failure
// aborts the mutation, so memory can never be ahead of disk. Every
// record carries the epoch it closes; compaction writes a snapshot at
// the current epoch E into a temp file, fsyncs, renames, then switches
// to a fresh wal-<E>.log and deletes older generations. A crash at any
// point of that sequence is safe because replay skips records at or
// below the snapshot epoch: duplicate history is ignored by epoch tag,
// not by file bookkeeping.
//
// Recovery picks the newest snapshot that decodes cleanly (falling
// back to older ones), replays every journal record above its epoch in
// order, and stops — cleanly, never panicking — at the first torn or
// corrupt frame, treating everything after it as lost tail. Recovered
// sets resume their pre-crash epoch numbering (live.RestoreEpoch), and
// recovery ends with a fresh compaction so the next boot's replay work
// is bounded regardless of how the last life ended.
package durable

import (
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/live"
	"repro/internal/metric"
	"repro/internal/store"
	"repro/internal/transport"
)

// FsyncPolicy selects how eagerly journal appends reach stable
// storage. Snapshots and config files are always written via
// temp-file + fsync + rename regardless of policy.
type FsyncPolicy int

const (
	// FsyncAlways syncs the journal file after every record: a
	// mutation acknowledged to the caller survives power loss.
	FsyncAlways FsyncPolicy = iota
	// FsyncBatch syncs only at compaction and close. Appends are still
	// flushed to the OS per record, so a process crash loses nothing;
	// power loss may lose the tail since the last snapshot.
	FsyncBatch
	// FsyncOff never syncs the journal explicitly (snapshots still
	// sync). For tests and benchmarks.
	FsyncOff
)

// ParseFsyncPolicy maps the -fsync flag values.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "batch":
		return FsyncBatch, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("durable: unknown fsync policy %q (want always|batch|off)", s)
}

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncBatch:
		return "batch"
	case FsyncOff:
		return "off"
	default:
		return fmt.Sprintf("fsync(%d)", int(p))
	}
}

// DefaultSnapshotEvery is the compaction cadence when Options leaves
// SnapshotEvery zero: a snapshot every this many journal records.
const DefaultSnapshotEvery = 4096

// Options tunes a durable store.
type Options struct {
	// Fsync is the journal sync policy (default FsyncAlways).
	Fsync FsyncPolicy
	// SnapshotEvery compacts after this many journal records (0 means
	// DefaultSnapshotEvery; negative disables size-triggered
	// compaction — boot and drain still snapshot).
	SnapshotEvery int
	// Logf receives recovery and compaction notices (nil discards).
	Logf func(format string, args ...any)
}

// Store is the durability layer for one data directory. It implements
// store.Persister; attach it with store.SetPersister after Recover.
type Store struct {
	dir  string // <data-dir>/sets
	opt  Options
	mu   sync.Mutex
	sets map[string]*setFiles
	done bool
	// lastRecovery holds the most recent Recover pass's stats (zero
	// before any), for the operator metrics surface.
	lastRecovery RecoveryStats

	// Lifetime work counters (Metrics).
	records     atomic.Uint64
	recordBytes atomic.Uint64
	snapshots   atomic.Uint64
}

// stagingSuffix and tombstoneSuffix mark set directories mid-create
// and mid-drop. Both names fail setDirDecode, so recovery never reads
// them as live sets, and Open sweeps any that a killed process left
// behind — a crash at any point inside a create or drop leaves either
// the old complete state or no state, never a partial directory.
const (
	stagingSuffix   = ".creating"
	tombstoneSuffix = ".dropping"
)

// Open prepares the data directory (creating it if needed) and returns
// a store with no sets attached; call Recover to load persisted sets.
func Open(dir string, opt Options) (*Store, error) {
	if opt.SnapshotEvery == 0 {
		opt.SnapshotEvery = DefaultSnapshotEvery
	}
	if opt.Logf == nil {
		opt.Logf = func(string, ...any) {}
	}
	sets := filepath.Join(dir, "sets")
	if err := os.MkdirAll(sets, 0o755); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	// Sweep creates and drops a previous life was killed in the middle
	// of: a .creating directory never became a set (its creation error
	// surfaced, or the process died before the set existed), and a
	// .dropping tombstone was already retired by the rename — both are
	// garbage, and neither may survive to confuse a later create.
	if ents, err := os.ReadDir(sets); err == nil {
		swept := false
		for _, ent := range ents {
			name := ent.Name()
			if strings.HasSuffix(name, stagingSuffix) || strings.HasSuffix(name, tombstoneSuffix) {
				os.RemoveAll(filepath.Join(sets, name))
				opt.Logf("durable: swept %s (interrupted create/drop)", name)
				swept = true
			}
		}
		if swept {
			syncDir(sets)
		}
	}
	return &Store{dir: sets, opt: opt, sets: make(map[string]*setFiles)}, nil
}

// setDirName encodes a set name into a filesystem-safe directory name.
func setDirName(name string) string { return "set-" + hex.EncodeToString([]byte(name)) }

// setDirDecode inverts setDirName; ok is false for foreign entries.
func setDirDecode(dir string) (string, bool) {
	hexPart, found := strings.CutPrefix(dir, "set-")
	if !found {
		return "", false
	}
	b, err := hex.DecodeString(hexPart)
	if err != nil {
		return "", false
	}
	return string(b), true
}

// setFiles is one set's on-disk state: the open journal, the compaction
// mirror (the distinct points with counts, in live.Set's insertion
// order, maintained op by op so a snapshot never needs to read the live
// set — LogOps runs under the set's write lock, where calling back into
// it would deadlock), and the generation bookkeeping.
type setFiles struct {
	st   *Store
	name string
	dir  string

	mu      sync.Mutex
	file    *os.File
	walBase uint64 // epoch of the snapshot the open journal extends
	epoch   uint64 // last journaled epoch
	recs    int    // records appended since the last snapshot
	byKey   map[string]*mirrorEntry
	order   []*mirrorEntry
	scratch []byte // frame assembly buffer
	closed  bool
}

type mirrorEntry struct {
	pt    metric.Point
	count int
	pos   int
}

// LogOps implements live.Logger: frame the record, append, flush,
// fsync per policy, fold the ops into the mirror, and compact when the
// journal has grown past the snapshot cadence.
func (sf *setFiles) LogOps(epoch uint64, ops []live.Op) error {
	sf.mu.Lock()
	defer sf.mu.Unlock()
	if sf.closed {
		return fmt.Errorf("durable: set %q: journal closed", sf.name)
	}
	e := transport.NewEncoder()
	encodeRecord(e, epoch, ops)
	payload, _ := e.Pack()
	sf.scratch = appendFrame(sf.scratch[:0], payload)
	_, err := sf.file.Write(sf.scratch)
	transport.Recycle(e, payload)
	if err != nil {
		return fmt.Errorf("durable: set %q: append: %w", sf.name, err)
	}
	sf.st.records.Add(1)
	sf.st.recordBytes.Add(uint64(len(sf.scratch)))
	if sf.st.opt.Fsync == FsyncAlways {
		if err := sf.file.Sync(); err != nil {
			return fmt.Errorf("durable: set %q: sync: %w", sf.name, err)
		}
	}
	sf.applyMirror(ops)
	sf.epoch = epoch
	sf.recs++
	if n := sf.st.opt.SnapshotEvery; n > 0 && sf.recs >= n {
		if err := sf.compactLocked(sf.epoch); err != nil {
			// The record itself is durable; losing the compaction only
			// costs replay time, so the mutation still succeeds.
			sf.st.opt.Logf("durable: set %q: compaction failed: %v", sf.name, err)
		}
	}
	return nil
}

// applyMirror folds a validated op batch into the compaction mirror,
// with exactly live.Set's entry semantics (insertion order, swap-
// remove on last copy) so snapshots written from the mirror list
// points in the same order the live set would.
func (sf *setFiles) applyMirror(ops []live.Op) {
	for _, op := range ops {
		k := pointKey(op.Point)
		en := sf.byKey[k]
		if op.Remove {
			if en == nil {
				continue // validated upstream; defensive
			}
			en.count--
			if en.count == 0 {
				last := len(sf.order) - 1
				sf.order[en.pos] = sf.order[last]
				sf.order[en.pos].pos = en.pos
				sf.order = sf.order[:last]
				delete(sf.byKey, k)
			}
			continue
		}
		if en == nil {
			en = &mirrorEntry{pt: op.Point.Clone(), pos: len(sf.order)}
			sf.byKey[k] = en
			sf.order = append(sf.order, en)
		}
		en.count++
	}
}

// pointKey matches live.Set's membership key (little-endian coords).
func pointKey(pt metric.Point) string {
	b := make([]byte, 4*len(pt))
	for i, c := range pt {
		b[4*i] = byte(c)
		b[4*i+1] = byte(c >> 8)
		b[4*i+2] = byte(c >> 16)
		b[4*i+3] = byte(c >> 24)
	}
	return string(b)
}

func (sf *setFiles) snapPath(epoch uint64) string {
	return filepath.Join(sf.dir, fmt.Sprintf("snap-%020d.snap", epoch))
}

func (sf *setFiles) walPath(epoch uint64) string {
	return filepath.Join(sf.dir, fmt.Sprintf("wal-%020d.log", epoch))
}

// compactLocked seals the current generation at epoch: write the
// snapshot durably, switch the journal to wal-<epoch>.log, delete
// older generations. Crash-safe at every step — replay skips by epoch
// tag, so a half-finished compaction only leaves redundant files.
func (sf *setFiles) compactLocked(epoch uint64) error {
	entries := make([]snapEntry, len(sf.order))
	for i, en := range sf.order {
		entries[i] = snapEntry{pt: en.pt, count: en.count}
	}
	e := transport.NewEncoder()
	encodeSnapshot(e, epoch, entries)
	payload, _ := e.Pack()
	frame := appendFrame(nil, payload)
	transport.Recycle(e, payload)
	if err := writeFileDurable(sf.snapPath(epoch), frame); err != nil {
		return err
	}
	sf.st.snapshots.Add(1)
	// O_TRUNC: a crash after a previous snapshot at this same epoch may
	// have left a stale wal-<epoch>.log; its records are ≤ epoch and
	// already covered by the snapshot just written.
	f, err := os.OpenFile(sf.walPath(epoch), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if sf.file != nil {
		if sf.st.opt.Fsync != FsyncOff {
			sf.file.Sync()
		}
		sf.file.Close()
	}
	sf.file = f
	sf.walBase = epoch
	sf.recs = 0
	// Older generations are garbage now; removal failures cost disk,
	// not correctness.
	for _, gen := range listGenerations(sf.dir) {
		if gen.epoch < epoch {
			os.Remove(filepath.Join(sf.dir, gen.file))
		}
	}
	syncDir(sf.dir)
	return nil
}

// closeLocked shuts the journal; with drain set it first compacts at
// the current epoch so the next recovery replays nothing.
func (sf *setFiles) closeLocked(drain bool) error {
	if sf.closed {
		return nil
	}
	var err error
	if drain && sf.recs > 0 {
		err = sf.compactLocked(sf.epoch)
	}
	if sf.file != nil {
		if sf.st.opt.Fsync != FsyncOff {
			sf.file.Sync()
		}
		if cerr := sf.file.Close(); err == nil {
			err = cerr
		}
		sf.file = nil
	}
	sf.closed = true
	return err
}

// generation is one parsed snapshot or journal filename.
type generation struct {
	file  string
	epoch uint64
	wal   bool
}

// listGenerations parses the snapshot/journal files in a set directory,
// sorted by epoch ascending (wal after snap at equal epoch).
func listGenerations(dir string) []generation {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var gens []generation
	for _, ent := range ents {
		name := ent.Name()
		var num string
		g := generation{file: name}
		switch {
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			num = strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap")
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			num = strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log")
			g.wal = true
		default:
			continue
		}
		ep, err := strconv.ParseUint(num, 10, 64)
		if err != nil {
			continue
		}
		g.epoch = ep
		gens = append(gens, g)
	}
	sort.Slice(gens, func(i, j int) bool {
		if gens[i].epoch != gens[j].epoch {
			return gens[i].epoch < gens[j].epoch
		}
		return !gens[i].wal && gens[j].wal
	})
	return gens
}

// writeFileDurable writes data via temp file + fsync + rename, so the
// target path only ever names a complete file.
func writeFileDurable(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// syncDir fsyncs a directory so renames and removals are durable;
// best-effort (some filesystems reject it).
func syncDir(dir string) {
	if f, err := os.Open(dir); err == nil {
		f.Sync()
		f.Close()
	}
}

// OnCreate implements store.Persister: persist the configuration,
// snapshot the initial points at epoch 1 (live.NewSet starts there),
// open the journal, and hand back the set's write-ahead logger. The
// whole creation is staged under a .creating name and renamed into
// place only once the first generation is sealed, so a mid-create
// failure — an unwritable disk, a rejected live config upstream, or a
// process kill — rolls back to nothing: no orphaned WAL or snapshot
// files, no open journal handle, and the name immediately reusable.
func (d *Store) OnCreate(name string, cfg live.Config, initial metric.PointSet) (live.Logger, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.done {
		return nil, fmt.Errorf("durable: store closed")
	}
	if _, dup := d.sets[name]; dup {
		return nil, fmt.Errorf("durable: set %q already persisted", name)
	}
	dir := filepath.Join(d.dir, setDirName(name))
	if _, err := os.Stat(dir); err == nil {
		return nil, fmt.Errorf("durable: set %q: directory %s already exists (unrecovered state?)", name, dir)
	}
	stage := dir + stagingSuffix
	os.RemoveAll(stage) // leftovers of an earlier failed create of this name
	if err := os.MkdirAll(stage, 0o755); err != nil {
		return nil, err
	}
	sf := &setFiles{st: d, name: name, dir: stage, byKey: make(map[string]*mirrorEntry)}
	rollback := func(err error) (live.Logger, error) {
		sf.mu.Lock()
		sf.closeLocked(false)
		sf.mu.Unlock()
		os.RemoveAll(stage)
		return nil, err
	}
	e := transport.NewEncoder()
	encodeConfig(e, cfg)
	payload, _ := e.Pack()
	frame := appendFrame(nil, payload)
	transport.Recycle(e, payload)
	if err := writeFileDurable(filepath.Join(stage, "config.bin"), frame); err != nil {
		return rollback(err)
	}
	var ops []live.Op
	for _, pt := range initial {
		ops = append(ops, live.Op{Point: pt})
	}
	sf.applyMirror(ops)
	sf.epoch = 1
	if err := sf.compactLocked(1); err != nil {
		return rollback(err)
	}
	if err := os.Rename(stage, dir); err != nil {
		return rollback(err)
	}
	// The open journal fd survives the directory rename; only future
	// path derivations (snapshots, generation listings) need the final
	// location.
	sf.dir = dir
	syncDir(d.dir)
	d.sets[name] = sf
	return sf, nil
}

// OnDrop implements store.Persister: close the journal and delete the
// set's directory — atomically retired first by renaming it to a
// .dropping tombstone, so a kill mid-removal leaves a name recovery
// ignores and the next Open sweeps, never a partial set directory that
// would brick or resurrect on boot.
func (d *Store) OnDrop(name string) {
	d.mu.Lock()
	sf := d.sets[name]
	delete(d.sets, name)
	d.mu.Unlock()
	if sf != nil {
		sf.mu.Lock()
		sf.closeLocked(false)
		sf.mu.Unlock()
	}
	dir := filepath.Join(d.dir, setDirName(name))
	tomb := dir + tombstoneSuffix
	os.RemoveAll(tomb) // a stale tombstone never blocks the rename
	if err := os.Rename(dir, tomb); err == nil {
		os.RemoveAll(tomb)
	}
	syncDir(d.dir)
}

// Metrics counts the durability layer's lifetime work — the WAL and
// snapshot counters the operator surface (admin /metrics) exports.
type Metrics struct {
	// Records and RecordBytes total journal appends: committed
	// mutation frames and their on-disk size (length prefixes and
	// checksums included).
	Records     uint64
	RecordBytes uint64
	// Snapshots counts snapshot files written: creation seals, cadence
	// compactions, recovery re-seals, and drain.
	Snapshots uint64
	// Recovery is the most recent Recover pass's stats (zero before
	// any).
	Recovery RecoveryStats
}

// Metrics snapshots the store's counters.
func (d *Store) Metrics() Metrics {
	d.mu.Lock()
	rec := d.lastRecovery
	d.mu.Unlock()
	return Metrics{
		Records:     d.records.Load(),
		RecordBytes: d.recordBytes.Load(),
		Snapshots:   d.snapshots.Load(),
		Recovery:    rec,
	}
}

// RecoveryStats summarizes one Recover pass.
type RecoveryStats struct {
	Sets             int   // sets rebuilt
	Replayed         int   // journal records applied
	Skipped          int   // records at or below their snapshot epoch
	LostBytes        int64 // torn/corrupt journal tail discarded
	CorruptSnapshots int   // snapshot files that failed to decode
}

// String formats the stats for log lines.
func (s RecoveryStats) String() string {
	return fmt.Sprintf("%d sets, %d records replayed (%d skipped), %d tail bytes lost, %d corrupt snapshots",
		s.Sets, s.Replayed, s.Skipped, s.LostBytes, s.CorruptSnapshots)
}

// Recover rebuilds every persisted set and registers it in st. Each
// set is restored from its newest cleanly-decoding snapshot plus the
// journal records above that epoch, replayed in epoch order; replay
// stops at the first torn or corrupt frame and the surviving state is
// immediately re-compacted, so the repaired generation is durable
// before the set serves traffic. Call before SetPersister-driven
// creations; sets that recover are journaled through this store again.
func (d *Store) Recover(st *store.Store) (RecoveryStats, error) {
	var stats RecoveryStats
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return stats, fmt.Errorf("durable: %w", err)
	}
	for _, ent := range ents {
		if !ent.IsDir() {
			continue
		}
		name, ok := setDirDecode(ent.Name())
		if !ok {
			continue
		}
		if err := d.recoverSet(st, name, filepath.Join(d.dir, ent.Name()), &stats); err != nil {
			return stats, fmt.Errorf("durable: set %q: %w", name, err)
		}
		stats.Sets++
	}
	d.mu.Lock()
	d.lastRecovery = stats
	d.mu.Unlock()
	return stats, nil
}

// recoverSet rebuilds one set directory.
func (d *Store) recoverSet(st *store.Store, name, dir string, stats *RecoveryStats) error {
	cfgRaw, err := os.ReadFile(filepath.Join(dir, "config.bin"))
	if err != nil {
		return fmt.Errorf("config: %w", err)
	}
	payload, _, err := nextFrame(cfgRaw, 0)
	if err != nil {
		return fmt.Errorf("config: %w", err)
	}
	dec := transport.NewDecoder(payload)
	cfg, err := decodeConfig(dec)
	if err != nil {
		return fmt.Errorf("config: %w", err)
	}

	gens := listGenerations(dir)
	// Newest snapshot that decodes cleanly wins; older ones stay valid
	// fallbacks because the journal retains every record above them
	// until a *successful* compaction deletes the generation.
	var (
		entries   []snapEntry
		snapEpoch uint64
		haveSnap  bool
	)
	for i := len(gens) - 1; i >= 0; i-- {
		if gens[i].wal {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(dir, gens[i].file))
		if err == nil {
			var p []byte
			if p, _, err = nextFrame(raw, 0); err == nil {
				dec.Reset(p)
				snapEpoch, entries, err = decodeSnapshot(dec)
			}
		}
		if err != nil {
			stats.CorruptSnapshots++
			d.opt.Logf("durable: set %q: snapshot %s unreadable (%v), falling back", name, gens[i].file, err)
			continue
		}
		haveSnap = true
		break
	}
	if !haveSnap {
		return errors.New("no readable snapshot")
	}

	initial := make(metric.PointSet, 0, len(entries))
	for _, en := range entries {
		for i := 0; i < en.count; i++ {
			initial = append(initial, en.pt)
		}
	}
	ls, err := live.NewSet(cfg, initial)
	if err != nil {
		return fmt.Errorf("rebuild: %w", err)
	}
	if err := ls.RestoreEpoch(snapEpoch); err != nil {
		return fmt.Errorf("rebuild: %w", err)
	}

	// Replay every journal record above the snapshot epoch, strictly
	// in sequence. The first torn or corrupt frame — or an epoch gap,
	// which means a record vanished without tripping a checksum —
	// ends replay; the tail after it is lost, counted, and discarded
	// by the re-compaction below.
	sf := &setFiles{st: d, name: name, dir: dir, byKey: make(map[string]*mirrorEntry)}
	var ops []live.Op
replay:
	for _, gen := range gens {
		if !gen.wal {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(dir, gen.file))
		if err != nil {
			d.opt.Logf("durable: set %q: journal %s unreadable (%v), stopping replay", name, gen.file, err)
			break
		}
		off := 0
		for off < len(raw) {
			payload, next, err := nextFrame(raw, off)
			if err != nil {
				stats.LostBytes += int64(len(raw) - off)
				d.opt.Logf("durable: set %q: journal %s offset %d: %v; discarding tail", name, gen.file, off, err)
				break replay
			}
			dec.Reset(payload)
			var epoch uint64
			if ops, err = decodeRecord(dec, &epoch, ops); err != nil {
				stats.LostBytes += int64(len(raw) - off)
				d.opt.Logf("durable: set %q: journal %s offset %d: %v; discarding tail", name, gen.file, off, err)
				break replay
			}
			cur := ls.Epoch()
			switch {
			case epoch <= cur:
				stats.Skipped++
			case epoch == cur+1:
				if err := replayRecord(ls, ops); err != nil {
					stats.LostBytes += int64(len(raw) - off)
					d.opt.Logf("durable: set %q: journal %s epoch %d: %v; discarding tail", name, gen.file, epoch, err)
					break replay
				}
				stats.Replayed++
			default:
				stats.LostBytes += int64(len(raw) - off)
				d.opt.Logf("durable: set %q: journal %s: epoch gap (%d after %d); discarding tail", name, gen.file, epoch, cur)
				break replay
			}
			off = next
		}
	}

	// Seal the recovered state: mirror from the live set, compact at
	// its epoch (bounding the next boot), and only then let mutations
	// flow through the journal again.
	snap := ls.Snapshot()
	for _, pt := range snap.Points {
		k := pointKey(pt)
		if en := sf.byKey[k]; en != nil {
			en.count++
		} else {
			en = &mirrorEntry{pt: pt.Clone(), count: 1, pos: len(sf.order)}
			sf.byKey[k] = en
			sf.order = append(sf.order, en)
		}
	}
	sf.epoch = ls.Epoch()
	if err := sf.compactLocked(sf.epoch); err != nil {
		return fmt.Errorf("post-recovery compaction: %w", err)
	}
	ls.SetLogger(sf)
	if err := st.Attach(name, ls); err != nil {
		sf.mu.Lock()
		sf.closeLocked(false)
		sf.mu.Unlock()
		return err
	}
	d.mu.Lock()
	d.sets[name] = sf
	d.mu.Unlock()
	return nil
}

// replayRecord re-applies one journaled mutation through the same
// entry points that produced it, so epoch bumps and churn bookkeeping
// match the original run exactly.
func replayRecord(ls *live.Set, ops []live.Op) error {
	if len(ops) == 1 {
		if ops[0].Remove {
			return ls.Remove(ops[0].Point)
		}
		return ls.Add(ops[0].Point)
	}
	return ls.ApplyBatch(ops)
}

// SnapshotAll compacts every open set at its current epoch, bounding
// the next recovery's replay to zero for quiescent sets.
func (d *Store) SnapshotAll() error {
	d.mu.Lock()
	sets := make([]*setFiles, 0, len(d.sets))
	for _, sf := range d.sets {
		sets = append(sets, sf)
	}
	d.mu.Unlock()
	var firstErr error
	for _, sf := range sets {
		sf.mu.Lock()
		if !sf.closed && sf.recs > 0 {
			if err := sf.compactLocked(sf.epoch); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("durable: set %q: %w", sf.name, err)
			}
		}
		sf.mu.Unlock()
	}
	return firstErr
}

// Close drains the store: snapshot-on-drain for every set, then close
// all journals. Further journaled mutations fail.
func (d *Store) Close() error {
	return d.shutdown(true)
}

// Crash abandons the store without draining — no final snapshots, no
// journal syncs beyond what the policy already did. It simulates a
// process kill for tests and the simnet kill fault; the state left on
// disk is exactly what a real crash at this instant would leave.
func (d *Store) Crash() {
	d.shutdown(false)
}

func (d *Store) shutdown(drain bool) error {
	d.mu.Lock()
	if d.done {
		d.mu.Unlock()
		return nil
	}
	d.done = true
	sets := make([]*setFiles, 0, len(d.sets))
	for _, sf := range d.sets {
		sets = append(sets, sf)
	}
	d.mu.Unlock()
	var firstErr error
	for _, sf := range sets {
		sf.mu.Lock()
		var err error
		if drain {
			err = sf.closeLocked(true)
		} else {
			// Simulated kill: drop the handle, flush nothing further.
			if sf.file != nil {
				sf.file.Close()
				sf.file = nil
			}
			sf.closed = true
		}
		sf.mu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Wire formats for the durable store: framed records on disk, with the
// payload bits encoded through the transport codec (the same encoder
// the reconciliation protocols use on the network).
//
// Every on-disk record — a journal entry, a snapshot, a persisted set
// configuration — is one frame:
//
//	u32le payload length | u32le CRC32-C of payload | payload bytes
//
// Readers validate the length against both maxFrameLen and the bytes
// actually remaining BEFORE allocating or slicing, so a hostile or
// torn length prefix can neither panic nor balloon allocation (the
// same discipline iblt.DecodeFrom applies to network input). A frame
// that fails these checks classifies as either torn (plausibly a
// crashed writer: truncated mid-frame) or corrupt (checksum mismatch,
// absurd length); recovery stops cleanly at the first such frame.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/emd"
	"repro/internal/gap"
	"repro/internal/live"
	"repro/internal/metric"
	"repro/internal/riblt"
	"repro/internal/setsets"
	"repro/internal/transport"
)

const (
	// frameHeaderLen is the fixed prefix: u32le length + u32le CRC32-C.
	frameHeaderLen = 8
	// maxFrameLen bounds a single record payload (64 MiB). Anything
	// larger is rejected before allocation — a frame cannot ask the
	// reader for more memory than this, whatever its length field says.
	maxFrameLen = 1 << 26

	// Payload magics, so a snapshot handed to the journal reader (or a
	// truncated rename landing the wrong file) fails loudly instead of
	// decoding garbage.
	journalMagic  = 0x52575301 // "RWS" + format version 1
	snapshotMagic = 0x52534e01 // "RSN" + 1
	configMagic   = 0x52434601 // "RCF" + 1

	// maxSnapshotPoints bounds the multiset cardinality a snapshot may
	// expand to; a hostile count field is rejected before the rebuild
	// allocates.
	maxSnapshotPoints = 1 << 22
	// maxPointDim bounds a single point's dimensionality.
	maxPointDim = 1 << 16
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

var (
	// errTorn marks a frame the writer plausibly died inside: fewer
	// bytes remain than the header or the declared payload needs.
	// Recovery treats everything from here on as lost tail.
	errTorn = errors.New("durable: torn record (truncated frame)")
	// errCorrupt marks a frame that is structurally present but wrong:
	// checksum mismatch, hostile length, bad magic, or a payload the
	// decoder rejects.
	errCorrupt = errors.New("durable: corrupt record")
)

// appendFrame appends one framed payload to dst.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// nextFrame reads the frame starting at data[off], returning the
// payload (aliasing data) and the offset of the next frame. Length is
// validated against maxFrameLen and the remaining input before any
// slicing; the checksum is verified before the payload is returned.
func nextFrame(data []byte, off int) (payload []byte, next int, err error) {
	rest := len(data) - off
	if rest < frameHeaderLen {
		return nil, off, errTorn
	}
	n := int(binary.LittleEndian.Uint32(data[off : off+4]))
	if n > maxFrameLen {
		return nil, off, fmt.Errorf("%w: length %d exceeds %d", errCorrupt, n, maxFrameLen)
	}
	if n > rest-frameHeaderLen {
		return nil, off, errTorn
	}
	want := binary.LittleEndian.Uint32(data[off+4 : off+8])
	payload = data[off+frameHeaderLen : off+frameHeaderLen+n]
	if crc32.Checksum(payload, castagnoli) != want {
		return nil, off, fmt.Errorf("%w: checksum mismatch", errCorrupt)
	}
	return payload, off + frameHeaderLen + n, nil
}

// ---- journal records ----

// encodeRecord writes one journal record payload: magic, the epoch the
// batch closes, and the ops.
func encodeRecord(e *transport.Encoder, epoch uint64, ops []live.Op) {
	e.WriteBits(journalMagic, 32)
	e.WriteUvarint(epoch)
	e.WriteUvarint(uint64(len(ops)))
	for _, op := range ops {
		e.WriteBool(op.Remove)
		writePoint(e, op.Point)
	}
}

// decodeRecord parses one journal record payload. Counts are checked
// against the bytes remaining before any slice is sized from them.
func decodeRecord(d *transport.Decoder, epoch *uint64, ops []live.Op) ([]live.Op, error) {
	if err := expectMagic(d, journalMagic); err != nil {
		return nil, err
	}
	ep, err := d.ReadUvarint()
	if err != nil {
		return nil, fmt.Errorf("%w: epoch: %v", errCorrupt, err)
	}
	nops, err := d.ReadUvarint()
	if err != nil {
		return nil, fmt.Errorf("%w: op count: %v", errCorrupt, err)
	}
	// Each op needs at least a remove flag and a dimension, > 1 byte.
	if nops > uint64(d.Remaining()) {
		return nil, fmt.Errorf("%w: op count %d exceeds payload", errCorrupt, nops)
	}
	ops = ops[:0]
	for i := uint64(0); i < nops; i++ {
		rm, err := d.ReadBool()
		if err != nil {
			return nil, fmt.Errorf("%w: op %d: %v", errCorrupt, i, err)
		}
		pt, err := readPoint(d)
		if err != nil {
			return nil, fmt.Errorf("%w: op %d: %v", errCorrupt, i, err)
		}
		ops = append(ops, live.Op{Remove: rm, Point: pt})
	}
	*epoch = ep
	return ops, nil
}

func writePoint(e *transport.Encoder, pt metric.Point) {
	e.WriteUvarint(uint64(len(pt)))
	for _, c := range pt {
		e.WriteVarint(int64(c))
	}
}

func readPoint(d *transport.Decoder) (metric.Point, error) {
	dim, err := d.ReadUvarint()
	if err != nil {
		return nil, err
	}
	// One coordinate costs ≥ 1 byte on the wire.
	if dim > uint64(maxPointDim) || dim > uint64(d.Remaining()) {
		return nil, fmt.Errorf("dimension %d exceeds payload", dim)
	}
	pt := make(metric.Point, dim)
	for j := range pt {
		c, err := d.ReadVarint()
		if err != nil {
			return nil, err
		}
		if c < math.MinInt32 || c > math.MaxInt32 {
			return nil, fmt.Errorf("coordinate %d out of range", c)
		}
		pt[j] = int32(c)
	}
	return pt, nil
}

func expectMagic(d *transport.Decoder, want uint64) error {
	got, err := d.ReadBits(32)
	if err != nil {
		return fmt.Errorf("%w: magic: %v", errCorrupt, err)
	}
	if got != want {
		return fmt.Errorf("%w: magic %08x, want %08x", errCorrupt, got, want)
	}
	return nil
}

// ---- snapshots ----

// snapEntry is one distinct point with its multiplicity, in the set's
// insertion order (the order live.Set emits snapshots in — preserving
// it is what makes recovered wire bytes identical).
type snapEntry struct {
	pt    metric.Point
	count int
}

// encodeSnapshot writes a snapshot payload: magic, the epoch the state
// is current to, and the distinct entries in insertion order.
func encodeSnapshot(e *transport.Encoder, epoch uint64, entries []snapEntry) {
	e.WriteBits(snapshotMagic, 32)
	e.WriteUvarint(epoch)
	e.WriteUvarint(uint64(len(entries)))
	for _, en := range entries {
		e.WriteUvarint(uint64(en.count))
		writePoint(e, en.pt)
	}
}

// decodeSnapshot parses a snapshot payload. The distinct count and the
// total expanded cardinality are both bounded before allocation.
func decodeSnapshot(d *transport.Decoder) (epoch uint64, entries []snapEntry, err error) {
	if err := expectMagic(d, snapshotMagic); err != nil {
		return 0, nil, err
	}
	epoch, err = d.ReadUvarint()
	if err != nil {
		return 0, nil, fmt.Errorf("%w: epoch: %v", errCorrupt, err)
	}
	n, err := d.ReadUvarint()
	if err != nil {
		return 0, nil, fmt.Errorf("%w: entry count: %v", errCorrupt, err)
	}
	// Each entry needs at least a count and a dimension, ≥ 2 bytes.
	if n > uint64(d.Remaining())/2 {
		return 0, nil, fmt.Errorf("%w: entry count %d exceeds payload", errCorrupt, n)
	}
	entries = make([]snapEntry, 0, n)
	total := uint64(0)
	for i := uint64(0); i < n; i++ {
		cnt, err := d.ReadUvarint()
		if err != nil {
			return 0, nil, fmt.Errorf("%w: entry %d count: %v", errCorrupt, i, err)
		}
		if cnt == 0 {
			return 0, nil, fmt.Errorf("%w: entry %d has zero count", errCorrupt, i)
		}
		total += cnt
		if total > maxSnapshotPoints {
			return 0, nil, fmt.Errorf("%w: cardinality exceeds %d", errCorrupt, maxSnapshotPoints)
		}
		pt, err := readPoint(d)
		if err != nil {
			return 0, nil, fmt.Errorf("%w: entry %d: %v", errCorrupt, i, err)
		}
		entries = append(entries, snapEntry{pt: pt, count: int(cnt)})
	}
	return epoch, entries, nil
}

// ---- set configuration ----

// encodeConfig persists the wire-relevant live.Config. Workers fields
// are deliberately dropped (persisted as absent): they tune local
// sharding only, and a snapshot restored on different hardware must
// not inherit the crashed machine's parallelism. The Logger hook is
// runtime state, never persisted.
func encodeConfig(e *transport.Encoder, cfg live.Config) {
	e.WriteBits(configMagic, 32)
	e.WriteUvarint(uint64(cfg.JournalEpochs))
	e.WriteBool(cfg.EMD != nil)
	if cfg.EMD != nil {
		p := *cfg.EMD
		writeSpace(e, p.Space)
		e.WriteUvarint(uint64(p.N))
		e.WriteUvarint(uint64(p.K))
		e.WriteUint64(math.Float64bits(p.D1))
		e.WriteUint64(math.Float64bits(p.D2))
		e.WriteUvarint(uint64(p.Q))
		e.WriteUvarint(uint64(p.CellsPerLevel))
		e.WriteUvarint(uint64(p.KeyBits))
		e.WriteUvarint(uint64(p.MaxDecoded))
		e.WriteUvarint(uint64(p.MaxFuncs))
		e.WriteUint64(p.Seed)
		e.WriteUvarint(uint64(p.PeelOrder))
	}
	e.WriteBool(cfg.Gap != nil)
	if cfg.Gap != nil {
		p := *cfg.Gap
		writeSpace(e, p.Space)
		e.WriteUvarint(uint64(p.N))
		e.WriteUint64(math.Float64bits(p.R1))
		e.WriteUint64(math.Float64bits(p.R2))
		e.WriteUvarint(uint64(p.HFactor))
		e.WriteUvarint(uint64(p.EntryBits))
		e.WriteUint64(p.Seed)
		ss := p.SetSets
		e.WriteUvarint(uint64(ss.PayloadBytes))
		e.WriteUint64(ss.Seed)
		e.WriteUvarint(uint64(ss.StrataCells))
		e.WriteUvarint(uint64(ss.Q))
		e.WriteUvarint(uint64(ss.MaxRetries))
		e.WriteUint64(math.Float64bits(ss.SafetyFactor))
	}
	e.WriteBool(cfg.Sync != nil)
	if cfg.Sync != nil {
		e.WriteUvarint(uint64(cfg.Sync.StrataCells))
		e.WriteUint64(cfg.Sync.Seed)
	}
}

// decodeConfig parses a persisted configuration. Integer fields are
// bounds-checked into int; live.NewSet revalidates semantics.
func decodeConfig(d *transport.Decoder) (live.Config, error) {
	var cfg live.Config
	if err := expectMagic(d, configMagic); err != nil {
		return cfg, err
	}
	je, err := readInt(d)
	if err != nil {
		return cfg, fmt.Errorf("%w: journal epochs: %v", errCorrupt, err)
	}
	cfg.JournalEpochs = je
	hasEMD, err := d.ReadBool()
	if err != nil {
		return cfg, fmt.Errorf("%w: %v", errCorrupt, err)
	}
	if hasEMD {
		var p emd.Params
		if p.Space, err = readSpace(d); err == nil {
			p.N, err = readInt(d)
		}
		if err == nil {
			p.K, err = readInt(d)
		}
		if err == nil {
			p.D1, err = readFloat(d)
		}
		if err == nil {
			p.D2, err = readFloat(d)
		}
		if err == nil {
			p.Q, err = readInt(d)
		}
		if err == nil {
			p.CellsPerLevel, err = readInt(d)
		}
		var kb int
		if err == nil {
			kb, err = readInt(d)
		}
		p.KeyBits = uint(kb)
		if err == nil {
			p.MaxDecoded, err = readInt(d)
		}
		if err == nil {
			p.MaxFuncs, err = readInt(d)
		}
		if err == nil {
			p.Seed, err = d.ReadUint64()
		}
		var po int
		if err == nil {
			po, err = readInt(d)
		}
		p.PeelOrder = riblt.PeelOrder(po)
		if err != nil {
			return cfg, fmt.Errorf("%w: emd params: %v", errCorrupt, err)
		}
		cfg.EMD = &p
	}
	hasGap, err := d.ReadBool()
	if err != nil {
		return cfg, fmt.Errorf("%w: %v", errCorrupt, err)
	}
	if hasGap {
		var p gap.Params
		if p.Space, err = readSpace(d); err == nil {
			p.N, err = readInt(d)
		}
		if err == nil {
			p.R1, err = readFloat(d)
		}
		if err == nil {
			p.R2, err = readFloat(d)
		}
		if err == nil {
			p.HFactor, err = readInt(d)
		}
		var eb int
		if err == nil {
			eb, err = readInt(d)
		}
		p.EntryBits = uint(eb)
		if err == nil {
			p.Seed, err = d.ReadUint64()
		}
		var ss setsets.Params
		if err == nil {
			ss.PayloadBytes, err = readInt(d)
		}
		if err == nil {
			ss.Seed, err = d.ReadUint64()
		}
		if err == nil {
			ss.StrataCells, err = readInt(d)
		}
		if err == nil {
			ss.Q, err = readInt(d)
		}
		if err == nil {
			ss.MaxRetries, err = readInt(d)
		}
		if err == nil {
			ss.SafetyFactor, err = readFloat(d)
		}
		p.SetSets = ss
		if err != nil {
			return cfg, fmt.Errorf("%w: gap params: %v", errCorrupt, err)
		}
		cfg.Gap = &p
	}
	hasSync, err := d.ReadBool()
	if err != nil {
		return cfg, fmt.Errorf("%w: %v", errCorrupt, err)
	}
	if hasSync {
		var sc live.SyncConfig
		if sc.StrataCells, err = readInt(d); err == nil {
			sc.Seed, err = d.ReadUint64()
		}
		if err != nil {
			return cfg, fmt.Errorf("%w: sync config: %v", errCorrupt, err)
		}
		cfg.Sync = &sc
	}
	if cfg.EMD == nil && cfg.Gap == nil && cfg.Sync == nil {
		return cfg, fmt.Errorf("%w: config enables no structure", errCorrupt)
	}
	return cfg, nil
}

func writeSpace(e *transport.Encoder, sp metric.Space) {
	e.WriteVarint(int64(sp.Delta))
	e.WriteUvarint(uint64(sp.Dim))
	e.WriteUvarint(uint64(sp.Norm))
}

func readSpace(d *transport.Decoder) (metric.Space, error) {
	var sp metric.Space
	delta, err := d.ReadVarint()
	if err != nil {
		return sp, err
	}
	if delta < 0 || delta > math.MaxInt32 {
		return sp, fmt.Errorf("delta %d out of range", delta)
	}
	sp.Delta = int32(delta)
	if sp.Dim, err = readInt(d); err != nil {
		return sp, err
	}
	norm, err := readInt(d)
	if err != nil {
		return sp, err
	}
	sp.Norm = metric.Norm(norm)
	return sp, nil
}

// readInt decodes a uvarint that must fit a non-negative int32 — every
// count, size, and tuning knob we persist is far below that, and the
// bound keeps a hostile config from smuggling a negative or enormous
// value into a downstream make().
func readInt(d *transport.Decoder) (int, error) {
	v, err := d.ReadUvarint()
	if err != nil {
		return 0, err
	}
	if v > math.MaxInt32 {
		return 0, fmt.Errorf("value %d out of range", v)
	}
	return int(v), nil
}

func readFloat(d *transport.Decoder) (float64, error) {
	bits, err := d.ReadUint64()
	if err != nil {
		return 0, err
	}
	f := math.Float64frombits(bits)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, fmt.Errorf("non-finite float")
	}
	return f, nil
}

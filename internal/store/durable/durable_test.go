package durable

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/emd"
	"repro/internal/live"
	"repro/internal/metric"
	"repro/internal/quadtree"
	"repro/internal/rng"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/workload"
)

const testSyncSeed = 0x5eed

func testSpace() metric.Space { return metric.HammingCube(32) }

// testConfig enables every structure so recovery is exercised against
// the full sketch stack.
func testConfig(capacity int) live.Config {
	p := emd.DefaultParams(testSpace(), capacity, 4, 7)
	return live.Config{
		EMD:  &p,
		Sync: &live.SyncConfig{Seed: testSyncSeed},
	}
}

// openTestStore opens a durable store over a test temp dir with an
// aggressive snapshot cadence so compactions interleave the journal.
func openTestStore(t testing.TB, dir string, every int) *Store {
	t.Helper()
	d, err := Open(dir, Options{Fsync: FsyncOff, SnapshotEvery: every, Logf: t.Logf})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return d
}

// churn drives n random mutations (adds, removes, batches) through the
// set, deterministically from seed, and returns how many were applied.
// It tracks removal candidates itself (building a Snapshot per epoch
// just to pick a victim would dominate the test's runtime).
func churn(t testing.TB, ls *live.Set, seed uint64, n int) int {
	t.Helper()
	src := rng.New(seed)
	space := testSpace()
	pool := ls.Snapshot().Points.Clone()
	applied := 0
	for i := 0; i < n; i++ {
		switch src.Intn(4) {
		case 0: // remove a random current point when possible
			if len(pool) == 0 {
				continue
			}
			j := src.Intn(len(pool))
			if err := ls.Remove(pool[j]); err != nil {
				t.Fatalf("remove: %v", err)
			}
			pool[j] = pool[len(pool)-1]
			pool = pool[:len(pool)-1]
		case 1: // batch: one add + one remove of an existing point
			add := workload.RandomPoint(space, src)
			ops := []live.Op{{Point: add}}
			j := -1
			if len(pool) > 0 {
				j = src.Intn(len(pool))
				ops = append(ops, live.Op{Remove: true, Point: pool[j]})
			}
			if err := ls.ApplyBatch(ops); err != nil {
				t.Fatalf("batch: %v", err)
			}
			if j >= 0 {
				pool[j] = pool[len(pool)-1]
				pool = pool[:len(pool)-1]
			}
			pool = append(pool, add)
		default:
			add := workload.RandomPoint(space, src)
			if err := ls.Add(add); err != nil {
				t.Fatalf("add: %v", err)
			}
			pool = append(pool, add)
		}
		applied++
	}
	return applied
}

// requireWireIdentical asserts that two sets serve bit-identical wire
// state: EMD message bytes, ID fingerprints and lists, epoch, and the
// quadtree reference message over their snapshot points.
func requireWireIdentical(t *testing.T, want, got *live.Set) {
	t.Helper()
	ws, gs := want.Snapshot(), got.Snapshot()
	if ws.Epoch != gs.Epoch {
		t.Fatalf("epoch: recovered %d, want %d", gs.Epoch, ws.Epoch)
	}
	if !bytes.Equal(ws.EMDMessage, gs.EMDMessage) {
		t.Fatalf("EMD message diverged (%d vs %d bytes)", len(gs.EMDMessage), len(ws.EMDMessage))
	}
	if ws.EMDFingerprint != gs.EMDFingerprint {
		t.Fatalf("EMD fingerprint: %016x, want %016x", gs.EMDFingerprint, ws.EMDFingerprint)
	}
	if ws.IDFingerprint != gs.IDFingerprint {
		t.Fatalf("ID fingerprint: %016x, want %016x", gs.IDFingerprint, ws.IDFingerprint)
	}
	if len(ws.IDs) != len(gs.IDs) {
		t.Fatalf("ID count: %d, want %d", len(gs.IDs), len(ws.IDs))
	}
	for i := range ws.IDs {
		if ws.IDs[i] != gs.IDs[i] {
			t.Fatalf("ID order diverged at %d", i)
		}
	}
	qp := quadtree.Params{Space: testSpace(), N: len(ws.Points) + 1, K: 4, Seed: 7}
	wq, err := quadtree.EncodeReference(qp, ws.Points)
	if err != nil {
		t.Fatalf("quadtree reference: %v", err)
	}
	gq, err := quadtree.EncodeReference(qp, gs.Points)
	if err != nil {
		t.Fatalf("quadtree recovered: %v", err)
	}
	if !bytes.Equal(wq, gq) {
		t.Fatalf("quadtree message diverged (%d vs %d bytes)", len(gq), len(wq))
	}
}

// TestRecoveryGolden is the acceptance golden test: ≥1000 random
// mutations with interleaved snapshot compactions, a crash (no drain),
// and a recovery that must serve wire-bit-identical sketches versus a
// never-crashed set fed the same history.
func TestRecoveryGolden(t *testing.T) {
	dir := t.TempDir()
	space := testSpace()
	initial := workload.RandomSet(space, 64, rng.New(1))
	cfg := testConfig(1024)

	// Reference: never crashed, no persistence.
	ref, err := live.NewSet(cfg, initial)
	if err != nil {
		t.Fatalf("reference set: %v", err)
	}

	// Durable twin: snapshot every 64 records so ~1000 mutations cross
	// many compaction boundaries.
	d := openTestStore(t, dir, 64)
	st := store.New()
	st.SetPersister(d)
	ls, err := st.Create("golden", cfg, initial)
	if err != nil {
		t.Fatalf("create: %v", err)
	}

	const mutations = 1200
	if n := churn(t, ref, 99, mutations); n != mutations {
		t.Fatalf("reference churn applied %d", n)
	}
	if n := churn(t, ls, 99, mutations); n != mutations {
		t.Fatalf("durable churn applied %d", n)
	}
	requireWireIdentical(t, ref, ls)

	// Crash without draining, recover into a fresh registry.
	d.Crash()
	d2 := openTestStore(t, dir, 64)
	st2 := store.New()
	stats, err := d2.Recover(st2)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if stats.Sets != 1 || stats.LostBytes != 0 {
		t.Fatalf("unexpected recovery stats: %v", stats)
	}
	st2.SetPersister(d2)
	rec, ok := st2.Get("golden")
	if !ok {
		t.Fatalf("recovered store is missing the set")
	}
	requireWireIdentical(t, ref, rec)

	// The recovered set must journal further mutations: churn both
	// again and crash-recover a second time.
	if n := churn(t, ref, 7, 300); n != 300 {
		t.Fatalf("reference churn applied %d", n)
	}
	if n := churn(t, rec, 7, 300); n != 300 {
		t.Fatalf("recovered churn applied %d", n)
	}
	d2.Crash()
	d3 := openTestStore(t, dir, 64)
	st3 := store.New()
	if _, err := d3.Recover(st3); err != nil {
		t.Fatalf("second recover: %v", err)
	}
	rec3, _ := st3.Get("golden")
	if rec3 == nil {
		t.Fatalf("second recovery is missing the set")
	}
	requireWireIdentical(t, ref, rec3)
	d3.Close()
}

// TestRecoveryAfterDrain verifies the snapshot-on-drain path: a closed
// store recovers with zero journal replay.
func TestRecoveryAfterDrain(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(1024)
	initial := workload.RandomSet(testSpace(), 32, rng.New(2))
	d := openTestStore(t, dir, DefaultSnapshotEvery)
	st := store.New()
	st.SetPersister(d)
	ls, err := st.Create("drain", cfg, initial)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	churn(t, ls, 5, 200)
	wantEpoch := ls.Epoch()
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	d2 := openTestStore(t, dir, DefaultSnapshotEvery)
	st2 := store.New()
	stats, err := d2.Recover(st2)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if stats.Replayed != 0 {
		t.Fatalf("drained store replayed %d records, want 0", stats.Replayed)
	}
	rec, _ := st2.Get("drain")
	if rec == nil || rec.Epoch() != wantEpoch {
		t.Fatalf("recovered epoch mismatch")
	}
	d2.Close()
}

// corruptingSetup builds a one-set store, churns it, crashes, and
// returns the data dir plus the set's wal files for tampering.
func corruptingSetup(t *testing.T) (dir string, wals []string) {
	t.Helper()
	dir = t.TempDir()
	cfg := testConfig(1024)
	d := openTestStore(t, dir, -1) // no auto-compaction: one long journal
	st := store.New()
	st.SetPersister(d)
	ls, err := st.Create("victim", cfg, workload.RandomSet(testSpace(), 16, rng.New(3)))
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	churn(t, ls, 11, 120)
	d.Crash()
	setDir := filepath.Join(dir, "sets", setDirName("victim"))
	for _, gen := range listGenerations(setDir) {
		if gen.wal {
			wals = append(wals, filepath.Join(setDir, gen.file))
		}
	}
	if len(wals) == 0 {
		t.Fatalf("no wal files written")
	}
	return dir, wals
}

// recoverVictim recovers the tampered store and returns the stats and
// the recovered set.
func recoverVictim(t *testing.T, dir string) (RecoveryStats, *live.Set) {
	t.Helper()
	d := openTestStore(t, dir, -1)
	st := store.New()
	stats, err := d.Recover(st)
	if err != nil {
		t.Fatalf("recover after tampering: %v", err)
	}
	ls, ok := st.Get("victim")
	if !ok {
		t.Fatalf("victim not recovered")
	}
	d.Close()
	return stats, ls
}

// TestRecoveryTornTail cuts the journal mid-frame: recovery must stop
// cleanly at the cut, losing only the tail.
func TestRecoveryTornTail(t *testing.T) {
	dir, wals := corruptingSetup(t)
	wal := wals[len(wals)-1]
	raw, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	cut := len(raw) - len(raw)/3
	if err := os.WriteFile(wal, raw[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	stats, ls := recoverVictim(t, dir)
	if stats.LostBytes == 0 {
		t.Fatalf("torn tail not detected: %v", stats)
	}
	// The survivor keeps serving; the next boot must see the repaired
	// (re-compacted) generation with nothing left to replay.
	if ls.Size() == 0 {
		t.Fatalf("recovered set empty")
	}
	stats2, _ := recoverVictim(t, dir)
	if stats2.LostBytes != 0 || stats2.Replayed != 0 {
		t.Fatalf("repair not sealed: %v", stats2)
	}
}

// TestRecoveryBitFlip flips a payload byte: the checksum must reject
// the record and recovery stops there.
func TestRecoveryBitFlip(t *testing.T) {
	dir, wals := corruptingSetup(t)
	wal := wals[len(wals)-1]
	raw, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(wal, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	stats, ls := recoverVictim(t, dir)
	if stats.LostBytes == 0 {
		t.Fatalf("bit flip not detected: %v", stats)
	}
	if ls.Size() == 0 {
		t.Fatalf("recovered set empty")
	}
}

// TestRecoveryHostileLength writes an absurd length prefix over a
// frame: recovery must reject it before allocating and stop cleanly.
func TestRecoveryHostileLength(t *testing.T) {
	dir, wals := corruptingSetup(t)
	wal := wals[len(wals)-1]
	raw, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(raw[0:4], 0xfffffff0)
	if err := os.WriteFile(wal, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	stats, ls := recoverVictim(t, dir)
	if stats.LostBytes != int64(len(raw)) {
		t.Fatalf("hostile length: lost %d bytes, want the whole journal %d", stats.LostBytes, len(raw))
	}
	if ls.Size() == 0 {
		t.Fatalf("recovered set empty")
	}
}

// TestRecoveryCorruptSnapshotFallsBack corrupts the newest snapshot:
// recovery must fall back to an older generation plus its journal.
func TestRecoveryCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(1024)
	d := openTestStore(t, dir, 40)
	st := store.New()
	st.SetPersister(d)
	ls, err := st.Create("victim", cfg, workload.RandomSet(testSpace(), 16, rng.New(4)))
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	churn(t, ls, 13, 150)
	wantEpoch, wantFP := ls.Epoch(), ls.IDFingerprint()
	d.Crash()
	setDir := filepath.Join(dir, "sets", setDirName("victim"))
	var snaps []generation
	for _, gen := range listGenerations(setDir) {
		if !gen.wal {
			snaps = append(snaps, gen)
		}
	}
	// With SnapshotEvery=40 and 150 mutations there are multiple
	// generations only until compaction deletes them; the invariant we
	// exploit is that the *current* snapshot plus the current wal
	// coexist. Corrupt the newest snapshot's payload.
	newest := filepath.Join(setDir, snaps[len(snaps)-1].file)
	raw, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(newest, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	d2 := openTestStore(t, dir, 40)
	st2 := store.New()
	stats, err := d2.Recover(st2)
	if err != nil {
		// With no older snapshot on disk the set is genuinely
		// unrecoverable; that must surface as an error, not a panic.
		t.Skipf("no fallback generation on disk (stats %v): %v", stats, err)
	}
	if stats.CorruptSnapshots == 0 {
		t.Fatalf("corrupt snapshot not counted: %v", stats)
	}
	rec, _ := st2.Get("victim")
	if rec == nil {
		t.Fatalf("victim not recovered")
	}
	// Fallback replays the journal above the older snapshot, which
	// still contains everything up to the crash: full state recovered.
	if rec.Epoch() != wantEpoch || rec.IDFingerprint() != wantFP {
		t.Fatalf("fallback recovered epoch %d fp %016x, want %d %016x",
			rec.Epoch(), rec.IDFingerprint(), wantEpoch, wantFP)
	}
	d2.Close()
}

// TestDropRemovesState verifies Drop deletes the on-disk directory and
// a recovery afterwards sees nothing.
func TestDropRemovesState(t *testing.T) {
	dir := t.TempDir()
	d := openTestStore(t, dir, DefaultSnapshotEvery)
	st := store.New()
	st.SetPersister(d)
	if _, err := st.Create("gone", testConfig(256), workload.RandomSet(testSpace(), 8, rng.New(5))); err != nil {
		t.Fatalf("create: %v", err)
	}
	if !st.Drop("gone") {
		t.Fatalf("drop reported absent")
	}
	if _, err := os.Stat(filepath.Join(dir, "sets", setDirName("gone"))); !os.IsNotExist(err) {
		t.Fatalf("set directory survived drop: %v", err)
	}
	d.Close()
	d2 := openTestStore(t, dir, DefaultSnapshotEvery)
	st2 := store.New()
	stats, err := d2.Recover(st2)
	if err != nil || stats.Sets != 0 {
		t.Fatalf("recovery after drop: %v %v", stats, err)
	}
	d2.Close()
}

// TestJournalErrorAbortsMutation verifies the WAL contract: when the
// journal cannot be written, the in-memory set must not advance.
func TestJournalErrorAbortsMutation(t *testing.T) {
	dir := t.TempDir()
	d := openTestStore(t, dir, DefaultSnapshotEvery)
	st := store.New()
	st.SetPersister(d)
	ls, err := st.Create("wal", testConfig(256), workload.RandomSet(testSpace(), 8, rng.New(6)))
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	epoch, size := ls.Epoch(), ls.Size()
	d.Crash() // journal closed: every append now fails
	if err := ls.Add(workload.RandomPoint(testSpace(), rng.New(8))); err == nil {
		t.Fatalf("add succeeded with a dead journal")
	}
	if ls.Epoch() != epoch || ls.Size() != size {
		t.Fatalf("failed mutation leaked state: epoch %d→%d size %d→%d", epoch, ls.Epoch(), size, ls.Size())
	}
}

// TestConfigRoundTrip checks the persisted-config codec over the
// structure combinations the daemons actually create.
func TestConfigRoundTrip(t *testing.T) {
	p := emd.DefaultParams(testSpace(), 512, 4, 7)
	cfgs := []live.Config{
		{Sync: &live.SyncConfig{StrataCells: 80, Seed: 42}},
		{EMD: &p, Sync: &live.SyncConfig{Seed: testSyncSeed}, JournalEpochs: 128},
	}
	for i, cfg := range cfgs {
		e := transport.NewEncoder()
		encodeConfig(e, cfg)
		payload, _ := e.Pack()
		got, err := decodeConfig(transport.NewDecoder(payload))
		if err != nil {
			t.Fatalf("cfg %d: decode: %v", i, err)
		}
		if (got.EMD == nil) != (cfg.EMD == nil) || (got.Sync == nil) != (cfg.Sync == nil) || got.JournalEpochs != cfg.JournalEpochs {
			t.Fatalf("cfg %d: shape mismatch", i)
		}
		if cfg.EMD != nil && (*got.EMD != *cfg.EMD) {
			t.Fatalf("cfg %d: EMD params mismatch:\n got %+v\nwant %+v", i, *got.EMD, *cfg.EMD)
		}
		if cfg.Sync != nil && *got.Sync != *cfg.Sync {
			t.Fatalf("cfg %d: sync mismatch", i)
		}
	}
}

// readTree snapshots a directory tree's regular files into memory.
func readTree(b *testing.B, dir string) map[string][]byte {
	b.Helper()
	out := make(map[string][]byte)
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		out[rel] = raw
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	return out
}

// restoreTree rewrites the tree captured by readTree, removing files
// that appeared since.
func restoreTree(b *testing.B, dir string, image map[string][]byte) {
	b.Helper()
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return nil
		}
		if rel, err := filepath.Rel(dir, path); err == nil {
			if _, keep := image[rel]; !keep {
				os.Remove(path)
			}
		}
		return nil
	})
	for rel, raw := range image {
		if err := os.WriteFile(filepath.Join(dir, rel), raw, 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecoveryReplay measures journal replay rate: points/sec
// rebuilding a set from disk, with compaction disabled (snapshots=off:
// the whole history replays) and enabled (snapshots=on: bounded tail).
func BenchmarkRecoveryReplay(b *testing.B) {
	for _, every := range []int{-1, 128} {
		name := "snapshots=off"
		if every > 0 {
			name = "snapshots=on"
		}
		b.Run(name, func(b *testing.B) {
			dir := b.TempDir()
			cfg := testConfig(1024)
			d, err := Open(dir, Options{Fsync: FsyncOff, SnapshotEvery: every})
			if err != nil {
				b.Fatal(err)
			}
			st := store.New()
			st.SetPersister(d)
			ls, err := st.Create("bench", cfg, workload.RandomSet(testSpace(), 128, rng.New(9)))
			if err != nil {
				b.Fatal(err)
			}
			const mutations = 1000
			churn(b, ls, 17, mutations)
			d.Crash()
			// Recovery re-compacts (sealing the journal), so restore
			// the pristine crash image before every iteration, off the
			// clock.
			image := readTree(b, dir)
			var replayed int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				restoreTree(b, dir, image)
				b.StartTimer()
				d, err := Open(dir, Options{Fsync: FsyncOff, SnapshotEvery: -1})
				if err != nil {
					b.Fatal(err)
				}
				st := store.New()
				stats, err := d.Recover(st)
				if err != nil {
					b.Fatal(err)
				}
				d.Crash()
				replayed = stats.Replayed
			}
			b.ReportMetric(float64(replayed), "records/op")
			b.ReportMetric(float64(replayed)*float64(b.N)/b.Elapsed().Seconds(), "records-replayed/sec")
		})
	}
}

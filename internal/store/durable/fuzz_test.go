package durable

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/live"
	"repro/internal/metric"
	"repro/internal/store"
	"repro/internal/transport"
)

// fuzzConfigFrame/fuzzSnapFrame build the fixed template files a
// fuzzed journal is recovered against: a Sync-only set (no sketch
// rebuild cost per fuzz iteration) snapshotted at epoch 1 with two
// points.
func fuzzTemplate() (configFrame, snapFrame []byte) {
	e := transport.NewEncoder()
	encodeConfig(e, live.Config{Sync: &live.SyncConfig{Seed: 42}})
	payload, _ := e.Pack()
	configFrame = appendFrame(nil, payload)
	transport.Recycle(e, payload)

	e = transport.NewEncoder()
	encodeSnapshot(e, 1, []snapEntry{
		{pt: metric.Point{1, 2}, count: 1},
		{pt: metric.Point{3, 4}, count: 2},
	})
	payload, _ = e.Pack()
	snapFrame = appendFrame(nil, payload)
	transport.Recycle(e, payload)
	return
}

// fuzzJournal encodes a small clean journal: epochs 2 and 3 over the
// template set (an add, then a batch with a remove).
func fuzzJournal() []byte {
	var out []byte
	e := transport.NewEncoder()
	encodeRecord(e, 2, []live.Op{{Point: metric.Point{5, 6}}})
	payload, _ := e.Pack()
	out = appendFrame(out, payload)
	transport.Recycle(e, payload)
	e = transport.NewEncoder()
	encodeRecord(e, 3, []live.Op{
		{Point: metric.Point{7, 8}},
		{Remove: true, Point: metric.Point{1, 2}},
	})
	payload, _ = e.Pack()
	out = appendFrame(out, payload)
	transport.Recycle(e, payload)
	return out
}

// corruptions derives the adversarial corpus variants from a clean
// journal: torn tail, bit-flipped checksum, hostile length prefix.
func corruptions(clean []byte) map[string][]byte {
	torn := bytes.Clone(clean[:len(clean)-len(clean)/4])
	flipped := bytes.Clone(clean)
	flipped[4] ^= 0x01 // corrupt the first record's stored CRC
	hostile := bytes.Clone(clean)
	binary.LittleEndian.PutUint32(hostile[0:4], 0xfffffff0)
	return map[string][]byte{
		"clean":          clean,
		"torn-tail":      torn,
		"bit-flip-crc":   flipped,
		"hostile-length": hostile,
		"empty":          nil,
		"header-only":    clean[:frameHeaderLen],
	}
}

// FuzzJournalReplay drives arbitrary bytes through the full recovery
// path as a set's journal file. Recovery must never panic and must
// never fail the whole pass — a broken journal is a lost tail, not an
// error — and the survivor must remain a working, journaled set.
func FuzzJournalReplay(f *testing.F) {
	for _, seed := range corruptions(fuzzJournal()) {
		f.Add(seed)
	}
	configFrame, snapFrame := fuzzTemplate()
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		setDir := filepath.Join(dir, "sets", setDirName("fz"))
		if err := os.MkdirAll(setDir, 0o755); err != nil {
			t.Fatal(err)
		}
		writeOrDie(t, filepath.Join(setDir, "config.bin"), configFrame)
		writeOrDie(t, filepath.Join(setDir, fmt.Sprintf("snap-%020d.snap", 1)), snapFrame)
		writeOrDie(t, filepath.Join(setDir, fmt.Sprintf("wal-%020d.log", 1)), data)
		d, err := Open(dir, Options{Fsync: FsyncOff, SnapshotEvery: -1})
		if err != nil {
			t.Fatal(err)
		}
		st := store.New()
		stats, err := d.Recover(st)
		if err != nil {
			t.Fatalf("recovery errored instead of tolerating: %v", err)
		}
		ls, ok := st.Get("fz")
		if !ok {
			t.Fatalf("set not recovered (stats %v)", stats)
		}
		// Whatever the journal claimed, the recovered set starts from
		// the epoch-1 snapshot and only grows by cleanly replayed
		// records.
		if ls.Epoch() < 1 {
			t.Fatalf("recovered epoch %d", ls.Epoch())
		}
		if err := ls.Add(metric.Point{9, 9}); err != nil {
			t.Fatalf("recovered set rejects mutations: %v", err)
		}
		d.Close()
	})
}

// FuzzSnapshotDecode drives arbitrary bytes through the framed
// snapshot reader: no panic, and any accepted payload obeys the
// cardinality bounds the decoder promises.
func FuzzSnapshotDecode(f *testing.F) {
	_, snapFrame := fuzzTemplate()
	for _, seed := range corruptions(snapFrame) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, _, err := nextFrame(data, 0)
		if err != nil {
			return
		}
		epoch, entries, err := decodeSnapshot(transport.NewDecoder(payload))
		if err != nil {
			return
		}
		total := 0
		for _, en := range entries {
			if en.count <= 0 {
				t.Fatalf("accepted non-positive count %d", en.count)
			}
			if len(en.pt) > maxPointDim {
				t.Fatalf("accepted dimension %d", len(en.pt))
			}
			total += en.count
		}
		if total > maxSnapshotPoints {
			t.Fatalf("accepted cardinality %d at epoch %d", total, epoch)
		}
	})
}

func writeOrDie(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestWriteFuzzCorpus regenerates the checked-in corpus under
// testdata/fuzz (clean journal/snapshot, torn tail, bit-flipped
// checksum, hostile length prefix). Skipped unless explicitly asked
// for: set DURABLE_WRITE_CORPUS=1.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("DURABLE_WRITE_CORPUS") == "" {
		t.Skip("set DURABLE_WRITE_CORPUS=1 to regenerate testdata/fuzz")
	}
	_, snapFrame := fuzzTemplate()
	for target, inputs := range map[string]map[string][]byte{
		"FuzzJournalReplay":  corruptions(fuzzJournal()),
		"FuzzSnapshotDecode": corruptions(snapFrame),
	} {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, data := range inputs {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
			writeOrDie(t, filepath.Join(dir, name), []byte(body))
		}
	}
}

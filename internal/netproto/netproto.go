// Package netproto carries the reconciliation protocols over real byte
// streams (net.Conn, pipes, files). Messages are length-prefixed frames;
// a Wire adapts any io.ReadWriter to the transport.Conn interface the
// protocol state machines are written against, so the same party code
// that runs in-process in the experiments runs across a network here.
//
// The protocols themselves are registered Handlers (see registry.go):
// each handler binds one party's state machine to its parameters and
// local data, and the session layer (internal/session) — or the
// two-party helpers in protocols.go — drives it. Parameter agreement is
// the caller's job (both sides must construct identical protocol Params,
// including the shared seed — the paper's public coins); the session
// header (header.go) carries a parameter digest that both ends validate
// before any protocol traffic flows, failing fast on mismatch instead of
// producing garbage.
package netproto

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/transport"
)

// maxFrame bounds a frame so a corrupted length prefix cannot trigger an
// enormous allocation.
const maxFrame = 1 << 28

// Wire adapts an io.ReadWriter to transport.Conn with length-prefixed
// frames and local traffic accounting. The tallies are atomic, so a
// server may snapshot Stats while the session is mid-protocol; Send and
// Recv themselves may each be used by at most one goroutine at a time
// (full-duplex use — one sender, one receiver — is fine).
type Wire struct {
	rw        io.ReadWriter
	sent      atomic.Int64 // payload bits sent
	recvd     atomic.Int64
	msgsSent  atomic.Int64
	msgsRecvd atomic.Int64
}

// NewWire wraps a byte stream.
func NewWire(rw io.ReadWriter) *Wire { return &Wire{rw: rw} }

// Send implements transport.Conn: one frame = 4-byte big-endian length +
// payload.
func (w *Wire) Send(e *transport.Encoder) error {
	data, bits := e.Pack()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := w.rw.Write(hdr[:]); err != nil {
		return fmt.Errorf("netproto: send header: %w", err)
	}
	if _, err := w.rw.Write(data); err != nil {
		return fmt.Errorf("netproto: send payload: %w", err)
	}
	w.sent.Add(bits)
	w.msgsSent.Add(1)
	return nil
}

// Recv implements transport.Conn.
func (w *Wire) Recv() (*transport.Decoder, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(w.rw, hdr[:]); err != nil {
		return nil, fmt.Errorf("netproto: recv header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("netproto: frame of %d bytes exceeds limit", n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(w.rw, data); err != nil {
		return nil, fmt.Errorf("netproto: recv payload: %w", err)
	}
	w.recvd.Add(int64(n) * 8)
	w.msgsRecvd.Add(1)
	return transport.NewDecoder(data), nil
}

// Stats reports this endpoint's view of the traffic: bits it sent count
// as AliceToBob, bits it received as BobToAlice (i.e. "outbound" /
// "inbound" from the local perspective). Safe to call concurrently with
// an in-flight session.
func (w *Wire) Stats() transport.Stats {
	sent, recvd := w.msgsSent.Load(), w.msgsRecvd.Load()
	return transport.Stats{
		Rounds:   int(sent + recvd),
		BitsAtoB: w.sent.Load(),
		BitsBtoA: w.recvd.Load(),
		MsgsAtoB: int(sent),
		MsgsBtoA: int(recvd),
	}
}

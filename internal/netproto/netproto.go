// Package netproto carries the reconciliation protocols over real byte
// streams (net.Conn, pipes, files). Messages are length-prefixed frames;
// a Wire adapts any io.ReadWriter to the transport.Conn interface the
// protocol state machines are written against, so the same party code
// that runs in-process in the experiments runs across a network here.
//
// Parameter agreement is the caller's job (both sides must construct
// identical protocol Params, including the shared seed — the paper's
// public coins); netproto validates agreement with a parameter digest in
// the first frame each side sends, failing fast on mismatch instead of
// producing garbage.
package netproto

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/transport"
)

// maxFrame bounds a frame so a corrupted length prefix cannot trigger an
// enormous allocation.
const maxFrame = 1 << 28

// Wire adapts an io.ReadWriter to transport.Conn with length-prefixed
// frames and local traffic accounting.
type Wire struct {
	rw        io.ReadWriter
	sent      int64 // payload bits sent
	recvd     int64
	msgsSent  int
	msgsRecvd int
}

// NewWire wraps a byte stream.
func NewWire(rw io.ReadWriter) *Wire { return &Wire{rw: rw} }

// Send implements transport.Conn: one frame = 4-byte big-endian length +
// payload.
func (w *Wire) Send(e *transport.Encoder) error {
	data, bits := e.Pack()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := w.rw.Write(hdr[:]); err != nil {
		return fmt.Errorf("netproto: send header: %w", err)
	}
	if _, err := w.rw.Write(data); err != nil {
		return fmt.Errorf("netproto: send payload: %w", err)
	}
	w.sent += bits
	w.msgsSent++
	return nil
}

// Recv implements transport.Conn.
func (w *Wire) Recv() (*transport.Decoder, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(w.rw, hdr[:]); err != nil {
		return nil, fmt.Errorf("netproto: recv header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("netproto: frame of %d bytes exceeds limit", n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(w.rw, data); err != nil {
		return nil, fmt.Errorf("netproto: recv payload: %w", err)
	}
	w.recvd += int64(n) * 8
	w.msgsRecvd++
	return transport.NewDecoder(data), nil
}

// Stats reports this endpoint's view of the traffic: bits it sent count
// as AliceToBob, bits it received as BobToAlice (i.e. "outbound" /
// "inbound" from the local perspective).
func (w *Wire) Stats() transport.Stats {
	return transport.Stats{
		Rounds:   w.msgsSent + w.msgsRecvd,
		BitsAtoB: w.sent,
		BitsBtoA: w.recvd,
		MsgsAtoB: w.msgsSent,
		MsgsBtoA: w.msgsRecvd,
	}
}

// handshake exchanges an 8-byte parameter digest in both directions and
// fails on mismatch. Each party calls it with the digest of its local
// Params; agreement certifies both built the same plan (and thus the
// same hash functions) before any protocol traffic flows.
func handshake(w *Wire, digest uint64) error {
	// Both parties send first, so the send must not wait for the peer's
	// read: unbuffered transports (net.Pipe) would deadlock otherwise.
	// Concurrent Send and Recv on a full-duplex stream are safe.
	sendErr := make(chan error, 1)
	go func() {
		e := transport.NewEncoder()
		e.WriteUint64(digest)
		sendErr <- w.Send(e)
	}()
	d, err := w.Recv()
	if serr := <-sendErr; serr != nil && err == nil {
		err = serr
	}
	if err != nil {
		return err
	}
	peer, err := d.ReadUint64()
	if err != nil {
		return err
	}
	if peer != digest {
		return fmt.Errorf("netproto: parameter digest mismatch (local %#x, peer %#x)", digest, peer)
	}
	return nil
}

// Package netproto carries the reconciliation protocols over real byte
// streams (net.Conn, pipes, files). Messages are length-prefixed frames;
// a Wire adapts any io.ReadWriter to the transport.Conn interface the
// protocol state machines are written against, so the same party code
// that runs in-process in the experiments runs across a network here.
//
// The protocols themselves are registered Handlers (see registry.go):
// each handler binds one party's state machine to its parameters and
// local data, and the session layer (internal/session) — or the
// two-party helpers in protocols.go — drives it. Parameter agreement is
// the caller's job (both sides must construct identical protocol Params,
// including the shared seed — the paper's public coins); the session
// header (header.go) carries a parameter digest that both ends validate
// before any protocol traffic flows, failing fast on mismatch instead of
// producing garbage.
package netproto

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/transport"
)

// maxFrame bounds a frame so a corrupted length prefix cannot trigger an
// enormous allocation.
const maxFrame = 1 << 28

// wireMem is a Wire's reusable frame staging: the outbound buffer one
// whole frame (header + payload) is coalesced into, and the inbound
// buffer frames are decoded from. Pooled across wires so a server's
// steady state reads and writes frames without allocating.
type wireMem struct {
	out []byte
	in  []byte
}

var wireMemPool = sync.Pool{New: func() any { return new(wireMem) }}

// Wire adapts an io.ReadWriter to transport.Conn with length-prefixed
// frames and local traffic accounting. The tallies are atomic, so a
// server may snapshot Stats while the session is mid-protocol; Send and
// Recv themselves may each be used by at most one goroutine at a time
// (full-duplex use — one sender, one receiver — is fine).
//
// Buffer ownership: a Decoder returned by Recv (and any bytes borrowed
// from it via ReadBytesBorrow) is valid only until the next Recv or
// Release on the same wire — the frame buffer is reused. An Encoder
// passed to Send is consumed and recycled; it must not be touched
// afterwards. Release returns the wire's buffers to a shared pool once
// the session is done; Stats stay readable.
type Wire struct {
	rw         io.ReadWriter
	mu         sync.Mutex // guards mem against a concurrent Release
	mem        *wireMem
	dec        transport.Decoder
	sent       atomic.Int64 // payload bits sent
	recvd      atomic.Int64
	msgsSent   atomic.Int64
	msgsRecvd  atomic.Int64
	maxPayload atomic.Int64 // largest single frame either direction, bits
}

// observeMax raises m to bits if bits is larger, tolerating concurrent
// raises from the opposite direction's goroutine.
func observeMax(m *atomic.Int64, bits int64) {
	for {
		cur := m.Load()
		if bits <= cur || m.CompareAndSwap(cur, bits) {
			return
		}
	}
}

// NewWire wraps a byte stream.
func NewWire(rw io.ReadWriter) *Wire { return &Wire{rw: rw} }

// buffers returns the wire's frame staging, attaching pooled buffers on
// first use (or after Release).
func (w *Wire) buffers() *wireMem {
	w.mu.Lock()
	m := w.mem
	if m == nil {
		m = wireMemPool.Get().(*wireMem)
		w.mem = m
	}
	w.mu.Unlock()
	return m
}

// Release returns the wire's frame buffers to the shared pool. Call it
// once per wire, after the session completes and no decoded frame or
// borrowed bytes are referenced. The wire remains usable (Stats, even
// further frames — fresh buffers attach on demand).
func (w *Wire) Release() {
	w.mu.Lock()
	m := w.mem
	w.mem = nil
	w.mu.Unlock()
	if m != nil {
		w.dec.Reset(nil)
		wireMemPool.Put(m)
	}
}

// Send implements transport.Conn: one frame = 4-byte big-endian length +
// payload, coalesced into a single Write (the flush point is the frame
// boundary). The encoder is consumed and recycled; the caller must not
// use it again.
func (w *Wire) Send(e *transport.Encoder) error {
	data, bits := e.Pack()
	m := w.buffers()
	frame := append(m.out[:0], 0, 0, 0, 0)
	binary.BigEndian.PutUint32(frame, uint32(len(data)))
	frame = append(frame, data...)
	m.out = frame
	transport.Recycle(e, data)
	if _, err := w.rw.Write(frame); err != nil {
		return fmt.Errorf("netproto: send frame: %w", err)
	}
	w.sent.Add(bits)
	w.msgsSent.Add(1)
	observeMax(&w.maxPayload, bits)
	return nil
}

// Recv implements transport.Conn. The returned decoder (and bytes
// borrowed from it) is invalidated by the next Recv or Release on this
// wire.
func (w *Wire) Recv() (*transport.Decoder, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(w.rw, hdr[:]); err != nil {
		return nil, fmt.Errorf("netproto: recv header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("netproto: frame of %d bytes exceeds limit", n)
	}
	m := w.buffers()
	if uint32(cap(m.in)) < n {
		m.in = make([]byte, n)
	}
	data := m.in[:n]
	if _, err := io.ReadFull(w.rw, data); err != nil {
		return nil, fmt.Errorf("netproto: recv payload: %w", err)
	}
	w.recvd.Add(int64(n) * 8)
	w.msgsRecvd.Add(1)
	observeMax(&w.maxPayload, int64(n)*8)
	w.dec.Reset(data)
	return &w.dec, nil
}

// Stats reports this endpoint's view of the traffic: bits it sent count
// as AliceToBob, bits it received as BobToAlice (i.e. "outbound" /
// "inbound" from the local perspective). Safe to call concurrently with
// an in-flight session.
func (w *Wire) Stats() transport.Stats {
	sent, recvd := w.msgsSent.Load(), w.msgsRecvd.Load()
	st := transport.Stats{
		Rounds:   int(sent + recvd),
		BitsAtoB: w.sent.Load(),
		BitsBtoA: w.recvd.Load(),
		MsgsAtoB: int(sent),
		MsgsBtoA: int(recvd),
	}
	st.ObservePayload(w.maxPayload.Load())
	return st
}

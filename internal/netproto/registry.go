package netproto

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/transport"
)

// Proto identifies one reconciliation protocol on the wire. The value is
// carried in the session header, so renumbering is a wire format break.
type Proto uint8

// The registered protocols.
const (
	// ProtoEMD is the Earth Mover's Distance protocol (Algorithm 1):
	// Alice ships her level-RIBLTs in one message, Bob reconciles.
	ProtoEMD Proto = 1
	// ProtoGap is the 4-round Gap Guarantee protocol (Theorem 4.2).
	ProtoGap Proto = 2
	// ProtoSync is classic exact ID reconciliation (strata + IBLT).
	ProtoSync Proto = 3
	// ProtoSetSets is multiset-of-sets reconciliation (Theorem E.1).
	ProtoSetSets Proto = 4
)

// Role is the side of a protocol an endpoint plays. Alice is the side
// that speaks first (the EMD/Gap sender, the Sync/SetSets initiator),
// Bob the side that answers.
type Role uint8

const (
	// RoleAlice is the first-speaking party.
	RoleAlice Role = 0
	// RoleBob is the answering party.
	RoleBob Role = 1
)

// Peer returns the opposite role.
func (r Role) Peer() Role {
	if r == RoleAlice {
		return RoleBob
	}
	return RoleAlice
}

// String names the role.
func (r Role) String() string {
	if r == RoleAlice {
		return "alice"
	}
	return "bob"
}

// Handler is one party's protocol state machine, bound to its parameters
// and local data. The session engine negotiates the header (protocol ID
// plus parameter digest) and then calls Run with the framed connection;
// typed results are read from the concrete handler afterwards. A Handler
// instance serves one session: construct a fresh one per peer.
type Handler interface {
	// Proto identifies the protocol this handler speaks.
	Proto() Proto
	// Role is the side this handler plays.
	Role() Role
	// Digest fingerprints the parameters both ends must share; the
	// session header rejects peers whose digest differs.
	Digest() uint64
	// Run executes the state machine over an established session.
	Run(conn transport.Conn) error
}

var (
	regMu      sync.RWMutex
	protoNames = map[Proto]string{}
)

// RegisterProto names a protocol ID. Handler implementations register
// themselves at init time; duplicate registrations panic, since they
// indicate two protocols claiming one wire ID.
func RegisterProto(p Proto, name string) {
	regMu.Lock()
	defer regMu.Unlock()
	if prev, ok := protoNames[p]; ok {
		panic(fmt.Sprintf("netproto: proto %d registered twice (%q, %q)", p, prev, name))
	}
	protoNames[p] = name
}

// String names the protocol, or formats the raw ID when unregistered.
func (p Proto) String() string {
	regMu.RLock()
	defer regMu.RUnlock()
	if n, ok := protoNames[p]; ok {
		return n
	}
	return fmt.Sprintf("proto(%d)", uint8(p))
}

// Registered reports whether the protocol ID has a registered handler
// family.
func (p Proto) Registered() bool {
	regMu.RLock()
	defer regMu.RUnlock()
	_, ok := protoNames[p]
	return ok
}

// ProtoByName resolves a registered protocol name (as used by CLI
// flags).
func ProtoByName(name string) (Proto, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	for p, n := range protoNames {
		if n == name {
			return p, true
		}
	}
	return 0, false
}

// Protos lists the registered protocol IDs in ascending order.
func Protos() []Proto {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Proto, 0, len(protoNames))
	for p := range protoNames {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

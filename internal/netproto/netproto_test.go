package netproto

import (
	"math"
	"net"
	"sort"
	"testing"

	"repro/internal/emd"
	"repro/internal/gap"
	"repro/internal/matching"
	"repro/internal/metric"
	"repro/internal/rng"
	"repro/internal/setsets"
	"repro/internal/transport"
	"repro/internal/workload"
)

// duplex returns two connected byte streams (full duplex, blocking).
func duplex() (net.Conn, net.Conn) { return net.Pipe() }

func TestWireFrameRoundTrip(t *testing.T) {
	a, b := duplex()
	defer a.Close()
	defer b.Close()
	wa, wb := NewWire(a), NewWire(b)
	errc := make(chan error, 1)
	go func() {
		e := transport.NewEncoder()
		e.WriteUvarint(12345)
		e.WriteBytes([]byte("hello"))
		errc <- wa.Send(e)
	}()
	d, err := wb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if v, _ := d.ReadUvarint(); v != 12345 {
		t.Errorf("uvarint = %d", v)
	}
	if p, _ := d.ReadBytes(); string(p) != "hello" {
		t.Errorf("bytes = %q", p)
	}
	if wa.Stats().MsgsAtoB != 1 || wb.Stats().MsgsBtoA != 1 {
		t.Errorf("stats: %v / %v", wa.Stats(), wb.Stats())
	}
}

func TestWireMaxPayloadTracking(t *testing.T) {
	a, b := duplex()
	defer a.Close()
	defer b.Close()
	wa, wb := NewWire(a), NewWire(b)
	if got := wa.Stats().MaxPayload(); got != 0 {
		t.Fatalf("fresh wire MaxPayload = %d, want 0", got)
	}
	// Frames of 2, 40, then 8 bytes: the maximum must stick at the
	// largest single frame on both endpoints, not follow the last one.
	for _, n := range []int{2, 40, 8} {
		errc := make(chan error, 1)
		go func() {
			e := transport.NewEncoder()
			e.WriteBytes(make([]byte, n))
			errc <- wa.Send(e)
		}()
		if _, err := wb.Recv(); err != nil {
			t.Fatal(err)
		}
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	// 40 payload bytes plus the encoder's length prefix; assert the
	// sender and receiver agree and both exceed the largest payload.
	sent, recvd := wa.Stats().MaxPayload(), wb.Stats().MaxPayload()
	if sent != recvd {
		t.Errorf("sender MaxPayload %d != receiver %d", sent, recvd)
	}
	if sent < 40*8 {
		t.Errorf("MaxPayload = %d bits, want >= %d (largest frame)", sent, 40*8)
	}
	last := wa.Stats()
	if got := last.Add(transport.Stats{}).MaxPayload(); got != sent {
		t.Errorf("Add lost MaxPayload: %d != %d", got, sent)
	}
}

func TestHeaderDigestMismatch(t *testing.T) {
	a, b := duplex()
	defer a.Close()
	defer b.Close()
	errc := make(chan error, 1)
	go func() {
		_, err := RunInitiator(a, NewSyncInitiator(SyncParams{Seed: 111}, nil))
		errc <- err
	}()
	_, err2 := RunResponder(b, NewSyncResponder(SyncParams{Seed: 222}, nil))
	err1 := <-errc
	if err1 == nil || err2 == nil {
		t.Errorf("digest mismatch accepted: %v / %v", err1, err2)
	}
}

func TestHeaderProtoMismatch(t *testing.T) {
	a, b := duplex()
	defer a.Close()
	defer b.Close()
	errc := make(chan error, 1)
	go func() {
		_, err := RunInitiator(a, NewSyncInitiator(SyncParams{Seed: 1}, nil))
		errc <- err
	}()
	_, err2 := RunResponder(b, NewSetSetsResponder(setsets.Params{PayloadBytes: 4, Seed: 1}, nil))
	err1 := <-errc
	if err1 == nil || err2 == nil {
		t.Errorf("protocol mismatch accepted: %v / %v", err1, err2)
	}
}

func TestEMDOverWire(t *testing.T) {
	space := emdSpace()
	const n, k = 32, 3
	inst := workload.NewEMDInstance(space, n, k, 2, 5)
	emdK := matching.EMDk(space, inst.SA, inst.SB, k)
	p := emd.DefaultParams(space, n, k, 17)
	p.D1 = math.Max(1, emdK/4)
	p.D2 = math.Max(emdK*4, p.D1*2)

	a, b := duplex()
	defer a.Close()
	defer b.Close()
	aliceErr := make(chan error, 1)
	go func() {
		aliceErr <- EMDAlice(a, p, inst.SA)
	}()
	res, err := EMDBob(b, p, inst.SB)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-aliceErr; err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Skip("protocol failure (allowed with prob <= 1/8)")
	}
	if len(res.SPrime) != n {
		t.Fatalf("|S'B| = %d", len(res.SPrime))
	}
	after := matching.EMD(space, inst.SA, res.SPrime)
	if after > 20*math.Max(emdK, 1) {
		t.Errorf("EMD after wire run = %v vs EMD_k %v", after, emdK)
	}
	if res.Stats.BitsBtoA == 0 {
		t.Error("wire stats recorded no inbound traffic")
	}
}

func TestEMDWireParamMismatch(t *testing.T) {
	space := emdSpace()
	inst := workload.NewEMDInstance(space, 8, 1, 1, 3)
	pa := emd.DefaultParams(space, 8, 1, 10)
	pb := emd.DefaultParams(space, 8, 1, 11) // different seed
	a, b := duplex()
	defer a.Close()
	defer b.Close()
	errc := make(chan error, 1)
	go func() { errc <- EMDAlice(a, pa, inst.SA) }()
	_, bobErr := EMDBob(b, pb, inst.SB)
	aliceErr := <-errc
	if aliceErr == nil || bobErr == nil {
		t.Errorf("mismatched seeds not detected: %v / %v", aliceErr, bobErr)
	}
}

func TestGapOverWire(t *testing.T) {
	space := gapSpace()
	const n, k = 40, 3
	inst, err := workload.NewGapInstance(space, n, k, 1, 8, 128, 7)
	if err != nil {
		t.Fatal(err)
	}
	p := gap.Params{Space: space, N: n + k, R1: 8, R2: 128, Seed: 23}

	a, b := duplex()
	defer a.Close()
	defer b.Close()
	type aliceOut struct {
		rep gap.AliceReport
		err error
	}
	ac := make(chan aliceOut, 1)
	go func() {
		rep, err := GapAlice(a, p, inst.SA)
		ac <- aliceOut{rep, err}
	}()
	res, err := GapBob(b, p, inst.SB)
	if err != nil {
		t.Fatal(err)
	}
	arep := <-ac
	if arep.err != nil {
		t.Fatal(arep.err)
	}
	// The guarantee must hold across the wire exactly as in-process.
	for _, pt := range inst.SA {
		if d, _ := res.SPrime.MinDistanceTo(space, pt); d > 128 {
			t.Errorf("uncovered point at distance %v", d)
		}
	}
	if len(res.TA) != len(arep.rep.TA) {
		t.Errorf("Alice sent %d, Bob received %d", len(arep.rep.TA), len(res.TA))
	}
}

func TestSyncOverWire(t *testing.T) {
	src := rng.New(9)
	var shared []uint64
	for i := 0; i < 5000; i++ {
		shared = append(shared, src.Uint64())
	}
	initiator := append([]uint64{}, shared...)
	responder := append([]uint64{}, shared...)
	wantTheirs := []uint64{1, 2, 3, 4, 5}
	wantMine := []uint64{100, 200}
	responder = append(responder, wantTheirs...)
	initiator = append(initiator, wantMine...)

	a, b := duplex()
	defer a.Close()
	defer b.Close()
	type out struct {
		theirs, mine []uint64
		err          error
	}
	ic := make(chan out, 1)
	go func() {
		th, mn, err := SyncInitiatorFunc(a, SyncParams{Seed: 31}, initiator)
		ic <- out{th, mn, err}
	}()
	gotAtResponder, err := SyncResponderFunc(b, SyncParams{Seed: 31}, responder)
	if err != nil {
		t.Fatal(err)
	}
	got := <-ic
	if got.err != nil {
		t.Fatal(got.err)
	}
	if !sameIDs(got.theirs, wantTheirs) {
		t.Errorf("initiator theirsOnly = %v", got.theirs)
	}
	if !sameIDs(got.mine, wantMine) {
		t.Errorf("initiator minesOnly = %v", got.mine)
	}
	if !sameIDs(gotAtResponder, wantMine) {
		t.Errorf("responder learned %v", gotAtResponder)
	}
}

func TestSyncOverWireEmptyDiff(t *testing.T) {
	ids := []uint64{10, 20, 30}
	a, b := duplex()
	defer a.Close()
	defer b.Close()
	ic := make(chan error, 1)
	go func() {
		th, mn, err := SyncInitiatorFunc(a, SyncParams{Seed: 37}, ids)
		if err == nil && (len(th) != 0 || len(mn) != 0) {
			err = errMismatch
		}
		ic <- err
	}()
	got, err := SyncResponderFunc(b, SyncParams{Seed: 37}, ids)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-ic; err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("responder learned %v from identical sets", got)
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "unexpected difference" }

func sameIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]uint64{}, a...)
	bs := append([]uint64{}, b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func emdSpace() metric.Space { return metric.HammingCube(128) }

func gapSpace() metric.Space { return metric.HammingCube(512) }

package netproto

import (
	"fmt"

	"repro/internal/hashx"
	"repro/internal/iblt"
	"repro/internal/live"
	"repro/internal/metric"
	"repro/internal/transport"
)

// Cluster anti-entropy protocols. Both bind to a live.Set on each end
// and exist for the mesh in internal/cluster, though they are ordinary
// registered protocols any peer may speak.
//
// Probe (ProtoProbe) is the cheap divergence estimate behind
// power-of-two-choices peer selection: one frame each way carrying the
// set's epoch, distinct-point count, order-independent ID fingerprint,
// EMD sketch fingerprint (when maintained), and strata estimator (when
// maintained). Each side can then decide locally whether the sets are
// fingerprint-identical and, if not, estimate the difference size —
// without shipping a single point.
//
//	initiator → peer: summary
//	peer → initiator: summary
//
// Repair (ProtoRepair) converges the sets exactly: classic strata+IBLT
// ID reconciliation followed by a point-payload exchange, after which
// both sides hold the union of distinct points (add-wins anti-entropy
// merge; MergeAbsent makes application idempotent). A probe's estimate
// can be passed as a hint, skipping the strata round entirely —
// power-of-two-choices probing already paid for it.
//
//	initiator → peer: uvarint hint (0 = none; strata follows when 0)
//	peer → initiator: uvarint attempt, IBLT of peer's IDs   ─┐ repeat on
//	initiator → peer: ok bool; on ok: wanted IDs + points   ─┘ decode fail
//	peer → initiator: points for the wanted IDs
const (
	// ProtoProbe is the divergence-estimate exchange.
	ProtoProbe Proto = 6
	// ProtoRepair is exact set convergence (ID sync + point payloads).
	ProtoRepair Proto = 7
)

func init() {
	RegisterProto(ProtoProbe, "probe")
	RegisterProto(ProtoRepair, "repair")
}

// DigestLiveSet folds the wire-relevant configuration of a live set:
// which structures it maintains and their parameter digests. Two nodes
// hosting one named set must configure it identically for probe
// fingerprints and repair IDs to be comparable; this digest is what the
// session header checks.
func DigestLiveSet(ls *live.Set) uint64 {
	m := hashx.MixerFromSeed(0x9306e)
	h := m.Hash(0x1)
	if p, ok := ls.EMDParams(); ok {
		h = m.Hash(h ^ DigestEMD(p))
	}
	if p, ok := ls.GapParams(); ok {
		h = m.Hash(h ^ DigestGap(p))
	}
	if sc, ok := ls.SyncConfig(); ok {
		h = m.Hash(h ^ sc.Seed)
		h = m.Hash(h ^ uint64(sc.StrataCells))
	}
	return h
}

// ProbeSummary is one side's divergence summary.
type ProbeSummary struct {
	// Epoch is the set's local generation counter. Epochs are per-node
	// (not comparable across nodes); a peer that remembers the epoch it
	// last saw from this node can tell "nothing changed here" cheaply.
	Epoch uint64
	// Distinct is the distinct-point count.
	Distinct int
	// IDFingerprint is live.Snapshot.IDFingerprint (0 when Sync is off).
	IDFingerprint uint64
	// EMDFingerprint hashes the full EMD message (0 when EMD is off).
	EMDFingerprint uint64
	// Strata is the ID-difference estimator (nil when Sync is off).
	Strata *iblt.Strata
}

func summaryOf(snap *live.Snapshot) ProbeSummary {
	return ProbeSummary{
		Epoch:          snap.Epoch,
		Distinct:       len(snap.IDs),
		IDFingerprint:  snap.IDFingerprint,
		EMDFingerprint: snap.EMDFingerprint,
		Strata:         snap.Strata,
	}
}

func encodeSummary(e *transport.Encoder, s ProbeSummary) {
	e.WriteUvarint(s.Epoch)
	e.WriteUvarint(uint64(s.Distinct))
	e.WriteUint64(s.IDFingerprint)
	e.WriteUint64(s.EMDFingerprint)
	e.WriteBool(s.Strata != nil)
	if s.Strata != nil {
		s.Strata.Encode(e)
	}
}

func decodeSummary(d *transport.Decoder, strataSeed uint64) (ProbeSummary, error) {
	var s ProbeSummary
	var err error
	if s.Epoch, err = d.ReadUvarint(); err != nil {
		return s, err
	}
	distinct, err := d.ReadUvarint()
	if err != nil {
		return s, err
	}
	if distinct > uint64(maxFrame) {
		return s, fmt.Errorf("netproto: implausible distinct count %d in probe", distinct)
	}
	s.Distinct = int(distinct)
	if s.IDFingerprint, err = d.ReadUint64(); err != nil {
		return s, err
	}
	if s.EMDFingerprint, err = d.ReadUint64(); err != nil {
		return s, err
	}
	hasStrata, err := d.ReadBool()
	if err != nil {
		return s, err
	}
	if hasStrata {
		if s.Strata, err = iblt.DecodeStrata(d, strataSeed); err != nil {
			return s, err
		}
	}
	return s, nil
}

// Match reports whether the summaries describe provably-converged sets:
// equal ID fingerprints and counts when both maintain Sync state, equal
// EMD fingerprints otherwise. Summaries with no comparable structure
// never match.
func (s ProbeSummary) Match(o ProbeSummary) bool {
	if s.Strata != nil && o.Strata != nil {
		return s.IDFingerprint == o.IDFingerprint && s.Distinct == o.Distinct
	}
	if s.EMDFingerprint != 0 && o.EMDFingerprint != 0 {
		return s.EMDFingerprint == o.EMDFingerprint
	}
	return false
}

// ProbeInitiator dials one probe session for a live set; after Run,
// Local and Remote hold the two summaries, Estimate the strata estimate
// of the ID difference (-1 when either side lacks an estimator), and
// Matched whether the sets are fingerprint-identical.
type ProbeInitiator struct {
	set *live.Set

	Local    ProbeSummary
	Remote   ProbeSummary
	Estimate int
	Matched  bool
}

// NewProbeInitiator binds the probing side to its live set.
func NewProbeInitiator(ls *live.Set) *ProbeInitiator { return &ProbeInitiator{set: ls} }

// Proto implements Handler.
func (h *ProbeInitiator) Proto() Proto { return ProtoProbe }

// Role implements Handler.
func (h *ProbeInitiator) Role() Role { return RoleAlice }

// Digest implements Handler.
func (h *ProbeInitiator) Digest() uint64 { return DigestLiveSet(h.set) }

// Run implements Handler.
func (h *ProbeInitiator) Run(conn transport.Conn) error {
	snap := h.set.Snapshot()
	h.Local = summaryOf(snap)
	e := transport.NewEncoder()
	encodeSummary(e, h.Local)
	if err := conn.Send(e); err != nil {
		return err
	}
	d, err := conn.Recv()
	if err != nil {
		return err
	}
	seed := h.strataSeed()
	if h.Remote, err = decodeSummary(d, seed); err != nil {
		return err
	}
	h.Matched = h.Local.Match(h.Remote)
	h.Estimate = -1
	if h.Local.Strata != nil && h.Remote.Strata != nil {
		est, err := h.Local.Strata.Estimate(h.Remote.Strata)
		if err != nil {
			return fmt.Errorf("netproto: probe estimate: %w", err)
		}
		h.Estimate = est
	}
	return nil
}

func (h *ProbeInitiator) strataSeed() uint64 {
	sc, _ := h.set.SyncConfig()
	return sc.Seed
}

// ProbeResponder answers probe sessions from a live set's snapshot.
type ProbeResponder struct {
	set *live.Set

	// Served is the summary shipped to the prober.
	Served ProbeSummary
}

// NewProbeResponderFactory returns a server-registerable factory
// answering probes for the set.
func NewProbeResponderFactory(ls *live.Set) func() Handler {
	return func() Handler { return &ProbeResponder{set: ls} }
}

// Proto implements Handler.
func (h *ProbeResponder) Proto() Proto { return ProtoProbe }

// Role implements Handler.
func (h *ProbeResponder) Role() Role { return RoleBob }

// Digest implements Handler.
func (h *ProbeResponder) Digest() uint64 { return DigestLiveSet(h.set) }

// Run implements Handler: read the prober's summary (it is not used
// server-side, but must be drained), answer with our own.
func (h *ProbeResponder) Run(conn transport.Conn) error {
	d, err := conn.Recv()
	if err != nil {
		return err
	}
	sc, _ := h.set.SyncConfig()
	if _, err := decodeSummary(d, sc.Seed); err != nil {
		return err
	}
	h.Served = summaryOf(h.set.Snapshot())
	e := transport.NewEncoder()
	encodeSummary(e, h.Served)
	return conn.Send(e)
}

// ---------------------------------------------------------------------------
// Repair: exact convergence.

// repairMaxRetries bounds the IBLT doubling rounds.
const repairMaxRetries = 6

// CorruptPayloadError reports a repair point payload that failed
// verify-before-merge: the peer shipped points that do not hash to the
// IDs the IBLT decode asked for (or more points than were asked for at
// all). The whole batch is rejected — nothing is merged, no epoch is
// burned — and the cluster layer records a corruption verdict against
// the source peer in its health ledger.
type CorruptPayloadError struct {
	// Mismatched is how many received points failed the ID check (or,
	// for an oversized batch, the surplus count).
	Mismatched int
	// Total is the size of the rejected batch.
	Total int
}

// Error implements error.
func (e *CorruptPayloadError) Error() string {
	return fmt.Sprintf("netproto: corrupt repair payload: %d of %d points do not hash to a requested ID", e.Mismatched, e.Total)
}

// verifyRepairPayload is the verify-before-merge rule: every received
// point's ID fingerprint is re-derived locally (live.PointID with the
// set's sync seed) and must be one of the IDs this side asked for. An
// honest responder can only ship points for the requested IDs — a
// shorter list is legitimate churn, but a point hashing elsewhere, or a
// batch larger than the request, proves the payload was not produced by
// hashing the peer's real points and must not reach MergeAbsent.
func verifyRepairPayload(seed uint64, wanted []uint64, pts metric.PointSet) *CorruptPayloadError {
	if len(pts) == 0 {
		return nil
	}
	if len(pts) > len(wanted) {
		return &CorruptPayloadError{Mismatched: len(pts) - len(wanted), Total: len(pts)}
	}
	want := make(map[uint64]struct{}, len(wanted))
	for _, id := range wanted {
		want[id] = struct{}{}
	}
	bad := 0
	for _, pt := range pts {
		if _, ok := want[live.PointID(seed, pt)]; !ok {
			bad++
		}
	}
	if bad > 0 {
		return &CorruptPayloadError{Mismatched: bad, Total: len(pts)}
	}
	return nil
}

// repairMaxDiff bounds the difference size a repair session will size
// an IBLT for, whether the bound arrives as a peer-supplied hint or
// grows by doubling. Without it a single hostile uvarint (or a runaway
// retry loop) could demand a multi-gigabyte table before any payload
// flows; with it the worst-case table stays tens of megabytes.
const repairMaxDiff = 1 << 20

// writePointList writes a self-describing point list: uvarint count, then
// per point a uvarint dimension and varint coordinates. Self-describing
// keeps the repair protocol independent of any one space definition — a
// sync-only live set has no declared space at all.
func writePointList(e *transport.Encoder, pts metric.PointSet) {
	e.WriteUvarint(uint64(len(pts)))
	for _, pt := range pts {
		e.WriteUvarint(uint64(len(pt)))
		for _, c := range pt {
			e.WriteVarint(int64(c))
		}
	}
}

// readPointList reads what writePointList wrote, guarding both counts.
func readPointList(d *transport.Decoder) (metric.PointSet, error) {
	n, err := d.ReadUvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(maxFrame/2) {
		return nil, fmt.Errorf("netproto: implausible point count %d in repair", n)
	}
	// Preallocation is capped: the count is peer-supplied, and a tiny
	// frame claiming 2^27 points must not allocate gigabytes of slice
	// headers before the first coordinate read fails.
	preallocate := n
	if preallocate > 1<<16 {
		preallocate = 1 << 16
	}
	out := make(metric.PointSet, 0, preallocate)
	for i := uint64(0); i < n; i++ {
		dim, err := d.ReadUvarint()
		if err != nil {
			return nil, err
		}
		if dim > 1<<20 {
			return nil, fmt.Errorf("netproto: implausible point dimension %d in repair", dim)
		}
		// Each coordinate costs at least one wire byte; reject a
		// dimension the rest of the frame cannot back before
		// allocating the point.
		if dim > uint64(d.Remaining()) {
			return nil, fmt.Errorf("netproto: point dimension %d exceeds remaining frame (%d bytes)", dim, d.Remaining())
		}
		pt := make(metric.Point, dim)
		for j := range pt {
			v, err := d.ReadVarint()
			if err != nil {
				return nil, err
			}
			pt[j] = int32(v)
		}
		out = append(out, pt)
	}
	return out, nil
}

func readIDList(d *transport.Decoder) ([]uint64, error) {
	n, err := d.ReadUvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(maxFrame/8) {
		return nil, fmt.Errorf("netproto: implausible ID count %d in repair", n)
	}
	// Each ID costs exactly 8 bytes on the wire, so a count the rest of
	// the frame cannot back is rejected before the slice is allocated —
	// a 5-byte hostile frame must not reserve 256 MB.
	if n > uint64(d.Remaining())/8 {
		return nil, fmt.Errorf("netproto: ID count %d exceeds remaining frame (%d bytes)", n, d.Remaining())
	}
	out := make([]uint64, n)
	for i := range out {
		if out[i], err = d.ReadUint64(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RepairInitiator drives one repair session for a live set. Hint, when
// positive, is a difference estimate already in hand (from a probe) and
// elides the strata round. After Run both sides hold the union of their
// distinct points; Sent/Received/Applied count the point payloads.
type RepairInitiator struct {
	set  *live.Set
	Hint int

	// Sent is how many points this side shipped to the peer.
	Sent int
	// Received is how many points the peer shipped back.
	Received int
	// Applied is how many received points were actually new.
	Applied int
	// Rejected is how many received points were refused by
	// verify-before-merge (all of Received, when nonzero: a corrupt
	// batch is rejected whole).
	Rejected int
}

// NewRepairInitiator binds the initiating side to its live set; the set
// must maintain Sync state.
func NewRepairInitiator(ls *live.Set, hint int) (*RepairInitiator, error) {
	if _, ok := ls.SyncConfig(); !ok {
		return nil, fmt.Errorf("netproto: repair needs a live set with Sync state")
	}
	return &RepairInitiator{set: ls, Hint: hint}, nil
}

// Proto implements Handler.
func (h *RepairInitiator) Proto() Proto { return ProtoRepair }

// Role implements Handler.
func (h *RepairInitiator) Role() Role { return RoleAlice }

// Digest implements Handler.
func (h *RepairInitiator) Digest() uint64 { return DigestLiveSet(h.set) }

// Run implements Handler.
func (h *RepairInitiator) Run(conn transport.Conn) error {
	sc, _ := h.set.SyncConfig()
	snap := h.set.Snapshot()
	e := transport.NewEncoder()
	if h.Hint > 0 && h.Hint <= repairMaxDiff {
		e.WriteUvarint(uint64(h.Hint))
	} else {
		e.WriteUvarint(0)
		snap.Strata.Encode(e)
	}
	if err := conn.Send(e); err != nil {
		return err
	}
	var peerOnly, mineOnly []uint64
	for attempt := 0; ; attempt++ {
		d, err := conn.Recv()
		if err != nil {
			return err
		}
		if _, err := d.ReadUvarint(); err != nil {
			return err
		}
		seed := sc.Seed + 0x4e9a + uint64(attempt)*0x9e37
		tbl, err := iblt.DecodeFrom(d, seed)
		if err != nil {
			return err
		}
		for _, id := range snap.IDs {
			tbl.Delete(id)
		}
		added, removed, decErr := tbl.Decode()
		if decErr == nil {
			peerOnly, mineOnly = added, removed
			break
		}
		e := transport.NewEncoder()
		e.WriteBool(false)
		if err := conn.Send(e); err != nil {
			return err
		}
		if attempt >= repairMaxRetries {
			return fmt.Errorf("netproto: repair ID sync failed after %d attempts", attempt+1)
		}
	}
	// Ack frame: the peer-only IDs whose points we want, plus the points
	// for our exclusive IDs (the peer cannot name what it has never
	// seen).
	pts, _ := h.set.PointsForIDs(mineOnly)
	ack := transport.NewEncoder()
	ack.WriteBool(true)
	ack.WriteUvarint(uint64(len(peerOnly)))
	for _, id := range peerOnly {
		ack.WriteUint64(id)
	}
	writePointList(ack, pts)
	if err := conn.Send(ack); err != nil {
		return err
	}
	h.Sent = len(pts)
	d, err := conn.Recv()
	if err != nil {
		return err
	}
	theirPts, err := readPointList(d)
	if err != nil {
		return err
	}
	h.Received = len(theirPts)
	if cerr := verifyRepairPayload(sc.Seed, peerOnly, theirPts); cerr != nil {
		h.Rejected = len(theirPts)
		return cerr
	}
	applied, err := h.set.MergeAbsent(theirPts)
	if err != nil {
		return fmt.Errorf("netproto: repair merge: %w", err)
	}
	h.Applied = applied
	return nil
}

// RepairResponder answers repair sessions for a live set.
type RepairResponder struct {
	set *live.Set

	// corrupt, when set, rewrites the outgoing point payload just
	// before it is encoded. It exists for fault injection only (a
	// byzantine responder in simulation); production responders leave
	// it nil.
	corrupt func(metric.PointSet) metric.PointSet

	// Sent / Received / Applied mirror the initiator's counters.
	Sent     int
	Received int
	Applied  int
}

// NewRepairResponderFactory returns a server-registerable factory
// answering repairs for the set; the set must maintain Sync state.
func NewRepairResponderFactory(ls *live.Set) (func() Handler, error) {
	if _, ok := ls.SyncConfig(); !ok {
		return nil, fmt.Errorf("netproto: repair needs a live set with Sync state")
	}
	return func() Handler { return &RepairResponder{set: ls} }, nil
}

// NewCorruptingRepairResponderFactory returns a repair responder whose
// outgoing point payloads are deterministically corrupted: every point
// has its first coordinate incremented, so it no longer hashes to the
// ID the initiator asked for. This models a byzantine peer (bit-flipping
// disk, hostile build) for simulation scenarios; verify-before-merge on
// the initiator must reject every batch it serves. Not for production.
func NewCorruptingRepairResponderFactory(ls *live.Set) (func() Handler, error) {
	if _, ok := ls.SyncConfig(); !ok {
		return nil, fmt.Errorf("netproto: repair needs a live set with Sync state")
	}
	corrupt := func(pts metric.PointSet) metric.PointSet {
		// PointsForIDs returns clones, so in-place mutation is safe.
		for _, pt := range pts {
			if len(pt) > 0 {
				pt[0]++
			}
		}
		return pts
	}
	return func() Handler { return &RepairResponder{set: ls, corrupt: corrupt} }, nil
}

// Proto implements Handler.
func (h *RepairResponder) Proto() Proto { return ProtoRepair }

// Role implements Handler.
func (h *RepairResponder) Role() Role { return RoleBob }

// Digest implements Handler.
func (h *RepairResponder) Digest() uint64 { return DigestLiveSet(h.set) }

// Run implements Handler.
func (h *RepairResponder) Run(conn transport.Conn) error {
	sc, _ := h.set.SyncConfig()
	snap := h.set.Snapshot()
	d, err := conn.Recv()
	if err != nil {
		return err
	}
	hint, err := d.ReadUvarint()
	if err != nil {
		return err
	}
	est := int(hint)
	if hint == 0 {
		remote, err := iblt.DecodeStrata(d, sc.Seed)
		if err != nil {
			return err
		}
		if est, err = snap.Strata.Estimate(remote); err != nil {
			return err
		}
	} else if hint > repairMaxDiff {
		return fmt.Errorf("netproto: repair hint %d exceeds limit %d", hint, repairMaxDiff)
	}
	if est > repairMaxDiff {
		return fmt.Errorf("netproto: repair difference estimate %d exceeds limit %d", est, repairMaxDiff)
	}
	diffBound := est*2 + 8
	var d2 *transport.Decoder
	for attempt := 0; ; attempt++ {
		if diffBound > repairMaxDiff {
			return fmt.Errorf("netproto: repair IBLT bound %d exceeds limit %d", diffBound, repairMaxDiff)
		}
		seed := sc.Seed + 0x4e9a + uint64(attempt)*0x9e37
		tbl := iblt.NewFromKeys(iblt.CellsForDiff(diffBound, 3), 3, seed, snap.IDs, 1)
		e := transport.NewEncoder()
		e.WriteUvarint(uint64(attempt))
		tbl.Encode(e)
		if err := conn.Send(e); err != nil {
			return err
		}
		if d2, err = conn.Recv(); err != nil {
			return err
		}
		ok, err := d2.ReadBool()
		if err != nil {
			return err
		}
		if ok {
			break
		}
		if attempt >= repairMaxRetries {
			return fmt.Errorf("netproto: repair ID sync failed after %d attempts", attempt+1)
		}
		diffBound *= 2
	}
	wanted, err := readIDList(d2)
	if err != nil {
		return err
	}
	// The IBLT we shipped can decode at most diffBound IDs, so an
	// honest initiator can never ask for more; a longer list is a
	// hostile allocation probe and is refused before PointsForIDs
	// clones a single point.
	if len(wanted) > diffBound {
		return fmt.Errorf("netproto: repair wanted-ID count %d exceeds negotiated bound %d", len(wanted), diffBound)
	}
	theirPts, err := readPointList(d2)
	if err != nil {
		return err
	}
	h.Received = len(theirPts)
	// Ship the points behind our exclusive IDs. Churn since the snapshot
	// may have dropped some; the initiator's merge is a union, so a
	// shorter list is safe.
	pts, _ := h.set.PointsForIDs(wanted)
	if h.corrupt != nil {
		pts = h.corrupt(pts)
	}
	e := transport.NewEncoder()
	writePointList(e, pts)
	if err := conn.Send(e); err != nil {
		return err
	}
	h.Sent = len(pts)
	applied, err := h.set.MergeAbsent(theirPts)
	if err != nil {
		return fmt.Errorf("netproto: repair merge: %w", err)
	}
	h.Applied = applied
	return nil
}

package netproto

import (
	"bytes"
	"testing"

	"repro/internal/transport"
)

// TestSendCopiesBeforeRecycle is the mutate-after-release canary for the
// send path: Wire.Send recycles the encoder's payload buffer into the
// shared pool, so a later encoder may scribble over that memory. The
// frame must have been staged before the recycle — the peer must read
// the original payload no matter what the pool's next tenant writes.
func TestSendCopiesBeforeRecycle(t *testing.T) {
	var stream bytes.Buffer
	w := NewWire(&stream)
	payload := bytes.Repeat([]byte("canary!!"), 64)

	e := transport.NewEncoder()
	e.WriteBytes(payload)
	if err := w.Send(e); err != nil {
		t.Fatal(err)
	}
	// e is recycled now. Grab encoders from the pool and poison them —
	// one of them likely owns the just-recycled buffer.
	for i := 0; i < 4; i++ {
		p := transport.NewEncoder()
		junk := bytes.Repeat([]byte{0xde}, len(payload)+16)
		p.WriteBytes(junk)
		// Deliberately NOT sent or recycled: the poison stays live while
		// the original frame is read back.
		defer func() { _, _ = p.Pack() }()
	}

	r := NewWire(&stream)
	d, err := r.Recv()
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("frame corrupted: Send recycled its buffer before staging the frame")
	}
}

// TestRecvBufferReuseInvalidatesBorrow pins the receive-side ownership
// rule: bytes borrowed from a frame are valid only until the next Recv
// on the same wire (the frame buffer is reused), while ReadBytes copies
// survive.
func TestRecvBufferReuseInvalidatesBorrow(t *testing.T) {
	var stream bytes.Buffer
	w := NewWire(&stream)
	// The second frame is smaller than the first so it lands inside the
	// reused buffer (a larger frame would grow a fresh one).
	for _, msg := range []string{"first-frame-payload", "2nd-frame"} {
		e := transport.NewEncoder()
		e.WriteBytes([]byte(msg))
		if err := w.Send(e); err != nil {
			t.Fatal(err)
		}
	}

	r := NewWire(&stream)
	d, err := r.Recv()
	if err != nil {
		t.Fatal(err)
	}
	borrowed, err := d.ReadBytesBorrow()
	if err != nil || string(borrowed) != "first-frame-payload" {
		t.Fatalf("borrow = %q, %v", borrowed, err)
	}
	d2, err := r.Recv() // overwrites the shared frame buffer
	if err != nil {
		t.Fatal(err)
	}
	copied, err := d2.ReadBytes()
	if err != nil || string(copied) != "2nd-frame" {
		t.Fatalf("second frame = %q, %v", copied, err)
	}
	if string(borrowed) == "first-frame-payload" {
		t.Fatal("borrowed bytes survived the next Recv; expected the frame buffer to be reused")
	}
	r.Release()
	if string(copied) != "2nd-frame" {
		t.Fatal("ReadBytes copy must stay valid after Release")
	}
}

// TestWireReleaseKeepsStats checks Release leaves the traffic tally
// intact and the wire usable for further frames (fresh buffers attach on
// demand).
func TestWireReleaseKeepsStats(t *testing.T) {
	var stream bytes.Buffer
	w := NewWire(&stream)
	e := transport.NewEncoder()
	e.WriteUint64(0xfeed)
	if err := w.Send(e); err != nil {
		t.Fatal(err)
	}
	before := w.Stats()
	w.Release()
	if got := w.Stats(); got != before {
		t.Fatalf("stats changed across Release: %v -> %v", before, got)
	}
	w.Release() // idempotent
	e = transport.NewEncoder()
	e.WriteUint64(0xbeef)
	if err := w.Send(e); err != nil {
		t.Fatalf("send after release: %v", err)
	}
	if got := w.Stats().MsgsAtoB; got != 2 {
		t.Fatalf("sent frames = %d, want 2", got)
	}
}

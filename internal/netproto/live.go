package netproto

import (
	"fmt"
	"sync"

	"repro/internal/emd"
	"repro/internal/gap"
	"repro/internal/live"
	"repro/internal/metric"
	"repro/internal/transport"
)

// Live serving: handler factories bound to a live.Set instead of a
// frozen point set. Each accepted session grabs the set's current
// snapshot at construction, so a peer that connects mid-churn is served
// one consistent epoch end to end while later sessions see later
// epochs.
//
// Gap and exact-ID sync speak their existing protocols unchanged — the
// live set only amortizes the per-session precomputation (key payloads,
// strata estimator). EMD gets a dedicated protocol, ProtoLiveEMD, with
// a delta-sync fast path:
//
//	Bob → Alice: uvarint lastEpoch   (0 = no cached sketch)
//	Alice → Bob: uvarint epoch, uvarint mode (0 full / 1 delta),
//	             uint64 fingerprint, bytes payload
//
// A full payload is the ordinary Algorithm 1 message; a delta payload
// lists only the cells churned since lastEpoch with absolute values
// (emd.Sketch.EncodeCells). The fingerprint hashes the full message at
// the served epoch, so a receiver detects cache divergence after
// patching instead of reconciling against garbage. The server falls
// back to full when the peer's epoch predates the churn journal, or
// when the delta would not be smaller.

// ProtoLiveEMD is the EMD protocol with epoch-tagged sketches and
// delta synchronization for returning peers.
const ProtoLiveEMD Proto = 5

func init() {
	RegisterProto(ProtoLiveEMD, "live-emd")
}

const (
	liveModeFull  = 0
	liveModeDelta = 1
)

// LiveEMDSender serves one session's EMD sketch from a live snapshot.
type LiveEMDSender struct {
	params emd.Params
	set    *live.Set
	snap   *live.Snapshot

	// Epoch is the generation this session served.
	Epoch uint64
	// DeltaServed reports whether the fast path was taken.
	DeltaServed bool
	// PayloadBytes is the payload size actually shipped.
	PayloadBytes int
}

// NewLiveEMDSenderFactory returns a server-registerable factory whose
// handlers serve the set's EMD sketch with delta sync. The set must
// maintain EMD state.
func NewLiveEMDSenderFactory(ls *live.Set) (func() Handler, error) {
	p, ok := ls.EMDParams()
	if !ok {
		return nil, fmt.Errorf("netproto: live set maintains no EMD sketch")
	}
	return func() Handler {
		return &LiveEMDSender{params: p, set: ls, snap: ls.Snapshot()}
	}, nil
}

// Proto implements Handler.
func (h *LiveEMDSender) Proto() Proto { return ProtoLiveEMD }

// Role implements Handler.
func (h *LiveEMDSender) Role() Role { return RoleAlice }

// Digest implements Handler.
func (h *LiveEMDSender) Digest() uint64 { return DigestEMD(h.params) }

// Run implements Handler: read the peer's last synced epoch, answer
// with a delta when the journal covers the gap, a full sketch
// otherwise.
func (h *LiveEMDSender) Run(conn transport.Conn) error {
	d, err := conn.Recv()
	if err != nil {
		return err
	}
	peerEpoch, err := d.ReadUvarint()
	if err != nil {
		return err
	}
	snap := h.snap
	h.Epoch = snap.Epoch
	mode, payload := liveModeFull, snap.EMDMessage
	if peerEpoch > 0 {
		if refs, ok := h.set.DeltaCells(peerEpoch, snap.Epoch); ok {
			if delta := snap.EMD.EncodeCells(refs); len(delta) < len(snap.EMDMessage) {
				mode, payload = liveModeDelta, delta
			}
		}
	}
	h.DeltaServed = mode == liveModeDelta
	h.PayloadBytes = len(payload)
	e := transport.NewEncoder()
	e.WriteUvarint(snap.Epoch)
	e.WriteUvarint(uint64(mode))
	e.WriteUint64(snap.EMDFingerprint)
	e.WriteBytes(payload)
	return conn.Send(e)
}

// EMDCache is a client's sketch cache across live EMD sessions: the
// last synced epoch and the decoded sketch at that epoch. Share one
// cache across the sessions of one (server, params) pair; it is safe
// for concurrent use.
type EMDCache struct {
	mu     sync.Mutex
	epoch  uint64
	sketch *emd.Sketch
}

// Epoch returns the last synced epoch (0 before the first session).
func (c *EMDCache) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// LiveEMDReceiver is Bob's live EMD handler; Result is populated by
// Run, and the cache is advanced to the served epoch.
type LiveEMDReceiver struct {
	Params emd.Params
	Set    metric.PointSet
	Cache  *EMDCache
	Result emd.Result

	// Epoch is the server generation this session reconciled against.
	Epoch uint64
	// UsedDelta reports whether the session took the fast path.
	UsedDelta bool
}

// NewLiveEMDReceiver binds Bob's side of the live EMD protocol. cache
// may be nil for a one-shot session (a fresh cache is created, and the
// transfer is necessarily full).
func NewLiveEMDReceiver(p emd.Params, sb metric.PointSet, cache *EMDCache) *LiveEMDReceiver {
	p.ApplyDefaults()
	if cache == nil {
		cache = &EMDCache{}
	}
	return &LiveEMDReceiver{Params: p, Set: sb, Cache: cache}
}

// Proto implements Handler.
func (h *LiveEMDReceiver) Proto() Proto { return ProtoLiveEMD }

// Role implements Handler.
func (h *LiveEMDReceiver) Role() Role { return RoleBob }

// Digest implements Handler.
func (h *LiveEMDReceiver) Digest() uint64 { return DigestEMD(h.Params) }

// Run implements Handler.
func (h *LiveEMDReceiver) Run(conn transport.Conn) error {
	c := h.Cache
	c.mu.Lock()
	defer c.mu.Unlock()
	e := transport.NewEncoder()
	e.WriteUvarint(c.epoch)
	if err := conn.Send(e); err != nil {
		return err
	}
	d, err := conn.Recv()
	if err != nil {
		return err
	}
	epoch, err := d.ReadUvarint()
	if err != nil {
		return err
	}
	mode, err := d.ReadUvarint()
	if err != nil {
		return err
	}
	fp, err := d.ReadUint64()
	if err != nil {
		return err
	}
	// Borrowed: DecodeSketch and ApplyCells copy what they keep, and the
	// fingerprint is computed before the frame can be invalidated.
	payload, err := d.ReadBytesBorrow()
	if err != nil {
		return err
	}
	sk := c.sketch
	var got uint64
	switch mode {
	case liveModeFull:
		if sk, err = emd.DecodeSketch(h.Params, payload); err != nil {
			return err
		}
		got = emd.FingerprintMessage(payload) // wire bytes already in hand
	case liveModeDelta:
		if sk == nil {
			return fmt.Errorf("netproto: delta reply with no cached sketch")
		}
		if err := sk.ApplyCells(payload); err != nil {
			return err
		}
		got = sk.Fingerprint()
	default:
		return fmt.Errorf("netproto: unknown live-emd mode %d", mode)
	}
	if got != fp {
		// The cache diverged from the server's sketch (e.g. a missed
		// epoch); drop it so the next session recovers with a full
		// transfer.
		c.sketch, c.epoch = nil, 0
		return fmt.Errorf("netproto: live-emd fingerprint mismatch (local %#x, server %#x)", got, fp)
	}
	c.sketch, c.epoch = sk, epoch
	h.Epoch = epoch
	h.UsedDelta = mode == liveModeDelta
	res, err := sk.Apply(h.Set)
	if err != nil {
		return err
	}
	if st, ok := transport.ConnStats(conn); ok {
		res.Stats = st
	}
	h.Result = res
	return nil
}

// LiveGapSender serves Alice's side of the Gap protocol from a live
// snapshot's cached key payloads — the wire protocol is the ordinary
// ProtoGap, so any GapReceiver can be the peer.
type LiveGapSender struct {
	set  *live.Set
	snap *live.Snapshot

	// Epoch is the generation this session served.
	Epoch uint64
	// Report is populated by Run.
	Report gap.AliceReport
}

// NewLiveGapSenderFactory returns a factory serving Gap sessions from
// the set's cached key payloads. The set must maintain Gap state.
func NewLiveGapSenderFactory(ls *live.Set) (func() Handler, error) {
	if _, ok := ls.GapParams(); !ok {
		return nil, fmt.Errorf("netproto: live set maintains no gap keys")
	}
	return func() Handler {
		return &LiveGapSender{set: ls, snap: ls.Snapshot()}
	}, nil
}

// Proto implements Handler.
func (h *LiveGapSender) Proto() Proto { return ProtoGap }

// Role implements Handler.
func (h *LiveGapSender) Role() Role { return RoleAlice }

// Digest implements Handler.
func (h *LiveGapSender) Digest() uint64 {
	p, _ := h.set.GapParams()
	return DigestGap(p)
}

// Run implements Handler.
func (h *LiveGapSender) Run(conn transport.Conn) error {
	ky, _ := h.set.GapKeyer()
	h.Epoch = h.snap.Epoch
	rep, err := ky.RunAlice(conn, h.snap.Points, h.snap.GapPayloads)
	if err != nil {
		return err
	}
	h.Report = rep
	return nil
}

// LiveSyncResponder serves exact-ID reconciliation (ordinary
// ProtoSync) from a live snapshot: the ID list and the strata
// estimator come from the set instead of a per-session rebuild.
type LiveSyncResponder struct {
	params SyncParams
	snap   *live.Snapshot

	// Epoch is the generation this session served.
	Epoch uint64
}

// NewLiveSyncResponderFactory returns a factory serving sync sessions
// from the set's fingerprint state. p must agree with the set's
// SyncConfig (same seed and strata geometry) — the estimator is part of
// the wire protocol.
func NewLiveSyncResponderFactory(p SyncParams, ls *live.Set) (func() Handler, error) {
	sc, ok := ls.SyncConfig()
	if !ok {
		return nil, fmt.Errorf("netproto: live set maintains no sync state")
	}
	p.applyDefaults()
	if p.Seed != sc.Seed || p.StrataCells != sc.StrataCells {
		return nil, fmt.Errorf("netproto: sync params (seed %#x, %d cells) disagree with live set (seed %#x, %d cells)",
			p.Seed, p.StrataCells, sc.Seed, sc.StrataCells)
	}
	return func() Handler {
		return &LiveSyncResponder{params: p, snap: ls.Snapshot()}
	}, nil
}

// Proto implements Handler.
func (h *LiveSyncResponder) Proto() Proto { return ProtoSync }

// Role implements Handler.
func (h *LiveSyncResponder) Role() Role { return RoleBob }

// Digest implements Handler.
func (h *LiveSyncResponder) Digest() uint64 { return DigestSync(h.params) }

// Run implements Handler.
func (h *LiveSyncResponder) Run(conn transport.Conn) error {
	h.Epoch = h.snap.Epoch
	_, err := runSyncResponderWith(conn, h.params, h.snap.IDs, h.snap.Strata)
	return err
}

package netproto

import (
	"repro/internal/live"
	"repro/internal/store"
)

// Store-aware handler factories: a session server configured with a
// Resolver serves every set in a store under its RSYN v2 namespace,
// with the store's default ("") set answering v1 peers. Sets created
// after the server started are served immediately — resolution happens
// per hello, not at registration time.

// Resolver resolves a named-set hello to a handler factory. It reports
// whether the set exists at all (distinguishing the unknown-set
// rejection from unknown-proto / role-unavailable) and, when it does,
// the factory complementing the peer's declared role — nil when that
// protocol or role is not served for the set.
type Resolver func(set string, proto Proto, peerRole Role) (factory func() Handler, setExists bool)

// StoreResolver builds a Resolver over a store. For each registered set
// it serves exactly the protocols the set's live.Config maintains:
//
//	live-emd  (as Alice)  when EMD is enabled
//	gap       (as Alice)  when Gap is enabled
//	sync      (as Bob)    when Sync is enabled
//	probe     (as Bob)    always
//	repair    (as Bob)    when Sync is enabled
func StoreResolver(st *store.Store) Resolver {
	return func(set string, proto Proto, peerRole Role) (func() Handler, bool) {
		ls, ok := st.Get(set)
		if !ok {
			return nil, false
		}
		return liveFactory(ls, proto, peerRole.Peer()), true
	}
}

// liveFactory returns the factory serving proto in the given local role
// from the live set, or nil when the combination is not servable.
func liveFactory(ls *live.Set, proto Proto, localRole Role) func() Handler {
	switch {
	case proto == ProtoLiveEMD && localRole == RoleAlice:
		f, err := NewLiveEMDSenderFactory(ls)
		if err != nil {
			return nil
		}
		return f
	case proto == ProtoGap && localRole == RoleAlice:
		f, err := NewLiveGapSenderFactory(ls)
		if err != nil {
			return nil
		}
		return f
	case proto == ProtoSync && localRole == RoleBob:
		sc, ok := ls.SyncConfig()
		if !ok {
			return nil
		}
		f, err := NewLiveSyncResponderFactory(SyncParams{Seed: sc.Seed, StrataCells: sc.StrataCells}, ls)
		if err != nil {
			return nil
		}
		return f
	case proto == ProtoProbe && localRole == RoleBob:
		return NewProbeResponderFactory(ls)
	case proto == ProtoRepair && localRole == RoleBob:
		f, err := NewRepairResponderFactory(ls)
		if err != nil {
			return nil
		}
		return f
	}
	return nil
}

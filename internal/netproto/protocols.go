package netproto

import (
	"fmt"
	"io"

	"repro/internal/emd"
	"repro/internal/gap"
	"repro/internal/iblt"
	"repro/internal/metric"
	"repro/internal/transport"
)

// Two-party convenience entry points. Each wraps a registered Handler in
// the session negotiation (header.go): the Alice side initiates, the Bob
// side answers. They exist for symmetric deployments — two processes and
// one stream, no server; internal/session drives the same handlers for
// the many-peer case.

// EMDAlice runs Alice's side of Algorithm 1 over a byte stream: the
// session header, then the single protocol message.
func EMDAlice(rw io.ReadWriter, p emd.Params, sa metric.PointSet) error {
	_, err := RunInitiator(rw, NewEMDSender(p, sa))
	return err
}

// EMDBob runs Bob's side: answer the header, receive, apply.
func EMDBob(rw io.ReadWriter, p emd.Params, sb metric.PointSet) (emd.Result, error) {
	h := NewEMDReceiver(p, sb)
	if _, err := RunResponder(rw, h); err != nil {
		return emd.Result{}, err
	}
	return h.Result, nil
}

// GapAlice runs Alice's side of the Theorem 4.2 protocol over a byte
// stream.
func GapAlice(rw io.ReadWriter, p gap.Params, sa metric.PointSet) (gap.AliceReport, error) {
	h := NewGapSender(p, sa)
	if _, err := RunInitiator(rw, h); err != nil {
		return gap.AliceReport{}, err
	}
	return h.Report, nil
}

// GapBob runs Bob's side; the returned Result carries this endpoint's
// traffic stats.
func GapBob(rw io.ReadWriter, p gap.Params, sb metric.PointSet) (gap.Result, error) {
	h := NewGapReceiver(p, sb)
	if _, err := RunResponder(rw, h); err != nil {
		return gap.Result{}, err
	}
	return h.Result, nil
}

// ---------------------------------------------------------------------------
// Classic exact reconciliation over the wire: strata + IBLT + repair.

// SyncParams tunes the wire-level ID synchronization.
type SyncParams struct {
	// Seed is the shared public-coin seed.
	Seed uint64
	// StrataCells sizes the estimator (default 80).
	StrataCells int
	// MaxRetries bounds the doubling rounds (default 6).
	MaxRetries int
	// Workers shards local IBLT construction (0 = GOMAXPROCS, 1 =
	// sequential). Purely local: it never changes wire bytes, so the
	// parties need not agree on it and it is not part of the digest.
	Workers int
}

func (p *SyncParams) applyDefaults() {
	if p.StrataCells == 0 {
		p.StrataCells = 80
	}
	if p.MaxRetries == 0 {
		p.MaxRetries = 6
	}
}

// SyncInitiatorFunc reconciles its ID set against a responder: afterwards
// both sides know the full symmetric difference. theirsOnly holds IDs
// only the responder has; minesOnly those only the initiator has.
func SyncInitiatorFunc(rw io.ReadWriter, p SyncParams, ids []uint64) (theirsOnly, minesOnly []uint64, err error) {
	h := NewSyncInitiator(p, ids)
	if _, err := RunInitiator(rw, h); err != nil {
		return nil, nil, err
	}
	return h.TheirsOnly, h.MinesOnly, nil
}

// SyncResponderFunc is the peer of SyncInitiatorFunc. It returns the IDs
// only the initiator has (learned in the repair round); the initiator
// symmetrically learns this side's exclusive IDs from the IBLT.
func SyncResponderFunc(rw io.ReadWriter, p SyncParams, ids []uint64) (theirsOnly []uint64, err error) {
	h := NewSyncResponder(p, ids)
	if _, err := RunResponder(rw, h); err != nil {
		return nil, err
	}
	return h.TheirsOnly, nil
}

// runSyncInitiator is the initiator state machine, driven by the session
// engine over any transport.Conn.
//
// Wire: [strata] → ; ← [IBLT, attempt i] ; [ack + minesOnly] → (repeat
// on nack with doubled size).
func runSyncInitiator(conn transport.Conn, p SyncParams, ids []uint64) (theirsOnly, minesOnly []uint64, err error) {
	p.applyDefaults()
	st := iblt.NewStrataFromKeys(p.StrataCells, p.Seed, ids, p.Workers)
	e := transport.NewEncoder()
	st.Encode(e)
	if err := conn.Send(e); err != nil {
		return nil, nil, err
	}
	for attempt := 0; ; attempt++ {
		d, err := conn.Recv()
		if err != nil {
			return nil, nil, err
		}
		if _, err := d.ReadUvarint(); err != nil {
			return nil, nil, err
		}
		seed := p.Seed + 0x51ab + uint64(attempt)*0x9e37
		tbl, err := iblt.DecodeFrom(d, seed)
		if err != nil {
			return nil, nil, err
		}
		for _, id := range ids {
			tbl.Delete(id)
		}
		added, removed, decErr := tbl.Decode()
		e := transport.NewEncoder()
		e.WriteBool(decErr == nil)
		if decErr == nil {
			e.WriteUvarint(uint64(len(removed)))
			for _, id := range removed {
				e.WriteUint64(id)
			}
		}
		if err := conn.Send(e); err != nil {
			return nil, nil, err
		}
		if decErr == nil {
			return added, removed, nil
		}
		if attempt >= p.MaxRetries {
			return nil, nil, fmt.Errorf("netproto: sync failed after %d attempts", attempt+1)
		}
	}
}

// runSyncResponder is the responder state machine.
func runSyncResponder(conn transport.Conn, p SyncParams, ids []uint64) (theirsOnly []uint64, err error) {
	p.applyDefaults()
	return runSyncResponderWith(conn, p, ids,
		iblt.NewStrataFromKeys(p.StrataCells, p.Seed, ids, p.Workers))
}

// runSyncResponderWith is runSyncResponder with the local strata
// estimator supplied by the caller — the live serving path, where a Set
// maintains the estimator incrementally instead of rebuilding it from
// every ID each session. local must cover exactly ids with geometry
// (p.StrataCells, p.Seed); it is only read (Estimate clones). p must
// already be defaulted.
func runSyncResponderWith(conn transport.Conn, p SyncParams, ids []uint64, local *iblt.Strata) (theirsOnly []uint64, err error) {
	d, err := conn.Recv()
	if err != nil {
		return nil, err
	}
	remote, err := iblt.DecodeStrata(d, p.Seed)
	if err != nil {
		return nil, err
	}
	est, err := local.Estimate(remote)
	if err != nil {
		return nil, err
	}
	diffBound := est*2 + 8
	for attempt := 0; ; attempt++ {
		seed := p.Seed + 0x51ab + uint64(attempt)*0x9e37
		tbl := iblt.NewFromKeys(iblt.CellsForDiff(diffBound, 3), 3, seed, ids, p.Workers)
		e := transport.NewEncoder()
		e.WriteUvarint(uint64(attempt))
		tbl.Encode(e)
		if err := conn.Send(e); err != nil {
			return nil, err
		}
		d, err := conn.Recv()
		if err != nil {
			return nil, err
		}
		ok, err := d.ReadBool()
		if err != nil {
			return nil, err
		}
		if ok {
			n, err := d.ReadUvarint()
			if err != nil {
				return nil, err
			}
			if n > uint64(maxFrame/8) {
				return nil, fmt.Errorf("netproto: implausible repair size %d", n)
			}
			out := make([]uint64, n)
			for i := range out {
				if out[i], err = d.ReadUint64(); err != nil {
					return nil, err
				}
			}
			return out, nil
		}
		if attempt >= p.MaxRetries {
			return nil, fmt.Errorf("netproto: sync failed after %d attempts", attempt+1)
		}
		diffBound *= 2
	}
}

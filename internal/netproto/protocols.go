package netproto

import (
	"fmt"
	"io"

	"repro/internal/emd"
	"repro/internal/gap"
	"repro/internal/hashx"
	"repro/internal/iblt"
	"repro/internal/metric"
	"repro/internal/transport"
)

// digestEMD folds the fields of emd.Params both parties must agree on.
func digestEMD(p emd.Params) uint64 {
	m := hashx.MixerFromSeed(0x1807_09694)
	h := m.Hash(uint64(p.Space.Delta))
	h = m.Hash(h ^ uint64(p.Space.Dim))
	h = m.Hash(h ^ uint64(p.Space.Norm))
	h = m.Hash(h ^ uint64(p.N))
	h = m.Hash(h ^ uint64(p.K))
	h = m.Hash(h ^ uint64(int64(p.D1*1000)))
	h = m.Hash(h ^ uint64(int64(p.D2*1000)))
	h = m.Hash(h ^ uint64(p.Q))
	h = m.Hash(h ^ p.Seed)
	return h
}

// EMDAlice runs Alice's side of Algorithm 1 over a byte stream: a
// handshake frame, then the single protocol message.
func EMDAlice(rw io.ReadWriter, p emd.Params, sa metric.PointSet) error {
	p.ApplyDefaults()
	w := NewWire(rw)
	if err := handshake(w, digestEMD(p)); err != nil {
		return err
	}
	msg, err := emd.BuildMessage(p, sa)
	if err != nil {
		return err
	}
	e := transport.NewEncoder()
	e.WriteBytes(msg)
	return w.Send(e)
}

// EMDBob runs Bob's side: handshake, receive, apply.
func EMDBob(rw io.ReadWriter, p emd.Params, sb metric.PointSet) (emd.Result, error) {
	p.ApplyDefaults()
	w := NewWire(rw)
	if err := handshake(w, digestEMD(p)); err != nil {
		return emd.Result{}, err
	}
	d, err := w.Recv()
	if err != nil {
		return emd.Result{}, err
	}
	msg, err := d.ReadBytes()
	if err != nil {
		return emd.Result{}, err
	}
	res, err := emd.ApplyMessage(p, sb, msg)
	if err != nil {
		return emd.Result{}, err
	}
	res.Stats = w.Stats()
	return res, nil
}

func digestGap(p gap.Params) uint64 {
	m := hashx.MixerFromSeed(0x4a92)
	h := m.Hash(uint64(p.Space.Delta))
	h = m.Hash(h ^ uint64(p.Space.Dim))
	h = m.Hash(h ^ uint64(p.Space.Norm))
	h = m.Hash(h ^ uint64(p.N))
	h = m.Hash(h ^ uint64(int64(p.R1*1000)))
	h = m.Hash(h ^ uint64(int64(p.R2*1000)))
	h = m.Hash(h ^ uint64(p.HFactor))
	h = m.Hash(h ^ uint64(p.EntryBits))
	h = m.Hash(h ^ p.Seed)
	return h
}

// GapAlice runs Alice's side of the Theorem 4.2 protocol over a byte
// stream.
func GapAlice(rw io.ReadWriter, p gap.Params, sa metric.PointSet) (gap.AliceReport, error) {
	w := NewWire(rw)
	if err := handshake(w, digestGap(p)); err != nil {
		return gap.AliceReport{}, err
	}
	return gap.RunAlice(p, w, sa)
}

// GapBob runs Bob's side; the returned Result carries this endpoint's
// traffic stats.
func GapBob(rw io.ReadWriter, p gap.Params, sb metric.PointSet) (gap.Result, error) {
	w := NewWire(rw)
	if err := handshake(w, digestGap(p)); err != nil {
		return gap.Result{}, err
	}
	res, err := gap.RunBob(p, w, sb)
	if err != nil {
		return gap.Result{}, err
	}
	res.Stats = w.Stats()
	return res, nil
}

// ---------------------------------------------------------------------------
// Classic exact reconciliation over the wire: strata + IBLT + repair.

// SyncParams tunes the wire-level ID synchronization.
type SyncParams struct {
	// Seed is the shared public-coin seed.
	Seed uint64
	// StrataCells sizes the estimator (default 80).
	StrataCells int
	// MaxRetries bounds the doubling rounds (default 6).
	MaxRetries int
}

func (p *SyncParams) applyDefaults() {
	if p.StrataCells == 0 {
		p.StrataCells = 80
	}
	if p.MaxRetries == 0 {
		p.MaxRetries = 6
	}
}

// SyncInitiator reconciles its ID set against a responder: afterwards
// both sides know the full symmetric difference. theirsOnly holds IDs
// only the responder has; minesOnly those only the initiator has.
//
// Wire: [strata] → ; ← [IBLT, attempt i] ; [ack + minesOnly] → (repeat
// on nack with doubled size).
func SyncInitiator(rw io.ReadWriter, p SyncParams, ids []uint64) (theirsOnly, minesOnly []uint64, err error) {
	p.applyDefaults()
	w := NewWire(rw)
	st := iblt.NewStrata(p.StrataCells, p.Seed)
	for _, id := range ids {
		st.Insert(id)
	}
	e := transport.NewEncoder()
	st.Encode(e)
	if err := w.Send(e); err != nil {
		return nil, nil, err
	}
	for attempt := 0; ; attempt++ {
		d, err := w.Recv()
		if err != nil {
			return nil, nil, err
		}
		if _, err := d.ReadUvarint(); err != nil {
			return nil, nil, err
		}
		seed := p.Seed + 0x51ab + uint64(attempt)*0x9e37
		tbl, err := iblt.DecodeFrom(d, seed)
		if err != nil {
			return nil, nil, err
		}
		for _, id := range ids {
			tbl.Delete(id)
		}
		added, removed, decErr := tbl.Decode()
		e := transport.NewEncoder()
		e.WriteBool(decErr == nil)
		if decErr == nil {
			e.WriteUvarint(uint64(len(removed)))
			for _, id := range removed {
				e.WriteUint64(id)
			}
		}
		if err := w.Send(e); err != nil {
			return nil, nil, err
		}
		if decErr == nil {
			return added, removed, nil
		}
		if attempt >= p.MaxRetries {
			return nil, nil, fmt.Errorf("netproto: sync failed after %d attempts", attempt+1)
		}
	}
}

// SyncResponder is the peer of SyncInitiator. It returns the IDs only
// the initiator has (learned in the repair round); the initiator
// symmetrically learns this side's exclusive IDs from the IBLT.
func SyncResponder(rw io.ReadWriter, p SyncParams, ids []uint64) (theirsOnly []uint64, err error) {
	p.applyDefaults()
	w := NewWire(rw)
	d, err := w.Recv()
	if err != nil {
		return nil, err
	}
	remote, err := iblt.DecodeStrata(d, p.Seed)
	if err != nil {
		return nil, err
	}
	local := iblt.NewStrata(p.StrataCells, p.Seed)
	for _, id := range ids {
		local.Insert(id)
	}
	est, err := local.Estimate(remote)
	if err != nil {
		return nil, err
	}
	diffBound := est*2 + 8
	for attempt := 0; ; attempt++ {
		seed := p.Seed + 0x51ab + uint64(attempt)*0x9e37
		tbl := iblt.New(iblt.CellsForDiff(diffBound, 3), 3, seed)
		for _, id := range ids {
			tbl.Insert(id)
		}
		e := transport.NewEncoder()
		e.WriteUvarint(uint64(attempt))
		tbl.Encode(e)
		if err := w.Send(e); err != nil {
			return nil, err
		}
		d, err := w.Recv()
		if err != nil {
			return nil, err
		}
		ok, err := d.ReadBool()
		if err != nil {
			return nil, err
		}
		if ok {
			n, err := d.ReadUvarint()
			if err != nil {
				return nil, err
			}
			if n > uint64(maxFrame/8) {
				return nil, fmt.Errorf("netproto: implausible repair size %d", n)
			}
			out := make([]uint64, n)
			for i := range out {
				if out[i], err = d.ReadUint64(); err != nil {
					return nil, err
				}
			}
			return out, nil
		}
		if attempt >= p.MaxRetries {
			return nil, fmt.Errorf("netproto: sync failed after %d attempts", attempt+1)
		}
		diffBound *= 2
	}
}

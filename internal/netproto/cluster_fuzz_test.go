package netproto

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/iblt"
	"repro/internal/live"
	"repro/internal/metric"
	"repro/internal/transport"
)

// Fuzz targets for the cluster anti-entropy frame readers (probe =
// proto 6, repair = proto 7). The hello/accept parsers were fuzzed in
// an earlier pass; these cover the payload readers a hostile or
// corrupted peer feeds after a successful handshake: the probe summary
// (with its embedded strata estimator) and the repair session's point
// and ID lists, whose counts and dimensions are peer-supplied and must
// never turn into unbounded allocations or panics.

const fuzzStrataSeed = 0xf00d

// fuzzSummaryBytes encodes a valid probe summary frame payload.
func fuzzSummaryBytes(withStrata bool) []byte {
	ls, err := live.NewSet(live.Config{Sync: &live.SyncConfig{Seed: fuzzStrataSeed}},
		metric.PointSet{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	if err != nil {
		panic(err)
	}
	s := summaryOf(ls.Snapshot())
	if !withStrata {
		s.Strata = nil
	}
	e := transport.NewEncoder()
	encodeSummary(e, s)
	data, _ := e.Pack()
	return append([]byte(nil), data...)
}

// reencodeSummary packs a summary back to wire bytes.
func reencodeSummary(s ProbeSummary) []byte {
	e := transport.NewEncoder()
	encodeSummary(e, s)
	data, _ := e.Pack()
	return append([]byte(nil), data...)
}

// FuzzProbeSummary hardens the probe-frame reader: arbitrary bytes must
// either fail cleanly or decode to a summary that survives an
// encode/decode round trip bit-identically (strata cells included).
func FuzzProbeSummary(f *testing.F) {
	f.Add(fuzzSummaryBytes(true))
	f.Add(fuzzSummaryBytes(false))
	f.Add([]byte{})
	f.Add([]byte{0x00})
	// Uvarint distinct-count bomb: epoch 0 then 2^60.
	f.Add([]byte{0x00, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x10})
	f.Add(fuzzSummaryBytes(true)[:9])

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := decodeSummary(transport.NewDecoder(data), fuzzStrataSeed)
		if err != nil {
			return // rejected cleanly
		}
		if s.Distinct < 0 {
			t.Fatalf("accepted negative distinct count: %+v", s)
		}
		enc1 := reencodeSummary(s)
		s2, err := decodeSummary(transport.NewDecoder(enc1), fuzzStrataSeed)
		if err != nil {
			t.Fatalf("re-decode of accepted summary failed: %v", err)
		}
		enc2 := reencodeSummary(s2)
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("summary round trip not stable:\n%x\n%x", enc1, enc2)
		}
	})
}

// fuzzRepairAckBytes encodes the repair ack-frame tail the responder
// reads: ID list + point list (the ok bool is consumed before these
// readers run, so it is not part of the fuzzed payload).
func fuzzRepairAckBytes(ids []uint64, pts metric.PointSet) []byte {
	e := transport.NewEncoder()
	e.WriteUvarint(uint64(len(ids)))
	for _, id := range ids {
		e.WriteUint64(id)
	}
	writePointList(e, pts)
	data, _ := e.Pack()
	return append([]byte(nil), data...)
}

// FuzzRepairFrames hardens the repair payload readers, readIDList and
// readPointList, driven in the same order the responder consumes them.
// Accepted payloads must round-trip: re-encoding the decoded IDs and
// points must reproduce a parseable, value-identical payload.
func FuzzRepairFrames(f *testing.F) {
	f.Add(fuzzRepairAckBytes([]uint64{1, 2, 3}, metric.PointSet{{1, 2}, {3, 4}}))
	f.Add(fuzzRepairAckBytes(nil, nil))
	f.Add(fuzzRepairAckBytes([]uint64{0xffffffffffffffff}, metric.PointSet{{-1, -2, -3}}))
	// Count bombs: huge ID count, huge point count, huge dimension.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Add([]byte{0x00, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Add([]byte{0x00, 0x01, 0xff, 0xff, 0xff, 0x7f})
	f.Add(fuzzRepairAckBytes([]uint64{7}, metric.PointSet{{9}})[:3])

	f.Fuzz(func(t *testing.T, data []byte) {
		d := transport.NewDecoder(data)
		ids, err := readIDList(d)
		if err != nil {
			return
		}
		pts, err := readPointList(d)
		if err != nil {
			return
		}
		if len(ids) > maxFrame/8 || len(pts) > maxFrame/2 {
			t.Fatalf("accepted implausible sizes: %d ids, %d points", len(ids), len(pts))
		}
		for _, pt := range pts {
			if len(pt) > 1<<20 {
				t.Fatalf("accepted implausible dimension %d", len(pt))
			}
		}
		enc := fuzzRepairAckBytes(ids, pts)
		d2 := transport.NewDecoder(enc)
		ids2, err := readIDList(d2)
		if err != nil {
			t.Fatalf("re-decode ids: %v", err)
		}
		pts2, err := readPointList(d2)
		if err != nil {
			t.Fatalf("re-decode points: %v", err)
		}
		if fmt.Sprint(ids) != fmt.Sprint(ids2) {
			t.Fatalf("id round trip changed: %v -> %v", ids, ids2)
		}
		if len(pts) != len(pts2) {
			t.Fatalf("point count changed: %d -> %d", len(pts), len(pts2))
		}
		for i := range pts {
			if !pts[i].Equal(pts2[i]) {
				t.Fatalf("point %d changed: %v -> %v", i, pts[i], pts2[i])
			}
		}
	})
}

// FuzzDecodeStrata drives the standalone strata decoder the probe and
// repair paths share (a malformed estimator must not panic the
// Estimate call either).
func FuzzDecodeStrata(f *testing.F) {
	ls, err := live.NewSet(live.Config{Sync: &live.SyncConfig{Seed: fuzzStrataSeed}},
		metric.PointSet{{1}, {2}, {3}, {4}})
	if err != nil {
		f.Fatal(err)
	}
	snap := ls.Snapshot()
	e := transport.NewEncoder()
	snap.Strata.Encode(e)
	valid, _ := e.Pack()
	f.Add(append([]byte(nil), valid...))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		remote, err := iblt.DecodeStrata(transport.NewDecoder(data), fuzzStrataSeed)
		if err != nil {
			return
		}
		// A decoded estimator must be usable: Estimate against a real
		// local one returns a value or a clean error, never a panic.
		if est, err := snap.Strata.Estimate(remote); err == nil && est < 0 {
			t.Fatalf("negative difference estimate %d", est)
		}
	})
}

// fuzzVerifyFixture is the honest repair payload FuzzRepairVerify
// mutates from: three points and their IDs under fuzzStrataSeed.
func fuzzVerifyFixture() (metric.PointSet, []uint64) {
	pts := metric.PointSet{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}
	ids := make([]uint64, len(pts))
	for i, pt := range pts {
		ids[i] = live.PointID(fuzzStrataSeed, pt)
	}
	return pts, ids
}

// FuzzRepairVerify hardens the verify-before-merge rule: arbitrary
// (ids, points) payloads — fed through the same frame readers the
// repair session uses — must never panic the verifier, and its verdict
// must be internally consistent: an accepted batch fits the request and
// every point hashes to a requested ID under the fuzzed seed; a
// rejected batch reports a mismatch count within [1, len(points)]. The
// verdict must also be deterministic across calls.
func FuzzRepairVerify(f *testing.F) {
	pts, ids := fuzzVerifyFixture()
	corrupt := pts.Clone()
	corrupt[1][0]++
	f.Add(fuzzRepairAckBytes(ids, pts), uint64(fuzzStrataSeed))
	f.Add(fuzzRepairAckBytes(ids, corrupt), uint64(fuzzStrataSeed))
	f.Add(fuzzRepairAckBytes(ids[:1], pts), uint64(fuzzStrataSeed)) // oversized batch
	f.Add(fuzzRepairAckBytes(ids, pts), uint64(fuzzStrataSeed+1))   // wrong seed
	f.Add(fuzzRepairAckBytes(nil, nil), uint64(0))

	f.Fuzz(func(t *testing.T, data []byte, seed uint64) {
		d := transport.NewDecoder(data)
		ids, err := readIDList(d)
		if err != nil {
			return
		}
		pts, err := readPointList(d)
		if err != nil {
			return
		}
		verdict := verifyRepairPayload(seed, ids, pts)
		if verdict == nil {
			if len(pts) > len(ids) && len(pts) > 0 {
				t.Fatalf("accepted %d points against %d requested IDs", len(pts), len(ids))
			}
			want := make(map[uint64]bool, len(ids))
			for _, id := range ids {
				want[id] = true
			}
			for i, pt := range pts {
				if !want[live.PointID(seed, pt)] {
					t.Fatalf("accepted point %d that hashes to no requested ID", i)
				}
			}
		} else {
			if len(pts) == 0 {
				t.Fatal("rejected an empty batch")
			}
			if verdict.Total != len(pts) || verdict.Mismatched < 1 || verdict.Mismatched > verdict.Total {
				t.Fatalf("inconsistent verdict %+v for %d points", verdict, len(pts))
			}
		}
		again := verifyRepairPayload(seed, ids, pts)
		if (verdict == nil) != (again == nil) ||
			(verdict != nil && *verdict != *again) {
			t.Fatalf("verdict not deterministic: %+v vs %+v", verdict, again)
		}
	})
}

// TestGenerateClusterFuzzCorpus regenerates the checked-in seed corpus
// under testdata/fuzz (run with GEN_FUZZ_CORPUS=1; skipped otherwise).
// Checked in so CI's brief -fuzz runs start from meaningful inputs
// even on a cold fuzz cache.
func TestGenerateClusterFuzzCorpus(t *testing.T) {
	if os.Getenv("GEN_FUZZ_CORPUS") == "" {
		t.Skip("set GEN_FUZZ_CORPUS=1 to regenerate the checked-in corpus")
	}
	write := func(target, name string, data []byte) {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("FuzzProbeSummary", "valid-with-strata", fuzzSummaryBytes(true))
	write("FuzzProbeSummary", "valid-no-strata", fuzzSummaryBytes(false))
	write("FuzzProbeSummary", "truncated", fuzzSummaryBytes(true)[:9])
	write("FuzzProbeSummary", "distinct-bomb", []byte{0x00, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x10})
	write("FuzzRepairFrames", "valid", fuzzRepairAckBytes([]uint64{1, 2, 3}, metric.PointSet{{1, 2}, {3, 4}}))
	write("FuzzRepairFrames", "empty-lists", fuzzRepairAckBytes(nil, nil))
	write("FuzzRepairFrames", "id-count-bomb", []byte{0xff, 0xff, 0xff, 0xff, 0x7f})
	write("FuzzRepairFrames", "point-count-bomb", []byte{0x00, 0xff, 0xff, 0xff, 0xff, 0x7f})
	write("FuzzRepairFrames", "dimension-bomb", []byte{0x00, 0x01, 0xff, 0xff, 0xff, 0x7f})
	write("FuzzRepairFrames", "truncated", fuzzRepairAckBytes([]uint64{7}, metric.PointSet{{9}})[:3])
	writeSeeded := func(target, name string, data []byte, seed uint64) {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\nuint64(%d)\n", data, seed)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	vpts, vids := fuzzVerifyFixture()
	vcorrupt := vpts.Clone()
	vcorrupt[1][0]++
	writeSeeded("FuzzRepairVerify", "honest", fuzzRepairAckBytes(vids, vpts), fuzzStrataSeed)
	writeSeeded("FuzzRepairVerify", "corrupt-point", fuzzRepairAckBytes(vids, vcorrupt), fuzzStrataSeed)
	writeSeeded("FuzzRepairVerify", "oversized", fuzzRepairAckBytes(vids[:1], vpts), fuzzStrataSeed)
	writeSeeded("FuzzRepairVerify", "wrong-seed", fuzzRepairAckBytes(vids, vpts), fuzzStrataSeed+1)
	ls, err := live.NewSet(live.Config{Sync: &live.SyncConfig{Seed: fuzzStrataSeed}},
		metric.PointSet{{1}, {2}, {3}, {4}})
	if err != nil {
		t.Fatal(err)
	}
	e := transport.NewEncoder()
	ls.Snapshot().Strata.Encode(e)
	valid, _ := e.Pack()
	write("FuzzDecodeStrata", "valid", valid)
	write("FuzzDecodeStrata", "cell-bomb", []byte{0xff, 0xff, 0xff, 0x7f})
}

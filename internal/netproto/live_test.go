package netproto

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/emd"
	"repro/internal/gap"
	"repro/internal/live"
	"repro/internal/metric"
	"repro/internal/rng"
	"repro/internal/workload"
)

func liveFixtureParams() (emd.Params, gap.Params, SyncParams, live.Config) {
	space := metric.HammingCube(64)
	emdP := emd.Params{Space: space, N: 32, K: 3, D1: 2, D2: 64, Seed: 7, Workers: 1}
	gapP := gap.Params{Space: space, N: 32, R1: 2, R2: 16, Seed: 8, Workers: 1}
	syncP := SyncParams{Seed: 9}
	cfg := live.Config{EMD: &emdP, Gap: &gapP, Sync: &live.SyncConfig{Seed: 9}}
	return emdP, gapP, syncP, cfg
}

func liveRandomSet(space metric.Space, n int, seed uint64) metric.PointSet {
	src := rng.New(seed)
	out := make(metric.PointSet, n)
	for i := range out {
		pt := make(metric.Point, space.Dim)
		for j := range pt {
			pt[j] = int32(src.Uint64() % uint64(space.Delta+1))
		}
		out[i] = pt
	}
	return out
}

// runLiveEMDSession drives one live EMD session over an in-memory
// duplex stream: the server-side handler from the factory, the client
// with its persistent cache.
func runLiveEMDSession(t *testing.T, factory func() Handler, h *LiveEMDReceiver) *LiveEMDSender {
	t.Helper()
	a, b := duplex()
	defer a.Close()
	defer b.Close()
	srv := factory().(*LiveEMDSender)
	var wg sync.WaitGroup
	var srvErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, srvErr = RunResponder(a, srv)
	}()
	if _, err := RunInitiator(b, h); err != nil {
		t.Fatalf("client: %v", err)
	}
	wg.Wait()
	if srvErr != nil {
		t.Fatalf("server: %v", srvErr)
	}
	return srv
}

// TestLiveEMDDeltaSync: first session ships the full sketch; after
// churn, a returning peer announcing its epoch receives only churned
// cells, reconciles identically, and the payload is smaller.
func TestLiveEMDDeltaSync(t *testing.T) {
	emdP, _, _, cfg := liveFixtureParams()
	cfg.Gap, cfg.Sync = nil, nil
	sa := liveRandomSet(emdP.Space, emdP.N, 41)
	ls, err := live.NewSet(cfg, sa)
	if err != nil {
		t.Fatal(err)
	}
	factory, err := NewLiveEMDSenderFactory(ls)
	if err != nil {
		t.Fatal(err)
	}
	sb := liveRandomSet(emdP.Space, emdP.N, 42)
	cache := &EMDCache{}

	h1 := NewLiveEMDReceiver(emdP, sb, cache)
	s1 := runLiveEMDSession(t, factory, h1)
	if h1.UsedDelta || s1.DeltaServed {
		t.Fatal("first session must be a full transfer")
	}
	if h1.Epoch != ls.Epoch() {
		t.Fatalf("client synced epoch %d, server at %d", h1.Epoch, ls.Epoch())
	}
	fullBytes := s1.PayloadBytes

	// Churn: replace two points.
	for i := 0; i < 2; i++ {
		if err := ls.Remove(sa[i]); err != nil {
			t.Fatal(err)
		}
		if err := ls.Add(liveRandomSet(emdP.Space, 1, uint64(100+i))[0]); err != nil {
			t.Fatal(err)
		}
	}

	h2 := NewLiveEMDReceiver(emdP, sb, cache)
	s2 := runLiveEMDSession(t, factory, h2)
	if !h2.UsedDelta || !s2.DeltaServed {
		t.Fatal("returning peer within the journal horizon must get a delta")
	}
	if s2.PayloadBytes >= fullBytes {
		t.Errorf("delta payload %d not smaller than full %d", s2.PayloadBytes, fullBytes)
	}
	// The patched cache must equal the server's current message, and
	// reconciliation must behave exactly like a full-transfer client's.
	snap := ls.Snapshot()
	fresh := NewLiveEMDReceiver(emdP, sb, nil)
	s3 := runLiveEMDSession(t, factory, fresh)
	if s3.DeltaServed {
		t.Fatal("fresh cache must get a full transfer")
	}
	if fresh.Result.Failed != h2.Result.Failed || fresh.Result.Level != h2.Result.Level ||
		len(fresh.Result.SPrime) != len(h2.Result.SPrime) {
		t.Errorf("delta client reconciliation diverges from full client")
	}
	_ = snap

	// Up-to-date peer: empty delta, still consistent.
	h4 := NewLiveEMDReceiver(emdP, sb, cache)
	s4 := runLiveEMDSession(t, factory, h4)
	if !s4.DeltaServed || s4.PayloadBytes >= fullBytes {
		t.Errorf("up-to-date peer served mode delta=%v payload=%d", s4.DeltaServed, s4.PayloadBytes)
	}
}

// TestLiveEMDJournalAgedOut: a peer whose epoch fell off the journal
// gets a clean full transfer.
func TestLiveEMDJournalAgedOut(t *testing.T) {
	emdP, _, _, cfg := liveFixtureParams()
	cfg.Gap, cfg.Sync = nil, nil
	cfg.JournalEpochs = 2
	sa := liveRandomSet(emdP.Space, emdP.N, 51)
	ls, err := live.NewSet(cfg, sa)
	if err != nil {
		t.Fatal(err)
	}
	factory, err := NewLiveEMDSenderFactory(ls)
	if err != nil {
		t.Fatal(err)
	}
	sb := liveRandomSet(emdP.Space, emdP.N, 52)
	cache := &EMDCache{}
	runLiveEMDSession(t, factory, NewLiveEMDReceiver(emdP, sb, cache))

	for i := 0; i < 4; i++ { // 8 epochs > horizon 2
		if err := ls.Remove(sa[i]); err != nil {
			t.Fatal(err)
		}
		if err := ls.Add(liveRandomSet(emdP.Space, 1, uint64(200+i))[0]); err != nil {
			t.Fatal(err)
		}
	}
	h := NewLiveEMDReceiver(emdP, sb, cache)
	s := runLiveEMDSession(t, factory, h)
	if s.DeltaServed || h.UsedDelta {
		t.Fatal("aged-out epoch must fall back to a full transfer")
	}
	if h.Epoch != ls.Epoch() {
		t.Errorf("client at epoch %d, server at %d", h.Epoch, ls.Epoch())
	}
}

// TestLiveGapAndSyncServing: the ordinary Gap and Sync protocols served
// from a live snapshot behave like their rebuilt-per-session
// counterparts.
func TestLiveGapAndSyncServing(t *testing.T) {
	_, gapP, syncP, cfg := liveFixtureParams()
	cfg.EMD = nil
	ginst, err := workload.NewGapInstance(gapP.Space, 24, 2, 1, 2, 16, 43)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := live.NewSet(cfg, ginst.SA)
	if err != nil {
		t.Fatal(err)
	}
	gapFactory, err := NewLiveGapSenderFactory(ls)
	if err != nil {
		t.Fatal(err)
	}
	syncFactory, err := NewLiveSyncResponderFactory(syncP, ls)
	if err != nil {
		t.Fatal(err)
	}

	// Gap session against a plain receiver.
	a, b := duplex()
	var wg sync.WaitGroup
	var srvErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, srvErr = RunResponder(a, gapFactory())
		a.Close()
	}()
	gh := NewGapReceiver(gapP, ginst.SB)
	if _, err := RunInitiator(b, gh); err != nil {
		t.Fatalf("gap client: %v", err)
	}
	b.Close()
	wg.Wait()
	if srvErr != nil {
		t.Fatalf("gap server: %v", srvErr)
	}
	for _, pt := range ginst.SA {
		if dist, _ := gh.Result.SPrime.MinDistanceTo(gapP.Space, pt); dist > gapP.R2 {
			t.Errorf("gap coverage hole at distance %v", dist)
		}
	}

	// Sync session: client IDs derived with the shared fingerprint
	// seed; the symmetric difference is the planted instance's.
	clientIDs := live.IDsOf(9, ginst.SB)
	a2, b2 := duplex()
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, srvErr = RunResponder(a2, syncFactory())
		a2.Close()
	}()
	sh := NewSyncInitiator(syncP, clientIDs)
	if _, err := RunInitiator(b2, sh); err != nil {
		t.Fatalf("sync client: %v", err)
	}
	b2.Close()
	wg.Wait()
	if srvErr != nil {
		t.Fatalf("sync server: %v", srvErr)
	}
	serverIDs := ls.Snapshot().IDs
	wantTheirs := diffCount(serverIDs, clientIDs)
	wantMine := diffCount(clientIDs, serverIDs)
	if len(sh.TheirsOnly) != wantTheirs || len(sh.MinesOnly) != wantMine {
		t.Errorf("sync got %d/%d, want %d/%d",
			len(sh.TheirsOnly), len(sh.MinesOnly), wantTheirs, wantMine)
	}

	// Churn invalidates the served snapshot for *new* sessions only:
	// a session built before the mutation still serves its epoch.
	pre := gapFactory().(*LiveGapSender)
	if err := ls.Add(ginst.SB[0]); err != nil {
		t.Fatal(err)
	}
	post := gapFactory().(*LiveGapSender)
	if pre.snap.Epoch == post.snap.Epoch {
		t.Error("new session did not observe the new epoch")
	}
	if !bytes.Equal(encodePoints(pre.snap.Points), encodePoints(pre.snap.Points)) {
		t.Error("snapshot mutated")
	}
}

func diffCount(a, b []uint64) int {
	in := make(map[uint64]bool, len(b))
	for _, x := range b {
		in[x] = true
	}
	n := 0
	for _, x := range a {
		if !in[x] {
			n++
		}
	}
	return n
}

func encodePoints(pts metric.PointSet) []byte {
	var buf bytes.Buffer
	for _, pt := range pts {
		for _, c := range pt {
			buf.WriteByte(byte(c))
		}
	}
	return buf.Bytes()
}

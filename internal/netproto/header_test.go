package netproto

import (
	"bytes"
	"strings"
	"testing"
)

// TestHelloV1ByteCompat pins the wire bytes of a default-set hello to
// the exact v1 encoding: the multi-tenant header change must not move a
// single bit for v1 peers.
func TestHelloV1ByteCompat(t *testing.T) {
	got := frameHello(Hello{Proto: ProtoEMD, Role: RoleAlice, Digest: 0x0123456789abcdef})
	// 4-byte length, then: RSYN magic, version 1, proto 1, role 0,
	// 64-bit digest — the layout served since PR 1.
	want := []byte{
		0x00, 0x00, 0x00, 0x0f, // frame length 15
		0x52, 0x53, 0x59, 0x4e, // "RSYN"
		0x01,                   // version 1
		0x01,                   // proto emd
		0x00,                   // role alice
		0x01, 0x23, 0x45, 0x67, // digest (big-endian bit order)
		0x89, 0xab, 0xcd, 0xef,
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("v1 hello bytes changed:\n got %x\nwant %x", got, want)
	}
}

func TestHelloV2RoundTrip(t *testing.T) {
	for _, set := range []string{"a", "tenant-a", strings.Repeat("x", 255)} {
		in := Hello{Proto: ProtoRepair, Role: RoleAlice, Digest: 42, Set: set}
		var buf bytes.Buffer
		if err := SendHello(NewWire(&buf), in); err != nil {
			t.Fatalf("send %q: %v", set, err)
		}
		out, err := ReadHello(NewWire(readOnly{&buf}))
		if err != nil {
			t.Fatalf("read %q: %v", set, err)
		}
		if out != in {
			t.Fatalf("round trip: %+v → %+v", in, out)
		}
	}
}

func TestHelloRejectsBadSetNames(t *testing.T) {
	var buf bytes.Buffer
	for _, set := range []string{"with\nnewline", strings.Repeat("x", 256)} {
		err := SendHello(NewWire(&buf), Hello{Proto: ProtoSync, Role: RoleAlice, Set: set})
		if err == nil {
			t.Fatalf("SendHello accepted set %q", set)
		}
	}
	// A hand-built v2 frame smuggling an empty namespace must be
	// rejected: the default set has exactly one wire spelling (v1).
	raw := []byte{
		0x00, 0x00, 0x00, 0x10, // frame length 16
		0x52, 0x53, 0x59, 0x4e, // "RSYN"
		0x02,                   // version 2
		0x03,                   // proto sync
		0x00,                   // role alice
		0, 0, 0, 0, 0, 0, 0, 0, // digest
		0x00, // set length 0
	}
	h, err := ReadHello(NewWire(readOnly{bytes.NewReader(raw)}))
	if err == nil {
		t.Fatalf("v2 hello with empty namespace accepted: %+v", h)
	}
}

func TestTwoPartyAcceptRejectsNamedSet(t *testing.T) {
	a, b := duplex()
	defer a.Close()
	defer b.Close()
	errc := make(chan error, 1)
	go func() {
		w := NewWire(a)
		errc <- InitiateSet(w, NewSyncInitiator(SyncParams{Seed: 1}, nil), "tenant")
	}()
	err2 := Accept(NewWire(b), NewSyncResponder(SyncParams{Seed: 1}, nil))
	err1 := <-errc
	if err1 == nil || !strings.Contains(err1.Error(), "unknown set") {
		t.Fatalf("initiator error = %v, want unknown-set rejection", err1)
	}
	if err2 == nil {
		t.Fatal("two-party Accept served a named set")
	}
}

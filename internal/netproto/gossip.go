package netproto

// ProtoGossip is the cluster membership exchange: a push-pull
// anti-entropy swap of SWIM-style member tables (addr, incarnation,
// state), one frame each way. The frame codec and both handler roles
// live in internal/gossip — the protocol is namespace-less (always the
// default set: membership is a node property, not a set property), so
// only the wire ID is declared here, next to the other cluster
// protocols, where renumbering hazards are visible in one place.
//
//	initiator → peer: member table
//	peer → initiator: member table (after merging the initiator's)
const ProtoGossip Proto = 8

func init() {
	RegisterProto(ProtoGossip, "gossip")
}

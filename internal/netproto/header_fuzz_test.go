package netproto

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
)

// frameHello encodes a well-formed hello frame (length prefix included)
// for seeding the fuzz corpus.
func frameHello(h Hello) []byte {
	var buf bytes.Buffer
	if err := SendHello(NewWire(&buf), h); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// frame wraps raw payload bytes in the 4-byte length prefix.
func frame(payload []byte) []byte {
	out := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(out, uint32(len(payload)))
	copy(out[4:], payload)
	return out
}

// readOnly adapts a reader to the Wire's io.ReadWriter (writes vanish).
type readOnly struct{ io.Reader }

func (readOnly) Write(p []byte) (int, error) { return len(p), nil }

// FuzzReadHello hardens the session-header parser: arbitrary bytes must
// produce either a clean error or a Hello that survives a re-encode /
// re-read round trip unchanged. The checked-in corpus
// (testdata/fuzz/FuzzReadHello) covers v1 and v2 negotiation, junk
// magic, bad versions, oversized namespaces, and truncated frames; CI
// runs the fuzzer briefly on top.
func FuzzReadHello(f *testing.F) {
	// Valid v1 hellos (all four classic protocols, both roles).
	f.Add(frameHello(Hello{Proto: ProtoEMD, Role: RoleAlice, Digest: 0xdeadbeef}))
	f.Add(frameHello(Hello{Proto: ProtoSync, Role: RoleBob, Digest: 0}))
	// Valid v2 hellos with namespaces.
	f.Add(frameHello(Hello{Proto: ProtoLiveEMD, Role: RoleAlice, Digest: 1, Set: "tenant-a"}))
	f.Add(frameHello(Hello{Proto: ProtoRepair, Role: RoleAlice, Digest: 42, Set: strings.Repeat("n", 255)}))
	// Valid v3 carrier hello (magic + version, nothing else), and a v3
	// frame with trailing bytes (must be rejected).
	f.Add(frameHello(Hello{Mux: true}))
	f.Add(frame(append(frameHello(Hello{Mux: true})[4:], 0x01)))
	// Junk: bad magic, empty frame, garbage payload.
	f.Add(frame([]byte("GARBAGE?")))
	f.Add(frame(nil))
	f.Add([]byte("\x00\x00\x00\x04RSYN"))
	// Truncated: header cut mid-frame, length prefix promising more
	// than arrives, bare prefix.
	f.Add(frameHello(Hello{Proto: ProtoGap, Role: RoleBob, Digest: 7})[:6])
	f.Add([]byte{0x00, 0x00, 0x01, 0x00, 0x52})
	f.Add([]byte{0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		w := NewWire(readOnly{bytes.NewReader(data)})
		h, err := ReadHello(w)
		if err != nil {
			return // rejected cleanly
		}
		// Parsed hellos must satisfy the documented invariants...
		if h.Mux {
			// A v3 carrier hello names no session: every session field
			// must be zero (the stream hellos that follow carry them).
			if h.Proto != 0 || h.Role != 0 || h.Digest != 0 || h.Set != "" {
				t.Fatalf("carrier hello with session fields: %+v", h)
			}
		} else {
			if h.Proto == 0 {
				t.Fatalf("accepted proto 0: %+v", h)
			}
			if h.Role != RoleAlice && h.Role != RoleBob {
				t.Fatalf("accepted bad role: %+v", h)
			}
			if !ValidSetName(h.Set) {
				t.Fatalf("accepted invalid set name %q", h.Set)
			}
		}
		// ...and round-trip bit-exactly through SendHello/ReadHello.
		var buf bytes.Buffer
		if err := SendHello(NewWire(&buf), h); err != nil {
			t.Fatalf("re-encode of accepted hello %+v: %v", h, err)
		}
		h2, err := ReadHello(NewWire(readOnly{&buf}))
		if err != nil {
			t.Fatalf("re-read of accepted hello %+v: %v", h, err)
		}
		if h2 != h {
			t.Fatalf("round trip changed hello: %+v → %+v", h, h2)
		}
	})
}

// FuzzReadAccept drives the accept-frame parser the same way.
func FuzzReadAccept(f *testing.F) {
	mk := func(st Status, digest uint64) []byte {
		var buf bytes.Buffer
		w := NewWire(&buf)
		if err := SendAccept(w, st, digest); err != nil {
			panic(err)
		}
		return buf.Bytes()
	}
	f.Add(mk(StatusOK, 0xfeed))
	f.Add(mk(StatusUnknownSet, 0))
	f.Add(frame([]byte{0xff, 0xff, 0xff, 0xff, 0xff}))
	f.Add(frame(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		w := NewWire(readOnly{bytes.NewReader(data)})
		st, digest, err := ReadAccept(w)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := SendAccept(NewWire(&buf), st, digest); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		st2, digest2, err := ReadAccept(NewWire(readOnly{&buf}))
		if err != nil || st2 != st || digest2 != digest {
			t.Fatalf("round trip changed accept: %v/%#x → %v/%#x (%v)", st, digest, st2, digest2, err)
		}
	})
}

package netproto

import (
	"encoding/binary"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/emd"
	"repro/internal/gap"
	"repro/internal/metric"
	"repro/internal/setsets"
)

// failureHandlers returns one handler per (protocol, role) across all
// four registered protocols, bound to small valid fixtures — the matrix
// the disconnect and truncation tests run over.
func failureHandlers(t *testing.T) map[string]Handler {
	t.Helper()
	space := metric.HammingCube(64)
	emdP := emd.Params{Space: space, N: 8, K: 2, D1: 2, D2: 64, Seed: 3}
	gapP := gap.Params{Space: space, N: 8, R1: 2, R2: 16, Seed: 4}
	pts := make(metric.PointSet, 8)
	for i := range pts {
		pt := make(metric.Point, space.Dim)
		pt[i] = 1
		pts[i] = pt
	}
	kids := []setsets.Child{{Payload: []byte{1, 2, 3, 4}}}
	return map[string]Handler{
		"emd/alice":     NewEMDSender(emdP, pts),
		"emd/bob":       NewEMDReceiver(emdP, pts),
		"gap/alice":     NewGapSender(gapP, pts),
		"gap/bob":       NewGapReceiver(gapP, pts),
		"sync/alice":    NewSyncInitiator(SyncParams{Seed: 5}, []uint64{1, 2, 3}),
		"sync/bob":      NewSyncResponder(SyncParams{Seed: 5}, []uint64{1, 2, 3}),
		"setsets/alice": NewSetSetsInitiator(setsets.Params{PayloadBytes: 4, Seed: 6}, kids),
		"setsets/bob":   NewSetSetsResponder(setsets.Params{PayloadBytes: 4, Seed: 6}, kids),
	}
}

// run executes the handler in its natural direction (alice initiates,
// bob responds) and reports the error, guarding against hangs.
func runWithDeadline(t *testing.T, name string, h Handler, conn net.Conn) error {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		var err error
		if h.Role() == RoleAlice {
			_, err = RunInitiator(conn, h)
		} else {
			_, err = RunResponder(conn, h)
		}
		done <- err
	}()
	select {
	case err := <-done:
		return err
	case <-time.After(10 * time.Second):
		t.Fatalf("%s: handler hung on broken peer", name)
		return nil
	}
}

// readFrame consumes one length-prefixed frame from the raw stream.
func readFrame(t *testing.T, c net.Conn) []byte {
	t.Helper()
	var hdr [4]byte
	if _, err := io.ReadFull(c, hdr[:]); err != nil {
		t.Fatalf("reading peer frame header: %v", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	buf := make([]byte, n)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("reading peer frame payload: %v", err)
	}
	return buf
}

// TestMidHandshakeDisconnect: for every protocol and both roles, a peer
// that drops the connection mid-handshake — after reading the hello
// without answering (alice side), or before sending any hello (bob
// side) — must surface a prompt error, never a hang or panic.
func TestMidHandshakeDisconnect(t *testing.T) {
	for name, h := range failureHandlers(t) {
		t.Run(name, func(t *testing.T) {
			local, peer := duplex()
			defer local.Close()
			go func() {
				if h.Role() == RoleAlice {
					// Read the initiator's hello, then vanish without
					// an accept frame.
					readFrame(t, peer)
				}
				peer.Close()
			}()
			err := runWithDeadline(t, name, h, local)
			if err == nil {
				t.Fatal("mid-handshake disconnect not reported")
			}
		})
	}
}

// TestShortReadHeaderTruncation: the peer answers with a frame whose
// length prefix promises more bytes than it delivers before closing.
// Both roles of every protocol must fail with a payload read error,
// not a hang or a misparsed header.
func TestShortReadHeaderTruncation(t *testing.T) {
	truncated := func() []byte {
		// Header claims 64 payload bytes; only 5 follow.
		frame := make([]byte, 4+5)
		binary.BigEndian.PutUint32(frame, 64)
		copy(frame[4:], "RSYN?")
		return frame
	}
	for name, h := range failureHandlers(t) {
		t.Run(name, func(t *testing.T) {
			local, peer := duplex()
			defer local.Close()
			go func() {
				if h.Role() == RoleAlice {
					// Consume the hello so the initiator reaches its
					// accept read, then truncate the accept frame.
					readFrame(t, peer)
				}
				peer.Write(truncated()) //nolint:errcheck
				peer.Close()
			}()
			err := runWithDeadline(t, name, h, local)
			if err == nil {
				t.Fatal("truncated frame not reported")
			}
			if !strings.Contains(err.Error(), "recv payload") {
				t.Fatalf("want a payload read error, got: %v", err)
			}
		})
	}
}

package netproto

import (
	"repro/internal/emd"
	"repro/internal/gap"
	"repro/internal/hashx"
	"repro/internal/metric"
	"repro/internal/setsets"
	"repro/internal/transport"
)

func init() {
	RegisterProto(ProtoEMD, "emd")
	RegisterProto(ProtoGap, "gap")
	RegisterProto(ProtoSync, "sync")
	RegisterProto(ProtoSetSets, "setsets")
}

// ---------------------------------------------------------------------------
// Parameter digests. Each folds exactly the fields both parties must
// agree on; the session header carries the result.

// DigestEMD folds the fields of emd.Params both parties must agree on
// for their sketches to align: the space, the protocol scalars, and the
// geometry knobs (KeyBits, CellsPerLevel) that shape keys and RIBLT
// cells. Defaults are applied first, so a zero and an explicit default
// configuration agree. Purely local fields (Workers, MaxDecoded,
// PeelOrder) are deliberately excluded.
func DigestEMD(p emd.Params) uint64 {
	p.ApplyDefaults()
	m := hashx.MixerFromSeed(0x1807_09694)
	h := m.Hash(uint64(p.Space.Delta))
	h = m.Hash(h ^ uint64(p.Space.Dim))
	h = m.Hash(h ^ uint64(p.Space.Norm))
	h = m.Hash(h ^ uint64(p.N))
	h = m.Hash(h ^ uint64(p.K))
	h = m.Hash(h ^ uint64(int64(p.D1*1000)))
	h = m.Hash(h ^ uint64(int64(p.D2*1000)))
	h = m.Hash(h ^ uint64(p.Q))
	h = m.Hash(h ^ uint64(p.KeyBits))
	h = m.Hash(h ^ uint64(p.CellsPerLevel))
	h = m.Hash(h ^ p.Seed)
	return h
}

// DigestGap folds the fields of gap.Params both parties must agree on
// (after defaulting, so a zero and an explicit default configuration
// agree), including the SetSets tuning forwarded into the embedded
// multiset-reconciliation rounds — a strata or retry mismatch there
// fails mid-protocol, so it must fail the handshake instead.
func DigestGap(p gap.Params) uint64 {
	p.ApplyDefaults()
	m := hashx.MixerFromSeed(0x4a92)
	h := m.Hash(uint64(p.Space.Delta))
	h = m.Hash(h ^ uint64(p.Space.Dim))
	h = m.Hash(h ^ uint64(p.Space.Norm))
	h = m.Hash(h ^ uint64(p.N))
	h = m.Hash(h ^ uint64(int64(p.R1*1000)))
	h = m.Hash(h ^ uint64(int64(p.R2*1000)))
	h = m.Hash(h ^ uint64(p.HFactor))
	h = m.Hash(h ^ uint64(p.EntryBits))
	h = m.Hash(h ^ p.Seed)
	// PayloadBytes and Seed are derived by the gap plan itself; the
	// remaining setsets knobs come from the caller and must match.
	ss := p.SetSets
	ss.ApplyDefaults()
	h = m.Hash(h ^ uint64(ss.StrataCells))
	h = m.Hash(h ^ uint64(ss.Q))
	h = m.Hash(h ^ uint64(ss.MaxRetries))
	h = m.Hash(h ^ uint64(int64(ss.SafetyFactor*1000)))
	return h
}

// DigestSync folds SyncParams (after defaulting, so a zero and an
// explicit default configuration agree).
func DigestSync(p SyncParams) uint64 {
	p.applyDefaults()
	m := hashx.MixerFromSeed(0x51ab)
	h := m.Hash(p.Seed)
	h = m.Hash(h ^ uint64(p.StrataCells))
	h = m.Hash(h ^ uint64(p.MaxRetries))
	return h
}

// DigestSetSets folds setsets.Params both parties must agree on (after
// defaulting, so a zero and an explicit default configuration agree).
func DigestSetSets(p setsets.Params) uint64 {
	p.ApplyDefaults()
	m := hashx.MixerFromSeed(0xe55e75)
	h := m.Hash(uint64(p.PayloadBytes))
	h = m.Hash(h ^ p.Seed)
	h = m.Hash(h ^ uint64(p.StrataCells))
	h = m.Hash(h ^ uint64(p.Q))
	h = m.Hash(h ^ uint64(p.MaxRetries))
	h = m.Hash(h ^ uint64(int64(p.SafetyFactor*1000)))
	return h
}

// ---------------------------------------------------------------------------
// EMD (Algorithm 1). Alice ships her level-RIBLTs in a single message;
// Bob deletes his pairs and assembles S′B.

// EMDSender is Alice's EMD handler.
type EMDSender struct {
	Params emd.Params
	Set    metric.PointSet
	msg    []byte // prebuilt message (NewEMDSenderFactory); nil = build in Run
}

// NewEMDSender binds Alice's side of the EMD protocol to her point set.
func NewEMDSender(p emd.Params, sa metric.PointSet) *EMDSender {
	p.ApplyDefaults()
	return &EMDSender{Params: p, Set: sa}
}

// NewEMDSenderFactory precomputes Alice's message once — it is
// deterministic for a fixed (Params, Set) — and returns a
// server-registerable factory whose handlers all serve the cached
// bytes. This is the "reuse sketches" path: each additional peer costs
// a write instead of a full LSH + RIBLT rebuild.
func NewEMDSenderFactory(p emd.Params, sa metric.PointSet) (func() Handler, error) {
	p.ApplyDefaults()
	msg, err := emd.BuildMessage(p, sa)
	if err != nil {
		return nil, err
	}
	return func() Handler { return &EMDSender{Params: p, Set: sa, msg: msg} }, nil
}

// Proto implements Handler.
func (h *EMDSender) Proto() Proto { return ProtoEMD }

// Role implements Handler.
func (h *EMDSender) Role() Role { return RoleAlice }

// Digest implements Handler.
func (h *EMDSender) Digest() uint64 { return DigestEMD(h.Params) }

// Run implements Handler: send the single protocol message, building
// the sketch (sharded across workers when Params.Workers allows) unless
// the factory already did.
func (h *EMDSender) Run(conn transport.Conn) error {
	msg := h.msg
	if msg == nil {
		var err error
		if msg, err = emd.BuildMessage(h.Params, h.Set); err != nil {
			return err
		}
	}
	e := transport.NewEncoder()
	e.WriteBytes(msg)
	return conn.Send(e)
}

// EMDReceiver is Bob's EMD handler; Result is populated by Run.
type EMDReceiver struct {
	Params emd.Params
	Set    metric.PointSet
	Result emd.Result
}

// NewEMDReceiver binds Bob's side of the EMD protocol to his point set.
func NewEMDReceiver(p emd.Params, sb metric.PointSet) *EMDReceiver {
	p.ApplyDefaults()
	return &EMDReceiver{Params: p, Set: sb}
}

// Proto implements Handler.
func (h *EMDReceiver) Proto() Proto { return ProtoEMD }

// Role implements Handler.
func (h *EMDReceiver) Role() Role { return RoleBob }

// Digest implements Handler.
func (h *EMDReceiver) Digest() uint64 { return DigestEMD(h.Params) }

// Run implements Handler.
func (h *EMDReceiver) Run(conn transport.Conn) error {
	d, err := conn.Recv()
	if err != nil {
		return err
	}
	// Borrowed, not copied: ApplyMessage only reads the message, and the
	// frame stays live until the session's wire is released.
	msg, err := d.ReadBytesBorrow()
	if err != nil {
		return err
	}
	res, err := emd.ApplyMessage(h.Params, h.Set, msg)
	if err != nil {
		return err
	}
	if st, ok := transport.ConnStats(conn); ok {
		res.Stats = st
	}
	h.Result = res
	return nil
}

// ---------------------------------------------------------------------------
// Gap Guarantee (Theorem 4.2).

// GapSender is Alice's Gap handler; Report is populated by Run.
type GapSender struct {
	Params gap.Params
	Set    metric.PointSet
	Report gap.AliceReport
}

// NewGapSender binds Alice's side of the Gap protocol to her point set.
func NewGapSender(p gap.Params, sa metric.PointSet) *GapSender {
	p.ApplyDefaults()
	return &GapSender{Params: p, Set: sa}
}

// Proto implements Handler.
func (h *GapSender) Proto() Proto { return ProtoGap }

// Role implements Handler.
func (h *GapSender) Role() Role { return RoleAlice }

// Digest implements Handler.
func (h *GapSender) Digest() uint64 { return DigestGap(h.Params) }

// Run implements Handler.
func (h *GapSender) Run(conn transport.Conn) error {
	rep, err := gap.RunAlice(h.Params, conn, h.Set)
	if err != nil {
		return err
	}
	h.Report = rep
	return nil
}

// GapReceiver is Bob's Gap handler; Result is populated by Run.
type GapReceiver struct {
	Params gap.Params
	Set    metric.PointSet
	Result gap.Result
}

// NewGapReceiver binds Bob's side of the Gap protocol to his point set.
func NewGapReceiver(p gap.Params, sb metric.PointSet) *GapReceiver {
	p.ApplyDefaults()
	return &GapReceiver{Params: p, Set: sb}
}

// Proto implements Handler.
func (h *GapReceiver) Proto() Proto { return ProtoGap }

// Role implements Handler.
func (h *GapReceiver) Role() Role { return RoleBob }

// Digest implements Handler.
func (h *GapReceiver) Digest() uint64 { return DigestGap(h.Params) }

// Run implements Handler.
func (h *GapReceiver) Run(conn transport.Conn) error {
	res, err := gap.RunBob(h.Params, conn, h.Set)
	if err != nil {
		return err
	}
	if st, ok := transport.ConnStats(conn); ok {
		res.Stats = st
	}
	h.Result = res
	return nil
}

// ---------------------------------------------------------------------------
// Classic exact ID reconciliation (strata + IBLT + repair).

// SyncInitiator is the initiating Sync handler; TheirsOnly and MinesOnly
// are populated by Run.
type SyncInitiator struct {
	Params     SyncParams
	IDs        []uint64
	TheirsOnly []uint64
	MinesOnly  []uint64
}

// NewSyncInitiator binds the initiating side of ID reconciliation.
func NewSyncInitiator(p SyncParams, ids []uint64) *SyncInitiator {
	p.applyDefaults()
	return &SyncInitiator{Params: p, IDs: ids}
}

// Proto implements Handler.
func (h *SyncInitiator) Proto() Proto { return ProtoSync }

// Role implements Handler.
func (h *SyncInitiator) Role() Role { return RoleAlice }

// Digest implements Handler.
func (h *SyncInitiator) Digest() uint64 { return DigestSync(h.Params) }

// Run implements Handler.
func (h *SyncInitiator) Run(conn transport.Conn) error {
	theirs, mine, err := runSyncInitiator(conn, h.Params, h.IDs)
	if err != nil {
		return err
	}
	h.TheirsOnly, h.MinesOnly = theirs, mine
	return nil
}

// SyncResponder is the answering Sync handler; TheirsOnly is populated
// by Run.
type SyncResponder struct {
	Params     SyncParams
	IDs        []uint64
	TheirsOnly []uint64
}

// NewSyncResponder binds the answering side of ID reconciliation.
func NewSyncResponder(p SyncParams, ids []uint64) *SyncResponder {
	p.applyDefaults()
	return &SyncResponder{Params: p, IDs: ids}
}

// Proto implements Handler.
func (h *SyncResponder) Proto() Proto { return ProtoSync }

// Role implements Handler.
func (h *SyncResponder) Role() Role { return RoleBob }

// Digest implements Handler.
func (h *SyncResponder) Digest() uint64 { return DigestSync(h.Params) }

// Run implements Handler.
func (h *SyncResponder) Run(conn transport.Conn) error {
	theirs, err := runSyncResponder(conn, h.Params, h.IDs)
	if err != nil {
		return err
	}
	h.TheirsOnly = theirs
	return nil
}

// ---------------------------------------------------------------------------
// Multiset-of-sets reconciliation (Theorem E.1).

// SetSetsInitiator is the setsets Alice: after Run, Result holds the
// child-level difference.
type SetSetsInitiator struct {
	Params   setsets.Params
	Children []setsets.Child
	Result   setsets.Result
}

// NewSetSetsInitiator binds the recovering side of multiset-of-sets
// reconciliation to its children.
func NewSetSetsInitiator(p setsets.Params, children []setsets.Child) *SetSetsInitiator {
	return &SetSetsInitiator{Params: p, Children: children}
}

// Proto implements Handler.
func (h *SetSetsInitiator) Proto() Proto { return ProtoSetSets }

// Role implements Handler.
func (h *SetSetsInitiator) Role() Role { return RoleAlice }

// Digest implements Handler.
func (h *SetSetsInitiator) Digest() uint64 { return DigestSetSets(h.Params) }

// Run implements Handler.
func (h *SetSetsInitiator) Run(conn transport.Conn) error {
	res, err := setsets.RunAlice(h.Params, conn, h.Children)
	if err != nil {
		return err
	}
	h.Result = res
	return nil
}

// SetSetsResponder is the setsets Bob: it serves its multiset so the
// initiator can recover the difference.
type SetSetsResponder struct {
	Params   setsets.Params
	Children []setsets.Child
}

// NewSetSetsResponder binds the serving side of multiset-of-sets
// reconciliation to its children.
func NewSetSetsResponder(p setsets.Params, children []setsets.Child) *SetSetsResponder {
	return &SetSetsResponder{Params: p, Children: children}
}

// Proto implements Handler.
func (h *SetSetsResponder) Proto() Proto { return ProtoSetSets }

// Role implements Handler.
func (h *SetSetsResponder) Role() Role { return RoleBob }

// Digest implements Handler.
func (h *SetSetsResponder) Digest() uint64 { return DigestSetSets(h.Params) }

// Run implements Handler.
func (h *SetSetsResponder) Run(conn transport.Conn) error {
	return setsets.RunBob(h.Params, conn, h.Children)
}

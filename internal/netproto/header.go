package netproto

import (
	"fmt"
	"io"

	"repro/internal/store"
	"repro/internal/transport"
)

// The session header: the first frame of every session, sent by the
// initiating endpoint, answered by an accept frame from the peer. It
// replaces the old symmetric digest handshake — protocol selection and
// parameter-digest validation now happen in one negotiated exchange
// before any protocol traffic flows.
//
// Hello frame (initiator → peer):
//
//	magic   32 bits  0x5253594E ("RSYN")
//	version uvarint  wire format version (1 or 2)
//	proto   uvarint  Proto ID
//	role    uvarint  the initiator's Role
//	digest  64 bits  parameter digest (per-protocol fold of Params)
//	set     bytes    v2 only: set namespace (uvarint length + bytes)
//
// Accept frame (peer → initiator):
//
//	status  uvarint  Status code (0 = OK)
//	digest  64 bits  the peer's own digest, echoed for diagnostics
//
// Version negotiation is by construction: a v1 frame IS a v2 frame for
// the default (empty) namespace, and SendHello only emits version 2
// when a non-default set is named. A v1 peer therefore interoperates
// unchanged — it serves and dials the default set and never sees a v2
// frame unless the operator explicitly asks for a named set, in which
// case it fails fast with an unsupported-version error instead of
// silently reconciling against the wrong tenant.
//
// RSYN v3 (the multiplexed carrier) reuses the same first frame: a v3
// hello is magic + version 3 and nothing else — it opens a carrier
// connection, not a session, so it names no protocol or set. The
// accept frame answering it is the standard one (status + digest 0).
// A pre-v3 server rejects the version and drops the connection without
// an accept; a v3 dialer treats any failed carrier negotiation as "old
// peer" and falls back to dialing per-session v1/v2 connections whose
// bytes are identical to a pre-v3 dialer's.
const (
	helloMagic   = 0x5253_594E // "RSYN"
	wireVersion  = 1
	wireVersion2 = 2
	wireVersion3 = 3
)

// Status is the peer's verdict on a session hello.
type Status uint8

const (
	// StatusOK accepts the session; protocol traffic follows.
	StatusOK Status = 0
	// StatusUnknownProto rejects an unregistered or unserved protocol.
	StatusUnknownProto Status = 1
	// StatusRoleUnavailable rejects a role the peer cannot complement.
	StatusRoleUnavailable Status = 2
	// StatusDigestMismatch rejects disagreeing parameter digests.
	StatusDigestMismatch Status = 3
	// StatusUnknownSet rejects a v2 hello naming a set namespace the
	// peer does not host.
	StatusUnknownSet Status = 4
	// StatusMuxUnavailable rejects a multiplexed-carrier hello (RSYN
	// v3) on an endpoint that only runs one session per connection.
	StatusMuxUnavailable Status = 5
)

// String names the status for errors and logs.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusUnknownProto:
		return "unknown protocol"
	case StatusRoleUnavailable:
		return "role unavailable"
	case StatusDigestMismatch:
		return "parameter digest mismatch"
	case StatusUnknownSet:
		return "unknown set"
	case StatusMuxUnavailable:
		return "multiplexing unavailable"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Hello is the decoded session header.
type Hello struct {
	Proto  Proto
	Role   Role // the initiator's role
	Digest uint64
	// Set is the named-set namespace (RSYN v2). Empty is the default
	// set — the only namespace a v1 peer can address.
	Set string
	// Mux marks an RSYN v3 carrier hello: the connection will carry
	// many multiplexed session streams rather than one session, so
	// Proto, Role, Digest, and Set are all zero.
	Mux bool
}

// ValidSetName reports whether s may be carried in a v2 hello. The rule
// is the registry's (store.ValidName: at most 255 bytes, no control
// characters), so a name that can be created can be addressed and vice
// versa. The empty name is valid — it is the default namespace and
// travels as a v1 frame.
func ValidSetName(s string) bool { return store.ValidName(s) }

// SendHello writes the session header frame: a v1 frame for the default
// set, a v2 frame carrying the namespace otherwise, and a bare v3 frame
// (magic + version, nothing else) for a carrier hello.
func SendHello(w *Wire, h Hello) error {
	if h.Mux {
		if h.Proto != 0 || h.Role != 0 || h.Digest != 0 || h.Set != "" {
			return fmt.Errorf("netproto: carrier hello must not carry session fields")
		}
		e := transport.NewEncoder()
		e.WriteBits(helloMagic, 32)
		e.WriteUvarint(wireVersion3)
		return w.Send(e)
	}
	if !ValidSetName(h.Set) {
		return fmt.Errorf("netproto: invalid set name %q in hello", h.Set)
	}
	e := transport.NewEncoder()
	e.WriteBits(helloMagic, 32)
	if h.Set == "" {
		e.WriteUvarint(wireVersion)
	} else {
		e.WriteUvarint(wireVersion2)
	}
	e.WriteUvarint(uint64(h.Proto))
	e.WriteUvarint(uint64(h.Role))
	e.WriteUint64(h.Digest)
	if h.Set != "" {
		e.WriteBytes([]byte(h.Set))
	}
	return w.Send(e)
}

// ReadHello reads and validates the session header frame.
func ReadHello(w *Wire) (Hello, error) {
	d, err := w.Recv()
	if err != nil {
		return Hello{}, err
	}
	magic, err := d.ReadBits(32)
	if err != nil {
		return Hello{}, err
	}
	if magic != helloMagic {
		return Hello{}, fmt.Errorf("netproto: bad hello magic %#x", magic)
	}
	ver, err := d.ReadUvarint()
	if err != nil {
		return Hello{}, err
	}
	if ver == wireVersion3 {
		// A carrier hello is magic + version and nothing else; trailing
		// bytes mean a corrupt or hostile frame, not a future extension.
		if d.Remaining() != 0 {
			return Hello{}, fmt.Errorf("netproto: %d trailing bytes in carrier hello", d.Remaining())
		}
		return Hello{Mux: true}, nil
	}
	if ver != wireVersion && ver != wireVersion2 {
		return Hello{}, fmt.Errorf("netproto: unsupported wire version %d", ver)
	}
	proto, err := d.ReadUvarint()
	if err != nil {
		return Hello{}, err
	}
	// Range-check before narrowing: 257 must not alias to proto 1.
	if proto == 0 || proto > 0xff {
		return Hello{}, fmt.Errorf("netproto: bad proto %d in hello", proto)
	}
	role, err := d.ReadUvarint()
	if err != nil {
		return Hello{}, err
	}
	if role > uint64(RoleBob) {
		return Hello{}, fmt.Errorf("netproto: bad role %d in hello", role)
	}
	digest, err := d.ReadUint64()
	if err != nil {
		return Hello{}, err
	}
	h := Hello{Proto: Proto(proto), Role: Role(role), Digest: digest}
	if ver == wireVersion2 {
		set, err := d.ReadBytes()
		if err != nil {
			return Hello{}, err
		}
		h.Set = string(set)
		if h.Set == "" || !ValidSetName(h.Set) {
			// An empty v2 namespace must travel as a v1 frame — allowing
			// both would give the default set two wire spellings.
			return Hello{}, fmt.Errorf("netproto: bad set name %q in v2 hello", h.Set)
		}
	}
	return h, nil
}

// SendAccept writes the accept frame answering a hello.
func SendAccept(w *Wire, st Status, digest uint64) error {
	e := transport.NewEncoder()
	e.WriteUvarint(uint64(st))
	e.WriteUint64(digest)
	return w.Send(e)
}

// ReadAccept reads the accept frame.
func ReadAccept(w *Wire) (Status, uint64, error) {
	d, err := w.Recv()
	if err != nil {
		return 0, 0, err
	}
	st, err := d.ReadUvarint()
	if err != nil {
		return 0, 0, err
	}
	// Range-check before narrowing: a status of 256 must not alias to
	// StatusOK and turn a rejection into an acceptance.
	if st > 0xff {
		return 0, 0, fmt.Errorf("netproto: bad status %d in accept", st)
	}
	digest, err := d.ReadUint64()
	if err != nil {
		return 0, 0, err
	}
	return Status(st), digest, nil
}

// Initiate opens a session for h against the peer's default set: it
// sends the hello and waits for the peer's accept. On return with nil
// error the wire is ready for h.Run.
func Initiate(w *Wire, h Handler) error {
	return InitiateSet(w, h, "")
}

// InitiateSet opens a session for h against the named set on the peer
// (empty = default). Naming a set emits an RSYN v2 hello; a v1 peer
// rejects it with an unsupported-version failure rather than serving
// the wrong tenant.
func InitiateSet(w *Wire, h Handler, set string) error {
	if err := SendHello(w, Hello{Proto: h.Proto(), Role: h.Role(), Digest: h.Digest(), Set: set}); err != nil {
		return err
	}
	st, peerDigest, err := ReadAccept(w)
	if err != nil {
		return err
	}
	if st != StatusOK {
		return fmt.Errorf("netproto: peer rejected %v session: %v (local digest %#x, peer %#x)",
			h.Proto(), st, h.Digest(), peerDigest)
	}
	return nil
}

// InitiateMux negotiates an RSYN v3 carrier over w: it sends the bare
// v3 hello and waits for the peer's accept. Any failure — a pre-v3
// peer errors on the version and drops the connection without an
// accept — means the connection cannot carry multiplexed streams; the
// caller falls back to per-session dialing.
func InitiateMux(w *Wire) error {
	if err := SendHello(w, Hello{Mux: true}); err != nil {
		return err
	}
	st, _, err := ReadAccept(w)
	if err != nil {
		return err
	}
	if st != StatusOK {
		return fmt.Errorf("netproto: peer rejected carrier: %v", st)
	}
	return nil
}

// PendingSession is a session whose hello has been sent but whose
// accept has not yet been read: the initiator's opening protocol
// frames travel in the same flight as the hello, saving one round trip
// per session on a multiplexed carrier. The accept is validated lazily
// — immediately before the first protocol frame is read via Conn, or
// explicitly via Complete.
type PendingSession struct {
	w       *Wire
	h       Handler
	checked bool
	err     error
}

// InitiateSetPipelined sends the hello for h against the named set
// without waiting for the peer's accept.
func InitiateSetPipelined(w *Wire, h Handler, set string) (*PendingSession, error) {
	if err := SendHello(w, Hello{Proto: h.Proto(), Role: h.Role(), Digest: h.Digest(), Set: set}); err != nil {
		return nil, err
	}
	return &PendingSession{w: w, h: h}, nil
}

// Complete reads and validates the peer's accept if it has not been
// consumed yet. Callers run it after the handler finishes, so a
// rejection is surfaced even when the handler never received a frame.
func (p *PendingSession) Complete() error {
	if p.checked {
		return p.err
	}
	p.checked = true
	st, peerDigest, err := ReadAccept(p.w)
	if err != nil {
		p.err = err
		return p.err
	}
	if st != StatusOK {
		p.err = fmt.Errorf("netproto: peer rejected %v session: %v (local digest %#x, peer %#x)",
			p.h.Proto(), st, p.h.Digest(), peerDigest)
	}
	return p.err
}

// Conn returns the connection to run the handler over: sends pass
// through, and the first receive consumes the peer's accept before
// returning protocol frames.
func (p *PendingSession) Conn() transport.Conn { return pendingConn{p} }

type pendingConn struct{ p *PendingSession }

func (c pendingConn) Send(e *transport.Encoder) error { return c.p.w.Send(e) }

func (c pendingConn) Recv() (*transport.Decoder, error) {
	if err := c.p.Complete(); err != nil {
		return nil, err
	}
	return c.p.w.Recv()
}

// Accept answers an initiator's hello on behalf of the bound handler h:
// the hello must name h's protocol, the complementary role, and an equal
// digest. On any mismatch the rejecting status is sent before the error
// returns, so the initiator fails with a reason rather than a dead
// stream. This is the two-party path; session.Server performs the same
// validation against its handler registry.
func Accept(w *Wire, h Handler) error {
	hello, err := ReadHello(w)
	if err != nil {
		return err
	}
	if hello.Mux {
		SendAccept(w, StatusMuxUnavailable, h.Digest())
		return fmt.Errorf("netproto: peer wants a multiplexed carrier, two-party handler runs one session per connection")
	}
	if hello.Set != "" {
		// The two-party path serves exactly one handler and no named
		// sets; multi-tenant serving is session.Server's job.
		SendAccept(w, StatusUnknownSet, h.Digest())
		return fmt.Errorf("netproto: peer wants set %q, two-party handler serves only the default set", hello.Set)
	}
	if hello.Proto != h.Proto() {
		SendAccept(w, StatusUnknownProto, h.Digest())
		return fmt.Errorf("netproto: peer wants %v, handler speaks %v", hello.Proto, h.Proto())
	}
	if hello.Role != h.Role().Peer() {
		SendAccept(w, StatusRoleUnavailable, h.Digest())
		return fmt.Errorf("netproto: peer plays %v, handler also plays %v", hello.Role, h.Role())
	}
	if hello.Digest != h.Digest() {
		SendAccept(w, StatusDigestMismatch, h.Digest())
		return fmt.Errorf("netproto: parameter digest mismatch (local %#x, peer %#x)",
			h.Digest(), hello.Digest)
	}
	return SendAccept(w, StatusOK, h.Digest())
}

// RunInitiator negotiates a session for h over rw and runs its state
// machine; the wire is returned for traffic accounting.
func RunInitiator(rw io.ReadWriter, h Handler) (*Wire, error) {
	w := NewWire(rw)
	if err := Initiate(w, h); err != nil {
		return w, err
	}
	return w, h.Run(w)
}

// RunResponder answers a session for h over rw and runs its state
// machine; the wire is returned for traffic accounting.
func RunResponder(rw io.ReadWriter, h Handler) (*Wire, error) {
	w := NewWire(rw)
	if err := Accept(w, h); err != nil {
		return w, err
	}
	return w, h.Run(w)
}

package netproto

import (
	"fmt"
	"io"

	"repro/internal/transport"
)

// The session header: the first frame of every session, sent by the
// initiating endpoint, answered by an accept frame from the peer. It
// replaces the old symmetric digest handshake — protocol selection and
// parameter-digest validation now happen in one negotiated exchange
// before any protocol traffic flows.
//
// Hello frame (initiator → peer):
//
//	magic   32 bits  0x5253594E ("RSYN")
//	version uvarint  wire format version (currently 1)
//	proto   uvarint  Proto ID
//	role    uvarint  the initiator's Role
//	digest  64 bits  parameter digest (per-protocol fold of Params)
//
// Accept frame (peer → initiator):
//
//	status  uvarint  Status code (0 = OK)
//	digest  64 bits  the peer's own digest, echoed for diagnostics
const (
	helloMagic  = 0x5253_594E // "RSYN"
	wireVersion = 1
)

// Status is the peer's verdict on a session hello.
type Status uint8

const (
	// StatusOK accepts the session; protocol traffic follows.
	StatusOK Status = 0
	// StatusUnknownProto rejects an unregistered or unserved protocol.
	StatusUnknownProto Status = 1
	// StatusRoleUnavailable rejects a role the peer cannot complement.
	StatusRoleUnavailable Status = 2
	// StatusDigestMismatch rejects disagreeing parameter digests.
	StatusDigestMismatch Status = 3
)

// String names the status for errors and logs.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusUnknownProto:
		return "unknown protocol"
	case StatusRoleUnavailable:
		return "role unavailable"
	case StatusDigestMismatch:
		return "parameter digest mismatch"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Hello is the decoded session header.
type Hello struct {
	Proto  Proto
	Role   Role // the initiator's role
	Digest uint64
}

// SendHello writes the session header frame.
func SendHello(w *Wire, h Hello) error {
	e := transport.NewEncoder()
	e.WriteBits(helloMagic, 32)
	e.WriteUvarint(wireVersion)
	e.WriteUvarint(uint64(h.Proto))
	e.WriteUvarint(uint64(h.Role))
	e.WriteUint64(h.Digest)
	return w.Send(e)
}

// ReadHello reads and validates the session header frame.
func ReadHello(w *Wire) (Hello, error) {
	d, err := w.Recv()
	if err != nil {
		return Hello{}, err
	}
	magic, err := d.ReadBits(32)
	if err != nil {
		return Hello{}, err
	}
	if magic != helloMagic {
		return Hello{}, fmt.Errorf("netproto: bad hello magic %#x", magic)
	}
	ver, err := d.ReadUvarint()
	if err != nil {
		return Hello{}, err
	}
	if ver != wireVersion {
		return Hello{}, fmt.Errorf("netproto: unsupported wire version %d", ver)
	}
	proto, err := d.ReadUvarint()
	if err != nil {
		return Hello{}, err
	}
	// Range-check before narrowing: 257 must not alias to proto 1.
	if proto == 0 || proto > 0xff {
		return Hello{}, fmt.Errorf("netproto: bad proto %d in hello", proto)
	}
	role, err := d.ReadUvarint()
	if err != nil {
		return Hello{}, err
	}
	if role > uint64(RoleBob) {
		return Hello{}, fmt.Errorf("netproto: bad role %d in hello", role)
	}
	digest, err := d.ReadUint64()
	if err != nil {
		return Hello{}, err
	}
	return Hello{Proto: Proto(proto), Role: Role(role), Digest: digest}, nil
}

// SendAccept writes the accept frame answering a hello.
func SendAccept(w *Wire, st Status, digest uint64) error {
	e := transport.NewEncoder()
	e.WriteUvarint(uint64(st))
	e.WriteUint64(digest)
	return w.Send(e)
}

// ReadAccept reads the accept frame.
func ReadAccept(w *Wire) (Status, uint64, error) {
	d, err := w.Recv()
	if err != nil {
		return 0, 0, err
	}
	st, err := d.ReadUvarint()
	if err != nil {
		return 0, 0, err
	}
	// Range-check before narrowing: a status of 256 must not alias to
	// StatusOK and turn a rejection into an acceptance.
	if st > 0xff {
		return 0, 0, fmt.Errorf("netproto: bad status %d in accept", st)
	}
	digest, err := d.ReadUint64()
	if err != nil {
		return 0, 0, err
	}
	return Status(st), digest, nil
}

// Initiate opens a session for h: it sends the hello and waits for the
// peer's accept. On return with nil error the wire is ready for h.Run.
func Initiate(w *Wire, h Handler) error {
	if err := SendHello(w, Hello{Proto: h.Proto(), Role: h.Role(), Digest: h.Digest()}); err != nil {
		return err
	}
	st, peerDigest, err := ReadAccept(w)
	if err != nil {
		return err
	}
	if st != StatusOK {
		return fmt.Errorf("netproto: peer rejected %v session: %v (local digest %#x, peer %#x)",
			h.Proto(), st, h.Digest(), peerDigest)
	}
	return nil
}

// Accept answers an initiator's hello on behalf of the bound handler h:
// the hello must name h's protocol, the complementary role, and an equal
// digest. On any mismatch the rejecting status is sent before the error
// returns, so the initiator fails with a reason rather than a dead
// stream. This is the two-party path; session.Server performs the same
// validation against its handler registry.
func Accept(w *Wire, h Handler) error {
	hello, err := ReadHello(w)
	if err != nil {
		return err
	}
	if hello.Proto != h.Proto() {
		SendAccept(w, StatusUnknownProto, h.Digest())
		return fmt.Errorf("netproto: peer wants %v, handler speaks %v", hello.Proto, h.Proto())
	}
	if hello.Role != h.Role().Peer() {
		SendAccept(w, StatusRoleUnavailable, h.Digest())
		return fmt.Errorf("netproto: peer plays %v, handler also plays %v", hello.Role, h.Role())
	}
	if hello.Digest != h.Digest() {
		SendAccept(w, StatusDigestMismatch, h.Digest())
		return fmt.Errorf("netproto: parameter digest mismatch (local %#x, peer %#x)",
			h.Digest(), hello.Digest)
	}
	return SendAccept(w, StatusOK, h.Digest())
}

// RunInitiator negotiates a session for h over rw and runs its state
// machine; the wire is returned for traffic accounting.
func RunInitiator(rw io.ReadWriter, h Handler) (*Wire, error) {
	w := NewWire(rw)
	if err := Initiate(w, h); err != nil {
		return w, err
	}
	return w, h.Run(w)
}

// RunResponder answers a session for h over rw and runs its state
// machine; the wire is returned for traffic accounting.
func RunResponder(rw io.ReadWriter, h Handler) (*Wire, error) {
	w := NewWire(rw)
	if err := Accept(w, h); err != nil {
		return w, err
	}
	return w, h.Run(w)
}

package netproto

import (
	"errors"
	"sort"
	"testing"

	"repro/internal/emd"
	"repro/internal/live"
	"repro/internal/metric"
	"repro/internal/rng"
)

func clusterPoints(space metric.Space, n int, seed uint64) metric.PointSet {
	src := rng.New(seed)
	out := make(metric.PointSet, n)
	for i := range out {
		pt := make(metric.Point, space.Dim)
		for j := range pt {
			pt[j] = int32(src.Uint64() % uint64(space.Delta+1))
		}
		out[i] = pt
	}
	return out
}

func newSyncSet(t *testing.T, space metric.Space, pts metric.PointSet, seed uint64) *live.Set {
	t.Helper()
	ls, err := live.NewSet(live.Config{Sync: &live.SyncConfig{Seed: seed}}, pts)
	if err != nil {
		t.Fatal(err)
	}
	return ls
}

// runPair drives an initiator/responder handler pair over a duplex pipe.
func runPair(t *testing.T, init, resp Handler) {
	t.Helper()
	a, b := duplex()
	defer a.Close()
	defer b.Close()
	errc := make(chan error, 1)
	go func() {
		_, err := RunResponder(b, resp)
		errc <- err
	}()
	if _, err := RunInitiator(a, init); err != nil {
		t.Fatalf("initiator: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("responder: %v", err)
	}
}

func idsOf(ls *live.Set) []uint64 {
	ids := append([]uint64(nil), ls.Snapshot().IDs...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func TestProbeMatchAndEstimate(t *testing.T) {
	space := metric.HammingCube(64)
	shared := clusterPoints(space, 50, 1)
	a := newSyncSet(t, space, shared, 9)
	b := newSyncSet(t, space, shared, 9)

	probe := NewProbeInitiator(a)
	runPair(t, probe, NewProbeResponderFactory(b)())
	if !probe.Matched {
		t.Fatalf("identical sets did not match: local %+v remote %+v", probe.Local, probe.Remote)
	}
	if probe.Estimate != 0 {
		t.Fatalf("identical sets estimate = %d, want 0", probe.Estimate)
	}

	// Diverge b by 12 points and probe again.
	for _, pt := range clusterPoints(space, 12, 2) {
		if err := b.Add(pt); err != nil {
			t.Fatal(err)
		}
	}
	probe = NewProbeInitiator(a)
	runPair(t, probe, NewProbeResponderFactory(b)())
	if probe.Matched {
		t.Fatal("diverged sets matched")
	}
	if probe.Estimate <= 0 {
		t.Fatalf("diverged sets estimate = %d, want > 0", probe.Estimate)
	}
	if probe.Remote.Distinct != 62 {
		t.Fatalf("remote distinct = %d, want 62", probe.Remote.Distinct)
	}
}

func TestProbeDigestEnforcesSetConfig(t *testing.T) {
	space := metric.HammingCube(32)
	a := newSyncSet(t, space, clusterPoints(space, 10, 1), 9)
	b := newSyncSet(t, space, clusterPoints(space, 10, 1), 10) // different seed

	conn1, conn2 := duplex()
	defer conn1.Close()
	defer conn2.Close()
	errc := make(chan error, 1)
	go func() {
		_, err := RunResponder(conn2, NewProbeResponderFactory(b)())
		errc <- err
	}()
	if _, err := RunInitiator(conn1, NewProbeInitiator(a)); err == nil {
		t.Fatal("probe across mismatched sync seeds accepted")
	}
	if err := <-errc; err == nil {
		t.Fatal("responder accepted mismatched digest")
	}
}

func testRepairConverges(t *testing.T, hint int) {
	space := metric.HammingCube(64)
	shared := clusterPoints(space, 40, 1)
	a := newSyncSet(t, space, append(shared.Clone(), clusterPoints(space, 7, 2)...), 9)
	b := newSyncSet(t, space, append(shared.Clone(), clusterPoints(space, 5, 3)...), 9)

	init, err := NewRepairInitiator(a, hint)
	if err != nil {
		t.Fatal(err)
	}
	respFactory, err := NewRepairResponderFactory(b)
	if err != nil {
		t.Fatal(err)
	}
	resp := respFactory().(*RepairResponder)
	runPair(t, init, resp)

	if init.Sent != 7 || init.Received != 5 || init.Applied != 5 {
		t.Fatalf("initiator sent/recv/applied = %d/%d/%d, want 7/5/5",
			init.Sent, init.Received, init.Applied)
	}
	if resp.Sent != 5 || resp.Received != 7 || resp.Applied != 7 {
		t.Fatalf("responder sent/recv/applied = %d/%d/%d, want 5/7/7",
			resp.Sent, resp.Received, resp.Applied)
	}
	aIDs, bIDs := idsOf(a), idsOf(b)
	if len(aIDs) != 52 || len(bIDs) != 52 {
		t.Fatalf("post-repair sizes %d/%d, want 52/52", len(aIDs), len(bIDs))
	}
	for i := range aIDs {
		if aIDs[i] != bIDs[i] {
			t.Fatalf("ID sets diverge at %d: %#x vs %#x", i, aIDs[i], bIDs[i])
		}
	}
	if a.IDFingerprint() != b.IDFingerprint() {
		t.Fatalf("fingerprints diverge: %#x vs %#x", a.IDFingerprint(), b.IDFingerprint())
	}
}

func TestRepairConvergesWithStrata(t *testing.T) { testRepairConverges(t, 0) }

func TestRepairConvergesWithHint(t *testing.T) { testRepairConverges(t, 12) }

// An absurd hint (beyond the IBLT sizing limit) must not be sent as-is:
// the initiator falls back to the strata round and the session still
// converges.
func TestRepairConvergesWithOversizedHint(t *testing.T) { testRepairConverges(t, repairMaxDiff+1) }

func TestRepairIdenticalSetsIsNoop(t *testing.T) {
	space := metric.HammingCube(32)
	shared := clusterPoints(space, 30, 4)
	a := newSyncSet(t, space, shared, 9)
	b := newSyncSet(t, space, shared, 9)
	epochA, epochB := a.Epoch(), b.Epoch()

	init, err := NewRepairInitiator(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewRepairResponderFactory(b)
	if err != nil {
		t.Fatal(err)
	}
	runPair(t, init, f())
	if init.Sent != 0 || init.Received != 0 || init.Applied != 0 {
		t.Fatalf("no-op repair moved points: %+v", init)
	}
	// MergeAbsent of nothing must not burn an epoch.
	if a.Epoch() != epochA || b.Epoch() != epochB {
		t.Fatalf("no-op repair bumped epochs: %d→%d, %d→%d", epochA, a.Epoch(), epochB, b.Epoch())
	}
}

func TestVerifyRepairPayload(t *testing.T) {
	const seed = 9
	pts := metric.PointSet{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}
	ids := make([]uint64, len(pts))
	for i, pt := range pts {
		ids[i] = live.PointID(seed, pt)
	}

	if err := verifyRepairPayload(seed, nil, nil); err != nil {
		t.Fatalf("empty payload rejected: %v", err)
	}
	if err := verifyRepairPayload(seed, ids, pts); err != nil {
		t.Fatalf("honest payload rejected: %v", err)
	}
	// A shorter list than requested is legitimate churn.
	if err := verifyRepairPayload(seed, ids, pts[:1]); err != nil {
		t.Fatalf("subset payload rejected: %v", err)
	}
	// One corrupted coordinate: the point no longer hashes to any
	// requested ID.
	bad := pts.Clone()
	bad[1][0]++
	err := verifyRepairPayload(seed, ids, bad)
	if err == nil {
		t.Fatal("corrupted point accepted")
	}
	if err.Mismatched != 1 || err.Total != 3 {
		t.Fatalf("verdict = %+v, want 1 of 3 mismatched", err)
	}
	// More points than requested is corruption even if each hashes to a
	// wanted ID.
	if err := verifyRepairPayload(seed, ids[:1], pts); err == nil {
		t.Fatal("oversized payload accepted")
	}
	// The wrong derivation seed rejects everything: the IDs cannot match.
	if err := verifyRepairPayload(seed+1, ids, pts); err == nil {
		t.Fatal("payload under the wrong seed accepted")
	}
}

// TestRepairRejectsCorruptPayload is the end-to-end verify-before-merge
// check: a responder serving corrupted point payloads must be detected
// by the initiator, which returns *CorruptPayloadError, applies
// nothing, and burns no epoch.
func TestRepairRejectsCorruptPayload(t *testing.T) {
	space := metric.HammingCube(64)
	shared := clusterPoints(space, 40, 1)
	a := newSyncSet(t, space, append(shared.Clone(), clusterPoints(space, 7, 2)...), 9)
	b := newSyncSet(t, space, append(shared.Clone(), clusterPoints(space, 5, 3)...), 9)
	fpA, epochA := a.IDFingerprint(), a.Epoch()

	init, err := NewRepairInitiator(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewCorruptingRepairResponderFactory(b)
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := duplex()
	defer c1.Close()
	defer c2.Close()
	errc := make(chan error, 1)
	go func() {
		_, err := RunResponder(c2, f())
		errc <- err
	}()
	_, err = RunInitiator(c1, init)
	<-errc // responder completed before the initiator's verdict; outcome irrelevant
	var cerr *CorruptPayloadError
	if !errors.As(err, &cerr) {
		t.Fatalf("initiator error = %v, want *CorruptPayloadError", err)
	}
	if cerr.Mismatched != 5 || cerr.Total != 5 {
		t.Fatalf("verdict = %+v, want all 5 points mismatched", cerr)
	}
	if init.Applied != 0 || init.Rejected != 5 {
		t.Fatalf("applied/rejected = %d/%d, want 0/5", init.Applied, init.Rejected)
	}
	if a.IDFingerprint() != fpA {
		t.Fatal("rejected batch still changed the local set")
	}
	if a.Epoch() != epochA {
		t.Fatalf("rejected batch burned an epoch: %d -> %d", epochA, a.Epoch())
	}
}

func TestRepairRequiresSyncState(t *testing.T) {
	space := metric.HammingCube(32)
	p := emd.DefaultParams(space, 16, 2, 5)
	ls, err := live.NewSet(live.Config{EMD: &p}, clusterPoints(space, 8, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRepairInitiator(ls, 0); err == nil {
		t.Fatal("repair initiator accepted a set without Sync state")
	}
	if _, err := NewRepairResponderFactory(ls); err == nil {
		t.Fatal("repair responder accepted a set without Sync state")
	}
}

// Package experiments regenerates every evaluation artifact of the
// reproduction. The paper is a theory paper with no measurement tables of
// its own, so each experiment here operationalizes one theorem, lemma, or
// figure: it runs the implemented protocols/structures on planted
// workloads and prints rows whose *shape* (who wins, growth rates,
// thresholds, success probabilities) must match the claimed bound.
// EXPERIMENTS.md records paper-claim vs measured for each.
package experiments

import (
	"fmt"
	"sort"

	"repro/internal/stats"
)

// Config tunes how heavy an experiment run is.
type Config struct {
	// Seed drives all randomness; a fixed seed reproduces tables
	// exactly.
	Seed uint64
	// Quick cuts trial counts and sweep sizes (used by `go test` and
	// the benchmark harness; the full tables use Quick=false).
	Quick bool
}

// trials picks a trial count by mode.
func (c Config) trials(full, quick int) int {
	if c.Quick {
		return quick
	}
	return full
}

// Experiment is one reproducible evaluation artifact.
type Experiment struct {
	// ID matches the EXPERIMENTS.md index (E1…E12, A1…).
	ID string
	// Title is a one-line description.
	Title string
	// Claim cites the paper artifact being checked.
	Claim string
	// Run produces the table. It must be deterministic given cfg.Seed.
	Run func(cfg Config) (*stats.Table, error)
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every experiment, ordered by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool {
		// Numeric-aware ordering: E2 < E10.
		return lessID(out[i].ID, out[j].ID)
	})
	return out
}

func lessID(a, b string) bool {
	pa, na := splitID(a)
	pb, nb := splitID(b)
	if pa != pb {
		return pa < pb
	}
	return na < nb
}

func splitID(id string) (string, int) {
	i := 0
	for i < len(id) && (id[i] < '0' || id[i] > '9') {
		i++
	}
	n := 0
	fmt.Sscanf(id[i:], "%d", &n)
	return id[:i], n
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

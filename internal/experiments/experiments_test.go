package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9",
		"E10", "E11", "E12", "E13", "E14", "A1", "A2"}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(All()) < len(want) {
		t.Errorf("registry has %d experiments, want >= %d", len(All()), len(want))
	}
}

func TestAllOrderedByID(t *testing.T) {
	all := All()
	for i := 1; i < len(all); i++ {
		if !lessID(all[i-1].ID, all[i].ID) {
			t.Errorf("ordering: %s before %s", all[i-1].ID, all[i].ID)
		}
	}
}

func TestLessID(t *testing.T) {
	if !lessID("E2", "E10") {
		t.Error("E2 should sort before E10")
	}
	if lessID("E10", "E2") {
		t.Error("E10 should not sort before E2")
	}
	if !lessID("A1", "E1") {
		t.Error("A1 should sort before E1")
	}
}

// TestAllExperimentsRunQuick executes every experiment in Quick mode and
// requires a nonempty table. This is the integration test of the entire
// stack: every protocol, substrate, and workload generator runs here.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep still takes seconds")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Run(Config{Seed: 12345, Quick: true})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if tbl.Rows() == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			if e.Title == "" || e.Claim == "" {
				t.Errorf("%s missing metadata", e.ID)
			}
		})
	}
}

// TestE1ThresholdShape asserts the Theorem 2.6 shape on the produced
// table: success ~1 at low load, ~0 well above the threshold.
func TestE1ThresholdShape(t *testing.T) {
	e, _ := ByID("E1")
	tbl, err := e.Run(Config{Seed: 7, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Parse: columns q, load, m, success, trials.
	var low, high float64
	lowSet, highSet := false, false
	for _, ln := range lines[2:] {
		f := strings.Fields(ln)
		if len(f) < 5 {
			continue
		}
		load, err1 := strconv.ParseFloat(f[1], 64)
		succ, err2 := strconv.ParseFloat(f[3], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		if load == 0.4 && !lowSet {
			low, lowSet = succ, true
		}
		if load == 1.0 && !highSet {
			high, highSet = succ, true
		}
	}
	if !lowSet || !highSet {
		t.Fatalf("could not locate threshold rows in:\n%s", out)
	}
	if low < 0.95 {
		t.Errorf("success at load 0.4 = %v, want ~1", low)
	}
	if high > 0.2 {
		t.Errorf("success at load 1.0 = %v, want ~0", high)
	}
}

// TestE11LowerBoundShape asserts the Theorem 4.6 contrast: the 4-round
// protocol succeeds, the one-round straw men fail.
func TestE11LowerBoundShape(t *testing.T) {
	e, _ := ByID("E11")
	tbl, err := e.Run(Config{Seed: 11, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	rates := map[string]float64{}
	for _, ln := range lines[2:] {
		f := strings.Fields(ln)
		if len(f) < 5 {
			continue
		}
		r, err := strconv.ParseFloat(f[3], 64)
		if err != nil {
			continue
		}
		rates[f[0]] = r
	}
	if rates["gap(4-round)"] < 0.8 {
		t.Errorf("gap protocol success = %v, want ~1\n%s", rates["gap(4-round)"], out)
	}
	if rates["truncated-naive(1-round)"] > 0.5 {
		t.Errorf("truncated straw man success = %v, want < 1/2", rates["truncated-naive(1-round)"])
	}
	if rates["exact-IBLT(1-round)"] > 0.34 {
		t.Errorf("IBLT straw man success = %v, want ~0", rates["exact-IBLT(1-round)"])
	}
}

package experiments

import (
	"repro/internal/hashx"
	"repro/internal/iblt"
	"repro/internal/metric"
	"repro/internal/transport"
)

// Helpers for the E11 lower-bound experiment's one-round straw man
// protocols. The shared key mixer plays the role of public coins.

// packPoint serializes a binary point to bytes (1 bit per coordinate).
func packPoint(p metric.Point) []byte {
	e := transport.NewEncoder()
	for _, c := range p {
		e.WriteBits(uint64(c), 1)
	}
	data, _ := e.Pack()
	return data
}

// unpackPoint reverses packPoint; returns nil on short payloads.
func unpackPoint(payload []byte, d int) metric.Point {
	dec := transport.NewDecoder(payload)
	p := make(metric.Point, d)
	for i := range p {
		v, err := dec.ReadBits(1)
		if err != nil {
			return nil
		}
		p[i] = int32(v)
	}
	return p
}

// ibltOfPoints is the "exact one-round reconciliation" straw man: Alice
// packs her points into a KV IBLT with the given (tiny) cell budget and
// sends it through ch; the returned table is Bob's received copy.
func ibltOfPoints(sa metric.PointSet, cells int, mix hashx.Mixer, seed uint64, ch *transport.Channel) (*iblt.KVTable, error) {
	valBytes := (len(sa[0]) + 7) / 8
	tb := iblt.NewKV(cells, 3, valBytes, seed)
	for _, p := range sa {
		tb.Insert(mix.HashInts(p), packPoint(p))
	}
	e := transport.NewEncoder()
	tb.Encode(e)
	ch.Send(transport.AliceToBob, e)
	recv, err := ch.Recv(transport.AliceToBob)
	if err != nil {
		return nil, err
	}
	return iblt.DecodeKVFrom(recv, seed)
}

// tryRecoverIndexBit plays Bob: delete his points, attempt to decode, and
// if a recovered Alice point matches the target codeword prefix, compare
// its trailing bit. On the Appendix F instance the exact-set difference
// is ~2n points, so an O(n)-bit table essentially never decodes.
func tryRecoverIndexBit(tb *iblt.KVTable, sb metric.PointSet, mix hashx.Mixer, codeword metric.Point, want int32) bool {
	for _, p := range sb {
		tb.Delete(mix.HashInts(p), packPoint(p))
	}
	added, _, err := tb.Decode()
	if err != nil {
		return false // peeling stalled: the designed failure mode
	}
	d := len(codeword) + 1
	for _, kv := range added {
		pt := unpackPoint(kv.Value, d)
		if pt == nil {
			continue
		}
		match := true
		for j := 0; j < d-1; j++ {
			if pt[j] != codeword[j] {
				match = false
				break
			}
		}
		if match {
			return pt[d-1] == want
		}
	}
	return false
}

package experiments

import (
	"fmt"
	"math"

	"repro/internal/branching"
	"repro/internal/hypergraph"
	"repro/internal/iblt"
	"repro/internal/lsh"
	"repro/internal/metric"
	"repro/internal/rng"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E1",
		Title: "IBLT decode success vs load (peeling threshold)",
		Claim: "Theorem 2.6: an IBLT with m cells decodes cm keys whp for c below a constant threshold (c*_3 ≈ 0.818, c*_4 ≈ 0.772)",
		Run:   runE1,
	})
	register(Experiment{
		ID:    "E2",
		Title: "MLSH collision probability sandwich",
		Claim: "Definition 2.2 via Lemmas 2.3/2.4/2.5: p^f ≤ Pr[h(x)=h(y)] ≤ p^(αf) for f ≤ r",
		Run:   runE2,
	})
	register(Experiment{
		ID:    "E3",
		Title: "RIBLT error propagation Σ C_v vs density and size (Figure 1 / Lemma 3.10)",
		Claim: "Lemma 3.10: for c < 1/(q(q−1)) the mean error sum is O(1) independent of m; it grows sharply above the threshold",
		Run:   runE3,
	})
	register(Experiment{
		ID:    "E4",
		Title: "Branching-process survival λ_t (Appendix D)",
		Claim: "[15]/App B: below the peeling threshold λ_t decays doubly exponentially; simulation matches the recursion",
		Run:   runE4,
	})
}

func runE1(cfg Config) (*stats.Table, error) {
	t := stats.NewTable("q", "load c", "m", "decode success", "trials")
	trials := cfg.trials(200, 30)
	src := rng.New(cfg.Seed + 1)
	for _, q := range []int{3, 4} {
		for _, load := range []float64{0.4, 0.6, 0.7, 0.8, 0.85, 0.9, 1.0} {
			const m = 1200
			ok := 0
			for trial := 0; trial < trials; trial++ {
				tb := iblt.New(m, q, src.Uint64())
				n := int(load * float64(m))
				for i := 0; i < n; i++ {
					tb.Insert(src.Uint64())
				}
				if _, _, err := tb.Decode(); err == nil {
					ok++
				}
			}
			t.AddRow(q, load, m, float64(ok)/float64(trials), trials)
		}
	}
	return t, nil
}

func runE2(cfg Config) (*stats.Table, error) {
	t := stats.NewTable("family", "distance f", "lower p^f", "measured", "upper p^(αf)", "within")
	trials := cfg.trials(60000, 8000)

	type probe struct {
		name   string
		family lsh.Family
		m      lsh.MLSH
		pair   func(dist float64) (metric.Point, metric.Point)
		dists  []float64
	}
	hamming := metric.HammingCube(64)
	hm := lsh.HammingMLSH(hamming, 128)
	l1 := metric.Grid(10000, 4, metric.L1)
	l1m := lsh.L1MLSH(l1, 200)
	l2 := metric.Grid(10000, 3, metric.L2)
	l2m := lsh.L2MLSH(l2, 300)
	probes := []probe{
		{
			name: "hamming(Lem2.3)", m: hm,
			pair: func(dist float64) (metric.Point, metric.Point) {
				a := make(metric.Point, 64)
				b := make(metric.Point, 64)
				for i := 0; i < int(dist); i++ {
					b[i] = 1
				}
				return a, b
			},
			dists: []float64{1, 4, 16, 48},
		},
		{
			name: "l1-grid(Lem2.4)", m: l1m,
			pair: func(dist float64) (metric.Point, metric.Point) {
				a := metric.Point{100, 100, 100, 100}
				b := a.Clone()
				b[0] += int32(dist)
				return a, b
			},
			dists: []float64{1, 10, 50, 120},
		},
		{
			name: "l2-pstable(Lem2.5)", m: l2m,
			pair: func(dist float64) (metric.Point, metric.Point) {
				a := metric.Point{500, 500, 500}
				b := a.Clone()
				b[0] += int32(dist)
				return a, b
			},
			dists: []float64{10, 60, 150, 290},
		},
	}
	for pi, p := range probes {
		for _, dist := range p.dists {
			if dist > p.m.R {
				continue
			}
			a, b := p.pair(dist)
			got := lsh.EstimateCollision(p.m.Family, a, b, trials, cfg.Seed+uint64(pi)*31+uint64(dist))
			lower := math.Pow(p.m.P, dist)
			upper := math.Pow(p.m.P, p.m.Alpha*dist)
			slack := 3 / math.Sqrt(float64(trials))
			within := got >= lower-slack && got <= upper+slack
			t.AddRow(p.name, dist, lower, got, upper, within)
		}
	}
	return t, nil
}

func runE3(cfg Config) (*stats.Table, error) {
	t := stats.NewTable("q", "c", "m", "mean ΣC_v (BFS)", "mean ΣC_v (LIFO)", "decode rate", "mean rounds")
	trials := cfg.trials(400, 40)
	const q = 3
	for _, c := range []float64{1.0 / 24, 1.0 / 12, 1.0 / 6, 1.0 / 3, 0.6, 0.75} {
		for _, m := range []int{300, 1000, 3000} {
			if cfg.Quick && m > 1000 {
				continue
			}
			var sumBFS, sumLIFO, rounds float64
			ok := 0
			src := rng.New(cfg.Seed + uint64(m) + uint64(c*1e6))
			for trial := 0; trial < trials; trial++ {
				g := hypergraph.Random(m, int(c*float64(m)), q, src)
				stB := g.PeelWithError(src, hypergraph.BFS)
				stL := g.PeelWithError(src, hypergraph.LIFO)
				sumBFS += stB.ErrorSum
				sumLIFO += stL.ErrorSum
				rounds += float64(stB.Rounds)
				if stB.Complete {
					ok++
				}
			}
			n := float64(trials)
			t.AddRow(q, fmt.Sprintf("%.4f", c), m, sumBFS/n, sumLIFO/n,
				float64(ok)/n, rounds/n)
		}
	}
	return t, nil
}

func runE4(cfg Config) (*stats.Table, error) {
	t := stats.NewTable("c", "t", "λ_t (recursion)", "λ_t (simulated)", "log10(1/λ)")
	const q = 3
	simTrials := cfg.trials(40000, 5000)
	for _, c := range []float64{1.0 / 12, 1.0 / 6, 0.9} {
		_, lambda := branching.Series(c, q, 8)
		for tt := 1; tt <= 8; tt++ {
			sim := math.NaN()
			if tt <= 4 { // deeper simulation is exponential in depth
				sim = branching.SurvivalSim(c, q, tt, simTrials, cfg.Seed+uint64(tt))
			}
			lg := math.Inf(1)
			if lambda[tt] > 0 {
				lg = math.Log10(1 / lambda[tt])
			}
			simStr := "-"
			if !math.IsNaN(sim) {
				simStr = fmt.Sprintf("%.4f", sim)
			}
			t.AddRow(fmt.Sprintf("%.4f", c), tt, lambda[tt], simStr, lg)
		}
	}
	return t, nil
}

package experiments

import (
	"fmt"

	"repro/internal/gap"
	"repro/internal/hashx"
	"repro/internal/metric"
	"repro/internal/rng"
	"repro/internal/setsets"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E8",
		Title: "Gap Guarantee on Hamming space (Theorem 4.2 / Corollary 4.3)",
		Claim: "All far points recovered in 4 rounds; communication (k+ρn)·polylog(n) + k·log|U| beats naive n·log|U| for large d",
		Run:   runE8,
	})
	register(Experiment{
		ID:    "E9",
		Title: "Gap Guarantee on ([∆]^d, ℓ1), r2/r1 constant (Corollary 4.4)",
		Claim: "With r2/r1 = O(1) the grid LSH still yields full far-point recall and comm ≪ n·d·log ∆ for large d",
		Run:   runE9,
	})
	register(Experiment{
		ID:    "E10",
		Title: "One-sided grid variant vs general protocol in low dimension (Theorem 4.5)",
		Claim: "For small d with r2 > r1·d, the p2=0 family shortens keys by ~log(r2/r1) and cuts communication",
		Run:   runE10,
	})
	register(Experiment{
		ID:    "E11",
		Title: "One-round lower bound instance (Theorem 4.6, Appendix F)",
		Claim: "On index-style instances, one-round O(n)-bit protocols fail with probability ≥ 1/3 while the 4-round gap protocol recovers the planted bit",
		Run:   runE11,
	})
	register(Experiment{
		ID:    "E12",
		Title: "Sets-of-sets substrate communication scaling (Theorem E.1)",
		Claim: "Communication grows with the child-level difference z, not with the multiset size",
		Run:   runE12,
	})
}

// gapRecall checks Definition 4.1: every point of SA within r2 of S'B,
// and counts planted far points literally delivered.
func gapRecall(space metric.Space, inst workload.GapInstance, sPrime metric.PointSet) (covered bool, delivered int) {
	covered = true
	for _, a := range inst.SA {
		if d, _ := sPrime.MinDistanceTo(space, a); d > inst.R2 {
			covered = false
		}
	}
	for _, f := range inst.Far {
		for _, sp := range sPrime {
			if sp.Equal(f) {
				delivered++
				break
			}
		}
	}
	return covered, delivered
}

func runE8(cfg Config) (*stats.Table, error) {
	t := stats.NewTable("d", "n", "k", "recall", "covered", "sent", "rounds",
		"comm bits", "naive bits", "ρ")
	trials := cfg.trials(5, 2)
	type row struct{ d, n, k int }
	rows := []row{{512, 64, 4}, {1024, 64, 4}, {2048, 64, 4}, {4096, 64, 4}, {8192, 64, 4}, {1024, 128, 4}, {1024, 64, 8}}
	if cfg.Quick {
		rows = rows[:2]
	}
	for _, r := range rows {
		space := metric.HammingCube(r.d)
		r1, r2 := 8.0, float64(r.d)/4
		var recallSum, sent, bits, rounds, rho float64
		coveredAll := true
		done := 0
		for trial := 0; trial < trials; trial++ {
			seed := cfg.Seed + uint64(r.d*10+r.n+trial)
			inst, err := workload.NewGapInstance(space, r.n, r.k, 1, r1, r2, seed)
			if err != nil {
				return nil, fmt.Errorf("E8 instance d=%d: %w", r.d, err)
			}
			p := gap.Params{Space: space, N: r.n + r.k, R1: r1, R2: r2, Seed: seed + 5}
			res, err := gap.Reconcile(p, inst.SA, inst.SB)
			if err != nil {
				return nil, fmt.Errorf("E8 run d=%d: %w", r.d, err)
			}
			covered, delivered := gapRecall(space, inst, res.SPrime)
			coveredAll = coveredAll && covered
			recallSum += float64(delivered) / float64(len(inst.Far))
			sent += float64(len(res.TA))
			bits += float64(res.Stats.TotalBits())
			rounds += float64(res.Stats.Rounds)
			rho = res.Rho
			done++
		}
		n := float64(done)
		t.AddRow(r.d, r.n, r.k, recallSum/n, coveredAll, sent/n, rounds/n,
			bits/n, gap.NaiveBits(space, r.n), fmt.Sprintf("%.4f", rho))
	}
	return t, nil
}

func runE9(cfg Config) (*stats.Table, error) {
	t := stats.NewTable("d", "n", "k", "r2/r1", "recall", "covered", "sent",
		"comm bits", "naive bits")
	trials := cfg.trials(5, 2)
	type row struct {
		d, n, k int
		ratio   float64
	}
	rows := []row{{4, 64, 4, 200}, {8, 64, 4, 200}, {16, 64, 4, 200}, {8, 64, 4, 2}}
	if cfg.Quick {
		rows = rows[:2]
	}
	for _, r := range rows {
		space := metric.Grid(1<<20, r.d, metric.L1)
		r1 := 100.0
		r2 := r1 * r.ratio
		var recallSum, sent, bits float64
		coveredAll := true
		done := 0
		for trial := 0; trial < trials; trial++ {
			seed := cfg.Seed + uint64(r.d*100+trial) + uint64(r.ratio)
			inst, err := workload.NewGapInstance(space, r.n, r.k, 1, r1, r2, seed)
			if err != nil {
				return nil, fmt.Errorf("E9 instance d=%d: %w", r.d, err)
			}
			p := gap.Params{Space: space, N: r.n + r.k, R1: r1, R2: r2, Seed: seed + 9}
			res, err := gap.Reconcile(p, inst.SA, inst.SB)
			if err != nil {
				return nil, fmt.Errorf("E9 run d=%d: %w", r.d, err)
			}
			covered, delivered := gapRecall(space, inst, res.SPrime)
			coveredAll = coveredAll && covered
			recallSum += float64(delivered) / float64(len(inst.Far))
			sent += float64(len(res.TA))
			bits += float64(res.Stats.TotalBits())
			done++
		}
		n := float64(done)
		t.AddRow(r.d, r.n, r.k, r.ratio, recallSum/n, coveredAll, sent/n,
			bits/n, gap.NaiveBits(space, r.n))
	}
	return t, nil
}

func runE10(cfg Config) (*stats.Table, error) {
	t := stats.NewTable("d", "protocol", "h", "recall", "covered", "sent", "comm bits")
	trials := cfg.trials(5, 2)
	dims := []int{2, 3, 4}
	if cfg.Quick {
		dims = dims[:2]
	}
	const n, k = 48, 3
	for _, d := range dims {
		space := metric.Grid(1<<20, d, metric.L1)
		r1 := 50.0
		r2 := 50000.0 // r2 > r1·d comfortably, as Theorem 4.5 needs
		for _, useOneSided := range []bool{false, true} {
			var recallSum, sent, bits, hSum float64
			coveredAll := true
			done := 0
			for trial := 0; trial < trials; trial++ {
				seed := cfg.Seed + uint64(d*1000+trial)
				inst, err := workload.NewGapInstance(space, n, k, 1, r1, r2, seed)
				if err != nil {
					return nil, fmt.Errorf("E10 instance d=%d: %w", d, err)
				}
				p := gap.Params{Space: space, N: n + k, R1: r1, R2: r2, Seed: seed + 3}
				var res gap.Result
				if useOneSided {
					res, err = gap.ReconcileOneSided(p, 1, inst.SA, inst.SB)
				} else {
					res, err = gap.Reconcile(p, inst.SA, inst.SB)
				}
				if err != nil {
					return nil, fmt.Errorf("E10 run d=%d: %w", d, err)
				}
				covered, delivered := gapRecall(space, inst, res.SPrime)
				coveredAll = coveredAll && covered
				recallSum += float64(delivered) / float64(len(inst.Far))
				sent += float64(len(res.TA))
				bits += float64(res.Stats.TotalBits())
				hSum += float64(res.H)
				done++
			}
			name := "general(Thm4.2)"
			if useOneSided {
				name = "one-sided(Thm4.5)"
			}
			nn := float64(done)
			t.AddRow(d, name, hSum/nn, recallSum/nn, coveredAll, sent/nn, bits/nn)
		}
	}
	return t, nil
}

// runE11 builds the Appendix F index instance and compares the 4-round
// gap protocol against two natural one-round protocols constrained to
// O(n) bits.
func runE11(cfg Config) (*stats.Table, error) {
	t := stats.NewTable("protocol", "rounds", "budget bits", "success rate", "trials")
	trials := cfg.trials(24, 6)
	// d = Θ(log n + r2): n+1 codewords of dimension d with pairwise
	// distance ≥ r2.
	const nIdx = 48 // index length (number of Alice points)
	const d = 256
	const r2 = 64
	src := rng.New(cfg.Seed + 4242)
	words, err := workload.SpreadCodewords(d-1, nIdx+1, r2, cfg.Seed+99)
	if err != nil {
		return nil, err
	}
	space := metric.HammingCube(d)

	mkInstance := func(trial int) (sa, sb metric.PointSet, i int, xi int32) {
		x := make([]int32, nIdx)
		for j := range x {
			x[j] = int32(src.Intn(2))
		}
		i = src.Intn(nIdx)
		sa = make(metric.PointSet, nIdx)
		for j := 0; j < nIdx; j++ {
			sa[j] = append(words[j].Clone(), x[j])
		}
		sb = make(metric.PointSet, 0, nIdx)
		for j := 0; j < nIdx+1; j++ {
			if j == i {
				continue
			}
			sb = append(sb, append(words[j].Clone(), 0))
		}
		return sa, sb, i, x[i]
	}

	// Protocol 1: the paper's 4-round gap protocol (r1 = 1, k = 1).
	gapOK := 0
	var gapBits float64
	var gapRounds float64
	for trial := 0; trial < trials; trial++ {
		sa, sb, i, xi := mkInstance(trial)
		p := gap.Params{Space: space, N: nIdx + 1, R1: 1, R2: r2 - 1,
			Seed: cfg.Seed + uint64(trial)*7}
		res, err := gap.Reconcile(p, sa, sb)
		if err != nil {
			return nil, err
		}
		// Bob recovers x_i: find the transferred point matching
		// codeword i and read its final bit.
		for _, pt := range res.TA {
			prefixMatch := true
			for j := 0; j < d-1; j++ {
				if pt[j] != words[i][j] {
					prefixMatch = false
					break
				}
			}
			if prefixMatch {
				if pt[d-1] == xi {
					gapOK++
				}
				break
			}
		}
		gapBits += float64(res.Stats.TotalBits())
		gapRounds += float64(res.Stats.Rounds)
	}
	t.AddRow("gap(4-round)", gapRounds/float64(trials),
		gapBits/float64(trials), float64(gapOK)/float64(trials), trials)

	// Protocol 2: one-round truncated transmission with budget 4n bits:
	// Alice sends as many of her points as fit; Bob succeeds only if
	// point i was among them.
	budget := int64(4 * nIdx)
	ptsFit := int(budget / int64(space.BitsPerPoint()))
	truncOK := 0
	for trial := 0; trial < trials; trial++ {
		_, _, i, _ := mkInstance(trial)
		perm := src.Perm(nIdx)
		for _, j := range perm[:min(ptsFit, nIdx)] {
			if j == i {
				truncOK++
				break
			}
		}
	}
	t.AddRow("truncated-naive(1-round)", 1, budget,
		float64(truncOK)/float64(trials), trials)

	// Protocol 3: one-round exact-set IBLT with the same budget: the
	// instance's symmetric difference is ~2n points, far beyond what an
	// O(n)-bit table can peel, so decoding (and thus recovery) fails.
	ibltOK := 0
	for trial := 0; trial < trials; trial++ {
		sa, sb, i, xi := mkInstance(trial)
		// Budget 4n bits → about 4n/(2·64+8) cells; at least 2.
		cells := int(budget / 140)
		if cells < 2 {
			cells = 2
		}
		var ch transport.Channel
		seed := cfg.Seed + uint64(trial)
		mix := hashx.MixerFromSeed(seed ^ 0xfeed)
		tb, err := ibltOfPoints(sa, cells, mix, seed, &ch)
		if err != nil {
			return nil, err
		}
		if tryRecoverIndexBit(tb, sb, mix, words[i], xi) {
			ibltOK++
		}
	}
	t.AddRow("exact-IBLT(1-round)", 1, budget,
		float64(ibltOK)/float64(trials), trials)
	return t, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func runE12(cfg Config) (*stats.Table, error) {
	t := stats.NewTable("shared children", "differing z", "comm bits", "bits/diff")
	trials := cfg.trials(5, 2)
	const size = 32
	for _, shared := range []int{200, 2000} {
		for _, z := range []int{4, 16, 64, 256} {
			if cfg.Quick && z > 64 {
				continue
			}
			var bits float64
			for trial := 0; trial < trials; trial++ {
				src := rng.New(cfg.Seed + uint64(shared*10+z+trial))
				var alice, bob []setsets.Child
				for i := 0; i < shared; i++ {
					p := make([]byte, size)
					for b := range p {
						p[b] = byte(src.Uint64())
					}
					alice = append(alice, setsets.Child{Payload: p})
					bob = append(bob, setsets.Child{Payload: append([]byte(nil), p...)})
				}
				for i := 0; i < z; i++ {
					p := make([]byte, size)
					for b := range p {
						p[b] = byte(src.Uint64())
					}
					bob = append(bob, setsets.Child{Payload: p})
				}
				_, st, err := setsets.Reconcile(setsets.Params{
					PayloadBytes: size, Seed: cfg.Seed + uint64(z),
				}, alice, bob)
				if err != nil {
					return nil, err
				}
				bits += float64(st.TotalBits())
			}
			mean := bits / float64(trials)
			t.AddRow(shared, z, mean, mean/float64(z))
		}
	}
	return t, nil
}

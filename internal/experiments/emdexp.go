package experiments

import (
	"math"

	"repro/internal/emd"
	"repro/internal/matching"
	"repro/internal/metric"
	"repro/internal/quadtree"
	"repro/internal/riblt"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E5",
		Title: "EMD protocol on Hamming space (Algorithm 1 / Corollary 3.5)",
		Claim: "EMD(SA,S'B) ≤ O(log n)·EMD_k with probability ≥ 5/8; communication O(k·d·log n·log(dn)) independent of n's linear growth",
		Run:   runE5,
	})
	register(Experiment{
		ID:    "E6",
		Title: "EMD protocol on ([∆]^d, ℓ2) with interval scaling (Corollary 3.6)",
		Claim: "Same guarantee via O(log(D2/D1)) constant-ratio intervals without prior knowledge of EMD_k",
		Run:   runE6,
	})
	register(Experiment{
		ID:    "E7",
		Title: "Approximation vs dimension: Algorithm 1 vs quadtree baseline [7]",
		Claim: "§1: [7] is an O(d) approximation, ours O(log n); the baseline's EMD ratio grows with d while ours stays flat",
		Run:   runE7,
	})
	register(Experiment{
		ID:    "A1",
		Title: "Ablation: RIBLT density m = 4q²k vs sparser/denser",
		Claim: "§2.2 item 2: c < 1/(q(q−1)) keeps components trees/unicyclic; denser tables decode less often and spread more error",
		Run:   runA1,
	})
}

// emdTrialResult aggregates one (n, k) cell of E5/E6.
type emdTrial struct {
	ratios     []float64 // EMD(SA,S'B)/max(EMD_k,1) per successful trial
	ratioLogN  []float64
	bits       []float64
	failures   int
	trials     int
	naiveBits  int64
	emdKMean   float64
	beforeMean float64
}

func runEMDCell(space metric.Space, n, k, trials int, noise float64, seed uint64,
	scaled bool) emdTrial {
	out := emdTrial{trials: trials, naiveBits: emd.NaiveBits(space, n)}
	logn := math.Log(float64(n))
	for trial := 0; trial < trials; trial++ {
		inst := workload.NewEMDInstance(space, n, k, noise, seed+uint64(trial)*101)
		emdK := matching.EMDk(space, inst.SA, inst.SB, k)
		out.emdKMean += emdK / float64(trials)
		out.beforeMean += matching.EMD(space, inst.SA, inst.SB) / float64(trials)
		p := emd.DefaultParams(space, n, k, seed+uint64(trial)*977+13)
		var (
			failed bool
			sPrime metric.PointSet
			bits   int64
		)
		if scaled {
			// No prior knowledge: the Corollary 3.6 strategy covers
			// [1, n·diameter] with constant-ratio intervals.
			res, err := emd.ReconcileScaled(p, inst.SA, inst.SB)
			if err != nil {
				failed = true
			} else {
				failed, sPrime, bits = res.Failed, res.SPrime, res.Stats.TotalBits()
			}
		} else {
			// Informed bounds D1 ≤ EMD_k ≤ D2 (the Theorem 3.4 setting).
			p.D1 = math.Max(1, emdK/4)
			p.D2 = math.Max(emdK*4, p.D1*2)
			res, err := emd.Reconcile(p, inst.SA, inst.SB)
			if err != nil {
				failed = true
			} else {
				failed, sPrime, bits = res.Failed, res.SPrime, res.Stats.TotalBits()
			}
		}
		if failed {
			out.failures++
			continue
		}
		after := matching.EMD(space, inst.SA, sPrime)
		ratio := after / math.Max(emdK, 1)
		out.ratios = append(out.ratios, ratio)
		out.ratioLogN = append(out.ratioLogN, ratio/logn)
		out.bits = append(out.bits, float64(bits))
	}
	return out
}

func runE5(cfg Config) (*stats.Table, error) {
	t := stats.NewTable("n", "k", "d", "EMD_k", "EMD before", "ratio med",
		"ratio/ln n", "fail rate", "comm bits", "naive bits")
	trials := cfg.trials(10, 3)
	type row struct{ n, k, d int }
	rows := []row{{32, 4, 128}, {64, 4, 128}, {128, 4, 128}, {64, 2, 128}, {64, 8, 128}, {64, 4, 256}}
	if cfg.Quick {
		rows = rows[:3]
	}
	for _, r := range rows {
		space := metric.HammingCube(r.d)
		cell := runEMDCell(space, r.n, r.k, trials, 2, cfg.Seed+uint64(r.n*31+r.k*7+r.d), false)
		rs := stats.Summarize(cell.ratios)
		rl := stats.Summarize(cell.ratioLogN)
		bs := stats.Summarize(cell.bits)
		t.AddRow(r.n, r.k, r.d, cell.emdKMean, cell.beforeMean, rs.Median,
			rl.Median, float64(cell.failures)/float64(cell.trials),
			bs.Mean, cell.naiveBits)
	}
	// Communication-only rows at large n: ground-truth EMD is O(n³), so
	// quality columns are omitted, but these rows exhibit the headline
	// communication shape — protocol bits stay flat while the naive cost
	// grows linearly, crossing over around n ≈ 6k for k=4, d=128.
	if !cfg.Quick {
		for _, n := range []int{1024, 8192} {
			space := metric.HammingCube(128)
			const k = 4
			inst := workload.NewEMDInstance(space, n, k, 2, cfg.Seed+uint64(n))
			p := emd.DefaultParams(space, n, k, cfg.Seed+uint64(n)+1)
			// Noise-informed bounds: EMD_k ≤ 2(n−k) by construction.
			p.D1 = math.Max(1, float64(n)/4)
			p.D2 = float64(4 * n)
			res, err := emd.Reconcile(p, inst.SA, inst.SB)
			if err != nil {
				return nil, err
			}
			t.AddRow(n, k, 128, "-", "-", "-", "-",
				boolToRate(res.Failed), float64(res.Stats.TotalBits()),
				emd.NaiveBits(space, n))
		}
	}
	return t, nil
}

func boolToRate(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func runE6(cfg Config) (*stats.Table, error) {
	t := stats.NewTable("n", "k", "d", "∆", "EMD_k", "EMD before", "ratio med",
		"fail rate", "comm bits", "naive bits")
	trials := cfg.trials(8, 3)
	type row struct {
		n, k, d int
		delta   int32
	}
	rows := []row{{32, 3, 2, 4095}, {48, 3, 3, 4095}, {64, 4, 3, 4095}}
	if cfg.Quick {
		rows = rows[:2]
	}
	for _, r := range rows {
		space := metric.Grid(r.delta, r.d, metric.L2)
		cell := runEMDCell(space, r.n, r.k, trials, 8, cfg.Seed+uint64(r.n*17+r.d), true)
		rs := stats.Summarize(cell.ratios)
		bs := stats.Summarize(cell.bits)
		t.AddRow(r.n, r.k, r.d, r.delta, cell.emdKMean, cell.beforeMean,
			rs.Median, float64(cell.failures)/float64(cell.trials),
			bs.Mean, cell.naiveBits)
	}
	return t, nil
}

func runE7(cfg Config) (*stats.Table, error) {
	t := stats.NewTable("d", "n", "k", "EMD_k", "ratio ours (med)",
		"ratio quadtree (med)", "ours fail", "qt fail")
	trials := cfg.trials(10, 3)
	dims := []int{2, 4, 8, 16, 32}
	if cfg.Quick {
		dims = []int{2, 8, 32}
	}
	const n, k = 32, 3
	for _, d := range dims {
		space := metric.Grid(255, d, metric.L1)
		var oursRatios, qtRatios []float64
		oursFail, qtFail := 0, 0
		var emdKMean float64
		for trial := 0; trial < trials; trial++ {
			seed := cfg.Seed + uint64(d*1000+trial)
			inst := workload.NewEMDInstance(space, n, k, 4, seed)
			emdK := matching.EMDk(space, inst.SA, inst.SB, k)
			emdKMean += emdK / float64(trials)

			p := emd.DefaultParams(space, n, k, seed+7)
			p.D1 = math.Max(1, emdK/4)
			p.D2 = math.Max(emdK*4, p.D1*2)
			res, err := emd.Reconcile(p, inst.SA, inst.SB)
			if err != nil || res.Failed {
				oursFail++
			} else {
				oursRatios = append(oursRatios,
					matching.EMD(space, inst.SA, res.SPrime)/math.Max(emdK, 1))
			}

			qp := quadtree.Params{Space: space, N: n, K: k, Seed: seed + 11}
			qres, err := quadtree.Reconcile(qp, inst.SA, inst.SB)
			if err != nil || qres.Failed {
				qtFail++
			} else {
				qtRatios = append(qtRatios,
					matching.EMD(space, inst.SA, qres.SPrime)/math.Max(emdK, 1))
			}
		}
		t.AddRow(d, n, k, emdKMean,
			stats.Summarize(oursRatios).Median,
			stats.Summarize(qtRatios).Median,
			float64(oursFail)/float64(trials),
			float64(qtFail)/float64(trials))
	}
	return t, nil
}

func runA1(cfg Config) (*stats.Table, error) {
	t := stats.NewTable("cells", "paper?", "fail rate", "mean i*/t", "ratio med")
	trials := cfg.trials(12, 4)
	space := metric.HammingCube(128)
	const n, k = 48, 4
	const q = 3
	for _, mult := range []int{1, 2, 4, 8} {
		cells := mult * q * q * k
		fails := 0
		var ratios, levelFrac []float64
		for trial := 0; trial < trials; trial++ {
			seed := cfg.Seed + uint64(mult*100+trial)
			inst := workload.NewEMDInstance(space, n, k, 2, seed)
			emdK := matching.EMDk(space, inst.SA, inst.SB, k)
			p := emd.DefaultParams(space, n, k, seed+3)
			// A deliberately wide range so the decoded level i* has
			// room to react to the cell budget.
			p.D1 = math.Max(1, emdK/16)
			p.D2 = math.Max(emdK*16, p.D1*2)
			p.CellsPerLevel = cells
			p.PeelOrder = riblt.BFS
			res, err := emd.Reconcile(p, inst.SA, inst.SB)
			if err != nil || res.Failed {
				fails++
				continue
			}
			levelFrac = append(levelFrac, float64(res.Level)/float64(res.Levels))
			ratios = append(ratios,
				matching.EMD(space, inst.SA, res.SPrime)/math.Max(emdK, 1))
		}
		t.AddRow(cells, mult == 4, float64(fails)/float64(trials),
			stats.Summarize(levelFrac).Mean,
			stats.Summarize(ratios).Median)
	}
	return t, nil
}

package experiments

import (
	"fmt"
	"math"

	"repro/internal/dsbf"
	"repro/internal/emd"
	"repro/internal/gap"
	"repro/internal/lsh"
	"repro/internal/matching"
	"repro/internal/metric"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "A2",
		Title: "Ablation: RIBLT hash count q",
		Claim: "Algorithm 1 requires q ≥ 3; larger q raises per-key cost (q cells touched) while the sparsity constraint c < 1/(q(q−1)) tightens",
		Run:   runA2,
	})
	register(Experiment{
		ID:    "E13",
		Title: "Gap communication vs gap ratio r2/r1 (the ρ dependence)",
		Claim: "Theorem 4.2's (k+ρn) term: communication falls as the gap widens (ρ → 0) and rises toward the naive regime as r2/r1 → 1",
		Run:   runE13,
	})
	register(Experiment{
		ID:    "E14",
		Title: "Distance-sensitive Bloom filter operating curve ([18], §1.1 related work)",
		Claim: "Kirsch–Mitzenmacher: acceptance ≈ 1 within r1, ≈ 0 beyond r2, transition inside the gap",
		Run:   runE14,
	})
}

func runA2(cfg Config) (*stats.Table, error) {
	t := stats.NewTable("q", "cells/level", "fail rate", "ratio med", "comm bits")
	trials := cfg.trials(10, 3)
	space := metric.HammingCube(128)
	const n, k = 48, 4
	for _, q := range []int{3, 4, 5} {
		fails := 0
		var ratios, bits []float64
		for trial := 0; trial < trials; trial++ {
			seed := cfg.Seed + uint64(q*1000+trial)
			inst := workload.NewEMDInstance(space, n, k, 2, seed)
			emdK := matching.EMDk(space, inst.SA, inst.SB, k)
			p := emd.DefaultParams(space, n, k, seed+3)
			p.D1 = math.Max(1, emdK/4)
			p.D2 = math.Max(emdK*4, p.D1*2)
			p.Q = q // cells default to 4q²k, preserving c = 1/q² < 1/(q(q−1))
			res, err := emd.Reconcile(p, inst.SA, inst.SB)
			if err != nil || res.Failed {
				fails++
				continue
			}
			ratios = append(ratios,
				matching.EMD(space, inst.SA, res.SPrime)/math.Max(emdK, 1))
			bits = append(bits, float64(res.Stats.TotalBits()))
		}
		t.AddRow(q, 4*q*q*k, float64(fails)/float64(trials),
			stats.Summarize(ratios).Median, stats.Summarize(bits).Mean)
	}
	return t, nil
}

func runE13(cfg Config) (*stats.Table, error) {
	t := stats.NewTable("r2/r1", "ρ", "recall", "sent", "comm bits", "naive bits")
	trials := cfg.trials(5, 2)
	const d, n, k = 2048, 64, 4
	space := metric.HammingCube(d)
	r1 := 8.0
	// r2 caps at d/4: beyond that, random far points (which concentrate
	// at distance ~d/2 from everything) cannot clear r2 with margin.
	ratios := []float64{4, 16, 32, 64}
	if cfg.Quick {
		ratios = ratios[:2]
	}
	for _, ratio := range ratios {
		r2 := r1 * ratio
		var recallSum, sent, bits, rho float64
		done := 0
		for trial := 0; trial < trials; trial++ {
			seed := cfg.Seed + uint64(ratio*100) + uint64(trial)
			inst, err := workload.NewGapInstance(space, n, k, 1, r1, r2, seed)
			if err != nil {
				return nil, fmt.Errorf("E13 instance ratio=%v: %w", ratio, err)
			}
			p := gap.Params{Space: space, N: n + k, R1: r1, R2: r2, Seed: seed + 7}
			res, err := gap.Reconcile(p, inst.SA, inst.SB)
			if err != nil {
				return nil, fmt.Errorf("E13 run ratio=%v: %w", ratio, err)
			}
			_, delivered := gapRecall(space, inst, res.SPrime)
			recallSum += float64(delivered) / float64(len(inst.Far))
			sent += float64(len(res.TA))
			bits += float64(res.Stats.TotalBits())
			rho = res.Rho
			done++
		}
		nn := float64(done)
		t.AddRow(ratio, fmt.Sprintf("%.4f", rho), recallSum/nn, sent/nn,
			bits/nn, gap.NaiveBits(space, n))
	}
	return t, nil
}

func runE14(cfg Config) (*stats.Table, error) {
	t := stats.NewTable("query distance", "accept rate", "zone")
	trials := cfg.trials(300, 60)
	const d = 512
	space := metric.HammingCube(d)
	r1, r2 := 8.0, 128.0
	p := dsbf.Params{
		Space:  space,
		LSH:    lsh.HammingParams(space, r1, r2),
		Family: lsh.NewCoordSampling(space, float64(d)),
		Seed:   cfg.Seed + 14,
	}
	src := rng.New(cfg.Seed + 15)
	set := workload.RandomSet(space, 40, src)
	f, err := dsbf.Build(p, set)
	if err != nil {
		return nil, err
	}
	for _, dist := range []int{0, 4, 8, 32, 64, 128, 192, 256} {
		hits := 0
		for i := 0; i < trials; i++ {
			base := set[src.Intn(len(set))]
			q := workload.PerturbHamming(space, base, dist, src)
			// Perturbation can land the query near a different stored
			// element; measure against the realized distance zone.
			if f.Contains(q) {
				hits++
			}
		}
		zone := "gap"
		if float64(dist) <= r1 {
			zone = "close(≤r1)"
		} else if float64(dist) >= r2 {
			zone = "far(≥r2)*"
		}
		t.AddRow(dist, float64(hits)/float64(trials), zone)
	}
	return t, nil
}

// Package setsets implements the multiset-of-sets reconciliation
// substrate the Gap Guarantee protocol invokes (§4.1, citing
// Mitzenmacher & Morgan, "Reconciling Graphs and Sets of Sets" [22],
// Theorem E.1). Alice and Bob each hold a multiset of children — here a
// child is a fixed-size byte payload (the Gap protocol's serialized LSH
// key vector) — and the protocol lets Alice recover Bob's multiset using
// communication proportional to the number of differing children (plus a
// difference-estimation sketch), not to the multiset size.
//
// Faithfulness note (recorded in DESIGN.md): [22]'s full protocol also
// charges sub-child granularity for children that differ only slightly;
// we reconcile whole differing children. For the Gap protocol's keys,
// where a child is Θ(log² n) bits and z counts child-level differences,
// this preserves the (k + ρn)·polylog(n) communication shape Theorem 4.2
// measures, which is what our experiments check.
//
// Wire structure (between 3 and 3+2·maxRetries messages):
//
//	round 1 (Alice→Bob): strata estimator over child fingerprints
//	round 2 (Bob→Alice): KV IBLT (fingerprint → payload) sized to the
//	                     difference estimate
//	round 3 (Alice→Bob): ack, or a retry request that doubles the size
//	                     (then Bob resends, etc.)
//
// The parties are independent state machines (RunAlice, RunBob) over a
// transport.Conn, so the protocol runs unchanged in-process or across a
// network; Reconcile wires both ends together for tests and experiments.
package setsets

import (
	"errors"
	"fmt"

	"repro/internal/hashx"
	"repro/internal/iblt"
	"repro/internal/rng"
	"repro/internal/transport"
)

// Child is one member of a party's multiset.
type Child struct {
	// Payload is the child's fixed-size serialized content. All children
	// in both multisets must have equal length.
	Payload []byte
}

// Params configures a reconciliation. Both parties must use identical
// Params.
type Params struct {
	// PayloadBytes is the fixed child size.
	PayloadBytes int
	// Seed is the shared public-coin seed.
	Seed uint64
	// StrataCells sizes the estimator's per-stratum IBLTs (default 80).
	StrataCells int
	// Q is the IBLT hash count (default 3).
	Q int
	// MaxRetries bounds the doubling rounds on decode failure
	// (default 6).
	MaxRetries int
	// SafetyFactor scales the estimated difference when sizing the IBLT
	// (default 2).
	SafetyFactor float64
}

// ApplyDefaults fills zero fields with the documented defaults, so a
// zero-value and an explicitly defaulted configuration behave — and
// digest — identically.
func (p *Params) ApplyDefaults() {
	if p.StrataCells == 0 {
		p.StrataCells = 80
	}
	if p.Q == 0 {
		p.Q = 3
	}
	if p.MaxRetries == 0 {
		p.MaxRetries = 6
	}
	if p.SafetyFactor == 0 {
		p.SafetyFactor = 2
	}
}

// shared holds the seed-derived state both parties compute identically.
type shared struct {
	fp          hashx.Mixer
	strataSeed  uint64
	tblSeedBase uint64
}

func deriveShared(p Params) shared {
	src := rng.New(p.Seed)
	return shared{
		fp:          hashx.NewMixer(src),
		strataSeed:  src.Uint64(),
		tblSeedBase: src.Uint64(),
	}
}

// Result reports what Alice learned.
type Result struct {
	// BobOnly are children present in Bob's multiset but not Alice's
	// (with multiplicity).
	BobOnly []Child
	// AliceOnly are children present in Alice's multiset but not Bob's.
	AliceOnly []Child
	// Rounds is the number of messages this party participated in.
	Rounds int
	// EstimatedDiff is the strata estimate that sized round 2 (only the
	// Bob side computes it; Alice reports 0).
	EstimatedDiff int
}

// ErrGaveUp is returned when MaxRetries doublings still fail to decode.
var ErrGaveUp = errors.New("setsets: reconciliation failed after max retries")

// items converts a multiset of children into IBLT items, folding each
// duplicate child's occurrence index into its fingerprint so duplicates
// within one party become distinct IBLT keys while identical children
// across parties still cancel pairwise.
func items(children []Child, fp hashx.Mixer, payloadBytes int) ([]uint64, [][]byte, error) {
	keys := make([]uint64, len(children))
	vals := make([][]byte, len(children))
	occ := make(map[uint64]uint64, len(children))
	for i, c := range children {
		if len(c.Payload) != payloadBytes {
			return nil, nil, fmt.Errorf("setsets: child %d has %d bytes, expected %d",
				i, len(c.Payload), payloadBytes)
		}
		base := fp.HashBytes(c.Payload)
		n := occ[base]
		occ[base] = n + 1
		keys[i] = fp.Hash(base ^ (n+1)*0x9e3779b97f4a7c15)
		vals[i] = c.Payload
	}
	return keys, vals, nil
}

// RunAlice executes Alice's side: send the strata sketch, then
// repeatedly receive Bob's table, try to decode, and ack or ask for a
// bigger one. On success she holds the child-level difference.
func RunAlice(p Params, conn transport.Conn, aliceChildren []Child) (Result, error) {
	p.ApplyDefaults()
	sh := deriveShared(p)
	aKeys, aVals, err := items(aliceChildren, sh.fp, p.PayloadBytes)
	if err != nil {
		return Result{}, err
	}

	// Round 1: strata estimator over Alice's fingerprints.
	aStrata := iblt.NewStrata(p.StrataCells, sh.strataSeed)
	for _, k := range aKeys {
		aStrata.Insert(k)
	}
	e := transport.NewEncoder()
	aStrata.Encode(e)
	if err := conn.Send(e); err != nil {
		return Result{}, err
	}
	rounds := 1

	for attempt := 0; ; attempt++ {
		d, err := conn.Recv()
		if err != nil {
			return Result{}, err
		}
		rounds++
		if _, err := d.ReadUvarint(); err != nil { // attempt tag
			return Result{}, err
		}
		seed := sh.tblSeedBase + uint64(attempt)*0x1000193
		got, err := iblt.DecodeKVFrom(d, seed)
		if err != nil {
			return Result{}, err
		}
		for i, k := range aKeys {
			got.Delete(k, aVals[i])
		}
		added, removed, decErr := got.Decode()

		e := transport.NewEncoder()
		e.WriteBool(decErr == nil)
		if err := conn.Send(e); err != nil {
			return Result{}, err
		}
		rounds++
		if decErr == nil {
			res := Result{Rounds: rounds}
			for _, kv := range added {
				res.BobOnly = append(res.BobOnly, Child{Payload: kv.Value})
			}
			for _, kv := range removed {
				res.AliceOnly = append(res.AliceOnly, Child{Payload: kv.Value})
			}
			return res, nil
		}
		if attempt >= p.MaxRetries {
			return Result{Rounds: rounds}, ErrGaveUp
		}
	}
}

// RunBob executes Bob's side: receive the sketch, estimate the
// difference, and send tables (doubling on nack) until Alice acks.
func RunBob(p Params, conn transport.Conn, bobChildren []Child) error {
	p.ApplyDefaults()
	sh := deriveShared(p)
	bKeys, bVals, err := items(bobChildren, sh.fp, p.PayloadBytes)
	if err != nil {
		return err
	}

	d, err := conn.Recv()
	if err != nil {
		return err
	}
	remoteStrata, err := iblt.DecodeStrata(d, sh.strataSeed)
	if err != nil {
		return err
	}
	bStrata := iblt.NewStrata(p.StrataCells, sh.strataSeed)
	for _, k := range bKeys {
		bStrata.Insert(k)
	}
	est, err := bStrata.Estimate(remoteStrata)
	if err != nil {
		return err
	}

	diffBound := int(float64(est)*p.SafetyFactor) + 8
	for attempt := 0; ; attempt++ {
		cells := iblt.CellsForDiff(diffBound, p.Q)
		seed := sh.tblSeedBase + uint64(attempt)*0x1000193
		tbl := iblt.NewKV(cells, p.Q, p.PayloadBytes, seed)
		for i, k := range bKeys {
			tbl.Insert(k, bVals[i])
		}
		e := transport.NewEncoder()
		e.WriteUvarint(uint64(attempt))
		tbl.Encode(e)
		if err := conn.Send(e); err != nil {
			return err
		}
		ack, err := conn.Recv()
		if err != nil {
			return err
		}
		ok, err := ack.ReadBool()
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
		if attempt >= p.MaxRetries {
			return ErrGaveUp
		}
		diffBound *= 2
	}
}

// Reconcile runs both parties in-process over a pipe and returns Alice's
// result plus the exact traffic stats.
func Reconcile(p Params, aliceChildren, bobChildren []Child) (Result, transport.Stats, error) {
	aConn, bConn := transport.NewPipe()
	bobErr := make(chan error, 1)
	go func() {
		err := RunBob(p, bConn, bobChildren)
		// Closing unblocks Alice if Bob failed before she finished.
		bConn.Close()
		bobErr <- err
	}()
	res, err := RunAlice(p, aConn, aliceChildren)
	// Closing unblocks Bob if Alice failed before sending.
	aConn.Close()
	if berr := <-bobErr; err == nil && berr != nil {
		err = berr
	}
	return res, aConn.Stats(), err
}

package setsets

import (
	"bytes"
	"sort"
	"testing"

	"repro/internal/rng"
)

func mkChild(src *rng.Source, size int) Child {
	p := make([]byte, size)
	for i := range p {
		p[i] = byte(src.Uint64())
	}
	return Child{Payload: p}
}

func sortedPayloads(cs []Child) [][]byte {
	out := make([][]byte, len(cs))
	for i, c := range cs {
		out[i] = c.Payload
	}
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i], out[j]) < 0 })
	return out
}

func equalChildSets(a, b []Child) bool {
	pa, pb := sortedPayloads(a), sortedPayloads(b)
	if len(pa) != len(pb) {
		return false
	}
	for i := range pa {
		if !bytes.Equal(pa[i], pb[i]) {
			return false
		}
	}
	return true
}

func TestIdenticalMultisets(t *testing.T) {
	src := rng.New(1)
	const size = 24
	var shared []Child
	for i := 0; i < 500; i++ {
		shared = append(shared, mkChild(src, size))
	}
	res, _, err := Reconcile(Params{PayloadBytes: size, Seed: 7}, shared, shared)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BobOnly)+len(res.AliceOnly) != 0 {
		t.Fatalf("difference on identical multisets: %d/%d", len(res.BobOnly), len(res.AliceOnly))
	}
	if res.Rounds != 3 {
		t.Errorf("rounds = %d, want 3", res.Rounds)
	}
}

func TestSmallDifference(t *testing.T) {
	src := rng.New(2)
	const size = 16
	var alice, bob []Child
	for i := 0; i < 400; i++ {
		c := mkChild(src, size)
		alice = append(alice, c)
		bob = append(bob, c)
	}
	var bobOnly, aliceOnly []Child
	for i := 0; i < 5; i++ {
		c := mkChild(src, size)
		bobOnly = append(bobOnly, c)
		bob = append(bob, c)
	}
	for i := 0; i < 3; i++ {
		c := mkChild(src, size)
		aliceOnly = append(aliceOnly, c)
		alice = append(alice, c)
	}
	res, _, err := Reconcile(Params{PayloadBytes: size, Seed: 9}, alice, bob)
	if err != nil {
		t.Fatal(err)
	}
	if !equalChildSets(res.BobOnly, bobOnly) {
		t.Errorf("BobOnly mismatch: got %d children", len(res.BobOnly))
	}
	if !equalChildSets(res.AliceOnly, aliceOnly) {
		t.Errorf("AliceOnly mismatch: got %d children", len(res.AliceOnly))
	}
}

func TestDuplicateChildrenMultiplicity(t *testing.T) {
	// Bob holds the same child three times, Alice once: Alice must learn
	// two extra copies.
	src := rng.New(3)
	const size = 8
	c := mkChild(src, size)
	filler := make([]Child, 0, 100)
	for i := 0; i < 100; i++ {
		filler = append(filler, mkChild(src, size))
	}
	alice := append(append([]Child{}, filler...), c)
	bob := append(append([]Child{}, filler...), c, c, c)
	res, _, err := Reconcile(Params{PayloadBytes: size, Seed: 11}, alice, bob)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BobOnly) != 2 {
		t.Fatalf("BobOnly = %d children, want 2 duplicates", len(res.BobOnly))
	}
	for _, got := range res.BobOnly {
		if !bytes.Equal(got.Payload, c.Payload) {
			t.Errorf("recovered wrong payload")
		}
	}
	if len(res.AliceOnly) != 0 {
		t.Errorf("AliceOnly = %d, want 0", len(res.AliceOnly))
	}
}

// TestCommunicationScalesWithDifference is the Theorem E.1 shape check:
// doubling the shared portion must not grow communication, while
// doubling the difference roughly doubles it.
func TestCommunicationScalesWithDifference(t *testing.T) {
	const size = 16
	run := func(nShared, nDiff int, seed uint64) int64 {
		src := rng.New(seed)
		var alice, bob []Child
		for i := 0; i < nShared; i++ {
			c := mkChild(src, size)
			alice = append(alice, c)
			bob = append(bob, c)
		}
		for i := 0; i < nDiff; i++ {
			bob = append(bob, mkChild(src, size))
		}
		_, st, err := Reconcile(Params{PayloadBytes: size, Seed: seed}, alice, bob)
		if err != nil {
			t.Fatal(err)
		}
		return st.TotalBits()
	}
	smallShared := run(200, 10, 21)
	bigShared := run(2000, 10, 22)
	if bigShared > smallShared*3/2 {
		t.Errorf("10x shared data grew comm from %d to %d bits", smallShared, bigShared)
	}
	// The strata sketch is a fixed cost; the difference-proportional
	// component is the marginal cost over a zero-difference run.
	base := run(500, 0, 23)
	smallDiff := run(500, 8, 23) - base
	bigDiff := run(500, 64, 24) - base
	if bigDiff < smallDiff*3 {
		t.Errorf("8x difference grew marginal comm only from %d to %d bits", smallDiff, bigDiff)
	}
}

func TestEmptySides(t *testing.T) {
	src := rng.New(5)
	const size = 8
	bob := []Child{mkChild(src, size), mkChild(src, size)}
	res, _, err := Reconcile(Params{PayloadBytes: size, Seed: 31}, nil, bob)
	if err != nil {
		t.Fatal(err)
	}
	if !equalChildSets(res.BobOnly, bob) {
		t.Error("empty Alice did not receive all of Bob's children")
	}
	res, _, err = Reconcile(Params{PayloadBytes: size, Seed: 33}, bob, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !equalChildSets(res.AliceOnly, bob) {
		t.Error("empty Bob: Alice's children not classified AliceOnly")
	}
}

func TestPayloadSizeMismatch(t *testing.T) {
	_, _, err := Reconcile(Params{PayloadBytes: 4, Seed: 1},
		[]Child{{Payload: []byte{1, 2, 3}}}, nil)
	if err == nil {
		t.Error("mismatched payload size accepted")
	}
}

func TestRetryOnUnderestimate(t *testing.T) {
	// Force a gross underestimate by shrinking the strata sketch and
	// safety factor; the retry rounds must still converge.
	src := rng.New(6)
	const size = 12
	var alice, bob []Child
	for i := 0; i < 100; i++ {
		c := mkChild(src, size)
		alice = append(alice, c)
		bob = append(bob, c)
	}
	var want []Child
	for i := 0; i < 120; i++ {
		c := mkChild(src, size)
		want = append(want, c)
		bob = append(bob, c)
	}
	res, _, err := Reconcile(Params{
		PayloadBytes: size, Seed: 41, StrataCells: 8, SafetyFactor: 0.25,
	}, alice, bob)
	if err != nil {
		t.Fatal(err)
	}
	if !equalChildSets(res.BobOnly, want) {
		t.Errorf("after retries recovered %d/%d children", len(res.BobOnly), len(want))
	}
}

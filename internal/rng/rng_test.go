package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestSplitReproducible(t *testing.T) {
	a := New(7)
	b := New(7)
	ca := a.Split()
	cb := b.Split()
	for i := 0; i < 100; i++ {
		if ca.Uint64() != cb.Uint64() {
			t.Fatalf("split children diverged at step %d", i)
		}
	}
	// Parent streams must also remain in lockstep after splitting.
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("parents diverged after split at step %d", i)
		}
	}
}

func TestSplitIndependentOfParentStream(t *testing.T) {
	a := New(7)
	child := a.Split()
	// Collisions between the child's outputs and the parent's subsequent
	// outputs should be no more likely than chance.
	parentVals := map[uint64]bool{}
	for i := 0; i < 200; i++ {
		parentVals[a.Uint64()] = true
	}
	hits := 0
	for i := 0; i < 200; i++ {
		if parentVals[child.Uint64()] {
			hits++
		}
	}
	if hits > 0 {
		t.Fatalf("child stream reproduced %d parent outputs", hits)
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(3)
	for _, n := range []uint64{1, 2, 3, 7, 100, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nUniformity(t *testing.T) {
	r := New(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(9)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestPoissonMoments(t *testing.T) {
	r := New(13)
	for _, lambda := range []float64{0.3, 1, 2.5, 8, 50} {
		const n = 100000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := float64(r.Poisson(lambda))
			sum += v
			sumSq += v * v
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		if math.Abs(mean-lambda) > 0.05*lambda+0.05 {
			t.Errorf("Poisson(%v) mean = %v", lambda, mean)
		}
		if math.Abs(variance-lambda) > 0.1*lambda+0.1 {
			t.Errorf("Poisson(%v) variance = %v", lambda, variance)
		}
	}
}

func TestPoissonNonPositive(t *testing.T) {
	r := New(1)
	if got := r.Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
	if got := r.Poisson(-2); got != 0 {
		t.Fatalf("Poisson(-2) = %d, want 0", got)
	}
}

func TestExpMean(t *testing.T) {
	r := New(17)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("Exp mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	prop := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestShuffle(t *testing.T) {
	r := New(21)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := map[int]bool{}
	for _, v := range xs {
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func TestBoolBalance(t *testing.T) {
	r := New(23)
	trues := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool() {
			trues++
		}
	}
	if math.Abs(float64(trues)-n/2) > 4*math.Sqrt(n/4) {
		t.Errorf("Bool() true count %d of %d", trues, n)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}

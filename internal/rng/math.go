package rng

import "math"

// Thin wrappers so the generator code reads like the underlying formulas.
// Keeping them here (rather than inlining math.X calls) also gives the
// tests a single seam for checking numeric edge cases.

func sqrt(x float64) float64 { return math.Sqrt(x) }
func ln(x float64) float64   { return math.Log(x) }
func exp(x float64) float64  { return math.Exp(x) }

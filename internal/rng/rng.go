// Package rng provides deterministic pseudo-random number generation and
// the "public coins" abstraction the paper's protocols assume.
//
// All protocols in the paper (§2) are stated in the public-coin model:
// Alice and Bob share random bits at no communication cost. In practice —
// and the paper notes this explicitly — the parties approximate public
// coins by sharing a small seed. Package rng makes that concrete: a
// Source is a splittable, deterministic generator seeded from 64 bits, so
// two parties constructing a Source from the same seed draw identical
// hash functions in identical order without any coordination.
//
// The generator is xoshiro256**, seeded via splitmix64, which is the
// recommended seeding procedure for the xoshiro family. It is not
// cryptographically secure; the paper's adversary model is oblivious, so
// statistical quality is what matters.
package rng

import "math/bits"

// splitmix64 advances a splitmix64 state and returns the next output.
// It is used to expand a 64-bit seed into the 256-bit xoshiro state.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Source is a deterministic xoshiro256** generator. It implements enough
// of the math/rand.Source surface for our needs while remaining fully
// reproducible across parties that share a seed.
//
// The zero value is not usable; construct with New.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded deterministically from seed.
func New(seed uint64) *Source {
	var r Source
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro requires a not-all-zero state; splitmix64 guarantees this
	// with overwhelming probability, but guard regardless.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Split returns a new Source whose stream is independent (in the
// statistical sense) of the parent's future outputs. Both parties calling
// Split in the same order obtain the same children, which is how the
// protocols derive per-level and per-structure hash functions from one
// shared seed.
func (r *Source) Split() *Source {
	return New(r.Uint64() ^ 0xa5a5a5a5deadbeef)
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
// Lemire's multiply-shift rejection method avoids modulo bias.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a fair coin flip.
func (r *Source) Bool() bool { return r.Uint64()&1 == 1 }

// NormFloat64 returns a standard normal variate via the Marsaglia polar
// method. The p-stable LSH family for ℓ2 (Lemma 2.5) requires Gaussian
// projection vectors, so the generator must be available to both parties
// deterministically; math/rand's global state would not be reproducible
// across parties.
func (r *Source) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		// Box-Muller polar transform; return one variate, discard the
		// twin to keep the consumption pattern simple and deterministic.
		return u * sqrtNeg2LogOver(s)
	}
}

// sqrtNeg2LogOver computes sqrt(-2·ln(s)/s) without importing math in the
// hot path signature; split out for testability.
func sqrtNeg2LogOver(s float64) float64 {
	return sqrt(-2 * ln(s) / s)
}

// Exp returns an Exponential(1) variate.
func (r *Source) Exp() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -ln(u)
		}
	}
}

// Poisson returns a Poisson(lambda) variate. For small lambda it uses
// Knuth's product-of-uniforms method; for large lambda it falls back to a
// normal approximation with continuity correction, which is adequate for
// the branching-process simulations (App D) where lambda = cq ≤ ~3.
func (r *Source) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	// Normal approximation for large lambda.
	v := lambda + sqrt(lambda)*r.NormFloat64() + 0.5
	if v < 0 {
		return 0
	}
	return int(v)
}

// Perm returns a uniform permutation of [0, n) via Fisher–Yates.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap function.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

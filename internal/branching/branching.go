// Package branching implements the idealized Poisson branching process
// of Appendix B/D, used to analyze BFS peeling. Each tree node has
// Poisson(c·q) child hyperedges; each child edge connects to q−1 child
// vertices. The quantities of interest:
//
//	ρ_t = Pr[a vertex at height t survives t rounds of the deletion
//	      procedure]   with ρ_0 = 1, ρ_t = Pr[Poisson(ρ_{t−1}^{q−1}·cq) ≥ 1]
//	λ_t = Pr[the root survives t rounds] = Pr[Poisson(ρ_{t−1}^{q−1}·cq) ≥ 2]
//
// For c below the peeling threshold λ_t → 0 doubly exponentially
// (λ_{I+t} ≤ τ^(2(q−1)^t), [15]), which experiment E4 verifies against
// both the recursion and direct simulation.
package branching

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Series returns (ρ_0…ρ_tmax, λ_1…λ_tmax) for the given edge density c
// and edge size q.
func Series(c float64, q, tmax int) (rho, lambda []float64) {
	if q < 2 || c <= 0 || tmax < 1 {
		panic(fmt.Sprintf("branching: bad parameters c=%v q=%d tmax=%d", c, q, tmax))
	}
	rho = make([]float64, tmax+1)
	lambda = make([]float64, tmax+1)
	rho[0] = 1
	lambda[0] = 1
	cq := c * float64(q)
	for t := 1; t <= tmax; t++ {
		mean := math.Pow(rho[t-1], float64(q-1)) * cq
		rho[t] = -math.Expm1(-mean) // Pr[Poisson ≥ 1], computed stably
		// Pr[Poisson ≥ 2] = 1 − e^(−m) − m·e^(−m); clamp the tiny
		// negative residue floating-point cancellation can leave.
		lambda[t] = -math.Expm1(-mean) - mean*math.Exp(-mean)
		if lambda[t] < 0 {
			lambda[t] = 0
		}
	}
	return rho, lambda
}

// Threshold returns c*_q, the density below which random q-uniform
// hypergraphs have empty 2-cores whp (Molloy [26]):
//
//	c*_q = min_{x>0} x / (q(1−e^{−x})^{q−1}).
func Threshold(q int) float64 {
	if q < 3 {
		// q = 2 peeling threshold (graph 2-core) is 1/2.
		return 0.5
	}
	best := math.Inf(1)
	for x := 0.01; x <= 10; x += 0.001 {
		v := x / (float64(q) * math.Pow(1-math.Exp(-x), float64(q-1)))
		if v < best {
			best = v
		}
	}
	return best
}

// SurvivalSim estimates λ_t by direct simulation: it grows the branching
// process lazily and applies the t-round deletion procedure of Appendix
// B (delete leaves with no surviving child edges round by round; the
// root survives if ≥ 2 child edges survive all rounds).
func SurvivalSim(c float64, q, t, trials int, seed uint64) float64 {
	src := rng.New(seed)
	cq := c * float64(q)
	survived := 0
	for i := 0; i < trials; i++ {
		if rootSurvives(src, cq, q, t) {
			survived++
		}
	}
	return float64(survived) / float64(trials)
}

// vertexSurvives reports whether a vertex at depth (t − rounds used)
// survives `rounds` rounds: it needs ≥ 1 child edge all of whose q−1
// vertices survive rounds−1.
func vertexSurvives(src *rng.Source, cq float64, q, rounds int) bool {
	if rounds == 0 {
		return true
	}
	edges := src.Poisson(cq)
	for e := 0; e < edges; e++ {
		all := true
		for v := 0; v < q-1; v++ {
			if !vertexSurvives(src, cq, q, rounds-1) {
				all = false
				// Keep drawing siblings? Distribution-wise the
				// remaining children are irrelevant once one fails,
				// and skipping them preserves independence.
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// rootSurvives needs ≥ 2 surviving child edges (degree ≥ 2 ⇒ not
// peelable).
func rootSurvives(src *rng.Source, cq float64, q, t int) bool {
	edges := src.Poisson(cq)
	surviving := 0
	for e := 0; e < edges; e++ {
		all := true
		for v := 0; v < q-1; v++ {
			if !vertexSurvives(src, cq, q, t-1) {
				all = false
				break
			}
		}
		if all {
			surviving++
			if surviving >= 2 {
				return true
			}
		}
	}
	return false
}

// ExpectedSubtreeSizes returns E[Σ_{i=0..t} Z_i], the expected number of
// descendants within t levels (Wald): Σ (cq(q−1))^i.
func ExpectedSubtreeSizes(c float64, q, tmax int) []float64 {
	out := make([]float64, tmax+1)
	growth := c * float64(q) * float64(q-1)
	acc, pow := 0.0, 1.0
	for t := 0; t <= tmax; t++ {
		acc += pow
		out[t] = acc
		pow *= growth
	}
	return out
}

package branching

import (
	"math"
	"testing"
)

func TestSeriesBasics(t *testing.T) {
	rho, lambda := Series(1.0/12, 3, 20)
	if rho[0] != 1 || lambda[0] != 1 {
		t.Fatalf("initial conditions: rho0=%v lambda0=%v", rho[0], lambda[0])
	}
	// Both sequences are non-increasing and in [0,1].
	for i := 1; i < len(rho); i++ {
		if rho[i] < 0 || rho[i] > 1 || rho[i] > rho[i-1]+1e-12 {
			t.Fatalf("rho not monotone in [0,1]: %v", rho)
		}
		if lambda[i] < 0 || lambda[i] > 1 || lambda[i] > lambda[i-1]+1e-12 {
			t.Fatalf("lambda not monotone in [0,1]: %v", lambda)
		}
		if lambda[i] > rho[i] {
			t.Fatalf("lambda > rho at %d", i)
		}
	}
}

// TestSubcriticalDecay verifies the doubly-exponential collapse below the
// threshold: after a constant number of rounds, log(1/lambda) at least
// doubles per round (the tau^(2(q-1)^t) behaviour from [15]).
func TestSubcriticalDecay(t *testing.T) {
	_, lambda := Series(1.0/12, 3, 12)
	// Find the first index with lambda < 0.1, then check the collapse.
	start := -1
	for i, l := range lambda {
		if l < 0.1 {
			start = i
			break
		}
	}
	if start == -1 {
		t.Fatal("lambda never dropped below 0.1 at subcritical density")
	}
	// The asymptotic exponent growth factor is (q−1) = 2 per round
	// (λ_{I+t} ≤ τ^(2(q−1)^t)); demand at least 1.6 to allow the
	// pre-asymptotic rounds.
	for i := start + 1; i < len(lambda) && lambda[i] > 1e-280; i++ {
		prev := math.Log(1 / lambda[i-1])
		cur := math.Log(1 / lambda[i])
		if cur < prev*1.6 {
			t.Fatalf("decay not doubly exponential at t=%d: log grew %v -> %v", i, prev, cur)
		}
	}
}

// TestSupercriticalSurvival: above the peeling threshold lambda_t
// converges to a positive constant (the 2-core survives).
func TestSupercriticalSurvival(t *testing.T) {
	_, lambda := Series(0.9, 3, 60)
	if lambda[60] < 0.1 {
		t.Errorf("lambda converged to %v at supercritical density", lambda[60])
	}
}

func TestThreshold(t *testing.T) {
	// Known values: c*_3 ≈ 0.8185, c*_4 ≈ 0.7723 (Molloy).
	if got := Threshold(3); math.Abs(got-0.8185) > 0.005 {
		t.Errorf("Threshold(3) = %v", got)
	}
	if got := Threshold(4); math.Abs(got-0.7723) > 0.005 {
		t.Errorf("Threshold(4) = %v", got)
	}
	if got := Threshold(2); got != 0.5 {
		t.Errorf("Threshold(2) = %v", got)
	}
	// The paper's sparsity requirement sits below the threshold.
	if 1.0/6 >= Threshold(3) {
		t.Error("1/(q(q-1)) is not below c*_q for q=3")
	}
}

// TestSimulationMatchesRecursion cross-checks the direct simulation
// against the analytic recursion at a few depths.
func TestSimulationMatchesRecursion(t *testing.T) {
	const c, q = 1.0 / 8, 3
	_, lambda := Series(c, q, 5)
	for _, depth := range []int{1, 2, 3} {
		sim := SurvivalSim(c, q, depth, 60000, uint64(depth)*17)
		if math.Abs(sim-lambda[depth]) > 0.01 {
			t.Errorf("depth %d: simulated %v, recursion %v", depth, sim, lambda[depth])
		}
	}
}

func TestExpectedSubtreeSizes(t *testing.T) {
	sizes := ExpectedSubtreeSizes(1.0/12, 3, 10)
	if sizes[0] != 1 {
		t.Fatalf("E[Z_0] = %v", sizes[0])
	}
	// Growth factor cq(q−1) = 1/2 < 1: sizes converge to 1/(1−1/2) = 2.
	if math.Abs(sizes[10]-2) > 0.01 {
		t.Errorf("subcritical total size %v, want ~2", sizes[10])
	}
	// Monotone increasing.
	for i := 1; i < len(sizes); i++ {
		if sizes[i] < sizes[i-1] {
			t.Fatal("sizes not monotone")
		}
	}
}

func TestSeriesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad params accepted")
		}
	}()
	Series(0, 3, 5)
}

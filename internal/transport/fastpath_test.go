package transport

import (
	"bytes"
	"math/rand"
	"testing"
)

// refBitWriter is an independent reference implementation of the wire
// bit format: every value is appended bit by bit (MSB first) to a bool
// slice, then packed. The Encoder's byte-aligned fast paths must produce
// exactly this stream — the golden property every sketch's wire bytes
// rest on.
type refBitWriter struct {
	bits []bool
}

func (r *refBitWriter) writeBits(v uint64, n uint) {
	for i := int(n) - 1; i >= 0; i-- {
		r.bits = append(r.bits, v>>uint(i)&1 == 1)
	}
}

func (r *refBitWriter) writeUvarint(v uint64) {
	for {
		if v < 0x80 {
			r.writeBits(0, 1)
			r.writeBits(v, 7)
			return
		}
		r.writeBits(1, 1)
		r.writeBits(v&0x7f, 7)
		v >>= 7
	}
}

func (r *refBitWriter) writeVarint(v int64) {
	r.writeUvarint(uint64(v<<1) ^ uint64(v>>63))
}

func (r *refBitWriter) writeBytes(p []byte) {
	r.writeUvarint(uint64(len(p)))
	for _, b := range p {
		r.writeBits(uint64(b), 8)
	}
}

func (r *refBitWriter) pack() []byte {
	out := make([]byte, (len(r.bits)+7)/8)
	for i, b := range r.bits {
		if b {
			out[i/8] |= 1 << (7 - uint(i%8))
		}
	}
	return out
}

// TestEncoderMatchesBitReference drives the Encoder and the bitwise
// reference through identical randomized scripts — mixing aligned and
// misaligned writes — and requires byte-identical output, then decodes
// the stream back and requires value-identical reads. This pins the
// fast paths (bulk WriteBytes, byte-group varints, aligned ReadBits) to
// the historical bit format.
func TestEncoderMatchesBitReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		e := NewEncoder()
		var ref refBitWriter
		type op struct {
			kind  int
			v     uint64
			sv    int64
			n     uint
			bytes []byte
		}
		var script []op
		for i := 0; i < 30; i++ {
			o := op{kind: rng.Intn(5)}
			switch o.kind {
			case 0: // WriteBits with random width (often misaligning)
				o.n = uint(1 + rng.Intn(64))
				o.v = rng.Uint64() & (1<<o.n - 1)
				e.WriteBits(o.v, o.n)
				ref.writeBits(o.v, o.n)
			case 1:
				o.v = rng.Uint64() >> uint(rng.Intn(64))
				e.WriteUvarint(o.v)
				ref.writeUvarint(o.v)
			case 2:
				o.sv = int64(rng.Uint64()) >> uint(rng.Intn(64))
				e.WriteVarint(o.sv)
				ref.writeVarint(o.sv)
			case 3:
				o.bytes = make([]byte, rng.Intn(40))
				rng.Read(o.bytes)
				e.WriteBytes(o.bytes)
				ref.writeBytes(o.bytes)
			case 4:
				o.v = rng.Uint64()
				e.WriteUint64(o.v)
				ref.writeBits(o.v, 64)
			}
			script = append(script, o)
		}
		got, bits := e.Pack()
		want := ref.pack()
		if int64(len(ref.bits)) != bits {
			t.Fatalf("trial %d: bit count %d, reference %d", trial, bits, len(ref.bits))
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d: stream mismatch\n got %x\nwant %x", trial, got, want)
		}
		d := NewDecoder(got)
		for i, o := range script {
			switch o.kind {
			case 0:
				v, err := d.ReadBits(o.n)
				if err != nil || v != o.v {
					t.Fatalf("trial %d op %d: ReadBits = %d, %v; want %d", trial, i, v, err, o.v)
				}
			case 1:
				v, err := d.ReadUvarint()
				if err != nil || v != o.v {
					t.Fatalf("trial %d op %d: ReadUvarint = %d, %v; want %d", trial, i, v, err, o.v)
				}
			case 2:
				v, err := d.ReadVarint()
				if err != nil || v != o.sv {
					t.Fatalf("trial %d op %d: ReadVarint = %d, %v; want %d", trial, i, v, err, o.sv)
				}
			case 3:
				p, err := d.ReadBytes()
				if err != nil || !bytes.Equal(p, o.bytes) {
					t.Fatalf("trial %d op %d: ReadBytes = %x, %v; want %x", trial, i, p, err, o.bytes)
				}
			case 4:
				v, err := d.ReadUint64()
				if err != nil || v != o.v {
					t.Fatalf("trial %d op %d: ReadUint64 = %d, %v; want %d", trial, i, v, err, o.v)
				}
			}
		}
	}
}

// TestReadBytesBorrowAliasing documents the borrow contract: an aligned
// borrow aliases the decoder's backing buffer (no copy), while ReadBytes
// always returns an independent copy.
func TestReadBytesBorrowAliasing(t *testing.T) {
	e := NewEncoder()
	e.WriteBytes([]byte("payload"))
	data, _ := e.Pack()

	d := NewDecoder(data)
	borrowed, err := d.ReadBytesBorrow()
	if err != nil || string(borrowed) != "payload" {
		t.Fatalf("borrow = %q, %v", borrowed, err)
	}
	data[1] ^= 0xff // scribble on the backing frame
	if string(borrowed) == "payload" {
		t.Fatal("aligned borrow did not alias the frame buffer")
	}
	data[1] ^= 0xff

	d = NewDecoder(data)
	copied, err := d.ReadBytes()
	if err != nil || string(copied) != "payload" {
		t.Fatalf("copy = %q, %v", copied, err)
	}
	data[1] ^= 0xff
	if string(copied) != "payload" {
		t.Fatal("ReadBytes result aliases the frame buffer; must be a copy")
	}
}

// TestReadBytesBorrowMisaligned forces a misaligned borrow (a leading
// bool shifts the stream) and checks the fallback still yields the right
// bytes.
func TestReadBytesBorrowMisaligned(t *testing.T) {
	e := NewEncoder()
	e.WriteBool(true)
	e.WriteBytes([]byte{0xaa, 0x55, 0x00, 0xff})
	data, _ := e.Pack()
	d := NewDecoder(data)
	if _, err := d.ReadBool(); err != nil {
		t.Fatal(err)
	}
	p, err := d.ReadBytesBorrow()
	if err != nil || !bytes.Equal(p, []byte{0xaa, 0x55, 0x00, 0xff}) {
		t.Fatalf("misaligned borrow = %x, %v", p, err)
	}
}

// TestReadBytesHugeLengthRejected feeds both byte readers a crafted
// uvarint length near 2^61 — large enough that a naive bits-remaining
// check overflows int64 — and requires a clean ErrShortMessage instead
// of a panic (this is remotely reachable: frame payloads come from
// peers).
func TestReadBytesHugeLengthRejected(t *testing.T) {
	e := NewEncoder()
	e.WriteUvarint(1 << 61)
	data, _ := e.Pack()
	if _, err := NewDecoder(data).ReadBytes(); err != ErrShortMessage {
		t.Fatalf("ReadBytes(huge length) = %v, want ErrShortMessage", err)
	}
	if _, err := NewDecoder(data).ReadBytesBorrow(); err != ErrShortMessage {
		t.Fatalf("ReadBytesBorrow(huge length) = %v, want ErrShortMessage", err)
	}
}

// TestEncoderRecycle checks that a recycled encoder starts clean: bytes
// written after recycling are exactly the new payload, with no residue
// from the previous life.
func TestEncoderRecycle(t *testing.T) {
	e := NewEncoder()
	e.WriteBytes([]byte("first message with some length"))
	data, _ := e.Pack()
	Recycle(e, data)
	e2 := NewEncoder() // may or may not be the same struct; both must work
	e2.WriteUvarint(42)
	got, bits := e2.Pack()
	if bits != 8 || len(got) != 1 || got[0] != 42 {
		t.Fatalf("recycled encoder produced %x (%d bits), want 2a (8 bits)", got, bits)
	}
}

package transport

import (
	"errors"
	"sync"
)

// Conn is one party's view of a bidirectional message channel. The
// multi-round protocols (gap, setsets, wire-level SyncIDs) are written
// against this interface so the same party code runs in-process (Pipe),
// over a network connection (netproto.Wire), or anywhere else messages
// can be carried.
type Conn interface {
	// Send transmits the encoder's payload to the peer, consuming it.
	Send(e *Encoder) error
	// Recv blocks until the peer's next message arrives.
	Recv() (*Decoder, error)
}

// PipeConn is one end of an in-process message pipe. Both ends share a
// Stats tally so experiments read exact bidirectional traffic.
type PipeConn struct {
	out   chan []byte
	in    chan []byte
	dir   Direction // direction of this end's sends, for Stats
	stats *pipeStats
}

type pipeStats struct {
	mu sync.Mutex
	s  Stats
}

// NewPipe returns the two ends of a message pipe: the first is by
// convention Alice's (its sends count as AliceToBob). The buffer allows
// a party to send its final message and return without waiting for the
// peer to drain it.
func NewPipe() (alice, bob *PipeConn) {
	ab := make(chan []byte, 64)
	ba := make(chan []byte, 64)
	st := &pipeStats{}
	return &PipeConn{out: ab, in: ba, dir: AliceToBob, stats: st},
		&PipeConn{out: ba, in: ab, dir: BobToAlice, stats: st}
}

// Send implements Conn.
func (p *PipeConn) Send(e *Encoder) error {
	data, bits := e.finish()
	p.stats.mu.Lock()
	p.stats.s.Rounds++
	if p.dir == AliceToBob {
		p.stats.s.BitsAtoB += bits
		p.stats.s.MsgsAtoB++
	} else {
		p.stats.s.BitsBtoA += bits
		p.stats.s.MsgsBtoA++
	}
	p.stats.mu.Unlock()
	select {
	case p.out <- data:
		return nil
	default:
		return errors.New("transport: pipe buffer full (protocol round mismatch)")
	}
}

// Recv implements Conn.
func (p *PipeConn) Recv() (*Decoder, error) {
	data, ok := <-p.in
	if !ok {
		return nil, errors.New("transport: pipe closed")
	}
	return NewDecoder(data), nil
}

// Close closes this end's outgoing stream; the peer's Recv then fails,
// which protocols treat as a peer crash.
func (p *PipeConn) Close() {
	close(p.out)
}

// Stats returns the shared traffic tally (both directions).
func (p *PipeConn) Stats() Stats {
	p.stats.mu.Lock()
	defer p.stats.mu.Unlock()
	return p.stats.s
}

// ConnStats extracts Stats from a Conn when the implementation records
// them (PipeConn and netproto wires do); otherwise it returns zero Stats
// and false.
func ConnStats(c Conn) (Stats, bool) {
	type statser interface{ Stats() Stats }
	if s, ok := c.(statser); ok {
		return s.Stats(), true
	}
	return Stats{}, false
}

// Package transport simulates the communication channel between Alice
// and Bob and accounts for every bit exchanged.
//
// The paper's results are communication bounds, so the reproduction must
// measure communication exactly rather than estimate it. Both parties run
// in one process, but every protocol message is serialized through an
// Encoder before the peer may read it, and a Channel tallies message
// sizes and rounds. A round, following §2, is one message: "the number of
// rounds of communication a protocol uses ... is equal to the number of
// messages sent."
package transport

import (
	"errors"
	"fmt"
	"sync"
)

// Direction identifies the sender of a message.
type Direction int

const (
	// AliceToBob marks messages sent by Alice.
	AliceToBob Direction = iota
	// BobToAlice marks messages sent by Bob.
	BobToAlice
)

// String names the direction for reports.
func (d Direction) String() string {
	if d == AliceToBob {
		return "alice→bob"
	}
	return "bob→alice"
}

// Stats summarizes the traffic carried by a Channel.
type Stats struct {
	Rounds     int   // number of messages (the paper's round count)
	BitsAtoB   int64 // payload bits Alice sent
	BitsBtoA   int64 // payload bits Bob sent
	MsgsAtoB   int
	MsgsBtoA   int
	maxPayload int64
}

// TotalBits returns all payload bits in both directions.
func (s Stats) TotalBits() int64 { return s.BitsAtoB + s.BitsBtoA }

// TotalBytes returns the total payload rounded up to bytes.
func (s Stats) TotalBytes() int64 { return (s.TotalBits() + 7) / 8 }

// String renders a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("rounds=%d a→b=%dbits b→a=%dbits total=%dB",
		s.Rounds, s.BitsAtoB, s.BitsBtoA, s.TotalBytes())
}

// Channel carries serialized messages between the two parties and tallies
// Stats. The zero value is ready to use.
type Channel struct {
	stats   Stats
	pending []message
}

type message struct {
	dir  Direction
	data []byte
	bits int64
}

// Send transmits an encoded message. The encoder is consumed: its
// contents become the message payload, measured in exact bits written.
func (c *Channel) Send(dir Direction, enc *Encoder) {
	data, bits := enc.finish()
	c.stats.Rounds++
	switch dir {
	case AliceToBob:
		c.stats.BitsAtoB += bits
		c.stats.MsgsAtoB++
	case BobToAlice:
		c.stats.BitsBtoA += bits
		c.stats.MsgsBtoA++
	}
	c.stats.ObservePayload(bits)
	c.pending = append(c.pending, message{dir: dir, data: data, bits: bits})
}

// Recv returns a decoder over the oldest undelivered message in the given
// direction. It returns an error if no such message is queued — protocols
// must consume messages in order, which catches round-structure bugs.
func (c *Channel) Recv(dir Direction) (*Decoder, error) {
	for i, m := range c.pending {
		if m.dir == dir {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			return NewDecoder(m.data), nil
		}
	}
	return nil, fmt.Errorf("transport: no pending message in direction %v", dir)
}

// Stats returns a snapshot of the traffic so far.
func (c *Channel) Stats() Stats { return c.stats }

// ErrShortMessage is returned when a Decoder runs out of payload.
var ErrShortMessage = errors.New("transport: message truncated")

// Encoder writes a message payload with exact bit accounting. Values are
// bit-packed; WriteBits is the primitive, with varint and length-prefixed
// helpers on top.
type Encoder struct {
	buf     []byte
	bitsUse int64 // exact logical bits written (may trail the byte buffer)
	cur     byte
	curN    uint // bits currently occupied in cur
}

// encPool recycles Encoders (with their payload buffers attached) so the
// steady-state send path allocates nothing. Encoders re-enter the pool
// only through Recycle — called by consumers, such as netproto's framed
// wire, that have fully copied the payload out. Encoders whose payload
// escapes to the caller (Pack) simply fall to the garbage collector.
var encPool = sync.Pool{New: func() any { return new(Encoder) }}

// NewEncoder returns an empty encoder, drawn from an internal pool. An
// encoder passed to a Send that documents recycling (netproto.Wire.Send)
// must not be used again afterwards — it may already be serving another
// goroutine.
func NewEncoder() *Encoder { return encPool.Get().(*Encoder) }

// Recycle returns an encoder and the payload buffer its finish/Pack
// produced to the pool. Only the sole owner of buf may call it, after
// fully consuming the bytes; retaining buf afterwards aliases a future
// encoder's scratch.
func Recycle(e *Encoder, buf []byte) {
	e.buf, e.cur, e.curN, e.bitsUse = buf[:0], 0, 0, 0
	encPool.Put(e)
}

// WriteBits appends the low n bits of v, most significant bit first.
// n must be in [0, 64].
func (e *Encoder) WriteBits(v uint64, n uint) {
	if n > 64 {
		panic("transport: WriteBits width > 64")
	}
	e.bitsUse += int64(n)
	if e.curN == 0 {
		// Byte-aligned fast path: emit whole bytes directly. The bit
		// stream is identical to the generic path — MSB first.
		for n >= 8 {
			n -= 8
			e.buf = append(e.buf, byte(v>>n))
		}
		if n == 0 {
			return
		}
	}
	for n > 0 {
		take := 8 - e.curN
		if take > n {
			take = n
		}
		chunk := byte(v >> (n - take) & (1<<take - 1))
		e.cur |= chunk << (8 - e.curN - take)
		e.curN += take
		n -= take
		if e.curN == 8 {
			e.buf = append(e.buf, e.cur)
			e.cur, e.curN = 0, 0
		}
	}
}

// WriteBool writes a single bit.
func (e *Encoder) WriteBool(b bool) {
	if b {
		e.WriteBits(1, 1)
	} else {
		e.WriteBits(0, 1)
	}
}

// WriteUvarint writes v in a bitwise varint: groups of 7 bits, each
// preceded by a continue flag, costing 8 bits per 7 payload bits. Each
// group is one 8-bit write (flag in the high bit), so the bit stream is
// the historical one while aligned encoders emit one byte per group.
func (e *Encoder) WriteUvarint(v uint64) {
	for v >= 0x80 {
		e.WriteBits(0x80|v&0x7f, 8)
		v >>= 7
	}
	e.WriteBits(v, 8)
}

// WriteVarint writes a signed value with zigzag coding.
func (e *Encoder) WriteVarint(v int64) {
	e.WriteUvarint(uint64(v<<1) ^ uint64(v>>63))
}

// WriteUint64 writes a fixed 64-bit value.
func (e *Encoder) WriteUint64(v uint64) { e.WriteBits(v, 64) }

// WriteBytes writes a length-prefixed byte string.
func (e *Encoder) WriteBytes(p []byte) {
	e.WriteUvarint(uint64(len(p)))
	if e.curN == 0 {
		// Aligned: the payload is appended wholesale instead of a bit at
		// a time. Identical bytes either way.
		e.buf = append(e.buf, p...)
		e.bitsUse += int64(len(p)) * 8
		return
	}
	for _, b := range p {
		e.WriteBits(uint64(b), 8)
	}
}

// Bits returns the exact number of payload bits written so far.
func (e *Encoder) Bits() int64 { return e.bitsUse }

// Pack flushes the trailing partial byte and returns the payload bytes
// and exact bit count, resetting the encoder. Use it when the encoder
// serves as a local bit packer rather than a channel message (e.g.
// serializing LSH keys for hashing); Channel.Send uses the same path.
func (e *Encoder) Pack() ([]byte, int64) { return e.finish() }

// finish flushes the trailing partial byte and returns payload and size.
func (e *Encoder) finish() ([]byte, int64) {
	buf := e.buf
	if e.curN > 0 {
		buf = append(buf, e.cur)
	}
	bits := e.bitsUse
	e.buf, e.cur, e.curN, e.bitsUse = nil, 0, 0, 0
	return buf, bits
}

// Decoder reads a payload produced by an Encoder, in the same order.
type Decoder struct {
	buf []byte
	pos int64 // bit position
}

// NewDecoder wraps a payload.
func NewDecoder(data []byte) *Decoder { return &Decoder{buf: data} }

// Reset points the decoder at a new payload, reusing the struct. Wire
// implementations that own a reusable frame buffer reset one decoder per
// frame instead of allocating.
func (d *Decoder) Reset(data []byte) { d.buf, d.pos = data, 0 }

// Remaining returns how many whole bytes are left to read. Structure
// decoders use it to reject peer-supplied element counts that the rest
// of the frame could not possibly encode, *before* allocating for them
// — a few hostile header bytes must not reserve gigabytes.
func (d *Decoder) Remaining() int {
	rem := int64(len(d.buf)) - (d.pos+7)/8
	if rem < 0 {
		return 0
	}
	return int(rem)
}

// ReadBits reads n bits written by WriteBits.
func (d *Decoder) ReadBits(n uint) (uint64, error) {
	if n > 64 {
		panic("transport: ReadBits width > 64")
	}
	if d.pos+int64(n) > int64(len(d.buf))*8 {
		return 0, ErrShortMessage
	}
	var v uint64
	if d.pos&7 == 0 {
		// Byte-aligned fast path: consume whole bytes (MSB first, the
		// same bit order as the generic path).
		i := d.pos >> 3
		for n >= 8 {
			v = v<<8 | uint64(d.buf[i])
			i++
			n -= 8
		}
		d.pos = i << 3
		if n == 0 {
			return v, nil
		}
	}
	for n > 0 {
		byteIdx := d.pos >> 3
		bitOff := uint(d.pos & 7)
		take := 8 - bitOff
		if take > n {
			take = n
		}
		chunk := uint64(d.buf[byteIdx]>>(8-bitOff-take)) & (1<<take - 1)
		v = v<<take | chunk
		d.pos += int64(take)
		n -= take
	}
	return v, nil
}

// ReadBool reads one bit.
func (d *Decoder) ReadBool() (bool, error) {
	v, err := d.ReadBits(1)
	return v == 1, err
}

// ReadUvarint reads a value written by WriteUvarint. Each group is one
// 8-bit read (continue flag in the high bit) — the same bit stream the
// historical 1+7 split consumed, at a fraction of the cost.
func (d *Decoder) ReadUvarint() (uint64, error) {
	var v uint64
	var shift uint
	for {
		b, err := d.ReadBits(8)
		if err != nil {
			return 0, err
		}
		if shift >= 64 {
			return 0, errors.New("transport: uvarint overflow")
		}
		v |= (b & 0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
		shift += 7
	}
}

// ReadVarint reads a value written by WriteVarint.
func (d *Decoder) ReadVarint() (int64, error) {
	u, err := d.ReadUvarint()
	if err != nil {
		return 0, err
	}
	return int64(u>>1) ^ -int64(u&1), nil
}

// ReadUint64 reads a fixed 64-bit value.
func (d *Decoder) ReadUint64() (uint64, error) { return d.ReadBits(64) }

// ReadBytes reads a length-prefixed byte string. The returned slice is
// freshly allocated and owned by the caller.
func (d *Decoder) ReadBytes() ([]byte, error) {
	n, err := d.ReadUvarint()
	if err != nil {
		return nil, err
	}
	// Compare against the payload length before multiplying: a crafted
	// length near 2^61 would overflow int64(n)*8 and slip past the
	// remaining-bits check into a panicking allocation.
	if n > uint64(len(d.buf)) || int64(n)*8 > int64(len(d.buf))*8-d.pos {
		return nil, ErrShortMessage
	}
	p := make([]byte, n)
	d.readBytesInto(p)
	return p, nil
}

// ReadBytesBorrow reads a length-prefixed byte string without copying
// when the string is byte-aligned in the payload (it always is when the
// sender wrote only whole-byte values before it). The returned slice
// aliases the decoder's backing buffer: it is valid only until the
// backing frame is released or overwritten — for a netproto wire, until
// the next Recv on that wire — and must not be mutated. Callers that
// retain bytes use ReadBytes instead.
func (d *Decoder) ReadBytesBorrow() ([]byte, error) {
	n, err := d.ReadUvarint()
	if err != nil {
		return nil, err
	}
	// Overflow-safe bound, as in ReadBytes.
	if n > uint64(len(d.buf)) || int64(n)*8 > int64(len(d.buf))*8-d.pos {
		return nil, ErrShortMessage
	}
	if d.pos&7 == 0 {
		i := d.pos >> 3
		d.pos += int64(n) * 8
		return d.buf[i : i+int64(n) : i+int64(n)], nil
	}
	p := make([]byte, n)
	d.readBytesInto(p)
	return p, nil
}

// readBytesInto fills p from the stream; the caller has bounds-checked.
func (d *Decoder) readBytesInto(p []byte) {
	if d.pos&7 == 0 {
		i := d.pos >> 3
		copy(p, d.buf[i:])
		d.pos += int64(len(p)) * 8
		return
	}
	for i := range p {
		v, _ := d.ReadBits(8)
		p[i] = byte(v)
	}
}

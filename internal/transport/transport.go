// Package transport simulates the communication channel between Alice
// and Bob and accounts for every bit exchanged.
//
// The paper's results are communication bounds, so the reproduction must
// measure communication exactly rather than estimate it. Both parties run
// in one process, but every protocol message is serialized through an
// Encoder before the peer may read it, and a Channel tallies message
// sizes and rounds. A round, following §2, is one message: "the number of
// rounds of communication a protocol uses ... is equal to the number of
// messages sent."
package transport

import (
	"errors"
	"fmt"
)

// Direction identifies the sender of a message.
type Direction int

const (
	// AliceToBob marks messages sent by Alice.
	AliceToBob Direction = iota
	// BobToAlice marks messages sent by Bob.
	BobToAlice
)

// String names the direction for reports.
func (d Direction) String() string {
	if d == AliceToBob {
		return "alice→bob"
	}
	return "bob→alice"
}

// Stats summarizes the traffic carried by a Channel.
type Stats struct {
	Rounds     int   // number of messages (the paper's round count)
	BitsAtoB   int64 // payload bits Alice sent
	BitsBtoA   int64 // payload bits Bob sent
	MsgsAtoB   int
	MsgsBtoA   int
	maxPayload int64
}

// TotalBits returns all payload bits in both directions.
func (s Stats) TotalBits() int64 { return s.BitsAtoB + s.BitsBtoA }

// TotalBytes returns the total payload rounded up to bytes.
func (s Stats) TotalBytes() int64 { return (s.TotalBits() + 7) / 8 }

// String renders a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("rounds=%d a→b=%dbits b→a=%dbits total=%dB",
		s.Rounds, s.BitsAtoB, s.BitsBtoA, s.TotalBytes())
}

// Channel carries serialized messages between the two parties and tallies
// Stats. The zero value is ready to use.
type Channel struct {
	stats   Stats
	pending []message
}

type message struct {
	dir  Direction
	data []byte
	bits int64
}

// Send transmits an encoded message. The encoder is consumed: its
// contents become the message payload, measured in exact bits written.
func (c *Channel) Send(dir Direction, enc *Encoder) {
	data, bits := enc.finish()
	c.stats.Rounds++
	switch dir {
	case AliceToBob:
		c.stats.BitsAtoB += bits
		c.stats.MsgsAtoB++
	case BobToAlice:
		c.stats.BitsBtoA += bits
		c.stats.MsgsBtoA++
	}
	if bits > c.stats.maxPayload {
		c.stats.maxPayload = bits
	}
	c.pending = append(c.pending, message{dir: dir, data: data, bits: bits})
}

// Recv returns a decoder over the oldest undelivered message in the given
// direction. It returns an error if no such message is queued — protocols
// must consume messages in order, which catches round-structure bugs.
func (c *Channel) Recv(dir Direction) (*Decoder, error) {
	for i, m := range c.pending {
		if m.dir == dir {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			return NewDecoder(m.data), nil
		}
	}
	return nil, fmt.Errorf("transport: no pending message in direction %v", dir)
}

// Stats returns a snapshot of the traffic so far.
func (c *Channel) Stats() Stats { return c.stats }

// ErrShortMessage is returned when a Decoder runs out of payload.
var ErrShortMessage = errors.New("transport: message truncated")

// Encoder writes a message payload with exact bit accounting. Values are
// bit-packed; WriteBits is the primitive, with varint and length-prefixed
// helpers on top.
type Encoder struct {
	buf     []byte
	bitsUse int64 // exact logical bits written (may trail the byte buffer)
	cur     byte
	curN    uint // bits currently occupied in cur
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// WriteBits appends the low n bits of v, most significant bit first.
// n must be in [0, 64].
func (e *Encoder) WriteBits(v uint64, n uint) {
	if n > 64 {
		panic("transport: WriteBits width > 64")
	}
	e.bitsUse += int64(n)
	for n > 0 {
		take := 8 - e.curN
		if take > n {
			take = n
		}
		chunk := byte(v >> (n - take) & (1<<take - 1))
		e.cur |= chunk << (8 - e.curN - take)
		e.curN += take
		n -= take
		if e.curN == 8 {
			e.buf = append(e.buf, e.cur)
			e.cur, e.curN = 0, 0
		}
	}
}

// WriteBool writes a single bit.
func (e *Encoder) WriteBool(b bool) {
	if b {
		e.WriteBits(1, 1)
	} else {
		e.WriteBits(0, 1)
	}
}

// WriteUvarint writes v in a bitwise varint: groups of 7 bits, each
// preceded by a continue flag, costing 8 bits per 7 payload bits.
func (e *Encoder) WriteUvarint(v uint64) {
	for {
		if v < 0x80 {
			e.WriteBits(0, 1)
			e.WriteBits(v, 7)
			return
		}
		e.WriteBits(1, 1)
		e.WriteBits(v&0x7f, 7)
		v >>= 7
	}
}

// WriteVarint writes a signed value with zigzag coding.
func (e *Encoder) WriteVarint(v int64) {
	e.WriteUvarint(uint64(v<<1) ^ uint64(v>>63))
}

// WriteUint64 writes a fixed 64-bit value.
func (e *Encoder) WriteUint64(v uint64) { e.WriteBits(v, 64) }

// WriteBytes writes a length-prefixed byte string.
func (e *Encoder) WriteBytes(p []byte) {
	e.WriteUvarint(uint64(len(p)))
	for _, b := range p {
		e.WriteBits(uint64(b), 8)
	}
}

// Bits returns the exact number of payload bits written so far.
func (e *Encoder) Bits() int64 { return e.bitsUse }

// Pack flushes the trailing partial byte and returns the payload bytes
// and exact bit count, resetting the encoder. Use it when the encoder
// serves as a local bit packer rather than a channel message (e.g.
// serializing LSH keys for hashing); Channel.Send uses the same path.
func (e *Encoder) Pack() ([]byte, int64) { return e.finish() }

// finish flushes the trailing partial byte and returns payload and size.
func (e *Encoder) finish() ([]byte, int64) {
	buf := e.buf
	if e.curN > 0 {
		buf = append(buf, e.cur)
	}
	bits := e.bitsUse
	e.buf, e.cur, e.curN, e.bitsUse = nil, 0, 0, 0
	return buf, bits
}

// Decoder reads a payload produced by an Encoder, in the same order.
type Decoder struct {
	buf []byte
	pos int64 // bit position
}

// NewDecoder wraps a payload.
func NewDecoder(data []byte) *Decoder { return &Decoder{buf: data} }

// ReadBits reads n bits written by WriteBits.
func (d *Decoder) ReadBits(n uint) (uint64, error) {
	if n > 64 {
		panic("transport: ReadBits width > 64")
	}
	if d.pos+int64(n) > int64(len(d.buf))*8 {
		return 0, ErrShortMessage
	}
	var v uint64
	for n > 0 {
		byteIdx := d.pos >> 3
		bitOff := uint(d.pos & 7)
		take := 8 - bitOff
		if take > n {
			take = n
		}
		chunk := uint64(d.buf[byteIdx]>>(8-bitOff-take)) & (1<<take - 1)
		v = v<<take | chunk
		d.pos += int64(take)
		n -= take
	}
	return v, nil
}

// ReadBool reads one bit.
func (d *Decoder) ReadBool() (bool, error) {
	v, err := d.ReadBits(1)
	return v == 1, err
}

// ReadUvarint reads a value written by WriteUvarint.
func (d *Decoder) ReadUvarint() (uint64, error) {
	var v uint64
	var shift uint
	for {
		cont, err := d.ReadBits(1)
		if err != nil {
			return 0, err
		}
		chunk, err := d.ReadBits(7)
		if err != nil {
			return 0, err
		}
		if shift >= 64 {
			return 0, errors.New("transport: uvarint overflow")
		}
		v |= chunk << shift
		if cont == 0 {
			return v, nil
		}
		shift += 7
	}
}

// ReadVarint reads a value written by WriteVarint.
func (d *Decoder) ReadVarint() (int64, error) {
	u, err := d.ReadUvarint()
	if err != nil {
		return 0, err
	}
	return int64(u>>1) ^ -int64(u&1), nil
}

// ReadUint64 reads a fixed 64-bit value.
func (d *Decoder) ReadUint64() (uint64, error) { return d.ReadBits(64) }

// ReadBytes reads a length-prefixed byte string.
func (d *Decoder) ReadBytes() ([]byte, error) {
	n, err := d.ReadUvarint()
	if err != nil {
		return nil, err
	}
	if int64(n)*8 > int64(len(d.buf))*8-d.pos {
		return nil, ErrShortMessage
	}
	p := make([]byte, n)
	for i := range p {
		v, err := d.ReadBits(8)
		if err != nil {
			return nil, err
		}
		p[i] = byte(v)
	}
	return p, nil
}

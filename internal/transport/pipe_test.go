package transport

import (
	"sync"
	"testing"
)

func TestPipeRoundTrip(t *testing.T) {
	a, b := NewPipe()
	e := NewEncoder()
	e.WriteUvarint(99)
	if err := a.Send(e); err != nil {
		t.Fatal(err)
	}
	d, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := d.ReadUvarint(); v != 99 {
		t.Fatalf("payload = %d", v)
	}
}

func TestPipeBidirectional(t *testing.T) {
	a, b := NewPipe()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		d, err := b.Recv()
		if err != nil {
			t.Error(err)
			return
		}
		v, _ := d.ReadUvarint()
		e := NewEncoder()
		e.WriteUvarint(v + 1)
		if err := b.Send(e); err != nil {
			t.Error(err)
		}
	}()
	e := NewEncoder()
	e.WriteUvarint(41)
	if err := a.Send(e); err != nil {
		t.Fatal(err)
	}
	d, err := a.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := d.ReadUvarint(); v != 42 {
		t.Fatalf("reply = %d", v)
	}
	wg.Wait()
}

func TestPipeSharedStats(t *testing.T) {
	a, b := NewPipe()
	e := NewEncoder()
	e.WriteBits(0, 10)
	if err := a.Send(e); err != nil {
		t.Fatal(err)
	}
	e2 := NewEncoder()
	e2.WriteBits(0, 20)
	if err := b.Send(e2); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.BitsAtoB != 10 || st.BitsBtoA != 20 || st.Rounds != 2 {
		t.Errorf("stats = %+v", st)
	}
	if b.Stats() != st {
		t.Error("ends disagree on shared stats")
	}
}

func TestPipeCloseUnblocksPeer(t *testing.T) {
	a, b := NewPipe()
	done := make(chan error, 1)
	go func() {
		_, err := b.Recv()
		done <- err
	}()
	a.Close()
	if err := <-done; err == nil {
		t.Fatal("Recv on closed pipe succeeded")
	}
}

func TestPipeDrainsBufferedBeforeClose(t *testing.T) {
	a, b := NewPipe()
	e := NewEncoder()
	e.WriteUvarint(5)
	if err := a.Send(e); err != nil {
		t.Fatal(err)
	}
	a.Close()
	d, err := b.Recv()
	if err != nil {
		t.Fatalf("buffered message lost after close: %v", err)
	}
	if v, _ := d.ReadUvarint(); v != 5 {
		t.Fatalf("payload = %d", v)
	}
	if _, err := b.Recv(); err == nil {
		t.Fatal("Recv past close succeeded")
	}
}

func TestConnStats(t *testing.T) {
	a, _ := NewPipe()
	if _, ok := ConnStats(a); !ok {
		t.Error("PipeConn should expose stats")
	}
	var c Conn = fakeConn{}
	if _, ok := ConnStats(c); ok {
		t.Error("fake conn should not expose stats")
	}
}

type fakeConn struct{}

func (fakeConn) Send(*Encoder) error     { return nil }
func (fakeConn) Recv() (*Decoder, error) { return NewDecoder(nil), nil }

package transport

import "testing"

// sendBits pushes one message of exactly n bits in dir through c.
func sendBits(t *testing.T, c *Channel, dir Direction, n int) {
	t.Helper()
	e := NewEncoder()
	for i := 0; i < n; i++ {
		e.WriteBits(1, 1)
	}
	c.Send(dir, e)
	if _, err := c.Recv(dir); err != nil {
		t.Fatalf("recv: %v", err)
	}
}

func TestStatsMaxPayloadTracking(t *testing.T) {
	var c Channel
	if got := c.Stats().MaxPayload(); got != 0 {
		t.Fatalf("fresh channel MaxPayload = %d, want 0", got)
	}
	sendBits(t, &c, AliceToBob, 17)
	sendBits(t, &c, BobToAlice, 300)
	sendBits(t, &c, AliceToBob, 5)
	st := c.Stats()
	if got := st.MaxPayload(); got != 300 {
		t.Fatalf("MaxPayload = %d, want 300 (largest single message, not last)", got)
	}
	if st.TotalBits() != 17+300+5 {
		t.Fatalf("TotalBits = %d, want %d", st.TotalBits(), 17+300+5)
	}
}

func TestObservePayloadKeepsMaximum(t *testing.T) {
	var s Stats
	for _, bits := range []int64{16, 4096, 0, 512} {
		s.ObservePayload(bits)
	}
	if got := s.MaxPayload(); got != 4096 {
		t.Fatalf("ObservePayload max = %d, want 4096", got)
	}
}

func TestStatsAddMergesMaxPayloadByMaximum(t *testing.T) {
	a := Stats{Rounds: 2, BitsAtoB: 10, maxPayload: 8}
	b := Stats{Rounds: 1, BitsBtoA: 20, maxPayload: 64}
	sum := a.Add(b)
	if sum.Rounds != 3 || sum.BitsAtoB != 10 || sum.BitsBtoA != 20 {
		t.Fatalf("Add sums wrong: %+v", sum)
	}
	if got := sum.MaxPayload(); got != 64 {
		t.Fatalf("Add MaxPayload = %d, want max(8,64)=64, not the sum", got)
	}
	// Commutes: folding the other way keeps the same maximum.
	if got := b.Add(a).MaxPayload(); got != 64 {
		t.Fatalf("reverse Add MaxPayload = %d, want 64", got)
	}
	// A zero operand is the identity for the maximum.
	if got := sum.Add(Stats{}).MaxPayload(); got != 64 {
		t.Fatalf("Add zero MaxPayload = %d, want 64", got)
	}
}

func TestCollectorMergesMaxPayload(t *testing.T) {
	var col Collector
	col.Add(Stats{Rounds: 1, maxPayload: 40})
	col.Add(Stats{Rounds: 1, maxPayload: 1024})
	col.Add(Stats{Rounds: 1, maxPayload: 7})
	total, n := col.Total()
	if n != 3 {
		t.Fatalf("tallies = %d, want 3", n)
	}
	if got := total.MaxPayload(); got != 1024 {
		t.Fatalf("collector MaxPayload = %d, want 1024", got)
	}
}

package transport

import (
	"testing"
	"testing/quick"
)

func TestBitsRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.WriteBits(0b101, 3)
	e.WriteBits(0xdeadbeef, 32)
	e.WriteBits(1, 1)
	e.WriteBits(0, 64)
	wantBits := int64(3 + 32 + 1 + 64)
	if e.Bits() != wantBits {
		t.Fatalf("Bits() = %d, want %d", e.Bits(), wantBits)
	}
	data, bits := e.finish()
	if bits != wantBits {
		t.Fatalf("finish bits = %d", bits)
	}
	d := NewDecoder(data)
	if v, _ := d.ReadBits(3); v != 0b101 {
		t.Fatalf("3-bit field = %b", v)
	}
	if v, _ := d.ReadBits(32); v != 0xdeadbeef {
		t.Fatalf("32-bit field = %x", v)
	}
	if v, _ := d.ReadBits(1); v != 1 {
		t.Fatalf("flag = %d", v)
	}
	if v, _ := d.ReadBits(64); v != 0 {
		t.Fatalf("zero field = %d", v)
	}
}

func TestBitsPropertyRoundTrip(t *testing.T) {
	prop := func(vals []uint64, widthsRaw []uint8) bool {
		n := len(vals)
		if len(widthsRaw) < n {
			n = len(widthsRaw)
		}
		widths := make([]uint, n)
		for i := 0; i < n; i++ {
			widths[i] = uint(widthsRaw[i]%64) + 1
		}
		e := NewEncoder()
		for i := 0; i < n; i++ {
			e.WriteBits(vals[i], widths[i])
		}
		data, _ := e.finish()
		d := NewDecoder(data)
		for i := 0; i < n; i++ {
			want := vals[i]
			if widths[i] < 64 {
				want &= 1<<widths[i] - 1
			}
			got, err := d.ReadBits(widths[i])
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUvarintRoundTrip(t *testing.T) {
	prop := func(v uint64) bool {
		e := NewEncoder()
		e.WriteUvarint(v)
		data, _ := e.finish()
		got, err := NewDecoder(data).ReadUvarint()
		return err == nil && got == v
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestVarintRoundTrip(t *testing.T) {
	prop := func(v int64) bool {
		e := NewEncoder()
		e.WriteVarint(v)
		data, _ := e.finish()
		got, err := NewDecoder(data).ReadVarint()
		return err == nil && got == v
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
	for _, v := range []int64{0, -1, 1, -64, 63, 1 << 40, -(1 << 40), -1 << 63, 1<<63 - 1} {
		e := NewEncoder()
		e.WriteVarint(v)
		data, _ := e.finish()
		got, err := NewDecoder(data).ReadVarint()
		if err != nil || got != v {
			t.Errorf("varint %d round-tripped to %d (%v)", v, got, err)
		}
	}
}

func TestUvarintCost(t *testing.T) {
	// 8 bits per 7 payload bits: small values must stay small.
	e := NewEncoder()
	e.WriteUvarint(5)
	if e.Bits() != 8 {
		t.Errorf("uvarint(5) cost %d bits, want 8", e.Bits())
	}
	e2 := NewEncoder()
	e2.WriteUvarint(1 << 20)
	if e2.Bits() != 24 {
		t.Errorf("uvarint(2^20) cost %d bits, want 24", e2.Bits())
	}
}

func TestBytesRoundTrip(t *testing.T) {
	prop := func(p []byte) bool {
		e := NewEncoder()
		e.WriteBytes(p)
		data, _ := e.finish()
		got, err := NewDecoder(data).ReadBytes()
		if err != nil || len(got) != len(p) {
			return false
		}
		for i := range p {
			if got[i] != p[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestShortMessage(t *testing.T) {
	d := NewDecoder([]byte{0xff})
	if _, err := d.ReadBits(16); err != ErrShortMessage {
		t.Errorf("ReadBits past end: err = %v", err)
	}
	d2 := NewDecoder(nil)
	if _, err := d2.ReadUvarint(); err == nil {
		t.Error("ReadUvarint on empty payload succeeded")
	}
	// Length prefix larger than remaining payload.
	e := NewEncoder()
	e.WriteUvarint(1000)
	data, _ := e.finish()
	if _, err := NewDecoder(data).ReadBytes(); err == nil {
		t.Error("ReadBytes with bogus length succeeded")
	}
}

func TestChannelAccounting(t *testing.T) {
	var ch Channel
	e := NewEncoder()
	e.WriteBits(0, 10)
	ch.Send(AliceToBob, e)
	e2 := NewEncoder()
	e2.WriteBits(0, 20)
	ch.Send(BobToAlice, e2)
	e3 := NewEncoder()
	e3.WriteBits(0, 5)
	ch.Send(AliceToBob, e3)

	s := ch.Stats()
	if s.Rounds != 3 {
		t.Errorf("rounds = %d, want 3", s.Rounds)
	}
	if s.BitsAtoB != 15 || s.BitsBtoA != 20 {
		t.Errorf("bits = %d/%d, want 15/20", s.BitsAtoB, s.BitsBtoA)
	}
	if s.TotalBits() != 35 {
		t.Errorf("total = %d", s.TotalBits())
	}
	if s.TotalBytes() != 5 { // ceil(35/8)
		t.Errorf("total bytes = %d, want 5", s.TotalBytes())
	}
	if s.MsgsAtoB != 2 || s.MsgsBtoA != 1 {
		t.Errorf("message counts = %d/%d", s.MsgsAtoB, s.MsgsBtoA)
	}
}

func TestChannelDelivery(t *testing.T) {
	var ch Channel
	e := NewEncoder()
	e.WriteUvarint(42)
	ch.Send(AliceToBob, e)

	if _, err := ch.Recv(BobToAlice); err == nil {
		t.Error("Recv in wrong direction succeeded")
	}
	d, err := ch.Recv(AliceToBob)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if v, _ := d.ReadUvarint(); v != 42 {
		t.Errorf("payload = %d", v)
	}
	if _, err := ch.Recv(AliceToBob); err == nil {
		t.Error("second Recv of single message succeeded")
	}
}

func TestChannelFIFO(t *testing.T) {
	var ch Channel
	for i := uint64(0); i < 5; i++ {
		e := NewEncoder()
		e.WriteUvarint(i)
		ch.Send(AliceToBob, e)
	}
	for i := uint64(0); i < 5; i++ {
		d, err := ch.Recv(AliceToBob)
		if err != nil {
			t.Fatal(err)
		}
		if v, _ := d.ReadUvarint(); v != i {
			t.Fatalf("message %d delivered out of order: %d", i, v)
		}
	}
}

func TestDirectionString(t *testing.T) {
	if AliceToBob.String() != "alice→bob" || BobToAlice.String() != "bob→alice" {
		t.Error("direction labels wrong")
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Rounds: 2, BitsAtoB: 9, BitsBtoA: 7}
	if got := s.String(); got == "" {
		t.Error("empty Stats string")
	}
}

package transport

import "sync"

// Add returns the component-wise sum of s and o. Per-session tallies
// roll up into aggregate server totals with it; maxPayload combines by
// maximum, since the largest single message across sessions is still the
// largest single message of the aggregate.
func (s Stats) Add(o Stats) Stats {
	s.Rounds += o.Rounds
	s.BitsAtoB += o.BitsAtoB
	s.BitsBtoA += o.BitsBtoA
	s.MsgsAtoB += o.MsgsAtoB
	s.MsgsBtoA += o.MsgsBtoA
	if o.maxPayload > s.maxPayload {
		s.maxPayload = o.maxPayload
	}
	return s
}

// ObservePayload records one message of the given size in payload bits,
// keeping the running maximum. Channel.Send calls it internally; wire
// adapters in other packages that count traffic themselves use it to
// feed the same tally.
func (s *Stats) ObservePayload(bits int64) {
	if bits > s.maxPayload {
		s.maxPayload = bits
	}
}

// MaxPayload returns the largest single message carried, in payload
// bits (0 before any message). Channels track it per Send; Add folds
// tallies together by maximum, so an aggregate's MaxPayload is the
// largest single message any contributing session carried — the figure
// that bounds peak frame-buffer memory per connection.
func (s Stats) MaxPayload() int64 { return s.maxPayload }

// Collector accumulates Stats from concurrently completing sessions. The
// zero value is ready to use; all methods are safe for concurrent use.
type Collector struct {
	mu    sync.Mutex
	total Stats
	n     int
}

// Add folds one session's tally into the aggregate.
func (c *Collector) Add(s Stats) {
	c.mu.Lock()
	c.total = c.total.Add(s)
	c.n++
	c.mu.Unlock()
}

// Total returns the aggregate traffic and the number of tallies folded
// in so far.
func (c *Collector) Total() (Stats, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total, c.n
}

package transport

import "sync"

// Add returns the component-wise sum of s and o. Per-session tallies
// roll up into aggregate server totals with it; maxPayload combines by
// maximum, since the largest single message across sessions is still the
// largest single message of the aggregate.
func (s Stats) Add(o Stats) Stats {
	s.Rounds += o.Rounds
	s.BitsAtoB += o.BitsAtoB
	s.BitsBtoA += o.BitsBtoA
	s.MsgsAtoB += o.MsgsAtoB
	s.MsgsBtoA += o.MsgsBtoA
	if o.maxPayload > s.maxPayload {
		s.maxPayload = o.maxPayload
	}
	return s
}

// Collector accumulates Stats from concurrently completing sessions. The
// zero value is ready to use; all methods are safe for concurrent use.
type Collector struct {
	mu    sync.Mutex
	total Stats
	n     int
}

// Add folds one session's tally into the aggregate.
func (c *Collector) Add(s Stats) {
	c.mu.Lock()
	c.total = c.total.Add(s)
	c.n++
	c.mu.Unlock()
}

// Total returns the aggregate traffic and the number of tallies folded
// in so far.
func (c *Collector) Total() (Stats, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total, c.n
}

package iblt

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/transport"
)

func keys(vals ...uint64) []uint64 { return vals }

func sortedCopy(xs []uint64) []uint64 {
	c := append([]uint64(nil), xs...)
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	return c
}

func equalSets(a, b []uint64) bool {
	a, b = sortedCopy(a), sortedCopy(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestInsertDeleteCancel(t *testing.T) {
	tb := New(64, 3, 1)
	tb.Insert(42)
	tb.Delete(42)
	add, rem, err := tb.Decode()
	if err != nil || len(add) != 0 || len(rem) != 0 {
		t.Fatalf("decode after cancel: add=%v rem=%v err=%v", add, rem, err)
	}
}

func TestDecodeSmallDifference(t *testing.T) {
	tb := New(64, 3, 2)
	ins := keys(1, 2, 3, 4, 5)
	del := keys(100, 200)
	for _, k := range ins {
		tb.Insert(k)
	}
	for _, k := range del {
		tb.Delete(k)
	}
	add, rem, err := tb.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !equalSets(add, ins) {
		t.Errorf("added = %v, want %v", add, ins)
	}
	if !equalSets(rem, del) {
		t.Errorf("removed = %v, want %v", rem, del)
	}
}

func TestDecodeConsumesTable(t *testing.T) {
	tb := New(64, 3, 3)
	tb.Insert(7)
	if _, _, err := tb.Decode(); err != nil {
		t.Fatal(err)
	}
	add, rem, err := tb.Decode()
	if err != nil || len(add)+len(rem) != 0 {
		t.Errorf("second decode: add=%v rem=%v err=%v", add, rem, err)
	}
}

func TestSubtractRecoversDifference(t *testing.T) {
	const seed = 7
	bob := New(256, 3, seed)
	alice := New(256, 3, seed)
	// Large shared portion, small difference.
	for i := uint64(0); i < 10000; i++ {
		bob.Insert(i)
		alice.Insert(i)
	}
	onlyBob := keys(20001, 20002, 20003)
	onlyAlice := keys(30001, 30002)
	for _, k := range onlyBob {
		bob.Insert(k)
	}
	for _, k := range onlyAlice {
		alice.Insert(k)
	}
	if err := bob.Subtract(alice); err != nil {
		t.Fatal(err)
	}
	add, rem, err := bob.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !equalSets(add, onlyBob) || !equalSets(rem, onlyAlice) {
		t.Errorf("diff = +%v −%v", add, rem)
	}
}

func TestSubtractGeometryMismatch(t *testing.T) {
	a := New(64, 3, 1)
	b := New(128, 3, 1)
	if err := a.Subtract(b); err == nil {
		t.Error("mismatched subtract succeeded")
	}
	c := New(64, 4, 1)
	if err := a.Subtract(c); err == nil {
		t.Error("mismatched q subtract succeeded")
	}
}

func TestOverloadReportsPartial(t *testing.T) {
	tb := New(12, 3, 5)
	for i := uint64(0); i < 100; i++ {
		tb.Insert(i)
	}
	_, _, err := tb.Decode()
	if err != ErrPartial {
		t.Errorf("overloaded decode err = %v, want ErrPartial", err)
	}
}

// TestTheorem26Threshold reproduces the qualitative content of Theorem
// 2.6: a table with m cells reliably decodes c·m keys for a small enough
// constant c, and reliably fails well above the peeling threshold.
func TestTheorem26Threshold(t *testing.T) {
	const m = 600
	trials := 40
	succ := func(load float64) int {
		ok := 0
		src := rng.New(uint64(load * 1e6))
		for trial := 0; trial < trials; trial++ {
			tb := New(m, 3, src.Uint64())
			n := int(load * float64(m))
			for i := 0; i < n; i++ {
				tb.Insert(src.Uint64())
			}
			if _, _, err := tb.Decode(); err == nil {
				ok++
			}
		}
		return ok
	}
	if got := succ(0.5); got != trials {
		t.Errorf("load 0.5: %d/%d decoded; want all", got, trials)
	}
	// The q=3 peeling threshold is ~0.818; load 1.2 must essentially
	// always fail.
	if got := succ(1.2); got > 1 {
		t.Errorf("load 1.2: %d/%d decoded; want ~0", got, trials)
	}
}

func TestDiffHelper(t *testing.T) {
	shared := make([]uint64, 5000)
	src := rng.New(11)
	for i := range shared {
		shared[i] = src.Uint64()
	}
	bob := append(append([]uint64(nil), shared...), 1, 2, 3)
	alice := append(append([]uint64(nil), shared...), 9, 8)
	ob, oa, err := Diff(bob, alice, 8, 3, 77)
	if err != nil {
		t.Fatal(err)
	}
	if !equalSets(ob, keys(1, 2, 3)) || !equalSets(oa, keys(9, 8)) {
		t.Errorf("Diff = +%v −%v", ob, oa)
	}
}

func TestDiffPropertyRandomSets(t *testing.T) {
	prop := func(seed uint64, nb, na uint8) bool {
		src := rng.New(seed)
		nBob := int(nb%20) + 1
		nAlice := int(na%20) + 1
		bobOnly := map[uint64]bool{}
		aliceOnly := map[uint64]bool{}
		var bob, alice []uint64
		for i := 0; i < 300; i++ { // shared
			k := src.Uint64()
			bob = append(bob, k)
			alice = append(alice, k)
		}
		for i := 0; i < nBob; i++ {
			k := src.Uint64() | 1<<63
			bobOnly[k] = true
			bob = append(bob, k)
		}
		for i := 0; i < nAlice; i++ {
			k := src.Uint64() &^ (1 << 63)
			aliceOnly[k] = true
			alice = append(alice, k)
		}
		ob, oa, err := DiffAdaptive(bob, alice, nBob+nAlice, 3, seed^0xabc, 4)
		if err != nil {
			return false
		}
		if len(ob) != len(bobOnly) || len(oa) != len(aliceOnly) {
			return false
		}
		for _, k := range ob {
			if !bobOnly[k] {
				return false
			}
		}
		for _, k := range oa {
			if !aliceOnly[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	const seed = 99
	tb := New(96, 4, seed)
	for i := uint64(0); i < 20; i++ {
		tb.Insert(i * 1234567)
	}
	e := transport.NewEncoder()
	tb.Encode(e)
	var ch transport.Channel
	ch.Send(transport.AliceToBob, e)
	d, err := ch.Recv(transport.AliceToBob)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFrom(d, seed)
	if err != nil {
		t.Fatal(err)
	}
	// The decoded table must behave identically: subtracting the
	// original leaves it empty.
	if err := got.Subtract(tb); err != nil {
		t.Fatal(err)
	}
	add, rem, err := got.Decode()
	if err != nil || len(add)+len(rem) != 0 {
		t.Errorf("round-tripped table differs: +%v −%v err=%v", add, rem, err)
	}
}

func TestDecodeFromRejectsGarbage(t *testing.T) {
	e := transport.NewEncoder()
	e.WriteUvarint(1) // q = 1: implausible
	e.WriteUvarint(10)
	var ch transport.Channel
	ch.Send(transport.AliceToBob, e)
	d, _ := ch.Recv(transport.AliceToBob)
	if _, err := DecodeFrom(d, 1); err == nil {
		t.Error("garbage header accepted")
	}
}

func TestCellsForDiff(t *testing.T) {
	if CellsForDiff(0, 3) < 3 {
		t.Error("zero diff undersized")
	}
	if CellsForDiff(1000, 3) < 1500 {
		t.Error("large diff undersized")
	}
}

func TestNewPanicsOnBadQ(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("q=1 accepted")
		}
	}()
	New(64, 1, 1)
}

func TestStrataEstimate(t *testing.T) {
	for _, diff := range []int{0, 4, 40, 400, 4000} {
		const seed = 5
		sa := NewStrata(80, seed)
		sb := NewStrata(80, seed)
		src := rng.New(uint64(diff) + 1)
		for i := 0; i < 20000; i++ {
			k := src.Uint64()
			sa.Insert(k)
			sb.Insert(k)
		}
		for i := 0; i < diff; i++ {
			sa.Insert(src.Uint64())
		}
		got, err := sa.Estimate(sb)
		if err != nil {
			t.Fatal(err)
		}
		if diff == 0 {
			if got != 0 {
				t.Errorf("diff 0: estimate %d", got)
			}
			continue
		}
		// [10] shows the estimate concentrates within a constant factor;
		// accept [diff/3, 3·diff].
		if got < diff/3 || got > diff*3 {
			t.Errorf("diff %d: estimate %d outside [d/3, 3d]", diff, got)
		}
	}
}

func TestStrataEncodeRoundTrip(t *testing.T) {
	const seed = 17
	s := NewStrata(40, seed)
	src := rng.New(3)
	var ks []uint64
	for i := 0; i < 500; i++ {
		k := src.Uint64()
		ks = append(ks, k)
		s.Insert(k)
	}
	e := transport.NewEncoder()
	s.Encode(e)
	var ch transport.Channel
	ch.Send(transport.BobToAlice, e)
	d, _ := ch.Recv(transport.BobToAlice)
	got, err := DecodeStrata(d, seed)
	if err != nil {
		t.Fatal(err)
	}
	// Same contents → estimate of difference against original is 0.
	est, err := got.Estimate(s)
	if err != nil || est != 0 {
		t.Errorf("round-trip estimate = %d err=%v", est, err)
	}
	// And against an estimator missing 100 keys, it is ~100.
	s2 := NewStrata(40, seed)
	for _, k := range ks[:400] {
		s2.Insert(k)
	}
	est, err = got.Estimate(s2)
	if err != nil {
		t.Fatal(err)
	}
	if est < 30 || est > 300 {
		t.Errorf("estimate vs truncated = %d, want ~100", est)
	}
}

func TestStrataGeometryMismatch(t *testing.T) {
	a := NewStrata(40, 1)
	b := NewStrata(80, 1)
	if _, err := a.Estimate(b); err == nil {
		t.Error("mismatched strata estimate succeeded")
	}
}

func BenchmarkInsert(b *testing.B) {
	tb := New(1<<16, 3, 1)
	for i := 0; i < b.N; i++ {
		tb.Insert(uint64(i))
	}
}

func BenchmarkDecode1000(b *testing.B) {
	// Theorem 2.6 allows decode failure with probability O(1/poly(m)),
	// so across many benchmark iterations a rare stall is expected;
	// only an implausible failure *rate* indicates a bug.
	failures := 0
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tb := New(2048, 3, uint64(i))
		for k := uint64(0); k < 1000; k++ {
			tb.Insert(k ^ uint64(i)<<20)
		}
		b.StartTimer()
		if _, _, err := tb.Decode(); err != nil {
			failures++
		}
	}
	if failures > b.N/20+1 {
		b.Fatalf("%d/%d decodes failed", failures, b.N)
	}
}

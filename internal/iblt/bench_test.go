package iblt

import "testing"

func benchKeys(n int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i) * 2654435761
	}
	return keys
}

// BenchmarkNewFromKeys tracks the bulk table builder's allocation
// discipline (batched checksum hashing, one flat cell array).
func BenchmarkNewFromKeys(b *testing.B) {
	keys := benchKeys(10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewFromKeys(CellsForDiff(128, 3), 3, uint64(i)+1, keys, 1)
	}
}

// BenchmarkNewStrataFromKeys tracks the estimator builder.
func BenchmarkNewStrataFromKeys(b *testing.B) {
	keys := benchKeys(10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewStrataFromKeys(80, uint64(i)+1, keys, 1)
	}
}

package iblt

import (
	"fmt"
	"math/bits"

	"repro/internal/hashx"
	"repro/internal/rng"
	"repro/internal/transport"
)

// Strata is the strata estimator of Eppstein, Goodrich, Uyeda & Varghese
// ("What's the difference?", SIGCOMM 2011, the paper's reference [10]).
// It estimates the size of a set difference without prior context, which
// the reconciliation protocols need to size their IBLTs: the paper's
// bounds all assume a known difference bound k or d, and the estimator is
// how a deployment obtains one.
//
// Each element is assigned to stratum i with probability 2^-(i+1) (by
// counting trailing zeros of a shared hash) and inserted into a small
// per-stratum IBLT. Subtracting two estimators and peeling strata from
// the deepest down yields an unbiased difference estimate.
type Strata struct {
	levels []*Table
	assign hashx.Mixer
	perLvl int
}

// StrataLevels is the number of strata; 32 suffices for differences up to
// ~2^32 elements.
const StrataLevels = 32

// NewStrata builds an estimator whose per-stratum tables have cellsPerLevel
// cells (80 is the customary size from [10]).
func NewStrata(cellsPerLevel int, seed uint64) *Strata {
	src := rng.New(seed)
	assign := hashx.NewMixer(src)
	s := &Strata{levels: make([]*Table, StrataLevels), assign: assign, perLvl: cellsPerLevel}
	for i := range s.levels {
		s.levels[i] = New(cellsPerLevel, 3, src.Uint64())
	}
	return s
}

// Insert adds a key to its stratum.
func (s *Strata) Insert(key uint64) {
	lvl := bits.TrailingZeros64(s.assign.Hash(key) | 1<<(StrataLevels-1))
	s.levels[lvl].Insert(key)
}

// InsertAll adds every key of keys, batching the stratum-assignment
// hashing into a fixed scratch block. Equivalent to inserting one at a
// time.
func (s *Strata) InsertAll(keys []uint64) {
	var assigned [256]uint64
	for len(keys) > 0 {
		n := min(len(keys), len(assigned))
		s.assign.HashInto(assigned[:n], keys[:n])
		for i, key := range keys[:n] {
			lvl := bits.TrailingZeros64(assigned[i] | 1<<(StrataLevels-1))
			s.levels[lvl].Insert(key)
		}
		keys = keys[n:]
	}
}

// Delete removes a key from its stratum. Because stratum assignment is a
// pure function of the key and every cell field combines by XOR or
// addition, deleting a previously inserted key restores the estimator
// exactly — a live set can therefore maintain one estimator under churn
// instead of rebuilding it per session.
func (s *Strata) Delete(key uint64) {
	lvl := bits.TrailingZeros64(s.assign.Hash(key) | 1<<(StrataLevels-1))
	s.levels[lvl].Delete(key)
}

// Clone deep-copies the estimator, for serving a consistent snapshot
// while the original keeps mutating.
func (s *Strata) Clone() *Strata {
	c := &Strata{levels: make([]*Table, len(s.levels)), assign: s.assign, perLvl: s.perLvl}
	for i, t := range s.levels {
		c.levels[i] = t.Clone()
	}
	return c
}

// Estimate subtracts other from a copy of s and returns an estimate of
// |difference| (keys on either side). Peeling proceeds from the deepest
// stratum; the first stratum that fails to decode determines the scaling
// factor 2^(i+1) applied to the differences counted so far.
func (s *Strata) Estimate(other *Strata) (int, error) {
	if s.perLvl != other.perLvl {
		return 0, fmt.Errorf("iblt: strata geometry mismatch")
	}
	count := 0
	for i := StrataLevels - 1; i >= 0; i-- {
		t := s.levels[i].Clone()
		if err := t.Subtract(other.levels[i]); err != nil {
			return 0, err
		}
		add, rem, err := t.Decode()
		if err != nil {
			// Stratum i failed: scale up what deeper strata recovered.
			return count << uint(i+1), nil
		}
		count += len(add) + len(rem)
	}
	return count, nil
}

// Encode serializes the estimator.
func (s *Strata) Encode(e *transport.Encoder) {
	e.WriteUvarint(uint64(s.perLvl))
	for _, t := range s.levels {
		t.Encode(e)
	}
}

// DecodeStrata deserializes an estimator built with the given seed.
func DecodeStrata(d *transport.Decoder, seed uint64) (*Strata, error) {
	perLvl, err := d.ReadUvarint()
	if err != nil {
		return nil, err
	}
	if perLvl == 0 || perLvl > 1<<20 {
		return nil, fmt.Errorf("iblt: implausible strata size %d", perLvl)
	}
	src := rng.New(seed)
	assign := hashx.NewMixer(src)
	s := &Strata{levels: make([]*Table, StrataLevels), assign: assign, perLvl: int(perLvl)}
	for i := range s.levels {
		lvlSeed := src.Uint64()
		t, err := DecodeFrom(d, lvlSeed)
		if err != nil {
			return nil, err
		}
		s.levels[i] = t
	}
	return s, nil
}

package iblt

import (
	"fmt"

	"repro/internal/parallel"
)

// Sharded construction. Inserting a key touches q cells with XOR and
// counter updates, all of which commute, so a table built from key
// blocks by independent workers and merged cell-wise is identical —
// field for field, and therefore bit for bit on the wire — to one built
// sequentially. This is the balls-and-bins parallelism the peeling
// literature's threshold analyses already rely on: the hypergraph drawn
// does not depend on insertion order.

// minBlock is the smallest key block worth a goroutine.
const minBlock = 1024

// Merge adds other's cells into t. The two tables must have identical
// geometry and seed; afterwards t holds the union of both multisets.
func (t *Table) Merge(other *Table) error {
	if t.q != other.q || len(t.cells) != len(other.cells) {
		return fmt.Errorf("iblt: merge geometry mismatch: %d/%d cells, q %d/%d",
			len(t.cells), len(other.cells), t.q, other.q)
	}
	for i := range t.cells {
		t.cells[i].Count += other.cells[i].Count
		t.cells[i].KeySum ^= other.cells[i].KeySum
		t.cells[i].CheckSum ^= other.cells[i].CheckSum
	}
	return nil
}

// NewFromKeys builds a table with q hash functions and at least m cells
// holding every key, sharding insertion across workers goroutines
// (workers <= 0 means GOMAXPROCS, 1 forces the sequential path). The
// result is bit-identical to sequential insertion.
func NewFromKeys(m, q int, seed uint64, keys []uint64, workers int) *Table {
	w := parallel.Workers(workers, len(keys), minBlock)
	if w == 1 {
		t := New(m, q, seed)
		t.InsertAll(keys)
		return t
	}
	shards := make([]*Table, w)
	parallel.Shard(len(keys), w, func(b, lo, hi int) {
		t := New(m, q, seed)
		t.InsertAll(keys[lo:hi])
		shards[b] = t
	})
	out := shards[0]
	for _, s := range shards[1:] {
		if s == nil {
			continue
		}
		if err := out.Merge(s); err != nil {
			// Shards are built from one geometry by construction.
			panic(err)
		}
	}
	return out
}

// Merge adds other's per-stratum tables into s. Both estimators must
// have been built with the same seed and geometry.
func (s *Strata) Merge(other *Strata) error {
	if s.perLvl != other.perLvl {
		return fmt.Errorf("iblt: strata merge geometry mismatch")
	}
	for i := range s.levels {
		if err := s.levels[i].Merge(other.levels[i]); err != nil {
			return err
		}
	}
	return nil
}

// NewStrataFromKeys builds an estimator over every key, sharding
// insertion across workers goroutines; the result is bit-identical to
// sequential insertion.
func NewStrataFromKeys(cellsPerLevel int, seed uint64, keys []uint64, workers int) *Strata {
	w := parallel.Workers(workers, len(keys), minBlock)
	if w == 1 {
		s := NewStrata(cellsPerLevel, seed)
		s.InsertAll(keys)
		return s
	}
	shards := make([]*Strata, w)
	parallel.Shard(len(keys), w, func(b, lo, hi int) {
		s := NewStrata(cellsPerLevel, seed)
		s.InsertAll(keys[lo:hi])
		shards[b] = s
	})
	out := shards[0]
	for _, sh := range shards[1:] {
		if sh == nil {
			continue
		}
		if err := out.Merge(sh); err != nil {
			panic(err)
		}
	}
	return out
}

package iblt

import (
	"bytes"
	"testing"

	"repro/internal/rng"
	"repro/internal/transport"
)

func testKeys(n int, seed uint64) []uint64 {
	src := rng.New(seed)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = src.Uint64()
	}
	return keys
}

func encodeTable(t *Table) []byte {
	e := transport.NewEncoder()
	t.Encode(e)
	data, _ := e.Pack()
	return data
}

// TestShardedBuildGolden asserts that a table built from sharded key
// blocks and merged encodes to exactly the wire bytes of a sequential
// build, for several worker counts.
func TestShardedBuildGolden(t *testing.T) {
	keys := testKeys(20000, 3)
	seq := NewFromKeys(300, 3, 77, keys, 1)
	seqBytes := encodeTable(seq)
	for _, workers := range []int{0, 2, 5, 8} {
		got := encodeTable(NewFromKeys(300, 3, 77, keys, workers))
		if !bytes.Equal(seqBytes, got) {
			t.Errorf("workers=%d: encoding differs from sequential build", workers)
		}
	}
}

// TestShardedStrataGolden does the same for the strata estimator.
func TestShardedStrataGolden(t *testing.T) {
	keys := testKeys(20000, 4)
	seqBytes := func() []byte {
		e := transport.NewEncoder()
		NewStrataFromKeys(80, 9, keys, 1).Encode(e)
		data, _ := e.Pack()
		return data
	}()
	for _, workers := range []int{0, 3, 8} {
		e := transport.NewEncoder()
		NewStrataFromKeys(80, 9, keys, workers).Encode(e)
		got, _ := e.Pack()
		if !bytes.Equal(seqBytes, got) {
			t.Errorf("workers=%d: strata encoding differs from sequential build", workers)
		}
	}
}

// TestMergeGeometryMismatch ensures merging incompatible tables fails
// loudly instead of corrupting cells.
func TestMergeGeometryMismatch(t *testing.T) {
	a := New(100, 3, 1)
	b := New(200, 3, 1)
	if err := a.Merge(b); err == nil {
		t.Fatal("merge of mismatched geometries accepted")
	}
	c := New(100, 4, 1)
	if err := a.Merge(c); err == nil {
		t.Fatal("merge of mismatched q accepted")
	}
}

// TestMergedTableDecodes checks a sharded-and-merged difference table
// still peels correctly.
func TestMergedTableDecodes(t *testing.T) {
	keys := testKeys(5000, 5)
	extra := []uint64{11, 22, 33, 44, 55}
	withExtra := append(append([]uint64{}, keys...), extra...)

	tbl := NewFromKeys(CellsForDiff(16, 3), 3, 99, withExtra, 4)
	for _, k := range keys {
		tbl.Delete(k)
	}
	added, removed, err := tbl.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 0 || len(added) != len(extra) {
		t.Fatalf("decoded %d added / %d removed, want %d / 0", len(added), len(removed), len(extra))
	}
}

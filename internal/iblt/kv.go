package iblt

import (
	"errors"
	"fmt"

	"repro/internal/hashx"
	"repro/internal/rng"
	"repro/internal/transport"
)

// KVTable is a classic XOR-based IBLT storing key-value pairs with
// fixed-size values, the form §2.2 describes first ("a hash table using
// q hash functions and m cells to store key-value pairs ... an XOR of
// the values hashed to it"). The sets-of-sets substrate uses it with the
// child-set fingerprint as key and the serialized child as value.
//
// Unlike the RIBLT, the KVTable requires exact duplicates to cancel:
// same key must imply same value. Callers that may insert duplicate
// (key, value) items disambiguate by folding an occurrence index into
// the key (see setsets).
type KVTable struct {
	q         int
	cellsPerQ int
	valBytes  int
	counts    []int64
	keySums   []uint64
	checkSums []uint64
	valSums   []byte // m × valBytes, XOR-combined
	idx       []hashx.Mixer
	check     hashx.Mixer
}

// NewKV creates a key-value IBLT with at least m cells, q hash functions
// and valBytes bytes of value per pair. Parties must share seed.
func NewKV(m, q, valBytes int, seed uint64) *KVTable {
	if q < 2 {
		panic("iblt: need q >= 2 hash functions")
	}
	if valBytes < 0 {
		panic("iblt: negative value size")
	}
	if m < q {
		m = q
	}
	cellsPerQ := (m + q - 1) / q
	cells := cellsPerQ * q
	src := rng.New(seed)
	idx := make([]hashx.Mixer, q)
	for i := range idx {
		idx[i] = hashx.NewMixer(src)
	}
	return &KVTable{
		q:         q,
		cellsPerQ: cellsPerQ,
		valBytes:  valBytes,
		counts:    make([]int64, cells),
		keySums:   make([]uint64, cells),
		checkSums: make([]uint64, cells),
		valSums:   make([]byte, cells*valBytes),
		idx:       idx,
		check:     hashx.NewMixer(src),
	}
}

// Cells returns the number of cells.
func (t *KVTable) Cells() int { return len(t.counts) }

// ValBytes returns the fixed value size.
func (t *KVTable) ValBytes() int { return t.valBytes }

func (t *KVTable) cellOf(key uint64, j int) int {
	return j*t.cellsPerQ + int(t.idx[j].Hash(key)%uint64(t.cellsPerQ))
}

// Insert adds a pair. val must have length ValBytes.
func (t *KVTable) Insert(key uint64, val []byte) { t.update(key, val, 1) }

// Delete removes a pair.
func (t *KVTable) Delete(key uint64, val []byte) { t.update(key, val, -1) }

func (t *KVTable) update(key uint64, val []byte, dir int64) {
	if len(val) != t.valBytes {
		panic(fmt.Sprintf("iblt: value size %d, table expects %d", len(val), t.valBytes))
	}
	check := t.check.Hash(key)
	for j := 0; j < t.q; j++ {
		ci := t.cellOf(key, j)
		t.counts[ci] += dir
		t.keySums[ci] ^= key
		t.checkSums[ci] ^= check
		row := t.valSums[ci*t.valBytes : (ci+1)*t.valBytes]
		for b := range val {
			row[b] ^= val[b]
		}
	}
}

// KVPair is one recovered pair.
type KVPair struct {
	Key   uint64
	Value []byte
}

// ErrKVPartial mirrors ErrPartial for the key-value table.
var ErrKVPartial = errors.New("iblt: kv peeling stalled")

// Decode peels the table, returning pairs with positive net presence
// (added) and negative (removed). The table is consumed.
func (t *KVTable) Decode() (added, removed []KVPair, err error) {
	queue := make([]int, 0, len(t.counts))
	for i := range t.counts {
		if t.pure(i) {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		if !t.pure(i) {
			continue
		}
		key := t.keySums[i]
		dir := t.counts[i]
		val := append([]byte(nil), t.valSums[i*t.valBytes:(i+1)*t.valBytes]...)
		check := t.check.Hash(key)
		for j := 0; j < t.q; j++ {
			ci := t.cellOf(key, j)
			t.counts[ci] -= dir
			t.keySums[ci] ^= key
			t.checkSums[ci] ^= check
			row := t.valSums[ci*t.valBytes : (ci+1)*t.valBytes]
			for b := range val {
				row[b] ^= val[b]
			}
			if t.pure(ci) {
				queue = append(queue, ci)
			}
		}
		if dir > 0 {
			added = append(added, KVPair{Key: key, Value: val})
		} else {
			removed = append(removed, KVPair{Key: key, Value: val})
		}
	}
	for i := range t.counts {
		if t.counts[i] != 0 || t.keySums[i] != 0 {
			return added, removed, ErrKVPartial
		}
	}
	return added, removed, nil
}

func (t *KVTable) pure(i int) bool {
	if t.counts[i] != 1 && t.counts[i] != -1 {
		return false
	}
	return t.check.Hash(t.keySums[i]) == t.checkSums[i]
}

// Encode serializes the table.
func (t *KVTable) Encode(e *transport.Encoder) {
	e.WriteUvarint(uint64(t.q))
	e.WriteUvarint(uint64(t.cellsPerQ))
	e.WriteUvarint(uint64(t.valBytes))
	for i := range t.counts {
		e.WriteVarint(t.counts[i])
		e.WriteUint64(t.keySums[i])
		e.WriteUint64(t.checkSums[i])
		for _, b := range t.valSums[i*t.valBytes : (i+1)*t.valBytes] {
			e.WriteBits(uint64(b), 8)
		}
	}
}

// DecodeKVFrom deserializes a table built with the same seed.
func DecodeKVFrom(d *transport.Decoder, seed uint64) (*KVTable, error) {
	q, err := d.ReadUvarint()
	if err != nil {
		return nil, err
	}
	cellsPerQ, err := d.ReadUvarint()
	if err != nil {
		return nil, err
	}
	valBytes, err := d.ReadUvarint()
	if err != nil {
		return nil, err
	}
	if q < 2 || q > 16 || cellsPerQ == 0 || cellsPerQ > 1<<30 || valBytes > 1<<20 {
		return nil, fmt.Errorf("iblt: implausible kv geometry q=%d cells/q=%d val=%dB", q, cellsPerQ, valBytes)
	}
	t := NewKV(int(q*cellsPerQ), int(q), int(valBytes), seed)
	for i := range t.counts {
		if t.counts[i], err = d.ReadVarint(); err != nil {
			return nil, err
		}
		if t.keySums[i], err = d.ReadUint64(); err != nil {
			return nil, err
		}
		if t.checkSums[i], err = d.ReadUint64(); err != nil {
			return nil, err
		}
		row := t.valSums[i*t.valBytes : (i+1)*t.valBytes]
		for b := range row {
			v, err := d.ReadBits(8)
			if err != nil {
				return nil, err
			}
			row[b] = byte(v)
		}
	}
	return t, nil
}

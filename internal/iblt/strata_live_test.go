package iblt

import (
	"bytes"
	"testing"

	"repro/internal/rng"
	"repro/internal/transport"
)

func encodeStrata(s *Strata) []byte {
	e := transport.NewEncoder()
	s.Encode(e)
	data, _ := e.Pack()
	return data
}

// TestStrataDeleteRestores: deleting inserted keys restores the
// estimator exactly — the live-set invariant that lets one estimator
// survive churn instead of being rebuilt per session.
func TestStrataDeleteRestores(t *testing.T) {
	const seed = 6
	live := NewStrata(80, seed)
	ref := NewStrata(80, seed)
	src := rng.New(2)
	for i := 0; i < 2000; i++ {
		k := src.Uint64()
		live.Insert(k)
		if i%4 == 0 {
			ref.Insert(k)
		} else {
			live.Delete(k)
		}
	}
	if !bytes.Equal(encodeStrata(live), encodeStrata(ref)) {
		t.Fatal("churned estimator differs from reference over surviving keys")
	}
}

// TestStrataCloneIsDeep: a clone estimates independently of later
// mutations to the original.
func TestStrataCloneIsDeep(t *testing.T) {
	s := NewStrata(80, 3)
	for i := uint64(0); i < 100; i++ {
		s.Insert(i * 0x9e3779b97f4a7c15)
	}
	c := s.Clone()
	before := encodeStrata(c)
	s.Insert(0xdead)
	del := uint64(42)
	s.Delete(del * 0x9e3779b97f4a7c15)
	if !bytes.Equal(encodeStrata(c), before) {
		t.Fatal("clone shares table state with original")
	}
	// The clone still estimates against a peer.
	peer := NewStrata(80, 3)
	for i := uint64(0); i < 90; i++ {
		peer.Insert(i * 0x9e3779b97f4a7c15)
	}
	est, err := c.Estimate(peer)
	if err != nil {
		t.Fatal(err)
	}
	if est < 5 || est > 40 {
		t.Fatalf("estimate %d implausible for true difference 10", est)
	}
}

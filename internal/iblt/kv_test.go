package iblt

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/transport"
)

func TestKVInsertDeleteCancel(t *testing.T) {
	tb := NewKV(64, 3, 8, 1)
	val := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	tb.Insert(42, val)
	tb.Delete(42, val)
	add, rem, err := tb.Decode()
	if err != nil || len(add)+len(rem) != 0 {
		t.Fatalf("cancel failed: +%v -%v err=%v", add, rem, err)
	}
}

func TestKVRecoverValues(t *testing.T) {
	tb := NewKV(96, 3, 4, 2)
	want := map[uint64][]byte{
		10: {1, 1, 1, 1},
		20: {2, 2, 2, 2},
		30: {3, 3, 3, 3},
	}
	for k, v := range want {
		tb.Insert(k, v)
	}
	tb.Delete(99, []byte{9, 9, 9, 9})
	add, rem, err := tb.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if len(add) != 3 || len(rem) != 1 {
		t.Fatalf("recovered %d/%d", len(add), len(rem))
	}
	for _, kv := range add {
		if !bytes.Equal(kv.Value, want[kv.Key]) {
			t.Errorf("key %d: value %v", kv.Key, kv.Value)
		}
	}
	if rem[0].Key != 99 || !bytes.Equal(rem[0].Value, []byte{9, 9, 9, 9}) {
		t.Errorf("removed = %+v", rem[0])
	}
}

func TestKVZeroValueBytes(t *testing.T) {
	tb := NewKV(64, 3, 0, 3)
	tb.Insert(7, nil)
	add, _, err := tb.Decode()
	if err != nil || len(add) != 1 || add[0].Key != 7 {
		t.Fatalf("valueless table: %v err=%v", add, err)
	}
}

func TestKVValueSizePanics(t *testing.T) {
	tb := NewKV(64, 3, 4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong value size accepted")
		}
	}()
	tb.Insert(1, []byte{1, 2})
}

func TestKVConstructorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"q=1":      func() { NewKV(64, 1, 4, 1) },
		"negValSz": func() { NewKV(64, 3, -1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted", name)
				}
			}()
			f()
		}()
	}
}

func TestKVOverloadStalls(t *testing.T) {
	tb := NewKV(12, 3, 2, 5)
	src := rng.New(6)
	for i := 0; i < 100; i++ {
		tb.Insert(src.Uint64(), []byte{1, 2})
	}
	if _, _, err := tb.Decode(); err != ErrKVPartial {
		t.Fatalf("err = %v, want ErrKVPartial", err)
	}
}

func TestKVEncodeDecodeRoundTrip(t *testing.T) {
	const seed = 7
	tb := NewKV(96, 3, 6, seed)
	src := rng.New(8)
	type pair struct {
		k uint64
		v []byte
	}
	var pairs []pair
	for i := 0; i < 12; i++ {
		v := make([]byte, 6)
		for j := range v {
			v[j] = byte(src.Uint64())
		}
		p := pair{k: src.Uint64(), v: v}
		pairs = append(pairs, p)
		tb.Insert(p.k, p.v)
	}
	e := transport.NewEncoder()
	tb.Encode(e)
	data, _ := e.Pack()
	got, err := DecodeKVFrom(transport.NewDecoder(data), seed)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		got.Delete(p.k, p.v)
	}
	add, rem, err := got.Decode()
	if err != nil || len(add)+len(rem) != 0 {
		t.Errorf("round-trip did not cancel: +%d -%d err=%v", len(add), len(rem), err)
	}
}

func TestKVDecodeFromRejectsGarbage(t *testing.T) {
	e := transport.NewEncoder()
	e.WriteUvarint(1)  // q = 1
	e.WriteUvarint(10) // cellsPerQ
	e.WriteUvarint(4)
	data, _ := e.Pack()
	if _, err := DecodeKVFrom(transport.NewDecoder(data), 1); err == nil {
		t.Error("implausible header accepted")
	}
	// Truncated body.
	e2 := transport.NewEncoder()
	NewKV(32, 3, 4, 2).Encode(e2)
	full, _ := e2.Pack()
	if _, err := DecodeKVFrom(transport.NewDecoder(full[:len(full)/2]), 2); err == nil {
		t.Error("truncated body accepted")
	}
}

func TestKVSubtractSemanticsViaDelete(t *testing.T) {
	prop := func(seed uint64, nRaw uint8) bool {
		src := rng.New(seed)
		n := int(nRaw%15) + 1
		const valSz = 3
		type pair struct {
			k uint64
			v []byte
		}
		mk := func() pair {
			v := make([]byte, valSz)
			for j := range v {
				v[j] = byte(src.Uint64())
			}
			return pair{k: src.Uint64(), v: v}
		}
		var shared, diff []pair
		for i := 0; i < 50; i++ {
			shared = append(shared, mk())
		}
		want := map[uint64][]byte{}
		for i := 0; i < n; i++ {
			p := mk()
			want[p.k] = p.v
			diff = append(diff, p)
		}
		// Tiny tables stall with small but real probability (Theorem
		// 2.6); retry with a fresh seed like production callers do.
		for attempt := 0; attempt < 4; attempt++ {
			tb := NewKV(CellsForDiff(2*n, 3)<<attempt, 3, valSz, seed^0x77+uint64(attempt))
			for _, p := range shared {
				tb.Insert(p.k, p.v)
				tb.Delete(p.k, p.v)
			}
			for _, p := range diff {
				tb.Insert(p.k, p.v)
			}
			add, rem, err := tb.Decode()
			if err != nil {
				continue
			}
			if len(rem) != 0 || len(add) != len(want) {
				return false
			}
			for _, kv := range add {
				if !bytes.Equal(want[kv.Key], kv.Value) {
					return false
				}
			}
			return true
		}
		return false
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Package iblt implements Invertible Bloom Lookup Tables as described in
// §2.2 of the paper (following Goodrich & Mitzenmacher [13]): a hash
// table of m cells and q hash functions in which each cell keeps a count,
// an XOR of keys, and an XOR of per-key checksums. Inserting and deleting
// are O(q); after deleting one set from a table holding another, the
// cells encode exactly the symmetric difference, which a peeling process
// recovers in O(m) time whenever the difference is at most c·m for a
// constant c < 1 (Theorem 2.6).
//
// This is both a substrate of the paper's protocols (the Gap Guarantee
// protocol reconciles keys through IBLT-based set reconciliation) and the
// classic set-reconciliation baseline the robust protocols generalize.
package iblt

import (
	"errors"
	"fmt"

	"repro/internal/hashx"
	"repro/internal/rng"
	"repro/internal/transport"
)

// Cell is one bucket of the table. All fields combine by XOR (and count
// by addition), so insert and delete are self-inverse and two tables can
// be subtracted cell-wise.
type Cell struct {
	Count    int64
	KeySum   uint64
	CheckSum uint64
}

func (c *Cell) add(key, check uint64, dir int64) {
	c.Count += dir
	c.KeySum ^= key
	c.CheckSum ^= check
}

// pure reports whether the cell provably holds exactly one key (count ±1
// and matching checksum). The checksum guards against the count-1-but-
// multiple-keys case described in §2.2.
func (c *Cell) pure(check func(uint64) uint64) bool {
	if c.Count != 1 && c.Count != -1 {
		return false
	}
	return check(c.KeySum) == c.CheckSum
}

// Table is an IBLT over uint64 keys. Keys are partitioned across q
// sub-tables of m/q cells each (the partitioned layout §2.2 suggests so
// a key's q cells are distinct).
type Table struct {
	q         int
	cellsPerQ int
	cells     []Cell
	idx       []hashx.Mixer // one cell-index hash per partition
	check     hashx.Mixer   // per-key checksum
}

// New creates a table with q hash functions and at least m cells (rounded
// up to a multiple of q). Both parties must pass the same seed so their
// tables align cell-for-cell; this is the public-coins assumption.
func New(m, q int, seed uint64) *Table {
	if q < 2 {
		panic("iblt: need q >= 2 hash functions")
	}
	if m < q {
		m = q
	}
	cellsPerQ := (m + q - 1) / q
	src := rng.New(seed)
	idx := make([]hashx.Mixer, q)
	for i := range idx {
		idx[i] = hashx.NewMixer(src)
	}
	return &Table{
		q:         q,
		cellsPerQ: cellsPerQ,
		cells:     make([]Cell, cellsPerQ*q),
		idx:       idx,
		check:     hashx.NewMixer(src),
	}
}

// Cells returns the total number of cells.
func (t *Table) Cells() int { return len(t.cells) }

// Q returns the number of hash functions.
func (t *Table) Q() int { return t.q }

// cellOf returns the cell index of key in partition j.
func (t *Table) cellOf(key uint64, j int) int {
	return j*t.cellsPerQ + int(t.idx[j].Hash(key)%uint64(t.cellsPerQ))
}

// Insert adds a key.
func (t *Table) Insert(key uint64) { t.update(key, 1) }

// InsertAll adds every key of keys, batching the per-key checksum
// hashing through hashx.Mixer.HashInto over a fixed scratch block — the
// bulk-construction path the sharded builders use. Cell state after
// InsertAll is identical to inserting the keys one at a time.
func (t *Table) InsertAll(keys []uint64) {
	var checks [256]uint64
	for len(keys) > 0 {
		n := min(len(keys), len(checks))
		t.check.HashInto(checks[:n], keys[:n])
		for i, key := range keys[:n] {
			for j := 0; j < t.q; j++ {
				t.cells[t.cellOf(key, j)].add(key, checks[i], 1)
			}
		}
		keys = keys[n:]
	}
}

// Delete removes a key (which need not have been inserted: deletion of a
// foreign key leaves a count of −1, which is how set differences appear).
func (t *Table) Delete(key uint64) { t.update(key, -1) }

func (t *Table) update(key uint64, dir int64) {
	check := t.check.Hash(key)
	for j := 0; j < t.q; j++ {
		t.cells[t.cellOf(key, j)].add(key, check, dir)
	}
}

// Subtract replaces t with the cell-wise difference t − other. The two
// tables must have identical geometry and seed; the result encodes the
// multiset difference of their contents.
func (t *Table) Subtract(other *Table) error {
	if t.q != other.q || len(t.cells) != len(other.cells) {
		return fmt.Errorf("iblt: geometry mismatch: %d/%d cells, q %d/%d",
			len(t.cells), len(other.cells), t.q, other.q)
	}
	for i := range t.cells {
		t.cells[i].Count -= other.cells[i].Count
		t.cells[i].KeySum ^= other.cells[i].KeySum
		t.cells[i].CheckSum ^= other.cells[i].CheckSum
	}
	return nil
}

// Clone deep-copies the table.
func (t *Table) Clone() *Table {
	c := *t
	c.cells = make([]Cell, len(t.cells))
	copy(c.cells, t.cells)
	c.idx = append([]hashx.Mixer(nil), t.idx...)
	return &c
}

// ErrPartial is returned by Decode when peeling stalls before the table
// empties (the underlying hypergraph has a non-empty 2-core, cf.
// Theorem 2.6's failure probability).
var ErrPartial = errors.New("iblt: peeling stalled; table not fully decodable")

// Decode recovers the table's contents by peeling. Added holds keys with
// positive multiplicity (inserted more than deleted), Removed keys with
// negative multiplicity. Decode consumes the table: on return (even with
// ErrPartial) cells reflect whatever could not be peeled.
func (t *Table) Decode() (added, removed []uint64, err error) {
	// Queue of candidate pure cells; re-scan lazily.
	queue := make([]int, 0, len(t.cells))
	for i := range t.cells {
		if t.cells[i].pure(t.check.Hash) {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		c := &t.cells[i]
		if !c.pure(t.check.Hash) {
			continue // stale entry; cell changed since enqueued
		}
		key := c.KeySum
		dir := c.Count // ±1
		// Remove the key once; its other cells may become pure.
		check := t.check.Hash(key)
		for j := 0; j < t.q; j++ {
			ci := t.cellOf(key, j)
			t.cells[ci].add(key, check, -dir)
			if t.cells[ci].pure(t.check.Hash) {
				queue = append(queue, ci)
			}
		}
		if dir > 0 {
			added = append(added, key)
		} else {
			removed = append(removed, key)
		}
	}
	for i := range t.cells {
		if t.cells[i].Count != 0 || t.cells[i].KeySum != 0 {
			return added, removed, ErrPartial
		}
	}
	return added, removed, nil
}

// Encode serializes the table. All cell fields are varint-coded: empty
// cells (the common case in difference sketches and deep strata levels)
// cost a few bits each, so the wire size tracks occupancy rather than
// geometry.
func (t *Table) Encode(e *transport.Encoder) {
	e.WriteUvarint(uint64(t.q))
	e.WriteUvarint(uint64(t.cellsPerQ))
	for i := range t.cells {
		e.WriteVarint(t.cells[i].Count)
		e.WriteUvarint(t.cells[i].KeySum)
		e.WriteUvarint(t.cells[i].CheckSum)
	}
}

// DecodeFrom deserializes a table that must have been built with the same
// seed as the receiver's reference table; geometry is checked.
func DecodeFrom(d *transport.Decoder, seed uint64) (*Table, error) {
	q, err := d.ReadUvarint()
	if err != nil {
		return nil, err
	}
	cellsPerQ, err := d.ReadUvarint()
	if err != nil {
		return nil, err
	}
	if q < 2 || q > 16 || cellsPerQ == 0 || cellsPerQ > 1<<30 {
		return nil, fmt.Errorf("iblt: implausible geometry q=%d cells/q=%d", q, cellsPerQ)
	}
	// Every encoded cell costs at least 3 bytes (count varint, keyXor
	// uvarint, checkXor uvarint), so a table the rest of the frame
	// cannot hold is rejected before its cells are allocated: a hostile
	// header must not reserve memory the payload never backs.
	if cells := q * cellsPerQ; cells > uint64(d.Remaining())/3 {
		return nil, fmt.Errorf("iblt: table of %d cells exceeds remaining frame (%d bytes)", cells, d.Remaining())
	}
	t := New(int(q*cellsPerQ), int(q), seed)
	for i := range t.cells {
		cnt, err := d.ReadVarint()
		if err != nil {
			return nil, err
		}
		ks, err := d.ReadUvarint()
		if err != nil {
			return nil, err
		}
		cs, err := d.ReadUvarint()
		if err != nil {
			return nil, err
		}
		t.cells[i] = Cell{Count: cnt, KeySum: ks, CheckSum: cs}
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// One-shot set reconciliation built on the table (the classic protocol
// described in §2.2: Bob sends an IBLT of his set, Alice deletes hers and
// peels the difference).

// Diff runs the one-message difference recovery locally: given Bob's and
// Alice's key sets and a difference bound dmax, it returns the keys only
// Bob has and the keys only Alice has. It fails with ErrPartial when the
// true difference overflows the table, which callers handle by retrying
// with a larger bound.
func Diff(bob, alice []uint64, dmax, q int, seed uint64) (onlyBob, onlyAlice []uint64, err error) {
	m := CellsForDiff(dmax, q)
	t := New(m, q, seed)
	for _, k := range bob {
		t.Insert(k)
	}
	for _, k := range alice {
		t.Delete(k)
	}
	return t.Decode()
}

// CellsForDiff returns a cell count that decodes a difference of d keys
// with high probability. The constant 1.35·q/(q−1)-ish overhead follows
// the peeling-threshold literature; we use a simple affine rule with a
// floor that keeps small tables reliable.
func CellsForDiff(d, q int) int {
	if d < 1 {
		d = 1
	}
	m := d*3/2 + 8*q
	return m
}

// DiffAdaptive runs Diff, doubling the difference bound (and re-seeding,
// so a fresh hypergraph is drawn) on ErrPartial, up to maxDoublings
// retries. Theorem 2.6 only promises success with probability
// 1 − O(1/poly(m)), so production use of IBLT reconciliation always
// wraps decoding in a retry loop of this shape.
func DiffAdaptive(bob, alice []uint64, dmax, q int, seed uint64, maxDoublings int) (onlyBob, onlyAlice []uint64, err error) {
	for attempt := 0; ; attempt++ {
		onlyBob, onlyAlice, err = Diff(bob, alice, dmax, q, seed+uint64(attempt)*0x9e37)
		if err == nil || attempt >= maxDoublings {
			return onlyBob, onlyAlice, err
		}
		dmax *= 2
	}
}

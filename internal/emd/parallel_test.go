package emd

import (
	"bytes"
	"testing"

	"repro/internal/metric"
	"repro/internal/workload"
)

// TestShardedBuildGolden asserts the tentpole invariant of the parallel
// sketch path: the wire bytes of Alice's message are bit-identical for
// any worker count. A peer must be unable to tell how many cores built
// the sketch it received.
func TestShardedBuildGolden(t *testing.T) {
	space := metric.HammingCube(64)
	const n, k = 96, 4
	inst := workload.NewEMDInstance(space, n, k, 2, 11)

	base := DefaultParams(space, n, k, 5)
	base.D1, base.D2 = 4, 64 // informed bounds keep s manageable
	base.Workers = 1
	seq, err := BuildMessage(base, inst.SA)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 3, 8} {
		p := base
		p.Workers = workers
		got, err := BuildMessage(p, inst.SA)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(seq, got) {
			t.Errorf("workers=%d: message differs from sequential build (%d vs %d bytes)",
				workers, len(got), len(seq))
		}
	}
}

// TestShardedReconcile runs the full protocol with a sharded Bob side
// and checks the outcome matches the sequential run exactly (Bob's
// peeling consumes his private randomness identically because the
// received tables are identical and deletes are applied in point
// order).
func TestShardedReconcile(t *testing.T) {
	space := metric.HammingCube(64)
	const n, k = 96, 4
	inst := workload.NewEMDInstance(space, n, k, 2, 12)

	run := func(workers int) Result {
		p := DefaultParams(space, n, k, 6)
		p.D1, p.D2 = 4, 64
		p.Workers = workers
		res, err := Reconcile(p, inst.SA, inst.SB)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	seq := run(1)
	par := run(4)
	if seq.Failed != par.Failed || seq.Level != par.Level {
		t.Fatalf("outcome diverged: sequential level=%d failed=%v, parallel level=%d failed=%v",
			seq.Level, seq.Failed, par.Level, par.Failed)
	}
	if !seq.Failed {
		if len(seq.SPrime) != len(par.SPrime) {
			t.Fatalf("|S'B| diverged: %d vs %d", len(seq.SPrime), len(par.SPrime))
		}
		for i := range seq.SPrime {
			for d := range seq.SPrime[i] {
				if seq.SPrime[i][d] != par.SPrime[i][d] {
					t.Fatalf("S'B[%d] diverged", i)
				}
			}
		}
	}
}

package emd

import (
	"fmt"
	"math"

	"repro/internal/metric"
	"repro/internal/transport"
)

// ScaledResult reports a run of the interval-scaling strategy of
// Corollary 3.6.
type ScaledResult struct {
	Result
	// Interval is the index of the smallest interval that succeeded.
	Interval int
	// Intervals is the total number of sub-protocols run.
	Intervals int
}

// ReconcileScaled runs the Corollary 3.6 strategy: the range [D1, D2] is
// split into I = O(log(D2/D1)) intervals of constant ratio, Algorithm 1
// runs once per interval (with the MLSH width tuned to that interval's
// D2, which keeps s small), and Bob adopts the output of the smallest
// interval that did not fail.
//
// All sub-protocols are independent one-message runs that Alice would
// send together, so the reported Stats merge their traffic and count a
// single round, matching the paper's accounting.
func ReconcileScaled(p Params, sa, sb metric.PointSet) (ScaledResult, error) {
	p.ApplyDefaults()
	if err := p.Validate(); err != nil {
		return ScaledResult{}, err
	}
	const ratio = 2.0
	intervals := int(math.Ceil(math.Log2(p.D2 / p.D1)))
	if intervals < 1 {
		intervals = 1
	}
	var merged transport.Stats
	var best *Result
	bestIdx := -1
	for j := 0; j < intervals; j++ {
		lo := p.D1 * math.Pow(ratio, float64(j))
		hi := math.Min(lo*ratio, p.D2)
		sub := p
		sub.D1, sub.D2 = lo, hi
		sub.Seed = p.Seed + uint64(j+1)*0x9e3779b97f4a7c15
		res, err := Reconcile(sub, sa, sb)
		if err != nil {
			return ScaledResult{}, fmt.Errorf("emd: interval %d [%g,%g]: %w", j, lo, hi, err)
		}
		merged.BitsAtoB += res.Stats.BitsAtoB
		merged.BitsBtoA += res.Stats.BitsBtoA
		merged.MsgsAtoB += res.Stats.MsgsAtoB
		merged.MsgsBtoA += res.Stats.MsgsBtoA
		if !res.Failed && best == nil {
			r := res
			best, bestIdx = &r, j
		}
	}
	merged.Rounds = 1 // parallel composition: one physical message
	if best == nil {
		return ScaledResult{
			Result:    Result{Failed: true, Stats: merged},
			Interval:  -1,
			Intervals: intervals,
		}, nil
	}
	best.Stats = merged
	return ScaledResult{Result: *best, Interval: bestIdx, Intervals: intervals}, nil
}

// Package emd implements the paper's Earth Mover's Distance protocol
// (Algorithm 1, §3) and the interval-scaling wrapper of Corollary 3.6.
//
// The protocol: Alice and Bob share (via public coins) a vector of s
// multi-scale LSH functions g1…gs and a pairwise-independent compressor
// h. For t = log2(D2/D1)+1 resolution levels, each party forms for every
// point a level-i key — h applied to a prefix of the gj values whose
// length doubles with i — and Alice inserts (key, point) pairs into one
// RIBLT per level (m = 4q²k cells each). She sends the tables in a
// single message; Bob deletes his pairs and peels the finest level that
// decodes to at most 4k pairs. The decoded Alice-side values XA replace
// the subset YB of Bob's points matched (min-cost, Hungarian) to the
// decoded Bob-side values XB, giving S′B with
// EMD(SA, S′B) ≤ O(α⁻¹·log n)·EMD_k(SA, SB) with constant probability
// (Theorem 3.4).
package emd

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/hashx"
	"repro/internal/lsh"
	"repro/internal/matching"
	"repro/internal/metric"
	"repro/internal/riblt"
	"repro/internal/rng"
	"repro/internal/transport"
)

// Params configures one run of Algorithm 1. Zero values are filled by
// ApplyDefaults; construct with DefaultParams unless an experiment is
// deliberately off-spec.
type Params struct {
	Space metric.Space
	// N is |SA| = |SB| (the model requires equal sizes).
	N int
	// K is the communication parameter: the protocol targets
	// EMD(SA,S′B) ≲ O(log n)·EMD_K(SA,SB) and spends Õ(K) communication.
	K int
	// D1 ≤ EMD_k(SA,SB) ≤ D2 are the caller's bounds. Without prior
	// knowledge the paper uses D1 = 1 and D2 = n·diameter (§3).
	D1, D2 float64
	// Q is the number of RIBLT hash functions (Algorithm 1 needs q ≥ 3).
	Q int
	// CellsPerLevel overrides the RIBLT size; 0 means the paper's 4q²k.
	CellsPerLevel int
	// KeyBits is the width of the pairwise-independent keys
	// (Θ(log n) in the paper; default 40 covers every n we run).
	KeyBits uint
	// MaxDecoded is Algorithm 1's decode cap (default 4K).
	MaxDecoded int
	// MaxFuncs caps s, the number of MLSH draws, as a runtime guard.
	MaxFuncs int
	// Seed is the shared public-coin seed.
	Seed uint64
	// PeelOrder is forwarded to the RIBLTs (BFS per the paper; LIFO
	// exists for the ablation experiment).
	PeelOrder riblt.PeelOrder
	// Workers shards sketch construction (LSH key evaluation and RIBLT
	// insertion) across goroutines: 0 means GOMAXPROCS, 1 forces the
	// sequential path. Purely local — the sharded build merges
	// deterministically, so wire bytes are identical for any value —
	// hence not part of the parameter digest.
	Workers int
}

// DefaultParams returns the no-prior-knowledge parameterization of §3:
// D1 = 1, D2 = n·diameter, with the corollaries' MLSH width choices.
func DefaultParams(space metric.Space, n, k int, seed uint64) Params {
	p := Params{Space: space, N: n, K: k, Seed: seed}
	p.ApplyDefaults()
	return p
}

// ApplyDefaults fills zero fields with the paper's choices.
func (p *Params) ApplyDefaults() {
	if p.D1 == 0 {
		p.D1 = 1
	}
	if p.D2 == 0 {
		p.D2 = float64(p.N) * p.Space.Diameter()
	}
	if p.Q == 0 {
		p.Q = 3
	}
	if p.KeyBits == 0 {
		p.KeyBits = 40
	}
	if p.MaxDecoded == 0 {
		p.MaxDecoded = 4 * p.K
	}
	if p.MaxFuncs == 0 {
		p.MaxFuncs = 1 << 20
	}
}

// Validate reports an error for unusable parameter combinations.
func (p *Params) Validate() error {
	if err := p.Space.Validate(); err != nil {
		return err
	}
	if p.N < 1 || p.K < 1 || p.K > p.N {
		return fmt.Errorf("emd: need 1 <= k <= n, got n=%d k=%d", p.N, p.K)
	}
	if !(p.D1 >= 1) || !(p.D2 >= p.D1) {
		return fmt.Errorf("emd: need 1 <= D1 <= D2, got D1=%v D2=%v", p.D1, p.D2)
	}
	if p.Q < 3 {
		return fmt.Errorf("emd: Algorithm 1 requires q >= 3, got %d", p.Q)
	}
	return nil
}

// family returns the MLSH family for the space, with the width w chosen
// so that p ≥ e^(−k/(24·D2)) as §3 requires (footnotes 4–5): w is scaled
// so the family's base satisfies the constraint, and additionally so the
// validity radius r covers min(M, D2).
func (p *Params) family() (lsh.MLSH, error) {
	// Constraint 1: p_base ≥ e^(−k/(24·D2)). Each family has
	// p_base = e^(−c/w), so w ≥ 24·c·D2/k.
	// Constraint 2: r = ρr·w ≥ min(M, D2) with M the space diameter.
	need := math.Min(p.Space.Diameter(), p.D2)
	var m lsh.MLSH
	switch p.Space.Norm {
	case metric.Hamming:
		w := 24 * 2 * p.D2 / float64(p.K) // c = 2 for e^(−2/w)
		w = math.Max(w, need/0.79)
		w = math.Max(w, float64(p.Space.Dim)) // padding width must be ≥ d
		m = lsh.HammingMLSH(p.Space, w)
	case metric.L1:
		w := 24 * 2 * p.D2 / float64(p.K)
		w = math.Max(w, need/0.79)
		m = lsh.L1MLSH(p.Space, w)
	case metric.L2:
		c := 2 * math.Sqrt(2/math.Pi)
		w := 24 * c * p.D2 / float64(p.K)
		w = math.Max(w, need/0.99)
		m = lsh.L2MLSH(p.Space, w)
	default:
		return lsh.MLSH{}, fmt.Errorf("emd: no MLSH family for norm %v", p.Space.Norm)
	}
	if err := m.Validate(); err != nil {
		return lsh.MLSH{}, err
	}
	return m, nil
}

// plan holds the derived per-level structure shared by both parties.
type plan struct {
	params  Params
	mlsh    lsh.MLSH
	levels  int   // t
	s       int   // total MLSH functions drawn
	prefix  []int // prefix[i] = number of g functions used at level i (0-based)
	cfgs    []riblt.Config
	vec     *lsh.Vector
	keyHash hashx.KeyHasher
}

// newPlan derives the full shared plan from Params. Both parties call it
// with identical Params, so everything (functions, seeds, geometry) is
// identical on both sides — this is the public-coin assumption made
// concrete.
func newPlan(p Params) (*plan, error) {
	p.ApplyDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m, err := p.family()
	if err != nil {
		return nil, err
	}
	lnInvP := math.Log(1 / m.P)
	if lnInvP <= 0 {
		return nil, fmt.Errorf("emd: degenerate MLSH base p=%v", m.P)
	}
	// t = log2(D2/D1) + 1 levels; s = k/(8·D1·ln(1/p)) functions.
	t := int(math.Ceil(math.Log2(p.D2/p.D1))) + 1
	s := int(math.Ceil(float64(p.K) / (8 * p.D1 * lnInvP)))
	if s < 1 {
		s = 1
	}
	if s > p.MaxFuncs {
		return nil, fmt.Errorf("emd: s=%d MLSH functions exceed MaxFuncs=%d; raise D1 or K", s, p.MaxFuncs)
	}
	prefix := make([]int, t)
	for i := 0; i < t; i++ {
		// Level i (1-based in the paper) hashes with the first
		// 2^(i−1)·s·D1/D2 functions; clamp into [1, s].
		exact := math.Pow(2, float64(i)) * float64(s) * p.D1 / p.D2
		n := int(math.Round(exact))
		if n < 1 {
			n = 1
		}
		if n > s {
			n = s
		}
		prefix[i] = n
	}
	cells := p.CellsPerLevel
	if cells == 0 {
		cells = 4 * p.Q * p.Q * p.K
	}
	src := rng.New(p.Seed)
	famSrc := src.Split()
	keySrc := src.Split()
	tblSrc := src.Split()
	cfgs := make([]riblt.Config, t)
	for i := range cfgs {
		cfgs[i] = riblt.Config{
			Cells:    cells,
			Q:        p.Q,
			Dim:      p.Space.Dim,
			Delta:    p.Space.Delta,
			KeyBits:  p.KeyBits,
			MaxItems: 2*p.N + 2,
			Seed:     tblSrc.Uint64(),
			Order:    p.PeelOrder,
		}
	}
	return &plan{
		params:  p,
		mlsh:    m,
		levels:  t,
		s:       s,
		prefix:  prefix,
		cfgs:    cfgs,
		vec:     lsh.DrawVector(m.Family, famSrc, s),
		keyHash: hashx.NewKeyHasher(keySrc, p.KeyBits),
	}, nil
}

// keysInto computes a point's key at every level into dst (length >=
// levels): one evaluation of all s MLSH functions into scratch (length
// >= s), then one incremental pass compressing every level prefix —
// the prefixes are nondecreasing, so hashx.KeyHasher.HashPrefixes
// derives all t keys from a single polynomial sweep. No allocation.
func (pl *plan) keysInto(dst []uint64, pt metric.Point, scratch []uint64) []uint64 {
	vals := pl.vec.HashPrefixInto(scratch, pt, pl.s)
	return pl.keyHash.HashPrefixes(dst, vals, pl.prefix)
}

// ---------------------------------------------------------------------------
// Plan cache. Deriving a plan draws s MLSH functions and the table
// seeds — by far the most allocation-heavy step of a session, yet a pure
// function of Params. Server and client paths construct handlers with
// identical Params for every peer, so plans are cached (a plan is
// immutable after construction and safe to share across goroutines).
// The cache is a small LRU: experiment sweeps that vary the seed per
// run churn through it without growing it.

const planCacheSize = 32

type planCacheEntry struct {
	pl  *plan
	gen uint64
}

var (
	planMu    sync.Mutex
	planGen   uint64
	planCache = make(map[Params]*planCacheEntry, planCacheSize)
)

// planFor returns the shared plan for p, deriving and caching it on
// first use. The key is the defaulted Params value with the purely
// local Workers knob zeroed — it shapes no derived state (the digest
// excludes it for the same reason), so sessions differing only in
// worker count share one plan; callers thread their worker count to
// the builders explicitly.
func planFor(p Params) (*plan, error) {
	p.ApplyDefaults()
	p.Workers = 0
	planMu.Lock()
	if e, ok := planCache[p]; ok {
		planGen++
		e.gen = planGen
		pl := e.pl
		planMu.Unlock()
		return pl, nil
	}
	planMu.Unlock()
	pl, err := newPlan(p) // outside the lock: derivation is expensive
	if err != nil {
		return nil, err
	}
	planMu.Lock()
	defer planMu.Unlock()
	if e, ok := planCache[p]; ok { // lost a race; share the winner
		return e.pl, nil
	}
	planGen++
	planCache[p] = &planCacheEntry{pl: pl, gen: planGen}
	if len(planCache) > planCacheSize {
		var oldestK Params
		oldest := uint64(0)
		for k, e := range planCache {
			if oldest == 0 || e.gen < oldest {
				oldest, oldestK = e.gen, k
			}
		}
		delete(planCache, oldestK)
	}
	return pl, nil
}

// Result reports one protocol run.
type Result struct {
	// SPrime is Bob's output point set S′B (nil when Failed).
	SPrime metric.PointSet
	// Failed is true when no level decoded within the cap — Algorithm
	// 1's explicit failure report (probability ≤ 1/8 when
	// EMD_k ≤ D2, Theorem 3.4).
	Failed bool
	// Level is i*, the finest decoded level (1-based; 0 when Failed).
	Level int
	// XA and XB are the decoded difference sets at level i*.
	XA, XB metric.PointSet
	// Stats is the exact communication tally.
	Stats transport.Stats
	// Levels and Funcs record the derived t and s for reporting.
	Levels, Funcs int
}

// Reconcile runs the full one-round protocol in-process: Alice encodes,
// the channel counts bits, Bob decodes and assembles S′B.
func Reconcile(p Params, sa, sb metric.PointSet) (Result, error) {
	pl, err := planFor(p)
	if err != nil {
		return Result{}, err
	}
	if len(sa) != pl.params.N || len(sb) != pl.params.N {
		return Result{}, fmt.Errorf("emd: |SA|=%d |SB|=%d, params.N=%d", len(sa), len(sb), pl.params.N)
	}
	var ch transport.Channel
	e, err := alice(pl, sa, p.Workers)
	if err != nil {
		return Result{}, err
	}
	ch.Send(transport.AliceToBob, e)
	res, err := bob(pl, sb, &ch, p.Workers)
	if err != nil {
		return Result{}, err
	}
	res.Stats = ch.Stats()
	res.Levels = pl.levels
	res.Funcs = pl.s
	return res, nil
}

// alice builds the t RIBLTs (sharded across workers, see parallel.go)
// and encodes them as the protocol's single message. Encoding itself is
// sequential over the merged cells, so the wire bytes are identical for
// any worker count.
func alice(pl *plan, sa metric.PointSet, workers int) (*transport.Encoder, error) {
	tables, err := pl.buildTables(sa, workers)
	if err != nil {
		return nil, err
	}
	return encodeTables(pl.levels, tables), nil
}

// encodeTables serializes the level tables as the protocol's single
// message; the incremental Sketch encodes through the same path, so an
// incrementally maintained sketch is bit-identical on the wire.
func encodeTables(levels int, tables []*riblt.Table) *transport.Encoder {
	e := transport.NewEncoder()
	e.WriteUvarint(uint64(levels))
	for _, t := range tables {
		t.Encode(e)
	}
	return e
}

// bob receives the tables, deletes his pairs, finds i*, and assembles
// S′B.
func bob(pl *plan, sb metric.PointSet, ch *transport.Channel, workers int) (Result, error) {
	d, err := ch.Recv(transport.AliceToBob)
	if err != nil {
		return Result{}, err
	}
	return bobDecode(pl, sb, d, workers)
}

// bobDecode is bob over an already-positioned decoder — the zero-copy
// path ApplyMessage and the wire handlers use.
func bobDecode(pl *plan, sb metric.PointSet, d *transport.Decoder, workers int) (Result, error) {
	nLevels, err := d.ReadUvarint()
	if err != nil {
		return Result{}, err
	}
	if int(nLevels) != pl.levels {
		return Result{}, fmt.Errorf("emd: message has %d levels, plan has %d", nLevels, pl.levels)
	}
	tables := make([]*riblt.Table, pl.levels)
	for i := range tables {
		if tables[i], err = riblt.DecodeFrom(d, pl.cfgs[i]); err != nil {
			for _, t := range tables[:i] {
				t.Release()
			}
			return Result{}, err
		}
	}
	return applyTables(pl, sb, tables, workers)
}

// applyTables is Bob's core: delete his pairs from Alice's tables, find
// i*, assemble S′B. It consumes tables (deletion and peeling mutate
// them, and their memory returns to the riblt pool on return); callers
// holding a cached sketch clone first.
func applyTables(pl *plan, sb metric.PointSet, tables []*riblt.Table, workers int) (Result, error) {
	defer func() {
		for _, t := range tables {
			t.Release()
		}
	}()
	t := pl.levels
	allKeys := pl.levelKeys(sb, workers)
	for j, b := range sb {
		for i, key := range allKeys[j*t : (j+1)*t] {
			tables[i].Delete(key, b)
		}
	}
	// Find i*: the largest level that peels fully to at most MaxDecoded
	// pairs. Bob's rounding randomness is private.
	round := rng.New(pl.params.Seed ^ 0xb0b)
	for i := pl.levels - 1; i >= 0; i-- {
		res, err := tables[i].Peel(round)
		if err != nil {
			continue
		}
		if len(res.Inserted)+len(res.Deleted) > pl.params.MaxDecoded {
			continue
		}
		xa := make(metric.PointSet, len(res.Inserted))
		for j, pr := range res.Inserted {
			xa[j] = pr.Value
		}
		xb := make(metric.PointSet, len(res.Deleted))
		for j, pr := range res.Deleted {
			xb[j] = pr.Value
		}
		sPrime := assemble(pl.params.Space, sb, xa, xb)
		return Result{SPrime: sPrime, Level: i + 1, XA: xa, XB: xb}, nil
	}
	return Result{Failed: true}, nil
}

// assemble computes S′B = (SB \ YB) ∪ XA, where YB is the subset of SB
// matched to XB in the min-cost matching (the Hungarian step of
// Algorithm 1).
func assemble(space metric.Space, sb, xa, xb metric.PointSet) metric.PointSet {
	if len(xb) == 0 {
		return append(sb.Clone(), xa.Clone()...)
	}
	rows, _ := matching.Assign(matching.CostMatrix(space, xb, sb))
	drop := make([]bool, len(sb))
	dropped := 0
	for _, j := range rows {
		if j >= 0 {
			drop[j] = true
			dropped++
		}
	}
	out := make(metric.PointSet, 0, len(sb)-dropped+len(xa))
	for j, b := range sb {
		if !drop[j] {
			out = append(out, b.Clone())
		}
	}
	out = append(out, xa.Clone()...)
	return out
}

// NaiveBits returns the communication of the trivial protocol (Alice
// transmits her whole set): n·log|U| bits, the baseline every bound in
// the paper is compared against.
func NaiveBits(space metric.Space, n int) int64 {
	return int64(n) * int64(space.BitsPerPoint())
}

package emd

import (
	"bytes"
	"testing"

	"repro/internal/metric"
	"repro/internal/workload"
)

// TestPooledBuildWireGolden proves the pooled paths change no wire bit:
// the same set encodes to identical bytes before and after the riblt
// table pool, the plan cache, and the receive path have all been warmed
// and recycled by a full Apply cycle.
func TestPooledBuildWireGolden(t *testing.T) {
	space := metric.HammingCube(64)
	const n, k = 32, 3
	inst := workload.NewEMDInstance(space, n, k, 2, 11)
	p := DefaultParams(space, n, k, 12)
	p.D1, p.D2 = 2, 64

	cold, err := BuildMessage(p, inst.SA)
	if err != nil {
		t.Fatal(err)
	}
	// Consume the message: decodes into pooled tables, peels, releases —
	// the pool is now warm with table memory this very geometry reuses.
	if _, err := ApplyMessage(p, inst.SB, cold); err != nil {
		t.Fatal(err)
	}
	warm, err := BuildMessage(p, inst.SA)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatal("pooled rebuild changed the wire bytes")
	}

	// The incremental sketch (pooled clone/release cycle inside Apply)
	// must encode the same message too.
	sk, err := BuildSketch(p, inst.SA)
	if err != nil {
		t.Fatal(err)
	}
	if got := sk.Encode(); !bytes.Equal(cold, got) {
		t.Fatal("sketch encode diverged from BuildMessage after pooling")
	}
	if _, err := sk.Apply(inst.SB); err != nil {
		t.Fatal(err)
	}
	if got := sk.Encode(); !bytes.Equal(cold, got) {
		t.Fatal("Apply mutated the sketch's wire bytes")
	}
}

// TestPlanCacheSharesDerivation checks planFor returns one shared plan
// for equal Params (zero-valued and explicitly defaulted alike) and
// distinct plans once any digest-relevant field differs.
func TestPlanCacheSharesDerivation(t *testing.T) {
	space := metric.HammingCube(64)
	a := DefaultParams(space, 32, 3, 5)
	b := Params{Space: space, N: 32, K: 3, Seed: 5} // zero fields default

	pa, err := planFor(a)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := planFor(b)
	if err != nil {
		t.Fatal(err)
	}
	if pa != pb {
		t.Fatal("equal Params derived distinct plans; cache miss on defaulted form")
	}
	c := a
	c.Seed = 6
	pc, err := planFor(c)
	if err != nil {
		t.Fatal(err)
	}
	if pc == pa {
		t.Fatal("different seeds shared one plan")
	}
}

// BenchmarkBuildSketch tracks the sharded sketch builder's allocation
// discipline (ReportAllocs coverage for the construction hot path).
func BenchmarkBuildSketch(b *testing.B) {
	space := metric.HammingCube(128)
	const n, k = 64, 4
	inst := workload.NewEMDInstance(space, n, k, 2, 9)
	p := DefaultParams(space, n, k, 77)
	p.D1, p.D2 = 4, 256
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildSketch(p, inst.SA); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkApplyMessage tracks Bob's receive path — decode into pooled
// tables, delete, peel, assemble — end to end.
func BenchmarkApplyMessage(b *testing.B) {
	space := metric.HammingCube(128)
	const n, k = 64, 4
	inst := workload.NewEMDInstance(space, n, k, 2, 9)
	p := DefaultParams(space, n, k, 77)
	p.D1, p.D2 = 4, 256
	msg, err := BuildMessage(p, inst.SA)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ApplyMessage(p, inst.SB, msg); err != nil {
			b.Fatal(err)
		}
	}
}

package emd

import (
	"bytes"
	"testing"

	"repro/internal/metric"
	"repro/internal/rng"
)

func sketchTestParams() Params {
	return Params{
		Space: metric.HammingCube(64),
		N:     32, K: 3, D1: 2, D2: 64,
		Seed: 7, Workers: 1,
	}
}

func randomPoint(space metric.Space, src *rng.Source) metric.Point {
	pt := make(metric.Point, space.Dim)
	for i := range pt {
		pt[i] = int32(src.Uint64() % uint64(space.Delta+1))
	}
	return pt
}

// TestSketchIncrementalGolden: after any random Add/Remove sequence the
// incrementally maintained sketch encodes bit-identically to a
// from-scratch build over the same multiset, and — at full capacity —
// to the BuildMessage wire path itself.
func TestSketchIncrementalGolden(t *testing.T) {
	p := sketchTestParams()
	sk, err := NewSketch(p)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(99)
	var set metric.PointSet
	for op := 0; op < 400; op++ {
		if len(set) > 0 && (len(set) >= p.N || src.Uint64()%2 == 0) {
			i := int(src.Uint64() % uint64(len(set)))
			sk.Remove(set[i])
			set[i] = set[len(set)-1]
			set = set[:len(set)-1]
		} else {
			pt := randomPoint(p.Space, src)
			sk.Add(pt)
			set = append(set, pt)
		}
		if op%100 != 99 {
			continue
		}
		ref, err := BuildSketch(p, set)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sk.Encode(), ref.Encode()) {
			t.Fatalf("op %d (size %d): incremental sketch differs from from-scratch build", op, len(set))
		}
	}
	// Top up to exactly N and compare against the protocol's own
	// message builder.
	for len(set) < p.N {
		pt := randomPoint(p.Space, src)
		sk.Add(pt)
		set = append(set, pt)
	}
	msg, err := BuildMessage(p, set)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sk.Encode(), msg) {
		t.Fatal("incremental sketch differs from BuildMessage wire bytes")
	}

	// The full sketch must reconcile: Bob applies it the same way
	// ApplyMessage does, with identical (seeded) rounding randomness.
	direct, err := ApplyMessage(p, set, msg)
	if err != nil {
		t.Fatal(err)
	}
	viaSketch, err := sk.Apply(set)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Failed != viaSketch.Failed || direct.Level != viaSketch.Level {
		t.Fatalf("Apply diverges from ApplyMessage: %+v vs %+v", direct.Failed, viaSketch.Failed)
	}
}

// TestSketchDeltaPatch: encoding only churned cells and patching them
// into a stale clone reproduces the mutated sketch exactly.
func TestSketchDeltaPatch(t *testing.T) {
	p := sketchTestParams()
	src := rng.New(5)
	var set metric.PointSet
	for i := 0; i < p.N; i++ {
		set = append(set, randomPoint(p.Space, src))
	}
	sk, err := BuildSketch(p, set)
	if err != nil {
		t.Fatal(err)
	}
	stale := sk.Clone()

	var refs []CellRef
	for i := 0; i < 5; i++ {
		refs = append(refs, sk.Remove(set[i])...)
		pt := randomPoint(p.Space, src)
		refs = append(refs, sk.Add(pt)...)
	}
	patch := sk.EncodeCells(SortCellRefs(refs))
	if len(patch) >= len(sk.Encode()) {
		t.Logf("delta (%d bytes) not smaller than full (%d bytes) at this churn", len(patch), len(sk.Encode()))
	}
	if err := stale.ApplyCells(patch); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stale.Encode(), sk.Encode()) {
		t.Fatal("patched sketch differs from mutated sketch")
	}
	if stale.Fingerprint() != sk.Fingerprint() {
		t.Fatal("fingerprint mismatch after patch")
	}

	// A decoded wire sketch patches identically.
	wire, err := DecodeSketch(p, stale.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if wire.Fingerprint() != sk.Fingerprint() {
		t.Fatal("decoded sketch fingerprint differs")
	}
}

// TestSketchApplyMatchesReconcile: serving a sketch to Bob produces the
// same reconciliation a one-shot ApplyMessage run does.
func TestSketchApplyMatchesReconcile(t *testing.T) {
	p := sketchTestParams()
	src := rng.New(11)
	var sa, sb metric.PointSet
	for i := 0; i < p.N; i++ {
		pt := randomPoint(p.Space, src)
		sa = append(sa, pt)
		sb = append(sb, pt.Clone())
	}
	// Perturb a couple of Bob's points.
	sb[0][0] ^= 1
	sb[1][1] ^= 1

	sk, err := BuildSketch(p, sa)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sk.Apply(sb)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ApplyMessage(p, sb, sk.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != want.Failed || res.Level != want.Level ||
		len(res.SPrime) != len(want.SPrime) {
		t.Fatalf("sketch apply (failed=%v level=%d |S'|=%d) != message apply (failed=%v level=%d |S'|=%d)",
			res.Failed, res.Level, len(res.SPrime), want.Failed, want.Level, len(want.SPrime))
	}
}

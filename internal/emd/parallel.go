package emd

import (
	"repro/internal/metric"
	"repro/internal/parallel"
	"repro/internal/riblt"
)

// Sharded sketch construction. The two hot loops of Algorithm 1 — MLSH
// key-vector evaluation (s function applications per point) and RIBLT
// insertion (q cell updates per level per point) — are both
// order-independent: keys depend only on the point and the shared draw,
// and RIBLT cells hold sums, which commute. Points are therefore sharded
// into blocks, each worker builds private per-level tables, and the
// shards merge cell-wise (riblt.Merge). The merged tables are
// field-identical to a sequential build, so the encoded wire bytes are
// bit-identical for any worker count — asserted by TestShardedBuildGolden.

// minBlock is the smallest point block worth a goroutine (each point
// costs s LSH evaluations, far heavier than one IBLT key insert).
const minBlock = 16

// levelKeys computes every point's per-level keys, sharding the MLSH
// evaluation across workers by point block. out[i] is point i's key per
// level, so the result is positionally deterministic regardless of
// worker count. Each worker reuses one scratch buffer across its block;
// the drawn Funcs and the key hasher are immutable after plan
// construction, so concurrent evaluation is safe.
func (pl *plan) levelKeys(pts metric.PointSet) [][]uint64 {
	out := make([][]uint64, len(pts))
	w := parallel.Workers(pl.params.Workers, len(pts), minBlock)
	if w == 1 {
		scratch := make([]uint64, pl.s)
		for i, p := range pts {
			out[i] = pl.keysFor(p, scratch)
		}
		return out
	}
	parallel.Shard(len(pts), w, func(_, lo, hi int) {
		scratch := make([]uint64, pl.s)
		for i := lo; i < hi; i++ {
			out[i] = pl.keysFor(pts[i], scratch)
		}
	})
	return out
}

// buildTables constructs Alice's t level-RIBLTs over sa, sharding both
// the key evaluation and the insertions across workers.
func (pl *plan) buildTables(sa metric.PointSet) ([]*riblt.Table, error) {
	newTables := func() []*riblt.Table {
		ts := make([]*riblt.Table, pl.levels)
		for i := range ts {
			ts[i] = riblt.New(pl.cfgs[i])
		}
		return ts
	}
	w := parallel.Workers(pl.params.Workers, len(sa), minBlock)
	if w == 1 {
		tables := newTables()
		scratch := make([]uint64, pl.s)
		for _, a := range sa {
			keys := pl.keysFor(a, scratch)
			for i, key := range keys {
				tables[i].Insert(key, a)
			}
		}
		return tables, nil
	}
	shards := make([][]*riblt.Table, w)
	parallel.Shard(len(sa), w, func(b, lo, hi int) {
		ts := newTables()
		scratch := make([]uint64, pl.s)
		for _, a := range sa[lo:hi] {
			keys := pl.keysFor(a, scratch)
			for i, key := range keys {
				ts[i].Insert(key, a)
			}
		}
		shards[b] = ts
	})
	merged := shards[0]
	for _, ts := range shards[1:] {
		if ts == nil {
			continue
		}
		for i := range merged {
			if err := merged[i].Merge(ts[i]); err != nil {
				return nil, err
			}
		}
	}
	return merged, nil
}

package emd

import (
	"repro/internal/metric"
	"repro/internal/parallel"
	"repro/internal/riblt"
)

// Sharded sketch construction. The two hot loops of Algorithm 1 — MLSH
// key-vector evaluation (s function applications per point) and RIBLT
// insertion (q cell updates per level per point) — are both
// order-independent: keys depend only on the point and the shared draw,
// and RIBLT cells hold sums, which commute. Points are therefore sharded
// into blocks, each worker builds private per-level tables, and the
// shards merge cell-wise (riblt.Merge). The merged tables are
// field-identical to a sequential build, so the encoded wire bytes are
// bit-identical for any worker count — asserted by TestShardedBuildGolden.

// minBlock is the smallest point block worth a goroutine (each point
// costs s LSH evaluations, far heavier than one IBLT key insert).
const minBlock = 16

// levelKeys computes every point's per-level keys into one flat
// preallocated slice — point-major, so out[i*levels:(i+1)*levels] holds
// point i's key per level — sharding the MLSH evaluation across workers
// by point block. The layout is positionally deterministic regardless of
// worker count, and the whole batch costs two allocations (the flat
// output plus per-worker scratch). The drawn Funcs and the key hasher
// are immutable after plan construction, so concurrent evaluation is
// safe.
func (pl *plan) levelKeys(pts metric.PointSet, workers int) []uint64 {
	t := pl.levels
	out := make([]uint64, len(pts)*t)
	w := parallel.Workers(workers, len(pts), minBlock)
	if w == 1 {
		scratch := make([]uint64, pl.s)
		for i, p := range pts {
			pl.keysInto(out[i*t:(i+1)*t], p, scratch)
		}
		return out
	}
	parallel.Shard(len(pts), w, func(_, lo, hi int) {
		scratch := make([]uint64, pl.s)
		for i := lo; i < hi; i++ {
			pl.keysInto(out[i*t:(i+1)*t], pts[i], scratch)
		}
	})
	return out
}

// buildTables constructs Alice's t level-RIBLTs over sa, sharding both
// the key evaluation and the insertions across workers.
func (pl *plan) buildTables(sa metric.PointSet, workers int) ([]*riblt.Table, error) {
	newTables := func() []*riblt.Table {
		ts := make([]*riblt.Table, pl.levels)
		for i := range ts {
			ts[i] = riblt.New(pl.cfgs[i])
		}
		return ts
	}
	w := parallel.Workers(workers, len(sa), minBlock)
	if w == 1 {
		tables := newTables()
		scratch := make([]uint64, pl.s)
		keys := make([]uint64, pl.levels)
		for _, a := range sa {
			pl.keysInto(keys, a, scratch)
			for i, key := range keys {
				tables[i].Insert(key, a)
			}
		}
		return tables, nil
	}
	shards := make([][]*riblt.Table, w)
	parallel.Shard(len(sa), w, func(b, lo, hi int) {
		ts := newTables()
		scratch := make([]uint64, pl.s)
		keys := make([]uint64, pl.levels)
		for _, a := range sa[lo:hi] {
			pl.keysInto(keys, a, scratch)
			for i, key := range keys {
				ts[i].Insert(key, a)
			}
		}
		shards[b] = ts
	})
	merged := shards[0]
	for _, ts := range shards[1:] {
		if ts == nil {
			continue
		}
		for i := range merged {
			if err := merged[i].Merge(ts[i]); err != nil {
				return nil, err
			}
			// Shard memory goes straight back to the riblt pool — the
			// sharded build no longer allocates per shard in steady
			// state.
			ts[i].Release()
		}
	}
	return merged, nil
}

package emd

import (
	"fmt"

	"repro/internal/metric"
	"repro/internal/transport"
)

// The split-party API. Reconcile drives both parties in one process for
// experiments; deployments instead call BuildMessage on Alice's side,
// ship the bytes however they like, and call ApplyMessage on Bob's. Both
// sides must construct identical Params (same Seed — the shared public
// coins).

// BuildMessage runs Alice's side of Algorithm 1 and returns the single
// protocol message: all t level-RIBLTs of her point set.
func BuildMessage(p Params, sa metric.PointSet) ([]byte, error) {
	pl, err := planFor(p)
	if err != nil {
		return nil, err
	}
	if len(sa) != pl.params.N {
		return nil, fmt.Errorf("emd: |SA|=%d, params.N=%d", len(sa), pl.params.N)
	}
	e, err := alice(pl, sa, p.Workers)
	if err != nil {
		return nil, err
	}
	data, _ := e.Pack()
	return data, nil
}

// ApplyMessage runs Bob's side: it deletes his pairs from the received
// tables, selects i*, and assembles S′B. Stats reflect the message size.
// msg is only read, never retained — callers may pass bytes borrowed
// from a live wire frame.
func ApplyMessage(p Params, sb metric.PointSet, msg []byte) (Result, error) {
	pl, err := planFor(p)
	if err != nil {
		return Result{}, err
	}
	if len(sb) != pl.params.N {
		return Result{}, fmt.Errorf("emd: |SB|=%d, params.N=%d", len(sb), pl.params.N)
	}
	// Decode the message in place. Historically the bytes were re-encoded
	// through a bit packer into a transport.Channel just to account them;
	// the tally below is the exact Stats that round trip produced.
	var d transport.Decoder
	d.Reset(msg)
	res, err := bobDecode(pl, sb, &d, p.Workers)
	if err != nil {
		return Result{}, err
	}
	res.Stats = transport.Stats{
		Rounds:   1,
		BitsAtoB: int64(len(msg)) * 8,
		MsgsAtoB: 1,
	}
	res.Levels = pl.levels
	res.Funcs = pl.s
	return res, nil
}

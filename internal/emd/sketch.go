package emd

import (
	"fmt"
	"sort"

	"repro/internal/metric"
	"repro/internal/riblt"
	"repro/internal/transport"
)

// Sketch is Alice's EMD protocol state as a long-lived, incrementally
// maintained object: the t level-RIBLTs of her current point set. RIBLT
// cells hold sums, so inserting and retracting a point are exact
// inverses, and a point mutation costs one MLSH key-vector evaluation
// plus q cell updates per level — O(hashes) instead of the O(n·s) full
// rebuild. After any mutation sequence the sketch is field-identical,
// and therefore bit-identical on the wire, to a from-scratch build over
// the same multiset (asserted by TestSketchIncrementalGolden).
//
// A Sketch is not safe for concurrent use; internal/live serializes
// mutations and serves immutable clones.
type Sketch struct {
	pl      *plan
	workers int // local Params.Workers (plans are shared, so not in pl)
	tables  []*riblt.Table
	scratch []uint64  // MLSH value scratch (s wide)
	keys    []uint64  // per-level key scratch (t wide)
	refs    []CellRef // churn scratch, reused across mutations
}

// newSketch wraps tables in a Sketch with its mutation scratch.
func newSketch(pl *plan, tables []*riblt.Table, workers int) *Sketch {
	return &Sketch{
		pl:      pl,
		workers: workers,
		tables:  tables,
		scratch: make([]uint64, pl.s),
		keys:    make([]uint64, pl.levels),
	}
}

// CellRef names one RIBLT cell of one resolution level; mutations
// report the cells they churned so a live set can journal them for
// delta synchronization.
type CellRef struct {
	Level int
	Cell  int
}

// NewSketch builds an empty sketch. Params.N acts as a capacity bound:
// the live multiset must never exceed N points (the RIBLT overflow
// guards are sized from it).
func NewSketch(p Params) (*Sketch, error) {
	pl, err := planFor(p)
	if err != nil {
		return nil, err
	}
	tables := make([]*riblt.Table, pl.levels)
	for i := range tables {
		tables[i] = riblt.New(pl.cfgs[i])
	}
	return newSketch(pl, tables, p.Workers), nil
}

// BuildSketch builds a sketch over pts from scratch, sharding the MLSH
// evaluation and insertions across Params.Workers. Unlike BuildMessage
// it does not require len(pts) == Params.N — N is the capacity bound,
// and a live set churns below it.
func BuildSketch(p Params, pts metric.PointSet) (*Sketch, error) {
	pl, err := planFor(p)
	if err != nil {
		return nil, err
	}
	if len(pts) > pl.params.N {
		return nil, fmt.Errorf("emd: %d points exceed capacity N=%d", len(pts), pl.params.N)
	}
	tables, err := pl.buildTables(pts, p.Workers)
	if err != nil {
		return nil, err
	}
	return newSketch(pl, tables, p.Workers), nil
}

// DecodeSketch reconstructs a sketch from a full protocol message (the
// receiver's side of the delta-sync fast path caches one and patches
// churned cells on later sessions).
func DecodeSketch(p Params, msg []byte) (*Sketch, error) {
	pl, err := planFor(p)
	if err != nil {
		return nil, err
	}
	d := transport.NewDecoder(msg)
	nLevels, err := d.ReadUvarint()
	if err != nil {
		return nil, err
	}
	if int(nLevels) != pl.levels {
		return nil, fmt.Errorf("emd: message has %d levels, plan has %d", nLevels, pl.levels)
	}
	tables := make([]*riblt.Table, pl.levels)
	for i := range tables {
		if tables[i], err = riblt.DecodeFrom(d, pl.cfgs[i]); err != nil {
			return nil, err
		}
	}
	return newSketch(pl, tables, p.Workers), nil
}

// Levels returns t, the number of resolution levels.
func (s *Sketch) Levels() int { return s.pl.levels }

// Cells returns the per-level cell count (identical across levels).
func (s *Sketch) Cells() int { return s.tables[0].Cells() }

// Add inserts one point: one evaluation of the s MLSH functions, then q
// cell updates per level. It returns the churned cells in a scratch
// slice owned by the sketch — valid only until the next mutation;
// callers that retain the refs (a journal) copy them out first.
func (s *Sketch) Add(pt metric.Point) []CellRef {
	return s.mutate(pt, true)
}

// Remove retracts one previously added point (same cost as Add, same
// scratch-return contract). The caller must ensure the point is in the
// maintained multiset; internal/live tracks membership.
func (s *Sketch) Remove(pt metric.Point) []CellRef {
	return s.mutate(pt, false)
}

func (s *Sketch) mutate(pt metric.Point, add bool) []CellRef {
	keys := s.pl.keysInto(s.keys, pt, s.scratch)
	refs := s.refs[:0]
	var buf [8]int
	for i, key := range keys {
		if add {
			s.tables[i].Insert(key, pt)
		} else {
			s.tables[i].Retract(key, pt)
		}
		for _, c := range s.tables[i].CellIndices(key, buf[:0]) {
			refs = append(refs, CellRef{Level: i, Cell: c})
		}
	}
	s.refs = refs
	return refs
}

// Encode serializes the sketch as the protocol's single message,
// bit-identical to BuildMessage over the same multiset.
func (s *Sketch) Encode() []byte {
	data, _ := encodeTables(s.pl.levels, s.tables).Pack()
	return data
}

// Fingerprint hashes the encoded sketch (FNV-1a over the wire bytes).
// Delta-sync replies carry it so a receiver can detect cache divergence
// after patching instead of reconciling against garbage. Callers that
// already hold the encoded message should use FingerprintMessage to
// avoid re-encoding.
func (s *Sketch) Fingerprint() uint64 { return FingerprintMessage(s.Encode()) }

// FingerprintMessage is Fingerprint over an already-encoded message.
func FingerprintMessage(msg []byte) uint64 {
	const offset, prime = 0xcbf29ce484222325, 0x100000001b3
	h := uint64(offset)
	for _, b := range msg {
		h = (h ^ uint64(b)) * prime
	}
	return h
}

// Clone deep-copies the sketch (cells included); the clone shares the
// immutable plan.
func (s *Sketch) Clone() *Sketch {
	tables := make([]*riblt.Table, len(s.tables))
	for i, t := range s.tables {
		tables[i] = t.Clone()
	}
	return newSketch(s.pl, tables, s.workers)
}

// SortCellRefs orders refs by (level, cell) and drops duplicates, the
// canonical order EncodeCells expects.
func SortCellRefs(refs []CellRef) []CellRef {
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Level != refs[j].Level {
			return refs[i].Level < refs[j].Level
		}
		return refs[i].Cell < refs[j].Cell
	})
	out := refs[:0]
	for i, r := range refs {
		if i == 0 || r != refs[i-1] {
			out = append(out, r)
		}
	}
	return out
}

// EncodeCells serializes the named cells with their absolute current
// values — the delta-sync payload. refs must be sorted and deduplicated
// (SortCellRefs).
func (s *Sketch) EncodeCells(refs []CellRef) []byte {
	e := transport.NewEncoder()
	e.WriteUvarint(uint64(len(refs)))
	for _, r := range refs {
		e.WriteUvarint(uint64(r.Level))
		e.WriteUvarint(uint64(r.Cell))
		s.tables[r.Level].EncodeCellAt(r.Cell, e)
	}
	data, _ := e.Pack()
	return data
}

// ApplyCells patches the sketch with a delta payload produced by
// EncodeCells: each listed cell is overwritten with its absolute remote
// value, bringing a cached sketch up to the sender's epoch.
func (s *Sketch) ApplyCells(patch []byte) error {
	d := transport.NewDecoder(patch)
	n, err := d.ReadUvarint()
	if err != nil {
		return err
	}
	total := uint64(s.pl.levels) * uint64(s.tables[0].Cells())
	if n > total {
		return fmt.Errorf("emd: delta patches %d cells, sketch has %d", n, total)
	}
	for i := uint64(0); i < n; i++ {
		lvl, err := d.ReadUvarint()
		if err != nil {
			return err
		}
		if int(lvl) >= s.pl.levels {
			return fmt.Errorf("emd: delta names level %d of %d", lvl, s.pl.levels)
		}
		cell, err := d.ReadUvarint()
		if err != nil {
			return err
		}
		if err := s.tables[lvl].PatchCellAt(int(cell), d); err != nil {
			return err
		}
	}
	return nil
}

// Apply runs Bob's side of Algorithm 1 against the sketch: his pairs
// are deleted from a clone of the tables (the sketch itself is not
// consumed), the finest decodable level is peeled, and S′B assembled.
func (s *Sketch) Apply(sb metric.PointSet) (Result, error) {
	tables := make([]*riblt.Table, len(s.tables))
	for i, t := range s.tables {
		tables[i] = t.Clone()
	}
	res, err := applyTables(s.pl, sb, tables, s.workers)
	if err != nil {
		return Result{}, err
	}
	res.Levels = s.pl.levels
	res.Funcs = s.pl.s
	return res, nil
}

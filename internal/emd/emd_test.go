package emd

import (
	"math"
	"testing"

	"repro/internal/matching"
	"repro/internal/metric"
	"repro/internal/rng"
	"repro/internal/workload"
)

func TestParamsValidate(t *testing.T) {
	space := metric.HammingCube(32)
	p := DefaultParams(space, 16, 2, 1)
	if err := p.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := []func(*Params){
		func(p *Params) { p.K = 0 },
		func(p *Params) { p.K = p.N + 1 },
		func(p *Params) { p.N = 0 },
		func(p *Params) { p.D1 = 0.5 },
		func(p *Params) { p.D2 = p.D1 / 2 },
		func(p *Params) { p.Q = 2 },
	}
	for i, mod := range bad {
		pp := DefaultParams(space, 16, 2, 1)
		mod(&pp)
		if err := pp.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestPlanStructure(t *testing.T) {
	space := metric.HammingCube(64)
	p := DefaultParams(space, 32, 4, 7)
	p.D1, p.D2 = 4, 256
	pl, err := newPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	// t = log2(D2/D1) + 1 = 7.
	if pl.levels != 7 {
		t.Errorf("levels = %d, want 7", pl.levels)
	}
	// Prefixes are nondecreasing, start >= 1, end == s.
	for i := 1; i < pl.levels; i++ {
		if pl.prefix[i] < pl.prefix[i-1] {
			t.Errorf("prefix not monotone: %v", pl.prefix)
		}
	}
	if pl.prefix[0] < 1 || pl.prefix[pl.levels-1] != pl.s {
		t.Errorf("prefix endpoints: %v (s=%d)", pl.prefix, pl.s)
	}
	// The paper's m = 4q²k.
	if got := pl.cfgs[0].Cells; got != 4*3*3*4 {
		t.Errorf("cells = %d, want %d", got, 4*3*3*4)
	}
}

func TestPlanSharedBetweenParties(t *testing.T) {
	space := metric.Grid(1023, 2, metric.L2)
	p := DefaultParams(space, 16, 2, 99)
	p.D1, p.D2 = 8, 64
	pa, err := newPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := newPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	pt := metric.Point{17, 900}
	ka := pa.keysInto(make([]uint64, pa.levels), pt, make([]uint64, pa.s))
	kb := pb.keysInto(make([]uint64, pb.levels), pt, make([]uint64, pb.s))
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("parties disagree on key at level %d", i)
		}
	}
}

func TestIdenticalSetsReconcileToNoChange(t *testing.T) {
	space := metric.HammingCube(64)
	inst := workload.NewEMDInstance(space, 24, 0, 0, 3)
	// SA == noiseless copies: make them literally equal.
	sa := inst.SB.Clone()
	p := DefaultParams(space, 24, 2, 5)
	p.D1, p.D2 = 1, 64
	res, err := Reconcile(p, sa, inst.SB)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatal("protocol failed on identical sets")
	}
	if len(res.SPrime) != 24 {
		t.Fatalf("|S'B| = %d, want 24", len(res.SPrime))
	}
	if got := matching.EMD(space, sa, res.SPrime); got != 0 {
		t.Errorf("EMD(SA, S'B) = %v on identical sets", got)
	}
}

// TestTheorem34Hamming is the core correctness check: on planted noisy
// instances the protocol's output satisfies the Theorem 3.4 guarantee
// EMD(SA, S′B) ≤ O(log n)·EMD_k(SA, SB) with at least the promised
// probability, and |S′B| = n.
func TestTheorem34Hamming(t *testing.T) {
	space := metric.HammingCube(128)
	const n, k = 48, 4
	trials := 12
	okCount := 0
	for trial := 0; trial < trials; trial++ {
		inst := workload.NewEMDInstance(space, n, k, 2, uint64(trial)+10)
		emdK := matching.EMDk(space, inst.SA, inst.SB, k)
		p := DefaultParams(space, n, k, uint64(trial)*7+1)
		p.D1 = math.Max(1, emdK/4)
		p.D2 = math.Max(emdK*4, p.D1*2)
		res, err := Reconcile(p, inst.SA, inst.SB)
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed {
			continue
		}
		if len(res.SPrime) != n {
			t.Fatalf("trial %d: |S'B| = %d, want %d", trial, len(res.SPrime), n)
		}
		got := matching.EMD(space, inst.SA, res.SPrime)
		bound := 12 * math.Log(float64(n)) * math.Max(emdK, 1)
		if got <= bound {
			okCount++
		} else {
			t.Logf("trial %d: EMD = %v, EMD_k = %v, bound = %v", trial, got, emdK, bound)
		}
	}
	// Theorem 3.4 promises success with probability ≥ 5/8; demand at
	// least half the trials to keep the test robust.
	if okCount < trials/2 {
		t.Errorf("only %d/%d trials within the O(log n) bound", okCount, trials)
	}
}

// TestImprovementOverNoReconciliation checks the protocol actually helps:
// S′B is much closer to SA than SB was, on instances with planted
// outliers.
func TestImprovementOverNoReconciliation(t *testing.T) {
	space := metric.HammingCube(128)
	const n, k = 40, 4
	improved := 0
	const trials = 8
	for trial := 0; trial < trials; trial++ {
		inst := workload.NewEMDInstance(space, n, k, 1, uint64(trial)+77)
		before := matching.EMD(space, inst.SA, inst.SB)
		emdK := matching.EMDk(space, inst.SA, inst.SB, k)
		p := DefaultParams(space, n, k, uint64(trial)+13)
		p.D1 = math.Max(1, emdK/4)
		p.D2 = math.Max(emdK*4, p.D1*2)
		res, err := Reconcile(p, inst.SA, inst.SB)
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed {
			continue
		}
		after := matching.EMD(space, inst.SA, res.SPrime)
		if after < before {
			improved++
		}
	}
	if improved < trials/2 {
		t.Errorf("EMD improved in only %d/%d trials", improved, trials)
	}
}

func TestReconcileL2(t *testing.T) {
	space := metric.Grid(4095, 3, metric.L2)
	const n, k = 32, 3
	inst := workload.NewEMDInstance(space, n, k, 8, 21)
	emdK := matching.EMDk(space, inst.SA, inst.SB, k)
	p := DefaultParams(space, n, k, 31)
	p.D1 = math.Max(1, emdK/4)
	p.D2 = math.Max(emdK*4, p.D1*2)
	res, err := Reconcile(p, inst.SA, inst.SB)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed {
		if len(res.SPrime) != n {
			t.Fatalf("|S'B| = %d", len(res.SPrime))
		}
		if got := matching.EMD(space, inst.SA, res.SPrime); got > 40*math.Max(emdK, 1) {
			t.Errorf("EMD after = %v vs EMD_k = %v", got, emdK)
		}
	}
}

func TestReconcileScaled(t *testing.T) {
	space := metric.Grid(4095, 2, metric.L2)
	const n, k = 32, 3
	inst := workload.NewEMDInstance(space, n, k, 6, 55)
	p := DefaultParams(space, n, k, 77)
	// No prior knowledge: wide range, the scaled strategy must cope.
	p.D1, p.D2 = 1, float64(n)*space.Diameter()
	res, err := ReconcileScaled(p, inst.SA, inst.SB)
	if err != nil {
		t.Fatal(err)
	}
	if res.Intervals < 2 {
		t.Fatalf("intervals = %d", res.Intervals)
	}
	if res.Stats.Rounds != 1 {
		t.Errorf("rounds = %d, want 1 (parallel composition)", res.Stats.Rounds)
	}
	if res.Failed {
		t.Fatal("scaled protocol failed outright")
	}
	if len(res.SPrime) != n {
		t.Fatalf("|S'B| = %d", len(res.SPrime))
	}
	emdK := matching.EMDk(space, inst.SA, inst.SB, k)
	after := matching.EMD(space, inst.SA, res.SPrime)
	before := matching.EMD(space, inst.SA, inst.SB)
	t.Logf("before=%v after=%v EMD_k=%v interval=%d", before, after, emdK, res.Interval)
	if after > before {
		t.Errorf("scaled reconciliation made things worse: %v -> %v", before, after)
	}
}

func TestSizeMismatchRejected(t *testing.T) {
	space := metric.HammingCube(16)
	p := DefaultParams(space, 4, 1, 1)
	src := rng.New(9)
	sa := workload.RandomSet(space, 4, src)
	sb := workload.RandomSet(space, 3, src)
	if _, err := Reconcile(p, sa, sb); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestCommunicationScalesWithKNotN(t *testing.T) {
	// Fix everything but n; the message size must grow only
	// logarithmically in n (through t = log(D2/D1) with D2 ∝ n and key
	// material), not linearly.
	space := metric.HammingCube(64)
	bitsAt := func(n int) int64 {
		inst := workload.NewEMDInstance(space, n, 2, 1, uint64(n))
		p := DefaultParams(space, n, 2, uint64(n)+5)
		p.D1 = math.Max(1, float64(n)/8)
		p.D2 = float64(n) * 2
		res, err := Reconcile(p, inst.SA, inst.SB)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.TotalBits()
	}
	b32 := bitsAt(32)
	b128 := bitsAt(128)
	// 4x the points must cost well under 2x the bits.
	if b128 > b32*2 {
		t.Errorf("comm grew from %d to %d bits for 4x n", b32, b128)
	}
}

func TestNaiveBits(t *testing.T) {
	space := metric.Grid(255, 4, metric.L2)
	if got := NaiveBits(space, 100); got != 100*4*8 {
		t.Errorf("NaiveBits = %d", got)
	}
}

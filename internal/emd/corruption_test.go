package emd

import (
	"testing"

	"repro/internal/metric"
	"repro/internal/rng"
	"repro/internal/workload"
)

// These tests inject wire-level faults: a robust library must turn any
// corrupted or truncated message into an error (or, for undetectable
// in-payload bit flips, at worst a reported protocol failure), never a
// panic and never a silently wrong success that violates size
// invariants.

func buildTestMessage(t *testing.T, seed uint64) (Params, []byte, int) {
	t.Helper()
	space := workloadSpace()
	const n, k = 16, 2
	inst := workload.NewEMDInstance(space, n, k, 1, seed)
	p := DefaultParams(space, n, k, seed+1)
	p.D1, p.D2 = 2, 64
	msg, err := BuildMessage(p, inst.SA)
	if err != nil {
		t.Fatal(err)
	}
	return p, msg, n
}

func TestApplyMessageTruncated(t *testing.T) {
	p, msg, n := buildTestMessage(t, 11)
	inst := workload.NewEMDInstance(p.Space, n, p.K, 1, 11)
	for _, cut := range []int{0, 1, len(msg) / 2, len(msg) - 1} {
		if _, err := ApplyMessage(p, inst.SB, msg[:cut]); err == nil {
			t.Errorf("truncation to %d bytes accepted", cut)
		}
	}
}

func TestApplyMessageBitFlips(t *testing.T) {
	p, msg, n := buildTestMessage(t, 13)
	inst := workload.NewEMDInstance(p.Space, n, p.K, 1, 13)
	src := rng.New(17)
	for trial := 0; trial < 40; trial++ {
		corrupt := append([]byte(nil), msg...)
		pos := src.Intn(len(corrupt))
		corrupt[pos] ^= byte(1 << src.Intn(8))
		res, err := ApplyMessage(p, inst.SB, corrupt)
		if err != nil {
			continue // structural damage detected: fine
		}
		// A flip inside cell sums is undetectable at the wire layer; it
		// must surface as a protocol failure or a size-correct result.
		if !res.Failed && len(res.SPrime) != n {
			t.Fatalf("trial %d: corrupted message produced |S'B|=%d", trial, len(res.SPrime))
		}
	}
}

func TestApplyMessageGarbage(t *testing.T) {
	p, msg, n := buildTestMessage(t, 19)
	inst := workload.NewEMDInstance(p.Space, n, p.K, 1, 19)
	src := rng.New(23)
	garbage := make([]byte, len(msg))
	for i := range garbage {
		garbage[i] = byte(src.Uint64())
	}
	res, err := ApplyMessage(p, inst.SB, garbage)
	if err == nil && !res.Failed && len(res.SPrime) != n {
		t.Errorf("pure garbage produced |S'B|=%d without error or failure", len(res.SPrime))
	}
}

func TestBuildMessageDeterministic(t *testing.T) {
	p, msg1, _ := buildTestMessage(t, 29)
	_ = p
	_, msg2, _ := buildTestMessage(t, 29)
	if len(msg1) != len(msg2) {
		t.Fatalf("message sizes differ: %d vs %d", len(msg1), len(msg2))
	}
	for i := range msg1 {
		if msg1[i] != msg2[i] {
			t.Fatalf("messages differ at byte %d", i)
		}
	}
}

func TestMessageMatchesReconcile(t *testing.T) {
	// Split-party API must agree with the in-process driver bit for bit.
	space := workloadSpace()
	const n, k = 16, 2
	inst := workload.NewEMDInstance(space, n, k, 1, 31)
	p := DefaultParams(space, n, k, 37)
	p.D1, p.D2 = 2, 64
	msg, err := BuildMessage(p, inst.SA)
	if err != nil {
		t.Fatal(err)
	}
	viaMsg, err := ApplyMessage(p, inst.SB, msg)
	if err != nil {
		t.Fatal(err)
	}
	viaRec, err := Reconcile(p, inst.SA, inst.SB)
	if err != nil {
		t.Fatal(err)
	}
	if viaMsg.Failed != viaRec.Failed || viaMsg.Level != viaRec.Level ||
		len(viaMsg.SPrime) != len(viaRec.SPrime) {
		t.Errorf("split-party run diverged: %+v vs %+v",
			viaMsg.Level, viaRec.Level)
	}
}

func workloadSpace() metric.Space { return metric.HammingCube(64) }

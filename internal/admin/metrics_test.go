package admin_test

import (
	"bufio"
	"fmt"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/admin"
	"repro/internal/cluster"
	"repro/internal/rng"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/store/durable"
	"repro/internal/workload"
)

var (
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?)$`)
	labelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"$`)
)

// parseExposition validates the scrape against the text format and
// returns sample values keyed by "name{labels}".
func parseExposition(t *testing.T, body string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	typed := make(map[string]bool)
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 || (fields[3] != "counter" && fields[3] != "gauge") {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			if typed[fields[2]] {
				t.Fatalf("family %s declared twice", fields[2])
			}
			typed[fields[2]] = true
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line: %q", line)
		}
		name, labels, value := m[1], m[3], m[4]
		if !typed[name] {
			t.Fatalf("sample %s has no preceding # TYPE", name)
		}
		if labels != "" {
			for _, pair := range splitLabels(labels) {
				if !labelRe.MatchString(pair) {
					t.Fatalf("malformed label %q in %q", pair, line)
				}
			}
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		key := name
		if labels != "" {
			key += "{" + labels + "}"
		}
		if _, dup := samples[key]; dup {
			t.Fatalf("duplicate sample %q", key)
		}
		samples[key] = v
	}
	return samples
}

// splitLabels splits k="v",k="v" on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	var cur strings.Builder
	inQ, esc := false, false
	for _, r := range s {
		switch {
		case esc:
			esc = false
		case r == '\\' && inQ:
			esc = true
		case r == '"':
			inQ = !inQ
		case r == ',' && !inQ:
			out = append(out, cur.String())
			cur.Reset()
			continue
		}
		cur.WriteRune(r)
	}
	out = append(out, cur.String())
	return out
}

// TestMetricsExposition scrapes a reconciling two-node mesh with a
// durable store attached and checks the exposition parses, the family
// names are the documented stable set, and activity shows up.
func TestMetricsExposition(t *testing.T) {
	net := simnet.New(23)
	var nodes []*cluster.Node
	var addrs []string
	for i := 0; i < 2; i++ {
		st := store.New()
		pts := workload.RandomSet(testSpace(), 10, rng.New(uint64(i+1)))
		extra := workload.RandomSet(testSpace(), 4, rng.New(uint64(50+i)))
		if _, err := st.Create("alpha", testConfig(), append(pts.Clone(), extra...)); err != nil {
			t.Fatal(err)
		}
		n, err := cluster.New(cluster.Config{
			Store:     st,
			Network:   "sim",
			Interval:  -1,
			Seed:      uint64(2000 + i),
			Logf:      t.Logf,
			Transport: net.Host(fmt.Sprintf("m%d", i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		l, err := n.Start(fmt.Sprintf("m%d:1", i))
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
		addrs = append(addrs, l.Addr().String())
	}
	defer func() {
		for _, n := range nodes {
			n.Close(time.Second) //nolint:errcheck
		}
	}()
	nodes[0].SetPeers([]string{addrs[1]})
	nodes[1].SetPeers([]string{addrs[0]})
	// Both nodes reconcile, so node0 both dials (pool metrics) and
	// serves (session/wire metrics).
	for i := 0; i < 3; i++ {
		for _, n := range nodes {
			if _, err := n.ReconcileOnce(); err != nil {
				t.Fatalf("reconcile: %v", err)
			}
		}
		for _, n := range nodes {
			n.Quiesce()
		}
	}

	dir := t.TempDir()
	d, err := durable.Open(dir, durable.Options{Fsync: durable.FsyncOff, SnapshotEvery: 4, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close() //nolint:errcheck
	aux := store.New()
	aux.SetPersister(d)
	ls, err := aux.Create("journaled", testConfig(), workload.RandomSet(testSpace(), 6, rng.New(77)))
	if err != nil {
		t.Fatal(err)
	}
	// Journal a few live mutations: creation only seals a snapshot,
	// WAL records count post-creation appends.
	for _, pt := range workload.RandomSet(testSpace(), 5, rng.New(78)) {
		if err := ls.Add(pt); err != nil {
			t.Fatal(err)
		}
	}

	s := admin.New(admin.Config{
		Store:   nodes[0].Store(),
		Node:    nodes[0],
		Durable: d,
		Logf:    t.Logf,
	})
	rec := do(t, s, "GET", "/metrics", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("scrape: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	samples := parseExposition(t, rec.Body.String())

	// The stable name contract: renaming any of these breaks dashboards.
	stable := []string{
		`rsyn_uptime_seconds`,
		`rsyn_sessions_total{result="ok"}`,
		`rsyn_sessions_total{result="failed"}`,
		`rsyn_sessions_active`,
		`rsyn_wire_rounds_total`,
		`rsyn_wire_bits_total{direction="a_to_b"}`,
		`rsyn_wire_bits_total{direction="b_to_a"}`,
		`rsyn_wire_messages_total{direction="a_to_b"}`,
		`rsyn_wire_messages_total{direction="b_to_a"}`,
		`rsyn_wire_max_payload_bits`,
		`rsyn_store_sets`,
		`rsyn_store_points`,
		`rsyn_store_distinct`,
		`rsyn_store_epochs_total`,
		`rsyn_set_points{set="alpha"}`,
		`rsyn_set_epoch{set="alpha"}`,
		`rsyn_recon_rounds_total{set="alpha"}`,
		`rsyn_recon_probes_total{set="alpha"}`,
		`rsyn_recon_tier_total{set="alpha",tier="noop"}`,
		`rsyn_recon_tier_total{set="alpha",tier="delta"}`,
		`rsyn_recon_tier_total{set="alpha",tier="full"}`,
		`rsyn_recon_tier_total{set="alpha",tier="repair"}`,
		`rsyn_recon_points_total{set="alpha",direction="sent"}`,
		`rsyn_recon_points_total{set="alpha",direction="received"}`,
		`rsyn_recon_streak{set="alpha"}`,
		`rsyn_recon_backoff_rounds{set="alpha"}`,
		`rsyn_recon_last_estimate{set="alpha"}`,
		`rsyn_pool_dials_total`,
		`rsyn_pool_reuses_total`,
		`rsyn_pool_fallbacks_total`,
		`rsyn_pool_sessions_total`,
		`rsyn_peers{state="healthy"}`,
		`rsyn_peers{state="probation"}`,
		`rsyn_peers{state="quarantined"}`,
		`rsyn_wal_records_total`,
		`rsyn_wal_bytes_total`,
		`rsyn_snapshots_total`,
		`rsyn_recovery_sets`,
	}
	for _, key := range stable {
		if _, ok := samples[key]; !ok {
			t.Errorf("stable metric %s missing from scrape", key)
		}
	}

	// Activity from the mesh and the journaled store is visible.
	for _, key := range []string{
		`rsyn_sessions_total{result="ok"}`,
		`rsyn_wire_rounds_total`,
		`rsyn_recon_rounds_total{set="alpha"}`,
		`rsyn_pool_dials_total`,
		`rsyn_peers{state="healthy"}`,
		`rsyn_wal_records_total`,
		`rsyn_snapshots_total`,
	} {
		if samples[key] == 0 {
			t.Errorf("%s = 0, want nonzero after activity", key)
		}
	}
}

// TestMetricsLabelEscaping puts exposition metacharacters in a set
// name and checks the label survives, escaped.
func TestMetricsLabelEscaping(t *testing.T) {
	st := store.New()
	weird := `we"ird\name`
	if _, err := st.Create(weird, testConfig(), workload.RandomSet(testSpace(), 3, rng.New(5))); err != nil {
		t.Fatal(err)
	}
	// The default set's empty name gets a readable placeholder.
	if _, err := st.Create("", testConfig(), nil); err != nil {
		t.Fatal(err)
	}
	s := admin.New(admin.Config{Store: st, Logf: t.Logf})
	rec := do(t, s, "GET", "/metrics", "")
	body := rec.Body.String()
	if !strings.Contains(body, `rsyn_set_points{set="we\"ird\\name"} 3`) {
		t.Fatalf("escaped weird label missing:\n%s", body)
	}
	if !strings.Contains(body, `rsyn_set_points{set="<default>"} 0`) {
		t.Fatalf("default-set placeholder missing:\n%s", body)
	}
	parseExposition(t, body)
}

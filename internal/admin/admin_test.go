package admin_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/admin"
	"repro/internal/cluster"
	"repro/internal/live"
	"repro/internal/metric"
	"repro/internal/rng"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/store/durable"
	"repro/internal/workload"
)

const testSyncSeed = 42

func testSpace() metric.Space { return metric.HammingCube(32) }

func testConfig() live.Config {
	return live.Config{Sync: &live.SyncConfig{Seed: testSyncSeed}}
}

// testSetConfig is the SetConfig hook the daemon wires in: shared
// protocol parameters, deterministic seed content per set name.
func testSetConfig(name string, seedPoints int) (live.Config, metric.PointSet, error) {
	var pts metric.PointSet
	if seedPoints > 0 {
		pts = workload.RandomSet(testSpace(), seedPoints, rng.New(uint64(len(name))+7))
	}
	return testConfig(), pts, nil
}

func newTestStore(t *testing.T) *store.Store {
	t.Helper()
	st := store.New()
	for i, name := range []string{"", "alpha"} {
		pts := workload.RandomSet(testSpace(), 8+4*i, rng.New(uint64(i+1)))
		if _, err := st.Create(name, testConfig(), pts); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// do drives one request through the admin mux without a listener.
func do(t *testing.T, s *admin.Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body != "" {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
	} else {
		req = httptest.NewRequest(method, path, nil)
	}
	rec := httptest.NewRecorder()
	s.Mux().ServeHTTP(rec, req)
	return rec
}

func decodeJSON(t *testing.T, rec *httptest.ResponseRecorder, v any) {
	t.Helper()
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("Content-Type = %q, want application/json", ct)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), v); err != nil {
		t.Fatalf("decode %q: %v", rec.Body.String(), err)
	}
}

func TestSetLifecycleRoundTrip(t *testing.T) {
	st := newTestStore(t)
	s := admin.New(admin.Config{Store: st, SetConfig: testSetConfig, Logf: t.Logf})

	var list struct {
		Sets []struct {
			Name   string `json:"name"`
			Points int    `json:"points"`
			Epoch  uint64 `json:"epoch"`
		} `json:"sets"`
	}
	rec := do(t, s, "GET", "/api/v1/sets", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("list: %d %s", rec.Code, rec.Body.String())
	}
	decodeJSON(t, rec, &list)
	if len(list.Sets) != 2 {
		t.Fatalf("listed %d sets, want 2", len(list.Sets))
	}

	rec = do(t, s, "POST", "/api/v1/sets", `{"name":"gamma","seed_points":5}`)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", rec.Code, rec.Body.String())
	}
	var created struct {
		Name   string `json:"name"`
		Points int    `json:"points"`
	}
	decodeJSON(t, rec, &created)
	if created.Name != "gamma" || created.Points != 5 {
		t.Fatalf("created = %+v, want gamma with 5 points", created)
	}

	rec = do(t, s, "GET", "/api/v1/sets/gamma", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("get: %d %s", rec.Code, rec.Body.String())
	}
	rec = do(t, s, "DELETE", "/api/v1/sets/gamma", "")
	if rec.Code != http.StatusNoContent {
		t.Fatalf("drop: %d %s", rec.Code, rec.Body.String())
	}
	if rec := do(t, s, "GET", "/api/v1/sets/gamma", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("get after drop: %d, want 404", rec.Code)
	}
	if rec := do(t, s, "DELETE", "/api/v1/sets/gamma", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("double drop: %d, want 404", rec.Code)
	}
	// The dropped name is immediately reusable.
	if rec := do(t, s, "POST", "/api/v1/sets", `{"name":"gamma"}`); rec.Code != http.StatusCreated {
		t.Fatalf("recreate: %d %s", rec.Code, rec.Body.String())
	}
}

func TestCreateErrorPaths(t *testing.T) {
	st := newTestStore(t)
	s := admin.New(admin.Config{Store: st, SetConfig: testSetConfig, Logf: t.Logf})

	cases := []struct {
		name, body string
		want       int
	}{
		{"malformed JSON", `{"name":`, http.StatusBadRequest},
		{"unknown field", `{"nom":"x"}`, http.StatusBadRequest},
		{"empty name", `{"name":""}`, http.StatusBadRequest},
		{"control char in name", "{\"name\":\"a\\u0001b\"}", http.StatusBadRequest},
		{"negative seed", `{"name":"x","seed_points":-1}`, http.StatusBadRequest},
		{"duplicate", `{"name":"alpha"}`, http.StatusConflict},
	}
	for _, tc := range cases {
		if rec := do(t, s, "POST", "/api/v1/sets", tc.body); rec.Code != tc.want {
			t.Errorf("%s: %d, want %d (%s)", tc.name, rec.Code, tc.want, rec.Body.String())
		}
	}
	// The default set cannot be dropped over the API either.
	if rec := do(t, s, "DELETE", "/api/v1/sets/", ""); rec.Code != http.StatusBadRequest {
		t.Errorf("default-set drop: %d, want 400", rec.Code)
	}
	// Wrong method on a known route answers 405, not 404.
	if rec := do(t, s, "PUT", "/api/v1/sets", `{}`); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("PUT sets: %d, want 405", rec.Code)
	}
}

func TestModesWithoutSubsystems(t *testing.T) {
	// A bare server (no store, no node, no drain hook) must answer
	// every endpoint deliberately rather than panic.
	s := admin.New(admin.Config{Logf: t.Logf})
	if rec := do(t, s, "GET", "/healthz", ""); rec.Code != http.StatusOK {
		t.Fatalf("healthz: %d", rec.Code)
	}
	for path, want := range map[string]int{
		"/api/v1/sets":    http.StatusServiceUnavailable,
		"/api/v1/cluster": http.StatusNotFound,
	} {
		if rec := do(t, s, "GET", path, ""); rec.Code != want {
			t.Errorf("GET %s: %d, want %d", path, rec.Code, want)
		}
	}
	if rec := do(t, s, "POST", "/api/v1/sets", `{"name":"x"}`); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("create without store: %d, want 503", rec.Code)
	}
	if rec := do(t, s, "POST", "/api/v1/drain", ""); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("drain without hook: %d, want 503", rec.Code)
	}
	// A store without a SetConfig hook lists but refuses creation.
	s = admin.New(admin.Config{Store: newTestStore(t), Logf: t.Logf})
	if rec := do(t, s, "GET", "/api/v1/sets", ""); rec.Code != http.StatusOK {
		t.Errorf("list with store: %d, want 200", rec.Code)
	}
	if rec := do(t, s, "POST", "/api/v1/sets", `{"name":"x"}`); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("create without SetConfig: %d, want 503", rec.Code)
	}
}

func TestDrainIdempotent(t *testing.T) {
	var calls atomic.Int64
	fired := make(chan struct{})
	s := admin.New(admin.Config{
		Drain: func() {
			calls.Add(1)
			close(fired)
		},
		Logf: t.Logf,
	})
	for i := 0; i < 3; i++ {
		rec := do(t, s, "POST", "/api/v1/drain", "")
		if rec.Code != http.StatusAccepted {
			t.Fatalf("drain #%d: %d %s", i, rec.Code, rec.Body.String())
		}
	}
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("drain hook never fired")
	}
	// Give a buggy second invocation a moment to happen before counting.
	time.Sleep(20 * time.Millisecond)
	if n := calls.Load(); n != 1 {
		t.Fatalf("drain hook fired %d times over 3 requests, want exactly 1", n)
	}
}

// TestClusterView runs a real two-node mesh over the deterministic
// simnet, reconciles once, and checks the admin cluster and per-set
// views reflect it.
func TestClusterView(t *testing.T) {
	net := simnet.New(11)
	var nodes []*cluster.Node
	var addrs []string
	for i := 0; i < 2; i++ {
		st := store.New()
		pts := workload.RandomSet(testSpace(), 12, rng.New(uint64(i+1)))
		extra := workload.RandomSet(testSpace(), 3, rng.New(uint64(100+i)))
		if _, err := st.Create("alpha", testConfig(), append(pts.Clone(), extra...)); err != nil {
			t.Fatal(err)
		}
		n, err := cluster.New(cluster.Config{
			Store:     st,
			Network:   "sim",
			Interval:  -1,
			Seed:      uint64(1000 + i),
			Logf:      t.Logf,
			Transport: net.Host(fmt.Sprintf("node%d", i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		l, err := n.Start(fmt.Sprintf("node%d:1", i))
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
		addrs = append(addrs, l.Addr().String())
	}
	defer func() {
		for _, n := range nodes {
			n.Close(time.Second) //nolint:errcheck
		}
	}()
	nodes[0].SetPeers([]string{addrs[1]})
	nodes[1].SetPeers([]string{addrs[0]})
	for i := 0; i < 3; i++ {
		if _, err := nodes[0].ReconcileOnce(); err != nil {
			t.Fatalf("reconcile: %v", err)
		}
		for _, n := range nodes {
			n.Quiesce()
		}
	}

	s := admin.New(admin.Config{Store: nodes[0].Store(), Node: nodes[0], Logf: t.Logf})

	rec := do(t, s, "GET", "/api/v1/cluster", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("cluster view: %d %s", rec.Code, rec.Body.String())
	}
	var view struct {
		Peers  []string `json:"peers"`
		Health map[string]struct {
			State     string `json:"state"`
			Successes uint64 `json:"successes"`
		} `json:"health"`
		Net struct {
			Sessions uint64 `json:"sessions"`
			Dials    uint64 `json:"dials"`
		} `json:"net"`
	}
	decodeJSON(t, rec, &view)
	if len(view.Peers) != 1 || view.Peers[0] != addrs[1] {
		t.Fatalf("peers = %v, want [%s]", view.Peers, addrs[1])
	}
	h, ok := view.Health[addrs[1]]
	if !ok || h.State != "healthy" || h.Successes == 0 {
		t.Fatalf("health[%s] = %+v, want healthy with successes", addrs[1], h)
	}
	if view.Net.Sessions == 0 || view.Net.Dials == 0 {
		t.Fatalf("net = %+v, want nonzero sessions and dials", view.Net)
	}

	// The per-set view carries reconciliation stats in cluster mode.
	rec = do(t, s, "GET", "/api/v1/sets/alpha", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("get alpha: %d %s", rec.Code, rec.Body.String())
	}
	var info struct {
		Name  string `json:"name"`
		Recon *struct {
			Rounds uint64 `json:"rounds"`
			Probes uint64 `json:"probes"`
		} `json:"recon"`
	}
	decodeJSON(t, rec, &info)
	if info.Recon == nil || info.Recon.Rounds == 0 || info.Recon.Probes == 0 {
		t.Fatalf("set view recon = %+v, want nonzero rounds and probes", info.Recon)
	}
}

// TestAdminMutationsPersist is the durability contract for API-driven
// mutations: create, drop, recreate over the handlers, kill the
// process, and the restart recovers exactly the final generation.
func TestAdminMutationsPersist(t *testing.T) {
	dir := t.TempDir()
	d, err := durable.Open(dir, durable.Options{Fsync: durable.FsyncOff, SnapshotEvery: 4, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	st := store.New()
	st.SetPersister(d)
	s := admin.New(admin.Config{Store: st, Durable: d, SetConfig: testSetConfig, Logf: t.Logf})

	if rec := do(t, s, "POST", "/api/v1/sets", `{"name":"ops","seed_points":16}`); rec.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", rec.Code, rec.Body.String())
	}
	if rec := do(t, s, "DELETE", "/api/v1/sets/ops", ""); rec.Code != http.StatusNoContent {
		t.Fatalf("drop: %d %s", rec.Code, rec.Body.String())
	}
	if rec := do(t, s, "POST", "/api/v1/sets", `{"name":"ops","seed_points":4}`); rec.Code != http.StatusCreated {
		t.Fatalf("recreate: %d %s", rec.Code, rec.Body.String())
	}
	ls, ok := st.Get("ops")
	if !ok {
		t.Fatal("recreated set missing")
	}
	want := ls.IDFingerprint()

	d.Crash()
	re, err := durable.Open(dir, durable.Options{Fsync: durable.FsyncOff, SnapshotEvery: 4, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close() //nolint:errcheck
	rst := store.New()
	stats, err := re.Recover(rst)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if stats.Sets != 1 {
		t.Fatalf("recovered %d sets, want just the recreated one", stats.Sets)
	}
	got, ok := rst.Get("ops")
	if !ok || got.IDFingerprint() != want {
		t.Fatalf("recovered generation mismatch (present=%v)", ok)
	}
}

func TestStartShutdown(t *testing.T) {
	s := admin.New(admin.Config{Store: newTestStore(t), Logf: t.Logf})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr.String() + "/healthz")
	if err != nil {
		t.Fatalf("healthz over TCP: %v", err)
	}
	resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	// pprof rides the dedicated mux, not http.DefaultServeMux.
	resp, err = http.Get("http://" + addr.String() + "/debug/pprof/")
	if err != nil {
		t.Fatalf("pprof index: %v", err)
	}
	resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: %d", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := http.Get("http://" + addr.String() + "/healthz"); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
	// Shutdown is idempotent, and a never-started server shuts down
	// cleanly too.
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
	if err := admin.New(admin.Config{}).Shutdown(ctx); err != nil {
		t.Fatalf("unstarted shutdown: %v", err)
	}
}

package admin

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Hand-rolled Prometheus text exposition (format 0.0.4). The daemon
// deliberately carries no metrics dependency: the format is a dozen
// lines of escaping rules, and writing it directly keeps the metric
// set reviewable in one file. Families are emitted in a fixed order
// with sorted label values so consecutive scrapes diff cleanly.

// defaultSetLabel stands in for the default set's empty name in label
// values, matching the daemon's log convention.
const defaultSetLabel = "<default>"

// expo accumulates one scrape's exposition text.
type expo struct {
	b strings.Builder
}

// family emits the HELP/TYPE header for a metric family. typ is
// "counter" or "gauge".
func (e *expo) family(name, typ, help string) {
	fmt.Fprintf(&e.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sample emits one sample line. Labels come as alternating key, value
// pairs and are rendered in the given order.
func (e *expo) sample(name string, v float64, labels ...string) {
	e.b.WriteString(name)
	if len(labels) > 0 {
		e.b.WriteByte('{')
		for i := 0; i+1 < len(labels); i += 2 {
			if i > 0 {
				e.b.WriteByte(',')
			}
			e.b.WriteString(labels[i])
			e.b.WriteString(`="`)
			e.b.WriteString(escapeLabel(labels[i+1]))
			e.b.WriteByte('"')
		}
		e.b.WriteByte('}')
	}
	e.b.WriteByte(' ')
	e.b.WriteString(formatValue(v))
	e.b.WriteByte('\n')
}

// escapeLabel applies the exposition-format label escapes: backslash,
// double quote, and newline are the only characters the format
// requires escaping inside a label value.
func escapeLabel(v string) string {
	return strings.NewReplacer("\\", `\\`, "\n", `\n`, `"`, `\"`).Replace(v)
}

// formatValue renders a float the way Prometheus expects: integers
// without an exponent, everything else in Go's shortest form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var e expo

	e.family("rsyn_uptime_seconds", "gauge", "Seconds since the admin server started.")
	e.sample("rsyn_uptime_seconds", time.Since(s.start).Seconds())

	s.writeSessionMetrics(&e)
	s.writeStoreMetrics(&e)
	s.writeReconMetrics(&e)
	s.writeClusterMetrics(&e)
	s.writeDurableMetrics(&e)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, e.b.String())
}

// writeSessionMetrics covers the session engine: session outcomes and
// the wire-traffic ledger (rounds, bits and messages per direction,
// and the largest single payload — the paper's max-message-size
// figure of merit).
func (s *Server) writeSessionMetrics(e *expo) {
	srv := s.cfg.Session
	if s.cfg.Node != nil {
		srv = s.cfg.Node.Server()
	}
	if srv == nil {
		return
	}
	e.family("rsyn_sessions_total", "counter", "Reconciliation sessions served, by result.")
	e.sample("rsyn_sessions_total", float64(srv.Served()), "result", "ok")
	e.sample("rsyn_sessions_total", float64(srv.Failed()), "result", "failed")
	e.family("rsyn_sessions_active", "gauge", "Sessions currently mid-protocol.")
	e.sample("rsyn_sessions_active", float64(srv.Active()))

	st, _ := srv.Stats()
	e.family("rsyn_wire_rounds_total", "counter", "Protocol rounds completed across all served sessions.")
	e.sample("rsyn_wire_rounds_total", float64(st.Rounds))
	e.family("rsyn_wire_bits_total", "counter", "Payload bits carried, by direction (a=initiator, b=responder).")
	e.sample("rsyn_wire_bits_total", float64(st.BitsAtoB), "direction", "a_to_b")
	e.sample("rsyn_wire_bits_total", float64(st.BitsBtoA), "direction", "b_to_a")
	e.family("rsyn_wire_messages_total", "counter", "Messages carried, by direction.")
	e.sample("rsyn_wire_messages_total", float64(st.MsgsAtoB), "direction", "a_to_b")
	e.sample("rsyn_wire_messages_total", float64(st.MsgsBtoA), "direction", "b_to_a")
	e.family("rsyn_wire_max_payload_bits", "gauge", "Largest single message payload observed, in bits.")
	e.sample("rsyn_wire_max_payload_bits", float64(st.MaxPayload()))
}

func (s *Server) writeStoreMetrics(e *expo) {
	if s.cfg.Store == nil {
		return
	}
	st := s.cfg.Store.Stats()
	e.family("rsyn_store_sets", "gauge", "Sets currently hosted.")
	e.sample("rsyn_store_sets", float64(st.Sets))
	e.family("rsyn_store_points", "gauge", "Points across all hosted sets (with multiplicity).")
	e.sample("rsyn_store_points", float64(st.Points))
	e.family("rsyn_store_distinct", "gauge", "Distinct points across all hosted sets.")
	e.sample("rsyn_store_distinct", float64(st.Distinct))
	e.family("rsyn_store_epochs_total", "counter", "Mutation epochs summed over hosted sets.")
	e.sample("rsyn_store_epochs_total", float64(st.Epochs))

	names := s.cfg.Store.Names()
	sort.Strings(names)
	e.family("rsyn_set_points", "gauge", "Points in one hosted set.")
	for _, name := range names {
		if ls, ok := s.cfg.Store.Get(name); ok {
			e.sample("rsyn_set_points", float64(ls.Size()), "set", setLabel(name))
		}
	}
	e.family("rsyn_set_epoch", "gauge", "Mutation epoch of one hosted set.")
	for _, name := range names {
		if ls, ok := s.cfg.Store.Get(name); ok {
			e.sample("rsyn_set_epoch", float64(ls.Epoch()), "set", setLabel(name))
		}
	}
}

func setLabel(name string) string {
	if name == "" {
		return defaultSetLabel
	}
	return name
}

// writeReconMetrics covers per-set anti-entropy activity: rounds,
// probe economy, the repair-tier histogram, transfer volume, and the
// convergence gauges (streak, backoff, last divergence estimate).
func (s *Server) writeReconMetrics(e *expo) {
	if s.cfg.Node == nil {
		return
	}
	metrics := s.cfg.Node.Metrics()
	names := make([]string, 0, len(metrics))
	for name := range metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return
	}

	e.family("rsyn_recon_rounds_total", "counter", "Reconciliation rounds run for one set.")
	for _, n := range names {
		e.sample("rsyn_recon_rounds_total", float64(metrics[n].Rounds), "set", setLabel(n))
	}
	e.family("rsyn_recon_skipped_total", "counter", "Rounds skipped by backoff for one set.")
	for _, n := range names {
		e.sample("rsyn_recon_skipped_total", float64(metrics[n].Skipped), "set", setLabel(n))
	}
	e.family("rsyn_recon_probes_total", "counter", "Estimate probes sent for one set.")
	for _, n := range names {
		e.sample("rsyn_recon_probes_total", float64(metrics[n].Probes), "set", setLabel(n))
	}
	e.family("rsyn_recon_probe_failures_total", "counter", "Estimate probes that failed for one set.")
	for _, n := range names {
		e.sample("rsyn_recon_probe_failures_total", float64(metrics[n].ProbeFailures), "set", setLabel(n))
	}
	e.family("rsyn_recon_tier_total", "counter", "Repair outcomes for one set, by tier.")
	for _, n := range names {
		m := metrics[n]
		e.sample("rsyn_recon_tier_total", float64(m.Noops), "set", setLabel(n), "tier", "noop")
		e.sample("rsyn_recon_tier_total", float64(m.Deltas), "set", setLabel(n), "tier", "delta")
		e.sample("rsyn_recon_tier_total", float64(m.Fulls), "set", setLabel(n), "tier", "full")
		e.sample("rsyn_recon_tier_total", float64(m.Repairs), "set", setLabel(n), "tier", "repair")
	}
	e.family("rsyn_recon_repair_failures_total", "counter", "Repair attempts that failed for one set.")
	for _, n := range names {
		e.sample("rsyn_recon_repair_failures_total", float64(metrics[n].RepairFailures), "set", setLabel(n))
	}
	e.family("rsyn_recon_points_total", "counter", "Points exchanged during repair for one set, by direction.")
	for _, n := range names {
		m := metrics[n]
		e.sample("rsyn_recon_points_total", float64(m.PointsSent), "set", setLabel(n), "direction", "sent")
		e.sample("rsyn_recon_points_total", float64(m.PointsReceived), "set", setLabel(n), "direction", "received")
	}
	e.family("rsyn_recon_corrupt_rejected_total", "counter", "Repair payloads rejected by verification for one set.")
	for _, n := range names {
		e.sample("rsyn_recon_corrupt_rejected_total", float64(metrics[n].CorruptRejected), "set", setLabel(n))
	}
	e.family("rsyn_recon_streak", "gauge", "Consecutive converged rounds for one set.")
	for _, n := range names {
		e.sample("rsyn_recon_streak", float64(metrics[n].Streak), "set", setLabel(n))
	}
	e.family("rsyn_recon_backoff_rounds", "gauge", "Rounds one set will sit out before its next probe.")
	for _, n := range names {
		e.sample("rsyn_recon_backoff_rounds", float64(metrics[n].Backoff), "set", setLabel(n))
	}
	e.family("rsyn_recon_last_estimate", "gauge", "Most recent symmetric-difference estimate for one set.")
	for _, n := range names {
		e.sample("rsyn_recon_last_estimate", float64(metrics[n].LastEstimate), "set", setLabel(n))
	}
}

// writeClusterMetrics covers the connection economy, peer health
// states, gossip membership, and placement churn.
func (s *Server) writeClusterMetrics(e *expo) {
	n := s.cfg.Node
	if n == nil {
		return
	}
	ns := n.NetStats()
	e.family("rsyn_pool_dials_total", "counter", "New carrier connections dialed.")
	e.sample("rsyn_pool_dials_total", float64(ns.Dials))
	e.family("rsyn_pool_reuses_total", "counter", "Sessions that reused a pooled carrier.")
	e.sample("rsyn_pool_reuses_total", float64(ns.Reuses))
	e.family("rsyn_pool_fallbacks_total", "counter", "Sessions that fell back to a fresh connection.")
	e.sample("rsyn_pool_fallbacks_total", float64(ns.Fallbacks))
	e.family("rsyn_pool_sessions_total", "counter", "Outbound sessions opened through the pool.")
	e.sample("rsyn_pool_sessions_total", float64(ns.Sessions))

	healths := n.PeerHealths()
	states := map[string]int{"healthy": 0, "probation": 0, "quarantined": 0}
	var successes, failures, corruptions, quarantines uint64
	for _, h := range healths {
		states[h.State.String()]++
		successes += h.Successes
		failures += h.Failures
		corruptions += h.Corruptions
		quarantines += h.Quarantines
	}
	e.family("rsyn_peers", "gauge", "Known peers, by health state.")
	for _, st := range []string{"healthy", "probation", "quarantined"} {
		e.sample("rsyn_peers", float64(states[st]), "state", st)
	}
	e.family("rsyn_peer_successes_total", "counter", "Successful peer exchanges, summed over peers.")
	e.sample("rsyn_peer_successes_total", float64(successes))
	e.family("rsyn_peer_failures_total", "counter", "Failed peer exchanges, summed over peers.")
	e.sample("rsyn_peer_failures_total", float64(failures))
	e.family("rsyn_peer_corruptions_total", "counter", "Corrupt payloads detected, summed over peers.")
	e.sample("rsyn_peer_corruptions_total", float64(corruptions))
	e.family("rsyn_peer_quarantines_total", "counter", "Quarantine entries, summed over peers.")
	e.sample("rsyn_peer_quarantines_total", float64(quarantines))

	if members := n.Members(); members != nil {
		counts := map[string]int{"alive": 0, "suspect": 0, "dead": 0, "left": 0}
		for _, m := range members {
			counts[m.State.String()]++
		}
		e.family("rsyn_members", "gauge", "Gossiped members, by state.")
		for _, st := range []string{"alive", "suspect", "dead", "left"} {
			e.sample("rsyn_members", float64(counts[st]), "state", st)
		}
	}
	ps := n.Placement()
	if ps.Acquired > 0 || ps.Dropped > 0 || ps.Relinquishing > 0 || len(n.PlacementView()) > 0 {
		e.family("rsyn_placement_acquired_total", "counter", "Sets created because the ring assigned them here.")
		e.sample("rsyn_placement_acquired_total", float64(ps.Acquired))
		e.family("rsyn_placement_dropped_total", "counter", "Sets dropped after a confirmed handoff.")
		e.sample("rsyn_placement_dropped_total", float64(ps.Dropped))
		e.family("rsyn_placement_relinquishing", "gauge", "Sets currently awaiting handoff confirmation.")
		e.sample("rsyn_placement_relinquishing", float64(ps.Relinquishing))
	}
}

// writeDurableMetrics covers the WAL/snapshot pipeline and the last
// recovery's outcome.
func (s *Server) writeDurableMetrics(e *expo) {
	if s.cfg.Durable == nil {
		return
	}
	m := s.cfg.Durable.Metrics()
	e.family("rsyn_wal_records_total", "counter", "Journal records appended.")
	e.sample("rsyn_wal_records_total", float64(m.Records))
	e.family("rsyn_wal_bytes_total", "counter", "Journal bytes appended (framing included).")
	e.sample("rsyn_wal_bytes_total", float64(m.RecordBytes))
	e.family("rsyn_snapshots_total", "counter", "Snapshots sealed (creation, cadence, and recovery re-seals).")
	e.sample("rsyn_snapshots_total", float64(m.Snapshots))
	e.family("rsyn_recovery_sets", "gauge", "Sets rebuilt by the last recovery.")
	e.sample("rsyn_recovery_sets", float64(m.Recovery.Sets))
	e.family("rsyn_recovery_replayed_records", "gauge", "Journal records replayed by the last recovery.")
	e.sample("rsyn_recovery_replayed_records", float64(m.Recovery.Replayed))
	e.family("rsyn_recovery_skipped_records", "gauge", "Journal records skipped (at or below snapshot epoch) by the last recovery.")
	e.sample("rsyn_recovery_skipped_records", float64(m.Recovery.Skipped))
	e.family("rsyn_recovery_lost_bytes", "gauge", "Torn or corrupt journal tail bytes discarded by the last recovery.")
	e.sample("rsyn_recovery_lost_bytes", float64(m.Recovery.LostBytes))
	e.family("rsyn_recovery_corrupt_snapshots", "gauge", "Snapshot files the last recovery failed to decode.")
	e.sample("rsyn_recovery_corrupt_snapshots", float64(m.Recovery.CorruptSnapshots))
}

// Package admin is the daemon's operator surface: a localhost HTTP
// control plane over the set store and cluster node, plus a Prometheus
// /metrics endpoint and the pprof handlers — all on a dedicated
// http.ServeMux served by its own http.Server, so no imported
// package's debug registrations ever leak onto the operator port and
// the server participates in the daemon's graceful drain.
//
// Endpoints (all JSON unless noted):
//
//	GET    /healthz               liveness probe ("ok", text)
//	GET    /api/v1/sets           list hosted sets with live gauges and
//	                              per-set reconciliation stats
//	POST   /api/v1/sets           create a set {"name": ..., "seed_points": N}
//	GET    /api/v1/sets/{name}    one set's view (404 when absent)
//	DELETE /api/v1/sets/{name}    drop a set (204 / 404)
//	GET    /api/v1/cluster        membership, placement, peer health,
//	                              connection economy
//	POST   /api/v1/drain          trigger graceful shutdown (idempotent)
//	GET    /metrics               Prometheus text exposition (metrics.go)
//	GET    /debug/pprof/...       net/http/pprof on this mux, not the
//	                              process-global DefaultServeMux
//
// Set mutations go through store.Create/Drop and therefore through any
// attached store.Persister exactly like flag-created sets: an
// admin-created set is journaled, an admin-dropped one is atomically
// retired on disk.
package admin

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/live"
	"repro/internal/metric"
	"repro/internal/session"
	"repro/internal/store"
	"repro/internal/store/durable"
)

// Config wires the admin server to the daemon's subsystems. Store is
// required for set management (without it the set endpoints answer
// 503); everything else is optional and widens the view when present.
type Config struct {
	// Store is the set registry the set endpoints manage.
	Store *store.Store
	// Node supplies cluster views and per-set reconciliation metrics.
	Node *cluster.Node
	// Session supplies session-engine stats when there is no Node
	// (plain -listen mode). With a Node, the node's embedded server is
	// used and this field is ignored.
	Session *session.Server
	// Durable supplies the WAL/snapshot counters (nil without
	// -data-dir).
	Durable *durable.Store
	// SetConfig supplies the live configuration and optional seed
	// content for a set created over the API. The daemon derives both
	// from its shared workload flags, so an admin-created set carries
	// the same parameter digest on every member that creates it. Nil
	// disables creation (405-free: POST answers 503).
	SetConfig func(name string, seedPoints int) (live.Config, metric.PointSet, error)
	// Drain, when set, triggers the daemon's graceful shutdown — the
	// same path as SIGTERM. The admin server guarantees it fires at
	// most once no matter how many drain requests arrive.
	Drain func()
	// Logf receives serve-loop errors (nil discards).
	Logf func(format string, args ...any)
}

// Server is the admin HTTP server. Construct with New, bind with
// Start, stop with Shutdown.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	http  *http.Server
	start time.Time

	mu       sync.Mutex
	listener net.Listener

	drainOnce sync.Once
}

// New builds the admin server and its route table.
func New(cfg Config) *Server {
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := &Server{cfg: cfg, mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /api/v1/sets", s.handleListSets)
	s.mux.HandleFunc("POST /api/v1/sets", s.handleCreateSet)
	s.mux.HandleFunc("GET /api/v1/sets/{name...}", s.handleGetSet)
	s.mux.HandleFunc("DELETE /api/v1/sets/{name...}", s.handleDropSet)
	s.mux.HandleFunc("GET /api/v1/cluster", s.handleCluster)
	s.mux.HandleFunc("POST /api/v1/drain", s.handleDrain)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	RegisterPprof(s.mux)
	s.http = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	return s
}

// RegisterPprof installs the net/http/pprof handlers on mux. The
// handlers are registered explicitly — never via the package's side
// effect on http.DefaultServeMux — so profiling is only reachable on
// muxes that asked for it.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Mux exposes the route table (tests drive handlers through it without
// a listener).
func (s *Server) Mux() *http.ServeMux { return s.mux }

// Start binds addr (host:port; ":0" works) and serves in the
// background. It returns the bound address.
func (s *Server) Start(addr string) (net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("admin: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	go func() {
		if err := s.http.Serve(l); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.cfg.Logf("admin: serve: %v", err)
		}
	}()
	return l.Addr(), nil
}

// Addr returns the bound address (nil before Start).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return nil
	}
	return s.listener.Addr()
}

// Shutdown closes the listener and waits for in-flight requests, up to
// the context deadline. Safe to call without Start (no-op) and more
// than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	started := s.listener != nil
	s.mu.Unlock()
	if !started {
		return nil
	}
	return s.http.Shutdown(ctx)
}

// --- JSON plumbing ---

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // nothing to do about a dead client
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// --- set views ---

// reconInfo is one set's anti-entropy activity (cluster mode only).
type reconInfo struct {
	Rounds          uint64 `json:"rounds"`
	Skipped         uint64 `json:"skipped"`
	Probes          uint64 `json:"probes"`
	ProbeFailures   uint64 `json:"probe_failures"`
	Noops           uint64 `json:"noops"`
	Deltas          uint64 `json:"deltas"`
	Fulls           uint64 `json:"fulls"`
	Repairs         uint64 `json:"repairs"`
	RepairFailures  uint64 `json:"repair_failures"`
	PointsSent      uint64 `json:"points_sent"`
	PointsReceived  uint64 `json:"points_received"`
	CorruptRejected uint64 `json:"corrupt_rejected"`
	LastEstimate    int    `json:"last_estimate"`
	Streak          uint64 `json:"streak"`
	Backoff         int    `json:"backoff"`
}

func reconFrom(m cluster.SetMetrics) *reconInfo {
	return &reconInfo{
		Rounds: m.Rounds, Skipped: m.Skipped,
		Probes: m.Probes, ProbeFailures: m.ProbeFailures,
		Noops: m.Noops, Deltas: m.Deltas, Fulls: m.Fulls,
		Repairs: m.Repairs, RepairFailures: m.RepairFailures,
		PointsSent: m.PointsSent, PointsReceived: m.PointsReceived,
		CorruptRejected: m.CorruptRejected,
		LastEstimate:    m.LastEstimate,
		Streak:          m.Streak, Backoff: m.Backoff,
	}
}

// setInfo is one hosted set's admin view.
type setInfo struct {
	Name     string     `json:"name"`
	Points   int        `json:"points"`
	Distinct int        `json:"distinct"`
	Epoch    uint64     `json:"epoch"`
	Recon    *reconInfo `json:"recon,omitempty"`
}

func (s *Server) setInfoFor(name string, ls *live.Set, recon map[string]cluster.SetMetrics) setInfo {
	info := setInfo{
		Name:     name,
		Points:   ls.Size(),
		Distinct: ls.Distinct(),
		Epoch:    ls.Epoch(),
	}
	if m, ok := recon[name]; ok {
		info.Recon = reconFrom(m)
	}
	return info
}

func (s *Server) reconMetrics() map[string]cluster.SetMetrics {
	if s.cfg.Node == nil {
		return nil
	}
	return s.cfg.Node.Metrics()
}

// --- handlers ---

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleListSets(w http.ResponseWriter, _ *http.Request) {
	if s.cfg.Store == nil {
		writeErr(w, http.StatusServiceUnavailable, "this mode hosts no set store")
		return
	}
	recon := s.reconMetrics()
	sets := make([]setInfo, 0, 8)
	for _, name := range s.cfg.Store.Names() {
		ls, ok := s.cfg.Store.Get(name)
		if !ok {
			continue // dropped mid-listing
		}
		sets = append(sets, s.setInfoFor(name, ls, recon))
	}
	writeJSON(w, http.StatusOK, map[string]any{"sets": sets})
}

// createRequest is the POST /api/v1/sets body.
type createRequest struct {
	Name string `json:"name"`
	// SeedPoints asks the daemon to plant that many deterministic
	// divergent points (derived from the shared flags, this node's
	// identity, and the set name) so a fresh set visibly converges
	// across the mesh. Zero creates the set empty.
	SeedPoints int `json:"seed_points"`
}

func (s *Server) handleCreateSet(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Store == nil || s.cfg.SetConfig == nil {
		writeErr(w, http.StatusServiceUnavailable, "set creation is not available in this mode")
		return
	}
	var req createRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Name == "" {
		writeErr(w, http.StatusBadRequest, "the default set is not managed via the admin API")
		return
	}
	if !store.ValidName(req.Name) {
		writeErr(w, http.StatusBadRequest, "invalid set name %q", req.Name)
		return
	}
	if req.SeedPoints < 0 || req.SeedPoints > 1<<16 {
		writeErr(w, http.StatusBadRequest, "seed_points out of range")
		return
	}
	cfg, initial, err := s.cfg.SetConfig(req.Name, req.SeedPoints)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "set config: %v", err)
		return
	}
	ls, err := s.cfg.Store.Create(req.Name, cfg, initial)
	if err != nil {
		if strings.Contains(err.Error(), "already exists") {
			writeErr(w, http.StatusConflict, "%v", err)
			return
		}
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, s.setInfoFor(req.Name, ls, s.reconMetrics()))
}

func (s *Server) handleGetSet(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Store == nil {
		writeErr(w, http.StatusServiceUnavailable, "this mode hosts no set store")
		return
	}
	name := r.PathValue("name")
	ls, ok := s.cfg.Store.Get(name)
	if !ok {
		writeErr(w, http.StatusNotFound, "no set %q", name)
		return
	}
	writeJSON(w, http.StatusOK, s.setInfoFor(name, ls, s.reconMetrics()))
}

func (s *Server) handleDropSet(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Store == nil {
		writeErr(w, http.StatusServiceUnavailable, "this mode hosts no set store")
		return
	}
	name := r.PathValue("name")
	if name == "" {
		writeErr(w, http.StatusBadRequest, "the default set is not managed via the admin API")
		return
	}
	if !s.cfg.Store.Drop(name) {
		writeErr(w, http.StatusNotFound, "no set %q", name)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// clusterView is the GET /api/v1/cluster response.
type clusterView struct {
	Peers     []string                  `json:"peers"`
	Members   []memberInfo              `json:"members,omitempty"`
	Placement map[string]placementInfo  `json:"placement,omitempty"`
	Handoffs  *placementStats           `json:"placement_stats,omitempty"`
	Health    map[string]peerHealthInfo `json:"health"`
	Net       netInfo                   `json:"net"`
}

type memberInfo struct {
	Addr        string `json:"addr"`
	State       string `json:"state"`
	Incarnation uint64 `json:"incarnation"`
}

type placementInfo struct {
	Owners        []string `json:"owners"`
	Relinquishing bool     `json:"relinquishing,omitempty"`
}

type placementStats struct {
	Acquired      uint64 `json:"acquired"`
	Dropped       uint64 `json:"dropped"`
	Relinquishing int    `json:"relinquishing"`
}

type peerHealthInfo struct {
	State          string  `json:"state"`
	Score          float64 `json:"score"`
	RTTMillis      float64 `json:"rtt_ms"`
	QuarantineLeft int     `json:"quarantine_left,omitempty"`
	Successes      uint64  `json:"successes"`
	Failures       uint64  `json:"failures"`
	Corruptions    uint64  `json:"corruptions"`
	Quarantines    uint64  `json:"quarantines"`
}

type netInfo struct {
	Sessions  uint64 `json:"sessions"`
	Dials     uint64 `json:"dials"`
	Reuses    uint64 `json:"reuses"`
	Fallbacks uint64 `json:"fallbacks"`
}

func (s *Server) handleCluster(w http.ResponseWriter, _ *http.Request) {
	n := s.cfg.Node
	if n == nil {
		writeErr(w, http.StatusNotFound, "not a cluster member")
		return
	}
	view := clusterView{
		Peers:  n.Peers(),
		Health: make(map[string]peerHealthInfo),
	}
	for _, m := range n.Members() {
		view.Members = append(view.Members, memberInfo{
			Addr: m.Addr, State: m.State.String(), Incarnation: m.Incarnation,
		})
	}
	if pv := n.PlacementView(); len(pv) > 0 {
		view.Placement = make(map[string]placementInfo, len(pv))
		for name, p := range pv {
			view.Placement[name] = placementInfo{Owners: p.Owners, Relinquishing: p.Relinquishing}
		}
		ps := n.Placement()
		view.Handoffs = &placementStats{
			Acquired: ps.Acquired, Dropped: ps.Dropped, Relinquishing: ps.Relinquishing,
		}
	}
	for addr, h := range n.PeerHealths() {
		view.Health[addr] = peerHealthInfo{
			State:          h.State.String(),
			Score:          h.Score,
			RTTMillis:      float64(h.RTT) / float64(time.Millisecond),
			QuarantineLeft: h.QuarantineLeft,
			Successes:      h.Successes,
			Failures:       h.Failures,
			Corruptions:    h.Corruptions,
			Quarantines:    h.Quarantines,
		}
	}
	ns := n.NetStats()
	view.Net = netInfo{
		Sessions: ns.Sessions, Dials: ns.Dials, Reuses: ns.Reuses, Fallbacks: ns.Fallbacks,
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleDrain(w http.ResponseWriter, _ *http.Request) {
	if s.cfg.Drain == nil {
		writeErr(w, http.StatusServiceUnavailable, "drain is not wired in this mode")
		return
	}
	// Idempotent: the first request triggers the daemon's graceful
	// shutdown, every later one just re-acknowledges. The trigger runs
	// in its own goroutine so a Drain implementation that waits for
	// shutdown cannot deadlock against this handler completing (the
	// http.Server drains in-flight requests, this one included).
	s.drainOnce.Do(func() { go s.cfg.Drain() })
	writeJSON(w, http.StatusAccepted, map[string]bool{"draining": true})
}

// Package parallel is the shared scaffold for sharded sketch
// construction: resolve a worker-count knob against the machine and the
// input size, and run a function over contiguous blocks. Every sharded
// hot path (emd, gap, iblt) uses these two helpers, so the
// block-assignment rules live in exactly one place.
package parallel

import (
	"runtime"
	"sync"
)

// Workers resolves a worker-count request: <= 0 means GOMAXPROCS, and
// the count is capped so each worker gets at least minBlock of n items
// (tiny inputs stay sequential — goroutine startup would dominate).
func Workers(requested, n, minBlock int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if minBlock > 0 {
		if mx := (n + minBlock - 1) / minBlock; w > mx {
			w = mx
		}
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Shard runs fn(b, lo, hi) over w contiguous blocks of n items, one
// goroutine per non-empty block, and waits for all of them. Block b
// covers [lo, hi); blocks partition [0, n) in order.
func Shard(n, w int, fn func(b, lo, hi int)) {
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for b := 0; b < w; b++ {
		lo := b * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(b, lo, hi int) {
			defer wg.Done()
			fn(b, lo, hi)
		}(b, lo, hi)
	}
	wg.Wait()
}

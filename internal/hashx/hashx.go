// Package hashx provides the hash-function machinery the paper's data
// structures assume: pairwise-independent hash functions (used to
// compress MLSH vectors into short keys, Algorithm 1 and §4.1), seeded
// mixing hashes for fingerprinting arbitrary data (IBLT cell indexing and
// checksums, §2.2), and point hashing.
//
// Pairwise independence is provided exactly, via multiply-add modulo the
// Mersenne prime p = 2^61 − 1: for a uniform (a, b) with a ≠ 0, the map
// x ↦ (a·x + b mod p) is pairwise independent on [p]. The paper's
// analyses (e.g. footnote before Lemma 3.8, §4.1) require nothing
// stronger than pairwise independence from these functions.
package hashx

import (
	"math/bits"

	"repro/internal/rng"
)

// mersenne61 is the Mersenne prime 2^61 − 1 used as the field modulus.
const mersenne61 = (1 << 61) - 1

// mulMod61 returns a·b mod 2^61−1 using the standard Mersenne folding
// trick on the 128-bit product.
func mulMod61(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// product = hi·2^64 + lo. With p = 2^61−1, 2^61 ≡ 1 (mod p), so fold
	// the high bits down in chunks of 61.
	sum := (lo & mersenne61) + (lo>>61 | hi<<3&mersenne61) + (hi >> 58)
	sum = (sum & mersenne61) + (sum >> 61)
	if sum >= mersenne61 {
		sum -= mersenne61
	}
	return sum
}

// addMod61 returns a+b mod 2^61−1 for a, b < 2^61−1.
func addMod61(a, b uint64) uint64 {
	s := a + b
	if s >= mersenne61 {
		s -= mersenne61
	}
	return s
}

// Pairwise is an exactly pairwise-independent hash function from 64-bit
// inputs to a configurable number of output bits (at most 61).
type Pairwise struct {
	a, b uint64
	bits uint
}

// NewPairwise draws a pairwise-independent function with the given output
// width from src. outBits must lie in [1, 61].
func NewPairwise(src *rng.Source, outBits uint) Pairwise {
	if outBits < 1 || outBits > 61 {
		panic("hashx: Pairwise output width must be in [1,61]")
	}
	a := src.Uint64n(mersenne61-1) + 1 // a ∈ [1, p−1]
	b := src.Uint64n(mersenne61)       // b ∈ [0, p−1]
	return Pairwise{a: a, b: b, bits: outBits}
}

// Hash maps x to outBits pseudo-random bits. Inputs larger than p are
// first reduced mod p; distinct inputs below p stay distinct before
// hashing, which is all the pairwise analysis needs.
func (h Pairwise) Hash(x uint64) uint64 {
	x = (x & mersenne61) + (x >> 61)
	if x >= mersenne61 {
		x -= mersenne61
	}
	v := addMod61(mulMod61(h.a, x), h.b)
	// Take the high-order bits: for multiply-add over a prime field any
	// fixed bit window is fine; high bits mix best.
	return v >> (61 - h.bits)
}

// Bits returns the output width of the function.
func (h Pairwise) Bits() uint { return h.bits }

// HashMany hashes every element of xs into dst (which must be at least
// as long) and returns dst[:len(xs)]. Batch variant for hot loops that
// hash whole vectors: no per-element call overhead, no allocation.
func (h Pairwise) HashMany(dst, xs []uint64) []uint64 {
	dst = dst[:len(xs)]
	for i, x := range xs {
		dst[i] = h.Hash(x)
	}
	return dst
}

// Mixer is a seeded 64→64-bit finalizer (splitmix64-style). It is not
// pairwise independent; it is the "random oracle"-style hash used for
// IBLT cell indexing and checksums, where the paper's analyses assume
// fully random hashing (standard for IBLT treatments, see [13]).
type Mixer struct {
	seed uint64
}

// NewMixer derives a mixer from src.
func NewMixer(src *rng.Source) Mixer { return Mixer{seed: src.Uint64()} }

// MixerFromSeed builds a mixer with an explicit seed (for tests).
func MixerFromSeed(seed uint64) Mixer { return Mixer{seed: seed} }

// Hash scrambles x.
func (m Mixer) Hash(x uint64) uint64 {
	z := x + m.seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// HashInto scrambles every element of xs into dst (which must be at
// least as long) and returns dst[:len(xs)]. Batch variant for sketch
// builders that fingerprint whole key blocks into caller-provided
// scratch.
func (m Mixer) HashInto(dst, xs []uint64) []uint64 {
	dst = dst[:len(xs)]
	for i, x := range xs {
		dst[i] = m.Hash(x)
	}
	return dst
}

// HashBytes hashes an arbitrary byte string by absorbing 8-byte lanes.
func (m Mixer) HashBytes(p []byte) uint64 {
	h := m.seed ^ (uint64(len(p)) * 0x9e3779b97f4a7c15)
	for len(p) >= 8 {
		lane := uint64(p[0]) | uint64(p[1])<<8 | uint64(p[2])<<16 | uint64(p[3])<<24 |
			uint64(p[4])<<32 | uint64(p[5])<<40 | uint64(p[6])<<48 | uint64(p[7])<<56
		h = mix64(h ^ lane)
		p = p[8:]
	}
	if len(p) > 0 {
		var lane uint64
		for i, b := range p {
			lane |= uint64(b) << (8 * uint(i))
		}
		h = mix64(h ^ lane ^ 0xff)
	}
	return mix64(h)
}

// HashInts hashes a vector of int32 (a metric point's coordinates).
// Folding coordinate-by-coordinate with position-dependent mixing keeps
// permuted vectors from colliding.
func (m Mixer) HashInts(v []int32) uint64 {
	h := m.seed ^ (uint64(len(v)) * 0xd1b54a32d192ed03)
	for _, x := range v {
		h = mix64(h ^ uint64(uint32(x)))
	}
	return mix64(h)
}

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 33)) * 0xff51afd7ed558ccd
	z = (z ^ (z >> 33)) * 0xc4ceb9fe1a85ec53
	return z ^ (z >> 33)
}

// KeyHasher compresses a vector of LSH values into a fixed-width key,
// the way Algorithm 1 forms key_i(a) = h(g1(a),…,g_s(a)) with h drawn
// from a pairwise-independent class with range {0,1}^Θ(log n).
//
// Exact pairwise independence over variable-length vectors is obtained by
// first collapsing the vector with a vector-polynomial hash over GF(p)
// (whose collision probability on unequal vectors is ≤ len/p, far below
// any failure probability in play) and then applying a Pairwise function.
type KeyHasher struct {
	coeff Pairwise // per-lane multiplier basis
	outer Pairwise
	alpha uint64 // evaluation point of the polynomial hash
}

// NewKeyHasher draws a key hasher with outBits-wide output.
func NewKeyHasher(src *rng.Source, outBits uint) KeyHasher {
	return KeyHasher{
		coeff: NewPairwise(src, 61),
		outer: NewPairwise(src, outBits),
		alpha: src.Uint64n(mersenne61-1) + 1,
	}
}

// Hash compresses the vector vs into a key.
func (k KeyHasher) Hash(vs []uint64) uint64 {
	// Polynomial evaluation: Σ v_i · α^i mod p, with each v_i first
	// scrambled by a fixed pairwise function so structured inputs don't
	// align with the polynomial structure.
	var acc uint64
	pow := uint64(1)
	for _, v := range vs {
		acc = addMod61(acc, mulMod61(k.coeff.Hash(v)|1, pow))
		pow = mulMod61(pow, k.alpha)
	}
	return k.outer.Hash(acc)
}

// HashPrefixes compresses every prefix of vs named in ns — which must be
// nondecreasing, each in [0, len(vs)] — into dst (len(dst) >= len(ns)),
// returning dst[:len(ns)]. dst[j] equals Hash(vs[:ns[j]]): the
// polynomial accumulator is carried across the sorted prefixes, so the
// whole family of keys costs one pass over vs instead of one pass per
// prefix. This is the EMD protocol's inner loop — every point derives
// one key per resolution level from a doubling prefix of its MLSH
// vector.
func (k KeyHasher) HashPrefixes(dst []uint64, vs []uint64, ns []int) []uint64 {
	var acc uint64
	pow := uint64(1)
	j := 0
	for i := 0; ; i++ {
		for j < len(ns) && ns[j] == i {
			dst[j] = k.outer.Hash(acc)
			j++
		}
		if i == len(vs) || j == len(ns) {
			break
		}
		acc = addMod61(acc, mulMod61(k.coeff.Hash(vs[i])|1, pow))
		pow = mulMod61(pow, k.alpha)
	}
	return dst[:j]
}

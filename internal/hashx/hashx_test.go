package hashx

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestMulMod61AgainstBigIntFree(t *testing.T) {
	// Cross-check against the naive double-and-add computation.
	naive := func(a, b uint64) uint64 {
		a %= mersenne61
		var acc uint64
		for b > 0 {
			if b&1 == 1 {
				acc = addMod61(acc, a)
			}
			a = addMod61(a, a)
			b >>= 1
		}
		return acc
	}
	src := rng.New(1)
	for i := 0; i < 2000; i++ {
		a := src.Uint64() % mersenne61
		b := src.Uint64() % mersenne61
		if got, want := mulMod61(a, b), naive(a, b); got != want {
			t.Fatalf("mulMod61(%d,%d) = %d, want %d", a, b, got, want)
		}
	}
	// Boundary values.
	edges := []uint64{0, 1, 2, mersenne61 - 1, mersenne61 - 2, 1 << 60}
	for _, a := range edges {
		for _, b := range edges {
			if got, want := mulMod61(a, b), naive(a, b); got != want {
				t.Fatalf("mulMod61(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestPairwiseRange(t *testing.T) {
	src := rng.New(2)
	for _, w := range []uint{1, 8, 20, 32, 61} {
		h := NewPairwise(src, w)
		if h.Bits() != w {
			t.Fatalf("Bits() = %d, want %d", h.Bits(), w)
		}
		for i := uint64(0); i < 1000; i++ {
			if v := h.Hash(i); w < 64 && v>>w != 0 {
				t.Fatalf("width %d output %d overflows", w, v)
			}
		}
	}
}

func TestPairwiseWidthPanics(t *testing.T) {
	for _, w := range []uint{0, 62, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("width %d did not panic", w)
				}
			}()
			NewPairwise(rng.New(1), w)
		}()
	}
}

// TestPairwiseCollisionRate verifies the defining property statistically:
// over a random draw of the function, Pr[h(x)=h(y)] ≈ 2^-bits for x ≠ y.
func TestPairwiseCollisionRate(t *testing.T) {
	src := rng.New(3)
	const outBits = 10
	const draws = 20000
	collisions := 0
	for i := 0; i < draws; i++ {
		h := NewPairwise(src, outBits)
		if h.Hash(12345) == h.Hash(67890) {
			collisions++
		}
	}
	want := float64(draws) / (1 << outBits)
	if math.Abs(float64(collisions)-want) > 6*math.Sqrt(want) {
		t.Errorf("collisions = %d, want ~%.1f", collisions, want)
	}
}

// TestPairwiseUniformPerInput verifies single-value uniformity over the
// function family (the other half of pairwise independence).
func TestPairwiseUniformPerInput(t *testing.T) {
	src := rng.New(4)
	const outBits = 4
	counts := make([]int, 1<<outBits)
	const draws = 64000
	for i := 0; i < draws; i++ {
		h := NewPairwise(src, outBits)
		counts[h.Hash(99)]++
	}
	want := float64(draws) / (1 << outBits)
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("value %d: count %d, want ~%.0f", v, c, want)
		}
	}
}

func TestMixerDeterminismAndSensitivity(t *testing.T) {
	m := MixerFromSeed(7)
	if m.Hash(1) != m.Hash(1) {
		t.Fatal("Mixer not deterministic")
	}
	if m.Hash(1) == m.Hash(2) {
		t.Fatal("Mixer collides on adjacent inputs")
	}
	m2 := MixerFromSeed(8)
	if m.Hash(1) == m2.Hash(1) {
		t.Fatal("different seeds, same output")
	}
}

func TestMixerAvalanche(t *testing.T) {
	m := MixerFromSeed(11)
	// Flipping one input bit should flip ~32 output bits.
	var totalFlips, trials int
	for x := uint64(0); x < 200; x++ {
		base := m.Hash(x)
		for b := uint(0); b < 64; b += 7 {
			diff := base ^ m.Hash(x^(1<<b))
			totalFlips += popcount(diff)
			trials++
		}
	}
	avg := float64(totalFlips) / float64(trials)
	if avg < 24 || avg > 40 {
		t.Errorf("avalanche average = %.2f bits, want ~32", avg)
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestHashBytes(t *testing.T) {
	m := MixerFromSeed(13)
	if m.HashBytes([]byte("hello")) == m.HashBytes([]byte("hellp")) {
		t.Error("adjacent strings collide")
	}
	if m.HashBytes(nil) != m.HashBytes([]byte{}) {
		t.Error("nil and empty differ")
	}
	if m.HashBytes([]byte{0}) == m.HashBytes([]byte{0, 0}) {
		t.Error("length not absorbed")
	}
	long := make([]byte, 100)
	long2 := make([]byte, 100)
	long2[99] = 1
	if m.HashBytes(long) == m.HashBytes(long2) {
		t.Error("tail byte ignored")
	}
}

func TestHashIntsOrderSensitivity(t *testing.T) {
	m := MixerFromSeed(17)
	a := []int32{1, 2, 3}
	b := []int32{3, 2, 1}
	if m.HashInts(a) == m.HashInts(b) {
		t.Error("permutation collision")
	}
	if m.HashInts([]int32{0}) == m.HashInts([]int32{0, 0}) {
		t.Error("length collision")
	}
	if m.HashInts([]int32{-1}) == m.HashInts([]int32{1}) {
		t.Error("sign ignored")
	}
}

func TestKeyHasherDistinctVectors(t *testing.T) {
	src := rng.New(19)
	k := NewKeyHasher(src, 40)
	seen := map[uint64][]uint64{}
	collisions := 0
	const trials = 50000
	vsrc := rng.New(23)
	for i := 0; i < trials; i++ {
		v := []uint64{vsrc.Uint64n(1000), vsrc.Uint64n(1000), vsrc.Uint64n(1000)}
		h := k.Hash(v)
		if prev, ok := seen[h]; ok && !equalVec(prev, v) {
			collisions++
		}
		seen[h] = v
	}
	// With 40-bit keys and 5·10^4 draws, expected collisions ≈ 10^9/2^41 ≈ 0.
	if collisions > 2 {
		t.Errorf("%d key collisions among %d vectors", collisions, trials)
	}
}

func TestKeyHasherEqualVectorsEqualKeys(t *testing.T) {
	k := NewKeyHasher(rng.New(29), 32)
	prop := func(a, b, c uint64) bool {
		v := []uint64{a, b, c}
		w := []uint64{a, b, c}
		return k.Hash(v) == k.Hash(w)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyHasherPrefixSensitivity(t *testing.T) {
	k := NewKeyHasher(rng.New(31), 48)
	if k.Hash([]uint64{1, 2}) == k.Hash([]uint64{1, 2, 0}) {
		t.Error("appending a zero lane did not change the key")
	}
	if k.Hash([]uint64{}) == k.Hash([]uint64{0}) {
		t.Error("empty vs single-zero collision")
	}
}

func equalVec(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkPairwiseHash(b *testing.B) {
	h := NewPairwise(rng.New(1), 32)
	for i := 0; i < b.N; i++ {
		_ = h.Hash(uint64(i))
	}
}

func BenchmarkKeyHasher16(b *testing.B) {
	k := NewKeyHasher(rng.New(1), 40)
	v := make([]uint64, 16)
	for i := range v {
		v[i] = uint64(i * 77)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = k.Hash(v)
	}
}

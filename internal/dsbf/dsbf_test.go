package dsbf

import (
	"testing"

	"repro/internal/lsh"
	"repro/internal/metric"
	"repro/internal/rng"
	"repro/internal/transport"
	"repro/internal/workload"
)

func hammingParams(d int, r1, r2 float64, seed uint64) Params {
	space := metric.HammingCube(d)
	return Params{
		Space:  space,
		LSH:    lsh.HammingParams(space, r1, r2),
		Family: lsh.NewCoordSampling(space, float64(d)),
		Seed:   seed,
	}
}

func TestCloseQueriesAccepted(t *testing.T) {
	const d = 256
	p := hammingParams(d, 8, 100, 1)
	src := rng.New(2)
	set := workload.RandomSet(p.Space, 30, src)
	f, err := Build(p, set)
	if err != nil {
		t.Fatal(err)
	}
	// Perturbed copies within r1 must be accepted (whp each; demand a
	// high rate over many queries).
	accepted := 0
	const queries = 200
	for i := 0; i < queries; i++ {
		base := set[src.Intn(len(set))]
		q := workload.PerturbHamming(p.Space, base, src.Intn(9), src)
		if f.Contains(q) {
			accepted++
		}
	}
	if accepted < queries*95/100 {
		t.Errorf("close acceptance %d/%d", accepted, queries)
	}
	// Exact members must essentially always be accepted.
	for _, pt := range set {
		if !f.Contains(pt) {
			t.Errorf("stored element rejected")
		}
	}
}

func TestFarQueriesRejected(t *testing.T) {
	const d = 256
	p := hammingParams(d, 8, 100, 3)
	src := rng.New(4)
	set := workload.RandomSet(p.Space, 30, src)
	f, err := Build(p, set)
	if err != nil {
		t.Fatal(err)
	}
	rejected := 0
	const queries = 200
	for i := 0; i < queries; i++ {
		q, err := workload.FarPoint(p.Space, set, 100, src, 2000)
		if err != nil {
			t.Fatal(err)
		}
		if !f.Contains(q) {
			rejected++
		}
	}
	if rejected < queries*95/100 {
		t.Errorf("far rejection %d/%d", rejected, queries)
	}
}

func TestScoreMonotoneInDistance(t *testing.T) {
	const d = 512
	p := hammingParams(d, 4, 128, 5)
	src := rng.New(6)
	base := workload.RandomPoint(p.Space, src)
	f, err := Build(p, metric.PointSet{base})
	if err != nil {
		t.Fatal(err)
	}
	// Average score must fall as query distance grows.
	meanScore := func(dist int) float64 {
		var sum float64
		const reps = 60
		for i := 0; i < reps; i++ {
			q := workload.PerturbHamming(p.Space, base, dist, src)
			sum += float64(f.Score(q))
		}
		return sum / reps
	}
	s0 := meanScore(0)
	s32 := meanScore(32)
	s256 := meanScore(256)
	if !(s0 > s32 && s32 > s256) {
		t.Errorf("scores not monotone: %v, %v, %v", s0, s32, s256)
	}
	if s0 != float64(f.L()) {
		t.Errorf("exact member score %v, want %d", s0, f.L())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := hammingParams(128, 4, 48, 7)
	src := rng.New(8)
	set := workload.RandomSet(p.Space, 20, src)
	f, err := Build(p, set)
	if err != nil {
		t.Fatal(err)
	}
	e := transport.NewEncoder()
	f.Encode(e)
	data, bits := e.Pack()
	if bits < f.SizeBits() {
		t.Errorf("encoded %d bits < filter size %d", bits, f.SizeBits())
	}
	got, err := Decode(transport.NewDecoder(data), hammingParams(128, 4, 48, 7))
	if err != nil {
		t.Fatal(err)
	}
	if got.Threshold() != f.Threshold() {
		t.Fatalf("decoded threshold %d, builder %d", got.Threshold(), f.Threshold())
	}
	for _, pt := range set {
		if got.Score(pt) != f.Score(pt) {
			t.Fatalf("decoded filter disagrees on stored element")
		}
		if !got.Contains(pt) {
			t.Fatalf("decoded filter rejects stored element")
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	e := transport.NewEncoder()
	e.WriteUvarint(0) // L = 0
	e.WriteUvarint(64)
	data, _ := e.Pack()
	if _, err := Decode(transport.NewDecoder(data), hammingParams(64, 2, 16, 1)); err == nil {
		t.Error("L=0 accepted")
	}
}

func TestValidate(t *testing.T) {
	p := hammingParams(64, 4, 16, 1)
	p.applyDefaults(10)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := p
	bad.Family = nil
	if err := bad.Validate(); err == nil {
		t.Error("nil family accepted")
	}
	bad2 := p
	bad2.LSH.P1, bad2.LSH.P2 = 0.1, 0.9
	if err := bad2.Validate(); err == nil {
		t.Error("inverted probabilities accepted")
	}
}

func TestGridL1Filter(t *testing.T) {
	space := metric.Grid(1<<16, 4, metric.L1)
	w := 2000.0
	p := Params{
		Space:  space,
		LSH:    lsh.GridL1Params(space, 100, 8000, w),
		Family: lsh.NewGridL1(space, w),
		Seed:   11,
	}
	src := rng.New(12)
	set := workload.RandomSet(space, 25, src)
	f, err := Build(p, set)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i := 0; i < 100; i++ {
		q := workload.PerturbWithin(space, set[src.Intn(len(set))], 100, src)
		if f.Contains(q) {
			hits++
		}
	}
	if hits < 90 {
		t.Errorf("ℓ1 close acceptance %d/100", hits)
	}
}

func BenchmarkQuery(b *testing.B) {
	p := hammingParams(256, 8, 100, 1)
	src := rng.New(2)
	set := workload.RandomSet(p.Space, 1000, src)
	f, err := Build(p, set)
	if err != nil {
		b.Fatal(err)
	}
	q := set[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Contains(q)
	}
}

// Package dsbf implements distance-sensitive Bloom filters, the Kirsch &
// Mitzenmacher construction the paper cites (§1.1, reference [18]) as
// the origin of using locality-sensitive hashing inside hash-based data
// structures: a membership filter that answers "is the query within r1
// of some set element?" positively with high probability, and "is it
// beyond r2 of every element?" negatively with high probability.
//
// The construction: L independent arrays, each indexed by a
// concatenation of m LSH functions (amplification: a far query collides
// with a given element in an array with probability p2^m, so even a
// union bound over n stored elements stays small, while a close pair
// still collides with probability p1^m). An element sets one bit per
// array; a query counts how many arrays have its bit set and compares
// the count against a threshold between L·(n·p2^m + fill) and L·p1^m;
// a Chernoff bound over the L independent arrays separates the two.
//
// In the reconciliation library the filter serves as a cheap pre-check:
// before running a full robust-reconciliation round, a party can test
// whether specific points are already (approximately) present on the
// other side.
package dsbf

import (
	"fmt"
	"math"

	"repro/internal/hashx"
	"repro/internal/lsh"
	"repro/internal/metric"
	"repro/internal/rng"
	"repro/internal/transport"
)

// Params configures a filter. Both the builder and the querier must use
// identical Params (public coins).
type Params struct {
	Space metric.Space
	// LSH supplies the (r1, r2, p1, p2) family the filter distinguishes
	// with. Derive from lsh.HammingParams / lsh.GridL1Params or supply
	// a custom family via Family.
	LSH lsh.Params
	// Family draws the hash functions; must match LSH's guarantee.
	Family lsh.Family
	// L is the number of LSH arrays (default 48).
	L int
	// M is the per-array concatenation length (default: chosen at Build
	// so that n·p2^M ≤ 1/4, the union bound over stored elements).
	M int
	// BitsPerArray sizes each Bloom array (default 16× expected
	// elements, set at Build time if zero — see Build).
	BitsPerArray int
	// Seed is the shared randomness.
	Seed uint64
}

// Filter is a built distance-sensitive Bloom filter.
type Filter struct {
	p         Params
	funcs     []lsh.Func
	mixers    []hashx.Mixer
	bits      []uint64 // L arrays of BitsPerArray bits, packed
	perArray  int
	threshold int
}

// Validate reports an error for unusable parameters.
func (p *Params) Validate() error {
	if err := p.Space.Validate(); err != nil {
		return err
	}
	if p.Family == nil {
		return fmt.Errorf("dsbf: nil LSH family")
	}
	return p.LSH.Validate()
}

func (p *Params) applyDefaults(nElements int) {
	if p.L == 0 {
		p.L = 48
	}
	if p.M == 0 {
		n := float64(nElements)
		if n < 1 {
			n = 1
		}
		p.M = int(math.Ceil(math.Log(4*n) / math.Log(1/p.LSH.P2)))
		if p.M < 1 {
			p.M = 1
		}
	}
	if p.BitsPerArray == 0 {
		p.BitsPerArray = 16 * nElements
		if p.BitsPerArray < 64 {
			p.BitsPerArray = 64
		}
	}
}

// Build constructs the filter over the given set.
func Build(p Params, set metric.PointSet) (*Filter, error) {
	p.applyDefaults(len(set))
	if err := p.Validate(); err != nil {
		return nil, err
	}
	src := rng.New(p.Seed)
	funcs := make([]lsh.Func, p.L*p.M)
	mixers := make([]hashx.Mixer, p.L)
	for i := range funcs {
		funcs[i] = p.Family.Draw(src)
	}
	for i := range mixers {
		mixers[i] = hashx.NewMixer(src)
	}
	words := (p.BitsPerArray + 63) / 64
	f := &Filter{
		p:        p,
		funcs:    funcs,
		mixers:   mixers,
		bits:     make([]uint64, p.L*words),
		perArray: words * 64,
	}
	// Per-array hit probabilities after amplification: close ≥ p1^m;
	// far ≤ n·p2^m plus the array's fill ratio (false-positive bits).
	pClose := math.Pow(p.LSH.P1, float64(p.M))
	pFar := float64(len(set))*math.Pow(p.LSH.P2, float64(p.M)) +
		float64(len(set))/float64(p.BitsPerArray)
	if pFar > 1 {
		pFar = 1
	}
	if set != nil && pClose <= pFar {
		return nil, fmt.Errorf("dsbf: no separation (close %.3f <= far %.3f); widen the r2/r1 gap or raise M", pClose, pFar)
	}
	// Threshold biased toward the far side so the "must answer positive
	// within r1" guarantee is the stronger one ([18]'s one-sided
	// emphasis).
	f.threshold = int(math.Ceil(float64(p.L) * (pFar + (pClose-pFar)/3)))
	if f.threshold < 1 {
		f.threshold = 1
	}
	for _, pt := range set {
		f.add(pt)
	}
	return f, nil
}

func (f *Filter) bitPos(i int, pt metric.Point) int {
	// Combine the array's m LSH values into one bucket index.
	v := f.mixers[i].Hash(uint64(i))
	for j := 0; j < f.p.M; j++ {
		v = f.mixers[i].Hash(v ^ f.funcs[i*f.p.M+j].Hash(pt))
	}
	return i*f.perArray + int(v%uint64(f.p.BitsPerArray))
}

func (f *Filter) add(pt metric.Point) {
	for i := 0; i < f.p.L; i++ {
		pos := f.bitPos(i, pt)
		f.bits[pos/64] |= 1 << (pos % 64)
	}
}

// Score returns how many of the L arrays contain the query's bit.
func (f *Filter) Score(pt metric.Point) int {
	n := 0
	for i := 0; i < f.p.L; i++ {
		pos := f.bitPos(i, pt)
		if f.bits[pos/64]&(1<<(pos%64)) != 0 {
			n++
		}
	}
	return n
}

// Contains reports whether the query is likely within r2 of some stored
// element: true whenever some element is within r1 (whp), false whenever
// every element is beyond r2 (whp). Between the radii either answer may
// occur — that is the distance-sensitive gap.
func (f *Filter) Contains(pt metric.Point) bool {
	return f.Score(pt) >= f.threshold
}

// Threshold returns the decision threshold (for diagnostics and tests).
func (f *Filter) Threshold() int { return f.threshold }

// L returns the number of arrays.
func (f *Filter) L() int { return f.p.L }

// SizeBits returns the filter's size on the wire.
func (f *Filter) SizeBits() int64 { return int64(f.p.L) * int64(f.p.BitsPerArray) }

// Encode serializes the filter (the bit arrays; parameters travel out of
// band like all protocol Params).
func (f *Filter) Encode(e *transport.Encoder) {
	e.WriteUvarint(uint64(f.p.L))
	e.WriteUvarint(uint64(f.p.M))
	e.WriteUvarint(uint64(f.p.BitsPerArray))
	e.WriteUvarint(uint64(f.threshold))
	for _, w := range f.bits {
		e.WriteUint64(w)
	}
}

// Decode reconstructs a filter built with identical Params.
func Decode(d *transport.Decoder, p Params) (*Filter, error) {
	l, err := d.ReadUvarint()
	if err != nil {
		return nil, err
	}
	m, err := d.ReadUvarint()
	if err != nil {
		return nil, err
	}
	bpa, err := d.ReadUvarint()
	if err != nil {
		return nil, err
	}
	p.L = int(l)
	p.M = int(m)
	p.BitsPerArray = int(bpa)
	thr, err := d.ReadUvarint()
	if err != nil {
		return nil, err
	}
	if p.L < 1 || p.L > 1<<20 || p.M < 1 || p.M > 1<<16 || p.BitsPerArray < 1 || p.BitsPerArray > 1<<30 {
		return nil, fmt.Errorf("dsbf: implausible geometry L=%d M=%d bits=%d", p.L, p.M, p.BitsPerArray)
	}
	f, err := Build(p, nil)
	if err != nil {
		return nil, err
	}
	// The builder's threshold reflects its element count; adopt it
	// rather than recomputing from an empty set.
	if int(thr) > p.L {
		return nil, fmt.Errorf("dsbf: threshold %d exceeds L=%d", thr, p.L)
	}
	f.threshold = int(thr)
	for i := range f.bits {
		w, err := d.ReadUint64()
		if err != nil {
			return nil, err
		}
		f.bits[i] = w
	}
	return f, nil
}

package quadtree

import (
	"testing"

	"repro/internal/metric"
	"repro/internal/workload"
)

// BenchmarkQuadtreeBuildSketch tracks the baseline protocol's
// multi-level builder: reusable per-level scratch and pooled riblt
// tables keep its allocations flat in the number of levels.
func BenchmarkQuadtreeBuildSketch(b *testing.B) {
	space := metric.Grid(255, 8, metric.L1)
	inst := workload.NewEMDInstance(space, 64, 4, 2, 9)
	p := Params{Space: space, N: 64, K: 4, Seed: 7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildSketch(p, inst.SA); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuadtreeEncode tracks the from-scratch Alice message build.
func BenchmarkQuadtreeEncode(b *testing.B) {
	space := metric.Grid(255, 8, metric.L1)
	inst := workload.NewEMDInstance(space, 64, 4, 2, 9)
	p := Params{Space: space, N: 64, K: 4, Seed: 7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeReference(p, inst.SA); err != nil {
			b.Fatal(err)
		}
	}
}

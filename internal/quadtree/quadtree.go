// Package quadtree implements the baseline the paper improves on: the
// randomly-offset quadtree protocol of Chen, Konrad, Yi, Yu & Zhang,
// "Robust set reconciliation" (SIGMOD 2014), the paper's reference [7].
//
// Where Algorithm 1 keys points by locality-sensitive hashes and stores
// the points themselves as IBLT values, [7] "simply rounds points to the
// center of their quadtree cell, and inserts those into an IBLT" (§1.1).
// We realize that with a hierarchy of randomly shifted grids: at level ℓ
// the cell width halves, each point is replaced by its cell's center
// point, and the (cellID, occurrence) → center pairs go into a table per
// level. Bob decodes the finest level whose difference fits and replaces
// matched points by Alice's recovered cell centers.
//
// The recovered values carry quantization error up to the cell diameter,
// which grows linearly with the dimension d under ℓ1 (and with √d under
// ℓ2) — the O(d) approximation factor that motivates the paper's O(log n)
// alternative. Experiment E7 measures exactly this contrast.
package quadtree

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/hashx"
	"repro/internal/matching"
	"repro/internal/metric"
	"repro/internal/riblt"
	"repro/internal/rng"
	"repro/internal/transport"
)

// Params configures the baseline protocol.
type Params struct {
	Space metric.Space
	N     int
	K     int
	// Q, KeyBits, CellsPerLevel mirror the RIBLT sizing; zero values
	// default to the same geometry Algorithm 1 uses (4q²k cells, q=3),
	// keeping the comparison apples-to-apples.
	Q             int
	KeyBits       uint
	CellsPerLevel int
	// MaxDecoded caps the per-level recovered pairs (default 4K).
	MaxDecoded int
	Seed       uint64
}

func (p *Params) applyDefaults() {
	if p.Q == 0 {
		p.Q = 3
	}
	if p.KeyBits == 0 {
		p.KeyBits = 40
	}
	if p.CellsPerLevel == 0 {
		p.CellsPerLevel = 4 * p.Q * p.Q * p.K
	}
	if p.MaxDecoded == 0 {
		p.MaxDecoded = 4 * p.K
	}
}

// Validate reports an error for unusable parameters.
func (p *Params) Validate() error {
	if err := p.Space.Validate(); err != nil {
		return err
	}
	if p.N < 1 || p.K < 1 || p.K > p.N {
		return fmt.Errorf("quadtree: need 1 <= k <= n, got n=%d k=%d", p.N, p.K)
	}
	return nil
}

// Result mirrors emd.Result for the baseline.
type Result struct {
	SPrime metric.PointSet
	Failed bool
	// Level is the finest decoded level (1-based; higher = finer cells).
	Level  int
	XA, XB metric.PointSet
	Stats  transport.Stats
	Levels int
}

// levelWidths returns the cell width per level: level 0 covers the whole
// space in one cell, and widths halve down to 1.
func levelWidths(space metric.Space) []float64 {
	max := float64(space.Delta + 1)
	var widths []float64
	for w := max; w >= 1; w /= 2 {
		widths = append(widths, w)
	}
	return widths
}

// newCenters allocates n reusable center points of the given dimension
// over one flat backing array.
func newCenters(n, dim int) metric.PointSet {
	flat := make([]int32, n*dim)
	out := make(metric.PointSet, n)
	for i := range out {
		out[i] = metric.Point(flat[i*dim : (i+1)*dim : (i+1)*dim])
	}
	return out
}

// grid captures one level's randomly offset grid.
type grid struct {
	w       float64
	offsets []float64
	mix     hashx.Mixer
	space   metric.Space
}

func newGrid(space metric.Space, w float64, src *rng.Source) grid {
	off := make([]float64, space.Dim)
	for i := range off {
		off[i] = src.Float64() * w
	}
	return grid{w: w, offsets: off, mix: hashx.NewMixer(src), space: space}
}

// cellAndCenter returns the cell id hash and the center point of p's
// cell, clamped into the space.
func (g grid) cellAndCenter(p metric.Point) (uint64, metric.Point) {
	return g.cellAndCenterInto(p, make(metric.Point, len(p)))
}

// cellAndCenterInto is cellAndCenter writing the center into a
// caller-provided point (length len(p)) — the builders' hot loop, which
// reuses one center buffer per slot instead of allocating per level.
// The table insert paths only read the center (cell fields are sums),
// so reuse is safe.
func (g grid) cellAndCenterInto(p, center metric.Point) (uint64, metric.Point) {
	h := g.mix.Hash(uint64(len(p)))
	for i, x := range p {
		cell := math.Floor((float64(x) + g.offsets[i]) / g.w)
		h = g.mix.Hash(h ^ uint64(int64(cell)) ^ uint64(i)<<48)
		c := cell*g.w + g.w/2 - g.offsets[i]
		v := int32(math.Round(c))
		// Clamp in place (center is owned scratch; Space.Clamp clones).
		if v < 0 {
			v = 0
		} else if v > g.space.Delta {
			v = g.space.Delta
		}
		center[i] = v
	}
	return h, center
}

// occurrenceKeys assigns, per party, stable occurrence indices to points
// sharing a cell so duplicates become distinct table keys that still
// cancel across parties.
func occurrenceKeys(cells []uint64, keyBits uint, mix hashx.Mixer) []uint64 {
	return occurrenceKeysInto(make([]uint64, len(cells)), cells, keyBits, mix, &occScratch{})
}

// occScratch is the reusable working state of occurrenceKeysInto; one
// instance serves a whole multi-level build instead of per-level maps.
type occScratch struct {
	order []int
	occ   map[uint64]uint64
}

// occurrenceKeysInto is occurrenceKeys into caller-provided output and
// scratch — the per-level hot loop of the multi-level builders, which
// would otherwise allocate an order slice and an occurrence map per
// level.
func occurrenceKeysInto(out []uint64, cells []uint64, keyBits uint, mix hashx.Mixer, sc *occScratch) []uint64 {
	if cap(sc.order) < len(cells) {
		sc.order = make([]int, len(cells))
	}
	order := sc.order[:len(cells)]
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return cells[order[a]] < cells[order[b]] })
	if sc.occ == nil {
		sc.occ = make(map[uint64]uint64, len(cells))
	} else {
		clear(sc.occ)
	}
	for _, i := range order {
		c := cells[i]
		n := sc.occ[c] + 1
		sc.occ[c] = n
		out[i] = occurrenceKey(mix, keyBits, c, n)
	}
	return out[:len(cells)]
}

// occurrenceKey is the table key of the occ-th point (1-based) of cell
// c. A cell's key multiset depends only on its population count, and
// every point of a cell carries the same value (the cell center), which
// is what makes incremental Add/Remove exact: the Sketch below removes
// the top occurrence key of the departing point's cell.
func occurrenceKey(mix hashx.Mixer, keyBits uint, c, occ uint64) uint64 {
	return mix.Hash(c^occ*0x9e3779b97f4a7c15) & (1<<keyBits - 1)
}

// plan is the seed-derived state shared by both parties: the offset
// grids, the occurrence-key mixer and the per-level table configs.
type plan struct {
	params Params
	widths []float64
	grids  []grid
	occMix hashx.Mixer
	cfgs   []riblt.Config
}

func newPlan(p Params) (*plan, error) {
	p.applyDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	widths := levelWidths(p.Space)
	src := rng.New(p.Seed)
	grids := make([]grid, len(widths))
	for i, w := range widths {
		grids[i] = newGrid(p.Space, w, src)
	}
	occMix := hashx.NewMixer(src)
	cfgs := make([]riblt.Config, len(widths))
	for i := range cfgs {
		cfgs[i] = riblt.Config{
			Cells: p.CellsPerLevel, Q: p.Q, Dim: p.Space.Dim, Delta: p.Space.Delta,
			KeyBits: p.KeyBits, MaxItems: 2*p.N + 2, Seed: src.Uint64(),
		}
	}
	return &plan{params: p, widths: widths, grids: grids, occMix: occMix, cfgs: cfgs}, nil
}

// aliceEncode builds Alice's message: every level's table over sa. The
// per-level working set — cell ids, centers, occurrence keys, and the
// table itself — is reused (or pooled) across levels, so the build's
// allocations are one batch of flat scratch rather than per level per
// cell.
func (pl *plan) aliceEncode(sa metric.PointSet) *transport.Encoder {
	p := pl.params
	e := transport.NewEncoder()
	e.WriteUvarint(uint64(len(pl.widths)))
	cells := make([]uint64, len(sa))
	keys := make([]uint64, len(sa))
	centers := newCenters(len(sa), p.Space.Dim)
	var sc occScratch
	for lvl := range pl.widths {
		tbl := riblt.New(pl.cfgs[lvl])
		for i, a := range sa {
			cells[i], _ = pl.grids[lvl].cellAndCenterInto(a, centers[i])
		}
		for i, key := range occurrenceKeysInto(keys, cells, p.KeyBits, pl.occMix, &sc) {
			tbl.Insert(key, centers[i])
		}
		tbl.Encode(e)
		tbl.Release()
	}
	return e
}

// Reconcile runs the baseline protocol in-process.
func Reconcile(p Params, sa, sb metric.PointSet) (Result, error) {
	pl, err := newPlan(p)
	if err != nil {
		return Result{}, err
	}
	p = pl.params
	if len(sa) != p.N || len(sb) != p.N {
		return Result{}, fmt.Errorf("quadtree: |SA|=%d |SB|=%d, N=%d", len(sa), len(sb), p.N)
	}
	widths, grids, cfgs := pl.widths, pl.grids, pl.cfgs

	// Alice: build and send all levels.
	var ch transport.Channel
	ch.Send(transport.AliceToBob, pl.aliceEncode(sa))

	// Bob: delete his rounded points, decode finest feasible level.
	d, err := ch.Recv(transport.AliceToBob)
	if err != nil {
		return Result{}, err
	}
	nLvl, err := d.ReadUvarint()
	if err != nil {
		return Result{}, err
	}
	if int(nLvl) != len(widths) {
		return Result{}, fmt.Errorf("quadtree: level count mismatch")
	}
	tables := make([]*riblt.Table, len(widths))
	for lvl := range tables {
		if tables[lvl], err = riblt.DecodeFrom(d, cfgs[lvl]); err != nil {
			return Result{}, err
		}
	}
	defer func() {
		for _, t := range tables {
			t.Release()
		}
	}()
	cells := make([]uint64, len(sb))
	keys := make([]uint64, len(sb))
	centers := newCenters(len(sb), p.Space.Dim)
	var sc occScratch
	for lvl := range widths {
		for i, b := range sb {
			cells[i], _ = grids[lvl].cellAndCenterInto(b, centers[i])
		}
		for i, key := range occurrenceKeysInto(keys, cells, p.KeyBits, pl.occMix, &sc) {
			tables[lvl].Delete(key, centers[i])
		}
	}
	round := rng.New(p.Seed ^ 0xbead)
	for lvl := len(widths) - 1; lvl >= 0; lvl-- {
		res, err := tables[lvl].Peel(round)
		if err != nil {
			continue
		}
		if len(res.Inserted)+len(res.Deleted) > p.MaxDecoded {
			continue
		}
		xa := make(metric.PointSet, len(res.Inserted))
		for j, pr := range res.Inserted {
			xa[j] = pr.Value
		}
		xb := make(metric.PointSet, len(res.Deleted))
		for j, pr := range res.Deleted {
			xb[j] = pr.Value
		}
		sPrime := assemble(p.Space, sb, xa, xb)
		return Result{
			SPrime: sPrime, Level: lvl + 1, XA: xa, XB: xb,
			Stats: ch.Stats(), Levels: len(widths),
		}, nil
	}
	return Result{Failed: true, Stats: ch.Stats(), Levels: len(widths)}, nil
}

// Sketch is Alice's quadtree message state maintained incrementally
// under churn, mirroring emd.Sketch for the baseline protocol. Each
// level keeps a cell-population map; adding a point inserts occurrence
// key count+1 of its cell, removing one retracts occurrence key count —
// exact, because every point of a cell carries the same value (the cell
// center). Encode is bit-identical to the from-scratch Alice build over
// the same multiset.
type Sketch struct {
	pl     *plan
	tables []*riblt.Table
	counts []map[uint64]uint64 // per level: cell id → live population
	// Mutation scratch, reused across Add/Remove: one cell id and one
	// center buffer per level (Remove rounds at every level before
	// mutating any).
	cellScratch   []uint64
	centerScratch metric.PointSet
}

// NewSketch builds an empty sketch; Params.N bounds the live set size.
func NewSketch(p Params) (*Sketch, error) {
	pl, err := newPlan(p)
	if err != nil {
		return nil, err
	}
	s := &Sketch{
		pl:            pl,
		tables:        make([]*riblt.Table, len(pl.widths)),
		counts:        make([]map[uint64]uint64, len(pl.widths)),
		cellScratch:   make([]uint64, len(pl.widths)),
		centerScratch: newCenters(len(pl.widths), pl.params.Space.Dim),
	}
	for i := range s.tables {
		s.tables[i] = riblt.New(pl.cfgs[i])
		s.counts[i] = make(map[uint64]uint64)
	}
	return s, nil
}

// BuildSketch builds a sketch over pts.
func BuildSketch(p Params, pts metric.PointSet) (*Sketch, error) {
	s, err := NewSketch(p)
	if err != nil {
		return nil, err
	}
	for _, pt := range pts {
		s.Add(pt)
	}
	return s, nil
}

// Add inserts one point (one grid rounding plus q cell updates per
// level). Allocation-free: rounding reuses the sketch's scratch.
func (s *Sketch) Add(pt metric.Point) {
	kb := s.pl.params.KeyBits
	for lvl := range s.tables {
		c, center := s.pl.grids[lvl].cellAndCenterInto(pt, s.centerScratch[lvl])
		n := s.counts[lvl][c] + 1
		s.counts[lvl][c] = n
		s.tables[lvl].Insert(occurrenceKey(s.pl.occMix, kb, c, n), center)
	}
}

// Remove retracts one point previously added. It returns an error —
// without mutating any level — if the point's cell is empty at some
// level (the point was never added).
func (s *Sketch) Remove(pt metric.Point) error {
	kb := s.pl.params.KeyBits
	cells := s.cellScratch
	for lvl := range s.tables {
		cells[lvl], _ = s.pl.grids[lvl].cellAndCenterInto(pt, s.centerScratch[lvl])
		if s.counts[lvl][cells[lvl]] == 0 {
			return fmt.Errorf("quadtree: remove from empty cell at level %d", lvl)
		}
	}
	for lvl := range s.tables {
		c := cells[lvl]
		n := s.counts[lvl][c]
		s.tables[lvl].Retract(occurrenceKey(s.pl.occMix, kb, c, n), s.centerScratch[lvl])
		if n == 1 {
			delete(s.counts[lvl], c)
		} else {
			s.counts[lvl][c] = n - 1
		}
	}
	return nil
}

// Encode serializes the sketch as Alice's protocol message.
func (s *Sketch) Encode() []byte {
	e := transport.NewEncoder()
	e.WriteUvarint(uint64(len(s.tables)))
	for _, t := range s.tables {
		t.Encode(e)
	}
	data, _ := e.Pack()
	return data
}

// EncodeReference builds the from-scratch Alice message over pts with
// identical params — the golden reference incremental maintenance is
// tested against.
func EncodeReference(p Params, pts metric.PointSet) ([]byte, error) {
	pl, err := newPlan(p)
	if err != nil {
		return nil, err
	}
	data, _ := pl.aliceEncode(pts).Pack()
	return data, nil
}

// assemble mirrors the Algorithm 1 output step: S′B = (SB \ YB) ∪ XA with
// YB the min-cost match of XB into SB.
func assemble(space metric.Space, sb, xa, xb metric.PointSet) metric.PointSet {
	if len(xb) == 0 {
		return append(sb.Clone(), xa.Clone()...)
	}
	rows, _ := matching.Assign(matching.CostMatrix(space, xb, sb))
	drop := make(map[int]bool, len(rows))
	for _, j := range rows {
		if j >= 0 {
			drop[j] = true
		}
	}
	out := make(metric.PointSet, 0, len(sb)-len(drop)+len(xa))
	for j, b := range sb {
		if !drop[j] {
			out = append(out, b.Clone())
		}
	}
	out = append(out, xa.Clone()...)
	return out
}

package quadtree

import (
	"bytes"
	"testing"

	"repro/internal/metric"
	"repro/internal/rng"
)

func randSketchPoint(space metric.Space, src *rng.Source) metric.Point {
	pt := make(metric.Point, space.Dim)
	for i := range pt {
		pt[i] = int32(src.Uint64() % uint64(space.Delta+1))
	}
	return pt
}

// TestSketchIncrementalGolden: the incrementally maintained quadtree
// sketch stays bit-identical on the wire to the from-scratch Alice
// build after any random Add/Remove sequence — the occurrence-key
// multiset of a cell depends only on its population, and every point of
// a cell carries the same center value.
func TestSketchIncrementalGolden(t *testing.T) {
	p := Params{Space: metric.Grid(63, 4, metric.L1), N: 32, K: 3, Seed: 21}
	sk, err := NewSketch(p)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(77)
	var set metric.PointSet
	for op := 0; op < 300; op++ {
		if len(set) > 0 && (len(set) >= p.N || src.Uint64()%2 == 0) {
			i := int(src.Uint64() % uint64(len(set)))
			if err := sk.Remove(set[i]); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			set[i] = set[len(set)-1]
			set = set[:len(set)-1]
		} else {
			pt := randSketchPoint(p.Space, src)
			sk.Add(pt)
			set = append(set, pt)
		}
		if op%100 != 99 {
			continue
		}
		want, err := EncodeReference(p, set)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sk.Encode(), want) {
			t.Fatalf("op %d (size %d): incremental quadtree sketch differs from from-scratch build", op, len(set))
		}
	}
}

// TestSketchRemoveAbsent: removing a point whose cell is empty fails
// without corrupting the sketch.
func TestSketchRemoveAbsent(t *testing.T) {
	p := Params{Space: metric.Grid(15, 2, metric.L1), N: 8, K: 2, Seed: 3}
	sk, err := NewSketch(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := sk.Remove(metric.Point{1, 2}); err == nil {
		t.Fatal("remove from empty sketch must fail")
	}
	sk.Add(metric.Point{1, 2})
	want, err := EncodeReference(p, metric.PointSet{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sk.Encode(), want) {
		t.Fatal("sketch corrupted by rejected remove")
	}
}

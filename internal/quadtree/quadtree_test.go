package quadtree

import (
	"math"
	"testing"

	"repro/internal/matching"
	"repro/internal/metric"
	"repro/internal/rng"
	"repro/internal/workload"
)

func TestParamsValidate(t *testing.T) {
	p := Params{Space: metric.Grid(255, 2, metric.L1), N: 10, K: 2}
	p.applyDefaults()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.K = 11
	if err := p.Validate(); err == nil {
		t.Error("k > n accepted")
	}
}

func TestLevelWidthsHalve(t *testing.T) {
	ws := levelWidths(metric.Grid(255, 2, metric.L1))
	if len(ws) < 8 {
		t.Fatalf("only %d levels for Delta=255", len(ws))
	}
	for i := 1; i < len(ws); i++ {
		if math.Abs(ws[i]*2-ws[i-1]) > 1e-9 {
			t.Fatalf("widths not halving: %v", ws)
		}
	}
	if ws[len(ws)-1] < 1 {
		t.Fatalf("finest width %v < 1", ws[len(ws)-1])
	}
}

func TestCellCenterWithinCell(t *testing.T) {
	space := metric.Grid(1023, 3, metric.L1)
	src := rngNew(5)
	g := newGrid(space, 64, src)
	for i := 0; i < 200; i++ {
		p := workload.RandomPoint(space, src)
		_, center := g.cellAndCenter(p)
		if !space.Contains(center) {
			t.Fatalf("center %v outside space", center)
		}
		// Distance from a point to its (unclamped) cell center is at
		// most w/2 per coordinate, so ℓ1 ≤ d·w/2; clamping only helps.
		if d := space.Distance(p, center); d > 3*64/2+1 {
			t.Fatalf("point %v to center %v distance %v", p, center, d)
		}
	}
}

func TestIdenticalSetsCancel(t *testing.T) {
	space := metric.Grid(1023, 2, metric.L1)
	src := rngNew(7)
	sb := workload.RandomSet(space, 30, src)
	p := Params{Space: space, N: 30, K: 3, Seed: 9}
	res, err := Reconcile(p, sb.Clone(), sb)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatal("failed on identical sets")
	}
	// Finest level must decode with zero difference.
	if res.Level != res.Levels {
		t.Errorf("identical sets decoded at level %d of %d", res.Level, res.Levels)
	}
	if got := matching.EMD(space, sb, res.SPrime); got != 0 {
		t.Errorf("EMD = %v on identical sets", got)
	}
}

func TestBaselineReconciles(t *testing.T) {
	space := metric.Grid(4095, 2, metric.L1)
	const n, k = 40, 4
	improved := 0
	const trials = 6
	for trial := 0; trial < trials; trial++ {
		inst := workload.NewEMDInstance(space, n, k, 20, uint64(trial)+50)
		p := Params{Space: space, N: n, K: k, Seed: uint64(trial) + 3}
		res, err := Reconcile(p, inst.SA, inst.SB)
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed {
			continue
		}
		if len(res.SPrime) != n {
			t.Fatalf("|S'B| = %d", len(res.SPrime))
		}
		before := matching.EMD(space, inst.SA, inst.SB)
		after := matching.EMD(space, inst.SA, res.SPrime)
		if after < before {
			improved++
		}
	}
	if improved < trials/2 {
		t.Errorf("baseline improved EMD in only %d/%d trials", improved, trials)
	}
}

// TestQuantizationGrowsWithDimension captures the baseline's weakness
// (the reason the paper exists): with everything else fixed, recovered
// points' quantization error grows with d.
func TestQuantizationGrowsWithDimension(t *testing.T) {
	errAtDim := func(d int) float64 {
		space := metric.Grid(255, d, metric.L1)
		const n, k = 24, 3
		var total float64
		cnt := 0
		for trial := 0; trial < 8; trial++ {
			inst := workload.NewEMDInstance(space, n, k, 0, uint64(trial)+90)
			p := Params{Space: space, N: n, K: k, Seed: uint64(trial) + 7}
			res, err := Reconcile(p, inst.SA, inst.SB)
			if err != nil {
				t.Fatal(err)
			}
			if res.Failed {
				continue
			}
			total += matching.EMD(space, inst.SA, res.SPrime)
			cnt++
		}
		if cnt == 0 {
			t.Fatal("all trials failed")
		}
		return total / float64(cnt)
	}
	e2 := errAtDim(2)
	e16 := errAtDim(16)
	if e16 < e2*2 {
		t.Errorf("quantization error did not grow with d: d=2 → %v, d=16 → %v", e2, e16)
	}
}

func TestSizeMismatch(t *testing.T) {
	space := metric.Grid(255, 2, metric.L1)
	p := Params{Space: space, N: 5, K: 1, Seed: 1}
	src := rngNew(3)
	if _, err := Reconcile(p, workload.RandomSet(space, 5, src), workload.RandomSet(space, 4, src)); err == nil {
		t.Error("size mismatch accepted")
	}
}

func rngNew(seed uint64) *rng.Source { return rng.New(seed) }

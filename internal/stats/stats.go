// Package stats provides the small summary-statistics and table-rendering
// helpers the experiment harness uses to report results in the paper's
// row/series style.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary describes a sample.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Median, Max float64
	P90              float64
}

// Summarize computes a Summary; an empty sample yields the zero value.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs)}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum, sumSq float64
	for _, x := range sorted {
		sum += x
		sumSq += x * x
	}
	n := float64(len(xs))
	s.Mean = sum / n
	variance := sumSq/n - s.Mean*s.Mean
	if variance > 0 {
		s.Std = math.Sqrt(variance)
	}
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.Median = Quantile(sorted, 0.5)
	s.P90 = Quantile(sorted, 0.9)
	return s
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of a sorted sample using
// linear interpolation.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Mean is a convenience wrapper.
func Mean(xs []float64) float64 { return Summarize(xs).Mean }

// Table renders rows with aligned columns for terminal output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; values are formatted with %v, floats compactly.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case float32:
			row[i] = formatFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1000 || (math.Abs(v) < 0.01 && v != 0):
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for pad := len([]rune(c)); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Rows returns the number of data rows (for tests).
func (t *Table) Rows() int { return len(t.rows) }

package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("summary = %+v", s)
	}
	want := math.Sqrt(2)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Errorf("std = %v, want %v", s.Std, want)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if got := Quantile(xs, 0); got != 10 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 40 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); got != 25 {
		t.Errorf("median = %v", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %v", got)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	prop := func(raw []float64, qa, qb float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		sort.Float64s(xs)
		qa = math.Abs(math.Mod(qa, 1))
		qb = math.Abs(math.Mod(qb, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(xs, qa) <= Quantile(xs, qb)+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanBounds(t *testing.T) {
	s := Summarize([]float64{2, 8})
	if s.Mean < s.Min || s.Mean > s.Max {
		t.Error("mean outside [min,max]")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 12345678.0)
	out := tb.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.500") {
		t.Errorf("table output missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, separator, two rows
		t.Errorf("table has %d lines", len(lines))
	}
	if tb.Rows() != 2 {
		t.Errorf("Rows = %d", tb.Rows())
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		3:       "3",
		3.14159: "3.142",
		1e9:     "1000000000",
		0.0001:  "0.0001",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

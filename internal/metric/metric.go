// Package metric models the discretized metric spaces the paper works in.
//
// Throughout the paper (§2) Alice's and Bob's data points lie in a metric
// space (U, f), usually U = [∆]^d under an ℓp norm, or {0,1}^d under
// Hamming distance. Package metric provides the Point type (a vector of
// integer coordinates), the Space descriptor (∆, d, and which norm f is),
// and exact distance computation. It deliberately keeps coordinates as
// integers: the paper's communication bounds count log|U| = d·log ∆ bits
// per point, and integer coordinates make that accounting exact.
package metric

import (
	"fmt"
	"math"
	"strings"
)

// Norm selects the distance function f of the metric space.
type Norm int

const (
	// Hamming counts differing coordinates. On {0,1}^d this is the
	// Hamming metric of Lemma 2.3 and Corollary 3.5; it is also defined
	// on larger alphabets (number of coordinates that differ).
	Hamming Norm = iota
	// L1 is the ℓ1 (Manhattan) norm of Lemma 2.4 and Corollary 4.4.
	L1
	// L2 is the ℓ2 (Euclidean) norm of Lemma 2.5 and Corollary 3.6.
	L2
)

// String returns the conventional name of the norm.
func (n Norm) String() string {
	switch n {
	case Hamming:
		return "hamming"
	case L1:
		return "l1"
	case L2:
		return "l2"
	default:
		return fmt.Sprintf("norm(%d)", int(n))
	}
}

// Point is a point of [∆]^d: a length-d vector with coordinates in
// [0, ∆]. Points are value-ish: functions in this module never mutate a
// Point they receive and never alias one they return unless documented.
type Point []int32

// Clone returns an independent copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q have identical coordinates.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// String renders the point compactly, eliding long vectors.
func (p Point) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range p {
		if i == 8 && len(p) > 10 {
			fmt.Fprintf(&b, "…%d more", len(p)-i)
			break
		}
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	b.WriteByte(')')
	return b.String()
}

// Space describes a discretized metric space ([∆]^d, f).
//
// Delta is the maximum coordinate value (coordinates range over
// 0..Delta inclusive, so the per-dimension alphabet size is Delta+1; the
// paper's ∆). Dim is d. Norm is the distance function f.
type Space struct {
	Delta int32
	Dim   int
	Norm  Norm
}

// HammingCube returns the space ({0,1}^d, Hamming).
func HammingCube(d int) Space { return Space{Delta: 1, Dim: d, Norm: Hamming} }

// Grid returns the space ([∆]^d, norm).
func Grid(delta int32, d int, norm Norm) Space {
	return Space{Delta: delta, Dim: d, Norm: norm}
}

// String identifies the space in experiment output.
func (s Space) String() string {
	return fmt.Sprintf("[%d]^%d,%s", s.Delta, s.Dim, s.Norm)
}

// Validate reports an error if the space parameters are unusable.
func (s Space) Validate() error {
	if s.Delta < 1 {
		return fmt.Errorf("metric: Delta = %d, need >= 1", s.Delta)
	}
	if s.Dim < 1 {
		return fmt.Errorf("metric: Dim = %d, need >= 1", s.Dim)
	}
	switch s.Norm {
	case Hamming, L1, L2:
		return nil
	default:
		return fmt.Errorf("metric: unknown norm %d", int(s.Norm))
	}
}

// Contains reports whether p is a valid point of s.
func (s Space) Contains(p Point) bool {
	if len(p) != s.Dim {
		return false
	}
	for _, v := range p {
		if v < 0 || v > s.Delta {
			return false
		}
	}
	return true
}

// Distance returns f(a, b). It panics if the points' dimensions disagree
// with the space: distance between malformed points is a programming
// error, not a runtime condition to handle.
func (s Space) Distance(a, b Point) float64 {
	if len(a) != s.Dim || len(b) != s.Dim {
		panic(fmt.Sprintf("metric: distance between dim %d and %d points in %s", len(a), len(b), s))
	}
	switch s.Norm {
	case Hamming:
		n := 0
		for i := range a {
			if a[i] != b[i] {
				n++
			}
		}
		return float64(n)
	case L1:
		var sum int64
		for i := range a {
			d := int64(a[i]) - int64(b[i])
			if d < 0 {
				d = -d
			}
			sum += d
		}
		return float64(sum)
	case L2:
		var sum float64
		for i := range a {
			d := float64(a[i]) - float64(b[i])
			sum += d * d
		}
		return math.Sqrt(sum)
	default:
		panic("metric: unknown norm")
	}
}

// Diameter returns the maximum possible distance between two points of s,
// the quantity the paper calls M when no tighter bound is known (§3:
// "we can simply use ... M = d·∆" for ℓ1; √d·∆ for ℓ2; d for Hamming).
func (s Space) Diameter() float64 {
	switch s.Norm {
	case Hamming:
		return float64(s.Dim)
	case L1:
		return float64(s.Dim) * float64(s.Delta)
	case L2:
		return math.Sqrt(float64(s.Dim)) * float64(s.Delta)
	default:
		panic("metric: unknown norm")
	}
}

// BitsPerCoordinate returns ceil(log2(Delta+1)), the exact coding cost of
// one coordinate.
func (s Space) BitsPerCoordinate() int {
	return bitsFor(uint64(s.Delta))
}

// BitsPerPoint returns the coding cost of one point, d·ceil(log2(∆+1)),
// the paper's log|U|.
func (s Space) BitsPerPoint() int {
	return s.Dim * s.BitsPerCoordinate()
}

// bitsFor returns the number of bits needed to represent values 0..max.
func bitsFor(max uint64) int {
	bits := 1
	for max > 1 {
		max >>= 1
		bits++
	}
	return bits
}

// Clamp returns p with every coordinate clamped into [0, Delta]. The
// RIBLT's duplicate-key extraction (§2.2 item 5) shifts averaged values
// back into the space this way.
func (s Space) Clamp(p Point) Point {
	q := p.Clone()
	for i, v := range q {
		if v < 0 {
			q[i] = 0
		} else if v > s.Delta {
			q[i] = s.Delta
		}
	}
	return q
}

// PointSet is a multiset of points. Order carries no meaning; protocols
// that need determinism sort or hash explicitly.
type PointSet []Point

// Clone deep-copies the set.
func (ps PointSet) Clone() PointSet {
	out := make(PointSet, len(ps))
	for i, p := range ps {
		out[i] = p.Clone()
	}
	return out
}

// MinDistanceTo returns the minimum distance from p to any point of ps
// under space s, and the index achieving it. It returns (+Inf, -1) for an
// empty set.
func (ps PointSet) MinDistanceTo(s Space, p Point) (float64, int) {
	best := math.Inf(1)
	arg := -1
	for i, q := range ps {
		if d := s.Distance(p, q); d < best {
			best = d
			arg = i
		}
	}
	return best, arg
}

package metric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormString(t *testing.T) {
	cases := map[Norm]string{Hamming: "hamming", L1: "l1", L2: "l2", Norm(9): "norm(9)"}
	for n, want := range cases {
		if got := n.String(); got != want {
			t.Errorf("Norm(%d).String() = %q, want %q", int(n), got, want)
		}
	}
}

func TestHammingDistance(t *testing.T) {
	s := HammingCube(4)
	cases := []struct {
		a, b Point
		want float64
	}{
		{Point{0, 0, 0, 0}, Point{0, 0, 0, 0}, 0},
		{Point{0, 0, 0, 0}, Point{1, 0, 0, 0}, 1},
		{Point{1, 1, 0, 0}, Point{0, 0, 1, 1}, 4},
		{Point{1, 0, 1, 0}, Point{1, 1, 1, 1}, 2},
	}
	for _, c := range cases {
		if got := s.Distance(c.a, c.b); got != c.want {
			t.Errorf("d(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestL1Distance(t *testing.T) {
	s := Grid(100, 3, L1)
	if got := s.Distance(Point{0, 50, 100}, Point{100, 50, 0}); got != 200 {
		t.Errorf("L1 distance = %v, want 200", got)
	}
}

func TestL2Distance(t *testing.T) {
	s := Grid(100, 2, L2)
	if got := s.Distance(Point{0, 0}, Point{3, 4}); got != 5 {
		t.Errorf("L2 distance = %v, want 5", got)
	}
}

func TestDistancePanicsOnDimMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on dimension mismatch")
		}
	}()
	HammingCube(3).Distance(Point{0, 1}, Point{0, 1, 0})
}

func TestMetricAxiomsProperty(t *testing.T) {
	for _, norm := range []Norm{Hamming, L1, L2} {
		s := Grid(255, 6, norm)
		prop := func(av, bv, cv [6]uint8) bool {
			a, b, c := fromBytes(av), fromBytes(bv), fromBytes(cv)
			dab := s.Distance(a, b)
			dba := s.Distance(b, a)
			dac := s.Distance(a, c)
			dcb := s.Distance(c, b)
			if dab != dba { // symmetry
				return false
			}
			if a.Equal(b) != (dab == 0) { // identity of indiscernibles
				return false
			}
			// triangle inequality with float tolerance for L2
			return dab <= dac+dcb+1e-9
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("norm %v: %v", norm, err)
		}
	}
}

func fromBytes(v [6]uint8) Point {
	p := make(Point, 6)
	for i, x := range v {
		p[i] = int32(x)
	}
	return p
}

func TestValidate(t *testing.T) {
	if err := Grid(10, 3, L1).Validate(); err != nil {
		t.Errorf("valid space rejected: %v", err)
	}
	bad := []Space{
		{Delta: 0, Dim: 3, Norm: L1},
		{Delta: 10, Dim: 0, Norm: L1},
		{Delta: 10, Dim: 3, Norm: Norm(42)},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("invalid space %+v accepted", s)
		}
	}
}

func TestContains(t *testing.T) {
	s := Grid(10, 2, L1)
	if !s.Contains(Point{0, 10}) {
		t.Error("corner point rejected")
	}
	if s.Contains(Point{0, 11}) {
		t.Error("out-of-range coordinate accepted")
	}
	if s.Contains(Point{-1, 0}) {
		t.Error("negative coordinate accepted")
	}
	if s.Contains(Point{1}) {
		t.Error("wrong dimension accepted")
	}
}

func TestDiameter(t *testing.T) {
	if got := HammingCube(16).Diameter(); got != 16 {
		t.Errorf("Hamming diameter = %v", got)
	}
	if got := Grid(10, 3, L1).Diameter(); got != 30 {
		t.Errorf("L1 diameter = %v", got)
	}
	want := math.Sqrt(3) * 10
	if got := Grid(10, 3, L2).Diameter(); math.Abs(got-want) > 1e-12 {
		t.Errorf("L2 diameter = %v, want %v", got, want)
	}
}

func TestBits(t *testing.T) {
	if got := HammingCube(128).BitsPerCoordinate(); got != 1 {
		t.Errorf("bits per bool coordinate = %d", got)
	}
	if got := HammingCube(128).BitsPerPoint(); got != 128 {
		t.Errorf("bits per 128-bit point = %d", got)
	}
	if got := Grid(255, 4, L2).BitsPerCoordinate(); got != 8 {
		t.Errorf("bits for [255] = %d, want 8", got)
	}
	if got := Grid(256, 4, L2).BitsPerCoordinate(); got != 9 {
		t.Errorf("bits for [256] = %d, want 9", got)
	}
}

func TestClamp(t *testing.T) {
	s := Grid(10, 3, L1)
	in := Point{-5, 5, 15}
	got := s.Clamp(in)
	if !got.Equal(Point{0, 5, 10}) {
		t.Errorf("Clamp(%v) = %v", in, got)
	}
	if !in.Equal(Point{-5, 5, 15}) {
		t.Error("Clamp mutated its input")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := Point{1, 2, 3}
	q := p.Clone()
	q[0] = 99
	if p[0] != 1 {
		t.Error("Clone aliases original")
	}
	ps := PointSet{Point{1}, Point{2}}
	ps2 := ps.Clone()
	ps2[0][0] = 50
	if ps[0][0] != 1 {
		t.Error("PointSet.Clone aliases original")
	}
}

func TestMinDistanceTo(t *testing.T) {
	s := Grid(100, 1, L1)
	ps := PointSet{Point{10}, Point{20}, Point{30}}
	d, i := ps.MinDistanceTo(s, Point{22})
	if d != 2 || i != 1 {
		t.Errorf("MinDistanceTo = (%v,%d), want (2,1)", d, i)
	}
	d, i = (PointSet{}).MinDistanceTo(s, Point{0})
	if !math.IsInf(d, 1) || i != -1 {
		t.Errorf("empty set: got (%v,%d)", d, i)
	}
}

func TestPointString(t *testing.T) {
	if got := (Point{1, 2}).String(); got != "(1,2)" {
		t.Errorf("String = %q", got)
	}
	long := make(Point, 20)
	s := long.String()
	if len(s) == 0 || s[0] != '(' {
		t.Errorf("long point string malformed: %q", s)
	}
}

func TestSpaceString(t *testing.T) {
	if got := Grid(7, 3, L2).String(); got != "[7]^3,l2" {
		t.Errorf("Space.String() = %q", got)
	}
}

package lsh

import (
	"math"
	"sync"
	"testing"

	"repro/internal/metric"
	"repro/internal/rng"
)

func TestParamsRho(t *testing.T) {
	p := Params{R1: 1, R2: 10, P1: 0.9, P2: 0.1}
	want := math.Log(0.9) / math.Log(0.1)
	if got := p.Rho(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Rho = %v, want %v", got, want)
	}
}

func TestParamsValidate(t *testing.T) {
	good := Params{R1: 1, R2: 2, P1: 0.9, P2: 0.5}
	if err := good.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := []Params{
		{R1: 2, R2: 1, P1: 0.9, P2: 0.5},
		{R1: 1, R2: 2, P1: 0.5, P2: 0.9},
		{R1: 1, R2: 2, P1: 1.5, P2: 0.5},
		{R1: 1, R2: 2, P1: 0.9, P2: -0.1},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("invalid params %+v accepted", p)
		}
	}
}

func TestMLSHValidate(t *testing.T) {
	space := metric.HammingCube(16)
	m := HammingMLSH(space, 32)
	if err := m.Validate(); err != nil {
		t.Errorf("HammingMLSH invalid: %v", err)
	}
	bad := []MLSH{
		{Family: nil, R: 1, P: 0.5, Alpha: 0.5},
		{Family: m.Family, R: 0, P: 0.5, Alpha: 0.5},
		{Family: m.Family, R: 1, P: 1.5, Alpha: 0.5},
		{Family: m.Family, R: 1, P: 0.5, Alpha: 0},
	}
	for i, mm := range bad {
		if err := mm.Validate(); err == nil {
			t.Errorf("bad MLSH %d accepted", i)
		}
	}
}

// collisionAt measures empirical collision probability for two points at
// the given Hamming distance.
func hammingPair(d, dist int) (metric.Point, metric.Point) {
	a := make(metric.Point, d)
	b := make(metric.Point, d)
	for i := 0; i < dist; i++ {
		b[i] = 1
	}
	return a, b
}

// TestCoordSamplingExactCollision checks the exact collision law
// Pr[h(x)=h(y)] = 1 − f/w that underlies Lemma 2.3.
func TestCoordSamplingExactCollision(t *testing.T) {
	const d = 64
	space := metric.HammingCube(d)
	for _, w := range []float64{64, 128, 256} {
		fam := NewCoordSampling(space, w)
		for _, dist := range []int{0, 1, 8, 32, 64} {
			a, b := hammingPair(d, dist)
			got := EstimateCollision(fam, a, b, 40000, 7)
			want := 1 - float64(dist)/w
			if math.Abs(got-want) > 0.012 {
				t.Errorf("w=%v dist=%d: collision %v, want %v", w, dist, got, want)
			}
		}
	}
}

// TestHammingMLSHSandwich verifies Definition 2.2 empirically for the
// family of Lemma 2.3: p^f ≤ Pr[collision] ≤ p^(αf) for f ≤ r.
func TestHammingMLSHSandwich(t *testing.T) {
	const d = 64
	space := metric.HammingCube(d)
	m := HammingMLSH(space, 128)
	for _, dist := range []int{1, 4, 16, 48, 96} {
		if float64(dist) > float64(d) { // can't realize distance beyond d
			continue
		}
		if float64(dist) > m.R {
			continue
		}
		a, b := hammingPair(d, dist)
		got := EstimateCollision(m.Family, a, b, 60000, 11)
		lower := math.Pow(m.P, float64(dist))
		upper := math.Pow(m.P, m.Alpha*float64(dist))
		const slack = 0.012
		if got < lower-slack || got > upper+slack {
			t.Errorf("dist=%d: collision %v outside [%v, %v]", dist, got, lower, upper)
		}
	}
}

func TestCoordSamplingPanics(t *testing.T) {
	l2 := metric.Grid(10, 4, metric.L2)
	assertPanics(t, "non-Hamming space", func() { NewCoordSampling(l2, 8) })
	assertPanics(t, "w < d", func() { NewCoordSampling(metric.HammingCube(8), 4) })
}

func TestGridL1ExactSelfCollision(t *testing.T) {
	space := metric.Grid(1000, 3, metric.L1)
	fam := NewGridL1(space, 10)
	src := rng.New(3)
	f := fam.Draw(src)
	p := metric.Point{5, 500, 999}
	if f.Hash(p) != f.Hash(p.Clone()) {
		t.Error("equal points hash differently")
	}
}

// TestL1MLSHSandwich verifies the Lemma 2.4 sandwich for the grid family.
func TestL1MLSHSandwich(t *testing.T) {
	space := metric.Grid(10000, 4, metric.L1)
	w := 200.0
	m := L1MLSH(space, w)
	base := metric.Point{100, 100, 100, 100}
	for _, dist := range []float64{1, 10, 50, 120} {
		if dist > m.R {
			continue
		}
		other := base.Clone()
		other[0] += int32(dist) // all displacement in one coordinate
		got := EstimateCollision(m.Family, base, other, 60000, 13)
		lower := math.Pow(m.P, dist)
		upper := math.Pow(m.P, m.Alpha*dist)
		const slack = 0.012
		if got < lower-slack || got > upper+slack {
			t.Errorf("dist=%v: collision %v outside [%v, %v]", dist, got, lower, upper)
		}
	}
	// Spread displacement across coordinates: bound must still hold.
	other := metric.Point{130, 130, 130, 130} // ℓ1 distance 120
	got := EstimateCollision(m.Family, base, other, 60000, 17)
	lower := math.Pow(m.P, 120)
	upper := math.Pow(m.P, m.Alpha*120)
	if got < lower-0.012 || got > upper+0.012 {
		t.Errorf("spread dist=120: collision %v outside [%v, %v]", got, lower, upper)
	}
}

// TestL2MLSHSandwich verifies the Lemma 2.5 sandwich for the p-stable
// family.
func TestL2MLSHSandwich(t *testing.T) {
	space := metric.Grid(10000, 3, metric.L2)
	w := 300.0
	m := L2MLSH(space, w)
	base := metric.Point{500, 500, 500}
	for _, dist := range []float64{10, 60, 150, 290} {
		if dist > m.R {
			continue
		}
		other := base.Clone()
		other[0] += int32(dist)
		got := EstimateCollision(m.Family, base, other, 60000, 19)
		lower := math.Pow(m.P, dist)
		upper := math.Pow(m.P, m.Alpha*dist)
		const slack = 0.015
		if got < lower-slack || got > upper+slack {
			t.Errorf("dist=%v: collision %v outside [%v, %v]", dist, got, lower, upper)
		}
	}
}

// TestOneSidedGridNoFarCollisions checks p2 = 0: points at distance ≥ r2
// never collide.
func TestOneSidedGridNoFarCollisions(t *testing.T) {
	space := metric.Grid(10000, 2, metric.L2)
	r1, r2 := 5.0, 500.0
	g := NewOneSidedGrid(space, r1, r2, 2)
	a := metric.Point{1000, 1000}
	b := metric.Point{1000 + 360, 1000 + 360} // ℓ2 distance ≈ 509 > r2
	if d := space.Distance(a, b); d < r2 {
		t.Fatalf("test points too close: %v", d)
	}
	if got := EstimateCollision(g, a, b, 20000, 23); got != 0 {
		t.Errorf("far points collided with probability %v, want 0", got)
	}
}

// TestOneSidedGridCloseCollision checks p1 ≥ 1 − ρ̂ for close points.
func TestOneSidedGridCloseCollision(t *testing.T) {
	space := metric.Grid(10000, 2, metric.L2)
	r1, r2 := 5.0, 500.0
	g := NewOneSidedGrid(space, r1, r2, 2)
	if math.Abs(g.RhoHat-(r1*2/r2)) > 1e-12 {
		t.Fatalf("RhoHat = %v", g.RhoHat)
	}
	a := metric.Point{1000, 1000}
	b := metric.Point{1003, 1004} // distance 5 = r1
	got := EstimateCollision(g, a, b, 30000, 29)
	if got < 1-g.RhoHat-0.01 {
		t.Errorf("close collision prob %v < 1−ρ̂ = %v", got, 1-g.RhoHat)
	}
}

func TestOneSidedGridPanics(t *testing.T) {
	space := metric.Grid(100, 2, metric.L2)
	assertPanics(t, "r1 >= r2", func() { NewOneSidedGrid(space, 5, 5, 2) })
	assertPanics(t, "r1 <= 0", func() { NewOneSidedGrid(space, 0, 5, 2) })
}

func TestGridPanics(t *testing.T) {
	space := metric.Grid(100, 2, metric.L1)
	assertPanics(t, "zero width grid", func() { NewGridL1(space, 0) })
	assertPanics(t, "zero width pstable", func() { NewPStableL2(space, 0) })
}

func TestHammingParams(t *testing.T) {
	space := metric.HammingCube(100)
	p := HammingParams(space, 5, 50)
	if p.P1 != 0.95 || p.P2 != 0.5 {
		t.Errorf("params = %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}

func TestGridL1Params(t *testing.T) {
	space := metric.Grid(1000, 4, metric.L1)
	p := GridL1Params(space, 10, 40, 20)
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
	// Empirically check both sides of the guarantee.
	fam := NewGridL1(space, 20)
	a := metric.Point{500, 500, 500, 500}
	close := metric.Point{505, 502, 502, 501} // ℓ1 = 10 = r1
	far := metric.Point{510, 510, 510, 510}   // ℓ1 = 40 = r2
	pc := EstimateCollision(fam, a, close, 40000, 31)
	pf := EstimateCollision(fam, a, far, 40000, 37)
	if pc < p.P1-0.01 {
		t.Errorf("close collision %v < p1 %v", pc, p.P1)
	}
	if pf > p.P2+0.01 {
		t.Errorf("far collision %v > p2 %v", pf, p.P2)
	}
}

func TestVectorPrefix(t *testing.T) {
	space := metric.HammingCube(32)
	fam := NewCoordSampling(space, 32)
	v := DrawVector(fam, rng.New(41), 10)
	if v.Len() != 10 {
		t.Fatalf("Len = %d", v.Len())
	}
	p := make(metric.Point, 32)
	full := v.Hash(p)
	if len(full) != 10 {
		t.Fatalf("Hash returned %d values", len(full))
	}
	pre := v.HashPrefix(p, 4)
	for i := range pre {
		if pre[i] != full[i] {
			t.Errorf("prefix value %d differs", i)
		}
	}
	dst := make([]uint64, 10)
	into := v.HashPrefixInto(dst, p, 7)
	if len(into) != 7 {
		t.Fatalf("HashPrefixInto returned %d values", len(into))
	}
	for i := range into {
		if into[i] != full[i] {
			t.Errorf("into value %d differs", i)
		}
	}
	assertPanics(t, "prefix too long", func() { v.HashPrefix(p, 11) })
}

func TestVectorSharedSeedAgreement(t *testing.T) {
	// The whole point of public coins: two parties drawing from the same
	// seed must produce identical functions.
	space := metric.Grid(1000, 3, metric.L2)
	fam := NewPStableL2(space, 50)
	va := DrawVector(fam, rng.New(99), 20)
	vb := DrawVector(fam, rng.New(99), 20)
	src := rng.New(123)
	for trial := 0; trial < 50; trial++ {
		p := metric.Point{int32(src.Intn(1000)), int32(src.Intn(1000)), int32(src.Intn(1000))}
		ha := va.Hash(p)
		hb := vb.Hash(p)
		for i := range ha {
			if ha[i] != hb[i] {
				t.Fatalf("shared-seed vectors disagree at func %d", i)
			}
		}
	}
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", name)
		}
	}()
	f()
}

func BenchmarkCoordSampleHash(b *testing.B) {
	space := metric.HammingCube(256)
	v := DrawVector(NewCoordSampling(space, 512), rng.New(1), 64)
	p := make(metric.Point, 256)
	dst := make([]uint64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.HashPrefixInto(dst, p, 64)
	}
}

func BenchmarkPStableHash(b *testing.B) {
	space := metric.Grid(1<<20, 16, metric.L2)
	v := DrawVector(NewPStableL2(space, 100), rng.New(1), 32)
	p := make(metric.Point, 16)
	dst := make([]uint64, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.HashPrefixInto(dst, p, 32)
	}
}

// TestVectorConcurrentEval locks in the documented contract that a
// drawn Vector is safe for concurrent evaluation: the sharded sketch
// builders evaluate one shared Vector from many goroutines. Run under
// -race this is a real detector, not just a determinism check.
func TestVectorConcurrentEval(t *testing.T) {
	space := metric.HammingCube(64)
	fam := NewCoordSampling(space, 64)
	vec := DrawVector(fam, rng.New(42), 128)
	src := rng.New(43)
	pts := make([]metric.Point, 64)
	for i := range pts {
		pts[i] = workloadPoint(space, src)
	}
	want := make([][]uint64, len(pts))
	for i, p := range pts {
		want[i] = vec.Hash(p)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := make([]uint64, vec.Len())
			for i, p := range pts {
				got := vec.HashPrefixInto(scratch, p, vec.Len())
				for j := range got {
					if got[j] != want[i][j] {
						t.Errorf("concurrent eval diverged at point %d fn %d", i, j)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

func workloadPoint(space metric.Space, src *rng.Source) metric.Point {
	p := make(metric.Point, space.Dim)
	for i := range p {
		p[i] = int32(src.Uint64n(uint64(space.Delta) + 1))
	}
	return p
}

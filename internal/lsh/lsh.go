// Package lsh implements the locality sensitive hash families the paper
// builds on: the classical (r1, r2, p1, p2) notion of Indyk–Motwani
// (Definition 2.1), the paper's multi-scale strengthening (MLSH,
// Definition 2.2), and the concrete families used by its protocols —
// coordinate sampling for Hamming space (Lemma 2.3), randomly shifted
// grids for ℓ1 (Lemma 2.4), p-stable Gaussian projections for ℓ2
// (Lemma 2.5), and the one-sided grid family with p2 = 0 used by the
// low-dimension Gap protocol (Appendix E.1).
package lsh

import (
	"fmt"
	"math"

	"repro/internal/hashx"
	"repro/internal/metric"
	"repro/internal/rng"
)

// Func is one hash function drawn from a family. Implementations must be
// deterministic: the same Func applied to the same point always returns
// the same value (this is what lets Alice and Bob agree on hash values by
// sharing only the randomness that drew the Func).
type Func interface {
	Hash(p metric.Point) uint64
}

// Family is a distribution over hash functions U → V (Definition 2.1's
// H). Draw must consume randomness only from src, so that two parties
// with identical sources draw identical functions.
type Family interface {
	Draw(src *rng.Source) Func
	String() string
}

// Params carries the classical LSH guarantee (Definition 2.1): points
// within R1 collide with probability ≥ P1, points beyond R2 collide with
// probability ≤ P2.
type Params struct {
	R1, R2 float64
	P1, P2 float64
}

// Rho returns ρ = log(1/p1)/log(1/p2), the standard LSH quality
// meta-parameter (§2.1). Smaller is better. For the coordinate-sampling
// family ρ ≈ r1/r2; for p-stable ℓ2 families ρ ≈ (r1/r2)².
func (p Params) Rho() float64 {
	return math.Log(p.P1) / math.Log(p.P2)
}

// Validate reports an error when the parameters do not form a valid LSH
// guarantee.
func (p Params) Validate() error {
	if !(p.R1 < p.R2) {
		return fmt.Errorf("lsh: need r1 < r2, got r1=%v r2=%v", p.R1, p.R2)
	}
	if !(p.P1 > p.P2) {
		return fmt.Errorf("lsh: need p1 > p2, got p1=%v p2=%v", p.P1, p.P2)
	}
	if p.P1 <= 0 || p.P1 > 1 || p.P2 < 0 || p.P2 >= 1 {
		return fmt.Errorf("lsh: probabilities out of range: p1=%v p2=%v", p.P1, p.P2)
	}
	return nil
}

// MLSH is a multi-scale locality sensitive hash family (Definition 2.2):
// for any points x, y,
//
//	Pr[h(x)=h(y)] ≤ P^(Alpha·f(x,y)),  and
//	f(x,y) ≤ R  ⇒  Pr[h(x)=h(y)] ≥ P^f(x,y).
//
// The collision probability thus degrades gracefully (exponentially) with
// distance at every scale up to R, which is what lets Algorithm 1 probe
// geometrically finer resolutions by concatenating more functions.
type MLSH struct {
	Family Family
	R      float64 // validity radius of the lower bound
	P      float64 // base of the collision-probability envelope, in (0,1)
	Alpha  float64 // upper-envelope exponent scale, in (0,1)
}

// Validate reports an error when the MLSH parameters are out of range.
func (m MLSH) Validate() error {
	if m.Family == nil {
		return fmt.Errorf("lsh: MLSH with nil family")
	}
	if m.R <= 0 {
		return fmt.Errorf("lsh: MLSH radius R = %v, need > 0", m.R)
	}
	if m.P <= 0 || m.P >= 1 {
		return fmt.Errorf("lsh: MLSH base P = %v, need in (0,1)", m.P)
	}
	if m.Alpha <= 0 || m.Alpha >= 1 {
		return fmt.Errorf("lsh: MLSH alpha = %v, need in (0,1)", m.Alpha)
	}
	return nil
}

// String describes the family with its parameters.
func (m MLSH) String() string {
	return fmt.Sprintf("MLSH(%s, r=%.3g, p=%.6g, α=%.3g)", m.Family, m.R, m.P, m.Alpha)
}

// ---------------------------------------------------------------------------
// Coordinate sampling for Hamming space (Lemma 2.3).

// coordSample is the padded coordinate-sampling family: with probability
// d/w it reveals one uniformly chosen coordinate, with probability 1−d/w
// it is the constant 0 function. This realizes the padding construction
// in the footnote of §2.1: collision probability between points at
// Hamming distance f is exactly 1 − f/w.
type coordSample struct {
	dim int
	w   float64
}

type coordSampleFunc struct {
	idx int // −1 means constant function
}

func (f coordSampleFunc) Hash(p metric.Point) uint64 {
	if f.idx < 0 {
		return 0
	}
	// Offset by 1 so an active function sampling value 0 cannot be
	// confused with the constant function's output when values are
	// compared across differently drawn functions (the analysis only
	// compares outputs of the *same* draw, but distinct outputs keep
	// key hashing honest).
	return uint64(uint32(p[f.idx])) + 1
}

// NewCoordSampling returns the coordinate-sampling family over a
// Hamming-normed space with padding width w ≥ d.
func NewCoordSampling(space metric.Space, w float64) Family {
	if space.Norm != metric.Hamming {
		panic("lsh: coordinate sampling requires a Hamming-normed space")
	}
	if w < float64(space.Dim) {
		panic(fmt.Sprintf("lsh: padding width w=%v < d=%d", w, space.Dim))
	}
	return coordSample{dim: space.Dim, w: w}
}

func (c coordSample) Draw(src *rng.Source) Func {
	if src.Float64() < float64(c.dim)/c.w {
		return coordSampleFunc{idx: src.Intn(c.dim)}
	}
	return coordSampleFunc{idx: -1}
}

func (c coordSample) String() string {
	return fmt.Sprintf("coord-sample(d=%d,w=%g)", c.dim, c.w)
}

// HammingMLSH returns the MLSH family of Lemma 2.3: for any w ≥ d,
// coordinate sampling with padding w is an MLSH with parameters
// (0.79·w, e^(−2/w), 1/2).
func HammingMLSH(space metric.Space, w float64) MLSH {
	return MLSH{
		Family: NewCoordSampling(space, w),
		R:      0.79 * w,
		P:      math.Exp(-2 / w),
		Alpha:  0.5,
	}
}

// ---------------------------------------------------------------------------
// Randomly shifted orthogonal grid for ℓ1 (Lemma 2.4).

// gridL1 rounds points to a randomly shifted orthogonal lattice of width
// w; the hash value identifies the lattice cell. Collision probability
// for ||x−y||1 ≤ w is ∏_i (1 − |x_i−y_i|/w), sandwiched by the Lemma 2.4
// bounds.
type gridL1 struct {
	dim int
	w   float64
}

type gridL1Func struct {
	shifts []float64
	w      float64
	mix    hashx.Mixer
}

func (f gridL1Func) Hash(p metric.Point) uint64 {
	h := f.mix.Hash(uint64(len(p)))
	for i, x := range p {
		cell := int64(math.Floor((float64(x) + f.shifts[i]) / f.w))
		h = f.mix.Hash(h ^ uint64(cell) ^ uint64(i)<<48)
	}
	return h
}

// NewGridL1 returns the randomly-shifted-grid family with cell width w.
func NewGridL1(space metric.Space, w float64) Family {
	if w <= 0 {
		panic("lsh: grid width must be positive")
	}
	return gridL1{dim: space.Dim, w: w}
}

func (g gridL1) Draw(src *rng.Source) Func {
	shifts := make([]float64, g.dim)
	for i := range shifts {
		shifts[i] = src.Float64() * g.w
	}
	return gridL1Func{shifts: shifts, w: g.w, mix: hashx.NewMixer(src)}
}

func (g gridL1) String() string {
	return fmt.Sprintf("grid-l1(d=%d,w=%g)", g.dim, g.w)
}

// L1MLSH returns the MLSH family of Lemma 2.4: for any w > 0, the
// randomly shifted grid of width w is an MLSH for ([∆]^d, ℓ1) with
// parameters (0.79·w, e^(−2/w), 1/2).
func L1MLSH(space metric.Space, w float64) MLSH {
	return MLSH{
		Family: NewGridL1(space, w),
		R:      0.79 * w,
		P:      math.Exp(-2 / w),
		Alpha:  0.5,
	}
}

// ---------------------------------------------------------------------------
// p-stable (Gaussian) projection for ℓ2 (Lemma 2.5, following [8]).

type pStableL2 struct {
	dim int
	w   float64
}

type pStableL2Func struct {
	dirs []float64
	a    float64
	w    float64
}

func (f pStableL2Func) Hash(p metric.Point) uint64 {
	dot := f.a
	for i, x := range p {
		dot += f.dirs[i] * float64(x)
	}
	cell := int64(math.Floor(dot / f.w))
	// Zigzag so negative cells map to distinct uint64 values.
	return uint64(cell<<1) ^ uint64(cell>>63)
}

// NewPStableL2 returns the Datar–Immorlica–Indyk–Mirrokni p-stable family
// for ℓ2 with window w: project on a Gaussian direction, shift uniformly,
// round to width-w intervals.
func NewPStableL2(space metric.Space, w float64) Family {
	if w <= 0 {
		panic("lsh: p-stable window must be positive")
	}
	return pStableL2{dim: space.Dim, w: w}
}

func (g pStableL2) Draw(src *rng.Source) Func {
	dirs := make([]float64, g.dim)
	for i := range dirs {
		dirs[i] = src.NormFloat64()
	}
	return pStableL2Func{dirs: dirs, a: src.Float64() * g.w, w: g.w}
}

func (g pStableL2) String() string {
	return fmt.Sprintf("p-stable-l2(d=%d,w=%g)", g.dim, g.w)
}

// L2MLSH returns the MLSH family of Lemma 2.5: for any w > 0, the
// p-stable scheme with window w is an MLSH for ([∆]^d, ℓ2) with
// parameters (0.99·w, e^(−2√(2/π)/w), 1/(4√2)).
func L2MLSH(space metric.Space, w float64) MLSH {
	return MLSH{
		Family: NewPStableL2(space, w),
		R:      0.99 * w,
		P:      math.Exp(-2 * math.Sqrt(2/math.Pi) / w),
		Alpha:  1 / (4 * math.Sqrt2),
	}
}

// ---------------------------------------------------------------------------
// One-sided grid family (Appendix E.1): p2 = 0.

// OneSidedGrid is the special family used by Theorem 4.5: a randomly
// shifted orthogonal grid of width r2/d^(1/p) in ([∆]^d, ℓp). Two points
// in the same cell are at ℓp distance < r2 with certainty (so p2 = 0),
// and points within r1 collide with probability ≥ 1 − r1·d/r2 = 1 − ρ̂.
type OneSidedGrid struct {
	dim   int
	width float64
	// RhoHat is ρ̂ = r1·d/r2, the per-function miss probability bound.
	RhoHat float64
}

// NewOneSidedGrid builds the family for ([∆]^d, ℓp) with the given
// r1 < r2 and norm exponent pExp ≥ 1.
func NewOneSidedGrid(space metric.Space, r1, r2, pExp float64) OneSidedGrid {
	if !(r1 < r2) || r1 <= 0 {
		panic("lsh: one-sided grid needs 0 < r1 < r2")
	}
	d := float64(space.Dim)
	return OneSidedGrid{
		dim:    space.Dim,
		width:  r2 / math.Pow(d, 1/pExp),
		RhoHat: r1 * d / r2,
	}
}

// Draw implements Family.
func (g OneSidedGrid) Draw(src *rng.Source) Func {
	shifts := make([]float64, g.dim)
	for i := range shifts {
		shifts[i] = src.Float64() * g.width
	}
	return gridL1Func{shifts: shifts, w: g.width, mix: hashx.NewMixer(src)}
}

// String implements Family.
func (g OneSidedGrid) String() string {
	return fmt.Sprintf("one-sided-grid(d=%d,w=%g)", g.dim, g.width)
}

// ---------------------------------------------------------------------------
// Classical parameterizations for the Gap protocol.

// HammingParams returns the (r1, r2, p1, p2) guarantee of coordinate
// sampling (no padding) on a Hamming space of dimension d: collision
// probability at distance f is exactly 1 − f/d.
func HammingParams(space metric.Space, r1, r2 float64) Params {
	d := float64(space.Dim)
	return Params{R1: r1, R2: r2, P1: 1 - r1/d, P2: 1 - r2/d}
}

// GridL1Params returns a conservative (r1, r2, p1, p2) guarantee for the
// randomly shifted grid of width w on ([∆]^d, ℓ1): at distance f the
// collision probability lies in [1−f/w, e^(−f/w)], so p1 = 1−r1/w and
// p2 = e^(−r2/w) (valid for r1 ≤ w).
func GridL1Params(space metric.Space, r1, r2, w float64) Params {
	return Params{R1: r1, R2: r2, P1: 1 - r1/w, P2: math.Exp(-r2 / w)}
}

// ---------------------------------------------------------------------------
// Vectors of drawn functions.

// Vector is an ordered list of functions drawn from one family. The EMD
// protocol hashes each point with a *prefix* of the vector whose length
// grows with the resolution level, so prefix evaluation is the primitive.
//
// A Vector is immutable after DrawVector, and drawn Funcs are pure, so
// concurrent evaluation from many goroutines is safe — the sharded
// sketch builders (emd, gap) rely on this to spread key evaluation
// across point blocks.
type Vector struct {
	funcs []Func
}

// DrawVector draws n functions from family using src.
func DrawVector(family Family, src *rng.Source, n int) *Vector {
	fs := make([]Func, n)
	for i := range fs {
		fs[i] = family.Draw(src)
	}
	return &Vector{funcs: fs}
}

// Len returns the number of drawn functions.
func (v *Vector) Len() int { return len(v.funcs) }

// Hash evaluates all functions on p.
func (v *Vector) Hash(p metric.Point) []uint64 {
	return v.HashPrefix(p, len(v.funcs))
}

// HashPrefix evaluates the first n functions on p. It panics if n exceeds
// the vector length.
func (v *Vector) HashPrefix(p metric.Point, n int) []uint64 {
	if n > len(v.funcs) {
		panic(fmt.Sprintf("lsh: prefix %d exceeds vector length %d", n, len(v.funcs)))
	}
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = v.funcs[i].Hash(p)
	}
	return out
}

// HashPrefixInto evaluates the first n functions into dst (which must
// have length ≥ n) and returns dst[:n]. This avoids per-point allocation
// in the protocols' hot loops.
func (v *Vector) HashPrefixInto(dst []uint64, p metric.Point, n int) []uint64 {
	for i := 0; i < n; i++ {
		dst[i] = v.funcs[i].Hash(p)
	}
	return dst[:n]
}

// ---------------------------------------------------------------------------
// Empirical collision measurement (used by tests and experiment E2).

// EstimateCollision draws `trials` functions from family (seeded by seed)
// and returns the fraction under which a and b collide.
func EstimateCollision(family Family, a, b metric.Point, trials int, seed uint64) float64 {
	src := rng.New(seed)
	coll := 0
	for i := 0; i < trials; i++ {
		f := family.Draw(src)
		if f.Hash(a) == f.Hash(b) {
			coll++
		}
	}
	return float64(coll) / float64(trials)
}

package lsh

import (
	"testing"

	"repro/internal/metric"
	"repro/internal/rng"
)

// BenchmarkVectorHashPrefixInto measures one full MLSH key-vector
// evaluation — the per-mutation cost a live set pays on every
// Add/Remove (internal/live maintains the EMD sketch by evaluating all
// s drawn functions once per churned point). Kept in the CI bench
// artifact so regressions in the mutation hot path are visible.
func BenchmarkVectorHashPrefixInto(b *testing.B) {
	space := metric.HammingCube(128)
	m := HammingMLSH(space, float64(space.Dim))
	src := rng.New(3)
	const s = 96 // typical draw count for the demo parameterization
	v := DrawVector(m.Family, src, s)
	pt := make(metric.Point, space.Dim)
	for i := range pt {
		pt[i] = int32(src.Uint64() % 2)
	}
	scratch := make([]uint64, s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.HashPrefixInto(scratch, pt, s)
	}
}

// Package riblt implements the paper's Robust Invertible Bloom Lookup
// Table (§2.2), the novel data structure behind the EMD protocol
// (Algorithm 1). An RIBLT stores (key, value) pairs where keys are short
// hashes (a point's locality-sensitive fingerprint) and values are the
// points themselves. It differs from a classic IBLT in five ways, all
// implemented here exactly as the paper prescribes:
//
//  1. Peeling proceeds breadth-first, first-come first-served.
//  2. The table is sparser: the load must satisfy c < 1/(q(q−1)), so the
//     underlying hypergraph is trees and unicyclic components whp.
//  3. Cells hold *sums* of keys and key checksums rather than XORs.
//  4. Cells hold coordinate-wise sums of values (points in
//     {−n∆,…,n∆}^d).
//  5. A cell is peelable whenever its contents are C net copies of one
//     key: count C ≠ 0, key sum divisible by C, and checksum sum equal
//     to C times the checksum of the quotient key. Extraction averages
//     the value sum over C, clamps into [0,∆]^d, and randomly rounds
//     fractional coordinates (unbiased), so extracted values always lie
//     in the original space.
//
// Because unequal values under equal keys cancel only partially, peeling
// leaves and propagates value error; the whole point of the design (and
// of the paper's Lemma 3.10 analysis) is that with the sparsity of
// item 2 and the order of item 1, each error is added to O(1) extracted
// values in expectation.
package riblt

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/hashx"
	"repro/internal/metric"
	"repro/internal/rng"
	"repro/internal/transport"
)

// PeelOrder selects the traversal order of the peeling process. The paper
// requires breadth-first (item 1); LIFO is provided only as an ablation
// to demonstrate why (see the riblt tests and bench E3).
type PeelOrder int

const (
	// BFS peels first-come first-served, as the paper requires.
	BFS PeelOrder = iota
	// LIFO peels most-recently-discovered first (ablation only).
	LIFO
)

// Config fixes the geometry of a table. Both parties must use identical
// configs (including Seed) for their tables to align.
type Config struct {
	// Cells is the number of cells m. Algorithm 1 uses m = 4q²k.
	Cells int
	// Q is the number of cell hashes per key (q ≥ 3 in Algorithm 1).
	Q int
	// Dim and Delta describe the value space [∆]^d.
	Dim   int
	Delta int32
	// KeyBits bounds the width of keys; keys must fit so that sums of
	// up to MaxItems keys cannot overflow an int64. Algorithm 1 keys are
	// Θ(log n)-bit pairwise hashes, so 40 bits is ample.
	KeyBits uint
	// MaxItems is an upper bound on insertions plus deletions, used only
	// to verify that sums cannot overflow.
	MaxItems int
	// Seed derives the cell-index hashes and the checksum function.
	Seed uint64
	// Order is the peel order; zero value is the paper's BFS.
	Order PeelOrder
}

// Validate reports an error for unusable configurations, including any
// combination that could overflow a cell's int64 sums.
func (c Config) Validate() error {
	if c.Cells < c.Q || c.Q < 2 {
		return fmt.Errorf("riblt: need cells >= q >= 2, got m=%d q=%d", c.Cells, c.Q)
	}
	if c.Dim < 1 || c.Delta < 1 {
		return fmt.Errorf("riblt: bad value space [%d]^%d", c.Delta, c.Dim)
	}
	if c.KeyBits < 1 || c.KeyBits > 48 {
		return fmt.Errorf("riblt: KeyBits = %d, need in [1,48]", c.KeyBits)
	}
	if c.MaxItems < 1 {
		return fmt.Errorf("riblt: MaxItems = %d", c.MaxItems)
	}
	// Key sums: MaxItems · 2^KeyBits must stay below 2^62 (sign + slack).
	if bitsOf(uint64(c.MaxItems))+int(c.KeyBits) > 62 {
		return fmt.Errorf("riblt: MaxItems %d with %d-bit keys can overflow key sums", c.MaxItems, c.KeyBits)
	}
	// Value sums: MaxItems · Delta must stay below 2^62.
	if bitsOf(uint64(c.MaxItems))+bitsOf(uint64(c.Delta)) > 62 {
		return fmt.Errorf("riblt: MaxItems %d with Delta %d can overflow value sums", c.MaxItems, c.Delta)
	}
	return nil
}

func bitsOf(v uint64) int {
	n := 0
	for v > 0 {
		v >>= 1
		n++
	}
	return n
}

// checkBits is the width of summed checksums. 40 bits keeps false
// positive peels below 2^-40 per test while leaving headroom for sums of
// 2^22 items in an int64.
const checkBits = 40

// Pair is one recovered (key, value) pair.
type Pair struct {
	Key   uint64
	Value metric.Point
}

// cell is one bucket: net count, summed keys, summed checksums, and
// coordinate-wise summed values.
type cell struct {
	count    int64
	keySum   int64
	checkSum int64
	valSum   []int64
}

func (c *cell) empty() bool {
	return c.count == 0 && c.keySum == 0 && c.checkSum == 0
}

// Table is a Robust IBLT. Cell value sums live in one flat backing
// array (vals), with each cell's valSum a view into it — one allocation
// per table rather than one per cell, and cache-friendly cell-wise
// merges.
type Table struct {
	cfg       Config
	cellsPerQ int
	cells     []cell
	vals      []int64   // flat backing of all valSum views
	mem       *tableMem // pool ticket for cells/vals
	idx       []hashx.Mixer
	check     hashx.Mixer
	items     int // inserts + deletes, for the overflow guard
}

// tableMem is the poolable bulk memory of a table. Shard builders and
// decode paths construct and discard tables at protocol rate, so the two
// big arrays are recycled through a pool; New zeroes exactly the portion
// it hands out.
type tableMem struct {
	cells []cell
	vals  []int64
}

var tableMemPool = sync.Pool{New: func() any { return new(tableMem) }}

// newArrays returns zeroed cell and value arrays of the requested sizes,
// reusing pooled capacity when available.
func newArrays(nCells, nVals int) ([]cell, []int64, *tableMem) {
	m := tableMemPool.Get().(*tableMem)
	if cap(m.cells) < nCells {
		m.cells = make([]cell, nCells)
	}
	if cap(m.vals) < nVals {
		m.vals = make([]int64, nVals)
	}
	cells, vals := m.cells[:nCells], m.vals[:nVals]
	clear(cells)
	clear(vals)
	return cells, vals, m
}

// Release returns the table's bulk memory to the pool. Only the sole
// owner may call it, after which the table must not be used again (Peel
// outputs are fresh allocations and stay valid). Releasing is optional;
// unreleased tables are simply garbage collected.
func (t *Table) Release() {
	m := t.mem
	if m == nil {
		return
	}
	m.cells, m.vals = t.cells[:0], t.vals[:0]
	t.cells, t.vals, t.mem = nil, nil, nil
	tableMemPool.Put(m)
}

// New builds an empty table. It panics on an invalid config: geometry is
// fixed at construction by protocol parameters, so a bad config is a
// programming error.
func New(cfg Config) *Table {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	src := rng.New(cfg.Seed)
	idx := make([]hashx.Mixer, cfg.Q)
	for i := range idx {
		idx[i] = hashx.NewMixer(src)
	}
	cellsPerQ := (cfg.Cells + cfg.Q - 1) / cfg.Q
	n := cellsPerQ * cfg.Q
	cells, vals, mem := newArrays(n, n*cfg.Dim)
	for i := range cells {
		cells[i].valSum = vals[i*cfg.Dim : (i+1)*cfg.Dim : (i+1)*cfg.Dim]
	}
	return &Table{
		cfg:       cfg,
		cellsPerQ: cellsPerQ,
		cells:     cells,
		vals:      vals,
		mem:       mem,
		idx:       idx,
		check:     hashx.NewMixer(src),
	}
}

// Cells returns the number of cells.
func (t *Table) Cells() int { return len(t.cells) }

// Config returns the table's configuration.
func (t *Table) Config() Config { return t.cfg }

func (t *Table) cellOf(key uint64, j int) int {
	return j*t.cellsPerQ + int(t.idx[j].Hash(key)%uint64(t.cellsPerQ))
}

func (t *Table) checksum(key uint64) int64 {
	return int64(t.check.Hash(key) & (1<<checkBits - 1))
}

// Insert adds a key-value pair (Alice's side in Algorithm 1).
func (t *Table) Insert(key uint64, val metric.Point) { t.update(key, val, 1) }

// Delete removes a key-value pair (Bob's side). The pair need not have
// been inserted; un-canceled deletions surface as negative-count
// recoveries.
func (t *Table) Delete(key uint64, val metric.Point) { t.update(key, val, -1) }

func (t *Table) update(key uint64, val metric.Point, dir int64) {
	if key >= 1<<t.cfg.KeyBits {
		panic(fmt.Sprintf("riblt: key %#x exceeds %d bits", key, t.cfg.KeyBits))
	}
	if len(val) != t.cfg.Dim {
		panic(fmt.Sprintf("riblt: value dim %d, table dim %d", len(val), t.cfg.Dim))
	}
	t.items++
	if t.items > t.cfg.MaxItems {
		panic(fmt.Sprintf("riblt: %d items exceed MaxItems %d", t.items, t.cfg.MaxItems))
	}
	for j := 0; j < t.cfg.Q; j++ {
		c := &t.cells[t.cellOf(key, j)]
		c.count += dir
		c.keySum += dir * int64(key)
		c.checkSum += dir * t.checksum(key)
		for i, v := range val {
			c.valSum[i] += dir * int64(v)
		}
	}
}

// Retract cancels one previous Insert of the same (key, value) pair:
// the cell updates are exactly Delete's, but the item accounting credits
// the pair back, so a long-lived incrementally maintained table (insert,
// retract, insert, …) is bounded by its *live* contents rather than its
// mutation history. After Retract the cells are field-identical to a
// table that never saw the pair — this is what makes incremental sketch
// maintenance bit-identical on the wire to a from-scratch build.
func (t *Table) Retract(key uint64, val metric.Point) {
	if t.items < 1 {
		panic("riblt: Retract on table with no items")
	}
	// Pre-credit both the original insert and this cancellation before
	// update's items++ so the MaxItems guard never sees a transient
	// overshoot at full capacity.
	t.items -= 2
	t.update(key, val, -1)
}

// Items returns the table's net item accounting (inserts plus deletes,
// minus retracted pairs).
func (t *Table) Items() int { return t.items }

// CellIndices appends to buf the q cell indices key maps to and returns
// the extended slice. The indices are the ones Insert/Delete/Retract
// touch, in hash order — incremental maintainers use them to journal
// churned cells for delta synchronization.
func (t *Table) CellIndices(key uint64, buf []int) []int {
	for j := 0; j < t.cfg.Q; j++ {
		buf = append(buf, t.cellOf(key, j))
	}
	return buf
}

// Clone deep-copies the table, including value sums. The index hashes
// are immutable after New and shared.
func (t *Table) Clone() *Table {
	c := *t
	cells, vals, mem := newArrays(len(t.cells), len(t.vals))
	copy(vals, t.vals)
	dim := t.cfg.Dim
	for i := range cells {
		cells[i] = t.cells[i]
		cells[i].valSum = vals[i*dim : (i+1)*dim : (i+1)*dim]
	}
	c.cells, c.vals, c.mem = cells, vals, mem
	return &c
}

// Merge adds other's cells into t, as if every pair inserted (or
// deleted) in other had been applied to t directly. The tables must
// share one Config. Because every cell field is a sum, merging commutes
// with insertion order: per-shard tables built over point blocks and
// merged are field-identical — and therefore bit-identical on the wire —
// to a sequentially built table. The combined item count still honors
// MaxItems, so the overflow guarantees of Config.Validate hold.
func (t *Table) Merge(other *Table) error {
	if t.cfg != other.cfg {
		return fmt.Errorf("riblt: merge config mismatch: %+v vs %+v", t.cfg, other.cfg)
	}
	if t.items+other.items > t.cfg.MaxItems {
		return fmt.Errorf("riblt: merged %d items exceed MaxItems %d",
			t.items+other.items, t.cfg.MaxItems)
	}
	t.items += other.items
	for i := range t.cells {
		dst, src := &t.cells[i], &other.cells[i]
		dst.count += src.count
		dst.keySum += src.keySum
		dst.checkSum += src.checkSum
	}
	// Value sums merge over the flat backings — one cache-friendly pass
	// instead of a short loop per cell.
	for i, v := range other.vals {
		t.vals[i] += v
	}
	return nil
}

// peelable reports whether the cell currently holds C net copies of one
// key, returning that key and C. This is the §2.2 item 5 test: count
// nonzero, key sum divisible by count, checksum sum equal to count times
// the checksum of the quotient.
func (t *Table) peelable(c *cell) (key uint64, count int64, ok bool) {
	if c.count == 0 {
		return 0, 0, false
	}
	if c.keySum%c.count != 0 {
		return 0, 0, false
	}
	k := c.keySum / c.count
	if k < 0 || k >= 1<<t.cfg.KeyBits {
		return 0, 0, false
	}
	if t.checksum(uint64(k))*c.count != c.checkSum {
		return 0, 0, false
	}
	return uint64(k), c.count, true
}

// Result is the outcome of peeling a table that held Alice-inserted and
// Bob-deleted pairs.
type Result struct {
	// Inserted holds pairs recovered with positive net count (Alice's
	// un-canceled pairs, the paper's XA).
	Inserted []Pair
	// Deleted holds pairs recovered with negative net count (Bob's
	// un-canceled pairs, the paper's XB).
	Deleted []Pair
	// Peels counts peeling steps (cells extracted), for the error
	// propagation experiments.
	Peels int
}

// ErrStalled is returned when peeling stops before all counts reach
// zero: the difference hypergraph has a 2-core, or mixed-key cells never
// became pure.
var ErrStalled = errors.New("riblt: peeling stalled")

// Peel inverts the table using the configured order. Random rounding of
// averaged values consumes from src (the decoder's private randomness —
// it does not need to be shared). Peel consumes the table; value-only
// residue (count 0, key 0, checksum 0, nonzero value sum) is expected
// and does not count as failure — it is exactly the error left behind by
// close-but-unequal pairs whose keys canceled (Figure 1).
func (t *Table) Peel(src *rng.Source) (Result, error) {
	var res Result
	queue := make([]int, 0, len(t.cells))
	inQueue := make([]bool, len(t.cells))
	for i := range t.cells {
		if _, _, ok := t.peelable(&t.cells[i]); ok {
			queue = append(queue, i)
			inQueue[i] = true
		}
	}
	// Per-peel scratch, reused across extractions: the clamped average
	// and the snapshot of the extracted cell's contents.
	avg := make([]float64, t.cfg.Dim)
	snapVal := make([]int64, t.cfg.Dim)
	for len(queue) > 0 {
		var i int
		switch t.cfg.Order {
		case LIFO:
			i = queue[len(queue)-1]
			queue = queue[:len(queue)-1]
		default: // BFS, the paper's order
			i = queue[0]
			queue = queue[1:]
		}
		inQueue[i] = false
		c := &t.cells[i]
		key, count, ok := t.peelable(c)
		if !ok {
			continue // cell changed since enqueued
		}
		res.Peels++
		// Extract |count| pairs. Each pair's value is independently the
		// randomized rounding of the clamped average V/C (§2.2 item 5).
		n := count
		if n < 0 {
			n = -n
		}
		for d := 0; d < t.cfg.Dim; d++ {
			avg[d] = float64(c.valSum[d]) / float64(count)
		}
		for copyIdx := int64(0); copyIdx < n; copyIdx++ {
			val := roundClamped(avg, t.cfg.Delta, src)
			if count > 0 {
				res.Inserted = append(res.Inserted, Pair{Key: key, Value: val})
			} else {
				res.Deleted = append(res.Deleted, Pair{Key: key, Value: val})
			}
		}
		// Subtract the full cell contents — count, key sum, checksum
		// sum, AND value sum including any accumulated error — from
		// every cell the key maps to. Propagating the error is the
		// paper's mechanism (Figure 1); zeroing only this cell would be
		// a different (incorrect) data structure.
		snapCount, snapKey, snapCheck := c.count, c.keySum, c.checkSum
		copy(snapVal, c.valSum)
		for j := 0; j < t.cfg.Q; j++ {
			ci := t.cellOf(key, j)
			cc := &t.cells[ci]
			cc.count -= snapCount
			cc.keySum -= snapKey
			cc.checkSum -= snapCheck
			for d := range cc.valSum {
				cc.valSum[d] -= snapVal[d]
			}
			if _, _, ok := t.peelable(cc); ok && !inQueue[ci] {
				queue = append(queue, ci)
				inQueue[ci] = true
			}
		}
	}
	for i := range t.cells {
		if !t.cells[i].empty() {
			return res, ErrStalled
		}
	}
	return res, nil
}

// roundClamped clamps avg into [0, Delta] per coordinate and randomly
// rounds fractional coordinates up with probability equal to the
// fractional part — the unbiased rounding of §2.2 item 5.
func roundClamped(avg []float64, delta int32, src *rng.Source) metric.Point {
	out := make(metric.Point, len(avg))
	for i, v := range avg {
		if v < 0 {
			v = 0
		} else if v > float64(delta) {
			v = float64(delta)
		}
		fl := int32(v)
		frac := v - float64(fl)
		if frac > 0 && src.Float64() < frac {
			fl++
		}
		if fl > delta { // guard fl == delta with frac rounding up
			fl = delta
		}
		out[i] = fl
	}
	return out
}

// Encode serializes the table's cells. Counts, key sums, checksum sums
// and value sums are all varint-coded: in a reconciliation most cells are
// fully canceled, so the wire size tracks the difference, matching the
// paper's accounting of O(log(∆·n)) bits per occupied coordinate.
func (t *Table) Encode(e *transport.Encoder) {
	e.WriteUvarint(uint64(t.cfg.Cells))
	e.WriteUvarint(uint64(t.cfg.Q))
	for i := range t.cells {
		c := &t.cells[i]
		e.WriteVarint(c.count)
		e.WriteVarint(c.keySum)
		e.WriteVarint(c.checkSum)
		for _, v := range c.valSum {
			e.WriteVarint(v)
		}
	}
}

// DecodeFrom reconstructs a table from the wire. cfg must match the
// sender's config (protocols fix it from shared parameters).
func DecodeFrom(d *transport.Decoder, cfg Config) (*Table, error) {
	cells, err := d.ReadUvarint()
	if err != nil {
		return nil, err
	}
	q, err := d.ReadUvarint()
	if err != nil {
		return nil, err
	}
	if int(cells) != cfg.Cells || int(q) != cfg.Q {
		return nil, fmt.Errorf("riblt: wire geometry m=%d q=%d, expected m=%d q=%d",
			cells, q, cfg.Cells, cfg.Q)
	}
	t := New(cfg)
	for i := range t.cells {
		c := &t.cells[i]
		if c.count, err = d.ReadVarint(); err != nil {
			return nil, err
		}
		if c.keySum, err = d.ReadVarint(); err != nil {
			return nil, err
		}
		if c.checkSum, err = d.ReadVarint(); err != nil {
			return nil, err
		}
		for j := range c.valSum {
			if c.valSum[j], err = d.ReadVarint(); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

// EncodeCellAt serializes cell i alone (same varint layout as Encode
// uses per cell). Delta synchronization ships only churned cells this
// way: absolute field values, so applying a patch is idempotent and
// independent of how many mutations produced it.
func (t *Table) EncodeCellAt(i int, e *transport.Encoder) {
	c := &t.cells[i]
	e.WriteVarint(c.count)
	e.WriteVarint(c.keySum)
	e.WriteVarint(c.checkSum)
	for _, v := range c.valSum {
		e.WriteVarint(v)
	}
}

// PatchCellAt overwrites cell i with fields read from d (the inverse of
// EncodeCellAt). The caller is responsible for item accounting: a
// patched table is a mirror of a remote table's cells, not a locally
// maintained one, so items is left untouched.
func (t *Table) PatchCellAt(i int, d *transport.Decoder) error {
	if i < 0 || i >= len(t.cells) {
		return fmt.Errorf("riblt: patch index %d out of %d cells", i, len(t.cells))
	}
	c := &t.cells[i]
	var err error
	if c.count, err = d.ReadVarint(); err != nil {
		return err
	}
	if c.keySum, err = d.ReadVarint(); err != nil {
		return err
	}
	if c.checkSum, err = d.ReadVarint(); err != nil {
		return err
	}
	for j := range c.valSum {
		if c.valSum[j], err = d.ReadVarint(); err != nil {
			return err
		}
	}
	return nil
}

package riblt

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/metric"
	"repro/internal/rng"
	"repro/internal/transport"
)

func testCfg(cells int) Config {
	return Config{
		Cells:    cells,
		Q:        3,
		Dim:      4,
		Delta:    1000,
		KeyBits:  40,
		MaxItems: 1 << 16,
		Seed:     42,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := testCfg(64).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Cells: 2, Q: 3, Dim: 1, Delta: 1, KeyBits: 40, MaxItems: 10},
		{Cells: 64, Q: 1, Dim: 1, Delta: 1, KeyBits: 40, MaxItems: 10},
		{Cells: 64, Q: 3, Dim: 0, Delta: 1, KeyBits: 40, MaxItems: 10},
		{Cells: 64, Q: 3, Dim: 1, Delta: 0, KeyBits: 40, MaxItems: 10},
		{Cells: 64, Q: 3, Dim: 1, Delta: 1, KeyBits: 0, MaxItems: 10},
		{Cells: 64, Q: 3, Dim: 1, Delta: 1, KeyBits: 60, MaxItems: 10},
		{Cells: 64, Q: 3, Dim: 1, Delta: 1, KeyBits: 40, MaxItems: 0},
		// Overflow: 2^40 keys · 2^40 items.
		{Cells: 64, Q: 3, Dim: 1, Delta: 1, KeyBits: 40, MaxItems: 1 << 40},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestInsertDeleteCancelExactly(t *testing.T) {
	tb := New(testCfg(96))
	v := metric.Point{1, 2, 3, 4}
	tb.Insert(77, v)
	tb.Delete(77, v)
	res, err := tb.Peel(rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Inserted)+len(res.Deleted) != 0 {
		t.Fatalf("canceled pair recovered: %+v", res)
	}
}

func TestExactRecovery(t *testing.T) {
	// No duplicate keys, no noise: the RIBLT must behave like a classic
	// IBLT and recover everything exactly.
	tb := New(testCfg(200))
	ins := map[uint64]metric.Point{
		10: {1, 2, 3, 4}, 11: {5, 6, 7, 8}, 12: {9, 10, 11, 12},
	}
	del := map[uint64]metric.Point{
		20: {100, 200, 300, 400}, 21: {500, 600, 700, 800},
	}
	for k, v := range ins {
		tb.Insert(k, v)
	}
	for k, v := range del {
		tb.Delete(k, v)
	}
	res, err := tb.Peel(rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Inserted) != len(ins) || len(res.Deleted) != len(del) {
		t.Fatalf("recovered %d/%d, want %d/%d",
			len(res.Inserted), len(res.Deleted), len(ins), len(del))
	}
	for _, p := range res.Inserted {
		want, ok := ins[p.Key]
		if !ok || !p.Value.Equal(want) {
			t.Errorf("inserted %d -> %v, want %v", p.Key, p.Value, want)
		}
	}
	for _, p := range res.Deleted {
		want, ok := del[p.Key]
		if !ok || !p.Value.Equal(want) {
			t.Errorf("deleted %d -> %v, want %v", p.Key, p.Value, want)
		}
	}
}

func TestDuplicateKeysAveraged(t *testing.T) {
	// Two insertions under the same key with different values must peel
	// as two pairs whose values are (randomized roundings of) the
	// average — §2.2 item 5.
	tb := New(testCfg(96))
	tb.Insert(5, metric.Point{10, 20, 0, 1000})
	tb.Insert(5, metric.Point{20, 21, 0, 0})
	res, err := tb.Peel(rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Inserted) != 2 || len(res.Deleted) != 0 {
		t.Fatalf("got %d/%d pairs", len(res.Inserted), len(res.Deleted))
	}
	for _, p := range res.Inserted {
		if p.Key != 5 {
			t.Errorf("key = %d", p.Key)
		}
		// Average is (15, 20.5, 0, 500): coordinate 0 must be 15,
		// coordinate 1 must round to 20 or 21.
		if p.Value[0] != 15 {
			t.Errorf("coord 0 = %d, want 15", p.Value[0])
		}
		if p.Value[1] != 20 && p.Value[1] != 21 {
			t.Errorf("coord 1 = %d, want 20 or 21", p.Value[1])
		}
		if p.Value[2] != 0 || p.Value[3] != 500 {
			t.Errorf("coords 2,3 = %d,%d", p.Value[2], p.Value[3])
		}
	}
}

func TestRoundingUnbiasedAndInRange(t *testing.T) {
	src := rng.New(7)
	avg := []float64{0.25, 999.75, -5, 2000, 500}
	const trials = 20000
	sums := make([]float64, len(avg))
	for i := 0; i < trials; i++ {
		p := roundClamped(avg, 1000, src)
		for j, v := range p {
			if v < 0 || v > 1000 {
				t.Fatalf("coordinate %d out of range: %d", j, v)
			}
			sums[j] += float64(v)
		}
	}
	means := make([]float64, len(avg))
	for j := range sums {
		means[j] = sums[j] / trials
	}
	// Unbiased within the clamp: E[round(x)] = clamp(x).
	wants := []float64{0.25, 999.75, 0, 1000, 500}
	for j, want := range wants {
		if math.Abs(means[j]-want) > 0.02*math.Max(1, want) {
			t.Errorf("coord %d mean = %v, want %v", j, means[j], want)
		}
	}
}

func TestNoisyPairLeavesResidueButDecodes(t *testing.T) {
	// A matched pair (same key, close but unequal values) plus a clean
	// difference: the clean difference must still decode, carrying at
	// most bounded error.
	cfg := testCfg(200)
	tb := New(cfg)
	// Matched pair: cancels count/key/checksum, leaves value residue.
	tb.Insert(40, metric.Point{100, 100, 100, 100})
	tb.Delete(40, metric.Point{101, 99, 100, 100})
	// Clean unmatched insertion.
	want := metric.Point{7, 7, 7, 7}
	tb.Insert(50, want)
	res, err := tb.Peel(rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Inserted) != 1 {
		t.Fatalf("recovered %d inserted pairs, want 1", len(res.Inserted))
	}
	got := res.Inserted[0]
	if got.Key != 50 {
		t.Fatalf("key = %d", got.Key)
	}
	// The residue (±1 in two coordinates) may or may not land in one of
	// key 50's cells; error per coordinate is at most 1 either way.
	space := metric.Grid(cfg.Delta, cfg.Dim, metric.L1)
	if d := space.Distance(got.Value, want); d > 2 {
		t.Errorf("recovered value %v too far from %v (ℓ1 = %v)", got.Value, want, d)
	}
}

func TestStalledOnOverload(t *testing.T) {
	cfg := testCfg(30)
	tb := New(cfg)
	src := rng.New(5)
	for i := 0; i < 200; i++ {
		tb.Insert(uint64(src.Uint64n(1<<40)), metric.Point{1, 2, 3, 4})
	}
	if _, err := tb.Peel(rng.New(6)); err != ErrStalled {
		t.Fatalf("overloaded peel err = %v, want ErrStalled", err)
	}
}

func TestPanicsOnMisuse(t *testing.T) {
	tb := New(testCfg(64))
	assertPanics(t, "oversized key", func() { tb.Insert(1<<41, metric.Point{0, 0, 0, 0}) })
	assertPanics(t, "wrong dim", func() { tb.Insert(1, metric.Point{0}) })
	cfg := testCfg(64)
	cfg.MaxItems = 1
	small := New(cfg)
	small.Insert(1, metric.Point{0, 0, 0, 0})
	assertPanics(t, "item budget", func() { small.Insert(2, metric.Point{0, 0, 0, 0}) })
	badCfg := testCfg(64)
	badCfg.Q = 0
	assertPanics(t, "bad config", func() { New(badCfg) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", name)
		}
	}()
	f()
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cfg := testCfg(120)
	tb := New(cfg)
	src := rng.New(8)
	type kv struct {
		k uint64
		v metric.Point
	}
	var pairs []kv
	for i := 0; i < 15; i++ {
		p := kv{k: src.Uint64n(1 << 40), v: metric.Point{
			int32(src.Intn(1000)), int32(src.Intn(1000)),
			int32(src.Intn(1000)), int32(src.Intn(1000))}}
		pairs = append(pairs, p)
		tb.Insert(p.k, p.v)
	}
	e := transport.NewEncoder()
	tb.Encode(e)
	var ch transport.Channel
	ch.Send(transport.AliceToBob, e)
	d, _ := ch.Recv(transport.AliceToBob)
	got, err := DecodeFrom(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Bob-side behaviour: delete the same pairs; the table must cancel.
	for _, p := range pairs {
		got.Delete(p.k, p.v)
	}
	res, err := got.Peel(rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Inserted)+len(res.Deleted) != 0 {
		t.Errorf("round-tripped table did not cancel: %+v", res)
	}
}

func TestDecodeFromGeometryMismatch(t *testing.T) {
	cfg := testCfg(120)
	tb := New(cfg)
	e := transport.NewEncoder()
	tb.Encode(e)
	var ch transport.Channel
	ch.Send(transport.AliceToBob, e)
	d, _ := ch.Recv(transport.AliceToBob)
	other := cfg
	other.Cells = 60
	if _, err := DecodeFrom(d, other); err == nil {
		t.Error("geometry mismatch accepted")
	}
}

// TestReconciliationProperty drives a full Alice/Bob RIBLT exchange with
// random clean differences and checks exact recovery, for many sizes.
func TestReconciliationProperty(t *testing.T) {
	prop := func(seed uint64, nd uint8) bool {
		src := rng.New(seed)
		nDiff := int(nd%12) + 1
		cfg := Config{
			Cells: 4 * 3 * 3 * (nDiff + 2), Q: 3, Dim: 2, Delta: 500,
			KeyBits: 40, MaxItems: 1 << 14, Seed: seed ^ 0x5555,
		}
		alice := New(cfg)
		bobKeys := make([]uint64, 0, nDiff)
		// Shared pairs cancel fully.
		for i := 0; i < 200; i++ {
			k := src.Uint64n(1 << 40)
			v := metric.Point{int32(src.Intn(501)), int32(src.Intn(501))}
			alice.Insert(k, v)
			alice.Delete(k, v)
		}
		want := map[uint64]metric.Point{}
		for i := 0; i < nDiff; i++ {
			k := src.Uint64n(1 << 40)
			v := metric.Point{int32(src.Intn(501)), int32(src.Intn(501))}
			want[k] = v
			alice.Insert(k, v)
		}
		res, err := alice.Peel(rng.New(seed ^ 0x77))
		if err != nil {
			return false
		}
		if len(res.Inserted) != len(want) || len(res.Deleted) != len(bobKeys) {
			return false
		}
		for _, p := range res.Inserted {
			w, ok := want[p.Key]
			if !ok || !p.Value.Equal(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestBreadthFirstOrder verifies the FIFO discipline: with a chain of
// dependencies, cells discovered earlier peel earlier.
func TestBreadthFirstOrder(t *testing.T) {
	// Construct a table where two independent singleton cells exist from
	// the start; BFS must peel the lower-indexed one first. We verify
	// order indirectly through Peels counting and determinism: the same
	// table peeled twice (same rounding seed) yields identical results.
	cfg := testCfg(300)
	build := func() *Table {
		tb := New(cfg)
		src := rng.New(10)
		for i := 0; i < 40; i++ {
			tb.Insert(src.Uint64n(1<<40), metric.Point{1, 2, 3, 4})
		}
		return tb
	}
	r1, err1 := build().Peel(rng.New(11))
	r2, err2 := build().Peel(rng.New(11))
	if err1 != nil || err2 != nil {
		t.Fatalf("peel errors: %v, %v", err1, err2)
	}
	if r1.Peels != r2.Peels || len(r1.Inserted) != len(r2.Inserted) {
		t.Fatal("peeling not deterministic")
	}
	sortPairs(r1.Inserted)
	sortPairs(r2.Inserted)
	for i := range r1.Inserted {
		if r1.Inserted[i].Key != r2.Inserted[i].Key ||
			!r1.Inserted[i].Value.Equal(r2.Inserted[i].Value) {
			t.Fatal("peeling results differ between identical runs")
		}
	}
}

func sortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].Key < ps[j].Key })
}

// TestLIFOAblationStillDecodes checks the ablation order functions (the
// error-spread comparison lives in the experiments package).
func TestLIFOAblationStillDecodes(t *testing.T) {
	cfg := testCfg(300)
	cfg.Order = LIFO
	tb := New(cfg)
	src := rng.New(12)
	want := map[uint64]bool{}
	for i := 0; i < 30; i++ {
		k := src.Uint64n(1 << 40)
		want[k] = true
		tb.Insert(k, metric.Point{9, 9, 9, 9})
	}
	res, err := tb.Peel(rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Inserted) != len(want) {
		t.Fatalf("LIFO recovered %d/%d", len(res.Inserted), len(want))
	}
}

// TestErrorPropagationBounded reproduces in miniature the Lemma 3.10
// situation: many matched-but-noisy pairs, a few clean differences, and
// the requirement that total recovered-value error stays comparable to
// the injected error rather than blowing up.
func TestErrorPropagationBounded(t *testing.T) {
	const trials = 30
	var totalErr, totalInjected float64
	for trial := 0; trial < trials; trial++ {
		src := rng.New(uint64(trial) + 100)
		k := 8
		cfg := Config{
			Cells: 4 * 9 * k, Q: 3, Dim: 4, Delta: 1000,
			KeyBits: 40, MaxItems: 1 << 14, Seed: uint64(trial),
		}
		tb := New(cfg)
		space := metric.Grid(cfg.Delta, cfg.Dim, metric.L1)
		// 50 noisy matched pairs: same key, values differ by ±1 in one
		// coordinate (injected error 1 each).
		for i := 0; i < 50; i++ {
			key := src.Uint64n(1 << 40)
			v := metric.Point{int32(src.Intn(900) + 50), int32(src.Intn(900) + 50),
				int32(src.Intn(900) + 50), int32(src.Intn(900) + 50)}
			w := v.Clone()
			w[src.Intn(4)]++
			tb.Insert(key, v)
			tb.Delete(key, w)
			totalInjected++
		}
		// k clean differences.
		want := map[uint64]metric.Point{}
		for i := 0; i < k; i++ {
			key := src.Uint64n(1 << 40)
			v := metric.Point{int32(src.Intn(1001)), int32(src.Intn(1001)),
				int32(src.Intn(1001)), int32(src.Intn(1001))}
			want[key] = v
			tb.Insert(key, v)
		}
		res, err := tb.Peel(rng.New(uint64(trial) + 999))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, p := range res.Inserted {
			if w, ok := want[p.Key]; ok {
				totalErr += space.Distance(p.Value, w)
			}
		}
	}
	// Lemma 3.10: each injected error reaches O(1) extracted values in
	// expectation, so total recovered error is O(totalInjected). Allow a
	// generous constant.
	if totalErr > 3*totalInjected {
		t.Errorf("recovered error %v vs injected %v: propagation too large",
			totalErr, totalInjected)
	}
}

func BenchmarkInsert(b *testing.B) {
	cfg := Config{Cells: 1 << 12, Q: 3, Dim: 8, Delta: 1000, KeyBits: 40,
		MaxItems: 1 << 21, Seed: 1}
	tb := New(cfg)
	v := metric.Point{1, 2, 3, 4, 5, 6, 7, 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%(1<<20) == 0 {
			b.StopTimer()
			tb = New(cfg)
			b.StartTimer()
		}
		tb.Insert(uint64(i)&(1<<40-1), v)
	}
}

func BenchmarkPeel100(b *testing.B) {
	cfg := Config{Cells: 4 * 9 * 100, Q: 3, Dim: 4, Delta: 1000, KeyBits: 40,
		MaxItems: 1 << 16, Seed: 1}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tb := New(cfg)
		src := rng.New(uint64(i))
		for j := 0; j < 100; j++ {
			tb.Insert(src.Uint64n(1<<40), metric.Point{1, 2, 3, 4})
		}
		b.StartTimer()
		if _, err := tb.Peel(rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

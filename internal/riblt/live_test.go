package riblt

import (
	"bytes"
	"testing"

	"repro/internal/metric"
	"repro/internal/rng"
	"repro/internal/transport"
)

func liveTestConfig() Config {
	return Config{
		Cells: 60, Q: 3, Dim: 4, Delta: 15,
		KeyBits: 20, MaxItems: 64, Seed: 9,
	}
}

func encodeTable(t *Table) []byte {
	e := transport.NewEncoder()
	t.Encode(e)
	data, _ := e.Pack()
	return data
}

// TestRetractRestoresTable: Insert then Retract leaves the table
// field-identical to one that never saw the pair, and item accounting
// tracks live contents so long mutation histories never trip the
// overflow guard.
func TestRetractRestoresTable(t *testing.T) {
	cfg := liveTestConfig()
	tbl := New(cfg)
	ref := New(cfg)
	src := rng.New(4)
	kept := make([]Pair, 0, 8)
	for i := 0; i < 500; i++ { // far more mutations than MaxItems
		key := src.Uint64() & (1<<cfg.KeyBits - 1)
		val := metric.Point{int32(i % 16), 1, 2, 3}
		tbl.Insert(key, val)
		if i%3 == 0 && len(kept) < 8 {
			ref.Insert(key, val)
			kept = append(kept, Pair{Key: key, Value: val})
		} else {
			tbl.Retract(key, val)
		}
	}
	if tbl.Items() != len(kept) {
		t.Fatalf("items = %d, want %d", tbl.Items(), len(kept))
	}
	if !bytes.Equal(encodeTable(tbl), encodeTable(ref)) {
		t.Fatal("retract left residue: mutated table differs from reference")
	}
}

// TestCloneIsDeep: mutating a clone leaves the original untouched.
func TestCloneIsDeep(t *testing.T) {
	tbl := New(liveTestConfig())
	tbl.Insert(5, metric.Point{1, 2, 3, 4})
	before := encodeTable(tbl)
	c := tbl.Clone()
	c.Insert(9, metric.Point{4, 3, 2, 1})
	if !bytes.Equal(encodeTable(tbl), before) {
		t.Fatal("clone shares cell state with original")
	}
}

// TestCellPatchRoundTrip: EncodeCellAt → PatchCellAt transplants cells
// exactly, and CellIndices names precisely the cells a mutation
// touches.
func TestCellPatchRoundTrip(t *testing.T) {
	cfg := liveTestConfig()
	a := New(cfg)
	b := New(cfg)
	a.Insert(7, metric.Point{1, 2, 3, 4})
	touched := a.CellIndices(7, nil)
	if len(touched) != cfg.Q {
		t.Fatalf("CellIndices returned %d cells, want %d", len(touched), cfg.Q)
	}
	e := transport.NewEncoder()
	for _, i := range touched {
		a.EncodeCellAt(i, e)
	}
	data, _ := e.Pack()
	d := transport.NewDecoder(data)
	for _, i := range touched {
		if err := b.PatchCellAt(i, d); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(encodeTable(a), encodeTable(b)) {
		t.Fatal("patching the touched cells did not reproduce the table")
	}
	if err := b.PatchCellAt(len(b.cells), transport.NewDecoder(nil)); err == nil {
		t.Fatal("out-of-range patch index accepted")
	}
}

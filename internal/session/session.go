// Package session is the engine layer that turns the two-party protocol
// state machines of internal/netproto into a servable system: a Server
// accepts TCP or unix-socket connections and runs many concurrent
// Sessions, each owning one peer's negotiated protocol handler, under
// per-session limits and deadlines, with per-session traffic rolling up
// into race-free aggregate totals; a Dialer is the matching client.
//
// The stack, bottom up: transport does exact bit accounting, netproto
// frames byte streams and hosts the registered protocol handlers, and
// this package owns connection lifecycle — accept, negotiate the session
// header (protocol ID, role, parameter digest), drive the handler,
// account, and tear down. Protocol semantics live entirely below;
// nothing here changes a single wire byte of the protocols themselves.
package session

import (
	"time"

	"repro/internal/netproto"
	"repro/internal/transport"
)

// Session owns one peer's protocol state machine: the negotiated
// handler, the framed wire, and the accounting for that peer. The Server
// constructs one Session per accepted connection; inspect it in the
// OnSession callback for per-peer results (type-assert Handler to the
// concrete netproto handler to read typed outputs).
type Session struct {
	id      uint64
	peer    string
	set     string // negotiated set namespace ("" = default)
	proto   netproto.Proto
	role    netproto.Role // the role this endpoint played
	handler netproto.Handler
	wire    *netproto.Wire
	start   time.Time
	dur     time.Duration
	err     error
}

// ID is the server-unique session number (1-based, in accept order).
func (s *Session) ID() uint64 { return s.id }

// Peer is the remote address.
func (s *Session) Peer() string { return s.peer }

// Proto is the negotiated protocol.
func (s *Session) Proto() netproto.Proto { return s.proto }

// Set is the negotiated set namespace (empty for the default set, which
// is all a v1 peer can address).
func (s *Session) Set() string { return s.set }

// Role is the role this endpoint played in the session.
func (s *Session) Role() netproto.Role { return s.role }

// Handler returns the protocol handler the session drove; after the
// session completes it holds the typed result.
func (s *Session) Handler() netproto.Handler { return s.handler }

// Stats is this endpoint's traffic tally for the session (header frames
// included). Safe to call while the session is still running.
func (s *Session) Stats() transport.Stats { return s.wire.Stats() }

// Duration is the session's wall-clock time, from accept to handler
// completion (zero while running).
func (s *Session) Duration() time.Duration { return s.dur }

// Err is the handler's outcome (nil on success; negotiation rejections
// and protocol failures otherwise).
func (s *Session) Err() error { return s.err }

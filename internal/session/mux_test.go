package session

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/netproto"
	"repro/internal/transport"
)

// recConn wraps a net.Conn and records every byte the client writes, so
// tests can compare wire images across negotiation paths.
type recConn struct {
	net.Conn
	rec *recorded
}

type recorded struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (r *recorded) bytes() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]byte(nil), r.buf.Bytes()...)
}

func (c recConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.rec.mu.Lock()
	c.rec.buf.Write(p[:n])
	c.rec.mu.Unlock()
	return n, err
}

// recTransport dials through the real network but returns recording
// connections, in dial order.
type recTransport struct {
	mu    sync.Mutex
	conns []*recorded
}

func (t *recTransport) Listen(network, addr string) (net.Listener, error) {
	return net.Listen(network, addr)
}

func (t *recTransport) DialTimeout(network, addr string, timeout time.Duration) (net.Conn, error) {
	conn, err := net.DialTimeout(network, addr, timeout)
	if err != nil {
		return nil, err
	}
	rec := &recorded{}
	t.mu.Lock()
	t.conns = append(t.conns, rec)
	t.mu.Unlock()
	return recConn{Conn: conn, rec: rec}, nil
}

func (t *recTransport) dialed() []*recorded {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*recorded(nil), t.conns...)
}

// TestMuxCarrierHelloGolden pins the v3 carrier hello to its exact wire
// image: one frame of magic "RSYN" plus uvarint version 3, nothing
// else. Any drift here breaks cross-version interop, so the bytes are
// asserted literally rather than via the encoder.
func TestMuxCarrierHelloGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := netproto.SendHello(netproto.NewWire(&buf), netproto.Hello{Mux: true}); err != nil {
		t.Fatal(err)
	}
	want := []byte{
		0x00, 0x00, 0x00, 0x05, // frame length 5
		0x52, 0x53, 0x59, 0x4e, // "RSYN"
		0x03, // version 3
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("carrier hello = %x, want %x", buf.Bytes(), want)
	}
}

// syncHandler builds a fresh sync initiator for the shared fixture.
func syncHandler(f *testFixture) *netproto.SyncInitiator {
	return netproto.NewSyncInitiator(f.syncParams, f.clientIDs)
}

func checkSync(f *testFixture, h *netproto.SyncInitiator) error {
	if len(h.TheirsOnly) != f.wantTheirs || len(h.MinesOnly) != f.wantMine {
		return fmt.Errorf("sync: got %d/%d, want %d/%d",
			len(h.TheirsOnly), len(h.MinesOnly), f.wantTheirs, f.wantMine)
	}
	return nil
}

// muxDataPayloads parses a recorded carrier byte stream (carrier hello
// frame, then mux frames) and returns the concatenated data payloads of
// the given stream.
func muxDataPayloads(t *testing.T, raw []byte, stream uint64) []byte {
	t.Helper()
	var out bytes.Buffer
	// Skip the carrier hello frame.
	if len(raw) < 4 {
		t.Fatalf("carrier stream too short: %d bytes", len(raw))
	}
	n := binary.BigEndian.Uint32(raw)
	raw = raw[4+n:]
	for len(raw) > 0 {
		if len(raw) < 4 {
			t.Fatalf("truncated mux frame header: %d bytes left", len(raw))
		}
		n := binary.BigEndian.Uint32(raw)
		frame := raw[4 : 4+n]
		raw = raw[4+n:]
		d := transport.NewDecoder(frame)
		id, err := d.ReadUvarint()
		if err != nil {
			t.Fatal(err)
		}
		kind, err := d.ReadUvarint()
		if err != nil {
			t.Fatal(err)
		}
		if kind != muxFrameData || id != stream {
			continue
		}
		if _, err := d.ReadUvarint(); err != nil {
			t.Fatal(err)
		}
		out.Write(frame[len(frame)-d.Remaining():])
	}
	return out.Bytes()
}

// TestMuxStreamBytesMatchPlainSession is the v3 compat golden test: the
// concatenated data payloads of a multiplexed session's stream must be
// byte-identical to the byte stream a dedicated v1 connection carries
// for the same session — mux framing adds routing, never rewrites.
func TestMuxStreamBytesMatchPlainSession(t *testing.T) {
	f := newFixture(t)
	srv := newTestServer(f, Config{})
	l, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := l.Addr().String()

	// Plain v1 session, recorded.
	plainTr := &recTransport{}
	h1 := syncHandler(f)
	if _, err := (Dialer{Addr: addr, Transport: plainTr}).Do(h1); err != nil {
		t.Fatal(err)
	}
	if err := checkSync(f, h1); err != nil {
		t.Fatal(err)
	}

	// The same session through a pooled carrier, recorded.
	muxTr := &recTransport{}
	pool := &MuxPool{Transport: muxTr}
	defer pool.Close()
	h2 := syncHandler(f)
	if _, err := pool.Do(addr, "", h2); err != nil {
		t.Fatal(err)
	}
	if err := checkSync(f, h2); err != nil {
		t.Fatal(err)
	}

	plainConns := plainTr.dialed()
	muxConns := muxTr.dialed()
	if len(plainConns) != 1 || len(muxConns) != 1 {
		t.Fatalf("dial counts: plain %d, mux %d (want 1 and 1)", len(plainConns), len(muxConns))
	}
	plainBytes := plainConns[0].bytes()
	streamBytes := muxDataPayloads(t, muxConns[0].bytes(), 1)
	if !bytes.Equal(streamBytes, plainBytes) {
		t.Fatalf("stream payload (%d bytes) != plain session stream (%d bytes)",
			len(streamBytes), len(plainBytes))
	}
}

// TestMuxFallbackBytesIdenticalToPlain pins the downgrade path: against
// a pre-v3 server (DisableMux), the pool's fallback session must put
// exactly the bytes of a plain v1/v2 dial on the wire — old servers
// cannot tell a downgraded v3 client from a v2 one.
func TestMuxFallbackBytesIdenticalToPlain(t *testing.T) {
	f := newFixture(t)
	srv := newTestServer(f, Config{DisableMux: true})
	l, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := l.Addr().String()

	tr := &recTransport{}
	pool := &MuxPool{Transport: tr}
	defer pool.Close()
	h := syncHandler(f)
	if _, err := pool.Do(addr, "", h); err != nil {
		t.Fatal(err)
	}
	if err := checkSync(f, h); err != nil {
		t.Fatal(err)
	}
	// Second session: the pool remembers the peer is pre-v3 and must not
	// retry the carrier.
	h = syncHandler(f)
	if _, err := pool.Do(addr, "", h); err != nil {
		t.Fatal(err)
	}

	plainTr := &recTransport{}
	hp := syncHandler(f)
	if _, err := (Dialer{Addr: addr, Transport: plainTr}).Do(hp); err != nil {
		t.Fatal(err)
	}

	conns := tr.dialed()
	if len(conns) != 3 {
		t.Fatalf("pool dialed %d conns, want 3 (carrier attempt + 2 fallbacks)", len(conns))
	}
	plainBytes := plainTr.dialed()[0].bytes()
	if !bytes.Equal(conns[1].bytes(), plainBytes) {
		t.Fatalf("fallback session bytes differ from plain dial")
	}
	if !bytes.Equal(conns[2].bytes(), plainBytes) {
		t.Fatalf("memoized fallback session bytes differ from plain dial")
	}
	st := pool.Stats()
	if st.Fallbacks != 2 || st.Sessions != 2 || st.Dials != 3 {
		t.Fatalf("pool stats = %v, want 2 fallbacks, 2 sessions, 3 dials", st)
	}
}

// TestMuxPoolReuseAndRedial covers the carrier lifecycle: sequential
// sessions share one dial, a severed carrier is replaced on the next
// session, and the stats ledger tracks it.
func TestMuxPoolReuseAndRedial(t *testing.T) {
	f := newFixture(t)
	srv := newTestServer(f, Config{})
	l, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := l.Addr().String()

	pool := &MuxPool{}
	defer pool.Close()
	for i := 0; i < 4; i++ {
		h := syncHandler(f)
		if _, err := pool.Do(addr, "", h); err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		if err := checkSync(f, h); err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	if st := pool.Stats(); st.Dials != 1 || st.Reuses != 3 || st.Sessions != 4 {
		t.Fatalf("after reuse: stats = %+v, want 1 dial, 3 reuses, 4 sessions", st)
	}

	// Sever the pooled carrier out from under the pool; the next session
	// must notice the dead carrier and re-dial instead of failing.
	pool.mu.Lock()
	for _, e := range pool.entries {
		e.mu.Lock()
		e.m.fail(errors.New("test: simulated carrier cut"))
		e.mu.Unlock()
	}
	pool.mu.Unlock()

	h := syncHandler(f)
	if _, err := pool.Do(addr, "", h); err != nil {
		t.Fatalf("post-cut session: %v", err)
	}
	if err := checkSync(f, h); err != nil {
		t.Fatal(err)
	}
	if st := pool.Stats(); st.Dials != 2 || st.Sessions != 5 {
		t.Fatalf("after cut: stats = %+v, want 2 dials, 5 sessions", st)
	}
}

// TestMuxConcurrentStreams drives many simultaneous sessions through
// one pool: they multiplex over a single carrier per address, all
// succeed, and the server's ledger accounts every stream.
func TestMuxConcurrentStreams(t *testing.T) {
	f := newFixture(t)
	srv := newTestServer(f, Config{MaxSessions: 8})
	l, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := l.Addr().String()

	pool := &MuxPool{}
	defer pool.Close()
	const sessions = 12
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := syncHandler(f)
			if _, err := pool.Do(addr, "", h); err != nil {
				errs[i] = err
				return
			}
			errs[i] = checkSync(f, h)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("session %d: %v", i, err)
		}
	}
	if st := pool.Stats(); st.Dials != 1 || st.Sessions != sessions {
		t.Errorf("stats = %+v, want 1 dial, %d sessions", st, sessions)
	}
	// Close waits for server-side accounting of every stream (the busy
	// ledger counts streams, not connections).
	srv.Close()
	if got := srv.Served(); got != sessions {
		t.Errorf("served = %d, want %d (failed = %d)", got, sessions, srv.Failed())
	}
}

// TestMuxShutdownWithIdleCarrier: a warm but idle carrier must not hold
// up graceful shutdown — carriers are unbilled after negotiation, so
// Quiesce sees zero in-flight session units.
func TestMuxShutdownWithIdleCarrier(t *testing.T) {
	f := newFixture(t)
	srv := newTestServer(f, Config{})
	l, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()

	pool := &MuxPool{}
	defer pool.Close()
	if err := pool.Warm(addr); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(5 * time.Second) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown with idle carrier: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown blocked on an idle pooled carrier")
	}
}

// TestMuxNestedCarrierHelloRejected: a carrier hello inside a stream is
// a protocol violation; the server answers StatusMuxUnavailable instead
// of recursing.
func TestMuxNestedCarrierHelloRejected(t *testing.T) {
	f := newFixture(t)
	srv := newTestServer(f, Config{})
	l, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	w := netproto.NewWire(conn)
	if err := netproto.InitiateMux(w); err != nil {
		t.Fatal(err)
	}
	w.Release()
	m := newMuxConn(conn, nil)
	go m.readLoop()
	st, err := m.OpenStream()
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sw := netproto.NewWire(st)
	defer sw.Release()
	if err := netproto.SendHello(sw, netproto.Hello{Mux: true}); err != nil {
		t.Fatal(err)
	}
	status, _, err := netproto.ReadAccept(sw)
	if err != nil {
		t.Fatal(err)
	}
	if status != netproto.StatusMuxUnavailable {
		t.Fatalf("nested carrier hello: status %v, want %v", status, netproto.StatusMuxUnavailable)
	}
}

package session

import (
	"net"
	"time"
)

// Transport abstracts where connections come from, so the same server
// and dialer run over real sockets in production and over the
// deterministic in-memory network (internal/simnet) in simulation. The
// two methods mirror net.Listen and net.DialTimeout; the network string
// is passed through uninterpreted ("tcp"/"unix" for the real network,
// "sim" by convention for simnet, which ignores it).
type Transport interface {
	// Listen announces on addr and returns the bound listener.
	Listen(network, addr string) (net.Listener, error)
	// DialTimeout connects to addr, failing after timeout.
	DialTimeout(network, addr string, timeout time.Duration) (net.Conn, error)
}

// netTransport is the real-network Transport (package net verbatim).
type netTransport struct{}

func (netTransport) Listen(network, addr string) (net.Listener, error) {
	return net.Listen(network, addr)
}

func (netTransport) DialTimeout(network, addr string, timeout time.Duration) (net.Conn, error) {
	return net.DialTimeout(network, addr, timeout)
}

// NetTransport is the default Transport: real TCP and unix sockets. A
// nil Transport in Config or Dialer means this.
var NetTransport Transport = netTransport{}

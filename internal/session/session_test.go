package session

import (
	"fmt"
	"io"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/emd"
	"repro/internal/gap"
	"repro/internal/metric"
	"repro/internal/netproto"
	"repro/internal/rng"
	"repro/internal/setsets"
	"repro/internal/transport"
	"repro/internal/workload"
)

// testFixture bundles one deterministic workload per protocol, shared by
// server and clients the way two real deployments share Params.
type testFixture struct {
	emdParams emd.Params
	emdSA     metric.PointSet
	emdSB     metric.PointSet

	gapParams gap.Params
	gapSA     metric.PointSet
	gapSB     metric.PointSet
	gapSpace  metric.Space

	syncParams    netproto.SyncParams
	serverIDs     []uint64
	clientIDs     []uint64
	wantTheirs    int // IDs only the server has
	wantMine      int // IDs only the client has
	ssParams      setsets.Params
	serverKids    []setsets.Child
	clientKids    []setsets.Child
	wantKidsDelta int
}

func newFixture(t *testing.T) *testFixture {
	t.Helper()
	f := &testFixture{}

	emdSpace := metric.HammingCube(64)
	const n, k = 32, 3
	einst := workload.NewEMDInstance(emdSpace, n, k, 2, 41)
	f.emdParams = emd.DefaultParams(emdSpace, n, k, 42)
	f.emdParams.D1, f.emdParams.D2 = 2, 64
	f.emdSA, f.emdSB = einst.SA, einst.SB

	f.gapSpace = metric.HammingCube(256)
	ginst, err := workload.NewGapInstance(f.gapSpace, 24, 2, 1, 6, 64, 43)
	if err != nil {
		t.Fatal(err)
	}
	f.gapParams = gap.Params{Space: f.gapSpace, N: 27, R1: 6, R2: 64, Seed: 44}
	f.gapSA, f.gapSB = ginst.SA, ginst.SB

	src := rng.New(45)
	shared := make([]uint64, 2000)
	for i := range shared {
		shared[i] = src.Uint64()
	}
	f.syncParams = netproto.SyncParams{Seed: 46}
	f.serverIDs = append(append([]uint64{}, shared...), 1, 2, 3, 4, 5, 6, 7)
	f.clientIDs = append(append([]uint64{}, shared...), 100, 200, 300)
	f.wantTheirs = 7
	f.wantMine = 3

	f.ssParams = setsets.Params{PayloadBytes: 8, Seed: 47}
	mkChild := func(tag uint64) setsets.Child {
		p := make([]byte, 8)
		for i := range p {
			p[i] = byte(tag >> (8 * i))
		}
		return setsets.Child{Payload: p}
	}
	for i := uint64(0); i < 60; i++ {
		c := mkChild(i)
		f.serverKids = append(f.serverKids, c)
		f.clientKids = append(f.clientKids, c)
	}
	for i := uint64(0); i < 4; i++ {
		f.serverKids = append(f.serverKids, mkChild(1000+i))
		f.clientKids = append(f.clientKids, mkChild(2000+i))
	}
	f.wantKidsDelta = 4
	return f
}

// newTestServer builds a server exposing all four protocols over the
// fixture's data, mirroring what cmd/reconciled serves.
func newTestServer(f *testFixture, cfg Config) *Server {
	srv := NewServer(cfg)
	srv.Handle(func() netproto.Handler { return netproto.NewEMDSender(f.emdParams, f.emdSA) })
	srv.Handle(func() netproto.Handler { return netproto.NewGapSender(f.gapParams, f.gapSA) })
	srv.Handle(func() netproto.Handler { return netproto.NewSyncResponder(f.syncParams, f.serverIDs) })
	srv.Handle(func() netproto.Handler { return netproto.NewSetSetsResponder(f.ssParams, f.serverKids) })
	return srv
}

// TestServerConcurrentSessions is the acceptance test for the session
// engine: one server, 12 simultaneous client sessions across all four
// protocols over real TCP sockets, all results verified, aggregate
// stats consistent. Run with -race in CI.
func TestServerConcurrentSessions(t *testing.T) {
	f := newFixture(t)
	srv := newTestServer(f, Config{MaxSessions: 16})
	l, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	d := Dialer{Addr: l.Addr().String()}

	type job func() error
	emdJob := func() error {
		h := netproto.NewEMDReceiver(f.emdParams, f.emdSB)
		if _, err := d.Do(h); err != nil {
			return err
		}
		if h.Result.Failed {
			return nil // Algorithm 1 may report failure; not a transport bug
		}
		if len(h.Result.SPrime) != len(f.emdSB) {
			return fmt.Errorf("emd: |S'B| = %d, want %d", len(h.Result.SPrime), len(f.emdSB))
		}
		if h.Result.Stats.BitsBtoA == 0 {
			return fmt.Errorf("emd: no inbound traffic recorded")
		}
		return nil
	}
	gapJob := func() error {
		h := netproto.NewGapReceiver(f.gapParams, f.gapSB)
		if _, err := d.Do(h); err != nil {
			return err
		}
		for _, pt := range f.gapSA {
			if dist, _ := h.Result.SPrime.MinDistanceTo(f.gapSpace, pt); dist > f.gapParams.R2 {
				return fmt.Errorf("gap: uncovered point at distance %v", dist)
			}
		}
		return nil
	}
	syncJob := func() error {
		h := netproto.NewSyncInitiator(f.syncParams, f.clientIDs)
		if _, err := d.Do(h); err != nil {
			return err
		}
		if len(h.TheirsOnly) != f.wantTheirs || len(h.MinesOnly) != f.wantMine {
			return fmt.Errorf("sync: got %d/%d, want %d/%d",
				len(h.TheirsOnly), len(h.MinesOnly), f.wantTheirs, f.wantMine)
		}
		return nil
	}
	ssJob := func() error {
		h := netproto.NewSetSetsInitiator(f.ssParams, f.clientKids)
		if _, err := d.Do(h); err != nil {
			return err
		}
		if len(h.Result.BobOnly) != f.wantKidsDelta || len(h.Result.AliceOnly) != f.wantKidsDelta {
			return fmt.Errorf("setsets: got %d/%d differing children, want %d/%d",
				len(h.Result.BobOnly), len(h.Result.AliceOnly), f.wantKidsDelta, f.wantKidsDelta)
		}
		return nil
	}

	jobs := []job{emdJob, gapJob, syncJob, ssJob, emdJob, gapJob, syncJob, ssJob, emdJob, gapJob, syncJob, ssJob}
	if len(jobs) < 8 {
		t.Fatal("need at least 8 simultaneous sessions")
	}
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			errs[i] = j()
		}(i, j)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("session %d: %v", i, err)
		}
	}

	// A client can drain the last protocol message before the server-side
	// goroutine finishes accounting; Close waits for every session.
	srv.Close()
	if got := srv.Served(); got != uint64(len(jobs)) {
		t.Errorf("served = %d, want %d (failed = %d)", got, len(jobs), srv.Failed())
	}
	if srv.Active() != 0 {
		t.Errorf("active = %d after all sessions done", srv.Active())
	}
	total, n := srv.Stats()
	if n != len(jobs) {
		t.Errorf("aggregate folded %d sessions, want %d", n, len(jobs))
	}
	if total.TotalBits() == 0 || total.Rounds == 0 {
		t.Errorf("aggregate stats empty: %v", total)
	}
}

// TestServerSessionLimit runs more concurrent clients than MaxSessions
// allows: excess sessions must queue and still succeed.
func TestServerSessionLimit(t *testing.T) {
	f := newFixture(t)
	srv := newTestServer(f, Config{MaxSessions: 2})
	l, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	d := Dialer{Addr: l.Addr().String()}

	const clients = 6
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := netproto.NewSyncInitiator(f.syncParams, f.clientIDs)
			_, errs[i] = d.Do(h)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("client %d: %v", i, err)
		}
	}
	srv.Close() // wait for server-side accounting before asserting
	if got := srv.Served(); got != clients {
		t.Errorf("served = %d, want %d", got, clients)
	}
}

// TestServerUnixSocket exercises the unix-domain listener path.
func TestServerUnixSocket(t *testing.T) {
	f := newFixture(t)
	srv := newTestServer(f, Config{})
	sock := filepath.Join(t.TempDir(), "reconciled.sock")
	l, err := srv.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	_ = l
	d := Dialer{Network: "unix", Addr: sock}
	h := netproto.NewEMDReceiver(f.emdParams, f.emdSB)
	if _, err := d.Do(h); err != nil {
		t.Fatal(err)
	}
	if !h.Result.Failed && len(h.Result.SPrime) != len(f.emdSB) {
		t.Errorf("|S'B| = %d, want %d", len(h.Result.SPrime), len(f.emdSB))
	}
}

// TestServerRejectsDigestMismatch: a client with different Params must
// be refused before protocol traffic, with a status naming the reason.
func TestServerRejectsDigestMismatch(t *testing.T) {
	f := newFixture(t)
	srv := newTestServer(f, Config{})
	l, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	bad := f.syncParams
	bad.Seed++
	h := netproto.NewSyncInitiator(bad, f.clientIDs)
	_, err = (Dialer{Addr: l.Addr().String()}).Do(h)
	if err == nil || !strings.Contains(err.Error(), "digest") {
		t.Fatalf("mismatched params accepted: %v", err)
	}
}

// TestServerRejectsUnknownProto: an unregistered protocol ID gets a
// clean rejection.
func TestServerRejectsUnknownProto(t *testing.T) {
	f := newFixture(t)
	srv := newTestServer(f, Config{})
	l, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	_, err = (Dialer{Addr: l.Addr().String()}).Do(&bogusHandler{})
	if err == nil || !strings.Contains(err.Error(), "unknown protocol") {
		t.Fatalf("unknown protocol accepted: %v", err)
	}
}

// TestServerRejectsRoleClash: the server plays EMD Alice; a client also
// initiating as Alice must get "role unavailable", not "unknown
// protocol".
func TestServerRejectsRoleClash(t *testing.T) {
	f := newFixture(t)
	srv := newTestServer(f, Config{})
	l, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	h := netproto.NewEMDSender(f.emdParams, f.emdSA)
	_, err = (Dialer{Addr: l.Addr().String()}).Do(h)
	if err == nil || !strings.Contains(err.Error(), "role unavailable") {
		t.Fatalf("role clash not named: %v", err)
	}
}

// TestServerAccountsBadHello: a connection that never speaks a valid
// hello (port scanner, garbage frame) must show up consistently in
// Failed(), the Stats() session count, and the OnSession callback.
func TestServerAccountsBadHello(t *testing.T) {
	f := newFixture(t)
	var fired int
	var mu sync.Mutex
	srv := newTestServer(f, Config{OnSession: func(*Session) {
		mu.Lock()
		fired++
		mu.Unlock()
	}})
	l, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	// A framed payload that is not a hello (bad magic).
	conn.Write([]byte{0, 0, 0, 4, 'j', 'u', 'n', 'k'}) //nolint:errcheck
	// Wait for the server to consume and reject the frame before closing:
	// the rejection closes the connection, which surfaces here as EOF.
	io.Copy(io.Discard, conn) //nolint:errcheck
	conn.Close()
	srv.Close()
	if got := srv.Failed(); got != 1 {
		t.Errorf("failed = %d, want 1", got)
	}
	if _, n := srv.Stats(); n != 1 {
		t.Errorf("stats folded %d sessions, want 1", n)
	}
	mu.Lock()
	defer mu.Unlock()
	if fired != 1 {
		t.Errorf("OnSession fired %d times, want 1", fired)
	}
}

// closeTrackingListener records whether the server released it.
type closeTrackingListener struct {
	net.Listener
	mu     sync.Mutex
	closed bool
}

func (l *closeTrackingListener) Close() error {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	return l.Listener.Close()
}

func (l *closeTrackingListener) wasClosed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.closed
}

// TestServeAfterCloseReturnsNamedError is the regression test for the
// post-Close lifecycle: Serve on a closed server must return
// ErrServerClosed immediately AND close the listener it was handed, so
// neither a goroutine nor a socket outlives the server.
func TestServeAfterCloseReturnsNamedError(t *testing.T) {
	srv := NewServer(Config{})
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := &closeTrackingListener{Listener: inner}
	if err := srv.Serve(l); err != ErrServerClosed {
		t.Fatalf("Serve after Close = %v, want ErrServerClosed", err)
	}
	if !l.wasClosed() {
		t.Error("Serve after Close leaked the listener")
	}
	// Listen after Close must fail fast instead of binding a socket
	// whose background Serve goroutine exits immediately — before the
	// fix the caller got a live-looking listener serving nothing.
	if _, err := srv.Listen("tcp", "127.0.0.1:0"); err != ErrServerClosed {
		t.Fatalf("Listen after Close = %v, want ErrServerClosed", err)
	}
	// And an orderly post-Close state reports no terminal failure.
	if err := srv.Err(); err != nil {
		t.Errorf("Err after orderly Close = %v", err)
	}
}

type bogusHandler struct{}

func (*bogusHandler) Proto() netproto.Proto         { return netproto.Proto(99) }
func (*bogusHandler) Role() netproto.Role           { return netproto.RoleAlice }
func (*bogusHandler) Digest() uint64                { return 0xdead }
func (*bogusHandler) Run(conn transport.Conn) error { return nil }

// TestOnSessionCallback checks typed results are harvestable from the
// server side via the Session abstraction.
func TestOnSessionCallback(t *testing.T) {
	f := newFixture(t)
	var mu sync.Mutex
	var seen []*Session
	srv := newTestServer(f, Config{OnSession: func(s *Session) {
		mu.Lock()
		seen = append(seen, s)
		mu.Unlock()
	}})
	l, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	h := netproto.NewGapReceiver(f.gapParams, f.gapSB)
	if _, err := (Dialer{Addr: l.Addr().String()}).Do(h); err != nil {
		t.Fatal(err)
	}
	srv.Close() // wait for the server-side session to finish
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 1 {
		t.Fatalf("OnSession fired %d times", len(seen))
	}
	s := seen[0]
	if s.Proto() != netproto.ProtoGap || s.Err() != nil || s.ID() == 0 {
		t.Errorf("session: proto=%v err=%v id=%d", s.Proto(), s.Err(), s.ID())
	}
	gs, ok := s.Handler().(*netproto.GapSender)
	if !ok {
		t.Fatalf("handler type %T", s.Handler())
	}
	if len(gs.Report.TA) != len(h.Result.TA) {
		t.Errorf("server sent %d elements, client received %d", len(gs.Report.TA), len(h.Result.TA))
	}
	if s.Stats().TotalBits() == 0 {
		t.Error("session stats empty")
	}
}

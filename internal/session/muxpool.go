package session

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netproto"
	"repro/internal/transport"
)

// ErrPoolClosed is returned by MuxPool.Do after Close.
var ErrPoolClosed = errors.New("session: mux pool closed")

// errMuxUnsupported marks a peer that did not complete RSYN v3 carrier
// negotiation; the pool remembers it and dials that address plain.
var errMuxUnsupported = errors.New("session: peer does not speak RSYN v3")

// MuxPool runs client sessions over pooled RSYN v3 carriers: one live
// multiplexed connection per address, dialed lazily, health-checked on
// every use, and re-dialed after a cut. Peers that fail carrier
// negotiation (pre-v3 servers drop the hello without an accept; v3
// servers with mux disabled do the same) are remembered and dialed with
// a plain per-session connection — literally Dialer.Do, so the fallback
// is byte-identical to RSYN v2/v1.
//
// Concurrent Do calls against one address share the carrier: each runs
// on its own stream, and a session's opening flight (hello plus first
// protocol frames) is written without waiting for the accept, so k+1
// sessions' hellos can be in flight while session k is still draining.
// A MuxPool is safe for concurrent use; the zero value is usable with
// the same defaults as a zero Dialer.
type MuxPool struct {
	// Network is "tcp" or "unix" (default "tcp").
	Network string
	// DialTimeout bounds carrier establishment, negotiation included
	// (default 10s).
	DialTimeout time.Duration
	// SessionTimeout is the absolute budget for each session — a
	// per-stream deadline, since a shared connection deadline would
	// sever every co-muxed session (default 2 minutes; negative
	// disables).
	SessionTimeout time.Duration
	// Transport supplies connections (nil = NetTransport).
	Transport Transport

	mu      sync.Mutex
	entries map[string]*poolEntry
	closed  bool

	dials     atomic.Uint64
	reuses    atomic.Uint64
	fallbacks atomic.Uint64
	sessions  atomic.Uint64
}

// poolEntry is the per-address slot. Its lock single-flights the dial:
// concurrent sessions to a cold address queue behind one carrier dial
// instead of racing their own.
type poolEntry struct {
	mu        sync.Mutex
	m         *muxConn // live carrier, nil before first dial; replaced when dead
	plainOnly bool     // peer failed v3 negotiation; dial plain from now on
}

// PoolStats counts the pool's work since creation.
type PoolStats struct {
	// Dials is the number of connections actually dialed: carriers plus
	// plain-fallback sessions. The dial-amortization win is Sessions -
	// Dials.
	Dials uint64
	// Reuses counts sessions that rode an already-live carrier.
	Reuses uint64
	// Fallbacks counts sessions dialed plain against non-v3 peers.
	Fallbacks uint64
	// Sessions counts all sessions attempted through the pool.
	Sessions uint64
}

func (st PoolStats) String() string {
	return fmt.Sprintf("%d sessions over %d dials (%d reused, %d plain fallback)",
		st.Sessions, st.Dials, st.Reuses, st.Fallbacks)
}

// Stats snapshots the pool's counters.
func (p *MuxPool) Stats() PoolStats {
	return PoolStats{
		Dials:     p.dials.Load(),
		Reuses:    p.reuses.Load(),
		Fallbacks: p.fallbacks.Load(),
		Sessions:  p.sessions.Load(),
	}
}

func (p *MuxPool) network() string {
	if p.Network == "" {
		return "tcp"
	}
	return p.Network
}

func (p *MuxPool) dialTimeout() time.Duration {
	if p.DialTimeout == 0 {
		return 10 * time.Second
	}
	return p.DialTimeout
}

func (p *MuxPool) sessionTimeout() time.Duration {
	if p.SessionTimeout == 0 {
		return 2 * time.Minute
	}
	return p.SessionTimeout
}

func (p *MuxPool) transport() Transport {
	if p.Transport == nil {
		return NetTransport
	}
	return p.Transport
}

// Do runs one session for h against the named set at addr, reusing the
// pooled carrier when the peer speaks v3 and falling back to a plain
// dial when it does not. Results are read from h afterwards, exactly as
// with Dialer.Do.
func (p *MuxPool) Do(addr, set string, h netproto.Handler) (transport.Stats, error) {
	return p.DoTimeout(addr, set, h, 0)
}

// DoTimeout is Do with a per-session deadline override: timeout > 0
// replaces the pool's SessionTimeout for this one session (the cluster
// layer derives per-peer adaptive deadlines from EWMA RTTs). Zero means
// the pool default.
func (p *MuxPool) DoTimeout(addr, set string, h netproto.Handler, timeout time.Duration) (transport.Stats, error) {
	p.sessions.Add(1)
	m, plain, err := p.carrier(addr)
	if err != nil {
		return transport.Stats{}, err
	}
	if plain {
		return p.plainDo(addr, set, h, timeout)
	}
	return p.runStream(m, set, h, timeout)
}

// Warm establishes the carrier for addr if none is live, so later
// concurrent sessions share it instead of racing the dial. Warming a
// plain-only peer is a no-op.
func (p *MuxPool) Warm(addr string) error {
	_, _, err := p.carrier(addr)
	return err
}

// carrier returns a live carrier for addr, dialing one if needed, or
// plain=true for peers that must be dialed per-session.
func (p *MuxPool) carrier(addr string) (m *muxConn, plain bool, err error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, false, ErrPoolClosed
	}
	if p.entries == nil {
		p.entries = make(map[string]*poolEntry)
	}
	e := p.entries[addr]
	if e == nil {
		e = &poolEntry{}
		p.entries[addr] = e
	}
	p.mu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.plainOnly {
		p.fallbacks.Add(1)
		return nil, true, nil
	}
	if e.m != nil && e.m.alive() {
		p.reuses.Add(1)
		return e.m, false, nil
	}
	m, err = p.dialCarrier(addr)
	if err != nil {
		if errors.Is(err, errMuxUnsupported) {
			// Memoized: every later session to this peer dials plain
			// without re-probing. (A connection cut during negotiation
			// lands here too — the cost is plain dialing against a v3
			// peer, which remains correct, just unpooled.)
			e.plainOnly = true
			p.fallbacks.Add(1)
			return nil, true, nil
		}
		return nil, false, err
	}
	e.m = m
	return m, false, nil
}

// dialCarrier dials addr and negotiates an RSYN v3 carrier on it.
func (p *MuxPool) dialCarrier(addr string) (*muxConn, error) {
	network := p.network()
	conn, err := p.transport().DialTimeout(network, addr, p.dialTimeout())
	if err != nil {
		return nil, fmt.Errorf("session: dial %s %s: %w", network, addr, err)
	}
	p.dials.Add(1)
	// Negotiation shares the dial budget; the deadline comes off once
	// the carrier is up (streams carry their own).
	conn.SetDeadline(time.Now().Add(p.dialTimeout())) //nolint:errcheck
	w := netproto.NewWire(conn)
	err = netproto.InitiateMux(w)
	w.Release()
	if err != nil {
		conn.Close()
		// A pre-v3 server fails version negotiation and drops the
		// connection without an accept; a v3 server with mux disabled
		// does the same, and one that serves carriers elsewhere answers
		// StatusMuxUnavailable. All mean: dial this peer plain.
		return nil, fmt.Errorf("%w: %v", errMuxUnsupported, err)
	}
	conn.SetDeadline(time.Time{}) //nolint:errcheck
	m := newMuxConn(conn, nil)
	if t := p.sessionTimeout(); t > 0 {
		// Bounds each carrier write so a peer that stops draining the
		// shared connection cannot wedge every stream forever.
		m.writeTimeout = t
	}
	go m.readLoop()
	return m, nil
}

// runStream runs one session on a fresh stream of a live carrier. The
// hello and the handler's first protocol frames go out immediately; the
// accept is verified on the session's first read (netproto's pipelined
// initiation), collapsing the opening exchange into one round trip.
func (p *MuxPool) runStream(m *muxConn, set string, h netproto.Handler, timeout time.Duration) (transport.Stats, error) {
	st, err := m.OpenStream()
	if err != nil {
		return transport.Stats{}, err
	}
	defer st.Close()
	if timeout == 0 {
		timeout = p.sessionTimeout()
	}
	if timeout > 0 {
		st.setTimeout(timeout)
	}
	w := netproto.NewWire(st)
	defer w.Release()
	pend, err := netproto.InitiateSetPipelined(w, h, set)
	if err != nil {
		return w.Stats(), err
	}
	if err := h.Run(pend.Conn()); err != nil {
		return w.Stats(), err
	}
	// Every protocol reads at least one response, so the accept has
	// normally been verified by now; this covers degenerate handlers
	// that never read.
	if err := pend.Complete(); err != nil {
		return w.Stats(), err
	}
	return w.Stats(), nil
}

// plainDo runs one session over its own connection, exactly as the
// pre-mux client would (the wire bytes are identical to Dialer.Do).
func (p *MuxPool) plainDo(addr, set string, h netproto.Handler, timeout time.Duration) (transport.Stats, error) {
	p.dials.Add(1)
	if timeout == 0 {
		timeout = p.SessionTimeout
	}
	d := Dialer{
		Network:        p.Network,
		Addr:           addr,
		Set:            set,
		DialTimeout:    p.DialTimeout,
		SessionTimeout: timeout,
		Transport:      p.Transport,
	}
	return d.Do(h)
}

// errPoolReset fails whatever streams are still live on a carrier the
// pool dropped via Reset.
var errPoolReset = errors.New("session: pool reset")

// Reset drops every pooled carrier: each is shut down and forgotten, so
// the next session per address dials fresh. The pool stays open and the
// plain-only memo survives (v3 support is a peer property, not a
// connection one). The point is determinism around network faults: a
// carrier severed by a partition is detected asynchronously by its read
// loop, so whether the next session sees "carrier failed" or a fresh
// dial is a race — a caller that knows connectivity just changed (the
// scenario harness applying a fault round) resets instead, making every
// post-fault session start from the same cold state.
func (p *MuxPool) Reset() {
	p.mu.Lock()
	entries := make([]*poolEntry, 0, len(p.entries))
	for _, e := range p.entries {
		entries = append(entries, e)
	}
	p.mu.Unlock()
	for _, e := range entries {
		e.mu.Lock()
		if e.m != nil {
			e.m.shutdown(errPoolReset)
			e.m = nil
		}
		e.mu.Unlock()
	}
}

// Close shuts down every pooled carrier; in-flight streams fail with
// ErrPoolClosed and later Do calls are refused. Idempotent.
func (p *MuxPool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	entries := make([]*poolEntry, 0, len(p.entries))
	for _, e := range p.entries {
		entries = append(entries, e)
	}
	p.mu.Unlock()
	for _, e := range entries {
		e.mu.Lock()
		if e.m != nil {
			e.m.shutdown(ErrPoolClosed)
		}
		e.mu.Unlock()
	}
	return nil
}

package session

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/live"
	"repro/internal/metric"
	"repro/internal/netproto"
	"repro/internal/rng"
	"repro/internal/store"
	"repro/internal/transport"
)

func randomPoints(space metric.Space, n int, seed uint64) metric.PointSet {
	src := rng.New(seed)
	out := make(metric.PointSet, n)
	for i := range out {
		pt := make(metric.Point, space.Dim)
		for j := range pt {
			pt[j] = int32(src.Uint64() % uint64(space.Delta+1))
		}
		out[i] = pt
	}
	return out
}

// newStoreServer builds a store hosting a default set and two named
// sets (all Sync-enabled, same seed), served via the resolver.
func newStoreServer(t *testing.T, cfg Config) (*Server, *store.Store, net.Listener) {
	t.Helper()
	st := store.New()
	space := metric.HammingCube(32)
	for i, name := range []string{"", "tenant-a", "tenant-b"} {
		cfg := live.Config{Sync: &live.SyncConfig{Seed: 99}}
		if _, err := st.Create(name, cfg, randomPoints(space, 10+5*i, uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	cfg.Resolver = netproto.StoreResolver(st)
	srv := NewServer(cfg)
	l, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, st, l
}

// probeVia runs one probe session against the named set and returns the
// session error.
func probeVia(t *testing.T, addr, set string, local *live.Set) error {
	t.Helper()
	d := Dialer{Addr: addr, Set: set}
	_, err := d.Do(netproto.NewProbeInitiator(local))
	return err
}

func TestNamedSetDispatch(t *testing.T) {
	_, st, l := newStoreServer(t, Config{})
	space := metric.HammingCube(32)
	local, err := live.NewSet(live.Config{Sync: &live.SyncConfig{Seed: 99}}, randomPoints(space, 4, 77))
	if err != nil {
		t.Fatal(err)
	}
	// Default set via v1 hello, named sets via v2.
	for _, set := range []string{"", "tenant-a", "tenant-b"} {
		if err := probeVia(t, l.Addr().String(), set, local); err != nil {
			t.Fatalf("probe of set %q: %v", set, err)
		}
	}
	// Repair against one tenant must not touch the other.
	a, _ := st.Get("tenant-a")
	b, _ := st.Get("tenant-b")
	bFP := b.IDFingerprint()
	init, err := netproto.NewRepairInitiator(local, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Dialer{Addr: l.Addr().String(), Set: "tenant-a"}).Do(init); err != nil {
		t.Fatalf("repair of tenant-a: %v", err)
	}
	if local.IDFingerprint() != a.IDFingerprint() {
		t.Fatal("repair did not converge client with tenant-a")
	}
	if b.IDFingerprint() != bFP {
		t.Fatal("repair of tenant-a mutated tenant-b")
	}
}

func TestUnknownSetRejected(t *testing.T) {
	_, _, l := newStoreServer(t, Config{})
	space := metric.HammingCube(32)
	local, err := live.NewSet(live.Config{Sync: &live.SyncConfig{Seed: 99}}, randomPoints(space, 4, 78))
	if err != nil {
		t.Fatal(err)
	}
	err = probeVia(t, l.Addr().String(), "no-such-tenant", local)
	if err == nil || !strings.Contains(err.Error(), "unknown set") {
		t.Fatalf("dial of unknown set: %v, want unknown set rejection", err)
	}
}

func TestHandleSetStaticDispatch(t *testing.T) {
	f := newFixture(t)
	srv := NewServer(Config{})
	// The sync responder is registered ONLY under a namespace; the
	// default set stays empty.
	srv.HandleSet("ns", func() netproto.Handler { return netproto.NewSyncResponder(f.syncParams, f.serverIDs) })
	l, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	h := netproto.NewSyncInitiator(f.syncParams, f.clientIDs)
	if _, err := (Dialer{Addr: l.Addr().String(), Set: "ns"}).Do(h); err != nil {
		t.Fatalf("namespaced sync: %v", err)
	}
	if len(h.TheirsOnly) != f.wantTheirs || len(h.MinesOnly) != f.wantMine {
		t.Fatalf("diff = %d/%d, want %d/%d", len(h.TheirsOnly), len(h.MinesOnly), f.wantTheirs, f.wantMine)
	}
	// The same protocol against the default set is an unknown set: the
	// server has no default registrations at all.
	h2 := netproto.NewSyncInitiator(f.syncParams, f.clientIDs)
	if _, err := (Dialer{Addr: l.Addr().String()}).Do(h2); err == nil {
		t.Fatal("default-set dial served despite no default registrations")
	}
}

// slowHandler blocks in Run until released (or the connection dies).
type slowHandler struct {
	release chan struct{}
	started chan struct{}
}

func (h *slowHandler) Proto() netproto.Proto { return netproto.ProtoSync }
func (h *slowHandler) Role() netproto.Role   { return netproto.RoleBob }
func (h *slowHandler) Digest() uint64        { return 0xfeed }
func (h *slowHandler) Run(conn transport.Conn) error {
	select {
	case h.started <- struct{}{}:
	default:
	}
	// Block on the peer's (never-sent) frame; a force-closed connection
	// unblocks with an error, a released peer sends one frame.
	_, err := conn.Recv()
	select {
	case <-h.release:
		return nil
	default:
		return err
	}
}

// slowClient is the slow handler's peer: it negotiates, then leaves the
// server's Run blocked in Recv until told to finish.
type slowClient struct {
	send chan struct{}
}

func (h *slowClient) Proto() netproto.Proto { return netproto.ProtoSync }
func (h *slowClient) Role() netproto.Role   { return netproto.RoleAlice }
func (h *slowClient) Digest() uint64        { return 0xfeed }
func (h *slowClient) Run(conn transport.Conn) error {
	<-h.send
	e := transport.NewEncoder()
	e.WriteBool(true)
	return conn.Send(e)
}

func TestShutdownDrainsCleanly(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	srv := NewServer(Config{})
	srv.Handle(func() netproto.Handler { return &slowHandler{release: release, started: started} })
	l, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	send := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		d := Dialer{Addr: l.Addr().String()}
		if _, err := d.Do(&slowClient{send: send}); err != nil {
			t.Errorf("client: %v", err)
		}
	}()
	<-started
	close(release)
	close(send)
	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("Shutdown = %v, want clean drain", err)
	}
	wg.Wait()
	if srv.Served() != 1 {
		t.Fatalf("Served = %d, want 1", srv.Served())
	}
}

func TestShutdownForceClosesStragglers(t *testing.T) {
	started := make(chan struct{}, 1)
	srv := NewServer(Config{})
	srv.Handle(func() netproto.Handler { return &slowHandler{release: make(chan struct{}), started: started} })
	l, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	send := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		d := Dialer{Addr: l.Addr().String()}
		_, err := d.Do(&slowClient{send: send}) // sends nothing until released
		errc <- err
	}()
	<-started
	start := time.Now()
	err = srv.Shutdown(50 * time.Millisecond)
	close(send) // release the client; its connection is already dead
	if !errors.Is(err, ErrDrainTimeout) {
		t.Fatalf("Shutdown = %v, want ErrDrainTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Shutdown took %v, drain deadline not enforced", elapsed)
	}
	if srv.Failed() != 1 {
		t.Fatalf("Failed = %d, want 1 (force-closed session accounted)", srv.Failed())
	}
	<-errc // client fails too; either way it returns
	// Idempotent: a second shutdown (or Close) returns immediately.
	if err := srv.Shutdown(time.Second); err != nil {
		t.Fatalf("second Shutdown = %v", err)
	}
}

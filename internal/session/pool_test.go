package session

import (
	"sync"
	"testing"

	"repro/internal/netproto"
)

// TestPooledCodecsNoCrossSessionAliasing runs many concurrent sessions
// over the pooled codec paths (recycled encoders, reused frame buffers,
// pooled riblt table memory) and checks every session recovers the
// identical reconciliation result. Bob's rounding randomness is derived
// from the shared seed, so S′B is deterministic: any cross-session
// buffer aliasing — a recycled frame read by the wrong session, a
// scratch arena shared by two peers — corrupts a sketch and surfaces as
// a protocol error or a diverging result. Run under -race in CI.
func TestPooledCodecsNoCrossSessionAliasing(t *testing.T) {
	f := newFixture(t)
	srv := NewServer(Config{MaxSessions: 8})
	factory, err := netproto.NewEMDSenderFactory(f.emdParams, f.emdSA)
	if err != nil {
		t.Fatal(err)
	}
	srv.Handle(factory)
	l, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	d := Dialer{Addr: l.Addr().String()}

	// Reference result from one clean session.
	ref := netproto.NewEMDReceiver(f.emdParams, f.emdSB)
	if _, err := d.Do(ref); err != nil {
		t.Fatal(err)
	}
	if ref.Result.Failed {
		t.Fatal("reference session failed to decode")
	}

	const workers, perWorker = 8, 12
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h := netproto.NewEMDReceiver(f.emdParams, f.emdSB)
				if _, err := d.Do(h); err != nil {
					errs <- err
					return
				}
				if h.Result.Failed != ref.Result.Failed || h.Result.Level != ref.Result.Level ||
					len(h.Result.SPrime) != len(ref.Result.SPrime) {
					t.Errorf("session diverged: level %d/%d, |S'| %d/%d",
						h.Result.Level, ref.Result.Level, len(h.Result.SPrime), len(ref.Result.SPrime))
					return
				}
				for j := range h.Result.SPrime {
					if !h.Result.SPrime[j].Equal(ref.Result.SPrime[j]) {
						t.Errorf("session S' diverged at point %d", j)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("session error: %v", err)
	}
}

package session

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netproto"
	"repro/internal/transport"
)

// ErrServerClosed is returned by Serve and ListenAndServe after Close.
var ErrServerClosed = errors.New("session: server closed")

// ErrListenerClosed is returned by Serve when the listener it was given
// is closed out from under a still-open server. It is distinct from
// ErrServerClosed (an orderly Close of the server itself) and from real
// accept failures (fd exhaustion, a dead socket), so shutdown-order
// tests — simnet scenarios tear listeners and servers down in scripted
// sequences — can branch on errors.Is instead of racing on error
// strings.
var ErrListenerClosed = errors.New("session: listener closed")

// Config tunes a Server. The zero value serves with the documented
// defaults.
type Config struct {
	// MaxSessions caps concurrently running sessions (default 64).
	// Excess connections wait for a slot rather than being rejected, so
	// a burst of peers degrades to queueing, not failures.
	MaxSessions int
	// SessionTimeout is the absolute wall-clock budget for one session,
	// enforced as a connection deadline covering negotiation and every
	// protocol round (default 2 minutes; negative disables).
	SessionTimeout time.Duration
	// OnSession, when set, is called after each session completes
	// (successfully or not), from the session's goroutine. Use it to
	// harvest typed results from the session's Handler.
	OnSession func(*Session)
	// DisableMux makes the server behave like a pre-v3 peer: an RSYN v3
	// carrier hello is dropped without an accept (byte-identically to an
	// old server failing version negotiation), so v3 dialers fall back
	// to one plain connection per session. Plain v1/v2 hellos are served
	// either way.
	DisableMux bool
	// Resolver, when set, resolves named-set hellos (RSYN v2) that no
	// statically registered factory covers — typically
	// netproto.StoreResolver over a multi-tenant store. It is consulted
	// for the default set too, so a store's "" set serves v1 peers.
	// Static registrations win when both exist.
	Resolver netproto.Resolver
	// Logf, when set, receives one line per session and per accept
	// error (e.g. log.Printf).
	Logf func(format string, args ...any)
	// Transport supplies listeners (nil = NetTransport, the real
	// network). Point it at a simnet host to serve the deterministic
	// virtual network instead.
	Transport Transport
}

// Server accepts connections and runs each as a Session against a
// registered handler factory. Handlers carry per-session state, so the
// server is configured with factories: one fresh handler per peer.
type Server struct {
	cfg Config
	sem chan struct{}

	mu        sync.Mutex
	factories map[factoryKey]func() netproto.Handler
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{} // in-flight session and carrier connections
	busy      int                   // in-flight session units (plain conns + mux streams)
	idle      *sync.Cond            // lazily built; signalled when busy drains (Quiesce)
	closed    bool
	serveErr  error // first terminal Serve failure

	wg      sync.WaitGroup
	done    chan struct{}
	nextID  atomic.Uint64
	active  atomic.Int64
	served  atomic.Uint64
	failed  atomic.Uint64
	traffic transport.Collector
}

type factoryKey struct {
	set   string // namespace ("" = default set)
	proto netproto.Proto
	role  netproto.Role
}

// NewServer builds a server; register handlers with Handle before
// serving.
func NewServer(cfg Config) *Server {
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 64
	}
	if cfg.Transport == nil {
		cfg.Transport = NetTransport
	}
	if cfg.SessionTimeout == 0 {
		cfg.SessionTimeout = 2 * time.Minute
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Server{
		cfg:       cfg,
		sem:       make(chan struct{}, cfg.MaxSessions),
		factories: make(map[factoryKey]func() netproto.Handler),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
		done:      make(chan struct{}),
	}
}

// Handle registers a handler factory for the default set. The factory
// is probed once to learn which (protocol, role) it serves; peers whose
// hello names the complementary role are dispatched to it. Registering
// the same (protocol, role) twice replaces the earlier factory.
func (s *Server) Handle(factory func() netproto.Handler) {
	s.HandleSet("", factory)
}

// HandleSet registers a handler factory under a set namespace: only
// hellos naming that set (RSYN v2; the empty name is the default set v1
// peers address) are dispatched to it. For serving a whole store of
// named sets, Config.Resolver scales better than enumerating
// registrations.
func (s *Server) HandleSet(set string, factory func() netproto.Handler) {
	probe := factory()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.factories[factoryKey{set, probe.Proto(), probe.Role()}] = factory
}

// factoryFor returns the factory whose handler complements the peer's
// declared role within the named set: static registrations first, then
// the resolver. setKnown reports whether the set exists at all (for the
// unknown-set rejection).
func (s *Server) factoryFor(set string, proto netproto.Proto, peerRole netproto.Role) (factory func() netproto.Handler, setKnown bool) {
	s.mu.Lock()
	f := s.factories[factoryKey{set, proto, peerRole.Peer()}]
	if f == nil && set == "" && len(s.factories) > 0 {
		// The default set exists whenever anything is statically
		// registered (the pre-namespace server shape).
		setKnown = true
	}
	if !setKnown {
		for k := range s.factories {
			if k.set == set {
				setKnown = true
				break
			}
		}
	}
	s.mu.Unlock()
	if f != nil {
		return f, true
	}
	if s.cfg.Resolver != nil {
		rf, exists := s.cfg.Resolver(set, proto, peerRole)
		if rf != nil {
			return rf, true
		}
		setKnown = setKnown || exists
	}
	return nil, setKnown
}

// servesProto reports whether any role of the protocol is statically
// registered in the set.
func (s *Server) servesProto(set string, proto netproto.Proto) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k := range s.factories {
		if k.set == set && k.proto == proto {
			return true
		}
	}
	return false
}

// Listen announces on the network (tcp/unix) address and serves in the
// background, returning the bound listener (useful with ":0"). A
// terminal Serve failure (other than Close) is retained and readable
// via Err, as well as logged via Logf. After Close, Listen fails with
// ErrServerClosed instead of binding a socket whose background Serve
// goroutine would exit immediately — the caller would otherwise hold a
// listener that looks live but serves nothing.
func (s *Server) Listen(network, addr string) (net.Listener, error) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, ErrServerClosed
	}
	l, err := s.cfg.Transport.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	go s.Serve(l) //nolint:errcheck // background serve; terminal errors surface via Err
	return l, nil
}

// Err returns the first terminal Serve failure (nil while healthy, and
// after an orderly Close). Callers running Serve in the background via
// Listen should check it when clients start failing.
func (s *Server) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.serveErr
}

// Serve accepts connections on l until Close, running each as a
// session. It always returns a non-nil error; after Close the error is
// ErrServerClosed.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return ErrServerClosed
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	var backoff time.Duration
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-s.done:
				return ErrServerClosed
			default:
			}
			// A closed listener on a still-open server is an orderly
			// teardown of that one listener, not an accept failure:
			// return the sentinel instead of the transport's wrapped
			// error so callers need not match error strings. It is not
			// recorded as the server's terminal failure — a server
			// whose other listeners keep serving is still healthy and
			// Err() must stay nil.
			if errors.Is(err, net.ErrClosed) {
				s.cfg.Logf("session: accept: %v", ErrListenerClosed)
				return ErrListenerClosed
			}
			// Transient failures (fd exhaustion under load, interrupted
			// accept) must not permanently stop the listener while the
			// daemon keeps running; retry with backoff, as net/http does.
			// net.Error.Temporary is deprecated but remains the only
			// signal that distinguishes EMFILE/ECONNABORTED from a dead
			// listener — net/http's Serve loop still relies on it.
			if ne, ok := err.(net.Error); ok && ne.Temporary() { //nolint:staticcheck
				if backoff == 0 {
					backoff = 5 * time.Millisecond
				} else if backoff *= 2; backoff > time.Second {
					backoff = time.Second
				}
				s.cfg.Logf("session: accept (retrying in %v): %v", backoff, err)
				select {
				case <-time.After(backoff):
					continue
				case <-s.done:
					return ErrServerClosed
				}
			}
			s.cfg.Logf("session: accept: %v", err)
			s.mu.Lock()
			if s.serveErr == nil {
				s.serveErr = err
			}
			s.mu.Unlock()
			return err
		}
		backoff = 0
		// wg.Add must not race with Close's wg.Wait: both take s.mu, so
		// either Close sees this session's Add and waits for it, or this
		// path sees closed and drops the connection.
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		s.wg.Add(1)
		s.conns[conn] = struct{}{}
		s.busy++
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// ListenAndServe announces on the network address and blocks serving it.
func (s *Server) ListenAndServe(network, addr string) error {
	l, err := s.cfg.Transport.Listen(network, addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// serveConn negotiates and runs one connection: a plain v1/v2 hello is
// one session, an RSYN v3 carrier hello turns the connection into a
// long-lived mux whose streams are the sessions.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	// billed: this connection counts as one in-flight session unit. A
	// carrier stops being one after negotiation — its streams are the
	// units Quiesce waits on — but stays in s.conns so Shutdown's
	// force-close still reaches it.
	billed := true
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		if billed {
			s.unbillLocked()
		}
		s.mu.Unlock()
	}()

	// Concurrency slot: block (bounded by the connection deadline set
	// below only after acquiring — a waiting peer is not yet billed).
	// Check done first so a closing server sheds waiting peers instead
	// of racing them against free slots; a session that does slip
	// through is still covered by wg, so Close waits for it.
	select {
	case <-s.done:
		return
	default:
	}
	select {
	case s.sem <- struct{}{}:
	case <-s.done:
		return
	}
	semHeld := true
	defer func() {
		if semHeld {
			<-s.sem
		}
	}()

	if s.cfg.SessionTimeout > 0 {
		conn.SetDeadline(time.Now().Add(s.cfg.SessionTimeout)) //nolint:errcheck
	}
	w := netproto.NewWire(conn)
	// Frame buffers go back to the pool once the session (including the
	// OnSession callback, which runs inside finish) is fully done; the
	// Session keeps the wire for Stats, which Release leaves intact.
	defer w.Release()
	sess := &Session{
		id:    s.nextID.Add(1),
		peer:  conn.RemoteAddr().String(),
		wire:  w,
		start: time.Now(),
	}
	hello, err := netproto.ReadHello(w)
	if err != nil {
		// Route through finish so Failed(), Stats() and OnSession stay
		// consistent; the Session has no negotiated proto or handler.
		s.finish(sess, fmt.Errorf("session: bad hello: %w", err))
		return
	}
	if hello.Mux {
		if s.cfg.DisableMux {
			// Byte-identical to a pre-v3 server, which fails version
			// negotiation and drops the connection without an accept;
			// the dialer's pool falls back to plain per-session dials.
			s.finish(sess, fmt.Errorf("session: v3 carrier hello refused (mux disabled)"))
			return
		}
		if err := netproto.SendAccept(w, netproto.StatusOK, 0); err != nil {
			s.finish(sess, err)
			return
		}
		w.Release()
		// The carrier is long-lived: it is not bound by the session
		// deadline (each stream gets its own), holds no concurrency
		// slot (each stream takes one), and is not a session unit
		// (Quiesce waits on its streams instead).
		conn.SetDeadline(time.Time{}) //nolint:errcheck
		<-s.sem
		semHeld = false
		s.mu.Lock()
		s.unbillLocked()
		s.mu.Unlock()
		billed = false
		s.cfg.Logf("session: mux carrier up for %s", sess.peer)
		s.serveMux(conn)
		s.cfg.Logf("session: mux carrier down for %s", sess.peer)
		return
	}
	s.runHello(w, hello, sess)
}

// runHello dispatches and runs one session whose (plain v1/v2) hello
// has been read from w; it always routes through finish, and returns
// the session's terminal error for the caller's teardown decisions.
func (s *Server) runHello(w *netproto.Wire, hello netproto.Hello, sess *Session) error {
	sess.proto = hello.Proto
	sess.set = hello.Set
	factory, setKnown := s.factoryFor(hello.Set, hello.Proto, hello.Role)
	if factory == nil {
		// Distinguish, in order: a namespace this server does not host
		// at all; a hosted namespace that does not serve the protocol;
		// and a served protocol whose matching role is taken.
		st := netproto.StatusUnknownSet
		if setKnown {
			st = netproto.StatusUnknownProto
			if s.servesProto(hello.Set, hello.Proto) {
				st = netproto.StatusRoleUnavailable
			} else if s.cfg.Resolver != nil {
				// The resolver cannot be enumerated; probing the
				// complementary peer role detects a role clash there.
				if f, _ := s.cfg.Resolver(hello.Set, hello.Proto, hello.Role.Peer()); f != nil {
					st = netproto.StatusRoleUnavailable
				}
			}
		}
		netproto.SendAccept(w, st, 0) //nolint:errcheck
		err := fmt.Errorf("session: no handler in set %q for %v as peer of %v: %v", hello.Set, hello.Proto, hello.Role, st)
		s.finish(sess, err)
		return err
	}
	h := factory()
	sess.handler = h
	sess.role = h.Role()
	if h.Digest() != hello.Digest {
		netproto.SendAccept(w, netproto.StatusDigestMismatch, h.Digest()) //nolint:errcheck
		err := fmt.Errorf("session: %v digest mismatch (local %#x, peer %#x)",
			hello.Proto, h.Digest(), hello.Digest)
		s.finish(sess, err)
		return err
	}
	if err := netproto.SendAccept(w, netproto.StatusOK, h.Digest()); err != nil {
		s.finish(sess, err)
		return err
	}
	s.active.Add(1)
	err := h.Run(w)
	s.active.Add(-1)
	s.finish(sess, err)
	return err
}

// serveMux demultiplexes a negotiated RSYN v3 carrier until the
// connection dies. Each peer-opened stream is billed as a session unit
// synchronously from the carrier's read loop — before any of the
// stream's bytes are readable — so a Quiesce barrier that has observed
// an initiator's result cannot miss the responder's still-running
// stream.
func (s *Server) serveMux(conn net.Conn) {
	var m *muxConn
	m = newMuxConn(conn, func(st *muxStream) {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			st.fail(ErrServerClosed)
			m.forget(st)
			return
		}
		s.wg.Add(1)
		s.busy++
		s.mu.Unlock()
		go s.serveStream(m, st)
	})
	if s.cfg.SessionTimeout > 0 {
		// Bounds each carrier write so one wedged peer cannot block the
		// shared connection forever.
		m.writeTimeout = s.cfg.SessionTimeout
	}
	// A healthy idle carrier never ends on its own; drain it when the
	// server closes so Close/Shutdown do not hang on a pooled peer.
	watch := make(chan struct{})
	go func() {
		select {
		case <-s.done:
			m.drain()
		case <-watch:
		}
	}()
	m.readLoop()
	close(watch)
}

// serveStream runs one multiplexed session: the stream carries exactly
// the byte stream a dedicated v1/v2 connection would.
func (s *Server) serveStream(m *muxConn, st *muxStream) {
	defer s.wg.Done()
	// Clean exits close quietly: the protocol's terminal frame already
	// released the initiator, and it closes the stream itself — an
	// announced close here would be the carrier's only spontaneous
	// responder write, racing the next stream's traffic. Error exits
	// announce, so an initiator blocked mid-protocol fails now rather
	// than at its session deadline (the mux analogue of the dedicated
	// connection's teardown close).
	sessErr := errors.New("session: stream aborted before negotiation")
	defer func() {
		if sessErr != nil {
			st.Close()
		} else {
			st.closeQuiet()
		}
		s.mu.Lock()
		s.unbillLocked()
		s.mu.Unlock()
	}()

	// Concurrency slot, exactly as for a dedicated connection: streams
	// queue for capacity rather than being rejected.
	select {
	case s.sem <- struct{}{}:
	case <-s.done:
		return
	}
	defer func() { <-s.sem }()

	if s.cfg.SessionTimeout > 0 {
		st.setTimeout(s.cfg.SessionTimeout)
	}
	w := netproto.NewWire(st)
	defer w.Release()
	sess := &Session{
		id:    s.nextID.Add(1),
		peer:  fmt.Sprintf("%s#%d", m.peerName, st.id),
		wire:  w,
		start: time.Now(),
	}
	hello, err := netproto.ReadHello(w)
	if err != nil {
		sessErr = fmt.Errorf("session: bad hello: %w", err)
		s.finish(sess, sessErr)
		return
	}
	if hello.Mux {
		netproto.SendAccept(w, netproto.StatusMuxUnavailable, 0) //nolint:errcheck
		sessErr = fmt.Errorf("session: nested carrier hello on mux stream")
		s.finish(sess, sessErr)
		return
	}
	sessErr = s.runHello(w, hello, sess)
}

// unbillLocked retires one in-flight session unit, waking Quiesce when
// the last one drains. Caller holds s.mu.
func (s *Server) unbillLocked() {
	s.busy--
	if s.busy == 0 && s.idle != nil {
		s.idle.Broadcast()
	}
}

// finish closes out a session: accounting, callback, log line.
func (s *Server) finish(sess *Session, err error) {
	sess.dur = time.Since(sess.start)
	sess.err = err
	s.traffic.Add(sess.wire.Stats())
	if err != nil {
		s.failed.Add(1)
	} else {
		s.served.Add(1)
	}
	if s.cfg.OnSession != nil {
		s.cfg.OnSession(sess)
	}
	st := sess.wire.Stats()
	set := sess.set
	if set == "" {
		set = "<default>"
	}
	if err != nil {
		s.cfg.Logf("session #%d %s set=%s proto=%v err=%v", sess.id, sess.peer, set, sess.proto, err)
	} else {
		s.cfg.Logf("session #%d %s set=%s proto=%v/%v %s in %v",
			sess.id, sess.peer, set, sess.proto, sess.role, st, sess.dur.Round(time.Microsecond))
	}
}

// Stats returns the aggregate traffic across all completed sessions and
// how many sessions completed (successfully or not). Safe to call
// concurrently with serving.
func (s *Server) Stats() (transport.Stats, int) {
	return s.traffic.Total()
}

// Served returns the number of sessions that completed successfully.
func (s *Server) Served() uint64 { return s.served.Load() }

// Failed returns the number of sessions that ended in an error,
// including rejected negotiations.
func (s *Server) Failed() uint64 { return s.failed.Load() }

// Active returns the number of sessions currently mid-protocol.
func (s *Server) Active() int64 { return s.active.Load() }

// Quiesce blocks until every connection accepted so far has finished
// its session and been fully torn down (handler done, accounting and
// OnSession callback included). It does not stop the server or prevent
// new connections; callers that need a stable barrier — the
// deterministic simulation harness quiesces the whole mesh between
// anti-entropy rounds, because a repair responder applies its merge
// after the initiator's session already returned — must ensure no new
// dials race the call.
func (s *Server) Quiesce() {
	s.mu.Lock()
	for s.busy > 0 {
		s.idleWait().Wait()
	}
	s.mu.Unlock()
}

// idleWait returns the cond signalled when the in-flight session units
// (plain connections and mux streams; idle carriers don't count) drain.
// Caller holds s.mu.
func (s *Server) idleWait() *sync.Cond {
	if s.idle == nil {
		s.idle = sync.NewCond(&s.mu)
	}
	return s.idle
}

// Close stops accepting, closes all listeners, and waits for running
// sessions to finish (bounded by their connection deadlines).
func (s *Server) Close() error {
	s.beginClose()
	s.wg.Wait()
	return nil
}

// ErrDrainTimeout is returned by Shutdown when in-flight sessions were
// force-closed because they outlived the drain deadline.
var ErrDrainTimeout = errors.New("session: drain deadline exceeded, sessions force-closed")

// Shutdown stops accepting and drains gracefully: in-flight sessions
// get up to drain to finish on their own, then their connections are
// force-closed (the handlers fail with a closed-connection error and
// still go through normal accounting). It returns nil on a clean drain
// and ErrDrainTimeout when force-closing was needed; either way, no
// session goroutines remain on return. drain <= 0 force-closes
// immediately.
func (s *Server) Shutdown(drain time.Duration) error {
	s.beginClose()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	if drain > 0 {
		select {
		case <-done:
			return nil
		case <-time.After(drain):
		}
	}
	s.mu.Lock()
	stragglers := len(s.conns)
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	<-done
	if stragglers == 0 {
		return nil
	}
	s.cfg.Logf("session: shutdown force-closed %d in-flight sessions after %v drain", stragglers, drain)
	return ErrDrainTimeout
}

// beginClose makes the server stop accepting: mark closed, wake
// waiters, close listeners. Idempotent.
func (s *Server) beginClose() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	close(s.done)
	for l := range s.listeners {
		l.Close()
	}
}

package session

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// fuzzAddr is the synthetic peer address of a fuzzed carrier.
type fuzzAddr struct{}

func (fuzzAddr) Network() string { return "fuzz" }
func (fuzzAddr) String() string  { return "fuzz-peer" }

// fuzzCarrierConn replays a captured inbound byte stream as one side of
// a carrier connection; outbound writes vanish.
type fuzzCarrierConn struct{ r io.Reader }

func (c fuzzCarrierConn) Read(p []byte) (int, error)       { return c.r.Read(p) }
func (c fuzzCarrierConn) Write(p []byte) (int, error)      { return len(p), nil }
func (c fuzzCarrierConn) Close() error                     { return nil }
func (c fuzzCarrierConn) LocalAddr() net.Addr              { return fuzzAddr{} }
func (c fuzzCarrierConn) RemoteAddr() net.Addr             { return fuzzAddr{} }
func (c fuzzCarrierConn) SetDeadline(time.Time) error      { return nil }
func (c fuzzCarrierConn) SetReadDeadline(time.Time) error  { return nil }
func (c fuzzCarrierConn) SetWriteDeadline(time.Time) error { return nil }

// muxFrame encodes one carrier frame the way writeFrame does, for
// seeding the fuzz corpus with well-formed and near-well-formed inputs.
func muxFrame(id, kind uint64, data []byte) []byte {
	b := []byte{0, 0, 0, 0}
	b = binary.AppendUvarint(b, id)
	b = binary.AppendUvarint(b, kind)
	if kind == muxFrameData {
		b = binary.AppendUvarint(b, uint64(len(data)))
		b = append(b, data...)
	}
	binary.BigEndian.PutUint32(b, uint32(len(b)-4))
	return b
}

func muxFuzzSeeds() map[string][]byte {
	cat := func(frames ...[]byte) []byte { return bytes.Join(frames, nil) }
	return map[string][]byte{
		// A clean little session: open, two data chunks, close.
		"valid-session": cat(
			muxFrame(1, muxFrameOpen, nil),
			muxFrame(1, muxFrameData, []byte("hello")),
			muxFrame(1, muxFrameData, []byte("world")),
			muxFrame(1, muxFrameClose, nil),
		),
		// Two interleaved streams (the pipelined shape).
		"interleaved": cat(
			muxFrame(1, muxFrameOpen, nil),
			muxFrame(2, muxFrameOpen, nil),
			muxFrame(1, muxFrameData, []byte("a")),
			muxFrame(2, muxFrameData, []byte("b")),
			muxFrame(2, muxFrameClose, nil),
			muxFrame(1, muxFrameClose, nil),
		),
		// Hostile headers the demux must reject without allocating.
		"stream-zero":      muxFrame(0, muxFrameData, []byte("x")),
		"unknown-kind":     muxFrame(1, 7, nil),
		"data-unopened":    muxFrame(3, muxFrameData, []byte("x")),
		"reopen":           cat(muxFrame(2, muxFrameOpen, nil), muxFrame(1, muxFrameOpen, nil)),
		"open-trailing":    cat(muxFrame(1, muxFrameOpen, nil)[:4+2], []byte{0xff, 0xff}),
		"length-overrun":   append([]byte{0, 0, 0, 5, 0x01, 0x00, 0xff}, 0, 0),
		"length-underrun":  append([]byte{0, 0, 0, 6, 0x01, 0x00, 0x01}, 'x', 'y', 'z'),
		"giant-frame":      {0xff, 0xff, 0xff, 0xff},
		"truncated-header": {0x00, 0x00},
		"truncated-frame":  {0x00, 0x00, 0x01, 0x00, 0x01},
	}
}

// FuzzMuxFrames hardens the v3 carrier demux: an arbitrary inbound byte
// stream — a hostile or corrupted peer — must terminate the read loop
// with a terminal carrier error, never panic, deliver streams with
// strictly increasing IDs, and never buffer past the per-stream cap.
// The checked-in corpus (testdata/fuzz/FuzzMuxFrames) seeds clean
// sessions, interleaved streams, and each rejection path; CI runs the
// fuzzer briefly on top.
func FuzzMuxFrames(f *testing.F) {
	for _, seed := range muxFuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Accepting side: peer-opened streams are surfaced via onStream.
		var streams []*muxStream
		var lastID uint64
		m := newMuxConn(fuzzCarrierConn{bytes.NewReader(data)}, func(st *muxStream) {
			if st.id <= lastID {
				t.Fatalf("stream %d delivered after %d", st.id, lastID)
			}
			lastID = st.id
			streams = append(streams, st)
		})
		m.readLoop()
		if m.alive() {
			t.Fatal("read loop returned with the carrier still alive")
		}
		for _, st := range streams {
			st.mu.Lock()
			if st.buf.Len() > maxMuxBuffer {
				t.Fatalf("stream %d buffered %d bytes past the cap", st.id, st.buf.Len())
			}
			st.mu.Unlock()
			st.Close() //nolint:errcheck
		}

		// Dialing side: the peer cannot open streams at all, so the same
		// bytes must at most close/feed locally opened stream 1.
		md := newMuxConn(fuzzCarrierConn{bytes.NewReader(data)}, nil)
		st, err := md.OpenStream()
		if err != nil {
			t.Fatalf("open on fresh carrier: %v", err)
		}
		md.readLoop()
		if md.alive() {
			t.Fatal("dialing read loop returned with the carrier still alive")
		}
		st.Close() //nolint:errcheck
	})
}

// TestGenerateMuxFuzzCorpus regenerates the checked-in seed corpus
// under testdata/fuzz (run with GEN_FUZZ_CORPUS=1; skipped otherwise),
// so CI's brief -fuzz runs start from meaningful inputs even on a cold
// fuzz cache.
func TestGenerateMuxFuzzCorpus(t *testing.T) {
	if os.Getenv("GEN_FUZZ_CORPUS") == "" {
		t.Skip("set GEN_FUZZ_CORPUS=1 to regenerate the checked-in corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzMuxFrames")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, seed := range muxFuzzSeeds() {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

package session

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/transport"
)

// RSYN v3 carrier framing: after the carrier hello/accept exchange,
// the connection carries mux frames, each a 4-byte big-endian length
// prefix followed by a payload of
//
//	stream uvarint  stream ID (>= 1; assigned by the dialing side,
//	                strictly increasing over the carrier's lifetime)
//	kind   uvarint  0 = data, 1 = close, 2 = open
//	data   bytes    data frames only: uvarint length + raw bytes,
//	                extending exactly to the end of the frame
//
// A stream's concatenated data chunks are byte-identical to the byte
// stream of a dedicated v1/v2 session connection: the session hello,
// accept, and every protocol frame, in netproto.Wire's framing. Each
// inner wire frame is written as exactly one mux data frame, so frame
// boundaries — the flush points fault injection keys on — survive
// multiplexing.
//
// Stream lifecycle: the dialer announces a fresh ID with an empty open
// frame, written atomically with the ID assignment so open frames hit
// the wire in strictly increasing ID order even when streams open
// concurrently (the accepting demux distinguishes "new stream" from
// "late frame for a forgotten stream" purely by that monotonicity);
// the session hello follows as the stream's first data frame. Each
// side sends one close frame when its half of the session is done and
// forgets the stream as soon as it has closed locally — late frames
// for a forgotten ID are dropped. Protocol violations (stream ID 0, a
// server-side frame on an ID the dialer never opened, a data frame for
// an ID never announced by an open frame, a non-monotonic open, an
// unknown kind, a data length that overruns its frame, too many live
// streams, an overfull stream buffer) kill the whole carrier: all live
// streams fail with the connection error, and the dialer's pool
// re-dials.
const (
	muxFrameData  = 0
	muxFrameClose = 1
	muxFrameOpen  = 2

	// maxMuxFrame bounds one carrier frame: an inner wire frame
	// (netproto caps those at 1<<28) plus a few header bytes. Enforced
	// before any allocation, so a hostile length prefix cannot reserve
	// memory.
	maxMuxFrame = 1<<28 + 64
	// maxMuxBuffer caps one stream's undelivered inbound bytes. The
	// alternating protocols above never buffer more than the frames of
	// one pipelined opening flight; a peer pushing unbounded data into
	// a stream nobody is reading is hostile, and kills the carrier.
	maxMuxBuffer = 1 << 28
	// maxMuxStreams caps concurrently live streams per carrier.
	maxMuxStreams = 1024
)

// errMuxStreamClosed is returned by operations on a locally closed
// stream.
var errMuxStreamClosed = errors.New("session: mux stream closed")

// muxConn is one endpoint of an RSYN v3 carrier. Both sides run the
// same demux read loop; the side that accepts peer-opened streams
// (the server) sets onStream, the dialing side opens streams with
// OpenStream. The read loop must always be draining — that is what
// lets a peer's writes complete while local handlers are mid-frame,
// and what makes pipelined opening flights deadlock-free over
// synchronous pipes.
type muxConn struct {
	conn net.Conn
	// peerName is the remote address, captured at negotiation so log
	// lines and stream session records survive the connection's death.
	peerName string
	// onStream, when set, is called synchronously from the read loop
	// for each peer-opened stream, before any of its data is pushed.
	onStream func(*muxStream)
	// writeTimeout bounds each carrier write (0 = none): a peer that
	// stops draining would otherwise block writers forever, since
	// per-stream deadlines cannot cover a shared connection.
	writeTimeout time.Duration

	wmu  sync.Mutex
	wbuf []byte // reusable outbound frame staging
	// pend holds encoded open frames staged by OpenStream and not yet
	// flushed: they piggyback in front of the carrier's next outbound
	// frame in the same conn write. An open is always followed at once
	// by the new stream's hello (same goroutine), so staging adds no
	// latency — it removes one wire flush per stream, which is exactly
	// one round-trip charge on a latency-priced link.
	pend []byte

	mu       sync.Mutex
	streams  map[uint64]*muxStream
	nextID   uint64 // next locally opened stream ID
	maxSeen  uint64 // highest peer-opened stream ID
	err      error  // terminal carrier error; nil while healthy
	draining bool   // close the conn when the last stream finishes
}

func newMuxConn(conn net.Conn, onStream func(*muxStream)) *muxConn {
	return &muxConn{
		conn:     conn,
		peerName: conn.RemoteAddr().String(),
		onStream: onStream,
		streams:  make(map[uint64]*muxStream),
		nextID:   1,
	}
}

// alive reports whether the carrier can still open streams.
func (m *muxConn) alive() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err == nil
}

// fail kills the carrier: records the first error, closes the raw
// connection, and fails every live stream with it. The simnet cut
// error (or whatever severed the conn) propagates verbatim via %w.
func (m *muxConn) fail(err error) {
	m.mu.Lock()
	if m.err != nil {
		m.mu.Unlock()
		return
	}
	m.err = fmt.Errorf("session: mux carrier failed: %w", err)
	failed := make([]*muxStream, 0, len(m.streams))
	for _, st := range m.streams {
		failed = append(failed, st)
	}
	m.streams = make(map[uint64]*muxStream)
	cerr := m.err
	// Close before publishing the error: any observer that sees a dead
	// carrier may rely on its connection being fully released (the
	// simnet leak gauge checks open endpoints right after teardown).
	m.conn.Close()
	m.mu.Unlock()
	for _, st := range failed {
		st.fail(cerr)
	}
}

// shutdown closes the carrier deliberately (pool close): live streams
// fail with the given reason.
func (m *muxConn) shutdown(reason error) {
	m.fail(reason)
}

// drain stops the carrier once idle: if no streams are live the
// connection closes now, otherwise it closes when the last stream is
// forgotten. New peer-opened streams are still accepted by the read
// loop; the server rejects them at a higher level while closing.
func (m *muxConn) drain() {
	m.mu.Lock()
	m.draining = true
	closeNow := len(m.streams) == 0 && m.err == nil
	m.mu.Unlock()
	if closeNow {
		m.conn.Close()
	}
}

// OpenStream allocates the next locally owned stream and announces it
// to the peer with an open frame. The write lock is held across the ID
// assignment and the staging so open frames reach the wire in ID
// order — otherwise two streams opening concurrently could deliver the
// higher ID first and the peer's monotonicity check would silently
// discard the lower stream as a late frame. The open frame is staged,
// not flushed: it rides in front of the carrier's next outbound frame
// (normally this stream's own hello) in a single write.
func (m *muxConn) OpenStream() (*muxStream, error) {
	m.wmu.Lock()
	m.mu.Lock()
	if m.err != nil {
		err := m.err
		m.mu.Unlock()
		m.wmu.Unlock()
		return nil, err
	}
	if len(m.streams) >= maxMuxStreams {
		m.mu.Unlock()
		m.wmu.Unlock()
		return nil, fmt.Errorf("session: mux carrier at %d live streams", maxMuxStreams)
	}
	st := newMuxStream(m, m.nextID)
	m.streams[m.nextID] = st
	m.nextID++
	m.mu.Unlock()
	m.pend = appendMuxFrame(m.pend, st.id, muxFrameOpen, nil)
	m.wmu.Unlock()
	return st, nil
}

// forget drops a stream from the routing table; late inbound frames
// for its ID are discarded. When the carrier is draining and this was
// the last stream, the connection closes.
func (m *muxConn) forget(st *muxStream) {
	m.mu.Lock()
	delete(m.streams, st.id)
	closeNow := m.draining && len(m.streams) == 0 && m.err == nil
	m.mu.Unlock()
	if closeNow {
		m.conn.Close()
	}
}

// appendMuxFrame encodes one carrier frame (length prefix backfilled)
// onto b.
func appendMuxFrame(b []byte, id uint64, kind uint64, data []byte) []byte {
	start := len(b)
	b = append(b, 0, 0, 0, 0)
	b = binary.AppendUvarint(b, id)
	b = binary.AppendUvarint(b, kind)
	if kind == muxFrameData {
		b = binary.AppendUvarint(b, uint64(len(data)))
		b = append(b, data...)
	}
	binary.BigEndian.PutUint32(b[start:], uint32(len(b)-start-4))
	return b
}

// writeFrame sends one carrier frame — preceded by any staged open
// frames — in a single conn write (the frame boundary is the flush
// point, as for inner wire frames). The staging buffer is reused
// across frames, so the steady state allocates nothing.
func (m *muxConn) writeFrame(id uint64, kind uint64, data []byte) error {
	m.wmu.Lock()
	err := m.writeFrameLocked(id, kind, data)
	m.wmu.Unlock()
	if err != nil {
		return m.sealWriteError(err)
	}
	return nil
}

// writeFrameLocked stages and writes one frame plus any pending open
// frames; the caller holds wmu.
func (m *muxConn) writeFrameLocked(id uint64, kind uint64, data []byte) error {
	b := m.wbuf[:0]
	if len(m.pend) > 0 {
		b = append(b, m.pend...)
		m.pend = m.pend[:0]
	}
	b = appendMuxFrame(b, id, kind, data)
	m.wbuf = b
	if m.writeTimeout > 0 {
		m.conn.SetWriteDeadline(time.Now().Add(m.writeTimeout)) //nolint:errcheck
	}
	_, err := m.conn.Write(b)
	return err
}

// sealWriteError kills the carrier over a failed write and returns the
// carrier's terminal error (the first failure wins).
func (m *muxConn) sealWriteError(err error) error {
	m.fail(err)
	m.mu.Lock()
	err = m.err
	m.mu.Unlock()
	return err
}

// readLoop demultiplexes carrier frames until the connection dies. It
// reuses one frame buffer; stream payloads are copied out into the
// per-stream inbound buffers before the next frame overwrites it.
func (m *muxConn) readLoop() {
	var hdr [4]byte
	var buf []byte
	var dec transport.Decoder
	for {
		if _, err := io.ReadFull(m.conn, hdr[:]); err != nil {
			m.fail(err)
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n > maxMuxFrame {
			m.fail(fmt.Errorf("carrier frame of %d bytes exceeds limit", n))
			return
		}
		if uint32(cap(buf)) < n {
			buf = make([]byte, n)
		}
		frame := buf[:n]
		if _, err := io.ReadFull(m.conn, frame); err != nil {
			m.fail(err)
			return
		}
		dec.Reset(frame)
		if err := m.dispatch(&dec, frame); err != nil {
			m.fail(err)
			return
		}
	}
}

// dispatch routes one carrier frame. A non-nil error is a protocol
// violation and kills the carrier.
func (m *muxConn) dispatch(d *transport.Decoder, frame []byte) error {
	id, err := d.ReadUvarint()
	if err != nil {
		return fmt.Errorf("carrier frame header: %w", err)
	}
	if id == 0 {
		return errors.New("carrier frame names stream 0")
	}
	kind, err := d.ReadUvarint()
	if err != nil {
		return fmt.Errorf("carrier frame header: %w", err)
	}
	switch kind {
	case muxFrameData:
		// Validate the declared length against the bytes actually
		// present (transport.Decoder.Remaining) BEFORE touching them: a
		// hostile header must not reserve memory or alias the next
		// frame. The length must also account for exactly the rest of
		// the frame — the outer length prefix already delimits the
		// data, so the inner one is a pure integrity check.
		n, err := d.ReadUvarint()
		if err != nil {
			return fmt.Errorf("carrier data frame: %w", err)
		}
		rem := d.Remaining()
		if n > uint64(rem) {
			return fmt.Errorf("carrier data frame claims %d bytes, %d present", n, rem)
		}
		if n < uint64(rem) {
			return fmt.Errorf("carrier data frame has %d trailing bytes", uint64(rem)-n)
		}
		return m.deliver(id, frame[len(frame)-rem:])
	case muxFrameClose:
		if d.Remaining() != 0 {
			return fmt.Errorf("carrier close frame has %d trailing bytes", d.Remaining())
		}
		m.remoteClose(id)
		return nil
	case muxFrameOpen:
		if d.Remaining() != 0 {
			return fmt.Errorf("carrier open frame has %d trailing bytes", d.Remaining())
		}
		return m.openRemote(id)
	default:
		return fmt.Errorf("carrier frame of unknown kind %d", kind)
	}
}

// openRemote accepts a peer-opened stream ID (accepting side only; the
// server never opens streams toward the dialer).
func (m *muxConn) openRemote(id uint64) error {
	m.mu.Lock()
	if m.err != nil {
		m.mu.Unlock()
		return nil
	}
	if m.onStream == nil {
		m.mu.Unlock()
		return fmt.Errorf("peer opened stream %d on a dialing carrier", id)
	}
	if id <= m.maxSeen {
		m.mu.Unlock()
		return fmt.Errorf("peer re-opened stream %d (highest seen %d)", id, m.maxSeen)
	}
	if len(m.streams) >= maxMuxStreams {
		m.mu.Unlock()
		return fmt.Errorf("peer exceeded %d live streams", maxMuxStreams)
	}
	m.maxSeen = id
	st := newMuxStream(m, id)
	m.streams[id] = st
	onStream := m.onStream
	m.mu.Unlock()
	// Synchronous: the accepting side must account the session before
	// any of its bytes are readable, so a quiesce barrier that observed
	// the initiator's result also observes this stream.
	onStream(st)
	return nil
}

// deliver routes a data chunk to its stream. Frames for a forgotten
// (closed) stream are dropped; data for an ID never announced by an
// open frame is a protocol violation.
func (m *muxConn) deliver(id uint64, data []byte) error {
	m.mu.Lock()
	if m.err != nil {
		m.mu.Unlock()
		return nil
	}
	st := m.streams[id]
	if st == nil {
		if m.onStream == nil {
			// Dialing side: the peer cannot invent streams. An ID below
			// nextID is a forgotten (closed) stream — late frames are
			// dropped; anything else is a peer-invented stream.
			if id >= m.nextID {
				m.mu.Unlock()
				return fmt.Errorf("peer opened stream %d on a dialing carrier", id)
			}
			m.mu.Unlock()
			return nil
		}
		if id <= m.maxSeen {
			// Forgotten stream; drop the late frame.
			m.mu.Unlock()
			return nil
		}
		m.mu.Unlock()
		return fmt.Errorf("data frame for unopened stream %d", id)
	}
	m.mu.Unlock()
	return st.push(data)
}

// remoteClose marks the peer's half of a stream closed. Unknown IDs
// (forgotten streams, or a hostile close-before-data) are ignored.
func (m *muxConn) remoteClose(id uint64) {
	m.mu.Lock()
	st := m.streams[id]
	m.mu.Unlock()
	if st != nil {
		st.closeRemote()
	}
}

// muxStream is one multiplexed session's byte stream: an io.ReadWriter
// a netproto.Wire wraps exactly as it would a dedicated connection.
type muxStream struct {
	m  *muxConn
	id uint64

	mu           sync.Mutex
	cond         *sync.Cond
	buf          bytes.Buffer // undelivered inbound bytes
	err          error        // terminal stream error (carrier death, timeout)
	localClosed  bool
	remoteClosed bool
	timer        *time.Timer // session deadline
}

func newMuxStream(m *muxConn, id uint64) *muxStream {
	st := &muxStream{m: m, id: id}
	st.cond = sync.NewCond(&st.mu)
	return st
}

// setTimeout arms the stream's session deadline: when it fires, every
// blocked and subsequent operation fails. Streams cannot use the
// shared connection's deadline — it would sever every co-muxed
// session.
func (st *muxStream) setTimeout(d time.Duration) {
	if d <= 0 {
		return
	}
	st.mu.Lock()
	st.timer = time.AfterFunc(d, func() {
		st.fail(fmt.Errorf("session: mux stream %d: session timeout after %v", st.id, d))
	})
	st.mu.Unlock()
}

// fail marks the stream dead with err, waking blocked readers.
func (st *muxStream) fail(err error) {
	st.mu.Lock()
	if st.err == nil {
		st.err = err
	}
	if st.timer != nil {
		st.timer.Stop()
	}
	st.cond.Broadcast()
	st.mu.Unlock()
}

// push appends an inbound chunk (called from the carrier read loop).
// Data for a failed stream is dropped — the peer doesn't know yet;
// data after the peer's own close, or past the buffer cap, is a
// protocol violation that kills the carrier.
func (st *muxStream) push(data []byte) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.err != nil || st.localClosed {
		return nil
	}
	if st.remoteClosed {
		return fmt.Errorf("data on stream %d after its close", st.id)
	}
	if st.buf.Len()+len(data) > maxMuxBuffer {
		return fmt.Errorf("stream %d exceeded %d buffered bytes", st.id, maxMuxBuffer)
	}
	st.buf.Write(data)
	st.cond.Broadcast()
	return nil
}

// closeRemote marks the peer's half closed: reads drain the buffer and
// then return io.EOF.
func (st *muxStream) closeRemote() {
	st.mu.Lock()
	st.remoteClosed = true
	st.cond.Broadcast()
	st.mu.Unlock()
}

// Read implements io.Reader over the stream's inbound buffer.
func (st *muxStream) Read(p []byte) (int, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for {
		if st.buf.Len() > 0 {
			return st.buf.Read(p)
		}
		if st.err != nil {
			return 0, st.err
		}
		if st.localClosed {
			return 0, errMuxStreamClosed
		}
		if st.remoteClosed {
			return 0, io.EOF
		}
		st.cond.Wait()
	}
}

// Write implements io.Writer: one call becomes one carrier data frame
// (netproto.Wire writes exactly one frame per call, preserving frame
// boundaries through the mux).
func (st *muxStream) Write(p []byte) (int, error) {
	st.mu.Lock()
	if st.err != nil {
		err := st.err
		st.mu.Unlock()
		return 0, err
	}
	if st.localClosed {
		st.mu.Unlock()
		return 0, errMuxStreamClosed
	}
	st.mu.Unlock()
	if err := st.m.writeFrame(st.id, muxFrameData, p); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Close ends the local half of the stream: a close frame tells the
// peer (best effort — a dead carrier already told it), the deadline
// timer stops, and the carrier forgets the stream. Idempotent.
func (st *muxStream) Close() error { return st.close(true) }

// closeQuiet ends the local half without announcing it. Responders use
// it on clean session exits: their protocol's terminal frame has
// already been read by the initiator, who closes its own half — while a
// spontaneous close frame here would race the initiator's next stream's
// traffic on the shared connection, perturbing the byte-offset ordering
// deterministic fault injection keys on. Error exits still announce, so
// a blocked initiator is released immediately instead of by timeout.
func (st *muxStream) closeQuiet() { st.close(false) } //nolint:errcheck

func (st *muxStream) close(announce bool) error {
	st.mu.Lock()
	if st.localClosed {
		st.mu.Unlock()
		return nil
	}
	st.localClosed = true
	if st.timer != nil {
		st.timer.Stop()
	}
	dead := st.err != nil
	st.cond.Broadcast()
	st.mu.Unlock()
	if announce && !dead {
		st.m.writeFrame(st.id, muxFrameClose, nil) //nolint:errcheck // carrier death is surfaced elsewhere
	}
	st.m.forget(st)
	return nil
}

package session

import (
	"fmt"
	"time"

	"repro/internal/netproto"
	"repro/internal/transport"
)

// Dialer opens client sessions against a reconciliation server. The zero
// value plus an Addr dials TCP with the documented defaults. A Dialer is
// stateless and safe for concurrent use; each Do opens one connection,
// runs one session, and closes it.
type Dialer struct {
	// Network is "tcp" or "unix" (default "tcp").
	Network string
	// Addr is the server address (host:port, or a socket path).
	Addr string
	// Set names the server-side set namespace to reconcile against
	// (RSYN v2). Empty dials the default set with a v1 hello, so a zero
	// Dialer interoperates with v1 servers.
	Set string
	// DialTimeout bounds connection establishment (default 10s).
	DialTimeout time.Duration
	// SessionTimeout is the absolute budget for the whole session
	// (default 2 minutes; negative disables).
	SessionTimeout time.Duration
	// Transport supplies connections (nil = NetTransport, the real
	// network). Point it at a simnet host to dial through the
	// deterministic virtual network instead.
	Transport Transport
}

// Do dials the server, negotiates a session for h, and runs its state
// machine to completion. Typed results are read from h afterwards; the
// returned stats are this endpoint's tally, header frames included.
func (d Dialer) Do(h netproto.Handler) (transport.Stats, error) {
	network := d.Network
	if network == "" {
		network = "tcp"
	}
	dialTimeout := d.DialTimeout
	if dialTimeout == 0 {
		dialTimeout = 10 * time.Second
	}
	sessionTimeout := d.SessionTimeout
	if sessionTimeout == 0 {
		sessionTimeout = 2 * time.Minute
	}
	tr := d.Transport
	if tr == nil {
		tr = NetTransport
	}
	conn, err := tr.DialTimeout(network, d.Addr, dialTimeout)
	if err != nil {
		return transport.Stats{}, fmt.Errorf("session: dial %s %s: %w", network, d.Addr, err)
	}
	defer conn.Close()
	if sessionTimeout > 0 {
		conn.SetDeadline(time.Now().Add(sessionTimeout)) //nolint:errcheck
	}
	w := netproto.NewWire(conn)
	// Handlers materialize their results before Run returns, so the
	// frame buffers can go back to the pool as soon as the session ends
	// (stats are read before the deferred Release runs).
	defer w.Release()
	if err := netproto.InitiateSet(w, h, d.Set); err != nil {
		return w.Stats(), err
	}
	if err := h.Run(w); err != nil {
		return w.Stats(), err
	}
	return w.Stats(), nil
}

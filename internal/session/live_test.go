package session

import (
	"sync"
	"testing"

	"repro/internal/emd"
	"repro/internal/live"
	"repro/internal/metric"
	"repro/internal/netproto"
	"repro/internal/rng"
)

// TestServerLiveChurn is the end-to-end check for live serving: a
// server whose EMD state lives in a live.Set, mutated concurrently
// while peers sync over real TCP sockets. Returning peers (persistent
// caches) must end consistent with the server — every session's
// fingerprint check passes — and new sessions must always see a
// consistent epoch snapshot, churn racing or not. Run with -race in CI.
func TestServerLiveChurn(t *testing.T) {
	space := metric.HammingCube(64)
	p := emd.Params{Space: space, N: 32, K: 3, D1: 2, D2: 64, Seed: 7}
	src := rng.New(61)
	randPt := func() metric.Point {
		pt := make(metric.Point, space.Dim)
		for i := range pt {
			pt[i] = int32(src.Uint64() % 2)
		}
		return pt
	}
	var sa metric.PointSet
	for i := 0; i < p.N; i++ {
		sa = append(sa, randPt())
	}
	ls, err := live.NewSet(live.Config{EMD: &p}, sa)
	if err != nil {
		t.Fatal(err)
	}
	factory, err := netproto.NewLiveEMDSenderFactory(ls)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(Config{MaxSessions: 8})
	srv.Handle(factory)
	l, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	d := Dialer{Addr: l.Addr().String()}

	sb := make(metric.PointSet, p.N)
	for i := range sb {
		sb[i] = randPt()
	}

	// Churner: replace points while clients sync. Mutation points are
	// pre-generated so the rng source is not shared across goroutines.
	churn := make(metric.PointSet, 24)
	for i := range churn {
		churn[i] = randPt()
	}
	stop := make(chan struct{})
	var churnWG sync.WaitGroup
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		for i, pt := range churn {
			select {
			case <-stop:
				return
			default:
			}
			if err := ls.ApplyBatch([]live.Op{
				{Remove: true, Point: sa[i%len(sa)]},
				{Point: pt},
			}); err != nil {
				t.Errorf("churn %d: %v", i, err)
				return
			}
			sa[i%len(sa)] = pt
		}
	}()

	// Six returning peers, three sessions each on a persistent cache.
	const peers, rounds = 6, 3
	errs := make([]error, peers)
	var wg sync.WaitGroup
	for i := 0; i < peers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cache := &netproto.EMDCache{}
			for r := 0; r < rounds; r++ {
				h := netproto.NewLiveEMDReceiver(p, sb, cache)
				if _, err := d.Do(h); err != nil {
					errs[i] = err
					return
				}
				if h.Epoch == 0 {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	churnWG.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("peer %d: %v", i, err)
		}
	}
	srv.Close()
	if srv.Failed() != 0 {
		t.Errorf("%d failed sessions", srv.Failed())
	}
	if got := srv.Served(); got != peers*rounds {
		t.Errorf("served = %d, want %d", got, peers*rounds)
	}
}

package session

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/netproto"
	"repro/internal/simnet"
)

// TestServeListenerClosedDistinct pins the accept-loop contract: a
// listener closed out from under a still-open server surfaces as
// ErrListenerClosed (matchable with errors.Is), distinct from both
// ErrServerClosed (orderly server Close) and real accept failures —
// so shutdown-order tests never have to match error strings.
func TestServeListenerClosedDistinct(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
		net  string
		addr string
	}{
		{"tcp", Config{}, "tcp", "127.0.0.1:0"},
		{"simnet", Config{Transport: simnet.New(1).Host("srv")}, "sim", "srv:1"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			srv := NewServer(tc.cfg)
			l, err := srv.cfg.Transport.Listen(tc.net, tc.addr)
			if err != nil {
				t.Fatal(err)
			}
			serveErr := make(chan error, 1)
			go func() { serveErr <- srv.Serve(l) }()
			time.Sleep(10 * time.Millisecond) // let Serve reach Accept
			l.Close()
			select {
			case err := <-serveErr:
				if !errors.Is(err, ErrListenerClosed) {
					t.Fatalf("Serve returned %v, want ErrListenerClosed", err)
				}
				if errors.Is(err, ErrServerClosed) {
					t.Fatal("listener-closed must not alias server-closed")
				}
			case <-time.After(5 * time.Second):
				t.Fatal("Serve did not return after listener close")
			}
			// A lone listener teardown is not a server failure: other
			// listeners (tcp + unix, say) may still be serving, so a
			// health check reading Err() must keep seeing a healthy
			// server.
			if err := srv.Err(); err != nil {
				t.Fatalf("Err() = %v, want nil (listener close is not a terminal server failure)", err)
			}
			// The server itself is still open and closable.
			if err := srv.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestServeServerCloseStillOrderly: closing the server (not the bare
// listener) keeps returning ErrServerClosed and a nil Err().
func TestServeServerCloseStillOrderly(t *testing.T) {
	srv := NewServer(Config{})
	l, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	_ = l
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung")
	}
	if err := srv.Err(); err != nil {
		t.Fatalf("Err() after orderly Close = %v, want nil", err)
	}
}

// TestQuiesceWaitsForSessionTeardown: Quiesce must block until the
// server side of a completed session has fully finished — including
// the OnSession callback, which runs after the client's own session
// already returned.
func TestQuiesceWaitsForSessionTeardown(t *testing.T) {
	f := newFixture(t)
	var torndown atomic.Bool
	srv := NewServer(Config{
		OnSession: func(*Session) {
			time.Sleep(100 * time.Millisecond)
			torndown.Store(true)
		},
	})
	srv.Handle(func() netproto.Handler {
		return netproto.NewSyncResponder(f.syncParams, f.serverIDs)
	})
	l, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	d := Dialer{Addr: l.Addr().String()}
	if _, err := d.Do(netproto.NewSyncInitiator(f.syncParams, f.clientIDs)); err != nil {
		t.Fatal(err)
	}
	srv.Quiesce()
	if !torndown.Load() {
		t.Fatal("Quiesce returned before the session's OnSession callback completed")
	}
	srv.Quiesce() // idle server: immediate no-op
	if got := srv.Served(); got != 1 {
		t.Fatalf("served = %d, want 1", got)
	}
}

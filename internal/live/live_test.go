package live

import (
	"bytes"
	"testing"

	"repro/internal/emd"
	"repro/internal/gap"
	"repro/internal/iblt"
	"repro/internal/metric"
	"repro/internal/rng"
	"repro/internal/transport"
)

func testConfig() Config {
	space := metric.HammingCube(64)
	return Config{
		EMD: &emd.Params{
			Space: space, N: 32, K: 3, D1: 2, D2: 64, Seed: 7, Workers: 1,
		},
		Gap: &gap.Params{
			Space: space, N: 32, R1: 2, R2: 16, Seed: 8, Workers: 1,
		},
		Sync: &SyncConfig{Seed: 9},
	}
}

func randomPoint(space metric.Space, src *rng.Source) metric.Point {
	pt := make(metric.Point, space.Dim)
	for i := range pt {
		pt[i] = int32(src.Uint64() % uint64(space.Delta+1))
	}
	return pt
}

func encodeStrata(s *iblt.Strata) []byte {
	e := transport.NewEncoder()
	s.Encode(e)
	data, _ := e.Pack()
	return data
}

// TestLiveSetGoldenIncremental is the acceptance golden test: over
// 1000 random Add/Remove operations, the incrementally maintained EMD
// sketch stays wire-bit-identical to a from-scratch build over the
// current multiset, the cached Gap payloads match fresh key
// construction, and the strata estimator matches a rebuild over the
// live fingerprints.
func TestLiveSetGoldenIncremental(t *testing.T) {
	cfg := testConfig()
	emdP := *cfg.EMD
	src := rng.New(123)
	var initial metric.PointSet
	for i := 0; i < 24; i++ {
		initial = append(initial, randomPoint(emdP.Space, src))
	}
	ls, err := NewSet(cfg, initial)
	if err != nil {
		t.Fatal(err)
	}
	keyer, err := gap.NewKeyer(*cfg.Gap)
	if err != nil {
		t.Fatal(err)
	}

	mirror := append(metric.PointSet{}, initial...)
	const ops = 1000
	for op := 0; op < ops; op++ {
		if len(mirror) > 0 && (len(mirror) >= emdP.N || src.Uint64()%2 == 0) {
			i := int(src.Uint64() % uint64(len(mirror)))
			if err := ls.Remove(mirror[i]); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			mirror[i] = mirror[len(mirror)-1]
			mirror = mirror[:len(mirror)-1]
		} else {
			pt := randomPoint(emdP.Space, src)
			if err := ls.Add(pt); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			mirror = append(mirror, pt)
		}
		if op%200 != 199 && op != ops-1 {
			continue
		}
		snap := ls.Snapshot()
		if len(snap.Points) != len(mirror) {
			t.Fatalf("op %d: snapshot has %d points, mirror %d", op, len(snap.Points), len(mirror))
		}
		ref, err := emd.BuildSketch(emdP, mirror)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(snap.EMDMessage, ref.Encode()) {
			t.Fatalf("op %d (size %d): incremental EMD sketch not wire-identical to from-scratch build",
				op, len(mirror))
		}
		for i, pt := range snap.Points {
			if !bytes.Equal(snap.GapPayloads[i], keyer.Payload(pt)) {
				t.Fatalf("op %d: cached gap payload %d differs from fresh key", op, i)
			}
		}
		sc, ok := ls.SyncConfig()
		if !ok {
			t.Fatal("sync state not enabled")
		}
		wantStrata := iblt.NewStrataFromKeys(sc.StrataCells, sc.Seed, snap.IDs, 1)
		if !bytes.Equal(encodeStrata(snap.Strata), encodeStrata(wantStrata)) {
			t.Fatalf("op %d: live strata differs from rebuild over %d ids", op, len(snap.IDs))
		}
	}
	if got, want := ls.Epoch(), uint64(1+ops); got != want {
		t.Errorf("epoch = %d, want %d", got, want)
	}
	// Wire-path fidelity at full capacity: top up to N and compare with
	// the protocol's own message builder.
	for len(mirror) < emdP.N {
		pt := randomPoint(emdP.Space, src)
		if err := ls.Add(pt); err != nil {
			t.Fatal(err)
		}
		mirror = append(mirror, pt)
	}
	msg, err := emd.BuildMessage(emdP, mirror)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ls.Snapshot().EMDMessage, msg) {
		t.Fatal("live sketch at capacity differs from BuildMessage wire bytes")
	}
}

// TestLiveSetDeltaJournal covers the delta-sync bookkeeping: patching a
// stale epoch's sketch with DeltaCells reproduces the current message;
// epochs past the journal horizon force a full transfer.
func TestLiveSetDeltaJournal(t *testing.T) {
	cfg := testConfig()
	cfg.Gap, cfg.Sync = nil, nil
	cfg.JournalEpochs = 8
	emdP := *cfg.EMD
	src := rng.New(5)
	var initial metric.PointSet
	for i := 0; i < emdP.N; i++ {
		initial = append(initial, randomPoint(emdP.Space, src))
	}
	ls, err := NewSet(cfg, initial)
	if err != nil {
		t.Fatal(err)
	}
	stale := ls.Snapshot()
	cached, from := stale.EMD.Clone(), stale.Epoch

	live := append(metric.PointSet{}, initial...)
	for i := 0; i < 3; i++ { // 6 epochs of churn, within the 8-epoch horizon
		if err := ls.Remove(live[i]); err != nil {
			t.Fatal(err)
		}
		pt := randomPoint(emdP.Space, src)
		if err := ls.Add(pt); err != nil {
			t.Fatal(err)
		}
		live[i] = pt
	}
	now := ls.Snapshot()
	refs, ok := ls.DeltaCells(from, now.Epoch)
	if !ok {
		t.Fatal("journal should cover 6 epochs of churn with horizon 8")
	}
	if err := cached.ApplyCells(now.EMD.EncodeCells(refs)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cached.Encode(), now.EMDMessage) {
		t.Fatal("patched stale sketch differs from current message")
	}
	if cached.Fingerprint() != now.EMDFingerprint {
		t.Fatal("fingerprint mismatch after patch")
	}

	// Age the stale epoch out of the journal: horizon is 8 epochs.
	for i := 0; i < 12; i++ {
		pt := randomPoint(emdP.Space, src)
		if err := ls.Add(pt); err == nil {
			if err := ls.Remove(pt); err != nil {
				t.Fatal(err)
			}
		} else {
			// At capacity: remove then re-add instead.
			if err := ls.Remove(live[0]); err != nil {
				t.Fatal(err)
			}
			if err := ls.Add(live[0]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, ok := ls.DeltaCells(from, ls.Epoch()); ok {
		t.Fatal("journal should have aged out the stale epoch")
	}
	if _, ok := ls.DeltaCells(ls.Epoch(), ls.Epoch()); !ok {
		t.Fatal("up-to-date peer should get an empty delta")
	}
}

// TestLiveSetBatchAtomic: a batch with an invalid op applies nothing.
func TestLiveSetBatchAtomic(t *testing.T) {
	cfg := testConfig()
	cfg.Gap, cfg.Sync = nil, nil
	emdP := *cfg.EMD
	src := rng.New(17)
	var initial metric.PointSet
	for i := 0; i < 4; i++ {
		initial = append(initial, randomPoint(emdP.Space, src))
	}
	ls, err := NewSet(cfg, initial)
	if err != nil {
		t.Fatal(err)
	}
	before := ls.Snapshot()
	absent := randomPoint(emdP.Space, src)
	err = ls.ApplyBatch([]Op{
		{Point: randomPoint(emdP.Space, src)},
		{Remove: true, Point: absent},
	})
	if err == nil {
		t.Fatal("batch with absent-point removal must fail")
	}
	after := ls.Snapshot()
	if after.Epoch != before.Epoch || !bytes.Equal(after.EMDMessage, before.EMDMessage) {
		t.Fatal("failed batch mutated the set")
	}
	// A valid batch is one epoch.
	pt := randomPoint(emdP.Space, src)
	if err := ls.ApplyBatch([]Op{{Point: pt}, {Remove: true, Point: pt}}); err != nil {
		t.Fatal(err)
	}
	if got := ls.Epoch(); got != before.Epoch+1 {
		t.Errorf("batch bumped epoch to %d, want %d", got, before.Epoch+1)
	}
}

// TestLiveSetDuplicates: multiset semantics — duplicates count, sync
// IDs collapse.
func TestLiveSetDuplicates(t *testing.T) {
	cfg := testConfig()
	emdP := *cfg.EMD
	src := rng.New(29)
	pt := randomPoint(emdP.Space, src)
	ls, err := NewSet(cfg, metric.PointSet{pt, pt.Clone()})
	if err != nil {
		t.Fatal(err)
	}
	if ls.Size() != 2 {
		t.Fatalf("size = %d, want 2", ls.Size())
	}
	snap := ls.Snapshot()
	if len(snap.Points) != 2 || len(snap.IDs) != 1 {
		t.Fatalf("points=%d ids=%d, want 2 and 1", len(snap.Points), len(snap.IDs))
	}
	if err := ls.Remove(pt); err != nil {
		t.Fatal(err)
	}
	if err := ls.Remove(pt); err != nil {
		t.Fatal(err)
	}
	if err := ls.Remove(pt); err == nil {
		t.Fatal("third remove of a twice-added point must fail")
	}
	if ls.Size() != 0 || len(ls.Snapshot().IDs) != 0 {
		t.Fatal("set not empty after removing both copies")
	}
}

// Package live maintains mutable reconciliation state: a Set wraps a
// point multiset with Add/Remove/ApplyBatch and keeps every enabled
// protocol structure incrementally up to date — the EMD sketch (RIBLT
// cells are sums, so a point mutation is one MLSH evaluation plus
// O(q·levels) cell updates), the Gap protocol's per-element key
// payloads (each depends only on its point and the public coins), and
// the exact-ID state (a strata estimator over point fingerprints, whose
// cells XOR and therefore delete exactly).
//
// Every mutation bumps an epoch. Snapshot returns an immutable view of
// the current epoch, cached until the next mutation, so a session that
// started mid-churn serves one consistent generation while new sessions
// see the latest. A bounded journal records which EMD cells each epoch
// churned; DeltaCells answers "what changed since epoch e" for the
// delta-sync fast path in internal/netproto, falling back to a full
// transfer when e has aged out of the journal.
package live

import (
	"fmt"
	"sync"

	"repro/internal/emd"
	"repro/internal/gap"
	"repro/internal/hashx"
	"repro/internal/iblt"
	"repro/internal/metric"
)

// SyncConfig enables exact-ID reconciliation state over point
// fingerprints. The fields must match the netproto.SyncParams every
// session is served with (the strata estimator is part of the wire
// protocol).
type SyncConfig struct {
	// StrataCells sizes the estimator (default 80, as in SyncParams).
	StrataCells int
	// Seed is the shared public-coin seed; point fingerprints derive
	// from it too, so both parties map equal points to equal IDs.
	Seed uint64
}

// Config selects which protocol structures a Set maintains. At least
// one of EMD, Gap or Sync must be set.
type Config struct {
	// EMD, when set, maintains the Algorithm 1 sketch. Params.N is the
	// capacity bound: the live multiset may never exceed N points.
	EMD *emd.Params
	// Gap, when set, maintains per-element Gap key payloads. Params.N
	// bounds the set size.
	Gap *gap.Params
	// Sync, when set, maintains the ID list and strata estimator.
	Sync *SyncConfig
	// JournalEpochs bounds how many epochs of churned-cell history are
	// retained for delta sync (default 256). A peer whose last synced
	// epoch has aged out receives a full transfer.
	JournalEpochs int
	// Logger, when set, receives every mutation write-ahead (see
	// Logger). The initial point set is NOT logged — persistence layers
	// snapshot it at creation instead.
	Logger Logger
}

// Op is one batch mutation.
type Op struct {
	Remove bool
	Point  metric.Point
}

// Logger receives every committed mutation as a write-ahead hook: it is
// called under the set's write lock, in epoch order, AFTER the mutation
// has been validated but BEFORE any in-memory state changes. epoch is
// the generation the mutation will close (current epoch + 1); ops is
// the exact batch, never mutated afterwards but only valid for the
// duration of the call (clone points that must be retained). A non-nil
// error aborts the mutation: nothing is applied and the error is
// returned to the mutator — the contract a durable journal needs so an
// unwritable disk can never let memory and journal diverge.
type Logger interface {
	LogOps(epoch uint64, ops []Op) error
}

// entry is one distinct point's live state.
type entry struct {
	pt      metric.Point
	count   int    // multiset multiplicity
	payload []byte // gap key payload (nil when Gap disabled)
	id      uint64 // point fingerprint (Sync)
	pos     int    // index in Set.entries
}

// Set is the mutable reconciliation state. All methods are safe for
// concurrent use; mutations serialize under the write lock, while the
// read paths a busy server hits per session — Epoch, Size, DeltaCells,
// and Snapshot once the per-epoch cache is built — share a read lock,
// so many concurrent sessions never queue behind each other.
type Set struct {
	cfg    Config
	emdP   emd.Params // defaulted copy (valid when cfg.EMD != nil)
	gapP   gap.Params
	keyer  *gap.Keyer
	idMix  hashx.Mixer
	sketch *emd.Sketch
	strata *iblt.Strata

	mu      sync.RWMutex
	logger  Logger // write-ahead hook, called under mu before applying
	byKey   map[string]*entry
	byID    map[uint64]*entry // fingerprint → entry (Sync only)
	idFP    uint64            // XOR of mixed distinct-point fingerprints
	entries []*entry
	size    int // multiset cardinality
	epoch   uint64
	journal map[uint64][]emd.CellRef // epoch → EMD cells churned by it
	snap    *Snapshot                // cache for the current epoch
}

// Snapshot is one epoch's immutable serving state. Sessions hold the
// pointer for their lifetime; nothing in it is mutated after
// construction.
type Snapshot struct {
	// Epoch tags the generation this snapshot serves.
	Epoch uint64
	// Points is the multiset at this epoch.
	Points metric.PointSet
	// EMD is the sketch (nil when disabled); treat as read-only.
	EMD *emd.Sketch
	// EMDMessage is the encoded full protocol message.
	EMDMessage []byte
	// EMDFingerprint hashes EMDMessage for divergence detection.
	EMDFingerprint uint64
	// GapPayloads are the cached key payloads, aligned with Points.
	GapPayloads [][]byte
	// IDs are the distinct points' fingerprints.
	IDs []uint64
	// IDFingerprint is an order-independent fold (XOR of mixed
	// fingerprints) over IDs: two sets with equal distinct points have
	// equal values, and it is maintained O(1) per mutation, so cluster
	// probes compare whole sets without shipping them. Zero when Sync is
	// disabled (or the set is empty).
	IDFingerprint uint64
	// Strata is the estimator over IDs (nil when Sync disabled);
	// treat as read-only (Estimate clones internally).
	Strata *iblt.Strata
}

// NewSet builds a live set over the initial points, using the sharded
// from-scratch constructions for the enabled structures.
func NewSet(cfg Config, initial metric.PointSet) (*Set, error) {
	if cfg.EMD == nil && cfg.Gap == nil && cfg.Sync == nil {
		return nil, fmt.Errorf("live: config enables no protocol structure")
	}
	if cfg.JournalEpochs <= 0 {
		cfg.JournalEpochs = 256
	}
	s := &Set{
		cfg:     cfg,
		logger:  cfg.Logger,
		byKey:   make(map[string]*entry, len(initial)),
		journal: make(map[uint64][]emd.CellRef),
		epoch:   1,
	}
	if cfg.EMD != nil {
		s.emdP = *cfg.EMD
		s.emdP.ApplyDefaults()
		sk, err := emd.BuildSketch(s.emdP, initial)
		if err != nil {
			return nil, err
		}
		s.sketch = sk
	}
	if cfg.Gap != nil {
		s.gapP = *cfg.Gap
		s.gapP.ApplyDefaults()
		ky, err := gap.NewKeyer(s.gapP)
		if err != nil {
			return nil, err
		}
		s.keyer = ky
	}
	if cfg.Sync != nil {
		sync := *cfg.Sync // defensive copy, like the EMD/Gap params
		if sync.StrataCells == 0 {
			sync.StrataCells = 80
		}
		s.cfg.Sync = &sync
		s.strata = iblt.NewStrata(sync.StrataCells, sync.Seed)
		s.idMix = idMixer(sync.Seed)
		s.byID = make(map[uint64]*entry, len(initial))
	}
	if limit, ok := s.capacity(); ok && len(initial) > limit {
		return nil, fmt.Errorf("live: %d initial points exceed capacity %d", len(initial), limit)
	}
	// Gap payloads for the initial points in one sharded batch; the
	// EMD sketch was already built sharded above.
	var payloads [][]byte
	if s.keyer != nil {
		payloads = s.keyer.Payloads(initial)
	}
	for i, pt := range initial {
		k := pointKey(pt)
		e := s.byKey[k]
		if e == nil {
			e = &entry{pt: pt.Clone(), pos: len(s.entries)}
			if payloads != nil {
				e.payload = payloads[i]
			}
			if s.strata != nil {
				e.id = s.pointID(pt)
				s.strata.Insert(e.id)
				s.byID[e.id] = e
				s.idFP ^= s.idMix.Hash(e.id)
			}
			s.byKey[k] = e
			s.entries = append(s.entries, e)
		}
		e.count++
		s.size++
	}
	return s, nil
}

// capacity returns the tightest enabled size bound.
func (s *Set) capacity() (int, bool) {
	c, ok := 0, false
	if s.cfg.EMD != nil {
		c, ok = s.emdP.N, true
	}
	if s.cfg.Gap != nil && (!ok || s.gapP.N < c) {
		c, ok = s.gapP.N, true
	}
	return c, ok
}

// EMDParams returns the (defaulted) EMD params when enabled.
func (s *Set) EMDParams() (emd.Params, bool) {
	if s.cfg.EMD == nil {
		return emd.Params{}, false
	}
	return s.emdP, true
}

// GapParams returns the (defaulted) Gap params when enabled.
func (s *Set) GapParams() (gap.Params, bool) {
	if s.cfg.Gap == nil {
		return gap.Params{}, false
	}
	return s.gapP, true
}

// GapKeyer returns the keyer live Gap sessions serve through.
func (s *Set) GapKeyer() (*gap.Keyer, bool) { return s.keyer, s.keyer != nil }

// SyncConfig returns the exact-ID configuration when enabled.
func (s *Set) SyncConfig() (SyncConfig, bool) {
	if s.cfg.Sync == nil {
		return SyncConfig{}, false
	}
	return *s.cfg.Sync, true
}

// Epoch returns the current generation (1 is the initial state).
func (s *Set) Epoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

// Size returns the multiset cardinality.
func (s *Set) Size() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.size
}

// Distinct returns the number of distinct points.
func (s *Set) Distinct() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// Add inserts one point and bumps the epoch.
func (s *Set) Add(pt metric.Point) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkAdd(1); err != nil {
		return err
	}
	if err := s.log([]Op{{Point: pt}}); err != nil {
		return err
	}
	refs := s.add(pt)
	s.bump(refs)
	return nil
}

// Remove deletes one copy of the point and bumps the epoch. It fails
// without mutating anything if the point is not in the set.
func (s *Set) Remove(pt metric.Point) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.byKey[pointKey(pt)] == nil {
		return fmt.Errorf("live: remove of absent point %v", pt)
	}
	if err := s.log([]Op{{Remove: true, Point: pt}}); err != nil {
		return err
	}
	refs := s.remove(pt)
	s.bump(refs)
	return nil
}

// ApplyBatch applies the ops in order as one epoch. It validates the
// whole batch first (capacity and membership, tracked through the
// batch's own effects) and applies nothing on error.
func (s *Set) ApplyBatch(ops []Op) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	size := s.size
	limit, bounded := s.capacity()
	counts := make(map[string]int)
	for i, op := range ops {
		k := pointKey(op.Point)
		have := counts[k]
		if e := s.byKey[k]; e != nil {
			have += e.count
		}
		if op.Remove {
			if have <= 0 {
				return fmt.Errorf("live: batch op %d removes absent point %v", i, op.Point)
			}
			counts[k]--
			size--
		} else {
			if bounded && size >= limit {
				return fmt.Errorf("live: batch op %d exceeds capacity %d", i, limit)
			}
			counts[k]++
			size++
		}
	}
	if err := s.log(ops); err != nil {
		return err
	}
	var refs []emd.CellRef
	for _, op := range ops {
		if op.Remove {
			refs = append(refs, s.remove(op.Point)...)
		} else {
			refs = append(refs, s.add(op.Point)...)
		}
	}
	s.bump(refs)
	return nil
}

// log invokes the write-ahead logger for a validated mutation about to
// close epoch s.epoch+1. Caller holds the write lock.
func (s *Set) log(ops []Op) error {
	if s.logger == nil {
		return nil
	}
	if err := s.logger.LogOps(s.epoch+1, ops); err != nil {
		return fmt.Errorf("live: journal epoch %d: %w", s.epoch+1, err)
	}
	return nil
}

// SetLogger installs (or clears) the write-ahead mutation hook. A
// recovery pass rebuilds a set logger-less — replayed ops must not be
// re-journaled — and attaches the journal only once replay is done.
func (s *Set) SetLogger(l Logger) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.logger = l
}

// RestoreEpoch fast-forwards the epoch counter to e without mutating
// any state, so a set rebuilt from a persisted snapshot taken at epoch
// e resumes the pre-crash generation numbering (journal replay then
// continues at e+1, and peers' cached epochs stay monotonic). It fails
// if e is behind the current epoch. The churned-cell journal is NOT
// back-filled: DeltaCells for ranges crossing the restore point reports
// no history, so returning peers take the full-transfer path — the safe
// answer after a restart.
func (s *Set) RestoreEpoch(e uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e < s.epoch {
		return fmt.Errorf("live: cannot restore epoch %d behind current %d", e, s.epoch)
	}
	if e != s.epoch {
		s.epoch = e
		s.snap = nil
	}
	return nil
}

func (s *Set) checkAdd(n int) error {
	if limit, ok := s.capacity(); ok && s.size+n > limit {
		return fmt.Errorf("live: %d points would exceed capacity %d", s.size+n, limit)
	}
	return nil
}

// add applies one insertion (lock held, preconditions checked).
func (s *Set) add(pt metric.Point) []emd.CellRef {
	k := pointKey(pt)
	e := s.byKey[k]
	if e == nil {
		e = &entry{pt: pt.Clone(), pos: len(s.entries)}
		if s.keyer != nil {
			e.payload = s.keyer.Payload(e.pt)
		}
		if s.strata != nil {
			e.id = s.pointID(e.pt)
			s.strata.Insert(e.id)
			s.byID[e.id] = e
			s.idFP ^= s.idMix.Hash(e.id)
		}
		s.byKey[k] = e
		s.entries = append(s.entries, e)
	}
	e.count++
	s.size++
	if s.sketch != nil {
		return s.sketch.Add(e.pt)
	}
	return nil
}

// remove applies one deletion (lock held, membership checked).
func (s *Set) remove(pt metric.Point) []emd.CellRef {
	k := pointKey(pt)
	e := s.byKey[k]
	e.count--
	s.size--
	var refs []emd.CellRef
	if s.sketch != nil {
		refs = s.sketch.Remove(e.pt)
	}
	if e.count == 0 {
		if s.strata != nil {
			s.strata.Delete(e.id)
			delete(s.byID, e.id)
			s.idFP ^= s.idMix.Hash(e.id)
		}
		last := len(s.entries) - 1
		s.entries[e.pos] = s.entries[last]
		s.entries[e.pos].pos = e.pos
		s.entries = s.entries[:last]
		delete(s.byKey, k)
	}
	return refs
}

// bump closes the current mutation into a new epoch: journal the
// churned cells, prune history past the horizon, invalidate the
// snapshot cache. The journal entry is a compact copy — refs may be (and
// on the single-op paths is) the sketch's reusable churn scratch, which
// the next mutation overwrites.
func (s *Set) bump(refs []emd.CellRef) {
	s.epoch++
	if s.sketch != nil {
		sorted := emd.SortCellRefs(refs)
		entry := make([]emd.CellRef, len(sorted))
		copy(entry, sorted)
		s.journal[s.epoch] = entry
	}
	if old := s.epoch - uint64(s.cfg.JournalEpochs); old > 0 {
		delete(s.journal, old)
	}
	s.snap = nil
}

// Snapshot returns the current epoch's immutable serving state, built
// at most once per epoch. The cached path takes only the read lock, so
// sessions serving a stable epoch never contend.
func (s *Set) Snapshot() *Snapshot {
	s.mu.RLock()
	snap := s.snap
	s.mu.RUnlock()
	if snap != nil {
		return snap
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.snap != nil {
		return s.snap
	}
	snap = &Snapshot{Epoch: s.epoch}
	snap.Points = make(metric.PointSet, 0, s.size)
	if s.keyer != nil {
		snap.GapPayloads = make([][]byte, 0, s.size)
	}
	for _, e := range s.entries {
		for i := 0; i < e.count; i++ {
			snap.Points = append(snap.Points, e.pt)
			if s.keyer != nil {
				snap.GapPayloads = append(snap.GapPayloads, e.payload)
			}
		}
	}
	if s.sketch != nil {
		snap.EMD = s.sketch.Clone()
		snap.EMDMessage = snap.EMD.Encode()
		snap.EMDFingerprint = emd.FingerprintMessage(snap.EMDMessage)
	}
	if s.strata != nil {
		snap.IDs = make([]uint64, 0, len(s.entries))
		for _, e := range s.entries {
			snap.IDs = append(snap.IDs, e.id)
		}
		snap.Strata = s.strata.Clone()
		snap.IDFingerprint = s.idFP
	}
	s.snap = snap
	return snap
}

// DeltaCells reports which EMD cells changed between epochs from and
// to (exclusive/inclusive), sorted and deduplicated. ok is false when
// the range is empty of history — from older than the journal horizon,
// from > to, or EMD disabled — in which case the caller sends a full
// transfer.
func (s *Set) DeltaCells(from, to uint64) ([]emd.CellRef, bool) {
	if s.sketch == nil || from > to {
		return nil, false
	}
	if from == to {
		return nil, true
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var refs []emd.CellRef
	for e := from + 1; e <= to; e++ {
		r, ok := s.journal[e]
		if !ok {
			return nil, false
		}
		refs = append(refs, r...)
	}
	return emd.SortCellRefs(refs), true
}

// IDFingerprint returns the order-independent fold over the distinct
// points' fingerprints (see Snapshot.IDFingerprint). Zero when Sync is
// disabled.
func (s *Set) IDFingerprint() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.idFP
}

// PointsForIDs maps fingerprints back to the points that carry them,
// returning clones of the found points and the fingerprints this set
// does not (or no longer) hold. It requires Sync state; without it every
// ID is missing. The repair protocol uses it to turn a reconciled ID
// difference into shippable payloads.
func (s *Set) PointsForIDs(ids []uint64) (metric.PointSet, []uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var (
		found   metric.PointSet
		missing []uint64
	)
	for _, id := range ids {
		if e := s.byID[id]; e != nil {
			found = append(found, e.pt.Clone())
		} else {
			missing = append(missing, id)
		}
	}
	return found, missing
}

// MergeAbsent adds, as one epoch, every point of pts that is not already
// in the set (the distinct-point union — anti-entropy's add-wins merge).
// Points already present are skipped rather than gaining multiplicity,
// so applying a peer's repair payload is idempotent under churn races.
// It validates capacity over the points actually missing and applies
// nothing on error; the count of points added is returned.
func (s *Set) MergeAbsent(pts metric.PointSet) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fresh := make(metric.PointSet, 0, len(pts))
	seen := make(map[string]bool, len(pts))
	for _, pt := range pts {
		k := pointKey(pt)
		if s.byKey[k] != nil || seen[k] {
			continue
		}
		seen[k] = true
		fresh = append(fresh, pt)
	}
	if len(fresh) == 0 {
		return 0, nil
	}
	if err := s.checkAdd(len(fresh)); err != nil {
		return 0, err
	}
	ops := make([]Op, len(fresh))
	for i, pt := range fresh {
		ops[i] = Op{Point: pt}
	}
	if err := s.log(ops); err != nil {
		return 0, err
	}
	var refs []emd.CellRef
	for _, pt := range fresh {
		refs = append(refs, s.add(pt)...)
	}
	s.bump(refs)
	return len(fresh), nil
}

// pointKey is the membership-map key: the raw little-endian coordinate
// bytes.
func pointKey(pt metric.Point) string {
	b := make([]byte, 4*len(pt))
	for i, c := range pt {
		b[4*i] = byte(c)
		b[4*i+1] = byte(c >> 8)
		b[4*i+2] = byte(c >> 16)
		b[4*i+3] = byte(c >> 24)
	}
	return string(b)
}

// idMixer derives the fingerprint mixer from the sync seed; both
// parties of an exact-ID session must use the same derivation, which
// IDsOf provides for the client side.
func idMixer(seed uint64) hashx.Mixer {
	return hashx.MixerFromSeed(seed ^ 0x11dfeed)
}

func (s *Set) pointID(pt metric.Point) uint64 { return pointIDWith(s.idMix, pt) }

func pointIDWith(m hashx.Mixer, pt metric.Point) uint64 {
	h := m.Hash(uint64(len(pt)))
	for _, c := range pt {
		h = m.Hash(h ^ uint64(uint32(c)))
	}
	return h
}

// PointID is the fingerprint a Set with SyncConfig.Seed == seed assigns
// to pt; clients derive their own ID lists with it.
func PointID(seed uint64, pt metric.Point) uint64 {
	return pointIDWith(idMixer(seed), pt)
}

// IDsOf fingerprints every distinct point of pts (duplicates collapse,
// as exact-ID reconciliation is over sets).
func IDsOf(seed uint64, pts metric.PointSet) []uint64 {
	m := idMixer(seed)
	seen := make(map[uint64]bool, len(pts))
	out := make([]uint64, 0, len(pts))
	for _, pt := range pts {
		id := pointIDWith(m, pt)
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

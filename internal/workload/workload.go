// Package workload generates the synthetic instances the evaluation
// needs. The paper motivates robust reconciliation with sensors observing
// the same objects through noise (§1): each party holds one noisy view of
// a mostly shared object set, plus a few points the other party lacks.
// Generators here produce exactly that structure for each metric space,
// with the ground truth (which points are "far", what the planted noise
// was) retained so experiments can score protocol output.
package workload

import (
	"fmt"
	"math"

	"repro/internal/metric"
	"repro/internal/rng"
)

// RandomPoint draws a uniform point of the space.
func RandomPoint(space metric.Space, src *rng.Source) metric.Point {
	p := make(metric.Point, space.Dim)
	for i := range p {
		p[i] = int32(src.Uint64n(uint64(space.Delta) + 1))
	}
	return p
}

// RandomSet draws n uniform points.
func RandomSet(space metric.Space, n int, src *rng.Source) metric.PointSet {
	ps := make(metric.PointSet, n)
	for i := range ps {
		ps[i] = RandomPoint(space, src)
	}
	return ps
}

// PerturbHamming returns a copy of p with exactly `flips` distinct
// coordinates cycled to a different value (for binary spaces, flipped).
// The result is at Hamming distance exactly min(flips, d) from p.
func PerturbHamming(space metric.Space, p metric.Point, flips int, src *rng.Source) metric.Point {
	q := p.Clone()
	if flips > space.Dim {
		flips = space.Dim
	}
	perm := src.Perm(space.Dim)
	for _, idx := range perm[:flips] {
		if space.Delta == 1 {
			q[idx] ^= 1
		} else {
			// Shift to a uniformly random *different* value.
			off := int32(src.Uint64n(uint64(space.Delta))) + 1
			q[idx] = (q[idx] + off) % (space.Delta + 1)
		}
	}
	return q
}

// PerturbWithin returns a copy of p moved by at most dist under the
// space's norm. Noise is spread over all coordinates. The displacement is
// random but its norm is guaranteed ≤ dist; coordinates are clamped into
// the space (clamping only shrinks the displacement).
func PerturbWithin(space metric.Space, p metric.Point, dist float64, src *rng.Source) metric.Point {
	q := p.Clone()
	switch space.Norm {
	case metric.Hamming:
		return PerturbHamming(space, p, int(dist), src)
	case metric.L1:
		// Split an ℓ1 budget across coordinates with random signs.
		budget := dist
		perm := src.Perm(space.Dim)
		for _, idx := range perm {
			if budget < 1 {
				break
			}
			step := float64(src.Uint64n(uint64(budget) + 1))
			budget -= step
			if src.Bool() {
				step = -step
			}
			q[idx] += int32(step)
		}
	case metric.L2:
		// Random direction scaled so the ℓ2 norm is ≤ dist, with floor
		// rounding (which can only shrink the norm per coordinate...
		// rounding is toward zero to keep the guarantee).
		dir := make([]float64, space.Dim)
		var norm float64
		for i := range dir {
			dir[i] = src.NormFloat64()
			norm += dir[i] * dir[i]
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return space.Clamp(q)
		}
		scale := src.Float64() * dist / norm
		for i := range dir {
			q[i] += int32(math.Trunc(dir[i] * scale))
		}
	}
	return space.Clamp(q)
}

// FarPoint draws a uniform point at distance ≥ minDist from every point
// of anchor, retrying up to maxTries times. It returns an error when the
// space is too crowded to find one (caller chose an unsatisfiable r2).
func FarPoint(space metric.Space, anchor metric.PointSet, minDist float64, src *rng.Source, maxTries int) (metric.Point, error) {
	for try := 0; try < maxTries; try++ {
		p := RandomPoint(space, src)
		if d, _ := anchor.MinDistanceTo(space, p); d >= minDist {
			return p, nil
		}
	}
	return nil, fmt.Errorf("workload: no point at distance >= %v from %d anchors after %d tries",
		minDist, len(anchor), maxTries)
}

// EMDInstance is a planted Earth Mover's Distance model instance
// (Definition 3.1): |SA| = |SB| = n, where n−k of Alice's points are
// noisy copies of Bob's and k are unrelated outliers.
type EMDInstance struct {
	Space metric.Space
	SA    metric.PointSet // Alice's points
	SB    metric.PointSet // Bob's points
	// K is the number of planted outlier pairs; EMD_K(SA, SB) ≤ N·Noise.
	K int
	// Noise bounds the planted per-pair displacement.
	Noise float64
}

// NewEMDInstance plants an instance: Bob holds n uniform points; Alice
// holds noisy copies of n−k of them (displaced by ≤ noise each) plus k
// fresh uniform points. Point order is shuffled on both sides so
// protocols cannot exploit alignment.
func NewEMDInstance(space metric.Space, n, k int, noise float64, seed uint64) EMDInstance {
	if k > n {
		panic(fmt.Sprintf("workload: k=%d > n=%d", k, n))
	}
	src := rng.New(seed)
	sb := RandomSet(space, n, src)
	sa := make(metric.PointSet, 0, n)
	for _, p := range sb[:n-k] {
		sa = append(sa, PerturbWithin(space, p, noise, src))
	}
	for i := 0; i < k; i++ {
		sa = append(sa, RandomPoint(space, src))
	}
	src.Shuffle(len(sa), func(i, j int) { sa[i], sa[j] = sa[j], sa[i] })
	src.Shuffle(len(sb), func(i, j int) { sb[i], sb[j] = sb[j], sb[i] })
	return EMDInstance{Space: space, SA: sa, SB: sb, K: k, Noise: noise}
}

// GapInstance is a planted Gap Guarantee model instance (Definition 4.1):
// every point of CA ⊂ SA is within r1 of SB and vice versa, while
// Far ⊂ SA is at distance ≥ r2 from all of SB. A correct protocol must
// deliver every point of Far to Bob.
type GapInstance struct {
	Space  metric.Space
	SA, SB metric.PointSet
	R1, R2 float64
	// Far is the ground-truth set of Alice's far points (|Far| ≤ k).
	Far metric.PointSet
	// KBob is the number of Bob-only far points planted (they are
	// allowed by the model; the protocol need not transfer them).
	KBob int
}

// NewGapInstance plants an instance: a base cloud of nShared points known
// to both parties (each side holds an independently perturbed copy within
// r1/2, so cross-party distance is ≤ r1), plus kAlice points far from
// everything on Alice's side and kBob far points on Bob's side.
func NewGapInstance(space metric.Space, nShared, kAlice, kBob int, r1, r2 float64, seed uint64) (GapInstance, error) {
	src := rng.New(seed)
	base := RandomSet(space, nShared, src)
	sa := make(metric.PointSet, 0, nShared+kAlice)
	sb := make(metric.PointSet, 0, nShared+kBob)
	for _, p := range base {
		sa = append(sa, PerturbWithin(space, p, r1/2, src))
		sb = append(sb, PerturbWithin(space, p, r1/2, src))
	}
	// Far points must clear r2 against the *other party's entire set*,
	// including the other party's far points (Definition 4.1 only
	// bounds |CA|, |CB| from below, but keeping plants clean makes the
	// ground truth unambiguous).
	var far metric.PointSet
	anchors := append(metric.PointSet{}, base...)
	for i := 0; i < kAlice; i++ {
		p, err := FarPoint(space, anchors, r2*1.05, src, 4000)
		if err != nil {
			return GapInstance{}, err
		}
		far = append(far, p)
		anchors = append(anchors, p)
		sa = append(sa, p)
	}
	for i := 0; i < kBob; i++ {
		p, err := FarPoint(space, anchors, r2*1.05, src, 4000)
		if err != nil {
			return GapInstance{}, err
		}
		anchors = append(anchors, p)
		sb = append(sb, p)
	}
	src.Shuffle(len(sa), func(i, j int) { sa[i], sa[j] = sa[j], sa[i] })
	src.Shuffle(len(sb), func(i, j int) { sb[i], sb[j] = sb[j], sb[i] })
	return GapInstance{
		Space: space, SA: sa, SB: sb, R1: r1, R2: r2, Far: far, KBob: kBob,
	}, nil
}

// Verify checks the planted invariants of the instance (used by tests
// and by experiments before trusting a configuration): every Alice point
// is either within r1 of SB or a planted far point at distance ≥ r2.
func (g GapInstance) Verify() error {
	farSet := map[string]bool{}
	for _, p := range g.Far {
		farSet[p.String()] = true
	}
	for _, a := range g.SA {
		d, _ := g.SB.MinDistanceTo(g.Space, a)
		if farSet[a.String()] {
			if d < g.R2 {
				return fmt.Errorf("workload: planted far point %v at distance %v < r2=%v", a, d, g.R2)
			}
		} else if d > g.R1 {
			return fmt.Errorf("workload: close point %v at distance %v > r1=%v", a, d, g.R1)
		}
	}
	return nil
}

// SpreadCodewords returns `count` points of {0,1}^d with pairwise Hamming
// distance ≥ minDist, built greedily from random words. This substitutes
// for the Reed–Muller codebook in the Theorem 4.6 lower-bound instance
// (Appendix F): only the pairwise-distance property matters to the
// reduction, and random codewords achieve it whp for d = Ω(log n + r2).
func SpreadCodewords(d, count, minDist int, seed uint64) ([]metric.Point, error) {
	space := metric.HammingCube(d)
	src := rng.New(seed)
	out := make([]metric.Point, 0, count)
	const maxTries = 20000
	tries := 0
	for len(out) < count {
		if tries++; tries > maxTries {
			return nil, fmt.Errorf("workload: cannot place %d codewords at distance %d in {0,1}^%d",
				count, minDist, d)
		}
		cand := RandomPoint(space, src)
		ok := true
		for _, c := range out {
			if space.Distance(cand, c) < float64(minDist) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, cand)
		}
	}
	return out, nil
}

package workload

import (
	"testing"
	"testing/quick"

	"repro/internal/matching"
	"repro/internal/metric"
	"repro/internal/rng"
)

func TestRandomPointInSpace(t *testing.T) {
	spaces := []metric.Space{
		metric.HammingCube(32),
		metric.Grid(1000, 4, metric.L1),
		metric.Grid(7, 2, metric.L2),
	}
	src := rng.New(1)
	for _, s := range spaces {
		for i := 0; i < 200; i++ {
			if p := RandomPoint(s, src); !s.Contains(p) {
				t.Fatalf("point %v outside %v", p, s)
			}
		}
	}
}

func TestPerturbHammingExactDistance(t *testing.T) {
	prop := func(seed uint64, flipsRaw uint8) bool {
		src := rng.New(seed)
		space := metric.HammingCube(64)
		flips := int(flipsRaw % 65)
		p := RandomPoint(space, src)
		q := PerturbHamming(space, p, flips, src)
		return space.Distance(p, q) == float64(flips) && space.Contains(q)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPerturbHammingLargeAlphabet(t *testing.T) {
	space := metric.Grid(9, 16, metric.Hamming)
	src := rng.New(2)
	p := RandomPoint(space, src)
	q := PerturbHamming(space, p, 5, src)
	if d := space.Distance(p, q); d != 5 {
		t.Errorf("distance = %v, want 5", d)
	}
	if !space.Contains(q) {
		t.Errorf("perturbed point left space: %v", q)
	}
}

func TestPerturbWithinRespectsBudget(t *testing.T) {
	cases := []struct {
		space metric.Space
		dist  float64
	}{
		{metric.HammingCube(64), 7},
		{metric.Grid(10000, 6, metric.L1), 250},
		{metric.Grid(10000, 6, metric.L2), 250},
	}
	src := rng.New(3)
	for _, c := range cases {
		for i := 0; i < 300; i++ {
			p := RandomPoint(c.space, src)
			q := PerturbWithin(c.space, p, c.dist, src)
			if d := c.space.Distance(p, q); d > c.dist+1e-9 {
				t.Fatalf("%v: displaced %v > budget %v", c.space, d, c.dist)
			}
			if !c.space.Contains(q) {
				t.Fatalf("%v: point %v left space", c.space, q)
			}
		}
	}
}

func TestFarPoint(t *testing.T) {
	space := metric.HammingCube(128)
	src := rng.New(4)
	anchor := RandomSet(space, 20, src)
	p, err := FarPoint(space, anchor, 30, src, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := anchor.MinDistanceTo(space, p); d < 30 {
		t.Errorf("far point at distance %v", d)
	}
	// Unsatisfiable: distance beyond diameter.
	if _, err := FarPoint(space, anchor, 129, src, 50); err == nil {
		t.Error("impossible far point succeeded")
	}
}

func TestNewEMDInstanceShape(t *testing.T) {
	space := metric.Grid(4095, 3, metric.L2)
	inst := NewEMDInstance(space, 60, 6, 10, 99)
	if len(inst.SA) != 60 || len(inst.SB) != 60 {
		t.Fatalf("sizes %d/%d", len(inst.SA), len(inst.SB))
	}
	for _, p := range append(inst.SA.Clone(), inst.SB...) {
		if !space.Contains(p) {
			t.Fatalf("point %v outside space", p)
		}
	}
	// Planted structure: EMD_k should be at most (n−k)·noise, far below
	// EMD_0 for uniform outliers.
	emdK := matching.EMDk(space, inst.SA, inst.SB, inst.K)
	if emdK > float64(60-6)*inst.Noise {
		t.Errorf("EMD_k = %v exceeds planted noise budget %v", emdK, float64(54)*inst.Noise)
	}
}

func TestNewEMDInstancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k > n accepted")
		}
	}()
	NewEMDInstance(metric.HammingCube(8), 4, 5, 1, 1)
}

func TestNewGapInstanceInvariants(t *testing.T) {
	space := metric.HammingCube(256)
	inst, err := NewGapInstance(space, 50, 4, 3, 8, 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Verify(); err != nil {
		t.Fatal(err)
	}
	if len(inst.Far) != 4 {
		t.Fatalf("planted %d far points, want 4", len(inst.Far))
	}
	if len(inst.SA) != 54 || len(inst.SB) != 53 {
		t.Fatalf("sizes %d/%d", len(inst.SA), len(inst.SB))
	}
	// Bob's far points must also be far from Alice's set (model
	// symmetry: CB covers all but k of Bob's points).
	farFromAlice := 0
	for _, b := range inst.SB {
		if d, _ := inst.SA.MinDistanceTo(space, b); d >= inst.R2 {
			farFromAlice++
		}
	}
	if farFromAlice != inst.KBob {
		t.Errorf("found %d Bob-only far points, want %d", farFromAlice, inst.KBob)
	}
}

func TestNewGapInstanceL1(t *testing.T) {
	space := metric.Grid(1<<20, 4, metric.L1)
	inst, err := NewGapInstance(space, 40, 3, 0, 100, 5000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestNewGapInstanceUnsatisfiable(t *testing.T) {
	// r2 beyond the diameter cannot be planted.
	space := metric.HammingCube(16)
	if _, err := NewGapInstance(space, 10, 2, 0, 2, 17, 3); err == nil {
		t.Error("unsatisfiable gap instance succeeded")
	}
}

func TestSpreadCodewords(t *testing.T) {
	words, err := SpreadCodewords(256, 33, 64, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != 33 {
		t.Fatalf("got %d words", len(words))
	}
	space := metric.HammingCube(256)
	for i := range words {
		for j := i + 1; j < len(words); j++ {
			if d := space.Distance(words[i], words[j]); d < 64 {
				t.Fatalf("words %d,%d at distance %v", i, j, d)
			}
		}
	}
}

func TestSpreadCodewordsImpossible(t *testing.T) {
	if _, err := SpreadCodewords(8, 1000, 4, 1); err == nil {
		t.Error("impossible codebook succeeded")
	}
}

func TestDeterminism(t *testing.T) {
	a := NewEMDInstance(metric.HammingCube(64), 30, 3, 4, 42)
	b := NewEMDInstance(metric.HammingCube(64), 30, 3, 4, 42)
	for i := range a.SA {
		if !a.SA[i].Equal(b.SA[i]) || !a.SB[i].Equal(b.SB[i]) {
			t.Fatal("same seed produced different instances")
		}
	}
}

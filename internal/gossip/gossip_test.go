package gossip

import (
	"reflect"
	"testing"
)

func mustNew(t *testing.T, cfg Config) *Gossip {
	t.Helper()
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewRequiresSelf(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted an empty Self")
	}
}

func TestSnapshotSortedWithSelf(t *testing.T) {
	g := mustNew(t, Config{Self: "n2", Seeds: []string{"n3", "n1", "n2", ""}})
	snap := g.Snapshot()
	want := []Member{
		{Addr: "n1", State: StateAlive},
		{Addr: "n2", State: StateAlive},
		{Addr: "n3", State: StateAlive},
	}
	if !reflect.DeepEqual(snap, want) {
		t.Fatalf("snapshot = %+v, want %+v", snap, want)
	}
}

func TestMergePrecedence(t *testing.T) {
	g := mustNew(t, Config{Self: "me", Seeds: []string{"a"}})

	// Same incarnation, worse state wins.
	if !g.Merge([]Member{{Addr: "a", Incarnation: 0, State: StateSuspect}}) {
		t.Fatal("suspect at equal incarnation did not apply")
	}
	// Same incarnation, better state loses.
	if g.Merge([]Member{{Addr: "a", Incarnation: 0, State: StateAlive}}) {
		t.Fatal("alive did not lose to suspect at equal incarnation")
	}
	// Higher incarnation always wins, even downgrading the state.
	if !g.Merge([]Member{{Addr: "a", Incarnation: 1, State: StateAlive}}) {
		t.Fatal("higher incarnation alive did not override suspect")
	}
	// Lower incarnation never applies.
	if g.Merge([]Member{{Addr: "a", Incarnation: 0, State: StateDead}}) {
		t.Fatal("stale incarnation applied")
	}
	snap := g.Snapshot()
	if snap[0].Addr != "a" || snap[0].State != StateAlive || snap[0].Incarnation != 1 {
		t.Fatalf("final entry = %+v", snap[0])
	}
}

func TestSelfRefutation(t *testing.T) {
	g := mustNew(t, Config{Self: "me"})
	// A rumor says we are dead at incarnation 3: refute by out-bidding.
	if !g.Merge([]Member{{Addr: "me", Incarnation: 3, State: StateDead}}) {
		t.Fatal("refutation did not register as a change")
	}
	snap := g.Snapshot()
	if snap[0].Incarnation != 4 || snap[0].State != StateAlive {
		t.Fatalf("self after refutation = %+v, want alive inc 4", snap[0])
	}
	// An alive rumor at our current incarnation is not news.
	if g.Merge([]Member{{Addr: "me", Incarnation: 4, State: StateAlive}}) {
		t.Fatal("current alive rumor counted as change")
	}
}

func TestLeftIsFinal(t *testing.T) {
	g := mustNew(t, Config{Self: "me"})
	g.SetLeft()
	if g.Merge([]Member{{Addr: "me", Incarnation: 0, State: StateDead}}) {
		t.Fatal("left node refuted a rumor")
	}
	snap := g.Snapshot()
	if snap[0].State != StateLeft {
		t.Fatalf("self = %+v, want left", snap[0])
	}
	if got := g.Active(); len(got) != 0 {
		t.Fatalf("left node still active: %v", got)
	}
}

func TestFailureDetectionLifecycle(t *testing.T) {
	g := mustNew(t, Config{Self: "me", Seeds: []string{"a", "b"}, SuspectRounds: 2})
	g.MarkFailed("a")
	if got := g.Active(); !reflect.DeepEqual(got, []string{"a", "b", "me"}) {
		t.Fatalf("suspect dropped from active set: %v", got)
	}
	g.Tick() // age 1
	g.Tick() // age 2 → dead
	snap := g.Snapshot()
	if snap[0].Addr != "a" || snap[0].State != StateDead {
		t.Fatalf("a = %+v, want dead", snap[0])
	}
	if got := g.Active(); !reflect.DeepEqual(got, []string{"b", "me"}) {
		t.Fatalf("active after death = %v", got)
	}
	// Refutation: the node comes back at a higher incarnation.
	if !g.Merge([]Member{{Addr: "a", Incarnation: 1, State: StateAlive}}) {
		t.Fatal("rejoin did not apply")
	}
	if got := g.Active(); !reflect.DeepEqual(got, []string{"a", "b", "me"}) {
		t.Fatalf("active after rejoin = %v", got)
	}
}

func TestMarkFailedOnSuspectKeepsAge(t *testing.T) {
	g := mustNew(t, Config{Self: "me", Seeds: []string{"a"}, SuspectRounds: 2})
	g.MarkFailed("a")
	g.Tick()          // age 1
	g.MarkFailed("a") // no-op: already suspect
	g.Tick()          // age 2 → dead
	if snap := g.Snapshot(); snap[0].State != StateDead {
		t.Fatalf("a = %+v, want dead after 2 ticks", snap[0])
	}
}

func TestTargetsDeterministicAndBounded(t *testing.T) {
	seeds := []string{"a", "b", "c", "d", "e"}
	g1 := mustNew(t, Config{Self: "me", Seeds: seeds, Seed: 7})
	g2 := mustNew(t, Config{Self: "me", Seeds: seeds, Seed: 7})
	for round := 0; round < 10; round++ {
		t1, t2 := g1.Targets(2), g2.Targets(2)
		if !reflect.DeepEqual(t1, t2) {
			t.Fatalf("round %d: schedules diverged: %v vs %v", round, t1, t2)
		}
		if len(t1) != 2 {
			t.Fatalf("round %d: %d targets, want 2", round, len(t1))
		}
		if t1[0] == t1[1] {
			t.Fatalf("round %d: duplicate target %q", round, t1[0])
		}
	}
	// Small pool: everyone is a target, no RNG consumed.
	g3 := mustNew(t, Config{Self: "me", Seeds: []string{"x"}})
	if got := g3.Targets(2); !reflect.DeepEqual(got, []string{"x"}) {
		t.Fatalf("small-pool targets = %v", got)
	}
}

func TestTargetsResurrectionProbeNeverLeft(t *testing.T) {
	g := mustNew(t, Config{Self: "me", Seeds: []string{"a", "b", "c", "d"}})
	g.Merge([]Member{
		{Addr: "a", Incarnation: 1, State: StateDead},
		{Addr: "b", Incarnation: 1, State: StateDead},
		{Addr: "c", Incarnation: 1, State: StateLeft},
	})
	// Left members are final and never probed; dead members get exactly
	// one resurrection probe per draw, round-robin so both take turns.
	probed := map[string]int{}
	for i := 0; i < 6; i++ {
		tgts := g.Targets(3)
		if tgts[0] != "d" {
			t.Fatalf("draw %d: live pool = %v, want leading %q", i, tgts, "d")
		}
		if len(tgts) != 2 {
			t.Fatalf("draw %d: %d targets, want live + one dead probe: %v", i, len(tgts), tgts)
		}
		switch tgts[1] {
		case "a", "b":
			probed[tgts[1]]++
		default:
			t.Fatalf("draw %d: probed %q, want a dead member", i, tgts[1])
		}
	}
	if probed["a"] != 3 || probed["b"] != 3 {
		t.Fatalf("dead probes not round-robin: %v", probed)
	}
}

func TestVersionTracksChanges(t *testing.T) {
	g := mustNew(t, Config{Self: "me", Seeds: []string{"a"}})
	v0 := g.Version()
	g.Merge([]Member{{Addr: "a", Incarnation: 0, State: StateAlive}}) // no news
	if g.Version() != v0 {
		t.Fatal("no-op merge bumped version")
	}
	g.MarkFailed("a")
	if g.Version() == v0 {
		t.Fatal("MarkFailed did not bump version")
	}
}

func TestWireRoundTrip(t *testing.T) {
	g := mustNew(t, Config{Self: "n1", Seeds: []string{"n2", "n3"}})
	g.MarkFailed("n2")
	g.Merge([]Member{{Addr: "n3", Incarnation: 5, State: StateLeft}})
	snap := g.Snapshot()

	enc := encodeSnapshot(snap)
	got, err := decodeSnapshot(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, snap) {
		t.Fatalf("round trip: %+v != %+v", got, snap)
	}
}

func TestDecodeRejectsHostileFrames(t *testing.T) {
	good := encodeSnapshot([]Member{
		{Addr: "a", Incarnation: 1, State: StateAlive},
		{Addr: "b", Incarnation: 2, State: StateSuspect},
	})
	cases := map[string][]byte{
		"count bomb":    {0xff, 0xff, 0xff, 0xff, 0x7f},
		"truncated":     good[:len(good)-2],
		"empty":         nil,
		"out of order":  encodeSnapshot([]Member{{Addr: "b"}, {Addr: "a"}}),
		"duplicate":     encodeSnapshot([]Member{{Addr: "a"}, {Addr: "a"}}),
		"bad state":     encodeSnapshot([]Member{{Addr: "a", State: State(9)}}),
		"empty address": encodeSnapshot([]Member{{Addr: ""}}),
	}
	for name, data := range cases {
		if _, err := decodeSnapshot(data); err == nil {
			t.Errorf("%s: decode accepted hostile frame", name)
		}
	}
}

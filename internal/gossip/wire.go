package gossip

import (
	"fmt"

	"repro/internal/netproto"
	"repro/internal/transport"
)

// Wire format (netproto.ProtoGossip, one frame each way):
//
//	uvarint member count
//	per member, in strictly ascending address order:
//	    length-prefixed address (1..maxAddrLen bytes)
//	    uvarint incarnation
//	    8-bit state (≤ StateLeft)
//
// The sorted-order requirement is not cosmetic: it makes the encoding
// canonical (one table, one byte string), gives the decoder a free
// duplicate check, and means a hostile frame cannot smuggle the same
// address twice with conflicting states.

// maxAddrLen bounds a member address on the wire. Real addresses are
// host:port or socket paths; anything longer is hostile.
const maxAddrLen = 255

// maxWireMembers bounds the member count a single frame may claim,
// independent of the per-byte Remaining check — no mesh this code
// serves has a million members, and a hostile count must not size
// anything before the cheap checks run.
const maxWireMembers = 1 << 20

// encodeMembers writes a member table. The input must already be
// sorted by address (Snapshot's contract).
func encodeMembers(e *transport.Encoder, members []Member) {
	e.WriteUvarint(uint64(len(members)))
	for _, m := range members {
		e.WriteBytes([]byte(m.Addr))
		e.WriteUvarint(m.Incarnation)
		e.WriteBits(uint64(m.State), 8)
	}
}

// decodeMembers reads a member table, rejecting hostile counts before
// allocating, oversized or empty addresses, out-of-order or duplicate
// entries, and unknown states.
func decodeMembers(d *transport.Decoder) ([]Member, error) {
	n, err := d.ReadUvarint()
	if err != nil {
		return nil, err
	}
	if n > maxWireMembers {
		return nil, fmt.Errorf("gossip: implausible member count %d", n)
	}
	// Each member costs at least 4 wire bytes (1 length + 1 address byte
	// + 1 incarnation + 1 state); reject a count the rest of the frame
	// cannot back before the slice exists.
	if n > uint64(d.Remaining())/4 {
		return nil, fmt.Errorf("gossip: member count %d exceeds remaining frame (%d bytes)", n, d.Remaining())
	}
	out := make([]Member, 0, n)
	prev := ""
	for i := uint64(0); i < n; i++ {
		raw, err := d.ReadBytes()
		if err != nil {
			return nil, err
		}
		if len(raw) == 0 || len(raw) > maxAddrLen {
			return nil, fmt.Errorf("gossip: member address length %d out of range [1,%d]", len(raw), maxAddrLen)
		}
		addr := string(raw)
		if addr <= prev {
			return nil, fmt.Errorf("gossip: member addresses out of order (%q after %q)", addr, prev)
		}
		prev = addr
		inc, err := d.ReadUvarint()
		if err != nil {
			return nil, err
		}
		st, err := d.ReadBits(8)
		if err != nil {
			return nil, err
		}
		if State(st) > StateLeft {
			return nil, fmt.Errorf("gossip: unknown member state %d", st)
		}
		out = append(out, Member{Addr: addr, Incarnation: inc, State: State(st)})
	}
	return out, nil
}

// exchangeDigest is the constant parameter digest both gossip roles
// present: the protocol has no tunable parameters — any two members may
// exchange tables.
const exchangeDigest uint64 = 0x90551b

// Exchange is the push-pull handler for both roles, bound to the local
// Gossip table. The initiator sends its table and merges the reply; the
// responder merges the received table first and answers with the
// post-merge view, so one exchange fully synchronizes both tables.
type Exchange struct {
	g    *Gossip
	role netproto.Role

	// Changed reports whether the local table changed (set after Run).
	Changed bool
}

// Initiator returns the dialing side of one exchange.
func (g *Gossip) Initiator() *Exchange {
	return &Exchange{g: g, role: netproto.RoleAlice}
}

// ResponderFactory returns a server-registerable factory answering
// exchanges against this table.
func (g *Gossip) ResponderFactory() func() netproto.Handler {
	return func() netproto.Handler { return &Exchange{g: g, role: netproto.RoleBob} }
}

// Proto implements netproto.Handler.
func (h *Exchange) Proto() netproto.Proto { return netproto.ProtoGossip }

// Role implements netproto.Handler.
func (h *Exchange) Role() netproto.Role { return h.role }

// Digest implements netproto.Handler.
func (h *Exchange) Digest() uint64 { return exchangeDigest }

// Run implements netproto.Handler.
func (h *Exchange) Run(conn transport.Conn) error {
	if h.role == netproto.RoleAlice {
		e := transport.NewEncoder()
		encodeMembers(e, h.g.Snapshot())
		if err := conn.Send(e); err != nil {
			return err
		}
		d, err := conn.Recv()
		if err != nil {
			return err
		}
		remote, err := decodeMembers(d)
		if err != nil {
			return err
		}
		h.Changed = h.g.Merge(remote)
		return nil
	}
	d, err := conn.Recv()
	if err != nil {
		return err
	}
	remote, err := decodeMembers(d)
	if err != nil {
		return err
	}
	h.Changed = h.g.Merge(remote)
	e := transport.NewEncoder()
	encodeMembers(e, h.g.Snapshot())
	return conn.Send(e)
}

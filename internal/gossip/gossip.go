// Package gossip is SWIM-style cluster membership: every node keeps a
// table of members (address, incarnation, state) and swaps it push-pull
// with a few random partners per round over the session engine
// (netproto.ProtoGossip). Join, leave, suspicion, and failure all
// travel as ordinary table entries, so one merge rule drives the whole
// lifecycle:
//
//   - a higher incarnation always wins;
//   - at equal incarnations the "worse" state wins
//     (alive < suspect < dead < left).
//
// Failure detection is direct: a failed exchange marks the target
// suspect, suspicion spreads by gossip, and a member that stays suspect
// for SuspectRounds rounds is declared dead. The suspected node refutes
// by incarnation: when a merge shows this node anything but alive at
// its current incarnation, it bumps the incarnation and re-announces
// alive — which is also how a crashed-and-restarted or rejoining member
// overrides its own stale dead/left entry.
//
// The package is deliberately round-driven and timer-free: Tick ages
// suspicion, Targets draws exchange partners from a seeded RNG, and
// every state transition happens inside a caller-driven call — the same
// (seed, call sequence) always yields the same membership history,
// which is what the deterministic simnet scenarios replay.
package gossip

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/rng"
)

// State is a member's lifecycle state. The numeric order is the
// precedence order at equal incarnations: a larger value overrides.
type State uint8

const (
	// StateAlive: the member answers exchanges.
	StateAlive State = iota
	// StateSuspect: an exchange with the member failed; it is still a
	// placement owner (damping: transient failures must not reshuffle
	// the ring) but will be declared dead unless it refutes.
	StateSuspect
	// StateDead: suspicion aged out without refutation.
	StateDead
	// StateLeft: the member announced a graceful departure.
	StateLeft
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	case StateLeft:
		return "left"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Member is one table entry: the address other members dial is the
// identity.
type Member struct {
	Addr        string
	Incarnation uint64
	State       State
}

// Config tunes a Gossip instance. Self is required.
type Config struct {
	// Self is this node's advertised address — its member identity.
	Self string
	// Seeds are addresses entered into the table at construction (the
	// bootstrap list; typically the static -cluster peers, or one
	// long-lived seed node). Unknown or dead seeds are harmless: they
	// just never answer.
	Seeds []string
	// Fanout is how many push-pull partners each round draws
	// (default 2).
	Fanout int
	// SuspectRounds is how many rounds a member stays suspect before
	// being declared dead (default 3).
	SuspectRounds int
	// Seed feeds the partner-selection RNG (default 1).
	Seed uint64
	// Logf, when set, receives membership transitions.
	Logf func(format string, args ...any)
}

// entry is a Member plus local bookkeeping that never goes on the wire.
type entry struct {
	Member
	// suspectAge counts Ticks since the entry entered StateSuspect.
	suspectAge int
}

// Gossip is one node's membership state. Construct with New; all
// methods are safe for concurrent use (responder-side merges run on
// server goroutines).
type Gossip struct {
	cfg Config

	mu        sync.Mutex
	src       *rng.Source
	inc       uint64 // self incarnation
	self      State  // StateAlive, or StateLeft after SetLeft
	members   map[string]*entry
	version   uint64 // bumped on any table change (cheap change detection)
	deadProbe int    // round-robin cursor over dead members (resurrection probe)
}

// New builds a gossip instance over the seed list. Seeds start alive at
// incarnation 0; real state arrives with the first exchanges.
func New(cfg Config) (*Gossip, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("gossip: Config.Self is required")
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = 2
	}
	if cfg.SuspectRounds <= 0 {
		cfg.SuspectRounds = 3
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	g := &Gossip{
		cfg:     cfg,
		src:     rng.New(cfg.Seed),
		self:    StateAlive,
		members: make(map[string]*entry),
	}
	for _, addr := range cfg.Seeds {
		if addr == "" || addr == cfg.Self {
			continue
		}
		if _, ok := g.members[addr]; !ok {
			g.members[addr] = &entry{Member: Member{Addr: addr, State: StateAlive}}
		}
	}
	return g, nil
}

// Self returns this node's member identity.
func (g *Gossip) Self() string { return g.cfg.Self }

// Version returns a counter that increases on every table change.
// Callers poll it to skip recomputing membership-derived state (ring
// assignments) when nothing moved.
func (g *Gossip) Version() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.version
}

// Snapshot returns the full table — self included — sorted by address:
// the canonical wire order, and the deterministic iteration order every
// caller shares.
func (g *Gossip) Snapshot() []Member {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.snapshotLocked()
}

func (g *Gossip) snapshotLocked() []Member {
	out := make([]Member, 0, len(g.members)+1)
	out = append(out, Member{Addr: g.cfg.Self, Incarnation: g.inc, State: g.self})
	for _, e := range g.members {
		out = append(out, e.Member)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Active returns the sorted addresses of members that count for
// placement and peer selection: alive and suspect (damping — a suspect
// stays an owner until confirmed dead), self included unless it has
// left.
func (g *Gossip) Active() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, 0, len(g.members)+1)
	if g.self == StateAlive {
		out = append(out, g.cfg.Self)
	}
	for addr, e := range g.members {
		if e.State == StateAlive || e.State == StateSuspect {
			out = append(out, addr)
		}
	}
	sort.Strings(out)
	return out
}

// AliveCount returns how many members (self included) are alive or
// suspect, and the total table size — the numbers operators watch.
func (g *Gossip) AliveCount() (active, total int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	active, total = 0, len(g.members)+1
	if g.self == StateAlive {
		active++
	}
	for _, e := range g.members {
		if e.State == StateAlive || e.State == StateSuspect {
			active++
		}
	}
	return active, total
}

// Targets draws the round's exchange partners: up to fanout distinct
// members from the alive+suspect pool (a suspect must be probed, or it
// could never refute), plus at most one dead member as a resurrection
// probe — rotating through the dead list round-robin. Without that
// probe a symmetric partition is fatal: each side declares the other
// dead, dead members are never contacted, and the mesh stays split
// after the network heals. One extra (usually failing) exchange per
// round is the price of guaranteed re-merge. Left members are truly
// final and never probed. The draw consumes the instance RNG, so a
// fixed seed yields a fixed partner schedule.
func (g *Gossip) Targets(fanout int) []string {
	if fanout <= 0 {
		fanout = g.cfg.Fanout
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	pool := make([]string, 0, len(g.members))
	var dead []string
	for addr, e := range g.members {
		switch e.State {
		case StateAlive, StateSuspect:
			pool = append(pool, addr)
		case StateDead:
			dead = append(dead, addr)
		}
	}
	sort.Strings(pool)
	if len(pool) > fanout {
		// Partial Fisher-Yates: the first fanout slots are a uniform
		// sample, drawn in deterministic order.
		for i := 0; i < fanout; i++ {
			j := i + g.src.Intn(len(pool)-i)
			pool[i], pool[j] = pool[j], pool[i]
		}
		pool = pool[:fanout]
	}
	if len(dead) > 0 {
		sort.Strings(dead)
		pool = append(pool, dead[g.deadProbe%len(dead)])
		g.deadProbe++
	}
	return pool
}

// Merge folds a remote table into ours under the SWIM precedence rules
// and reports whether anything changed. Entries about self never enter
// the table: anything but alive-at-current-incarnation is refuted by
// bumping the incarnation (unless this node has left — left is final
// for this instance; a rejoin constructs a fresh one).
func (g *Gossip) Merge(remote []Member) (changed bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, m := range remote {
		if m.Addr == "" {
			continue
		}
		if m.Addr == g.cfg.Self {
			if g.self == StateAlive && (m.Incarnation > g.inc || (m.Incarnation == g.inc && m.State != StateAlive)) {
				// Someone is spreading a stale or slanderous entry about
				// us: out-bid it.
				g.inc = m.Incarnation + 1
				g.version++
				changed = true
				g.cfg.Logf("gossip: refuted %s rumor, incarnation now %d", m.State, g.inc)
			}
			continue
		}
		e := g.members[m.Addr]
		if e == nil {
			g.members[m.Addr] = &entry{Member: m}
			g.version++
			changed = true
			g.cfg.Logf("gossip: learned %s (%s, inc %d)", m.Addr, m.State, m.Incarnation)
			continue
		}
		if m.Incarnation > e.Incarnation || (m.Incarnation == e.Incarnation && m.State > e.State) {
			old := e.State
			e.Member = m
			e.suspectAge = 0
			g.version++
			changed = true
			if old != m.State {
				g.cfg.Logf("gossip: %s %s -> %s (inc %d)", m.Addr, old, m.State, m.Incarnation)
			}
		}
	}
	return changed
}

// MarkFailed records a failed exchange with addr: an alive member
// becomes suspect at its current incarnation. Already-suspect members
// are left to age (Tick), dead/left ones are not news.
func (g *Gossip) MarkFailed(addr string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	e := g.members[addr]
	if e == nil || e.State != StateAlive {
		return
	}
	e.State = StateSuspect
	e.suspectAge = 0
	g.version++
	g.cfg.Logf("gossip: %s suspected (exchange failed, inc %d)", addr, e.Incarnation)
}

// Tick advances suspicion by one round: every suspect entry ages, and
// one that has been suspect for SuspectRounds rounds is declared dead.
// Call it once per gossip round, after the round's exchanges.
func (g *Gossip) Tick() {
	g.mu.Lock()
	defer g.mu.Unlock()
	for addr, e := range g.members {
		if e.State != StateSuspect {
			continue
		}
		e.suspectAge++
		if e.suspectAge >= g.cfg.SuspectRounds {
			e.State = StateDead
			g.version++
			g.cfg.Logf("gossip: %s declared dead (suspect for %d rounds, inc %d)",
				addr, e.suspectAge, e.Incarnation)
		}
	}
}

// SetLeft marks this node as gracefully departing: its table entry
// becomes left at the current incarnation, which subsequent exchanges
// (the caller should push at least one) spread to the mesh. Left is
// final for this instance — it stops refuting rumors, so the departure
// sticks; a rejoin builds a fresh Gossip whose first merge sees the old
// left entry and out-bids it.
func (g *Gossip) SetLeft() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.self == StateLeft {
		return
	}
	g.self = StateLeft
	g.version++
	g.cfg.Logf("gossip: leaving (inc %d)", g.inc)
}

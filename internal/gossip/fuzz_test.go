package gossip

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/transport"
)

// encodeSnapshot / decodeSnapshot are byte-level wrappers over the
// frame codec, shared by the unit and fuzz tests.
func encodeSnapshot(members []Member) []byte {
	e := transport.NewEncoder()
	encodeMembers(e, members)
	data, _ := e.Pack()
	return append([]byte(nil), data...)
}

func decodeSnapshot(data []byte) ([]Member, error) {
	return decodeMembers(transport.NewDecoder(data))
}

func fuzzTableBytes() []byte {
	return encodeSnapshot([]Member{
		{Addr: "10.0.0.1:7000", Incarnation: 0, State: StateAlive},
		{Addr: "10.0.0.2:7000", Incarnation: 3, State: StateSuspect},
		{Addr: "10.0.0.3:7000", Incarnation: 1, State: StateDead},
		{Addr: "10.0.0.4:7000", Incarnation: 7, State: StateLeft},
	})
}

// FuzzMemberTable hardens the gossip frame reader: arbitrary bytes must
// either fail cleanly or decode to a table that is strictly sorted,
// within state range, and survives an encode/decode round trip
// value-identically. A decoded table must also merge without panicking.
func FuzzMemberTable(f *testing.F) {
	f.Add(fuzzTableBytes())
	f.Add(encodeSnapshot(nil))
	f.Add([]byte{})
	// Member-count bomb: 2^31 members in a 5-byte frame.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x7f})
	// One member with an address-length bomb.
	f.Add([]byte{0x01, 0xff, 0xff, 0xff, 0x7f})
	f.Add(fuzzTableBytes()[:7])

	f.Fuzz(func(t *testing.T, data []byte) {
		members, err := decodeSnapshot(data)
		if err != nil {
			return // rejected cleanly
		}
		for i, m := range members {
			if m.Addr == "" || len(m.Addr) > maxAddrLen {
				t.Fatalf("accepted address length %d", len(m.Addr))
			}
			if m.State > StateLeft {
				t.Fatalf("accepted state %d", m.State)
			}
			if i > 0 && members[i-1].Addr >= m.Addr {
				t.Fatalf("accepted unsorted table: %q before %q", members[i-1].Addr, m.Addr)
			}
		}
		enc := encodeSnapshot(members)
		members2, err := decodeSnapshot(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted table failed: %v", err)
		}
		if !reflect.DeepEqual(members, members2) {
			t.Fatalf("round trip changed table:\n%+v\n%+v", members, members2)
		}
		g, err := New(Config{Self: "fuzz-self"})
		if err != nil {
			t.Fatal(err)
		}
		g.Merge(members)
	})
}

// TestGenerateGossipFuzzCorpus regenerates the checked-in seed corpus
// under testdata/fuzz (run with GEN_FUZZ_CORPUS=1; skipped otherwise),
// matching the discipline of the netproto and durable corpora.
func TestGenerateGossipFuzzCorpus(t *testing.T) {
	if os.Getenv("GEN_FUZZ_CORPUS") == "" {
		t.Skip("set GEN_FUZZ_CORPUS=1 to regenerate the checked-in corpus")
	}
	write := func(name string, data []byte) {
		dir := filepath.Join("testdata", "fuzz", "FuzzMemberTable")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("valid", fuzzTableBytes())
	write("empty-table", encodeSnapshot(nil))
	write("count-bomb", []byte{0xff, 0xff, 0xff, 0xff, 0x7f})
	write("addr-length-bomb", []byte{0x01, 0xff, 0xff, 0xff, 0x7f})
	write("truncated", fuzzTableBytes()[:7])
	write("out-of-order", encodeSnapshot([]Member{{Addr: "b", State: StateAlive}, {Addr: "a", State: StateAlive}}))
	write("bad-state", encodeSnapshot([]Member{{Addr: "a", State: State(200)}}))
}

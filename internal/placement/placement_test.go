package placement

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
)

func nodeList(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("node-%03d", i)
	}
	return out
}

func setList(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("set-%02d", i)
	}
	return out
}

func TestRingOrderIndependent(t *testing.T) {
	a := New([]string{"c", "a", "b", "a", ""}, 8, 42)
	b := New([]string{"b", "c", "a"}, 8, 42)
	if !reflect.DeepEqual(a.Nodes(), []string{"a", "b", "c"}) {
		t.Fatalf("nodes = %v", a.Nodes())
	}
	sa := a.Assign(setList(10), 2, 0)
	sb := b.Assign(setList(10), 2, 0)
	if !reflect.DeepEqual(sa, sb) {
		t.Fatalf("assignment depends on member order:\n%v\n%v", sa, sb)
	}
}

func TestAssignDeterministic(t *testing.T) {
	nodes, sets := nodeList(20), setList(40)
	a := New(nodes, 16, 7).Assign(sets, 3, 0.25)
	b := New(nodes, 16, 7).Assign(sets, 3, 0.25)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same inputs produced different assignments")
	}
	// A different seed produces a different ring (overwhelmingly).
	c := New(nodes, 16, 8).Assign(sets, 3, 0.25)
	if reflect.DeepEqual(a, c) {
		t.Fatal("seed had no effect on assignment")
	}
}

func TestAssignExactlyROwners(t *testing.T) {
	r := New(nodeList(10), 16, 1)
	for _, rf := range []int{1, 2, 3} {
		asn := r.Assign(setList(24), rf, 0)
		if len(asn) != 24 {
			t.Fatalf("rf=%d: %d sets assigned, want 24", rf, len(asn))
		}
		for set, owners := range asn {
			if len(owners) != rf {
				t.Fatalf("rf=%d: set %q has %d owners: %v", rf, set, len(owners), owners)
			}
			if !sort.StringsAreSorted(owners) {
				t.Fatalf("owners not sorted: %v", owners)
			}
			for i := 1; i < len(owners); i++ {
				if owners[i] == owners[i-1] {
					t.Fatalf("duplicate owner for %q: %v", set, owners)
				}
			}
		}
	}
}

func TestReplicationClampedToMembers(t *testing.T) {
	r := New(nodeList(2), 16, 1)
	asn := r.Assign(setList(6), 3, 0)
	for set, owners := range asn {
		if len(owners) != 2 {
			t.Fatalf("set %q: %d owners with 2 members: %v", set, len(owners), owners)
		}
	}
}

func TestLoadBound(t *testing.T) {
	for _, tc := range []struct{ nodes, sets, rf int }{
		{100, 24, 3},
		{10, 50, 3},
		{4, 40, 2},
		{3, 7, 3}, // capacity floor: rf ≥ nodes·ish edge
	} {
		r := New(nodeList(tc.nodes), 16, 9)
		asn := r.Assign(setList(tc.sets), tc.rf, 0.25)
		budget := r.Capacity(tc.sets, min(tc.rf, tc.nodes), 0.25)
		load := map[string]int{}
		for _, owners := range asn {
			for _, o := range owners {
				load[o]++
			}
		}
		for node, l := range load {
			if l > budget {
				t.Fatalf("%d nodes/%d sets/rf=%d: node %s holds %d sets, budget %d",
					tc.nodes, tc.sets, tc.rf, node, l, budget)
			}
		}
	}
}

func TestMinimalDisruption(t *testing.T) {
	sets := setList(48)
	before := New(nodeList(20), 16, 3).Assign(sets, 3, 0.25)
	// Drop one node of twenty.
	after := New(nodeList(20)[:19], 16, 3).Assign(sets, 3, 0.25)
	moved := 0
	for _, set := range sets {
		b, a := before[set], after[set]
		for _, owner := range a {
			found := false
			for _, o := range b {
				if o == owner {
					found = true
					break
				}
			}
			if !found {
				moved++
			}
		}
	}
	// 48 sets × rf 3 = 144 replicas; the departed node held ≤ 9
	// (capacity), and bounded-loads ripple can move a few more. Anything
	// beyond ~1/3 of replicas means the ring is rehashing the world.
	if moved > 48 {
		t.Fatalf("%d of 144 replicas moved after losing 1 of 20 nodes", moved)
	}
	t.Logf("replicas moved: %d / 144", moved)
}

func TestEmptyInputs(t *testing.T) {
	if got := New(nil, 0, 1).Assign(setList(3), 2, 0); len(got) != 0 {
		t.Fatalf("assignment over empty ring: %v", got)
	}
	if got := New(nodeList(3), 0, 1).Assign(nil, 2, 0); len(got) != 0 {
		t.Fatalf("assignment of no sets: %v", got)
	}
	if c := New(nodeList(3), 0, 1).Capacity(0, 2, 0); c != 0 {
		t.Fatalf("capacity for 0 sets = %d", c)
	}
}

func TestMesh100Shape(t *testing.T) {
	// The mesh-100 scenario's exact shape: 100 nodes, 24 sets, rf 3.
	// Every node budget is ceil(1.25·3·24/100) = 1: the walk must still
	// find 3 distinct owners per set and never exceed one set per node.
	r := New(nodeList(100), 16, 1)
	asn := r.Assign(setList(24), 3, 0.25)
	load := map[string]int{}
	for set, owners := range asn {
		if len(owners) != 3 {
			t.Fatalf("set %q: owners %v", set, owners)
		}
		for _, o := range owners {
			load[o]++
		}
	}
	for node, l := range load {
		if l > 1 {
			t.Fatalf("node %s holds %d sets, budget 1", node, l)
		}
	}
}

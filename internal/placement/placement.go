// Package placement maps set namespaces to owner nodes with a
// consistent-hash ring under a bounded-loads discipline.
//
// Each node projects VNodes virtual points onto a 64-bit ring; a set
// hashes to a ring position and walks clockwise collecting R distinct
// owners. Consistent hashing alone keeps reassignment minimal when the
// member list changes (only sets adjacent to moved vnodes change
// owners), but its load balance is poor at small node counts — so the
// walk skips nodes that have already reached their capacity
//
//	ceil((1+Slack) · R · #sets / #nodes)
//
// (Mirrokni et al.'s consistent hashing with bounded loads), which
// turns the ~(R·sets/nodes)·(1+ε) per-node bound from a hope into a
// construction invariant. Every input is explicit — member list, set
// catalog, vnode count, seed — so any two nodes with the same view
// compute the identical assignment with no coordination.
package placement

import (
	"sort"

	"repro/internal/hashx"
)

// DefaultVNodes is the virtual-node count per member when the caller
// passes 0. More vnodes smooth the ring at the cost of a larger sort;
// 16 keeps a 100-node ring at 1600 points.
const DefaultVNodes = 16

// DefaultSlack is the capacity headroom ε when the caller passes 0:
// per-node load is bounded by ceil((1+ε)·R·sets/nodes).
const DefaultSlack = 0.25

// ringSeed namespaces the ring's hash family away from other Mixer
// uses of the same user seed.
const ringSeed = 0x51a9ce

// Ring is an immutable consistent-hash ring over one member list.
// Build with New; an updated member list is a new Ring (construction
// is cheap — sorting #nodes·vnodes points).
type Ring struct {
	mixer  hashx.Mixer
	nodes  []string
	points []point // sorted by hash
	vnodes int
}

type point struct {
	hash uint64
	node int // index into nodes
}

// New builds a ring over the member addresses. The list is deduplicated
// and sorted internally, so any permutation of the same members yields
// an identical ring. vnodes ≤ 0 means DefaultVNodes; seed selects the
// hash family (all members must agree on it).
func New(members []string, vnodes int, seed uint64) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	nodes := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		nodes = append(nodes, m)
	}
	sort.Strings(nodes)
	r := &Ring{
		mixer:  hashx.MixerFromSeed(seed ^ ringSeed),
		nodes:  nodes,
		points: make([]point, 0, len(nodes)*vnodes),
		vnodes: vnodes,
	}
	for i, n := range nodes {
		base := r.mixer.HashBytes([]byte(n))
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: r.mixer.Hash(base + uint64(v)), node: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Hash ties (vanishingly rare) break by node index so the ring
		// stays order-independent of the input permutation.
		return r.points[a].node < r.points[b].node
	})
	return r
}

// Nodes returns the ring's deduplicated, sorted member list.
func (r *Ring) Nodes() []string { return r.nodes }

// Capacity returns the bounded-loads per-node set budget for nSets sets
// at replication rf with the given slack (≤ 0 means DefaultSlack):
// ceil((1+slack)·rf·nSets/#nodes). The ceiling makes the aggregate
// budget at least rf·nSets, so a full assignment always fits.
func (r *Ring) Capacity(nSets, rf int, slack float64) int {
	if len(r.nodes) == 0 || nSets == 0 {
		return 0
	}
	if slack <= 0 {
		slack = DefaultSlack
	}
	load := float64(rf) * float64(nSets) / float64(len(r.nodes))
	budget := int((1 + slack) * load)
	if float64(budget) < (1+slack)*load {
		budget++ // ceil
	}
	return budget
}

// Assign maps every set to its rf owner addresses (sorted), walking the
// ring clockwise from each set's hash and skipping nodes already at
// capacity. rf is clamped to the member count; slack ≤ 0 means
// DefaultSlack. Sets are processed in sorted-name order, so the
// assignment is a pure function of (members, sets, rf, vnodes, slack,
// seed): every node computes the same map locally.
//
// The capacity skip can — on small meshes with adversarial hash
// placement — exhaust the walk before rf distinct under-capacity
// owners are found; the remainder then comes from the least-loaded
// non-owners in (load, name) order, preserving both determinism and
// the load bound.
func (r *Ring) Assign(sets []string, rf int, slack float64) map[string][]string {
	out := make(map[string][]string, len(sets))
	if len(r.nodes) == 0 || len(sets) == 0 {
		return out
	}
	if rf < 1 {
		rf = 1
	}
	if rf > len(r.nodes) {
		rf = len(r.nodes)
	}
	ordered := append([]string(nil), sets...)
	sort.Strings(ordered)
	capPerNode := r.Capacity(len(ordered), rf, slack)
	load := make([]int, len(r.nodes))
	for _, set := range ordered {
		if _, dup := out[set]; dup {
			continue
		}
		h := r.mixer.HashBytes([]byte(set))
		start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
		owners := make([]int, 0, rf)
		isOwner := make(map[int]bool, rf)
		for off := 0; off < len(r.points) && len(owners) < rf; off++ {
			p := r.points[(start+off)%len(r.points)]
			if isOwner[p.node] || load[p.node] >= capPerNode {
				continue
			}
			isOwner[p.node] = true
			owners = append(owners, p.node)
		}
		for len(owners) < rf {
			// Walk exhausted under the capacity skip: take the least-
			// loaded non-owner (ties by node order = address order).
			best := -1
			for i := range r.nodes {
				if isOwner[i] {
					continue
				}
				if best < 0 || load[i] < load[best] {
					best = i
				}
			}
			isOwner[best] = true
			owners = append(owners, best)
		}
		addrs := make([]string, len(owners))
		for i, n := range owners {
			load[n]++
			addrs[i] = r.nodes[n]
		}
		sort.Strings(addrs)
		out[set] = addrs
	}
	return out
}

// Owners returns one set's owner list without materializing the full
// assignment — but note it ignores the bounded-loads discipline (which
// needs the whole catalog) and is therefore only a hint, suitable for
// diagnostics. Authoritative placement always goes through Assign.
func (r *Ring) Owners(set string, rf int) []string {
	m := r.Assign([]string{set}, rf, 0)
	return m[set]
}

package hypergraph

import (
	"testing"

	"repro/internal/rng"
)

func TestRandomShape(t *testing.T) {
	src := rng.New(1)
	g := Random(100, 30, 3, src)
	if len(g.Edges) != 30 {
		t.Fatalf("edges = %d", len(g.Edges))
	}
	for _, e := range g.Edges {
		if len(e) != 3 {
			t.Fatalf("edge size %d", len(e))
		}
		seen := map[int]bool{}
		for _, v := range e {
			if v < 0 || v >= 100 || seen[v] {
				t.Fatalf("bad edge %v", e)
			}
			seen[v] = true
		}
	}
}

func TestRandomPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("m < q accepted")
		}
	}()
	Random(2, 1, 3, rng.New(1))
}

func TestSparsePeelsCompletely(t *testing.T) {
	// c = 1/18 < 1/(q(q−1)) = 1/6 for q=3: peeling must almost always
	// complete.
	src := rng.New(2)
	const m = 900
	complete := 0
	for trial := 0; trial < 30; trial++ {
		g := Random(m, m/18, 3, src)
		st := g.PeelWithError(src, BFS)
		if st.Complete {
			complete++
		}
	}
	if complete < 28 {
		t.Errorf("only %d/30 sparse graphs peeled completely", complete)
	}
}

func TestDensePeelingStalls(t *testing.T) {
	// c = 1.2 is far above the q=3 threshold (~0.818): 2-cores are
	// essentially certain.
	src := rng.New(3)
	const m = 600
	stalled := 0
	for trial := 0; trial < 10; trial++ {
		g := Random(m, m*12/10, 3, src)
		st := g.PeelWithError(src, BFS)
		if !st.Complete {
			stalled++
		}
	}
	if stalled < 9 {
		t.Errorf("only %d/10 dense graphs stalled", stalled)
	}
}

// TestLemma310ErrorSumConstant is the E3 invariant in miniature: below
// the tree/unicyclic density the mean error sum is O(1) and does not
// grow with m.
func TestLemma310ErrorSumConstant(t *testing.T) {
	mean := func(m int) float64 {
		src := rng.New(uint64(m))
		var sum float64
		const trials = 400
		for i := 0; i < trials; i++ {
			g := Random(m, m/12, 3, src) // c = 1/12 < 1/6
			st := g.PeelWithError(src, BFS)
			sum += st.ErrorSum
		}
		return sum / trials
	}
	small := mean(300)
	big := mean(3000)
	if big > 3*small+1 {
		t.Errorf("error sum grew with m: m=300 → %v, m=3000 → %v", small, big)
	}
	if small > 5 {
		t.Errorf("error sum %v not O(1) at c=1/12", small)
	}
}

func TestTwoCoreMatchesCompleteness(t *testing.T) {
	src := rng.New(5)
	for trial := 0; trial < 20; trial++ {
		g := Random(200, 100, 3, src)
		core := g.TwoCoreEdges()
		st := g.PeelWithError(src, BFS)
		if (core == 0) != st.Complete {
			t.Fatalf("2-core %d edges but Complete=%v", core, st.Complete)
		}
	}
}

func TestComponentKindsSparse(t *testing.T) {
	// Lemma B.3: below 1/(q(q−1)) components are trees or unicyclic whp.
	src := rng.New(7)
	badRuns := 0
	for trial := 0; trial < 20; trial++ {
		g := Random(1200, 100, 3, src) // c = 1/12
		_, _, complex := g.ComponentKinds()
		if complex > 0 {
			badRuns++
		}
	}
	if badRuns > 4 {
		t.Errorf("complex components in %d/20 sparse graphs", badRuns)
	}
}

func TestRoundsGrowSlowly(t *testing.T) {
	// Lemma B.4: BFS peeling finishes in O(log log n) rounds; verify the
	// round count stays tiny even for large m.
	src := rng.New(9)
	g := Random(20000, 20000/12, 3, src)
	st := g.PeelWithError(src, BFS)
	if !st.Complete {
		t.Skip("rare stall; not the property under test")
	}
	if st.Rounds > 30 {
		t.Errorf("BFS peeling took %d rounds on m=20000", st.Rounds)
	}
}

func TestLIFOAlsoPeels(t *testing.T) {
	src := rng.New(11)
	g := Random(600, 50, 3, src)
	st := g.PeelWithError(src, LIFO)
	if !st.Complete {
		t.Error("LIFO failed to peel a sparse graph")
	}
}

// Package hypergraph simulates the random-hypergraph model the paper
// uses to analyze RIBLT peeling (§3, Appendix B). An RIBLT with m cells
// and cm keys of q cells each is the random q-uniform hypergraph
// G^q_{m,cm}: cells are vertices, keys are hyperedges. Peeling removes a
// vertex of degree one together with its hyperedge; decoding succeeds iff
// peeling empties the graph (empty 2-core).
//
// The error-propagation experiment of Lemma 3.10 (illustrated by the
// paper's Figure 1) runs here in its pure form: one random vertex starts
// with a unit error; whenever a vertex v is peeled, its error count C_v
// is added to every other vertex of its hyperedge. The lemma claims that
// for c < 1/(q(q−1)) the expected final sum Σ C_v over peeled vertices is
// O(1), independent of m — experiment E3 reproduces that, and shows the
// sum blowing up once c crosses the tree/unicyclic threshold.
package hypergraph

import (
	"fmt"

	"repro/internal/rng"
)

// Graph is a q-uniform hypergraph on m vertices.
type Graph struct {
	M     int
	Q     int
	Edges [][]int // each edge lists q distinct vertices
	adj   [][]int // vertex -> incident edge indices
}

// Random draws G^q_{m,em}: e hyperedges, each q distinct vertices chosen
// uniformly (vertices within an edge are distinct, matching the
// partitioned IBLT layout and the paper's uniform model).
func Random(m, e, q int, src *rng.Source) *Graph {
	if q < 2 || m < q {
		panic(fmt.Sprintf("hypergraph: need m >= q >= 2, got m=%d q=%d", m, q))
	}
	g := &Graph{M: m, Q: q, Edges: make([][]int, e), adj: make([][]int, m)}
	for i := range g.Edges {
		edge := make([]int, 0, q)
		seen := map[int]bool{}
		for len(edge) < q {
			v := src.Intn(m)
			if !seen[v] {
				seen[v] = true
				edge = append(edge, v)
			}
		}
		g.Edges[i] = edge
		for _, v := range edge {
			g.adj[v] = append(g.adj[v], i)
		}
	}
	return g
}

// PeelOrder selects the traversal discipline.
type PeelOrder int

const (
	// BFS is the paper's breadth-first, first-come first-served order.
	BFS PeelOrder = iota
	// LIFO is the ablation order.
	LIFO
)

// PeelStats reports one peeling run.
type PeelStats struct {
	// Peeled counts removed hyperedges; equal to len(Edges) iff the
	// 2-core is empty.
	Peeled int
	// Complete is true when every edge was peeled (decode succeeds).
	Complete bool
	// ErrorSum is Σ C_v over peeled vertices given a single random
	// initial unit error (the Lemma 3.10 quantity).
	ErrorSum float64
	// Touched counts peeled vertices with nonzero error (how many
	// extracted values the error reached, the Figure 1 count).
	Touched int
	// Rounds is the number of parallel peeling rounds (Lemma B.4's
	// log log n + O(1) quantity) — the BFS depth.
	Rounds int
}

// PeelWithError runs the peeling process with error propagation. The
// initial unit error is placed on a uniformly random vertex drawn from
// src. The graph structure itself is not mutated (all bookkeeping is
// local), so the same Graph can be peeled repeatedly.
func (g *Graph) PeelWithError(src *rng.Source, order PeelOrder) PeelStats {
	deg := make([]int, g.M)
	for v := range g.adj {
		deg[v] = len(g.adj[v])
	}
	removedEdge := make([]bool, len(g.Edges))
	errCount := make([]float64, g.M)
	errCount[src.Intn(g.M)] = 1

	type item struct{ v, round int }
	queue := make([]item, 0, g.M)
	inQueue := make([]bool, g.M)
	for v := 0; v < g.M; v++ {
		if deg[v] == 1 {
			queue = append(queue, item{v, 1})
			inQueue[v] = true
		}
	}
	var st PeelStats
	for len(queue) > 0 {
		var it item
		if order == LIFO {
			it = queue[len(queue)-1]
			queue = queue[:len(queue)-1]
		} else {
			it = queue[0]
			queue = queue[1:]
		}
		v := it.v
		inQueue[v] = false
		if deg[v] != 1 {
			continue // stale
		}
		// Find v's single live edge.
		var live = -1
		for _, ei := range g.adj[v] {
			if !removedEdge[ei] {
				live = ei
				break
			}
		}
		if live == -1 {
			continue
		}
		// Peel: record v's error, propagate to the edge's other
		// vertices, remove the edge.
		st.Peeled++
		st.ErrorSum += errCount[v]
		if errCount[v] != 0 {
			st.Touched++
		}
		if it.round > st.Rounds {
			st.Rounds = it.round
		}
		removedEdge[live] = true
		for _, u := range g.Edges[live] {
			deg[u]--
			if u == v {
				continue
			}
			errCount[u] += errCount[v]
			if deg[u] == 1 && !inQueue[u] {
				queue = append(queue, item{u, it.round + 1})
				inQueue[u] = true
			}
		}
	}
	st.Complete = st.Peeled == len(g.Edges)
	return st
}

// TwoCoreEdges returns the number of edges remaining after peeling a
// *copy* of the degree structure (without error bookkeeping) — the size
// of the 2-core.
func (g *Graph) TwoCoreEdges() int {
	deg := make([]int, g.M)
	for v := range g.adj {
		deg[v] = len(g.adj[v])
	}
	removed := make([]bool, len(g.Edges))
	queue := []int{}
	for v := 0; v < g.M; v++ {
		if deg[v] == 1 {
			queue = append(queue, v)
		}
	}
	peeled := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if deg[v] != 1 {
			continue
		}
		live := -1
		for _, ei := range g.adj[v] {
			if !removed[ei] {
				live = ei
				break
			}
		}
		if live == -1 {
			continue
		}
		removed[live] = true
		peeled++
		for _, u := range g.Edges[live] {
			deg[u]--
			if deg[u] == 1 {
				queue = append(queue, u)
			}
		}
	}
	return len(g.Edges) - peeled
}

// ComponentKinds classifies connected components, returning counts of
// trees, unicyclic components, and components with ≥ 2 independent
// cycles. Lemma B.3: for c < 1/(q(q−1)) all components are trees or
// unicyclic whp. A component on nv vertices with ne q-ary edges is a
// (hyper)tree when ne·(q−1) = nv − 1, unicyclic when ne·(q−1) = nv.
func (g *Graph) ComponentKinds() (trees, unicyclic, complex int) {
	parent := make([]int, g.M)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for _, e := range g.Edges {
		for i := 1; i < len(e); i++ {
			union(e[0], e[i])
		}
	}
	nv := map[int]int{}
	ne := map[int]int{}
	for v := 0; v < g.M; v++ {
		nv[find(v)]++
	}
	for _, e := range g.Edges {
		ne[find(e[0])]++
	}
	for root, edges := range ne {
		excess := edges*(g.Q-1) - nv[root]
		switch {
		case excess == -1:
			trees++
		case excess == 0:
			unicyclic++
		default:
			complex++
		}
	}
	// Isolated vertices are trivial trees; exclude them from counts (no
	// edges, no effect on peeling).
	return trees, unicyclic, complex
}

package gap

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/metric"
	"repro/internal/rng"
	"repro/internal/transport"
)

// TestKeyerPayloadsMatchProtocol: cached payloads equal the keys the
// protocol computes internally, one by one and in batch.
func TestKeyerPayloadsMatchProtocol(t *testing.T) {
	p := Params{Space: metric.HammingCube(64), N: 16, R1: 2, R2: 16, Seed: 4}
	ky, err := NewKeyer(p)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := newPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(8)
	var pts metric.PointSet
	for i := 0; i < 10; i++ {
		pt := make(metric.Point, 64)
		for j := range pt {
			pt[j] = int32(src.Uint64() % 2)
		}
		pts = append(pts, pt)
	}
	batch := ky.Payloads(pts)
	keys := pl.keyBatch(pts)
	for i, pt := range pts {
		want := encodeKey(keys[i], pl.params.EntryBits)
		if !bytes.Equal(ky.Payload(pt), want) {
			t.Fatalf("point %d: single payload differs from protocol key", i)
		}
		if !bytes.Equal(batch[i], want) {
			t.Fatalf("point %d: batch payload differs from protocol key", i)
		}
	}
}

// TestKeyerRunAliceMatchesRunAlice: a session served from cached
// payloads is indistinguishable from one that recomputes keys.
func TestKeyerRunAliceMatchesRunAlice(t *testing.T) {
	p := Params{Space: metric.HammingCube(128), N: 20, R1: 4, R2: 48, Seed: 11}
	inst := func() (metric.PointSet, metric.PointSet) {
		src := rng.New(33)
		var sa, sb metric.PointSet
		for i := 0; i < 16; i++ {
			pt := make(metric.Point, 128)
			for j := range pt {
				pt[j] = int32(src.Uint64() % 2)
			}
			sa = append(sa, pt)
			sb = append(sb, pt.Clone())
		}
		// One far Alice-only point.
		far := make(metric.Point, 128)
		for j := range far {
			far[j] = 1
		}
		sa = append(sa, far)
		return sa, sb
	}

	run := func(alice func(conn transport.Conn, sa metric.PointSet) (AliceReport, error)) (AliceReport, Result) {
		sa, sb := inst()
		aConn, bConn := transport.NewPipe()
		var (
			wg   sync.WaitGroup
			bRes Result
			bErr error
		)
		wg.Add(1)
		go func() {
			defer wg.Done()
			bRes, bErr = RunBob(p, bConn, sb)
			bConn.Close()
		}()
		aRep, aErr := alice(aConn, sa)
		aConn.Close()
		wg.Wait()
		if aErr != nil || bErr != nil {
			t.Fatalf("alice err %v, bob err %v", aErr, bErr)
		}
		return aRep, bRes
	}

	fresh, freshBob := run(func(conn transport.Conn, sa metric.PointSet) (AliceReport, error) {
		return RunAlice(p, conn, sa)
	})
	ky, err := NewKeyer(p)
	if err != nil {
		t.Fatal(err)
	}
	cached, cachedBob := run(func(conn transport.Conn, sa metric.PointSet) (AliceReport, error) {
		return ky.RunAlice(conn, sa, ky.Payloads(sa))
	})
	if fresh.FarKeys != cached.FarKeys || len(fresh.TA) != len(cached.TA) {
		t.Fatalf("cached serving diverges: far %d/%d, |TA| %d/%d",
			fresh.FarKeys, cached.FarKeys, len(fresh.TA), len(cached.TA))
	}
	if len(freshBob.SPrime) != len(cachedBob.SPrime) {
		t.Fatalf("bob outcome diverges: |S'| %d/%d", len(freshBob.SPrime), len(cachedBob.SPrime))
	}
}

// TestKeyerRunAliceValidates: misaligned payload caches are rejected.
func TestKeyerRunAliceValidates(t *testing.T) {
	p := Params{Space: metric.HammingCube(32), N: 4, R1: 2, R2: 12, Seed: 2}
	ky, err := NewKeyer(p)
	if err != nil {
		t.Fatal(err)
	}
	aConn, _ := transport.NewPipe()
	sa := metric.PointSet{make(metric.Point, 32)}
	if _, err := ky.RunAlice(aConn, sa, nil); err == nil {
		t.Fatal("payload/element count mismatch accepted")
	}
}

// Package gap implements the paper's Gap Guarantee protocol (§4): after
// reconciliation Bob holds S′B = SB ∪ TA where TA ⊆ SA contains every
// point of Alice's that is at least r2 from all of Bob's points, so every
// point in SA ∪ SB has a neighbor within r2 in S′B (Definition 4.1).
//
// The protocol (§4.1): each party derives for each of its elements a key —
// a vector of h = Θ(log n) entries, each entry a pairwise-independent hash
// of a batch of m = log_{p2}(1/2) LSH values. Close elements (≤ r1)
// produce keys agreeing in almost all entries; far elements (≥ r2) agree
// in about half whp. The parties reconcile the multisets of keys through
// the sets-of-sets substrate ([22], package setsets); Alice then sends
// every element whose key matches no key of Bob's in at least
// h·(1/2 + ε/6) entries, where ε = 1 − ρ.
//
// Theorem 4.5's low-dimension variant uses the one-sided grid family
// (p2 = 0): keys shrink to h = Θ(log n / log(1/ρ̂)) entries and a single
// matching entry certifies closeness.
package gap

import (
	"fmt"
	"math"

	"repro/internal/hashx"
	"repro/internal/lsh"
	"repro/internal/metric"
	"repro/internal/rng"
	"repro/internal/setsets"
	"repro/internal/transport"
)

// Params configures a Gap Guarantee run.
type Params struct {
	Space metric.Space
	// N is an upper bound on |SA| and |SB|.
	N int
	// R1 and R2 are the gap radii: points within R1 of the other party
	// are "close", points beyond R2 "far" (R1 < R2).
	R1, R2 float64
	// HFactor scales the key length h = HFactor·ceil(log2(N+2));
	// default 6. The constant inside Θ(log n) — larger sharpens the
	// Chernoff separation at linear cost in communication.
	HFactor int
	// EntryBits is the width of one key entry (Θ(log n) in the paper;
	// default 2·ceil(log2(N+2))+6, capped at 40).
	EntryBits uint
	// Seed is the shared public-coin seed.
	Seed uint64
	// SetSets forwards tuning to the substrate (zero values = defaults).
	SetSets setsets.Params
	// Workers shards key construction (h·m LSH evaluations per element)
	// across goroutines: 0 means GOMAXPROCS, 1 forces the sequential
	// path. Purely local — key vectors are positionally deterministic —
	// so it is not part of the parameter digest.
	Workers int
}

// ApplyDefaults fills zero fields with the documented defaults, so a
// zero-value and an explicitly defaulted configuration behave — and
// digest — identically.
func (p *Params) ApplyDefaults() {
	if p.HFactor == 0 {
		p.HFactor = 6
	}
	if p.EntryBits == 0 {
		b := 2*uint(math.Ceil(math.Log2(float64(p.N)+2))) + 6
		if b > 40 {
			b = 40
		}
		p.EntryBits = b
	}
}

// Validate reports an error for unusable parameters.
func (p *Params) Validate() error {
	if err := p.Space.Validate(); err != nil {
		return err
	}
	if p.N < 1 {
		return fmt.Errorf("gap: N = %d", p.N)
	}
	if !(0 < p.R1 && p.R1 < p.R2) {
		return fmt.Errorf("gap: need 0 < r1 < r2, got r1=%v r2=%v", p.R1, p.R2)
	}
	return nil
}

// derive picks the LSH family and its (r1, r2, p1, p2) guarantee for the
// space, following Corollary 4.3 (Hamming, bit/coordinate sampling) and
// Corollary 4.4 (ℓ1, randomly shifted grid with p2 pinned near 1/2).
func (p *Params) derive() (lsh.Family, lsh.Params, error) {
	switch p.Space.Norm {
	case metric.Hamming:
		if p.R2 > float64(p.Space.Dim)/2 {
			return nil, lsh.Params{}, fmt.Errorf(
				"gap: coordinate sampling needs r2 <= d/2 for p2 >= 1/2 (r2=%v, d=%d)",
				p.R2, p.Space.Dim)
		}
		prm := lsh.HammingParams(p.Space, p.R1, p.R2)
		return lsh.NewCoordSampling(p.Space, float64(p.Space.Dim)), prm, nil
	case metric.L1:
		// Grid width w = r2/ln 2 puts p2 = e^(−r2/w) at exactly 1/2.
		w := p.R2 / math.Ln2
		prm := lsh.GridL1Params(p.Space, p.R1, p.R2, w)
		return lsh.NewGridL1(p.Space, w), prm, nil
	default:
		return nil, lsh.Params{}, fmt.Errorf(
			"gap: general protocol supports Hamming and ℓ1 (got %v); use ReconcileOneSided for ℓ2",
			p.Space.Norm)
	}
}

// Result reports a protocol run.
type Result struct {
	// SPrime is Bob's final set SB ∪ TA.
	SPrime metric.PointSet
	// TA holds the elements Alice transmitted.
	TA metric.PointSet
	// Stats is the exact communication tally; Rounds counts messages.
	Stats transport.Stats
	// FarKeys is the number of Alice's distinct keys classified far.
	FarKeys int
	// Threshold and H record the derived match threshold and key length.
	Threshold, H int
	// Rho is the LSH quality parameter actually achieved.
	Rho float64
}

// keyOf builds one element's key: h entries, each a pairwise hash of m
// LSH values.
type keyer struct {
	h, m    int
	funcs   []lsh.Func // h·m functions, batch-major
	entryKH []hashx.KeyHasher
	bits    uint
}

func newKeyer(family lsh.Family, h, m int, bits uint, src *rng.Source) *keyer {
	funcs := make([]lsh.Func, h*m)
	for i := range funcs {
		funcs[i] = family.Draw(src)
	}
	khs := make([]hashx.KeyHasher, h)
	for j := range khs {
		khs[j] = hashx.NewKeyHasher(src, bits)
	}
	return &keyer{h: h, m: m, funcs: funcs, entryKH: khs, bits: bits}
}

func (k *keyer) key(p metric.Point) []uint64 {
	out := make([]uint64, k.h)
	batch := make([]uint64, k.m)
	for j := 0; j < k.h; j++ {
		for i := 0; i < k.m; i++ {
			batch[i] = k.funcs[j*k.m+i].Hash(p)
		}
		out[j] = k.entryKH[j].Hash(batch)
	}
	return out
}

// encodeKey serializes a key as h fixed-width entries.
func encodeKey(key []uint64, bits uint) []byte {
	e := transport.NewEncoder()
	for _, v := range key {
		e.WriteBits(v, bits)
	}
	// Use the encoder purely as a bit packer.
	data, _ := e.Pack()
	return data
}

func decodeKey(payload []byte, h int, bits uint) []uint64 {
	d := transport.NewDecoder(payload)
	out := make([]uint64, h)
	for j := range out {
		v, err := d.ReadBits(bits)
		if err != nil {
			// Payload sizes are fixed by construction; a short read is
			// a protocol bug, not an input condition.
			panic(fmt.Sprintf("gap: short key payload: %v", err))
		}
		out[j] = v
	}
	return out
}

// matches counts equal entries between two keys.
func matches(a, b []uint64) int {
	n := 0
	for i := range a {
		if a[i] == b[i] {
			n++
		}
	}
	return n
}

// plan bundles the seed-derived state both parties compute identically
// for one protocol variant (public coins made concrete).
type plan struct {
	params    Params
	ky        *keyer
	threshold int
	h         int
	rho       float64
	ssSeed    uint64
}

// newPlan derives the general (Theorem 4.2) plan.
func newPlan(p Params) (*plan, error) {
	p.ApplyDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	family, prm, err := p.derive()
	if err != nil {
		return nil, err
	}
	if err := prm.Validate(); err != nil {
		return nil, err
	}
	rho := prm.Rho()
	if rho >= 1 {
		return nil, fmt.Errorf("gap: rho = %v >= 1; widen the gap r2/r1", rho)
	}
	eps := 1 - rho
	// m = log_{p2}(1/2), at least 1.
	m := int(math.Ceil(math.Log(0.5) / math.Log(prm.P2)))
	if m < 1 {
		m = 1
	}
	h := p.HFactor * int(math.Ceil(math.Log2(float64(p.N)+2)))
	threshold := int(math.Ceil(float64(h) * (0.5 + eps/6)))
	src := rng.New(p.Seed)
	return &plan{
		params:    p,
		ky:        newKeyer(family, h, m, p.EntryBits, src.Split()),
		threshold: threshold,
		h:         h,
		rho:       rho,
		ssSeed:    src.Uint64(),
	}, nil
}

// newOneSidedPlan derives the Theorem 4.5 plan.
func newOneSidedPlan(p Params, pExp float64) (*plan, error) {
	p.ApplyDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := lsh.NewOneSidedGrid(p.Space, p.R1, p.R2, pExp)
	if g.RhoHat >= 1 {
		return nil, fmt.Errorf("gap: rho-hat = %v >= 1; Theorem 4.5 needs r2 > r1·d", g.RhoHat)
	}
	// h = Θ(log n / log(1/ρ̂)); the leading constant mirrors HFactor.
	denom := math.Log(1 / g.RhoHat)
	h := int(math.Ceil(float64(p.HFactor) * math.Log(float64(p.N)+2) / denom))
	if h < 1 {
		h = 1
	}
	src := rng.New(p.Seed)
	return &plan{
		params:    p,
		ky:        newKeyer(g, h, 1, p.EntryBits, src.Split()),
		threshold: 1, // one matching entry certifies closeness (p2 = 0)
		h:         h,
		rho:       g.RhoHat,
		ssSeed:    src.Uint64(),
	}, nil
}

// isClose reports whether an Alice key matches some Bob key in at least
// threshold entries.
func (pl *plan) isClose(aKey []uint64, bobKeys [][]uint64) bool {
	for _, bk := range bobKeys {
		if matches(aKey, bk) >= pl.threshold {
			return true
		}
	}
	return false
}

func (pl *plan) setsetsParams() setsets.Params {
	ss := pl.params.SetSets
	ss.PayloadBytes = (pl.h*int(pl.params.EntryBits) + 7) / 8
	ss.Seed = pl.ssSeed
	return ss
}

// AliceReport is what Alice's side of the protocol learns.
type AliceReport struct {
	// TA holds the elements she transmitted (far keys' elements).
	TA metric.PointSet
	// FarKeys is the number of distinct keys classified far.
	FarKeys int
}

// runAlice executes Alice's side: key construction, sets-of-sets (she is
// the setsets Alice), far-key classification, and the element round.
func runAlice(pl *plan, conn transport.Conn, sa metric.PointSet) (AliceReport, error) {
	if len(sa) > pl.params.N {
		return AliceReport{}, fmt.Errorf("gap: |SA|=%d exceeds N=%d", len(sa), pl.params.N)
	}
	aliceKeys := pl.keyBatch(sa)
	return runAliceKeyed(pl, conn, sa, aliceKeys)
}

// runAliceKeyed is runAlice past key construction, for callers that
// maintain per-element keys incrementally (live sets): the h·m LSH
// evaluations per element — the dominant cost of Alice's side — are
// skipped.
func runAliceKeyed(pl *plan, conn transport.Conn, sa metric.PointSet, aliceKeys [][]uint64) (AliceReport, error) {
	p := pl.params
	aliceChildren := make([]setsets.Child, len(sa))
	for i := range sa {
		aliceChildren[i] = setsets.Child{Payload: encodeKey(aliceKeys[i], p.EntryBits)}
	}

	rec, err := setsets.RunAlice(pl.setsetsParams(), conn, aliceChildren)
	if err != nil {
		return AliceReport{}, fmt.Errorf("gap: key reconciliation: %w", err)
	}

	// Reconstruct Bob's multiset: her keys, minus her unmatched ones,
	// plus Bob's unmatched ones. For classification only distinct keys
	// matter.
	aliceOnlyCount := map[string]int{}
	for _, c := range rec.AliceOnly {
		aliceOnlyCount[string(c.Payload)]++
	}
	sharedKeys := map[string]bool{}
	for _, c := range aliceChildren {
		s := string(c.Payload)
		if aliceOnlyCount[s] > 0 {
			aliceOnlyCount[s]--
			continue
		}
		sharedKeys[s] = true
	}
	bobKeySet := map[string]bool{}
	for s := range sharedKeys {
		bobKeySet[s] = true
	}
	for _, c := range rec.BobOnly {
		bobKeySet[string(c.Payload)] = true
	}
	bobKeys := make([][]uint64, 0, len(bobKeySet))
	for s := range bobKeySet {
		bobKeys = append(bobKeys, decodeKey([]byte(s), pl.h, p.EntryBits))
	}

	// Classify Alice's distinct keys; collect elements of far keys.
	farKeyCache := map[string]bool{}
	var ta metric.PointSet
	farKeys := 0
	for i := range sa {
		s := string(aliceChildren[i].Payload)
		far, seen := farKeyCache[s]
		if !seen {
			if bobKeySet[s] {
				far = false // identical key exists on Bob's side
			} else {
				far = !pl.isClose(aliceKeys[i], bobKeys)
			}
			farKeyCache[s] = far
			if far {
				farKeys++
			}
		}
		if far {
			ta = append(ta, sa[i])
		}
	}

	// Final round: transmit the far elements.
	e := transport.NewEncoder()
	e.WriteUvarint(uint64(len(ta)))
	cb := uint(p.Space.BitsPerCoordinate())
	for _, pt := range ta {
		for _, c := range pt {
			e.WriteBits(uint64(c), cb)
		}
	}
	if err := conn.Send(e); err != nil {
		return AliceReport{}, err
	}
	return AliceReport{TA: ta, FarKeys: farKeys}, nil
}

// runBob executes Bob's side: key construction, sets-of-sets (he is the
// setsets Bob), then receive the far elements and union them in.
func runBob(pl *plan, conn transport.Conn, sb metric.PointSet) (Result, error) {
	p := pl.params
	if len(sb) > p.N {
		return Result{}, fmt.Errorf("gap: |SB|=%d exceeds N=%d", len(sb), p.N)
	}
	bobKeys := pl.keyBatch(sb)
	bobChildren := make([]setsets.Child, len(sb))
	for i := range sb {
		bobChildren[i] = setsets.Child{Payload: encodeKey(bobKeys[i], p.EntryBits)}
	}
	if err := setsets.RunBob(pl.setsetsParams(), conn, bobChildren); err != nil {
		return Result{}, fmt.Errorf("gap: key reconciliation: %w", err)
	}

	d, err := conn.Recv()
	if err != nil {
		return Result{}, err
	}
	cnt, err := d.ReadUvarint()
	if err != nil {
		return Result{}, err
	}
	if cnt > uint64(p.N) {
		return Result{}, fmt.Errorf("gap: peer claims %d far elements with N=%d", cnt, p.N)
	}
	cb := uint(p.Space.BitsPerCoordinate())
	sPrime := sb.Clone()
	var ta metric.PointSet
	for i := uint64(0); i < cnt; i++ {
		pt := make(metric.Point, p.Space.Dim)
		for j := range pt {
			v, err := d.ReadBits(cb)
			if err != nil {
				return Result{}, err
			}
			pt[j] = int32(v)
		}
		ta = append(ta, pt)
		sPrime = append(sPrime, pt)
	}
	return Result{
		SPrime:    sPrime,
		TA:        ta,
		Threshold: pl.threshold,
		H:         pl.h,
		Rho:       pl.rho,
	}, nil
}

// RunAlice executes Alice's side of the general protocol over conn.
func RunAlice(p Params, conn transport.Conn, sa metric.PointSet) (AliceReport, error) {
	pl, err := newPlan(p)
	if err != nil {
		return AliceReport{}, err
	}
	return runAlice(pl, conn, sa)
}

// RunBob executes Bob's side of the general protocol over conn.
func RunBob(p Params, conn transport.Conn, sb metric.PointSet) (Result, error) {
	pl, err := newPlan(p)
	if err != nil {
		return Result{}, err
	}
	return runBob(pl, conn, sb)
}

// RunAliceOneSided and RunBobOneSided are the Theorem 4.5 counterparts.
func RunAliceOneSided(p Params, pExp float64, conn transport.Conn, sa metric.PointSet) (AliceReport, error) {
	pl, err := newOneSidedPlan(p, pExp)
	if err != nil {
		return AliceReport{}, err
	}
	return runAlice(pl, conn, sa)
}

// RunBobOneSided executes Bob's side of the one-sided variant over conn.
func RunBobOneSided(p Params, pExp float64, conn transport.Conn, sb metric.PointSet) (Result, error) {
	pl, err := newOneSidedPlan(p, pExp)
	if err != nil {
		return Result{}, err
	}
	return runBob(pl, conn, sb)
}

// reconcile drives both parties in-process over a pipe.
func reconcile(pl *plan, sa, sb metric.PointSet) (Result, error) {
	aConn, bConn := transport.NewPipe()
	type bobOut struct {
		res Result
		err error
	}
	done := make(chan bobOut, 1)
	go func() {
		res, err := runBob(pl, bConn, sb)
		// Closing Bob's end unblocks Alice if he failed before she
		// finished receiving.
		bConn.Close()
		done <- bobOut{res, err}
	}()
	aRep, aErr := runAlice(pl, aConn, sa)
	// Closing Alice's end unblocks Bob if she failed before sending.
	aConn.Close()
	b := <-done
	if aErr != nil {
		return Result{}, aErr
	}
	if b.err != nil {
		return Result{}, b.err
	}
	res := b.res
	res.FarKeys = aRep.FarKeys
	res.Stats = aConn.Stats()
	return res, nil
}

// Reconcile runs the full 4-round general protocol (Theorem 4.2)
// in-process: Alice and Bob execute as concurrent parties over a counted
// pipe.
func Reconcile(p Params, sa, sb metric.PointSet) (Result, error) {
	pl, err := newPlan(p)
	if err != nil {
		return Result{}, err
	}
	return reconcile(pl, sa, sb)
}

// ReconcileOneSided runs the Theorem 4.5 variant for ([∆]^d, ℓp): the
// one-sided grid family has p2 = 0, so keys shrink to
// h = Θ(log n / log(1/ρ̂)) single-function entries and one matching entry
// certifies closeness (≤ r2). pExp is the norm exponent (1 for ℓ1, 2 for
// ℓ2).
func ReconcileOneSided(p Params, pExp float64, sa, sb metric.PointSet) (Result, error) {
	pl, err := newOneSidedPlan(p, pExp)
	if err != nil {
		return Result{}, err
	}
	return reconcile(pl, sa, sb)
}

// NaiveBits returns the trivial protocol's cost (Alice sends everything):
// n·log|U| bits.
func NaiveBits(space metric.Space, n int) int64 {
	return int64(n) * int64(space.BitsPerPoint())
}

package gap

import (
	"repro/internal/metric"
	"repro/internal/parallel"
)

// keyBatch computes every element's key, sharding the h·m LSH
// evaluations across workers by point block. out[i] is element i's key,
// so the output — and everything derived from it, including the setsets
// children that go on the wire — is identical for any worker count. The
// keyer's drawn functions and entry hashers are immutable after plan
// construction, so concurrent evaluation is safe.
func (pl *plan) keyBatch(pts metric.PointSet) [][]uint64 {
	const minBlock = 8
	out := make([][]uint64, len(pts))
	w := parallel.Workers(pl.params.Workers, len(pts), minBlock)
	if w == 1 {
		for i, p := range pts {
			out[i] = pl.ky.key(p)
		}
		return out
	}
	parallel.Shard(len(pts), w, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = pl.ky.key(pts[i])
		}
	})
	return out
}

package gap

import (
	"testing"

	"repro/internal/metric"
	"repro/internal/workload"
)

// TestKeyBatchGolden asserts sharded key construction produces exactly
// the sequential keys, in the same positions, for any worker count —
// the setsets children built from them must hit the wire unchanged.
func TestKeyBatchGolden(t *testing.T) {
	space := metric.HammingCube(256)
	inst, err := workload.NewGapInstance(space, 48, 3, 1, 8, 64, 21)
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Space: space, N: 52, R1: 8, R2: 64, Seed: 9}
	mk := func(workers int) [][]uint64 {
		pw := p
		pw.Workers = workers
		pl, err := newPlan(pw)
		if err != nil {
			t.Fatal(err)
		}
		return pl.keyBatch(inst.SA)
	}
	seq := mk(1)
	for _, workers := range []int{0, 2, 7} {
		got := mk(workers)
		if len(got) != len(seq) {
			t.Fatalf("workers=%d: %d keys, want %d", workers, len(got), len(seq))
		}
		for i := range seq {
			if len(got[i]) != len(seq[i]) {
				t.Fatalf("workers=%d: key %d length differs", workers, i)
			}
			for j := range seq[i] {
				if got[i][j] != seq[i][j] {
					t.Fatalf("workers=%d: key %d entry %d differs", workers, i, j)
				}
			}
		}
	}
}

package gap

import (
	"testing"

	"repro/internal/metric"
	"repro/internal/rng"
	"repro/internal/workload"
)

func TestParamsValidate(t *testing.T) {
	good := Params{Space: metric.HammingCube(256), N: 10, R1: 2, R2: 32}
	good.ApplyDefaults()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []Params{
		{Space: metric.HammingCube(256), N: 0, R1: 2, R2: 32},
		{Space: metric.HammingCube(256), N: 10, R1: 32, R2: 2},
		{Space: metric.HammingCube(256), N: 10, R1: 0, R2: 2},
		{Space: metric.Space{}, N: 10, R1: 1, R2: 2},
	}
	for i, p := range bad {
		p.ApplyDefaults()
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestDeriveRejectsTightHamming(t *testing.T) {
	// r2 > d/2 breaks the p2 >= 1/2 assumption of §4.1.
	p := Params{Space: metric.HammingCube(64), N: 10, R1: 2, R2: 40}
	p.ApplyDefaults()
	if _, _, err := p.derive(); err == nil {
		t.Error("r2 > d/2 accepted for coordinate sampling")
	}
}

func TestDeriveRejectsL2(t *testing.T) {
	p := Params{Space: metric.Grid(100, 3, metric.L2), N: 10, R1: 1, R2: 50}
	p.ApplyDefaults()
	if _, _, err := p.derive(); err == nil {
		t.Error("general protocol accepted ℓ2 (should direct to one-sided)")
	}
}

// TestGapGuaranteeHamming is the core Definition 4.1 check: every planted
// far point must arrive at Bob, so every point of SA ends within r2 of
// S′B.
func TestGapGuaranteeHamming(t *testing.T) {
	space := metric.HammingCube(512)
	const n, k = 60, 5
	for trial := 0; trial < 5; trial++ {
		inst, err := workload.NewGapInstance(space, n, k, 2, 8, 128, uint64(trial)+1)
		if err != nil {
			t.Fatal(err)
		}
		p := Params{Space: space, N: n + k, R1: inst.R1, R2: inst.R2, Seed: uint64(trial) + 100}
		res, err := Reconcile(p, inst.SA, inst.SB)
		if err != nil {
			t.Fatal(err)
		}
		// The guarantee: ∀a ∈ SA ∃b ∈ S′B with f(a,b) ≤ r2.
		for _, a := range inst.SA {
			if d, _ := res.SPrime.MinDistanceTo(space, a); d > inst.R2 {
				t.Errorf("trial %d: point %v left uncovered at distance %v", trial, a, d)
			}
		}
		// All planted far points must literally be in S′B.
		for _, f := range inst.Far {
			found := false
			for _, sp := range res.SPrime {
				if sp.Equal(f) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("trial %d: planted far point %v not transferred", trial, f)
			}
		}
	}
}

// TestGapDoesNotFloodCloseElements checks the communication side: with a
// comfortable gap, the number of transmitted elements stays near k, not n.
func TestGapDoesNotFloodCloseElements(t *testing.T) {
	space := metric.HammingCube(512)
	const n, k = 80, 4
	inst, err := workload.NewGapInstance(space, n, k, 0, 4, 160, 17)
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Space: space, N: n + k, R1: inst.R1, R2: inst.R2, Seed: 55}
	res, err := Reconcile(p, inst.SA, inst.SB)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TA) > 4*k {
		t.Errorf("transmitted %d elements for k=%d far points", len(res.TA), k)
	}
	if len(res.TA) < k {
		t.Errorf("transmitted %d elements, fewer than k=%d planted", len(res.TA), k)
	}
}

func TestGapL1Grid(t *testing.T) {
	space := metric.Grid(1<<20, 4, metric.L1)
	const n, k = 50, 4
	inst, err := workload.NewGapInstance(space, n, k, 1, 200, 40000, 23)
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Space: space, N: n + k, R1: inst.R1, R2: inst.R2, Seed: 77}
	res, err := Reconcile(p, inst.SA, inst.SB)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range inst.SA {
		if d, _ := res.SPrime.MinDistanceTo(space, a); d > inst.R2 {
			t.Errorf("point %v uncovered at distance %v", a, d)
		}
	}
}

func TestOneSidedL2(t *testing.T) {
	space := metric.Grid(1<<20, 2, metric.L2)
	const n, k = 50, 4
	// Theorem 4.5 needs r2 > r1·d: use r1=50, r2=30000, d=2.
	inst, err := workload.NewGapInstance(space, n, k, 1, 50, 30000, 29)
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Space: space, N: n + k, R1: inst.R1, R2: inst.R2, Seed: 99}
	res, err := ReconcileOneSided(p, 2, inst.SA, inst.SB)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range inst.SA {
		if d, _ := res.SPrime.MinDistanceTo(space, a); d > inst.R2 {
			t.Errorf("point %v uncovered at distance %v", a, d)
		}
	}
	// One-sided: close elements never misclassified far unless all h
	// entries miss, so the transfer stays near k.
	if len(res.TA) > 4*k {
		t.Errorf("one-sided transmitted %d elements for k=%d", len(res.TA), k)
	}
}

func TestOneSidedRejectsTinyGap(t *testing.T) {
	space := metric.Grid(1000, 8, metric.L2)
	p := Params{Space: space, N: 10, R1: 10, R2: 20, Seed: 1} // ρ̂ = 4 > 1
	if _, err := ReconcileOneSided(p, 2, nil, nil); err == nil {
		t.Error("rho-hat >= 1 accepted")
	}
}

func TestRoundsMatchTheorem42(t *testing.T) {
	space := metric.HammingCube(256)
	inst, err := workload.NewGapInstance(space, 30, 2, 0, 4, 64, 31)
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Space: space, N: 32, R1: inst.R1, R2: inst.R2, Seed: 3}
	res, err := Reconcile(p, inst.SA, inst.SB)
	if err != nil {
		t.Fatal(err)
	}
	// 3 rounds of key reconciliation + 1 element round (absent retries).
	if res.Stats.Rounds != 4 {
		t.Errorf("rounds = %d, want 4", res.Stats.Rounds)
	}
}

func TestEmptyAlice(t *testing.T) {
	space := metric.HammingCube(128)
	inst, err := workload.NewGapInstance(space, 20, 0, 0, 4, 32, 37)
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Space: space, N: 20, R1: 4, R2: 32, Seed: 5}
	res, err := Reconcile(p, nil, inst.SB)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TA) != 0 {
		t.Errorf("empty Alice transmitted %d elements", len(res.TA))
	}
	if len(res.SPrime) != len(inst.SB) {
		t.Errorf("|S'B| = %d, want %d", len(res.SPrime), len(inst.SB))
	}
}

func TestSizeBoundEnforced(t *testing.T) {
	space := metric.HammingCube(64)
	p := Params{Space: space, N: 2, R1: 2, R2: 16, Seed: 1}
	sa := workload.RandomSet(space, 5, rngFor(1))
	if _, err := Reconcile(p, sa, nil); err == nil {
		t.Error("oversized set accepted")
	}
}

func TestIdenticalSetsTransferNothing(t *testing.T) {
	space := metric.HammingCube(256)
	sb := workload.RandomSet(space, 40, rngFor(11))
	p := Params{Space: space, N: 40, R1: 4, R2: 64, Seed: 13}
	res, err := Reconcile(p, sb.Clone(), sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TA) != 0 {
		t.Errorf("identical sets transferred %d elements", len(res.TA))
	}
}

func TestMatchesCounting(t *testing.T) {
	a := []uint64{1, 2, 3, 4}
	b := []uint64{1, 9, 3, 9}
	if got := matches(a, b); got != 2 {
		t.Errorf("matches = %d, want 2", got)
	}
}

func TestEncodeDecodeKeyRoundTrip(t *testing.T) {
	key := []uint64{5, 1023, 0, 77}
	payload := encodeKey(key, 10)
	got := decodeKey(payload, 4, 10)
	for i := range key {
		if got[i] != key[i] {
			t.Fatalf("entry %d: %d != %d", i, got[i], key[i])
		}
	}
}

func rngFor(seed uint64) *rng.Source { return rng.New(seed) }

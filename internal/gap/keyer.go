package gap

import (
	"fmt"

	"repro/internal/metric"
	"repro/internal/transport"
)

// Keyer exposes the per-element key construction of the Gap protocol
// for incremental maintenance: each element's key vector depends only
// on the element and the shared public coins, so a live set can compute
// a point's key payload once at insertion and serve any number of
// sessions from the cache. The Keyer is immutable after construction
// and safe for concurrent use.
type Keyer struct {
	pl *plan
}

// NewKeyer derives the shared plan for the general (Theorem 4.2)
// protocol. The params must equal the params every session is run with,
// digest included.
func NewKeyer(p Params) (*Keyer, error) {
	pl, err := newPlan(p)
	if err != nil {
		return nil, err
	}
	return &Keyer{pl: pl}, nil
}

// Payload computes one element's encoded key — the setsets child
// payload that goes on the wire (h·m LSH evaluations plus h pairwise
// hashes, the per-mutation cost of live maintenance).
func (k *Keyer) Payload(pt metric.Point) []byte {
	return encodeKey(k.pl.ky.key(pt), k.pl.params.EntryBits)
}

// Payloads computes every element's payload, sharding the LSH
// evaluation across Params.Workers (the from-scratch path live sets use
// at construction).
func (k *Keyer) Payloads(pts metric.PointSet) [][]byte {
	keys := k.pl.keyBatch(pts)
	out := make([][]byte, len(pts))
	for i := range keys {
		out[i] = encodeKey(keys[i], k.pl.params.EntryBits)
	}
	return out
}

// RunAlice executes Alice's side of the protocol over conn using cached
// payloads (aligned with sa) instead of recomputing keys — the live
// serving path. Payloads must have been produced by this Keyer.
func (k *Keyer) RunAlice(conn transport.Conn, sa metric.PointSet, payloads [][]byte) (AliceReport, error) {
	p := k.pl.params
	if len(sa) != len(payloads) {
		return AliceReport{}, fmt.Errorf("gap: %d elements, %d cached payloads", len(sa), len(payloads))
	}
	if len(sa) > p.N {
		return AliceReport{}, fmt.Errorf("gap: |SA|=%d exceeds N=%d", len(sa), p.N)
	}
	keys := make([][]uint64, len(payloads))
	for i, pay := range payloads {
		keys[i] = decodeKey(pay, k.pl.h, p.EntryBits)
	}
	return runAliceKeyed(k.pl, conn, sa, keys)
}

package simnet

import (
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// serveEcho accepts one connection and echoes everything it reads.
func serveEcho(t *testing.T, l net.Listener) {
	t.Helper()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		io.Copy(c, c) //nolint:errcheck
	}()
}

func TestDialListenEcho(t *testing.T) {
	n := New(1)
	l, err := n.Host("srv").Listen("sim", "srv:1")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	serveEcho(t, l)
	c, err := n.Host("cli").DialTimeout("sim", "srv:1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("hello through the virtual wire")
	var got []byte
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, len(msg))
		_, err := io.ReadFull(c, buf)
		got = buf
		done <- err
	}()
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if string(got) != string(msg) {
		t.Fatalf("echo = %q, want %q", got, msg)
	}
	c.Close()
	if la, ra := c.LocalAddr().String(), c.RemoteAddr().String(); !strings.HasPrefix(la, "cli:") || ra != "srv:1" {
		t.Fatalf("addrs = %s / %s", la, ra)
	}
}

func TestDialRefusedWithoutListener(t *testing.T) {
	n := New(1)
	_, err := n.Host("cli").DialTimeout("sim", "ghost:1", time.Second)
	if err == nil || !strings.Contains(err.Error(), "connection refused") {
		t.Fatalf("err = %v, want connection refused", err)
	}
}

func TestPartitionBlocksAndHeals(t *testing.T) {
	n := New(1)
	l, err := n.Host("b").Listen("sim", "b:1")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	serveEcho(t, l)
	// A live connection across the divide is severed when the partition
	// lands, with the canonical cut error on both ends.
	c, err := n.Host("a").DialTimeout("sim", "b:1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	n.Partition([]string{"a"}, []string{"b"})
	if _, err := c.Write([]byte("x")); err == nil || !strings.Contains(err.Error(), "cut (partition)") {
		t.Fatalf("write on severed conn: %v", err)
	}
	c.Close()
	if _, err := n.Host("a").DialTimeout("sim", "b:1", time.Second); err == nil || !strings.Contains(err.Error(), "partition") {
		t.Fatalf("dial across partition: %v", err)
	}
	// Hosts in the same group still reach each other.
	l2, err := n.Host("a").Listen("sim", "a:1")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	serveEcho(t, l2)
	if c2, err := n.Host("a").DialTimeout("sim", "a:1", time.Second); err != nil {
		t.Fatalf("same-group dial: %v", err)
	} else {
		c2.Close()
	}
	n.Heal()
	c3, err := n.Host("a").DialTimeout("sim", "b:1", time.Second)
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	c3.Close()
}

// TestDropAtOffset verifies the byte-exact cut: the peer receives
// exactly offset bytes, and both endpoints then fail with the same
// canonical error naming the offset.
func TestDropAtOffset(t *testing.T) {
	const offset = 10
	n := New(1)
	l, err := n.Host("srv").Listen("sim", "srv:1")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	type recvResult struct {
		data []byte
		err  error
	}
	recvd := make(chan recvResult, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			recvd <- recvResult{err: err}
			return
		}
		defer c.Close()
		buf := make([]byte, 64)
		total := 0
		for {
			m, err := c.Read(buf[total:])
			total += m
			if err != nil {
				recvd <- recvResult{data: buf[:total], err: err}
				return
			}
		}
	}()
	n.DropAfter("cli", "srv", offset)
	c, err := n.Host("cli").DialTimeout("sim", "srv:1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	wrote, err := c.Write([]byte("0123456789abcdef"))
	if err == nil || !strings.Contains(err.Error(), "cut (drop-at-offset) at byte offset 10") {
		t.Fatalf("write: n=%d err=%v", wrote, err)
	}
	if wrote != offset {
		t.Fatalf("wrote %d bytes, want %d", wrote, offset)
	}
	r := <-recvd
	if string(r.data) != "0123456789" {
		t.Fatalf("peer received %q, want the 10-byte prefix", r.data)
	}
	if r.err == nil || !strings.Contains(r.err.Error(), "cut (drop-at-offset) at byte offset 10") {
		t.Fatalf("peer read error = %v, want canonical cut error", r.err)
	}
	// The fault is one-shot: a fresh connection on the link is clean.
	serveEcho(t, l)
	c2, err := n.Host("cli").DialTimeout("sim", "srv:1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Write([]byte("ok")); err != nil {
		t.Fatalf("write on fresh conn after one-shot drop: %v", err)
	}
}

// TestFlipAtOffset verifies the corruption fault: the connection stays
// up, the receiver sees exactly the armed byte range bitwise-inverted,
// the writer's buffer is untouched, a "flip" event is emitted, and the
// fault is one-shot.
func TestFlipAtOffset(t *testing.T) {
	n := New(1)
	var mu sync.Mutex
	var events []string
	n.OnEvent = func(e Event) {
		mu.Lock()
		events = append(events, e.String())
		mu.Unlock()
	}
	l, err := n.Host("srv").Listen("sim", "srv:1")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	serveEcho(t, l)
	n.FlipAfter("cli", "srv", 8, 4)
	c, err := n.Host("cli").DialTimeout("sim", "srv:1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	msg := []byte("0123456789abcdef")
	sent := append([]byte(nil), msg...)
	done := make(chan []byte, 1)
	go func() {
		buf := make([]byte, len(msg))
		if _, err := io.ReadFull(c, buf); err != nil {
			t.Errorf("read back: %v", err)
		}
		done <- buf
	}()
	wrote, err := c.Write(msg)
	if err != nil || wrote != len(msg) {
		t.Fatalf("write: n=%d err=%v, want clean full write", wrote, err)
	}
	if string(msg) != string(sent) {
		t.Fatalf("writer's buffer mutated: %q", msg)
	}
	got := <-done
	want := append([]byte(nil), msg...)
	for i := 8; i < 12; i++ {
		want[i] ^= 0xff
	}
	if string(got) != string(want) {
		t.Fatalf("peer received %q, want bytes [8,12) inverted: %q", got, want)
	}
	// One-shot: the next write on the same connection is clean.
	reply := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 5)
		io.ReadFull(c, buf) //nolint:errcheck
		reply <- buf
	}()
	if _, err := c.Write([]byte("clean")); err != nil {
		t.Fatal(err)
	}
	if got := <-reply; string(got) != "clean" {
		t.Fatalf("post-flip write delivered %q, want clean", got)
	}
	mu.Lock()
	joined := strings.Join(events, "\n")
	mu.Unlock()
	if !strings.Contains(joined, "flip cli->srv (@8B+4)") {
		t.Fatalf("events missing flip record:\n%s", joined)
	}

	// ClearFaults disarms a pending flip before any connection uses it.
	n.FlipAfter("cli", "srv", 0, 1)
	n.ClearFaults()
	serveEcho(t, l)
	c2, err := n.Host("cli").DialTimeout("sim", "srv:1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	got2 := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 2)
		io.ReadFull(c2, buf) //nolint:errcheck
		got2 <- buf
	}()
	if _, err := c2.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if b := <-got2; string(b) != "ok" {
		t.Fatalf("after ClearFaults delivered %q, want ok", b)
	}
}

// TestFlipSpansChunks verifies a flip range that straddles two writes:
// each delivery inverts its overlap and the fault disarms only once the
// whole range has passed.
func TestFlipSpansChunks(t *testing.T) {
	n := New(1)
	l, err := n.Host("srv").Listen("sim", "srv:1")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	serveEcho(t, l)
	n.FlipAfter("cli", "srv", 3, 4) // bytes [3,7) across two 5-byte writes
	c, err := n.Host("cli").DialTimeout("sim", "srv:1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 10)
		io.ReadFull(c, buf) //nolint:errcheck
		done <- buf
	}()
	if _, err := c.Write([]byte("abcde")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte("fghij")); err != nil {
		t.Fatal(err)
	}
	got := <-done
	want := []byte("abcdefghij")
	for i := 3; i < 7; i++ {
		want[i] ^= 0xff
	}
	if string(got) != string(want) {
		t.Fatalf("peer received %q, want [3,7) inverted: %q", got, want)
	}
}

func TestSetDownRefusesAndRecovers(t *testing.T) {
	n := New(1)
	l, err := n.Host("b").Listen("sim", "b:1")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	serveEcho(t, l)
	n.SetDown("a", "b", true)
	if _, err := n.Host("a").DialTimeout("sim", "b:1", time.Second); err == nil || !strings.Contains(err.Error(), "link down") {
		t.Fatalf("dial on downed link: %v", err)
	}
	n.SetDown("a", "b", false)
	c, err := n.Host("a").DialTimeout("sim", "b:1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
}

func TestDeadlines(t *testing.T) {
	n := New(1)
	l, err := n.Host("b").Listen("sim", "b:1")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, _ := l.Accept()
		if c != nil {
			defer c.Close()
			time.Sleep(time.Second) // never writes
		}
	}()
	c, err := n.Host("a").DialTimeout("sim", "b:1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(20 * time.Millisecond)) //nolint:errcheck
	var buf [1]byte
	if _, err := c.Read(buf[:]); !os.IsTimeout(err) {
		t.Fatalf("read past deadline: %v", err)
	}
}

// TestConnWritesRecordsChunks pins the accounting the mid-stream matrix
// relies on: chunk sizes in delivery order, per connection in dial
// order.
func TestConnWritesRecordsChunks(t *testing.T) {
	n := New(1)
	l, err := n.Host("srv").Listen("sim", "srv:1")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ready := make(chan struct{})
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		buf := make([]byte, 7)
		io.ReadFull(c, buf)     //nolint:errcheck
		c.Write([]byte("ack"))  //nolint:errcheck
		io.ReadFull(c, buf[:2]) //nolint:errcheck
		close(ready)
	}()
	c, err := n.Host("cli").DialTimeout("sim", "srv:1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c.Write([]byte("1234567")) //nolint:errcheck
	ackBuf := make([]byte, 3)
	io.ReadFull(c, ackBuf) //nolint:errcheck
	c.Write([]byte("89"))  //nolint:errcheck
	<-ready
	c.Close()
	writes := n.ConnWrites("cli", "srv")
	if len(writes) != 1 {
		t.Fatalf("conn count = %d, want 1", len(writes))
	}
	want := []int{7, 3, 2}
	if fmt.Sprint(writes[0]) != fmt.Sprint(want) {
		t.Fatalf("writes = %v, want %v", writes[0], want)
	}
}

// TestLatencyDelaysDelivery sanity-checks that a configured latency
// window actually delays a chunk, and that the delay is sampled inside
// the window.
func TestLatencyDelaysDelivery(t *testing.T) {
	n := New(99)
	n.SetLatency("a", "b", 30*time.Millisecond, 40*time.Millisecond)
	l, err := n.Host("b").Listen("sim", "b:1")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	serveEcho(t, l)
	c, err := n.Host("a").DialTimeout("sim", "b:1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	c.Write([]byte("x")) //nolint:errcheck
	var buf [1]byte
	io.ReadFull(c, buf[:]) //nolint:errcheck
	// One chunk each way: at least 2×30ms of injected delay.
	if d := time.Since(start); d < 60*time.Millisecond {
		t.Fatalf("round trip took %v, want >= 60ms of injected latency", d)
	}
}

// TestEventOrderDeterminism replays the same scripted usage on two
// same-seeded networks and requires identical event streams.
func TestEventOrderDeterminism(t *testing.T) {
	script := func(seed uint64) []string {
		var mu sync.Mutex
		var events []string
		n := New(seed)
		n.OnEvent = func(e Event) {
			mu.Lock()
			events = append(events, e.String())
			mu.Unlock()
		}
		l, err := n.Host("srv").Listen("sim", "srv:1")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		serveEcho(t, l)
		n.DropAfter("cli", "srv", 4)
		c, err := n.Host("cli").DialTimeout("sim", "srv:1", time.Second)
		if err != nil {
			t.Fatal(err)
		}
		c.Write([]byte("123456")) //nolint:errcheck
		c.Close()
		n.Partition([]string{"cli"}, []string{"srv"})
		n.Host("cli").DialTimeout("sim", "srv:1", time.Second) //nolint:errcheck
		n.Heal()
		if c2, err := n.Host("cli").DialTimeout("sim", "srv:1", time.Second); err != nil {
			t.Fatal(err)
		} else {
			c2.Close()
		}
		return events
	}
	a, b := script(42), script(42)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("event streams diverged:\n%v\n%v", a, b)
	}
	want := []string{
		"dial cli->srv",
		"cut cli->srv (drop-at-offset @4B)",
		"refused cli->srv (host unreachable (partition))",
		"dial cli->srv",
	}
	if fmt.Sprint(a) != fmt.Sprint(want) {
		t.Fatalf("events = %v, want %v", a, want)
	}
}

// TestOpenConnsTracksLeaks: both endpoints count until closed.
func TestOpenConnsTracksLeaks(t *testing.T) {
	n := New(1)
	l, err := n.Host("srv").Listen("sim", "srv:1")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	c, err := n.Host("cli").DialTimeout("sim", "srv:1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	sv := <-accepted
	if got := n.OpenConns(); got != 2 {
		t.Fatalf("open = %d, want 2", got)
	}
	c.Close()
	c.Close() // idempotent
	if got := n.OpenConns(); got != 1 {
		t.Fatalf("open after client close = %d, want 1", got)
	}
	sv.Close()
	if got := n.OpenConns(); got != 0 {
		t.Fatalf("open after both closed = %d, want 0", got)
	}
}

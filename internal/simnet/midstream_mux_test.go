package simnet_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/netproto"
	"repro/internal/rng"
	"repro/internal/session"
	"repro/internal/simnet"
	"repro/internal/simnet/scenario"
)

// The mid-stream failure matrix, ported to pooled RSYN v3 carriers: a
// shared multiplexed connection is severed at every carrier frame
// boundary (and mid-frame) via simnet's drop-at-offset fault. The
// session riding the carrier at the cut must fail with the canonical
// cut error (never a hang, a false success, or an unrelated EOF), the
// pool must absorb the cut — re-dialing a carrier, or downgrading to
// plain dials when the cut killed negotiation itself — so a follow-up
// session always succeeds, the virtual network must end with zero
// leaked endpoints, and the poisoned-pool canary must pass.

// muxMatrixIDs builds the diverged sync workload shared by the server
// and every client session.
func muxMatrixIDs(seed uint64, n int, extra ...uint64) []uint64 {
	src := rng.New(seed)
	out := make([]uint64, n, n+len(extra))
	for i := range out {
		out[i] = src.Uint64()
	}
	return append(out, extra...)
}

// muxMatrixRun drives count sequential sync sessions through one pool
// over net, then a recovery session; it returns the per-session errors
// (recovery excluded), the pool, and the server.
func muxMatrixRun(t *testing.T, net *simnet.Network, count int) ([]error, *session.MuxPool, *session.Server) {
	t.Helper()
	p := netproto.SyncParams{Seed: 5}
	srv := session.NewServer(session.Config{
		Transport:      net.Host("srv"),
		SessionTimeout: 20 * time.Second,
	})
	srv.Handle(func() netproto.Handler { return netproto.NewSyncResponder(p, muxMatrixIDs(31, 50, 1, 2, 3)) })
	if _, err := srv.Listen("sim", "srv:1"); err != nil {
		t.Fatal(err)
	}
	pool := &session.MuxPool{
		Network:        "sim",
		Transport:      net.Host("cli"),
		DialTimeout:    5 * time.Second,
		SessionTimeout: 20 * time.Second,
	}
	errs := make([]error, count)
	for i := range errs {
		h := netproto.NewSyncInitiator(p, muxMatrixIDs(31, 50, 7, 8))
		_, errs[i] = pool.Do("srv:1", "", h)
	}
	return errs, pool, srv
}

// muxMatrixTeardown closes pool and server and requires the network to
// drain to zero open endpoints.
func muxMatrixTeardown(t *testing.T, net *simnet.Network, pool *session.MuxPool, srv *session.Server, ctx string) {
	t.Helper()
	pool.Close()                  //nolint:errcheck
	srv.Shutdown(5 * time.Second) //nolint:errcheck
	deadline := time.Now().Add(2 * time.Second)
	for net.OpenConns() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if open := net.OpenConns(); open != 0 {
		t.Fatalf("%s: %d connection endpoints leaked", ctx, open)
	}
}

func TestMidStreamMuxFailureMatrix(t *testing.T) {
	// Clean run: discover the carrier's frame boundaries. Two sequential
	// sessions share one carrier, so the chunk list covers negotiation,
	// both sessions' streams, and the inter-session idle boundary.
	cleanNet := simnet.New(1)
	errs, pool, srv := muxMatrixRun(t, cleanNet, 2)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("clean session %d failed: %v", i, err)
		}
	}
	if st := pool.Stats(); st.Dials != 1 || st.Sessions != 2 {
		t.Fatalf("clean run: pool stats %v, want 1 dial, 2 sessions", st.String())
	}
	muxMatrixTeardown(t, cleanNet, pool, srv, "clean run")
	conns := cleanNet.ConnWrites("cli", "srv")
	if len(conns) != 1 || len(conns[0]) < 4 {
		t.Fatalf("clean run recorded %d conns (chunks: %v)", len(conns), conns)
	}
	offsets := cutOffsets(conns[0])
	t.Logf("mux carrier: %d frames over one conn, cutting at %v", len(conns[0]), offsets)

	for _, off := range offsets {
		net := simnet.New(uint64(2 + off))
		net.DropAfter("cli", "srv", off)
		errs, pool, srv := muxMatrixRun(t, net, 2)
		failed := 0
		for i, err := range errs {
			if err == nil {
				continue
			}
			failed++
			// Whatever layer surfaces the failure, the root cause must be
			// simnet's canonical cut error — not a bare EOF or a pipe
			// error that would make a replayed trace ambiguous.
			if !strings.Contains(err.Error(), "drop-at-offset") {
				t.Fatalf("cut at offset %d: session %d failed without the canonical cut error: %v", off, i, err)
			}
		}
		// Recovery: the fault is spent, so one more session through the
		// same pool must succeed — over a re-dialed carrier or plain.
		h := netproto.NewSyncInitiator(netproto.SyncParams{Seed: 5}, muxMatrixIDs(31, 50, 7, 8))
		if _, err := pool.Do("srv:1", "", h); err != nil {
			t.Fatalf("cut at offset %d: recovery session failed: %v", off, err)
		}
		if len(h.TheirsOnly) != 3 || len(h.MinesOnly) != 2 {
			t.Fatalf("cut at offset %d: recovery session returned %d/%d IDs, want 3/2", off, len(h.TheirsOnly), len(h.MinesOnly))
		}
		if st := pool.Stats(); failed == 0 {
			// No session failed: legal only when the pool absorbed the
			// cut invisibly — the cut killed carrier negotiation (plain
			// downgrade took over), or landed on an idle carrier or its
			// final close frame, in which case the recovery session just
			// proved the pool re-dialed a fresh carrier.
			if st.Fallbacks == 0 && st.Dials < 2 {
				t.Fatalf("cut at offset %d: no session failed, yet the pool neither fell back nor re-dialed (%v)", off, st)
			}
		}
		muxMatrixTeardown(t, net, pool, srv, "post-cut")

		// Canary: poison pooled encoders and require a clean pooled
		// session to still succeed — the failed streams released their
		// pooled buffers instead of retaining or double-recycling them.
		release := scenario.PoisonPool(8, 2048)
		verifyNet := simnet.New(uint64(3 + off))
		verrs, vpool, vsrv := muxMatrixRun(t, verifyNet, 1)
		if verrs[0] != nil {
			t.Fatalf("cut at offset %d: clean session after poisoned pool failed: %v", off, verrs[0])
		}
		muxMatrixTeardown(t, verifyNet, vpool, vsrv, "canary")
		release()
	}
}

// TestMuxCutFailsInFlightStreams cuts a carrier while several sessions
// are genuinely concurrent on it: every session that fails must fail
// with the canonical cut error, at least one must notice the cut (the
// offset lands mid-carrier, past negotiation), and the pool must still
// serve a recovery session afterwards.
func TestMuxCutFailsInFlightStreams(t *testing.T) {
	// Discover the carrier length from a sequential clean run.
	cleanNet := simnet.New(1)
	errs, pool, srv := muxMatrixRun(t, cleanNet, 2)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("clean session %d failed: %v", i, err)
		}
	}
	muxMatrixTeardown(t, cleanNet, pool, srv, "clean run")
	var total int64
	for _, w := range cleanNet.ConnWrites("cli", "srv")[0] {
		total += int64(w)
	}

	net := simnet.New(7)
	net.DropAfter("cli", "srv", total/2)
	p := netproto.SyncParams{Seed: 5}
	srv2 := session.NewServer(session.Config{
		Transport:      net.Host("srv"),
		SessionTimeout: 20 * time.Second,
	})
	srv2.Handle(func() netproto.Handler { return netproto.NewSyncResponder(p, muxMatrixIDs(31, 50, 1, 2, 3)) })
	if _, err := srv2.Listen("sim", "srv:1"); err != nil {
		t.Fatal(err)
	}
	pool2 := &session.MuxPool{
		Network:        "sim",
		Transport:      net.Host("cli"),
		DialTimeout:    5 * time.Second,
		SessionTimeout: 20 * time.Second,
	}
	if err := pool2.Warm("srv:1"); err != nil {
		t.Fatal(err)
	}
	const sessions = 4
	serrs := make([]error, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := netproto.NewSyncInitiator(p, muxMatrixIDs(31, 50, 7, 8))
			_, serrs[i] = pool2.Do("srv:1", "", h)
		}(i)
	}
	wg.Wait()
	failed := 0
	for i, err := range serrs {
		if err == nil {
			continue
		}
		failed++
		if !strings.Contains(err.Error(), "drop-at-offset") {
			t.Fatalf("concurrent session %d failed without the canonical cut error: %v", i, err)
		}
	}
	if failed == 0 && pool2.Stats().Dials < 2 {
		t.Fatalf("carrier cut mid-flight, yet no session failed and no re-dial happened (%v)", pool2.Stats())
	}
	h := netproto.NewSyncInitiator(p, muxMatrixIDs(31, 50, 7, 8))
	if _, err := pool2.Do("srv:1", "", h); err != nil {
		t.Fatalf("recovery session failed: %v", err)
	}
	muxMatrixTeardown(t, net, pool2, srv2, "concurrent cut")
}

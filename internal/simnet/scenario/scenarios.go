package scenario

import (
	"fmt"
	"time"
)

// Builtin returns the shipped scenario catalog, in a stable order.
// Each is a whole-stack robustness claim: the mesh converges every
// hosted set to the planted ground-truth union despite the scripted
// faults, leaks nothing, and produces a seed-reproducible trace.
func Builtin() []Scenario {
	return []Scenario{
		{
			Name:  "partition-rejoin",
			Desc:  "3-node mesh; one node is partitioned away at round 1 while churn continues everywhere, the partition heals at round 6, and the mesh must re-converge (the returning node catching up via delta pulls and exact repair).",
			Nodes: 3,
			Sets: []SetSpec{
				{Name: "", Base: 20, PerNode: 5, Capacity: 256},
				{Name: "alpha", Base: 20, PerNode: 5, EMD: true, Capacity: 256},
				{Name: "beta", Base: 16, PerNode: 4, Capacity: 256},
			},
			Rounds:      30,
			ChurnRounds: 6,
			Faults: []Fault{
				{Round: 1, Kind: "partition", Groups: [][]int{{0, 1}, {2}}},
				{Round: 6, Kind: "heal"},
			},
			Streak: 2,
		},
		{
			Name:  "asymmetric-latency",
			Desc:  "3-node mesh with skewed link latencies (one fast pair, one slow pair) and a bandwidth cap on the slow link; convergence must not depend on uniform timing.",
			Nodes: 3,
			Sets: []SetSpec{
				{Name: "", Base: 20, PerNode: 5, Capacity: 256},
				{Name: "alpha", Base: 16, PerNode: 4, EMD: true, Capacity: 256},
			},
			Rounds:      20,
			ChurnRounds: 4,
			Faults: []Fault{
				{Round: 0, Kind: "latency", From: 0, To: 1, Min: 50 * time.Microsecond, Max: 200 * time.Microsecond},
				{Round: 0, Kind: "latency", From: 0, To: 2, Min: 1 * time.Millisecond, Max: 3 * time.Millisecond},
				{Round: 0, Kind: "latency", From: 1, To: 2, Min: 200 * time.Microsecond, Max: 500 * time.Microsecond},
				{Round: 0, Kind: "bandwidth", From: 0, To: 2, BPS: 2 << 20},
			},
			Streak: 2,
		},
		{
			Name:  "flaky-link-soak",
			Desc:  "4-node mesh soaked with random one-shot connection drops (a random link loses its next connection at a random byte offset, every round for 10 rounds) while churn runs; repair must retry around the flaps and still converge exactly.",
			Nodes: 4,
			Sets: []SetSpec{
				{Name: "", Base: 20, PerNode: 5, Capacity: 256},
				{Name: "alpha", Base: 16, PerNode: 4, EMD: true, Capacity: 256},
			},
			Rounds:      40,
			ChurnRounds: 8,
			Flaky:       &Flaky{Rounds: 10, MaxOffset: 4096},
			Streak:      2,
		},
		{
			Name:  "mesh-10",
			Desc:  "10-node mesh: power-of-two-choices probing must spread the anti-entropy work and converge the whole mesh in a bounded number of rounds.",
			Nodes: 10,
			Sets: []SetSpec{
				{Name: "", Base: 16, PerNode: 3, Capacity: 512},
				{Name: "alpha", Base: 12, PerNode: 2, EMD: true, Capacity: 256},
			},
			Rounds:      40,
			ChurnRounds: 3,
			Streak:      1,
		},
		{
			Name:  "crash-recover",
			Desc:  "3-node durable mesh; node 2 is killed mid-churn (journal abandoned, no final snapshot), restarts from disk at round 6 with fingerprints matching the journal ground truth, and must re-converge via delta repair — the points it pulls after restart are bounded by what it actually missed, never a full transfer.",
			Nodes: 3,
			Sets: []SetSpec{
				{Name: "", Base: 120, PerNode: 6, Capacity: 512},
				{Name: "alpha", Base: 100, PerNode: 4, EMD: true, Capacity: 256},
			},
			Rounds:      30,
			ChurnRounds: 6,
			Durable:     true,
			Faults: []Fault{
				{Round: 2, Kind: "kill", From: 2},
				{Round: 6, Kind: "restart", From: 2},
			},
			Streak: 2,
		},
		{
			Name:  "mesh-10-latency",
			Desc:  "mesh-10 on a uniformly slow WAN: every link carries 40..120µs per write and a dial costs a full round trip, so the mesh is latency-bound — pooled v3 carriers with pipelined (Pipeline=4) rounds must amortize dials across sets and still converge exactly.",
			Nodes: 10,
			Sets: []SetSpec{
				{Name: "", Base: 16, PerNode: 3, Capacity: 512},
				{Name: "alpha", Base: 12, PerNode: 2, EMD: true, Capacity: 256},
			},
			Rounds:      40,
			ChurnRounds: 2,
			Streak:      1,
			Pipeline:    4,
			LatencyMin:  40 * time.Microsecond,
			LatencyMax:  120 * time.Microsecond,
		},
		{
			Name:          "gossip-mesh-10",
			Desc:          "10-node sharded mesh (gossip membership + ring placement, R=3): a 2-way partition splits the member view mid-churn — each side suspects, reassigns, and re-replicates within itself — then heals; a graceful leave moves its shards to new owners. Every shard must end on exactly its ring-assigned owners, fingerprint-equal, within the bounded-loads budget.",
			Nodes:         10,
			Sets:          gossipSets(6, 16, 3, 256),
			Rounds:        60,
			ChurnRounds:   3,
			Gossip:        true,
			Replication:   3,
			SuspectRounds: 2,
			Faults: []Fault{
				{Round: 4, Kind: "partition", Groups: [][]int{{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}}},
				{Round: 7, Kind: "heal"},
				{Round: 10, Kind: "leave", From: 9},
			},
			Streak: 2,
		},
		{
			Name:      "poisoned-peer",
			Desc:      "4-node mesh with one byzantine member (node 3) that serves corrupted repair payloads and never initiates; a flip fault also garbles carrier negotiation on an honest link at round 0. Honest nodes must verify-before-merge (zero corrupt points accepted), converge to the honest ground truth anyway, and every honest health ledger must end with the byzantine peer quarantined.",
			Nodes:     4,
			Byzantine: []int{3},
			Choices:   3,
			Sets: []SetSpec{
				{Name: "", Base: 20, PerNode: 5, Capacity: 256},
				{Name: "alpha", Base: 16, PerNode: 4, EMD: true, Capacity: 256},
			},
			Rounds:      30,
			ChurnRounds: 3,
			Faults: []Fault{
				{Round: 0, Kind: "flip", From: 1, To: 2, Offset: 8, Count: 4},
			},
			Streak: 2,
		},
		{
			Name:          "mesh-100",
			Desc:          "100-node sharded mesh, 24 shards at R=3 — per-node bounded-loads budget of ONE shard. Churn, then a 50/50 partition (both halves suspect the other dead and re-own every shard locally), a heal (resurrection probes re-merge the views, temp owners hand off after confirming the real owners hold everything), a graceful leave, and a rejoin of the same address (incarnation bump overrides its own left entry). Converges deterministically to exactly-R ownership with no shard over budget and no point lost.",
			Nodes:         100,
			Sets:          gossipSets(24, 12, 4, 256),
			Rounds:        80,
			ChurnRounds:   3,
			Gossip:        true,
			Replication:   3,
			GossipFanout:  3,
			SuspectRounds: 3,
			Faults: []Fault{
				{Round: 4, Kind: "partition", Groups: [][]int{
					{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19,
						20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32, 33, 34, 35, 36, 37, 38, 39,
						40, 41, 42, 43, 44, 45, 46, 47, 48, 49},
				}},
				{Round: 8, Kind: "heal"},
				{Round: 12, Kind: "leave", From: 7},
				{Round: 16, Kind: "join", From: 7},
			},
			Streak: 2,
		},
	}
}

// gossipSets generates n uniform shard specs for the sharded scenarios.
func gossipSets(n, base, perNode, capacity int) []SetSpec {
	out := make([]SetSpec, n)
	for i := range out {
		out[i] = SetSpec{
			Name:     fmt.Sprintf("shard-%02d", i),
			Base:     base,
			PerNode:  perNode,
			Capacity: capacity,
		}
	}
	return out
}

// Lookup resolves a scenario by name.
func Lookup(name string) (Scenario, bool) {
	for _, sc := range Builtin() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

package scenario

import (
	"strings"
	"testing"
)

// TestGossipShardingScenario drives the small sharded scenario and
// asserts the gossip/placement machinery actually engaged: membership
// rounds ran, the partition forced suspicion-driven reassignment
// (handoffs appear once the view heals), the graceful leave moved
// ownership, and the final placement check pinned every shard to
// exactly its ring owners within the load budget.
func TestGossipShardingScenario(t *testing.T) {
	sc, ok := Lookup("gossip-mesh-10")
	if !ok {
		t.Fatal("gossip-mesh-10 not in catalog")
	}
	res, err := Run(sc, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		t.Fatalf("invariants failed: %v\ntrace:\n%s", res.Failures, res.TraceText())
	}
	trace := res.TraceText()
	for _, want := range []string{
		"gossip: ",             // membership rounds ran
		"fault: partition",     // the split was applied
		"fault: heal",          //   ...and healed
		"fault: leave node9",   // graceful departure
		"placement: ok",        // final exact-owner + load-budget check
		"ground truth: 6 sets", // no point lost across all the moves
	} {
		if !strings.Contains(trace, want) {
			t.Errorf("trace missing %q", want)
		}
	}
	// The partition must actually bite: cross-side exchanges fail (a
	// gossip line with a non-zero failure count), and the suspicion-
	// driven reassignment must disturb hosting — some state line shows a
	// shard off its target host count ("!") or diverged mid-repair.
	sawFailed, sawDisturbed := false, false
	for _, line := range res.Trace() {
		if strings.HasPrefix(line, "gossip: ") && !strings.Contains(line, " 0 failed") {
			sawFailed = true
		}
		if strings.HasPrefix(line, "state: ") &&
			(strings.Contains(line, "!") || strings.Contains(line, "DIVERGED")) {
			sawDisturbed = true
		}
	}
	if !sawFailed {
		t.Error("no failed gossip exchanges despite a 2-way partition")
	}
	if !sawDisturbed {
		t.Error("hosting never disturbed: partition/leave did not move any shard")
	}
}

// TestMesh100Replay is the tentpole acceptance gate at full scale: the
// 100-node sharded mesh under churn, a 50/50 partition with heal, and a
// leave/rejoin must converge with every invariant intact, and two runs
// at the same seed must produce byte-identical traces (while a third
// run at a different seed must not — otherwise the determinism claim is
// vacuous). Skipped under -short; CI runs it without -race.
func TestMesh100Replay(t *testing.T) {
	if testing.Short() {
		t.Skip("mesh-100 replay is the long gate; run without -short")
	}
	if raceEnabled {
		t.Skip("mesh-100 replay runs uninstrumented (3 full 100-node runs); gossip-mesh-10 carries the race coverage")
	}
	sc, ok := Lookup("mesh-100")
	if !ok {
		t.Fatal("mesh-100 not in catalog")
	}
	r1, err := Run(sc, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Ok() {
		t.Fatalf("invariants failed: %v", r1.Failures)
	}
	r2, err := Run(sc, 42)
	if err != nil {
		t.Fatal(err)
	}
	t1, t2 := r1.TraceText(), r2.TraceText()
	if t1 != t2 {
		a, b := strings.Split(t1, "\n"), strings.Split(t2, "\n")
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				t.Fatalf("traces diverge at line %d:\n  run1: %s\n  run2: %s", i+1, a[i], b[i])
			}
		}
		t.Fatalf("traces differ in length: %d vs %d lines", len(a), len(b))
	}
	r3, err := Run(sc, 43)
	if err != nil {
		t.Fatal(err)
	}
	if r3.TraceText() == t1 {
		t.Fatal("seed 42 and 43 produced identical mesh-100 traces")
	}
	t.Logf("mesh-100: converged at round %d, %d sessions over %d dials, %d probes",
		r1.ConvergedRound, r1.Sessions, r1.Dials, r1.Probes)
}

//go:build !race

package scenario

// raceEnabled reports whether the race detector is compiled in. The
// heavyweight mesh-100 gates skip under race (the dedicated CI step
// replays mesh-100 without instrumentation; the smaller sharded
// scenario carries the race coverage).
const raceEnabled = false

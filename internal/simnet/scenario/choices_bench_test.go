package scenario

import (
	"fmt"
	"testing"
)

// BenchmarkChoicesSweep sweeps the power-of-d-choices knob over a
// fixed-seed sharded mesh and reports rounds-to-converge against
// probes-per-round — the load/latency trade the knob buys. The mesh
// runs at R=5 so every shard has 4 co-owners and d=1..4 are all
// distinct (d clamps to the co-owner pool); no faults, so the sweep
// isolates the probing policy. Runs are seed-deterministic, so the
// metrics are exact, not sampled.
func BenchmarkChoicesSweep(b *testing.B) {
	for d := 1; d <= 4; d++ {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			var res *Result
			for i := 0; i < b.N; i++ {
				sc := Scenario{
					Name:        fmt.Sprintf("choices-sweep-d%d", d),
					Nodes:       10,
					Sets:        gossipSets(8, 16, 3, 256),
					Rounds:      60,
					ChurnRounds: 3,
					Gossip:      true,
					Replication: 5,
					Choices:     d,
					Streak:      1,
				}
				r, err := Run(sc, 42)
				if err != nil {
					b.Fatal(err)
				}
				if !r.Ok() {
					b.Fatalf("d=%d: invariants failed: %v", d, r.Failures)
				}
				res = r
			}
			b.ReportMetric(float64(res.ConvergedRound+1), "rounds-to-converge")
			b.ReportMetric(float64(res.Probes)/float64(res.RoundsRun), "probes/round")
		})
	}
}
